// Command qtsql is an interactive shell over a query-trading federation:
// type SQL, get the trading-optimized distributed plan and its answer.
//
// By default it simulates a telco federation in-process. With -connect it
// becomes the buyer of a real multi-process federation served by qtnode:
//
//	qtnode -id corfu -listen :7001 -office Corfu &
//	qtnode -id myconos -listen :7002 -office Myconos &
//	qtsql -connect corfu=localhost:7001,myconos=localhost:7002
//
// Commands: EXPLAIN <query>, EXPLAIN ANALYZE <query>, \trace on|off,
// \trace save <file>, \metrics, \ledger, \calibration, \slow, \stats,
// \nodes, \quit. Every negotiation is audited in a trading ledger: \ledger
// dumps the retained records as JSONL and \calibration prints the
// per-seller quoted-vs-measured cost report. Every executed query also
// lands in a flight recorder: \slow [n] lists the slowest retained
// dossiers (wall time, rows, quoted-vs-measured cost ratio and any trigger
// flags), and with -obs-addr the full dossiers are served at
// /debug/queries and /debug/queries/{id}. In simulation mode
// the federation can be perturbed interactively: \down <node> and
// \up <node> toggle node failures, \drain <node> and \undrain <node> walk a
// node through the elastic lifecycle (a draining node refuses new
// negotiations but finishes in-flight work; \nodes shows each node's
// lifecycle state and queue depths), and \chaos <seed> <rate> installs a
// seeded chaos plan dropping the given fraction of requests (\chaos off
// removes it).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/netsim"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

// session is the shell state shared by the in-process and remote modes.
type session struct {
	metrics *obs.Metrics
	ledg    *ledger.Ledger // audits every negotiation; feeds \ledger and /ledger
	flight  *flight.Recorder
	tracing bool
	last    *obs.Tracer   // spans of the most recent traced query
	tlog    *obs.TraceLog // feeds /trace/last when -obs-addr is set
	keep    int           // /trace/last ring capacity (-trace-keep)
	window  time.Duration // /metrics/history rollup window (-history-window)

	// attach/detach point tracing at the federation's seller nodes
	// (no-ops in remote mode, where sellers live in other processes).
	attach func(tr *obs.Tracer)
}

// command handles one backslash command; returns false if it wasn't one.
func (s *session) command(line string) bool {
	switch {
	case line == `\trace on`:
		s.tracing = true
		fmt.Println("tracing on: each query records a span tree")
	case line == `\trace off`:
		s.tracing = false
		fmt.Println("tracing off")
	case strings.HasPrefix(line, `\trace save`):
		path := strings.TrimSpace(strings.TrimPrefix(line, `\trace save`))
		if path == "" {
			fmt.Println(`usage: \trace save <file>`)
			break
		}
		if s.last == nil {
			fmt.Println("no traced query yet (\\trace on, then run one)")
			break
		}
		w, err := os.Create(path)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		err = s.last.WriteChromeTrace(w)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("wrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n", path)
	case line == `\metrics`:
		fmt.Print(s.metrics.Snapshot())
	case line == `\ledger`:
		if s.ledg.Len() == 0 {
			fmt.Println("no negotiations recorded yet (run a query first)")
			break
		}
		if err := s.ledg.WriteJSONL(os.Stdout, 0); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	case line == `\calibration`:
		if s.ledg.Len() == 0 {
			fmt.Println("no negotiations recorded yet (run a query first)")
			break
		}
		fmt.Print(s.ledg.Calibration().Text())
	case line == `\slow` || strings.HasPrefix(line, `\slow `):
		n := 10
		if arg := strings.TrimSpace(strings.TrimPrefix(line, `\slow`)); arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				fmt.Println(`usage: \slow [n]`)
				break
			}
			n = v
		}
		ds := s.flight.Slow(n)
		if len(ds) == 0 {
			fmt.Println("no queries recorded yet (run one first)")
			break
		}
		for _, d := range ds {
			flags := ""
			if len(d.Triggers) > 0 {
				flags = " [" + strings.Join(d.Triggers, ",") + "]"
			}
			fmt.Printf("  %-12s %8.2fms  rows=%-6d cost-ratio=%.2f%s\n",
				d.ID, d.WallMS, d.Rows, d.CostRatio, flags)
			fmt.Printf("    %s\n", d.SQL)
		}
	default:
		return false
	}
	return true
}

// trace parses the EXPLAIN / EXPLAIN ANALYZE prefixes and, when tracing is
// on, returns a fresh tracer attached to the federation for this query.
func (s *session) begin(line string) (sql string, explainOnly, analyze bool, tr *obs.Tracer) {
	sql = line
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "EXPLAIN ANALYZE "):
		analyze = true
		sql = strings.TrimSpace(line[len("EXPLAIN ANALYZE "):])
	case strings.HasPrefix(upper, "EXPLAIN "):
		explainOnly = true
		sql = strings.TrimSpace(line[len("EXPLAIN "):])
	}
	if s.tracing {
		tr = obs.NewTracer()
		s.last = tr
		s.attach(tr)
	}
	return sql, explainOnly, analyze, tr
}

// end detaches the per-query tracer and prints its span tree.
func (s *session) end(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	s.attach(nil)
	if roots := tr.Roots(); len(roots) > 0 {
		s.tlog.Record(roots[0].Payload())
	}
	fmt.Print(tr.RenderText())
}

// serveObs starts the HTTP exposition surface when addr is non-empty: the
// flight recorder joins at /debug/queries, and a windowed metrics history
// (with an anomaly watchdog recording into the ledger) at /metrics/history.
func (s *session) serveObs(addr string) {
	if addr == "" {
		return
	}
	s.tlog = obs.NewTraceLogN(s.keep)
	hist := obs.NewHistory(s.metrics, s.window, 0)
	wd := flight.NewWatchdog(flight.WatchdogConfig{}, s.ledg, s.metrics)
	wd.Attach(hist)
	hist.Start()
	go func() {
		h := obs.Handler(s.metrics, s.tlog,
			obs.Endpoint{Path: "/ledger", Handler: s.ledg},
			obs.Endpoint{Path: "/calibration", Handler: s.ledg.CalibrationHandler()},
			obs.Endpoint{Path: "/metrics/history", Handler: hist},
			obs.Endpoint{Path: "/debug/queries", Handler: s.flight},
			obs.Endpoint{Path: "/debug/queries/", Handler: s.flight})
		if err := http.ListenAndServe(addr, h); err != nil {
			slog.Error("obs server failed", "addr", addr, "err", err)
		}
	}()
	fmt.Printf("serving /metrics, /metrics/history, /debug/pprof, /debug/queries, /trace/last, /ledger and /calibration on %s\n", addr)
}

func main() {
	customers := flag.Int("customers", 50, "customers per office")
	offices := flag.String("offices", "Corfu,Myconos,Athens", "federation offices")
	connect := flag.String("connect", "", "comma-separated id=addr pairs of qtnode servers; empty = in-process simulation")
	callTimeout := flag.Duration("call-timeout", 0, "remote mode: bound on dialing and on every RPC to a qtnode (0 = none)")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn or error")
	obsAddr := flag.String("obs-addr", "", "HTTP address serving /metrics, /metrics/history, /debug/pprof/*, /debug/queries, /trace/last, /ledger and /calibration (empty = no exposition)")
	traceKeep := flag.Int("trace-keep", 0, "how many sampled traces /trace/last retains (0 = default capacity)")
	histWindow := flag.Duration("history-window", 0, "rollup window for /metrics/history (0 = default 5s)")
	flag.Parse()

	setupLogging(*logLevel)

	if *connect != "" {
		runRemote(*offices, *connect, *callTimeout, *obsAddr, *traceKeep, *histWindow)
		return
	}

	f := workload.NewTelco(workload.TelcoOptions{
		Offices:            strings.Split(*offices, ","),
		CustomersPerOffice: *customers,
		Seed:               1,
	})
	s := &session{metrics: obs.NewMetrics(), ledg: ledger.New(0),
		flight: flight.NewRecorder(0), keep: *traceKeep, window: *histWindow}
	s.attach = func(tr *obs.Tracer) { f.SetObs(tr, s.metrics) }
	s.attach(nil) // metrics-only steady state
	f.SetLedger(s.ledg)
	s.serveObs(*obsAddr)
	slog.Info("federation ready", "offices", *offices, "customers", *customers)
	fmt.Printf("query-trading federation: offices %s + buyer hq\n", *offices)
	fmt.Println(`type SQL, "EXPLAIN [ANALYZE] <sql>", "\trace on", "\metrics", "\ledger", "\calibration",`)
	fmt.Println(`  "\slow [n]", "\stats", "\nodes", "\down <node>", "\up <node>", "\drain <node>",`)
	fmt.Println(`  "\undrain <node>", "\chaos <seed> <rate>" or "\quit"`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("qtsql> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\stats`:
			msgs, bytes := f.Net.Stats()
			fmt.Printf("network: %d messages, %d bytes\n", msgs, bytes)
			for _, pt := range sortedPairs(f.Net) {
				fmt.Printf("  %-20s %d messages, %d bytes\n", pt.label, pt.stats.Messages, pt.stats.Bytes)
			}
			if f.Net.FaultPlanActive() {
				cs := f.Net.ChaosStats()
				fmt.Printf("chaos: %d drops, %d error replies, %d slow calls, %d flap rejects, %d crashes\n",
					cs.Drops, cs.InjectedErrors, cs.SlowCalls, cs.FlapRejects, cs.Crashes)
			}
			continue
		case strings.HasPrefix(line, `\down `) || strings.HasPrefix(line, `\up `):
			down := strings.HasPrefix(line, `\down `)
			id := strings.TrimSpace(line[strings.Index(line, " ")+1:])
			if _, ok := f.Nodes[id]; !ok {
				fmt.Printf("unknown node %q\n", id)
				continue
			}
			f.Net.SetDown(id, down)
			if down {
				fmt.Printf("%s is down (peers now get hard errors; \\up %s to restore)\n", id, id)
			} else {
				fmt.Printf("%s is back up\n", id)
			}
			continue
		case strings.HasPrefix(line, `\drain `) || strings.HasPrefix(line, `\undrain `):
			drain := strings.HasPrefix(line, `\drain `)
			id := strings.TrimSpace(line[strings.Index(line, " ")+1:])
			n, ok := f.Nodes[id]
			if !ok {
				fmt.Printf("unknown node %q\n", id)
				continue
			}
			if drain {
				n.Drain("operator")
				fmt.Printf("%s draining: new negotiations refused, in-flight work finishes (\\undrain %s to rejoin)\n", id, id)
			} else if n.Undrain() {
				fmt.Printf("%s active again\n", id)
			} else {
				fmt.Printf("%s is not draining (state %s)\n", id, n.State())
			}
			continue
		case strings.HasPrefix(line, `\chaos`):
			args := strings.Fields(strings.TrimPrefix(line, `\chaos`))
			switch {
			case len(args) == 1 && args[0] == "off":
				f.Net.SetFaultPlan(nil)
				fmt.Println("chaos off")
			case len(args) == 2:
				seed, err1 := strconv.ParseInt(args[0], 10, 64)
				rate, err2 := strconv.ParseFloat(args[1], 64)
				if err1 != nil || err2 != nil || rate < 0 || rate > 1 {
					fmt.Println(`usage: \chaos <seed> <drop-rate 0..1> | \chaos off`)
					continue
				}
				f.Net.SetFaultPlan(&netsim.FaultPlan{Seed: seed, DropProb: rate})
				fmt.Printf("chaos on: seed %d, dropping %.0f%% of requests (\\chaos off to stop)\n", seed, rate*100)
			default:
				fmt.Println(`usage: \chaos <seed> <drop-rate 0..1> | \chaos off`)
			}
			continue
		case line == `\nodes`:
			ids := make([]string, 0, len(f.Nodes))
			for id := range f.Nodes {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				n := f.Nodes[id]
				h := n.Health()
				fmt.Printf("  %-10s state=%-8s ready=%-5v queue=%d inflight=%d tables=%v\n",
					id, h.State, h.Ready, h.QueueDepth, h.InflightRFBs, n.Store().Tables())
			}
			continue
		case s.command(line):
			continue
		case strings.HasPrefix(line, `\`):
			fmt.Printf("unknown command %s\n", line)
			continue
		}
		sql, explainOnly, analyze, tr := s.begin(line)
		cfg := f.BuyerConfig()
		cfg.Metrics = s.metrics
		cfg.Tracer = tr
		cfg.Ledger = s.ledg
		cfg.Flight = s.flight
		res, err := f.Optimize(cfg, sql)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			s.end(tr)
			continue
		}
		if analyze {
			st := exec.NewRunStats()
			ex := &exec.Executor{Store: f.Nodes[f.Buyer].Store(), Stats: st}
			if _, err := core.ExecuteResultTraced(f.Comm(), ex, res, tr); err != nil {
				fmt.Printf("execution error: %v\n", err)
				s.end(tr)
				continue
			}
			fmt.Print(core.ExplainAnalyze(res, st))
			s.end(tr)
			continue
		}
		fmt.Print(core.ExplainResult(res))
		if explainOnly {
			s.end(tr)
			continue
		}
		ex := &exec.Executor{Store: f.Nodes[f.Buyer].Store()}
		out, err := core.ExecuteResultTraced(f.Comm(), ex, res, tr)
		s.end(tr)
		if err != nil {
			fmt.Printf("execution error: %v\n", err)
			continue
		}
		printResult(out)
	}
}

// setupLogging installs a text slog handler at the requested level.
func setupLogging(level string) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "error":
		lv = slog.LevelError
	case "warn", "":
		lv = slog.LevelWarn
	default:
		lv = slog.LevelWarn
		fmt.Fprintf(os.Stderr, "qtsql: unknown -log-level %q, using warn\n", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))
}

type pairLine struct {
	label string
	stats netsim.PairStats
}

func sortedPairs(net *netsim.Network) []pairLine {
	byPair := net.StatsByPair()
	out := make([]pairLine, 0, len(byPair))
	for p, st := range byPair {
		out = append(out, pairLine{label: p.From + "->" + p.To, stats: st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// runRemote drives a federation of qtnode processes over net/rpc. With a
// positive callTimeout both dialing and every RPC are bounded, so a hung or
// unreachable qtnode fails fast instead of stalling the shell.
func runRemote(offices, connect string, callTimeout time.Duration, obsAddr string, traceKeep int, histWindow time.Duration) {
	sch := workload.TelcoSchema(strings.Split(offices, ","))
	peers := map[string]trading.Peer{}
	rpcPeers := map[string]*netsim.RPCPeer{}
	for _, pair := range strings.Split(connect, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			slog.Error("bad -connect entry (want id=addr)", "entry", pair)
			os.Exit(1)
		}
		var p *netsim.RPCPeer
		var err error
		if callTimeout > 0 {
			p, err = netsim.DialPeerTimeout(addr, id, callTimeout)
		} else {
			p, err = netsim.DialPeer(addr, id)
		}
		if err != nil {
			slog.Error("dial failed", "node", id, "addr", addr, "err", err)
			os.Exit(1)
		}
		defer p.Close()
		peers[id] = p
		rpcPeers[id] = p
		slog.Info("connected", "node", id, "addr", addr)
		fmt.Printf("connected to %s at %s\n", id, addr)
	}
	comm := &core.PeerComm{
		PeerMap: peers,
		AwardFn: func(to string, aw trading.Award) error { return rpcPeers[to].Award(aw) },
		FetchFn: func(to string, req trading.ExecReq) (trading.ExecResp, error) {
			return rpcPeers[to].Execute(req)
		},
	}
	s := &session{metrics: obs.NewMetrics(), ledg: ledger.New(0),
		flight: flight.NewRecorder(0), keep: traceKeep, window: histWindow,
		attach: func(*obs.Tracer) {}}
	s.serveObs(obsAddr)
	fmt.Println(`type SQL, "EXPLAIN [ANALYZE] <sql>", "\trace on", "\metrics", "\ledger", "\calibration", "\slow [n]" or "\quit"`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("qtsql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			return
		}
		if s.command(line) {
			continue
		}
		if strings.HasPrefix(line, `\`) {
			fmt.Printf("unknown command %s\n", line)
			continue
		}
		sql, explainOnly, analyze, tr := s.begin(line)
		res, err := core.Optimize(core.Config{ID: "qtsql", Schema: sch, Metrics: s.metrics,
			Tracer: tr, Ledger: s.ledg, Flight: s.flight}, comm, sql)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			s.end(tr)
			continue
		}
		if analyze {
			st := exec.NewRunStats()
			if _, err := core.ExecuteResultTraced(comm, &exec.Executor{Stats: st}, res, tr); err != nil {
				fmt.Printf("execution error: %v\n", err)
				s.end(tr)
				continue
			}
			fmt.Print(core.ExplainAnalyze(res, st))
			s.end(tr)
			continue
		}
		fmt.Print(core.ExplainResult(res))
		if explainOnly {
			s.end(tr)
			continue
		}
		out, err := core.ExecuteResultTraced(comm, &exec.Executor{}, res, tr)
		s.end(tr)
		if err != nil {
			fmt.Printf("execution error: %v\n", err)
			continue
		}
		printResult(out)
	}
}

func printResult(res *exec.Result) {
	header := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		header[i] = c.Name
		if c.Table != "" {
			header[i] = c.Table + "." + c.Name
		}
	}
	fmt.Println(strings.Join(header, " | "))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = renderValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func renderValue(v value.Value) string {
	if v.K == value.Str {
		return v.S
	}
	return v.String()
}
