// Command qtsql is an interactive shell over a query-trading federation:
// type SQL, get the trading-optimized distributed plan and its answer.
//
// By default it simulates a telco federation in-process. With -connect it
// becomes the buyer of a real multi-process federation served by qtnode:
//
//	qtnode -id corfu -listen :7001 -office Corfu &
//	qtnode -id myconos -listen :7002 -office Myconos &
//	qtsql -connect corfu=localhost:7001,myconos=localhost:7002
//
// Commands: EXPLAIN <query>, \stats, \nodes, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

func main() {
	customers := flag.Int("customers", 50, "customers per office")
	offices := flag.String("offices", "Corfu,Myconos,Athens", "federation offices")
	connect := flag.String("connect", "", "comma-separated id=addr pairs of qtnode servers; empty = in-process simulation")
	flag.Parse()

	if *connect != "" {
		runRemote(*offices, *connect)
		return
	}

	f := workload.NewTelco(workload.TelcoOptions{
		Offices:            strings.Split(*offices, ","),
		CustomersPerOffice: *customers,
		Seed:               1,
	})
	fmt.Printf("query-trading federation: offices %s + buyer hq\n", *offices)
	fmt.Println(`type SQL, "EXPLAIN <sql>", "\stats", "\nodes" or "\quit"`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("qtsql> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\stats`:
			msgs, bytes := f.Net.Stats()
			fmt.Printf("network: %d messages, %d bytes\n", msgs, bytes)
			continue
		case line == `\nodes`:
			ids := make([]string, 0, len(f.Nodes))
			for id := range f.Nodes {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				n := f.Nodes[id]
				fmt.Printf("  %-10s tables=%v\n", id, n.Store().Tables())
			}
			continue
		}
		explainOnly := false
		sql := line
		if strings.HasPrefix(strings.ToUpper(line), "EXPLAIN ") {
			explainOnly = true
			sql = strings.TrimSpace(line[len("EXPLAIN "):])
		}
		res, err := f.Optimize(f.BuyerConfig(), sql)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Print(core.ExplainResult(res))
		if explainOnly {
			continue
		}
		ex := &exec.Executor{Store: f.Nodes[f.Buyer].Store()}
		out, err := core.ExecuteResult(f.Comm(), ex, res)
		if err != nil {
			fmt.Printf("execution error: %v\n", err)
			continue
		}
		printResult(out)
	}
}

// runRemote drives a federation of qtnode processes over net/rpc.
func runRemote(offices, connect string) {
	sch := workload.TelcoSchema(strings.Split(offices, ","))
	peers := map[string]trading.Peer{}
	rpcPeers := map[string]*netsim.RPCPeer{}
	for _, pair := range strings.Split(connect, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			log.Fatalf("qtsql: bad -connect entry %q (want id=addr)", pair)
		}
		p, err := netsim.DialPeer(addr, id)
		if err != nil {
			log.Fatalf("qtsql: dial %s (%s): %v", id, addr, err)
		}
		defer p.Close()
		peers[id] = p
		rpcPeers[id] = p
		fmt.Printf("connected to %s at %s\n", id, addr)
	}
	comm := &core.PeerComm{
		PeerMap: peers,
		AwardFn: func(to string, aw trading.Award) error { return rpcPeers[to].Award(aw) },
		FetchFn: func(to string, req trading.ExecReq) (trading.ExecResp, error) {
			return rpcPeers[to].Execute(req)
		},
	}
	fmt.Println(`type SQL, "EXPLAIN <sql>" or "\quit"`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("qtsql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			return
		}
		explainOnly := false
		sql := line
		if strings.HasPrefix(strings.ToUpper(line), "EXPLAIN ") {
			explainOnly = true
			sql = strings.TrimSpace(line[len("EXPLAIN "):])
		}
		res, err := core.Optimize(core.Config{ID: "qtsql", Schema: sch}, comm, sql)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Print(core.ExplainResult(res))
		if explainOnly {
			continue
		}
		out, err := core.ExecuteResult(comm, &exec.Executor{}, res)
		if err != nil {
			fmt.Printf("execution error: %v\n", err)
			continue
		}
		printResult(out)
	}
}

func printResult(res *exec.Result) {
	header := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		header[i] = c.Name
		if c.Table != "" {
			header[i] = c.Table + "." + c.Name
		}
	}
	fmt.Println(strings.Join(header, " | "))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = renderValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func renderValue(v value.Value) string {
	if v.K == value.Str {
		return v.S
	}
	return v.String()
}
