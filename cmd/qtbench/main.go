// Command qtbench regenerates the paper's evaluation: every table and
// figure (reconstructed per DESIGN.md) at quick or full scale.
//
// Usage:
//
//	qtbench                      # all experiments, quick scale
//	qtbench -full                # all experiments, paper scale (minutes)
//	qtbench -exp F3 -exp T1      # a subset
//	qtbench -seed 7
//	qtbench -exp F3 -trace f3.json -metrics  # Chrome trace + metrics dump
//	qtbench -exp F15 -clients 1,2,4,8        # throughput at a custom client sweep
//	qtbench -exp T1 -ledger                  # calibration report after the run
//	qtbench -exp F19 -json bench.json        # machine-readable result artifact
//
// -trace writes a Chrome trace_event file of every optimization the selected
// experiments ran (load it in chrome://tracing or https://ui.perfetto.dev);
// -metrics prints the buyer/seller metrics snapshot after the run;
// -clients overrides the closed-loop client counts the F15 throughput
// experiment sweeps; -ledger audits every negotiation in a trading ledger
// and prints the per-seller calibration report when done (F16 keeps its own
// per-variant ledgers, so its negotiations print in its table instead).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"qtrade/internal/experiments"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

type expFlags []string

func (e *expFlags) String() string     { return strings.Join(*e, ",") }
func (e *expFlags) Set(v string) error { *e = append(*e, strings.ToUpper(v)); return nil }

func main() {
	var exps expFlags
	full := flag.Bool("full", false, "run at paper scale (minutes of runtime)")
	seed := flag.Int64("seed", 1, "workload seed")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file")
	metricsDump := flag.Bool("metrics", false, "print the metrics snapshot after the run")
	clients := flag.String("clients", "", "comma-separated closed-loop client counts for F15 (e.g. 1,2,4,8)")
	ledgerDump := flag.Bool("ledger", false, "audit every negotiation in a trading ledger and print the calibration report after the run")
	jsonPath := flag.String("json", "", "also write the run's tables as a JSON artifact (experiments, seed, scale, commit) to this file")
	flag.Var(&exps, "exp", "experiment id to run (repeatable): T1, F1..F19; default all")
	flag.Parse()

	if *clients != "" {
		var counts []int
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "qtbench: -clients wants positive ints, got %q\n", part)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		experiments.SetF15Clients(counts)
	}

	var tracer *obs.Tracer
	var metrics *obs.Metrics
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	if *metricsDump || *tracePath != "" {
		metrics = obs.NewMetrics()
	}
	if tracer != nil || metrics != nil {
		experiments.SetObs(tracer, metrics)
	}
	var led *ledger.Ledger
	if *ledgerDump {
		led = ledger.New(0)
		experiments.SetLedger(led)
	}

	var specs []experiments.Spec
	if *full {
		specs = experiments.FullSpecs(*seed)
	} else {
		specs = experiments.QuickSpecs(*seed)
	}
	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	var tables []*experiments.Table
	for _, s := range specs {
		if len(want) > 0 && !want[s.ID] {
			continue
		}
		t := s.Run()
		t.Fprint(os.Stdout)
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "qtbench: no experiment matched %v (have T1, T2, F1..F19)\n", exps)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := writeArtifact(*jsonPath, *seed, *full, tables); err != nil {
			fmt.Fprintf(os.Stderr, "qtbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qtbench: wrote JSON artifact to %s\n", *jsonPath)
	}

	if tracer != nil {
		w, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qtbench: %v\n", err)
			os.Exit(1)
		}
		err = tracer.WriteChromeTrace(w)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qtbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qtbench: wrote Chrome trace to %s\n", *tracePath)
	}
	if *metricsDump {
		fmt.Print(metrics.Snapshot())
	}
	if led != nil {
		fmt.Printf("-- trading ledger: %d negotiations audited --\n%s", led.Len(), led.Calibration().Text())
	}
}

// writeArtifact dumps the run as one machine-readable JSON file so CI can
// archive benchmark results and diff them across commits.
func writeArtifact(path string, seed int64, full bool, tables []*experiments.Table) error {
	scale := "quick"
	if full {
		scale = "full"
	}
	art := struct {
		Seed        int64                `json:"seed"`
		Scale       string               `json:"scale"`
		Commit      string               `json:"commit,omitempty"`
		RunAt       string               `json:"run_at"`
		Experiments []*experiments.Table `json:"experiments"`
	}{Seed: seed, Scale: scale, RunAt: time.Now().UTC().Format(time.RFC3339), Experiments: tables}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				art.Commit = s.Value
			}
		}
	}
	body, err := json.MarshalIndent(art, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}
