// Command qtbench regenerates the paper's evaluation: every table and
// figure (reconstructed per DESIGN.md) at quick or full scale.
//
// Usage:
//
//	qtbench                 # all experiments, quick scale
//	qtbench -full           # all experiments, paper scale (minutes)
//	qtbench -exp F3 -exp T1 # a subset
//	qtbench -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qtrade/internal/experiments"
)

type expFlags []string

func (e *expFlags) String() string     { return strings.Join(*e, ",") }
func (e *expFlags) Set(v string) error { *e = append(*e, strings.ToUpper(v)); return nil }

func main() {
	var exps expFlags
	full := flag.Bool("full", false, "run at paper scale (minutes of runtime)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Var(&exps, "exp", "experiment id to run (repeatable): T1, F1..F9; default all")
	flag.Parse()

	var tables []*experiments.Table
	if *full {
		tables = experiments.Full(*seed)
	} else {
		tables = experiments.Quick(*seed)
	}
	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	printed := 0
	for _, t := range tables {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		t.Fprint(os.Stdout)
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "qtbench: no experiment matched %v (have T1, F1..F9)\n", exps)
		os.Exit(1)
	}
}
