// Command qtnode serves one autonomous federation node over TCP (net/rpc),
// so a federation can run as separate processes instead of in-process
// simulation. For demonstration it loads one office of the telco
// customer-care scenario.
//
// Usage:
//
//	qtnode -id corfu -listen :7001 -offices Corfu,Myconos,Athens -office Corfu
//
// A buyer process can then dial each node with netsim.DialPeer and run the
// same trading protocols used in simulation. On SIGINT/SIGTERM the node
// prints its seller-side metrics (RFBs served, offers priced, pricing
// latency histograms) before exiting.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

func main() {
	id := flag.String("id", "corfu", "node id (also the RPC service name)")
	listen := flag.String("listen", ":7001", "TCP listen address")
	officesFlag := flag.String("offices", "Corfu,Myconos,Athens", "all offices of the federation schema")
	office := flag.String("office", "Corfu", "the office whose customer partition this node holds")
	customers := flag.Int("customers", 100, "customers per office")
	lines := flag.Int("lines", 3, "invoice lines per customer")
	invoices := flag.Bool("invoices", true, "hold a full invoiceline replica")
	competitive := flag.Bool("competitive", false, "price with an adaptive profit margin instead of truthfully")
	slow := flag.Duration("slow", 0, "delay added to every served call (simulate a straggling seller)")
	seed := flag.Int64("seed", 1, "data seed (must match across the federation)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	flag.Parse()

	setupLogging(*logLevel)

	offices := strings.Split(*officesFlag, ",")
	// Build the full deterministic dataset, then keep only this node's part
	// (every process generates the same federation from the shared seed).
	opts := workload.TelcoOptions{
		Offices:            offices,
		CustomersPerOffice: *customers,
		LinesPerCustomer:   *lines,
		Seed:               *seed,
	}
	fed := workload.NewTelco(opts)
	src, ok := fed.Nodes[strings.ToLower(*office)]
	if !ok {
		slog.Error("office not in federation", "office", *office, "offices", offices)
		os.Exit(1)
	}

	var strat trading.SellerStrategy
	if *competitive {
		strat = trading.NewCompetitive()
	}
	metrics := obs.NewMetrics()
	n := node.New(node.Config{ID: *id, Schema: fed.Schema, Strategy: strat, Metrics: metrics})
	copyStore(src, n)
	if !*invoices {
		// Rebuild without the invoice replica: keep only customer data.
		n = node.New(node.Config{ID: *id, Schema: fed.Schema, Strategy: strat, Metrics: metrics})
		copyTable(src, n, "customer")
	}

	var svc netsim.Service = n
	if *slow > 0 {
		svc = slowService{Service: n, delay: *slow}
	}
	ln, err := netsim.ServeRPC(*listen, *id, svc)
	if err != nil {
		slog.Error("serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("serving", "id", *id, "office", *office, "addr", ln.Addr().String(),
		"tables", fmt.Sprint(n.Store().Tables()), "competitive", *competitive, "slow", *slow)
	fmt.Printf("qtnode %s serving office %s on %s (tables: %v)\n",
		*id, *office, ln.Addr(), n.Store().Tables())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	_ = ln.Close()
	slog.Info("shutting down", "id", *id)
	if snap := metrics.Snapshot(); snap != "" {
		fmt.Printf("-- seller metrics for %s --\n%s", *id, snap)
	}
}

// slowService delays every served call by a fixed amount — a permanently
// slow seller for exercising the buyer's call timeouts and circuit breakers
// against a real process.
type slowService struct {
	netsim.Service
	delay time.Duration
}

func (s slowService) RequestBids(rfb trading.RFB) ([]trading.Offer, error) {
	time.Sleep(s.delay)
	return s.Service.RequestBids(rfb)
}

func (s slowService) ImproveBids(req trading.ImproveReq) ([]trading.Offer, error) {
	time.Sleep(s.delay)
	return s.Service.ImproveBids(req)
}

func (s slowService) Award(aw trading.Award) error {
	time.Sleep(s.delay)
	return s.Service.Award(aw)
}

func (s slowService) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	time.Sleep(s.delay)
	return s.Service.Execute(req)
}

// setupLogging installs a text slog handler at the requested level.
func setupLogging(level string) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "info", "":
		lv = slog.LevelInfo
	default:
		lv = slog.LevelInfo
		fmt.Fprintf(os.Stderr, "qtnode: unknown -log-level %q, using info\n", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))
}

func copyStore(src, dst *node.Node) {
	for _, table := range src.Store().Tables() {
		copyTable(src, dst, table)
	}
}

func copyTable(src, dst *node.Node, table string) {
	def, ok := src.Schema().Table(table)
	if !ok {
		return
	}
	for _, pid := range src.Store().PartIDs(table) {
		if _, err := dst.Store().CreateFragment(def, pid); err != nil {
			fatal(err)
		}
		var rows []value.Row
		if err := src.Store().Scan(table, pid, nil, func(r value.Row) bool {
			rows = append(rows, r)
			return true
		}); err != nil {
			fatal(err)
		}
		if err := dst.Store().Insert(table, pid, rows...); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	slog.Error("data load failed", "err", err)
	os.Exit(1)
}
