// Command qtnode serves one autonomous federation node over TCP (net/rpc),
// so a federation can run as separate processes instead of in-process
// simulation. For demonstration it loads one office of the telco
// customer-care scenario.
//
// Usage:
//
//	qtnode -id corfu -listen :7001 -offices Corfu,Myconos,Athens -office Corfu
//
// A buyer process can then dial each node with netsim.DialPeer and run the
// same trading protocols used in simulation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

func main() {
	id := flag.String("id", "corfu", "node id (also the RPC service name)")
	listen := flag.String("listen", ":7001", "TCP listen address")
	officesFlag := flag.String("offices", "Corfu,Myconos,Athens", "all offices of the federation schema")
	office := flag.String("office", "Corfu", "the office whose customer partition this node holds")
	customers := flag.Int("customers", 100, "customers per office")
	lines := flag.Int("lines", 3, "invoice lines per customer")
	invoices := flag.Bool("invoices", true, "hold a full invoiceline replica")
	competitive := flag.Bool("competitive", false, "price with an adaptive profit margin instead of truthfully")
	seed := flag.Int64("seed", 1, "data seed (must match across the federation)")
	flag.Parse()

	offices := strings.Split(*officesFlag, ",")
	// Build the full deterministic dataset, then keep only this node's part
	// (every process generates the same federation from the shared seed).
	opts := workload.TelcoOptions{
		Offices:            offices,
		CustomersPerOffice: *customers,
		LinesPerCustomer:   *lines,
		Seed:               *seed,
	}
	fed := workload.NewTelco(opts)
	src, ok := fed.Nodes[strings.ToLower(*office)]
	if !ok {
		log.Fatalf("qtnode: office %q not in %v", *office, offices)
	}

	var strat trading.SellerStrategy
	if *competitive {
		strat = trading.NewCompetitive()
	}
	n := node.New(node.Config{ID: *id, Schema: fed.Schema, Strategy: strat})
	copyStore(src, n)
	if !*invoices {
		// Rebuild without the invoice replica: keep only customer data.
		n = node.New(node.Config{ID: *id, Schema: fed.Schema, Strategy: strat})
		copyTable(src, n, "customer")
	}

	ln, err := netsim.ServeRPC(*listen, *id, n)
	if err != nil {
		log.Fatalf("qtnode: %v", err)
	}
	fmt.Printf("qtnode %s serving office %s on %s (tables: %v)\n",
		*id, *office, ln.Addr(), n.Store().Tables())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	_ = ln.Close()
}

func copyStore(src, dst *node.Node) {
	for _, table := range src.Store().Tables() {
		copyTable(src, dst, table)
	}
}

func copyTable(src, dst *node.Node, table string) {
	def, ok := src.Schema().Table(table)
	if !ok {
		return
	}
	for _, pid := range src.Store().PartIDs(table) {
		if _, err := dst.Store().CreateFragment(def, pid); err != nil {
			log.Fatalf("qtnode: %v", err)
		}
		var rows []value.Row
		if err := src.Store().Scan(table, pid, nil, func(r value.Row) bool {
			rows = append(rows, r)
			return true
		}); err != nil {
			log.Fatalf("qtnode: %v", err)
		}
		if err := dst.Store().Insert(table, pid, rows...); err != nil {
			log.Fatalf("qtnode: %v", err)
		}
	}
}
