// Command qtnode serves one autonomous federation node over TCP (net/rpc),
// so a federation can run as separate processes instead of in-process
// simulation. For demonstration it loads one office of the telco
// customer-care scenario.
//
// Usage:
//
//	qtnode -id corfu -listen :7001 -offices Corfu,Myconos,Athens -office Corfu
//
// A buyer process can then dial each node with netsim.DialPeer and run the
// same trading protocols used in simulation. On SIGINT/SIGTERM the node
// drains gracefully: new Depth-0 RFBs are refused while in-flight awards
// and deliveries finish (bounded by -drain-timeout), standing offers are
// revoked, and the seller-side metrics (RFBs served, offers priced, pricing
// latency histograms) are printed before exiting. A second signal exits
// without waiting.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

func main() {
	id := flag.String("id", "corfu", "node id (also the RPC service name)")
	listen := flag.String("listen", ":7001", "TCP listen address")
	officesFlag := flag.String("offices", "Corfu,Myconos,Athens", "all offices of the federation schema")
	office := flag.String("office", "Corfu", "the office whose customer partition this node holds")
	customers := flag.Int("customers", 100, "customers per office")
	lines := flag.Int("lines", 3, "invoice lines per customer")
	invoices := flag.Bool("invoices", true, "hold a full invoiceline replica")
	competitive := flag.Bool("competitive", false, "price with an adaptive profit margin instead of truthfully")
	slow := flag.Duration("slow", 0, "delay added to every served call (simulate a straggling seller)")
	seed := flag.Int64("seed", 1, "data seed (must match across the federation)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	obsAddr := flag.String("obs-addr", "", "HTTP address serving /metrics (Prometheus text), /metrics/history, /healthz, /debug/pprof/*, /trace/last, /ledger and /calibration (empty = no exposition)")
	traceKeep := flag.Int("trace-keep", 0, "how many sampled traces /trace/last retains (0 = default capacity)")
	historyWindow := flag.Duration("history-window", 0, "width of one /metrics/history rollup window (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGINT/SIGTERM drain waits for in-flight work before revoking standing offers and exiting")
	peersFlag := flag.String("peers", "", "subcontract peers as id=addr,... — enables §3.5 Depth-1 subcontracting over net/rpc (peers are dialed lazily)")
	flag.Parse()

	setupLogging(*logLevel)

	offices := strings.Split(*officesFlag, ",")
	// Build the full deterministic dataset, then keep only this node's part
	// (every process generates the same federation from the shared seed).
	opts := workload.TelcoOptions{
		Offices:            offices,
		CustomersPerOffice: *customers,
		LinesPerCustomer:   *lines,
		Seed:               *seed,
	}
	fed := workload.NewTelco(opts)
	src, ok := fed.Nodes[strings.ToLower(*office)]
	if !ok {
		slog.Error("office not in federation", "office", *office, "offices", offices)
		os.Exit(1)
	}

	var strat trading.SellerStrategy
	if *competitive {
		strat = trading.NewCompetitive()
	}
	metrics := obs.NewMetrics()
	cfg := node.Config{ID: *id, Schema: fed.Schema, Strategy: strat, Metrics: metrics}
	if *peersFlag != "" {
		dialer, err := newPeerDialer(*peersFlag)
		if err != nil {
			slog.Error("bad -peers", "err", err)
			os.Exit(1)
		}
		cfg.SubcontractPeers = dialer.peers
		cfg.SubcontractFetch = dialer.fetch
	}
	n := node.New(cfg)
	copyStore(src, n)
	if !*invoices {
		// Rebuild without the invoice replica: keep only customer data.
		n = node.New(cfg)
		copyTable(src, n, "customer")
	}
	traceLog := obs.NewTraceLogN(*traceKeep)
	n.SetTraceLog(traceLog)
	led := ledger.New(0)
	n.SetLedger(led)

	if *obsAddr != "" {
		// Windowed metrics history + anomaly watchdog: the sampler rolls the
		// registry into fixed-width windows served at /metrics/history, and
		// the watchdog compares each fresh window against trailing baselines,
		// recording anomalies into the ledger and watchdog.* gauges.
		hist := obs.NewHistory(metrics, *historyWindow, 0)
		wd := flight.NewWatchdog(flight.WatchdogConfig{}, led, metrics)
		wd.Attach(hist)
		hist.Start()
		go func() {
			h := obs.Handler(metrics, traceLog,
				obs.Endpoint{Path: "/ledger", Handler: led},
				obs.Endpoint{Path: "/calibration", Handler: led.CalibrationHandler()},
				obs.Endpoint{Path: "/metrics/history", Handler: hist},
				obs.HealthEndpoint(func() any { return n.Health() }))
			if err := http.ListenAndServe(*obsAddr, h); err != nil {
				slog.Error("obs server failed", "addr", *obsAddr, "err", err)
			}
		}()
		slog.Info("obs exposition", "addr", *obsAddr)
	}

	var svc netsim.Service = n
	if *slow > 0 {
		svc = slowService{Service: n, delay: *slow}
	}
	ln, err := netsim.ServeRPC(*listen, *id, svc)
	if err != nil {
		slog.Error("serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("serving", "id", *id, "office", *office, "addr", ln.Addr().String(),
		"tables", fmt.Sprint(n.Store().Tables()), "competitive", *competitive, "slow", *slow)
	fmt.Printf("qtnode %s serving office %s on %s (tables: %v)\n",
		*id, *office, ln.Addr(), n.Store().Tables())

	// Graceful drain: the first SIGINT/SIGTERM flips the node to Draining —
	// new Depth-0 RFBs are refused with a typed drain rejection (buyers skip
	// this node without burning retries) while in-flight awards, deliveries
	// and subcontracts run to completion (bounded by -drain-timeout). Only
	// then are the remaining standing offers revoked and the listener
	// closed. A second signal skips the wait and exits hard.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	n.Drain("signal")
	slog.Info("draining", "id", *id, "timeout", *drainTimeout)
	quiesced := make(chan bool, 1)
	go func() { quiesced <- n.Quiesce(*drainTimeout) }()
	select {
	case ok := <-quiesced:
		if !ok {
			slog.Warn("drain timeout elapsed with work still in flight", "id", *id)
		}
	case <-sig:
		slog.Warn("second signal: exiting without waiting for quiesce", "id", *id)
	}
	revoked := n.RevokeStandingOffers()
	_ = ln.Close()
	slog.Info("shutting down", "id", *id, "standing_offers_revoked", revoked)
	if snap := metrics.Snapshot(); snap != "" {
		fmt.Printf("-- seller metrics for %s --\n%s", *id, snap)
	}
}

// slowService delays every served call by a fixed amount — a permanently
// slow seller for exercising the buyer's call timeouts and circuit breakers
// against a real process.
type slowService struct {
	netsim.Service
	delay time.Duration
}

func (s slowService) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	time.Sleep(s.delay)
	return s.Service.RequestBids(rfb)
}

func (s slowService) ImproveBids(req trading.ImproveReq) (trading.BidReply, error) {
	time.Sleep(s.delay)
	return s.Service.ImproveBids(req)
}

func (s slowService) Award(aw trading.Award) error {
	time.Sleep(s.delay)
	return s.Service.Award(aw)
}

func (s slowService) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	time.Sleep(s.delay)
	return s.Service.Execute(req)
}

// peerDialer lazily dials subcontract peers by id so a federation of qtnode
// processes can start in any order: a peer is connected on first use, and
// an unreachable peer simply stays out of the subcontracting pool.
type peerDialer struct {
	mu    sync.Mutex
	addrs map[string]string
	conns map[string]*netsim.RPCPeer
}

func newPeerDialer(spec string) (*peerDialer, error) {
	d := &peerDialer{addrs: map[string]string{}, conns: map[string]*netsim.RPCPeer{}}
	for _, ent := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("want id=addr, got %q", ent)
		}
		d.addrs[id] = addr
	}
	return d, nil
}

func (d *peerDialer) peer(id string) (*netsim.RPCPeer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.conns[id]; ok {
		return p, nil
	}
	addr, ok := d.addrs[id]
	if !ok {
		return nil, fmt.Errorf("unknown subcontract peer %q", id)
	}
	p, err := netsim.DialPeerTimeout(addr, id, 5*time.Second)
	if err != nil {
		return nil, err
	}
	d.conns[id] = p
	return p, nil
}

func (d *peerDialer) peers() map[string]trading.Peer {
	out := map[string]trading.Peer{}
	for id := range d.addrs {
		p, err := d.peer(id)
		if err != nil {
			slog.Warn("subcontract peer unavailable", "peer", id, "err", err)
			continue
		}
		out[id] = p
	}
	return out
}

func (d *peerDialer) fetch(peerID string, req trading.ExecReq) (trading.ExecResp, error) {
	p, err := d.peer(peerID)
	if err != nil {
		return trading.ExecResp{}, err
	}
	return p.Execute(req)
}

// setupLogging installs a text slog handler at the requested level.
func setupLogging(level string) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "info", "":
		lv = slog.LevelInfo
	default:
		lv = slog.LevelInfo
		fmt.Fprintf(os.Stderr, "qtnode: unknown -log-level %q, using info\n", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))
}

func copyStore(src, dst *node.Node) {
	for _, table := range src.Store().Tables() {
		copyTable(src, dst, table)
	}
}

func copyTable(src, dst *node.Node, table string) {
	def, ok := src.Schema().Table(table)
	if !ok {
		return
	}
	for _, pid := range src.Store().PartIDs(table) {
		if _, err := dst.Store().CreateFragment(def, pid); err != nil {
			fatal(err)
		}
		var rows []value.Row
		if err := src.Store().Scan(table, pid, nil, func(r value.Row) bool {
			rows = append(rows, r)
			return true
		}); err != nil {
			fatal(err)
		}
		if err := dst.Store().Insert(table, pid, rows...); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	slog.Error("data load failed", "err", err)
	os.Exit(1)
}
