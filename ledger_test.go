package qtrade

import (
	"bytes"
	"strings"
	"testing"
)

// buildLedgerFed is buildFed with the trading ledger enabled at creation.
func buildLedgerFed(t *testing.T, fopts []FederationOption, opts ...NodeOption) *Federation {
	t.Helper()
	sch := NewSchema()
	sch.MustTable("customer",
		Col("custid", Int), Col("custname", Str), Col("office", Str))
	sch.MustTable("invoiceline",
		Col("invid", Int), Col("linenum", Int), Col("custid", Int), Col("charge", Float))
	sch.MustPartition("customer",
		Part("corfu", "office = 'Corfu'"),
		Part("myconos", "office = 'Myconos'"),
		Part("athens", "office = 'Athens'"))

	fed := NewFederation(sch, fopts...)
	offices := map[string][][]any{
		"corfu":   {{1, "alice", "Corfu"}, {2, "bob", "Corfu"}},
		"myconos": {{3, "carol", "Myconos"}, {5, "eve", "Myconos"}},
		"athens":  {{4, "dave", "Athens"}},
	}
	lines := [][]any{
		{100, 1, 1, 10.0}, {100, 2, 1, 5.0}, {101, 1, 2, 7.0},
		{102, 1, 3, 20.0}, {103, 1, 5, 2.0}, {104, 1, 4, 100.0},
	}
	for id, custRows := range offices {
		n := fed.MustAddNode(id, opts...)
		n.MustCreateFragment("customer", id)
		for _, r := range custRows {
			n.MustInsert("customer", id, Row(r...))
		}
		if id != "athens" {
			n.MustCreateFragment("invoiceline", "p0")
			for _, r := range lines {
				n.MustInsert("invoiceline", "p0", Row(r...))
			}
		}
	}
	fed.MustAddNode("hq", opts...)
	return fed
}

func TestWithLedgerEndToEnd(t *testing.T) {
	fed := buildLedgerFed(t, []FederationOption{WithLedger(16)})
	if fed.Ledger() == nil {
		t.Fatal("WithLedger did not attach a ledger")
	}
	res, err := fed.Query("hq", totalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}

	var buf bytes.Buffer
	if err := fed.WriteLedgerJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"kind":"rfb"`, `"kind":"bid"`, `"kind":"award"`,
		`"kind":"exec"`, `"kind":"fetch"`, `"kind":"priced"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("ledger JSONL missing %s:\n%s", want, out)
		}
	}

	rep := fed.CalibrationReport()
	if rep.Negotiations == 0 {
		t.Fatalf("calibration saw no negotiations: %+v", rep)
	}
	if len(rep.Sellers) == 0 {
		t.Fatal("calibration saw no sellers")
	}
	execs := int64(0)
	for _, s := range rep.Sellers {
		execs += s.Execs
	}
	if execs == 0 {
		t.Fatalf("no seller recorded a measured execution: %+v", rep.Sellers)
	}
	if !strings.Contains(rep.Text(), "seller calibration") {
		t.Fatalf("report text: %s", rep.Text())
	}
}

func TestWithoutLedgerIsInert(t *testing.T) {
	fed := buildLedgerFed(t, nil)
	if fed.Ledger() != nil {
		t.Fatal("ledger should be nil by default")
	}
	if _, err := fed.Query("hq", totalsQuery); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fed.WriteLedgerJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("unexpected ledger output: %s", buf.String())
	}
	rep := fed.CalibrationReport()
	if rep.Negotiations != 0 || len(rep.Sellers) != 0 {
		t.Fatalf("report should be zero: %+v", rep)
	}
}
