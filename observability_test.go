package qtrade

// Integration tests for the observability surface: span-tree shape of a
// traced negotiation, Chrome trace export validity, EXPLAIN ANALYZE actuals,
// the metrics registry under concurrent optimizations, and the per-peer
// network breakdown.

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qtrade/internal/obs"
)

// collectSpans returns every span named name in the subtree rooted at sp.
func collectSpans(sp *obs.Span, name string) []*obs.Span {
	var out []*obs.Span
	if sp.Name() == name {
		out = append(out, sp)
	}
	for _, c := range sp.Children() {
		out = append(out, collectSpans(c, name)...)
	}
	return out
}

func collectAll(tr *obs.Tracer, name string) []*obs.Span {
	var out []*obs.Span
	for _, r := range tr.Roots() {
		out = append(out, collectSpans(r, name)...)
	}
	return out
}

func tracerOf(t *testing.T, p *Plan) *obs.Tracer {
	t.Helper()
	if p.tracer == nil {
		t.Fatal("plan optimized with WithTrace has no tracer")
	}
	return p.tracer
}

func TestTraceSpanTreeShape(t *testing.T) {
	fed := buildBenchFed()
	p, err := fed.Optimize("hq", benchTotalsQuery, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	tr := tracerOf(t, p)

	// One buyer-side root covering the whole optimization.
	var root *obs.Span
	for _, r := range tr.Roots() {
		if r.Name() == "optimize" {
			root = r
		}
	}
	if root == nil {
		t.Fatal("no optimize root span")
	}
	if root.Source() != "hq" {
		t.Fatalf("optimize root on track %q, want hq", root.Source())
	}

	// The negotiation ran at least two trading iterations (B2..B7 loop),
	// and the tree shows exactly one iteration span per Stats iteration.
	iters := collectSpans(root, "iteration")
	if p.Iterations() < 2 {
		t.Fatalf("expected a multi-iteration negotiation, got %d", p.Iterations())
	}
	if len(iters) != p.Iterations() {
		t.Fatalf("iteration spans %d != Stats.Iterations %d", len(iters), p.Iterations())
	}

	// Each iteration fans out RFBs through protocol rounds.
	for i, it := range iters {
		neg := collectSpans(it, "negotiate")
		if len(neg) != 1 {
			t.Fatalf("iteration %d: %d negotiate spans", i, len(neg))
		}
		rounds := collectSpans(neg[0], "round")
		if len(rounds) == 0 {
			t.Fatalf("iteration %d: no protocol round spans", i)
		}
		if len(collectSpans(it, "plangen")) != 1 {
			t.Fatalf("iteration %d: missing plangen span", i)
		}
	}

	// Per-seller RFB fan-out inside the rounds.
	if len(collectAll(tr, "rfb corfu")) == 0 && len(collectAll(tr, "rfb myconos")) == 0 {
		t.Fatal("no per-seller rfb spans inside protocol rounds")
	}

	// Seller-side pricing ships back with the offers and is grafted under
	// the buyer's per-seller rfb spans: one federation-wide tree, with the
	// sellers' rewrite and DP pricing nested inside (marked remote=true).
	sellerRoots := collectSpans(root, "request-bids")
	if len(sellerRoots) == 0 {
		t.Fatal("no seller-side request-bids spans grafted into the buyer tree")
	}
	var rewrites, pricings, remotes, foreign int
	for _, r := range sellerRoots {
		if r.Source() != "hq" {
			foreign++ // a real peer's pricing, not the buyer's self-bid
		}
		for _, a := range r.Attrs() {
			if a.Key == "remote" && a.Val == "true" {
				remotes++
			}
		}
		rewrites += len(collectSpans(r, "rewrite"))
		pricings += len(collectSpans(r, "dp-pricing"))
	}
	if foreign == 0 {
		t.Fatal("no remote-seller request-bids spans grafted into the buyer tree")
	}
	if remotes != len(sellerRoots) {
		t.Fatalf("grafted seller spans missing remote=true: %d of %d", remotes, len(sellerRoots))
	}
	if rewrites == 0 || pricings == 0 {
		t.Fatalf("seller spans missing rewrite (%d) or dp-pricing (%d)", rewrites, pricings)
	}

	// The award phase closes the tree.
	if len(collectSpans(root, "award")) != 1 {
		t.Fatal("missing award span")
	}
}

// TestSampleNeverWireBytesIdentical pins the acceptance bound: with sampling
// off, the bytes on the wire are byte-identical to a federation that never
// heard of tracing — the trace context and payload envelope must cost zero
// when unsampled.
func TestSampleNeverWireBytesIdentical(t *testing.T) {
	run := func(opts ...OptimizeOption) (int64, int64) {
		fed := buildBenchFed()
		p, err := fed.Optimize("hq", benchTotalsQuery, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return fed.NetworkStats()
	}
	plainMsgs, plainBytes := run()
	neverMsgs, neverBytes := run(WithTraceSampling(SampleNever()))
	if neverMsgs != plainMsgs || neverBytes != plainBytes {
		t.Fatalf("SampleNever must be wire-identical to tracing off:\nplain %d msgs %d bytes\nnever %d msgs %d bytes",
			plainMsgs, plainBytes, neverMsgs, neverBytes)
	}
	// A sampled negotiation pays for its piggybacked span payloads.
	alwaysMsgs, alwaysBytes := run(WithTrace())
	if alwaysMsgs != plainMsgs {
		t.Fatalf("tracing must not add messages: %d vs %d", alwaysMsgs, plainMsgs)
	}
	if alwaysBytes <= plainBytes {
		t.Fatalf("sampled run must account trace payload bytes: %d vs %d", alwaysBytes, plainBytes)
	}
}

// TestTraceSamplingPolicies drives the public sampling API end to end.
func TestTraceSamplingPolicies(t *testing.T) {
	fed := buildBenchFed()

	p, err := fed.Optimize("hq", benchTotalsQuery, WithTraceSampling(SampleNever()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace().Text() != "" {
		t.Fatalf("SampleNever must retain nothing:\n%s", p.Trace().Text())
	}

	p, err = fed.Optimize("hq", benchTotalsQuery, WithTraceSampling(SampleAlways()))
	if err != nil {
		t.Fatal(err)
	}
	if txt := p.Trace().Text(); !strings.Contains(txt, "dp-pricing") || !strings.Contains(txt, "remote=true") {
		t.Fatalf("SampleAlways must keep the federation-wide tree:\n%s", txt)
	}

	// Ratio 0 behaves as never, ratio 1 as always; the seeded stream is the
	// policy's, so reusing one option across queries is safe.
	opt := WithTraceSampling(SampleRatio(0).Seeded(7))
	for i := 0; i < 3; i++ {
		p, err = fed.Optimize("hq", benchTotalsQuery, opt)
		if err != nil {
			t.Fatal(err)
		}
		if p.Trace().Text() != "" {
			t.Fatal("ratio 0 must never sample")
		}
	}
	p, err = fed.Optimize("hq", benchTotalsQuery, WithTraceSampling(SampleRatio(1)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace().Text() == "" {
		t.Fatal("ratio 1 must always sample")
	}

	// Tail sampling: head says never, but any negotiation slower than 0 is
	// kept — the keep-the-outliers path.
	p, err = fed.Optimize("hq", benchTotalsQuery, WithTraceSampling(SampleRatio(0).KeepSlower(time.Nanosecond)))
	if err != nil {
		t.Fatal(err)
	}
	if txt := p.Trace().Text(); !strings.Contains(txt, "optimize") {
		t.Fatalf("tail sampling must keep the slow negotiation:\n%s", txt)
	}
}

func TestTraceChromeExportValid(t *testing.T) {
	fed := buildBenchFed()
	p, err := fed.Optimize("hq", benchTotalsQuery, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	names := map[string]bool{}
	tracks := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.TS < 0 || e.Dur < 1 {
				t.Fatalf("event %q has ts=%v dur=%v", e.Name, e.TS, e.Dur)
			}
			names[e.Name] = true
		case "M":
			if n, ok := e.Args["name"].(string); ok {
				tracks[n] = true
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for _, want := range []string{"optimize", "iteration", "request-bids", "dp-pricing"} {
		if !names[want] {
			t.Fatalf("trace missing %q events (have %v)", want, names)
		}
	}
	// Buyer and sellers render as separate named tracks.
	if !tracks["hq"] || !tracks["corfu"] || !tracks["myconos"] {
		t.Fatalf("missing per-node tracks: %v", tracks)
	}
}

func TestUntracedPlanHasEmptyTrace(t *testing.T) {
	fed := buildBenchFed()
	p, err := fed.Optimize("hq", benchTotalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if txt := p.Trace().Text(); txt != "" {
		t.Fatalf("untraced plan rendered spans: %q", txt)
	}
	var buf bytes.Buffer
	if err := p.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty trace not valid JSON: %s", buf.String())
	}
}

func TestExplainAnalyzeShowsActuals(t *testing.T) {
	fed := buildBenchFed()
	p, err := fed.Optimize("hq", benchTotalsQuery)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "est rows=") {
		t.Fatalf("no estimates in:\n%s", out)
	}
	if !strings.Contains(out, "actual rows=") {
		t.Fatalf("no actuals in:\n%s", out)
	}
	if strings.Contains(out, "not executed") {
		t.Fatalf("operators left unexecuted in:\n%s", out)
	}
	if !strings.Contains(out, "time=") {
		t.Fatalf("no operator timings in:\n%s", out)
	}
}

// TestMetricsUnderConcurrentOptimizations exercises the shared registry from
// many goroutines (meaningful under -race) and checks the counters add up.
func TestMetricsUnderConcurrentOptimizations(t *testing.T) {
	fed := buildBenchFed()
	const workers, runs = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*runs)
	for w := 0; w < workers; w++ {
		traced := w%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				opts := []OptimizeOption{}
				if traced {
					opts = append(opts, WithTrace())
				}
				if _, err := fed.Optimize("hq", benchTotalsQuery, opts...); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := fed.MetricsSnapshot()
	got := metricValue(t, snap, "buyer.hq.optimizations")
	if got != workers*runs {
		t.Fatalf("buyer.hq.optimizations = %d, want %d", got, workers*runs)
	}
	if metricValue(t, snap, "node.corfu.offers_priced") == 0 {
		t.Fatalf("no seller pricing counted in:\n%s", snap)
	}
	if !strings.Contains(snap, "net.hq->corfu") {
		t.Fatalf("no per-link network lines in:\n%s", snap)
	}
}

// metricValue extracts an integer metric from a Snapshot rendering.
func metricValue(t *testing.T, snap, name string) int {
	t.Helper()
	for _, line := range strings.Split(snap, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in snapshot:\n%s", name, snap)
	return 0
}

func TestNetworkStatsByPeerMatchesAggregate(t *testing.T) {
	fed := buildBenchFed()
	if _, err := fed.Query("hq", benchTotalsQuery); err != nil {
		t.Fatal(err)
	}
	pairs := fed.NetworkStatsByPeer()
	if len(pairs) == 0 {
		t.Fatal("no per-peer traffic recorded")
	}
	var msgs, bytes int64
	seenFromBuyer := false
	for _, pt := range pairs {
		msgs += pt.Messages
		bytes += pt.Bytes
		if pt.From == "hq" {
			seenFromBuyer = true
		}
	}
	am, ab := fed.NetworkStats()
	if msgs != am || bytes != ab {
		t.Fatalf("pair sums %d/%d != aggregate %d/%d", msgs, bytes, am, ab)
	}
	if !seenFromBuyer {
		t.Fatalf("no hq-originated link in %v", pairs)
	}
	fed.ResetNetworkStats()
	if len(fed.NetworkStatsByPeer()) != 0 {
		t.Fatal("ResetNetworkStats must clear the breakdown")
	}
}

// TestMetricsSnapshotPriceCache pins that the sellers' price-cache counters
// surface through Federation.MetricsSnapshot (and hence qtsql's \metrics):
// repeating an optimization re-requests the same seller queries, so the
// second run must record cache hits.
func TestMetricsSnapshotPriceCache(t *testing.T) {
	fed := buildFed(t, WithWorkers(4), WithPriceCache(128))
	for i := 0; i < 2; i++ {
		if _, err := fed.Optimize("hq", totalsQuery); err != nil {
			t.Fatal(err)
		}
	}
	snap := fed.MetricsSnapshot()
	var hits, misses int
	for _, id := range []string{"corfu", "myconos", "athens"} {
		hits += metricValue(t, snap, "node."+id+".pricecache_hits")
		misses += metricValue(t, snap, "node."+id+".pricecache_misses")
	}
	if misses == 0 {
		t.Fatalf("no cache misses counted on the first run in:\n%s", snap)
	}
	if hits == 0 {
		t.Fatalf("repeated optimization reported a zero cache hit rate in:\n%s", snap)
	}
}

// BenchmarkOptimizeTelcoTraced is BenchmarkOptimizeTelco with tracing on;
// comparing the two bounds the tracing overhead. The untraced benchmark is
// the guard that the instrumentation itself stays free when disabled (see
// also obs.TestDisabledPathAllocs proving the nil paths allocate nothing).
func BenchmarkOptimizeTelcoTraced(b *testing.B) {
	fedB := buildBenchFed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedB.Optimize("hq", benchTotalsQuery, WithTrace()); err != nil {
			b.Fatal(err)
		}
	}
}
