package qtrade

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// buildConcurrentFed builds a four-office telco federation where every
// office node can act as buyer: three offices hold their customer partition
// plus an invoiceline replica, hq holds nothing. Data is deterministic, so
// every query has one correct answer whatever the concurrency or chaos.
func buildConcurrentFed() (*Federation, []string) {
	sch := NewSchema()
	sch.MustTable("customer",
		Col("custid", Int), Col("custname", Str), Col("office", Str))
	sch.MustTable("invoiceline",
		Col("invid", Int), Col("linenum", Int), Col("custid", Int), Col("charge", Float))
	sch.MustPartition("customer",
		Part("corfu", "office = 'Corfu'"),
		Part("myconos", "office = 'Myconos'"),
		Part("athens", "office = 'Athens'"))
	fed := NewFederation(sch)
	id := 0
	for _, office := range []string{"Corfu", "Myconos", "Athens"} {
		part := strings.ToLower(office)
		n := fed.MustAddNode(part)
		n.MustCreateFragment("customer", part)
		n.MustCreateFragment("invoiceline", "p0")
		for k := 0; k < 30; k++ {
			id++
			n.MustInsert("customer", part, Row(id, fmt.Sprintf("c%d", id), office))
			n.MustInsert("invoiceline", "p0", Row(1000+id, 1, id, float64(id%17)))
		}
	}
	fed.MustAddNode("hq")
	return fed, []string{"hq", "corfu", "myconos", "athens"}
}

var concurrentQueries = []string{
	`SELECT c.office, SUM(i.charge) AS total
	 FROM customer c, invoiceline i
	 WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	 GROUP BY c.office ORDER BY c.office`,
	`SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Athens')`,
	`SELECT c.custname, i.charge FROM customer c, invoiceline i
	 WHERE c.custid = i.custid AND i.charge > 12`,
}

// canonResult renders an answer order-independently for equality checks.
func canonResult(r *Result) string {
	lines := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		lines[i] = fmt.Sprintf("%v", row)
	}
	sort.Strings(lines)
	return strings.Join(r.Columns, ",") + "\n" + strings.Join(lines, "\n")
}

var rfbAttr = regexp.MustCompile(`"rfb":"([^"]+)"`)

// TestConcurrentQueries is the federation-safety hammer: four clients, each
// buying from its own node, run traced, chaos-afflicted, recovery-enabled
// queries on one federation at once. It asserts (under -race in CI) that
// every successful answer equals the chaos-free ground truth, that no
// negotiation's offer pool contains another buyer's offers, and that no
// trace records another negotiation's RFBs.
func TestConcurrentQueries(t *testing.T) {
	fed, buyers := buildConcurrentFed()

	// Chaos-free serial ground truth. Answers are buyer-independent, so one
	// buyer's results serve as the expectation for every client.
	want := make(map[string]string, len(concurrentQueries))
	for _, q := range concurrentQueries {
		res, err := fed.Query(buyers[0], q)
		if err != nil {
			t.Fatalf("ground truth for %q: %v", q, err)
		}
		want[q] = canonResult(res)
	}

	fed.EnableFaultTolerance(FaultTolerance{
		MaxRetries: 6,
		// Keep breakers effectively closed: an open breaker would legally
		// drop a seller from a negotiation, which is graceful degradation,
		// not the determinism this test pins.
		BreakerThreshold: 1_000_000,
	})
	fed.SetFaultPlan(&FaultPlan{Seed: 7, DropProb: 0.04, ErrorProb: 0.02, JitterMS: 0.1})

	const iterations = 4
	var wg sync.WaitGroup
	errCh := make(chan error, len(buyers)*iterations)
	for ci, buyer := range buyers {
		wg.Add(1)
		go func(ci int, buyer string) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errCh <- fmt.Errorf("client %d (buyer %s): %s", ci, buyer, fmt.Sprintf(format, args...))
			}
			// Each client samples half its negotiations, from its own stream.
			sampling := WithTraceSampling(SampleRatio(0.5).Seeded(int64(ci)))
			for it := 0; it < iterations; it++ {
				q := concurrentQueries[(ci+it)%len(concurrentQueries)]
				if it%2 == 1 {
					// Recovery path: chaos faults during delivery re-optimize.
					res, err := fed.QueryWithRecovery(buyer, q, 3)
					if err != nil {
						fail("QueryWithRecovery: %v", err)
						return
					}
					if got := canonResult(res); got != want[q] {
						fail("recovered answer differs:\ngot  %s\nwant %s", got, want[q])
					}
					continue
				}
				p, err := fed.Optimize(buyer, q, sampling)
				if err != nil {
					fail("Optimize: %v", err)
					return
				}
				// No offer bleed: every offer this negotiation pooled or
				// purchased answers an RFB this buyer issued.
				for _, o := range p.res.Pool {
					if !strings.HasPrefix(o.RFBID, buyer+"-rfb") {
						fail("pool offer %s answers foreign RFB %s", o.OfferID, o.RFBID)
					}
				}
				for _, o := range p.res.Candidate.Offers {
					if !strings.HasPrefix(o.RFBID, buyer+"-rfb") {
						fail("purchased offer %s answers foreign RFB %s", o.OfferID, o.RFBID)
					}
				}
				// Plain execution is not fault-guarded; chaos can fail a
				// fetch. Fetches are idempotent, so retry the run and pin
				// that every success is the one correct answer.
				var res *Result
				for attempt := 0; attempt < 10; attempt++ {
					if res, err = p.Run(); err == nil {
						break
					}
				}
				if err != nil {
					fail("Run kept failing under chaos: %v", err)
					return
				}
				if got := canonResult(res); got != want[q] {
					fail("answer differs:\ngot  %s\nwant %s", got, want[q])
				}
				// No trace bleed: every RFB recorded in this client's trace
				// is one this buyer issued (sub-RFBs keep the prefix).
				var jsonl strings.Builder
				if err := p.Trace().WriteJSONL(&jsonl); err != nil {
					fail("trace export: %v", err)
					return
				}
				for _, m := range rfbAttr.FindAllStringSubmatch(jsonl.String(), -1) {
					if !strings.HasPrefix(m[1], buyer+"-rfb") {
						fail("trace records foreign RFB %s", m[1])
					}
				}
			}
		}(ci, buyer)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s := fed.ChaosStats(); s.Drops+s.InjectedErrors+s.SlowCalls == 0 {
		t.Error("chaos plan injected nothing; the hammer ran unopposed")
	}
}
