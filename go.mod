module qtrade

go 1.22
