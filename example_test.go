package qtrade_test

import (
	"fmt"

	"qtrade"
)

// Example reproduces the paper's motivating scenario: a manager at a
// data-less HQ node asks for the total issued bills of two island offices;
// the answer is negotiated from the autonomous office nodes.
func Example() {
	sch := qtrade.NewSchema()
	sch.MustTable("customer",
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("custname", qtrade.Str),
		qtrade.Col("office", qtrade.Str))
	sch.MustTable("invoiceline",
		qtrade.Col("invid", qtrade.Int),
		qtrade.Col("linenum", qtrade.Int),
		qtrade.Col("custid", qtrade.Int),
		qtrade.Col("charge", qtrade.Float))
	sch.MustPartition("customer",
		qtrade.Part("corfu", "office = 'Corfu'"),
		qtrade.Part("myconos", "office = 'Myconos'"))

	fed := qtrade.NewFederation(sch)
	corfu := fed.MustAddNode("corfu")
	corfu.MustCreateFragment("customer", "corfu")
	corfu.MustInsert("customer", "corfu",
		qtrade.Row(1, "alice", "Corfu"),
		qtrade.Row(2, "bob", "Corfu"))
	corfu.MustCreateFragment("invoiceline", "p0")

	myconos := fed.MustAddNode("myconos")
	myconos.MustCreateFragment("customer", "myconos")
	myconos.MustInsert("customer", "myconos",
		qtrade.Row(3, "carol", "Myconos"))
	myconos.MustCreateFragment("invoiceline", "p0")

	lines := [][]any{
		{100, 1, 1, 30.0}, {101, 1, 2, 12.0}, {102, 1, 3, 58.0},
	}
	for _, l := range lines {
		corfu.MustInsert("invoiceline", "p0", qtrade.Row(l...))
		myconos.MustInsert("invoiceline", "p0", qtrade.Row(l...))
	}
	fed.MustAddNode("hq")

	res, err := fed.Query("hq", `
		SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
		GROUP BY c.office ORDER BY c.office`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: %.0f\n", row[0], row[1])
	}
	// Output:
	// Corfu: 42
	// Myconos: 58
}
