package qtrade

// One benchmark per reproduced table/figure (see DESIGN.md's per-experiment
// index). Each benchmark regenerates its experiment at quick scale and
// reports the headline series values as custom metrics, so
// `go test -bench . -benchmem` reproduces the whole evaluation. Run
// `go run ./cmd/qtbench -full` for the paper-scale sweeps.

import (
	"io"
	"strconv"
	"testing"

	"qtrade/internal/experiments"
)

func lastRowMetric(b *testing.B, tab *experiments.Table, col int, name string) {
	b.Helper()
	if len(tab.Rows) == 0 {
		b.Fatalf("%s produced no rows", tab.ID)
	}
	last := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(last[col], 64)
	if err != nil {
		b.Fatalf("%s metric %q: %v", tab.ID, last[col], err)
	}
	b.ReportMetric(v, name)
}

func discard(tab *experiments.Table) { tab.Fprint(io.Discard) }

// BenchmarkExpT1PlanQuality regenerates T1: QT plan cost relative to the
// full-knowledge centralized DP as queries grow.
func BenchmarkExpT1PlanQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.T1PlanQuality(4, 6, int64(i))
		lastRowMetric(b, tab, 2, "qt_vs_central")
		discard(tab)
	}
}

// BenchmarkExpT2StarPlanQuality regenerates T2: bushy star-schema plan
// quality.
func BenchmarkExpT2StarPlanQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.T2StarPlanQuality(3, 5, int64(i))
		lastRowMetric(b, tab, 2, "qt_vs_central_star")
		discard(tab)
	}
}

// BenchmarkExpF1OptTimeVsNodes regenerates F1: optimization time scaling.
func BenchmarkExpF1OptTimeVsNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F1OptTimeVsNodes([]int{4, 8, 16}, 3, int64(i))
		lastRowMetric(b, tab, 3, "qt_total_ms_at_16n")
		discard(tab)
	}
}

// BenchmarkExpF2MessagesVsNodes regenerates F2: negotiation messages.
func BenchmarkExpF2MessagesVsNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F2MessagesVsNodes([]int{4, 8, 16}, 3, int64(i))
		lastRowMetric(b, tab, 1, "qt_msgs_at_16n")
		discard(tab)
	}
}

// BenchmarkExpF3Convergence regenerates F3: plan value per iteration.
func BenchmarkExpF3Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F3Convergence(4, 8, int64(i))
		lastRowMetric(b, tab, 1, "final_value_ms")
		discard(tab)
	}
}

// BenchmarkExpF4Partitions regenerates F4: horizontal partitioning sweep.
func BenchmarkExpF4Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F4Partitions([]int{1, 2, 4}, int64(i))
		lastRowMetric(b, tab, 1, "value_at_4parts_ms")
		discard(tab)
	}
}

// BenchmarkExpF5PlanGen regenerates F5: plan generator ablation.
func BenchmarkExpF5PlanGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F5PlanGen(4, 6, int64(i))
		lastRowMetric(b, tab, 1, "dp_value_ms")
		discard(tab)
	}
}

// BenchmarkExpF6Strategies regenerates F6: competitive margin adaptation.
func BenchmarkExpF6Strategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F6Strategies(10, int64(i))
		lastRowMetric(b, tab, 3, "final_avg_margin")
		discard(tab)
	}
}

// BenchmarkExpF7Views regenerates F7: materialized-view offers.
func BenchmarkExpF7Views(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F7Views(int64(i))
		lastRowMetric(b, tab, 1, "value_with_views_ms")
		discard(tab)
	}
}

// BenchmarkExpF8Protocols regenerates F8: protocol ablation.
func BenchmarkExpF8Protocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F8Protocols(int64(i))
		lastRowMetric(b, tab, 1, "bargain_paid")
		discard(tab)
	}
}

// BenchmarkExpF9Replication regenerates F9: replication sweep.
func BenchmarkExpF9Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F9Replication([]int{1, 2}, int64(i))
		lastRowMetric(b, tab, 1, "value_at_2rep_ms")
		discard(tab)
	}
}

// BenchmarkExpF10Subcontract regenerates F10: restricted-visibility
// subcontracting.
func BenchmarkExpF10Subcontract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F10Subcontract(int64(i))
		lastRowMetric(b, tab, 2, "value_with_subcontract_ms")
		discard(tab)
	}
}

// BenchmarkExpF11AggPushdown regenerates F11: aggregate pushdown.
func BenchmarkExpF11AggPushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F11AggPushdown(int64(i))
		lastRowMetric(b, tab, 1, "value_with_pushdown_ms")
		discard(tab)
	}
}

// BenchmarkExpF12Chaos regenerates F12: fault-tolerant trading under a
// seeded chaos plan with a permanently slow seller.
func BenchmarkExpF12Chaos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F12Chaos(2, int64(i))
		lastRowMetric(b, tab, 9, "msgs_at_30pct_drop")
		discard(tab)
	}
}

// BenchmarkExpF13Parallel regenerates F13: seller-side parallel bid pricing
// with the negotiation-scoped price cache. The reported metric is the
// wall-clock speedup of the 6-query RFB at 8 workers over the serial path.
func BenchmarkExpF13Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F13ParallelPricing([]int{2, 6}, []int{1, 2, 4, 8}, 2, int64(i))
		lastRowMetric(b, tab, 3, "speedup_6q_8w")
		discard(tab)
	}
}

// BenchmarkExpF14TraceOverhead regenerates F14: distributed-tracing cost
// under Never / Ratio(0.1) / Always sampling. The reported metric is the
// Always-policy overhead percent over the Never baseline at the widest
// chain (the Ratio(0.1) production default sits between the two).
func BenchmarkExpF14TraceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F14TraceOverhead([]int{3, 5}, 4, int64(i))
		lastRowMetric(b, tab, 3, "always_overhead_pct")
		discard(tab)
	}
}

// BenchmarkExpF15Throughput regenerates F15: multi-client throughput under
// the concurrent buyer. Two metrics are reported: the single-client fan-out
// speedup at the widest federation (phase A's workers=0 row vs serial) and
// the qps multiple reached by the widest closed-loop client sweep (the last
// row's x_vs_base).
func BenchmarkExpF15Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F15Throughput([]int{4, 8}, []int{1, 2, 4}, 4, int64(i))
		// Phase A rows come first: sellers x {workers=1, workers=0}. The
		// widest fan-out row is the last phase-A row.
		fanout := tab.Rows[3]
		if fanout[0] != "8" || fanout[2] != "0" {
			b.Fatalf("unexpected F15 row layout: %v", tab.Rows)
		}
		v, err := strconv.ParseFloat(fanout[7], 64)
		if err != nil {
			b.Fatalf("F15 fanout speedup %q: %v", fanout[7], err)
		}
		b.ReportMetric(v, "fanout_x_at_8s")
		lastRowMetric(b, tab, 7, "qps_x_at_4c")
		discard(tab)
	}
}

// BenchmarkExpF16Calibration regenerates F16: per-seller quoted-vs-measured
// cost calibration from the trading ledger. Reported metric: the largest
// per-seller mean measured/quoted ratio in the slow-seller variant — the
// signal that flags a seller whose quotes no longer predict reality.
func BenchmarkExpF16Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F16Calibration(3, 11)
		worst := 0.0
		for _, r := range tab.Rows {
			if r[0] != "slow-n2" {
				continue
			}
			v, err := strconv.ParseFloat(r[6], 64)
			if err != nil {
				b.Fatalf("F16 ratio %q: %v", r[6], err)
			}
			if v > worst {
				worst = v
			}
		}
		if worst == 0 {
			b.Fatalf("F16 slow variant recorded no ratios: %v", tab.Rows)
		}
		b.ReportMetric(worst, "slow_ratio_max")
		discard(tab)
	}
}

// BenchmarkExpF17Churn regenerates F17: closed-loop load through a churn
// window where a replacement seller joins, one seller drains and one
// crashes mid-run. Reported metrics: recovered-phase qps (column 1 of the
// last row) and total failed queries across all phases, which must be zero
// — churn that loses queries is a correctness bug, not a slow run.
func BenchmarkExpF17Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F17Churn(4, 3, 6, int64(i))
		failed := 0.0
		for _, r := range tab.Rows {
			v, err := strconv.ParseFloat(r[4], 64)
			if err != nil {
				b.Fatalf("F17 failed count %q: %v", r[4], err)
			}
			failed += v
		}
		if failed != 0 {
			b.Fatalf("F17 lost %v queries to churn: %v", failed, tab.Rows)
		}
		b.ReportMetric(failed, "failed_queries")
		lastRowMetric(b, tab, 1, "recovered_qps")
		discard(tab)
	}
}

// BenchmarkExpF18Streaming regenerates F18: first-row latency and peak
// buyer-side buffering of streamed vs materialized delivery as the result
// grows.
func BenchmarkExpF18Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F18Streaming([]int{400, 3200}, int64(i))
		lastRowMetric(b, tab, 1, "stream_first_ms")
		lastRowMetric(b, tab, 4, "mat_total_ms")
		lastRowMetric(b, tab, 5, "stream_peak_kb")
		lastRowMetric(b, tab, 6, "mat_peak_kb")
		discard(tab)
	}
}

// BenchmarkExpF19Flight regenerates F19: the query flight recorder and
// anomaly watchdog under a mid-run slow seller and a stale-statistics
// cardinality blowout. Beyond timing it asserts the recorder's hard
// guarantee — every query of the injected-fault phases lands as a flagged
// dossier — so the benchmark fails the build if capture ever goes silent.
func BenchmarkExpF19Flight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.F19Flight(4, int64(i))
		last := tab.Rows[len(tab.Rows)-1] // stale_stats
		if last[3] != last[1] || last[4] != last[1] {
			b.Fatalf("F19 stale_stats: %s queries, %s dossiers, %s flagged — want all equal",
				last[1], last[3], last[4])
		}
		lastRowMetric(b, tab, 2, "stale_wall_ms")
		lastRowMetric(b, tab, 4, "flagged")
		discard(tab)
	}
}

// BenchmarkOptimizeTelco measures one end-to-end QT optimization of the
// paper's motivating query on the three-office federation.
func BenchmarkOptimizeTelco(b *testing.B) {
	fedB := buildBenchFed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedB.Optimize("hq", benchTotalsQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTelco measures optimize + execute.
func BenchmarkQueryTelco(b *testing.B) {
	fedB := buildBenchFed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedB.Query("hq", benchTotalsQuery); err != nil {
			b.Fatal(err)
		}
	}
}

const benchTotalsQuery = `SELECT c.office, SUM(i.charge) AS total
	FROM customer c, invoiceline i
	WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	GROUP BY c.office ORDER BY c.office`

func buildBenchFed() *Federation {
	sch := NewSchema()
	sch.MustTable("customer",
		Col("custid", Int), Col("custname", Str), Col("office", Str))
	sch.MustTable("invoiceline",
		Col("invid", Int), Col("linenum", Int), Col("custid", Int), Col("charge", Float))
	sch.MustPartition("customer",
		Part("corfu", "office = 'Corfu'"),
		Part("myconos", "office = 'Myconos'"))
	fed := NewFederation(sch)
	id := 0
	for _, office := range []string{"Corfu", "Myconos"} {
		part := map[string]string{"Corfu": "corfu", "Myconos": "myconos"}[office]
		n := fed.MustAddNode(part)
		n.MustCreateFragment("customer", part)
		n.MustCreateFragment("invoiceline", "p0")
		for k := 0; k < 50; k++ {
			id++
			n.MustInsert("customer", part, Row(id, "c", office))
			n.MustInsert("invoiceline", "p0", Row(1000+id, 1, id, float64(id%17)))
		}
	}
	fed.MustAddNode("hq")
	return fed
}
