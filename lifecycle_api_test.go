package qtrade

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPublicLifecycleDrainUndrain walks the reversible half of the lifecycle
// through the public API: draining a node removes it from every buyer's
// fan-out (queries that need its unreplicated data fail fast, queries served
// by the rest of the federation keep working), and undraining restores it.
func TestPublicLifecycleDrainUndrain(t *testing.T) {
	fed := buildFed(t)
	fed.EnableFaultTolerance(FaultTolerance{MaxRetries: 2, BreakerThreshold: 1_000_000})

	states := fed.NodeStates()
	if len(states) != 4 {
		t.Fatalf("members: %v", states)
	}
	for id, st := range states {
		if st != "active" {
			t.Fatalf("fresh node %s is %s", id, st)
		}
	}

	if err := fed.DrainNode("ghost"); err == nil {
		t.Fatal("draining an unknown node must error")
	}
	if err := fed.DrainNode("corfu"); err != nil {
		t.Fatal(err)
	}
	if st := fed.NodeStates()["corfu"]; st != "draining" {
		t.Fatalf("corfu state after drain: %s", st)
	}
	h, err := fed.NodeHealth("corfu")
	if err != nil || h.State != "draining" || h.Ready {
		t.Fatalf("corfu health after drain: %+v, %v", h, err)
	}
	dirState := ""
	for _, p := range fed.PeerDirectory() {
		if p.ID == "corfu" {
			dirState = p.State
		}
	}
	if dirState != "draining" {
		t.Fatalf("peer directory must mark corfu draining: %+v", fed.PeerDirectory())
	}

	// Myconos customers and the invoiceline replica live outside corfu: the
	// federation keeps answering around the draining member.
	res, err := fed.Query("hq", `SELECT c.custname FROM customer c WHERE c.office = 'Myconos'`)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("query around the drained node: %v, %+v", err, res)
	}
	// Corfu's customer partition has no replica: a query needing it cannot be
	// covered while corfu is out of the fan-out.
	if _, err := fed.Query("hq", totalsQuery); err == nil {
		t.Fatal("a drained node's unreplicated partition must be unreachable")
	}

	if err := fed.UndrainNode("corfu"); err != nil {
		t.Fatal(err)
	}
	if err := fed.UndrainNode("corfu"); err == nil {
		t.Fatal("undraining an active node must error")
	}
	res, err = fed.Query("hq", totalsQuery)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("undrained federation must answer again: %v, %+v", err, res)
	}
}

// TestPublicLifecycleRemoveAndRejoin makes the departure final: RemoveNode
// drops the member from states, directory and network, and rejoining under
// the same id is a fresh AddNode that serves again.
func TestPublicLifecycleRemoveAndRejoin(t *testing.T) {
	fed := buildFed(t)
	fed.EnableFaultTolerance(FaultTolerance{MaxRetries: 2, BreakerThreshold: 1_000_000})

	if err := fed.DrainNode("athens"); err != nil {
		t.Fatal(err)
	}
	if !fed.QuiesceNode("athens", time.Second) {
		t.Fatal("an idle draining node must quiesce")
	}
	if err := fed.RemoveNode("athens"); err != nil {
		t.Fatal(err)
	}
	if err := fed.RemoveNode("athens"); err == nil {
		t.Fatal("removing a removed node must error")
	}
	if _, ok := fed.NodeStates()["athens"]; ok {
		t.Fatalf("athens still listed: %v", fed.NodeStates())
	}
	for _, p := range fed.PeerDirectory() {
		if p.ID == "athens" {
			t.Fatalf("athens still in the peer directory: %+v", p)
		}
	}
	if _, err := fed.NodeHealth("athens"); err == nil {
		t.Fatal("health of a removed node must error")
	}

	res, err := fed.Query("hq", totalsQuery)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("federation must survive the removal: %v, %+v", err, res)
	}
	if _, err := fed.Query("hq", `SELECT c.custname FROM customer c WHERE c.office = 'Athens'`); err == nil {
		t.Fatal("the removed node's partition must be unreachable")
	}

	// Rejoin: same identity, fresh node, fresh data.
	n := fed.MustAddNode("athens")
	n.MustCreateFragment("customer", "athens")
	n.MustInsert("customer", "athens", Row(4, "dave", "Athens"))
	res, err = fed.Query("hq", `SELECT c.custname FROM customer c WHERE c.office = 'Athens'`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("rejoined node must serve: %v, %+v", err, res)
	}
	if st := fed.NodeStates()["athens"]; st != "active" {
		t.Fatalf("rejoined state: %s", st)
	}
}

// TestLedgerRecordsMembershipEvents pins the audit half of the lifecycle:
// joins, drains, undrains and leaves land as membership events in the
// federation ledger and in its JSONL export next to the negotiations.
func TestLedgerRecordsMembershipEvents(t *testing.T) {
	fed := buildLedgerFed(t, []FederationOption{WithLedger(8)})
	if err := fed.DrainNode("corfu"); err != nil {
		t.Fatal(err)
	}
	if err := fed.UndrainNode("corfu"); err != nil {
		t.Fatal(err)
	}
	if err := fed.DrainNode("corfu"); err != nil {
		t.Fatal(err)
	}
	if err := fed.RemoveNode("corfu"); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	for _, e := range fed.Ledger().LifecycleEvents() {
		if e.Seller == "corfu" {
			kinds = append(kinds, e.Kind)
		}
	}
	want := []string{"join", "drain", "undrain", "drain", "leave"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("corfu membership history %v, want %v", kinds, want)
	}

	var buf strings.Builder
	if err := fed.WriteLedgerJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{`"id":"lifecycle"`, `"kind":"join"`,
		`"kind":"drain"`, `"kind":"undrain"`, `"kind":"leave"`} {
		if !strings.Contains(buf.String(), wantStr) {
			t.Fatalf("ledger export missing %s:\n%s", wantStr, buf.String())
		}
	}
}

// TestConcurrentQueriesUnderChurn is the churn hammer: clients keep buying
// answers whose data is replicated outside the churn victim while another
// goroutine drains, undrains, crashes and restarts that victim. Every query
// must return the chaos-free ground truth — churn may change who sells, never
// what is answered.
func TestConcurrentQueriesUnderChurn(t *testing.T) {
	fed, _ := buildConcurrentFed()

	// Both queries avoid corfu's unreplicated customer partition; the
	// invoiceline replica lives on every office node.
	queries := []string{
		`SELECT c.custname FROM customer c WHERE c.office IN ('Myconos', 'Athens')`,
		`SELECT c.office, SUM(i.charge) AS total
		 FROM customer c, invoiceline i
		 WHERE c.custid = i.custid AND c.office IN ('Myconos', 'Athens')
		 GROUP BY c.office ORDER BY c.office`,
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		res, err := fed.Query("hq", q)
		if err != nil {
			t.Fatalf("ground truth for %q: %v", q, err)
		}
		want[q] = canonResult(res)
	}

	fed.EnableFaultTolerance(FaultTolerance{
		CallTimeout:      2 * time.Second,
		MaxRetries:       6,
		BreakerThreshold: 1_000_000,
	})

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := fed.DrainNode("corfu"); err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
			if err := fed.UndrainNode("corfu"); err != nil {
				return
			}
			fed.CrashNode("corfu")
			time.Sleep(2 * time.Millisecond)
			fed.RestartNode("corfu")
		}
	}()

	const clients, iterations = 3, 6
	var wg sync.WaitGroup
	errCh := make(chan error, clients*iterations)
	for ci, buyer := range []string{"hq", "myconos", "athens"} {
		wg.Add(1)
		go func(ci int, buyer string) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				q := queries[(ci+it)%len(queries)]
				res, err := fed.QueryWithRecovery(buyer, q, 4)
				if err != nil {
					errCh <- err
					return
				}
				if got := canonResult(res); got != want[q] {
					errCh <- fmt.Errorf("buyer %s answer differs for %q:\ngot  %s\nwant %s",
						buyer, q, got, want[q])
					return
				}
			}
		}(ci, buyer)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("query failed under churn: %v", err)
	}

	// The churn loop must actually have churned, and the federation must end
	// in a legal, queryable state.
	fed.RestartNode("corfu")
	if st := fed.NodeStates()["corfu"]; st == "draining" {
		_ = fed.UndrainNode("corfu")
	}
	res, err := fed.Query("hq", queries[0])
	if err != nil || canonResult(res) != want[queries[0]] {
		t.Fatalf("federation unhealthy after churn: %v", err)
	}
}
