package qtrade

// Public surface for the query flight recorder and the windowed metrics
// history: per-query dossiers unifying trace spans, ledger events and
// per-operator actuals; a sampler rolling the metrics registry into
// fixed-width windows; and a watchdog comparing each fresh window against a
// trailing baseline. All three are opt-in; absent, the hot path pays only
// nil checks.

import (
	"time"

	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

// WithFlightRecorder attaches a query flight recorder retaining the last
// capacity dossiers (flight.DefaultCapacity when capacity <= 0) plus a
// worst-K outlier set captured by trigger rules — latency SLO breach, any
// recovery event, quoted-vs-measured cost outlier, est/actual cardinality
// blowout. Every completed Query/QueryWithRecovery/Plan.Run admits one
// dossier. A federation without a ledger gets a default-capacity one
// automatically, so dossiers always carry their negotiation's event chain.
// Tune the rules through FlightRecorder().SetTriggers.
func WithFlightRecorder(capacity int) FederationOption {
	return func(f *Federation) {
		f.flight = flight.NewRecorder(capacity)
	}
}

// WithSlowQuerySLO arms the recorder's latency trigger: any query whose
// wall time (optimize + execute) reaches slo is captured into the outlier
// set. Implies WithFlightRecorder's defaults when used alone.
func WithSlowQuerySLO(slo time.Duration) FederationOption {
	return func(f *Federation) {
		if f.flight == nil {
			f.flight = flight.NewRecorder(0)
		}
		t := f.flight.Triggers()
		t.SlowMS = float64(slo.Nanoseconds()) / 1e6
		f.flight.SetTriggers(t)
	}
}

// WithMetricsHistory attaches the windowed metrics history: a sampler
// goroutine rolls every registered counter, gauge and histogram into
// fixed-width window deltas (obs.DefaultHistoryWindow / DefaultHistoryKeep
// when zero), retained in a ring and served as JSON by the handler at
// MetricsHistory(). An anomaly watchdog rides along, comparing each fresh
// window against trailing baselines — p95 regressions, recovery spikes,
// price-cache hit-rate drops, calibration drift — and emitting typed
// anomaly events into the trading ledger (when one is attached) plus
// watchdog.* instruments. Stop the sampler with MetricsHistory().Stop().
func WithMetricsHistory(window time.Duration, keep int) FederationOption {
	return func(f *Federation) {
		f.historyWindow, f.historyKeep = window, keep
		f.wantHistory = true
	}
}

// FlightRecorder returns the federation's flight recorder (an http.Handler
// serving /debug/queries and /debug/queries/{id}), or nil without
// WithFlightRecorder. Nil is safe to use: every method no-ops.
func (f *Federation) FlightRecorder() *flight.Recorder { return f.flight }

// SlowQueries returns up to n retained dossiers, slowest first — the
// outlier set merged with the recent ring. Nil without a recorder.
func (f *Federation) SlowQueries(n int) []*flight.Dossier { return f.flight.Slow(n) }

// MetricsHistory returns the windowed metrics history (an http.Handler
// serving the retained windows as JSON), or nil without WithMetricsHistory.
func (f *Federation) MetricsHistory() *obs.History { return f.history }

// Watchdog returns the anomaly watchdog attached by WithMetricsHistory, or
// nil. Its Anomalies method lists recent findings; the same events land in
// the ledger's anomaly stream.
func (f *Federation) Watchdog() *flight.Watchdog { return f.watchdog }

// finishObsSetup wires the cross-option observability dependencies once all
// FederationOptions ran, so option order never matters: the flight recorder
// gets a ledger to snapshot, and the history gets its watchdog before the
// sampler starts.
func (f *Federation) finishObsSetup() {
	if f.flight != nil && f.ledger == nil {
		f.ledger = ledger.New(0)
	}
	if f.wantHistory {
		f.history = obs.NewHistory(f.metrics, f.historyWindow, f.historyKeep)
		f.watchdog = flight.NewWatchdog(flight.WatchdogConfig{}, f.ledger, f.metrics)
		f.watchdog.Attach(f.history)
		f.history.Start()
	}
}
