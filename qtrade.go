// Package qtrade is a query-trading federation of autonomous databases: an
// implementation of "Distributed Query Optimization by Query Trading"
// (Pentaris & Ioannidis, EDBT 2004).
//
// A federation is a set of autonomous nodes, each running its own storage
// engine, statistics and cost-based optimizer. Queries and query answers are
// traded as commodities: a node that needs an answer (the buyer) requests
// bids for (parts of) the query, seller nodes offer priced partial answers
// computed purely from optimizer estimates, and an iterative negotiation
// assembles the cheapest distributed execution plan before any data moves.
//
// Quickstart:
//
//	sch := qtrade.NewSchema()
//	sch.MustTable("customer",
//		qtrade.Col("custid", qtrade.Int),
//		qtrade.Col("office", qtrade.Str))
//	sch.MustPartition("customer",
//		qtrade.Part("corfu", "office = 'Corfu'"),
//		qtrade.Part("myconos", "office = 'Myconos'"))
//
//	fed := qtrade.NewFederation(sch)
//	corfu := fed.MustAddNode("corfu")
//	corfu.MustCreateFragment("customer", "corfu")
//	corfu.MustInsert("customer", "corfu", qtrade.Row(1, "Corfu"))
//	hq := fed.MustAddNode("hq")
//	_ = hq
//
//	res, err := fed.Query("hq", "SELECT c.custid FROM customer c WHERE c.office = 'Corfu'")
//
// See the examples directory for complete programs.
package qtrade

import (
	"fmt"
	"sync"
	"time"

	"qtrade/internal/catalog"
	"qtrade/internal/core"
	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// Kind identifies a column type.
type Kind = value.Kind

// The supported column kinds.
const (
	Int   = value.Int
	Float = value.Float
	Str   = value.Str
	Bool  = value.Bool
)

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Col is shorthand for a Column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// Partition declares one horizontal partition by its defining predicate
// (SQL boolean expression over the table's columns); an empty predicate
// declares a whole-table partition.
type Partition struct {
	ID        string
	Predicate string
}

// Part is shorthand for a Partition.
func Part(id, predicate string) Partition { return Partition{ID: id, Predicate: predicate} }

// Schema is the federation's public logical schema.
type Schema struct {
	sch *catalog.Schema
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{sch: catalog.NewSchema()} }

// Table registers a table.
func (s *Schema) Table(name string, cols ...Column) error {
	defs := make([]catalog.ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = catalog.ColumnDef{Name: c.Name, Kind: c.Kind}
	}
	return s.sch.AddTable(&catalog.TableDef{Name: name, Columns: defs})
}

// MustTable registers a table or panics.
func (s *Schema) MustTable(name string, cols ...Column) {
	if err := s.Table(name, cols...); err != nil {
		panic(err)
	}
}

// Partition declares the horizontal partitioning of a table.
func (s *Schema) Partition(table string, parts ...Partition) error {
	out := make([]*catalog.Partition, len(parts))
	for i, p := range parts {
		cp := &catalog.Partition{Table: table, ID: p.ID}
		if p.Predicate != "" {
			pred, err := sqlparse.ParseExpr(p.Predicate)
			if err != nil {
				return fmt.Errorf("qtrade: partition %q: %w", p.ID, err)
			}
			cp.Predicate = pred
		}
		out[i] = cp
	}
	return s.sch.SetPartitions(table, out)
}

// MustPartition declares partitioning or panics.
func (s *Schema) MustPartition(table string, parts ...Partition) {
	if err := s.Partition(table, parts...); err != nil {
		panic(err)
	}
}

// Strategy selects a node's pricing behaviour.
type Strategy int

// The built-in pricing strategies.
const (
	// Cooperative nodes price truthfully (a single organization's
	// federation jointly minimizing cost).
	Cooperative Strategy = iota
	// Competitive nodes add an adaptive profit margin and undercut rivals.
	Competitive
)

// NodeOption configures a node at creation.
type NodeOption func(*node.Config)

// WithStrategy selects the node's pricing strategy.
func WithStrategy(s Strategy) NodeOption {
	return func(c *node.Config) {
		switch s {
		case Competitive:
			c.Strategy = trading.NewCompetitive()
		default:
			c.Strategy = trading.Cooperative{}
		}
	}
}

// WithoutViewOffers disables the seller predicates analyser (no
// materialized-view offers).
func WithoutViewOffers() NodeOption {
	return func(c *node.Config) { c.DisableViews = true }
}

// WithWorkers bounds how many of an RFB's queries the node prices
// concurrently (0 = one per CPU, 1 = strictly serial). Any worker count
// produces byte-identical offers; it only changes wall-clock time.
func WithWorkers(n int) NodeOption {
	return func(c *node.Config) { c.Workers = n }
}

// WithMaxInflightRFBs bounds how many buyer-originated RFBs the node serves
// concurrently; arrivals beyond the bound queue until a pricing slot frees,
// so a node overwhelmed by concurrent negotiations degrades into queuing
// rather than collapse. 0 keeps the default (2× the node's pricing workers);
// negative removes the bound. Queue pressure is visible in
// Federation.MetricsSnapshot as node.<id>.rfb_queue_depth /
// node.<id>.rfbs_queued / node.<id>.rfbs_inflight.
func WithMaxInflightRFBs(n int) NodeOption {
	return func(c *node.Config) { c.MaxInflightRFBs = n }
}

// WithPriceCache sizes the node's price cache, which memoizes the rewrite +
// DP half of bid pricing across negotiation iterations (entries are keyed by
// the store's data/stats versions, so they can never go stale). size 0 keeps
// the default (256 entries); negative disables caching. Hit/miss/eviction
// counts appear in Federation.MetricsSnapshot as node.<id>.pricecache_*.
func WithPriceCache(size int) NodeOption {
	return func(c *node.Config) { c.PriceCacheSize = size }
}

// WithLoadAwarePricing folds the node's live load — executions in flight
// plus admitted and queued RFBs, normalized by its pricing workers — into
// every asked price, plus a large surcharge while draining. Overloaded or
// departing sellers price themselves out of new work, so load balances
// through the market itself instead of an external scheduler.
func WithLoadAwarePricing() NodeOption {
	return func(c *node.Config) { c.LoadAwarePricing = true }
}

// Federation is a simulated federation of autonomous nodes connected by an
// in-process network with full message accounting. A federation is safe for
// concurrent use: any number of goroutines may run Optimize/Query/
// QueryWithRecovery (even from the same buyer node) while others add nodes.
type Federation struct {
	mu      sync.RWMutex // guards nodes and faults
	schema  *Schema
	net     *netsim.Network
	nodes   map[string]*Node
	metrics *obs.Metrics
	faults  *trading.FaultPolicy
	ledger  *ledger.Ledger     // nil unless WithLedger; immutable after creation
	dir     *trading.Directory // health-gated peer view; immutable after creation

	flight   *flight.Recorder // nil unless WithFlightRecorder; immutable after creation
	history  *obs.History     // nil unless WithMetricsHistory; immutable after creation
	watchdog *flight.Watchdog // rides history; immutable after creation

	wantHistory   bool // set by WithMetricsHistory, resolved by finishObsSetup
	historyWindow time.Duration
	historyKeep   int
}

// NewFederation creates an empty federation over the schema.
func NewFederation(s *Schema, opts ...FederationOption) *Federation {
	f := &Federation{
		schema:  s,
		net:     netsim.New(),
		nodes:   map[string]*Node{},
		metrics: obs.NewMetrics(),
		dir:     trading.NewDirectory(nil),
	}
	for _, o := range opts {
		o(f)
	}
	f.finishObsSetup()
	return f
}

// Node is one autonomous federation member.
type Node struct {
	inner *node.Node
	fed   *Federation
}

// AddNode creates and registers a node. It is safe at runtime: a node added
// while queries are in flight joins the current fault policy, appears in the
// peer directory as Active, and is negotiable from the next optimization
// that resolves its peer view.
func (f *Federation) AddNode(id string, opts ...NodeOption) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.nodes[id]; dup {
		return nil, fmt.Errorf("qtrade: duplicate node %q", id)
	}
	cfg := node.Config{ID: id, Schema: f.schema.sch, Metrics: f.metrics, Faults: f.faults}
	for _, o := range opts {
		o(&cfg)
	}
	n := &Node{inner: node.New(cfg), fed: f}
	n.inner.SetLedger(f.ledger)
	f.nodes[id] = n
	f.net.Register(id, n.inner)
	f.dir.MarkState(id, trading.StateActive)
	f.ledger.Lifecycle(ledger.KindJoin, id, "")
	return n, nil
}

// MustAddNode creates a node or panics.
func (f *Federation) MustAddNode(id string, opts ...NodeOption) *Node {
	n, err := f.AddNode(id, opts...)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a registered node, or nil.
func (f *Federation) Node(id string) *Node {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.nodes[id]
}

// Row builds a row from Go values (int/int64, float64, string, bool, nil).
func Row(vals ...any) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		switch t := v.(type) {
		case nil:
			out[i] = value.NewNull()
		case int:
			out[i] = value.NewInt(int64(t))
		case int64:
			out[i] = value.NewInt(t)
		case float64:
			out[i] = value.NewFloat(t)
		case string:
			out[i] = value.NewStr(t)
		case bool:
			out[i] = value.NewBool(t)
		case value.Value:
			out[i] = t
		default:
			panic(fmt.Sprintf("qtrade: unsupported value %T", v))
		}
	}
	return out
}

// CreateFragment declares that this node stores the given partition.
func (n *Node) CreateFragment(table, partID string) error {
	def, ok := n.fed.schema.sch.Table(table)
	if !ok {
		return fmt.Errorf("qtrade: unknown table %q", table)
	}
	_, err := n.inner.Store().CreateFragment(def, partID)
	return err
}

// MustCreateFragment declares a fragment or panics.
func (n *Node) MustCreateFragment(table, partID string) {
	if err := n.CreateFragment(table, partID); err != nil {
		panic(err)
	}
}

// Insert appends rows (built with Row) to a local fragment.
func (n *Node) Insert(table, partID string, rows ...[]value.Value) error {
	conv := make([]value.Row, len(rows))
	for i, r := range rows {
		conv[i] = value.Row(r)
	}
	return n.inner.Store().Insert(table, partID, conv...)
}

// MustInsert inserts or panics.
func (n *Node) MustInsert(table, partID string, rows ...[]value.Value) {
	if err := n.Insert(table, partID, rows...); err != nil {
		panic(err)
	}
}

// AddView stores a materialized view the node may offer during trading. The
// definition must be a SELECT over base tables; cols and rows give the
// stored result.
func (n *Node) AddView(name, definition string, cols []Column, rows ...[]value.Value) error {
	defs := make([]catalog.ColumnDef, len(cols))
	for i, c := range cols {
		defs[i] = catalog.ColumnDef{Name: c.Name, Kind: c.Kind}
	}
	conv := make([]value.Row, len(rows))
	for i, r := range rows {
		conv[i] = value.Row(r)
	}
	return n.inner.Store().AddView(&storage.MaterializedView{
		Name: name, SQL: definition, Columns: defs, Rows: conv,
	})
}

// ID returns the node id.
func (n *Node) ID() string { return n.inner.ID() }

// OptimizeOption tweaks one optimization run.
type OptimizeOption func(*core.Config)

// WithPlanGenerator selects the buyer plan generator: "dp" (default), "idp"
// (IDP-M(2,5)) or "greedy".
func WithPlanGenerator(mode string) OptimizeOption {
	return func(c *core.Config) { c.Mode = core.PlanGenMode(mode) }
}

// WithProtocol selects the negotiation protocol: "sealed" (default),
// "iterative" or "bargain".
func WithProtocol(name string) OptimizeOption {
	return func(c *core.Config) {
		switch name {
		case "iterative":
			c.Protocol = trading.IterativeBid{MaxRounds: 3}
		case "bargain":
			c.Protocol = trading.Bargain{MaxRounds: 3}
		default:
			c.Protocol = trading.SealedBid{}
		}
	}
}

// WithMaxIterations bounds the trading loop.
func WithMaxIterations(n int) OptimizeOption {
	return func(c *core.Config) { c.MaxIterations = n }
}

// WithBuyerWorkers bounds the buyer's own fan-out: how many sellers a
// negotiation round contacts concurrently, and how many purchased answers
// execution fetches concurrently. 0 (the default) contacts every seller at
// once; 1 is strictly serial in deterministic order. Any setting produces a
// byte-identical offer pool and plan — only wall-clock time changes.
func WithBuyerWorkers(n int) OptimizeOption {
	return func(c *core.Config) { c.Workers = n }
}

// WithFetchBatch sets the row-batch granularity of execution-time fetches:
// purchased answers stream from sellers in bounded batches instead of
// shipping whole. 0 (the default) uses the executor's default batch size;
// n > 0 streams in batches of n rows; a negative n disables streaming and
// ships each answer as one materialized response. Results are byte-identical
// at any setting — only first-row latency, peak memory, and message
// granularity change.
func WithFetchBatch(n int) OptimizeOption {
	return func(c *core.Config) { c.FetchBatchRows = n }
}

// Plan is an optimized distributed execution plan.
type Plan struct {
	res     *core.Result
	buyer   string
	fed     *Federation
	tracer  *obs.Tracer
	sampled bool // a sampling policy governs this plan's trace
}

// Optimize runs query-trading optimization from the named buyer node
// without executing anything.
func (f *Federation) Optimize(buyer, sql string, opts ...OptimizeOption) (*Plan, error) {
	f.mu.RLock()
	bn, ok := f.nodes[buyer]
	faults := f.faults
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("qtrade: unknown buyer node %q", buyer)
	}
	cfg := core.Config{ID: buyer, Schema: f.schema.sch, Self: bn.inner, Metrics: f.metrics,
		Faults: faults, Ledger: f.ledger, Directory: f.dir, Flight: f.flight}
	for _, o := range opts {
		o(&cfg)
	}
	// Under a sampling policy the sellers ship their span subtrees back with
	// the replies (or stay silent when unsampled); attaching the buyer's
	// tracer to every node is the legacy always-on path and would double- (or
	// wrongly) record, so it stays reserved for plain WithTrace.
	if cfg.Tracer != nil && cfg.Sampling == nil {
		f.setNodeTracer(cfg.Tracer)
		defer f.setNodeTracer(nil)
	}
	res, err := core.Optimize(cfg, &core.NetComm{Net: f.net, SelfID: buyer}, sql)
	if err != nil {
		return nil, err
	}
	return &Plan{res: res, buyer: buyer, fed: f, tracer: cfg.Tracer, sampled: cfg.Sampling != nil}, nil
}

// Explain renders the plan tree with the purchased offers.
func (p *Plan) Explain() string { return core.ExplainResult(p.res) }

// EstimatedResponseTime returns the plan's estimated response time in the
// federation's cost units (milliseconds by default).
func (p *Plan) EstimatedResponseTime() float64 { return p.res.Candidate.ResponseTime }

// Purchases returns (seller, SQL, price) for each purchased answer.
func (p *Plan) Purchases() []Purchase {
	out := make([]Purchase, len(p.res.Candidate.Offers))
	for i, o := range p.res.Candidate.Offers {
		out[i] = Purchase{Seller: o.SellerID, SQL: o.SQL, Price: o.Price}
	}
	return out
}

// Purchase describes one bought query-answer.
type Purchase struct {
	Seller string
	SQL    string
	Price  float64
}

// Iterations reports how many trading iterations the optimization ran.
func (p *Plan) Iterations() int { return p.res.Stats.Iterations }

// Result is a materialized query answer.
type Result struct {
	Columns []string
	Rows    [][]any
}

// Run executes the plan: purchased answers are fetched from their sellers,
// local operators run at the buyer.
func (p *Plan) Run() (*Result, error) {
	if p.tracer != nil && !p.sampled {
		p.fed.setNodeTracer(p.tracer)
		defer p.fed.setNodeTracer(nil)
	}
	ex := &exec.Executor{Store: p.fed.Node(p.buyer).inner.Store()}
	tr := p.tracer
	if p.sampled && !p.res.TraceCtx.Sampled {
		tr = nil // unsampled negotiation: execution stays untraced too
	}
	res, err := core.ExecuteResultTraced(&core.NetComm{Net: p.fed.net, SelfID: p.buyer}, ex, p.res, tr)
	if err != nil {
		return nil, err
	}
	out := &Result{}
	for _, c := range res.Cols {
		name := c.Name
		if c.Table != "" {
			name = c.Table + "." + c.Name
		}
		out.Columns = append(out.Columns, name)
	}
	for _, r := range res.Rows {
		row := make([]any, len(r))
		for i, v := range r {
			row[i] = toAny(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func toAny(v value.Value) any {
	switch v.K {
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.Str:
		return v.S
	case value.Bool:
		return v.B
	}
	return nil
}

// Query optimizes and executes in one step.
func (f *Federation) Query(buyer, sql string, opts ...OptimizeOption) (*Result, error) {
	p, err := f.Optimize(buyer, sql, opts...)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// QueryWithRecovery is Query with execution-time fault tolerance: when a
// purchased seller fails between negotiation and delivery, the buyer
// re-optimizes around it and retries, up to maxRetries times.
func (f *Federation) QueryWithRecovery(buyer, sql string, maxRetries int, opts ...OptimizeOption) (*Result, error) {
	f.mu.RLock()
	bn, ok := f.nodes[buyer]
	faults := f.faults
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("qtrade: unknown buyer node %q", buyer)
	}
	cfg := core.Config{ID: buyer, Schema: f.schema.sch, Self: bn.inner, Metrics: f.metrics,
		Faults: faults, Ledger: f.ledger, Directory: f.dir, Flight: f.flight}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Tracer != nil && cfg.Sampling == nil {
		f.setNodeTracer(cfg.Tracer)
		defer f.setNodeTracer(nil)
	}
	comm := &core.NetComm{Net: f.net, SelfID: buyer}
	out, _, _, err := core.OptimizeAndExecute(cfg, comm, &exec.Executor{Store: bn.inner.Store()}, sql, maxRetries)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, c := range out.Cols {
		name := c.Name
		if c.Table != "" {
			name = c.Table + "." + c.Name
		}
		res.Columns = append(res.Columns, name)
	}
	for _, r := range out.Rows {
		row := make([]any, len(r))
		for i, v := range r {
			row[i] = toAny(v)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// DrainNode begins a graceful departure: the node refuses new buyer-originated
// RFBs with a typed rejection that buyers skip without retries, finishes its
// in-flight negotiations, awards and executions, keeps honoring its standing
// offers, and stops competing in improvement rounds. The peer directory marks
// it draining so subsequent optimizations skip it before spending a
// round-trip. Reversible with UndrainNode; finalized by RemoveNode.
func (f *Federation) DrainNode(id string) error {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("qtrade: unknown node %q", id)
	}
	n.inner.Drain("operator")
	f.dir.MarkState(id, trading.StateDraining)
	return nil
}

// UndrainNode cancels a drain, returning the node to Active in both its own
// state machine and the peer directory.
func (f *Federation) UndrainNode(id string) error {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("qtrade: unknown node %q", id)
	}
	if !n.inner.Undrain() {
		return fmt.Errorf("qtrade: node %q is not draining (state %s)", id, n.inner.State())
	}
	f.dir.MarkState(id, trading.StateActive)
	return nil
}

// RemoveNode takes a node out of the federation for good: its lifecycle
// moves to Left (revoking every standing offer), it is unregistered from the
// network, and it disappears from peer views and the directory. For a
// graceful exit call DrainNode first and give in-flight work time to finish
// (Federation.QuiesceNode); RemoveNode itself does not wait. Rejoining under
// the same id is a fresh AddNode.
func (f *Federation) RemoveNode(id string) error {
	f.mu.Lock()
	n, ok := f.nodes[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("qtrade: unknown node %q", id)
	}
	delete(f.nodes, id)
	f.mu.Unlock()
	n.inner.Leave("removed")
	f.net.Unregister(id)
	f.dir.Forget(id)
	return nil
}

// QuiesceNode waits — up to timeout — for a node's in-flight work (admitted
// RFBs and running executions) to finish, reporting whether it fully
// quiesced. Most useful between DrainNode and RemoveNode.
func (f *Federation) QuiesceNode(id string, timeout time.Duration) bool {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return true
	}
	return n.inner.Quiesce(timeout)
}

// NodeStates reports every member's lifecycle state ("active", "draining").
func (f *Federation) NodeStates() map[string]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]string, len(f.nodes))
	for id, n := range f.nodes {
		out[id] = n.inner.State().String()
	}
	return out
}

// NodeHealth returns one node's live health snapshot: lifecycle state,
// admission queue depth, executions in flight, and the per-peer breaker
// summary of its fault policy.
func (f *Federation) NodeHealth(id string) (node.Health, error) {
	f.mu.RLock()
	n, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return node.Health{}, fmt.Errorf("qtrade: unknown node %q", id)
	}
	return n.inner.Health(), nil
}

// PeerDirectory returns the buyers' shared health-gated peer view: every
// tracked peer's lifecycle state, breaker position and last successful
// contact.
func (f *Federation) PeerDirectory() []trading.PeerHealth { return f.dir.Snapshot() }

// CrashNode kills a node abruptly mid-whatever-it-was-doing: every call to
// it fails with a transient crashed error until RestartNode. Unlike
// SetNodeDown the failure is typed (recovery ledger events classify it
// "crash") and tallied in ChaosStats — the churn primitive behind F17.
func (f *Federation) CrashNode(id string) { f.net.CrashNode(id) }

// RestartNode revives a crashed node; peers can reach it again immediately.
func (f *Federation) RestartNode(id string) { f.net.RestartNode(id) }

// NetworkStats reports total messages and bytes exchanged since the last
// ResetNetworkStats.
func (f *Federation) NetworkStats() (messages, bytes int64) { return f.net.Stats() }

// ResetNetworkStats zeroes the counters.
func (f *Federation) ResetNetworkStats() { f.net.Reset() }

// SetNodeDown simulates a node failure (it stops answering peers).
func (f *Federation) SetNodeDown(id string, down bool) { f.net.SetDown(id, down) }

// CostModel exposes the default cost constants for advanced tuning.
func CostModel() *cost.Model { return cost.Default() }
