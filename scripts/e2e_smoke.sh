#!/bin/sh
# End-to-end smoke over real net/rpc: two qtnode server processes (with
# Depth-1 subcontract peering and live /metrics exposition), one traced
# qtsql query, then assertions that
#   1. the buyer's saved trace contains at least one remote seller span
#      (grafted from a qtnode process, not recorded in-process),
#   2. each node's /metrics endpoint serves Prometheus text that reflects
#      the negotiation (TYPE lines + a non-zero RFB counter), and
#   3. the buyer's live /ledger serves a complete negotiation chain (RFB,
#      bids, an award, execution with measured actuals) and /calibration
#      reports per-seller quoted-vs-measured ratios, and
#   4. the buyer's flight recorder serves the query as a complete dossier at
#      /debug/queries/{id} (walls, quoted cost, operators, ledger chain,
#      grafted spans) and /metrics/history has rolled up at least two
#      windows of the 200ms sampler.
# A churn phase follows: one qtnode is killed outright mid-session (queries
# against the surviving node must keep succeeding), then restarted (its
# /healthz must report ready and federation-wide queries must work again),
# and finally the other node is drained via SIGTERM and must log a graceful
# shutdown with its standing offers revoked.
set -eu

dir="$(mktemp -d)"
pids=""

# Kill every background qtnode on ANY exit path — normal completion, a
# failed assertion under set -e, or a signal — then wait so no zombie
# outlives the script, and only then remove the scratch dir.
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $pids; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$dir"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$dir/qtnode" ./cmd/qtnode
go build -o "$dir/qtsql" ./cmd/qtsql

echo "== start sellers"
"$dir/qtnode" -id corfu -listen 127.0.0.1:7101 -office Corfu \
    -obs-addr 127.0.0.1:9101 -peers myconos=127.0.0.1:7102 \
    >"$dir/corfu.log" 2>&1 &
corfu_pid=$!
pids="$pids $corfu_pid"
"$dir/qtnode" -id myconos -listen 127.0.0.1:7102 -office Myconos \
    -obs-addr 127.0.0.1:9102 -peers corfu=127.0.0.1:7101 \
    >"$dir/myconos.log" 2>&1 &
myconos_pid=$!
pids="$pids $myconos_pid"

wait_serving() { # log file, pid
    for _ in $(seq 1 100); do
        grep -q "serving office" "$1" 2>/dev/null && return 0
        kill -0 "$2" 2>/dev/null || break
        sleep 0.1
    done
    echo "FAIL: node never came up"; cat "$1"; exit 1
}
wait_serving "$dir/corfu.log" "$corfu_pid"
wait_serving "$dir/myconos.log" "$myconos_pid"

# The serving line proves the RPC listener bound, but not that the kernel
# accepts connections yet (or that the obs mux is up); retry a real dial
# against each node's /healthz — a 200 means the obs mux is up AND the node
# reports itself ready — before pointing qtsql at the cluster.
wait_tcp() { # url
    for _ in $(seq 1 100); do
        curl -fsS -m 2 "$1" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never accepted a connection"; exit 1
}
wait_tcp http://127.0.0.1:9101/healthz
wait_tcp http://127.0.0.1:9102/healthz
# Readiness carries the lifecycle state: a freshly started node is active.
curl -fsS http://127.0.0.1:9101/healthz >"$dir/healthz.corfu"
for want in '"ready":true' '"state":"active"' '"id":"corfu"'; do
    grep -q -- "$want" "$dir/healthz.corfu" || {
        echo "FAIL: /healthz missing $want"; cat "$dir/healthz.corfu"; exit 1; }
done

echo "== traced query"
# qtsql reads commands from a fifo so the shell stays alive — with its
# /ledger and /calibration endpoints live — while we scrape them; only then
# does \quit go down the pipe.
fifo="$dir/qtsql.in"
qtsql_ok=0
for _ in 1 2 3; do
    rm -f "$fifo"; mkfifo "$fifo"
    "$dir/qtsql" -connect corfu=127.0.0.1:7101,myconos=127.0.0.1:7102 \
        -obs-addr 127.0.0.1:9100 -history-window 200ms \
        <"$fifo" >"$dir/qtsql.log" 2>&1 &
    qtsql_pid=$!
    pids="$pids $qtsql_pid"
    exec 3>"$fifo"
    for _ in $(seq 1 50); do
        grep -q "connected to myconos" "$dir/qtsql.log" 2>/dev/null && { qtsql_ok=1; break; }
        kill -0 "$qtsql_pid" 2>/dev/null || break
        sleep 0.1
    done
    [ "$qtsql_ok" = 1 ] && break
    exec 3>&-
    kill "$qtsql_pid" 2>/dev/null || true
    sleep 0.5
done
[ "$qtsql_ok" = 1 ] || {
    echo "FAIL: qtsql could not connect to the cluster"; cat "$dir/qtsql.log"; exit 1; }
printf '%s\n' \
    '\trace on' \
    "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')" \
    "\\trace save $dir/trace.json" >&3
trace_ok=0
for _ in $(seq 1 100); do
    grep -q "wrote Chrome trace" "$dir/qtsql.log" 2>/dev/null && { trace_ok=1; break; }
    kill -0 "$qtsql_pid" 2>/dev/null || break
    sleep 0.1
done
[ "$trace_ok" = 1 ] || {
    echo "FAIL: qtsql did not save a trace"; cat "$dir/qtsql.log"; exit 1; }

echo "== assert /ledger and /calibration on the live buyer"
wait_tcp http://127.0.0.1:9100/metrics
curl -fsS "http://127.0.0.1:9100/ledger" >"$dir/ledger.jsonl"
# A complete negotiation chain: RFB out, bids in, an award, and execution
# with buyer-measured actuals on the fetch.
for want in '"kind":"rfb"' '"kind":"bid"' '"kind":"award"' '"kind":"exec"' '"kind":"fetch"' '"wall_ms"'; do
    grep -q -- "$want" "$dir/ledger.jsonl" || {
        echo "FAIL: /ledger missing $want"; cat "$dir/ledger.jsonl"; exit 1; }
done
curl -fsS "http://127.0.0.1:9100/calibration" >"$dir/calibration.json"
for want in '"sellers"' '"corfu"' '"mean_ratio"' '"win_rate"'; do
    grep -q -- "$want" "$dir/calibration.json" || {
        echo "FAIL: /calibration missing $want"; cat "$dir/calibration.json"; exit 1; }
done
# The sellers audit their side too: pricing events keyed by the buyer's RFB.
curl -fsS "http://127.0.0.1:9101/ledger" >"$dir/ledger.corfu.jsonl"
grep -q '"kind":"priced"' "$dir/ledger.corfu.jsonl" || {
    echo "FAIL: corfu ledger has no pricing events"; cat "$dir/ledger.corfu.jsonl"; exit 1; }

echo "== assert /debug/queries serves a complete dossier"
# The flight recorder admitted the traced query as a dossier: the list
# endpoint serves summaries, and the per-id detail endpoint the full record —
# walls, quoted-vs-measured cost, operator roster, the negotiation's ledger
# chain and the grafted federation-wide span tree.
curl -fsS "http://127.0.0.1:9100/debug/queries" >"$dir/queries.json"
for want in '"id"' '"sql"' '"wall_ms"' '"rows"'; do
    grep -q -- "$want" "$dir/queries.json" || {
        echo "FAIL: /debug/queries missing $want"; cat "$dir/queries.json"; exit 1; }
done
qid="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$dir/queries.json" | head -1)"
[ -n "$qid" ] || {
    echo "FAIL: /debug/queries has no dossier id"; cat "$dir/queries.json"; exit 1; }
curl -fsS "http://127.0.0.1:9100/debug/queries/$qid" >"$dir/dossier.json"
for want in '"buyer"' '"optimize_ms"' '"quoted_ms"' '"operators"' '"ledger"' '"spans"'; do
    grep -q -- "$want" "$dir/dossier.json" || {
        echo "FAIL: dossier $qid missing $want"; cat "$dir/dossier.json"; exit 1; }
done

echo "== assert /metrics/history rolls up windows"
# The 200ms sampler must have closed at least two rollup windows by now; each
# carries a sequence number, its bounds, and counter/histogram deltas.
hist_ok=0
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:9100/metrics/history?n=8" >"$dir/history.json" 2>/dev/null; then
        if [ "$(grep -c '"seq":' "$dir/history.json")" -ge 2 ]; then
            hist_ok=1; break
        fi
    fi
    sleep 0.1
done
[ "$hist_ok" = 1 ] || {
    echo "FAIL: /metrics/history never served 2 windows"; cat "$dir/history.json" 2>/dev/null; exit 1; }
grep -q '"start_unix_ms"' "$dir/history.json" || {
    echo "FAIL: history window has no bounds"; cat "$dir/history.json"; exit 1; }

printf '\\quit\n' >&3
exec 3>&-
wait "$qtsql_pid" || {
    echo "FAIL: qtsql exited non-zero"; cat "$dir/qtsql.log"; exit 1; }

echo "== assert remote seller spans in the buyer's trace"
# The Chrome trace names one process per source node; seller-side pricing
# spans only exist in the buyer's tree if they were shipped back over
# net/rpc and grafted.
for want in '"corfu"' '"myconos"' 'request-bids' 'dp-pricing'; do
    grep -q -- "$want" "$dir/trace.json" || {
        echo "FAIL: trace missing $want"; cat "$dir/trace.json"; exit 1; }
done

echo "== assert /metrics"
for port in 9101 9102; do
    curl -fsS "http://127.0.0.1:$port/metrics" >"$dir/metrics.$port"
    grep -q '^# TYPE ' "$dir/metrics.$port" || {
        echo "FAIL: no TYPE lines from :$port"; cat "$dir/metrics.$port"; exit 1; }
done
# The negotiation must be visible in the sellers' counters.
grep -Eq '^node_corfu_rfbs [1-9]' "$dir/metrics.9101" || {
    echo "FAIL: corfu served no RFBs"; cat "$dir/metrics.9101"; exit 1; }
grep -Eq '^node_myconos_rfbs [1-9]' "$dir/metrics.9102" || {
    echo "FAIL: myconos served no RFBs"; cat "$dir/metrics.9102"; exit 1; }
# pprof rides on the same mux.
curl -fsS "http://127.0.0.1:9101/debug/pprof/cmdline" >/dev/null

# run_query <log> <connect-spec> <sql>: one non-interactive qtsql session
# that must answer the query with a row count and no error lines.
run_query() {
    printf '%s\n' "$3" '\quit' | "$dir/qtsql" -connect "$2" \
        -call-timeout 5s >"$1" 2>&1 || {
        echo "FAIL: qtsql exited non-zero"; cat "$1"; exit 1; }
    grep -q " rows)" "$1" || {
        echo "FAIL: query returned no rows"; cat "$1"; exit 1; }
    grep -q "^error\|^execution error" "$1" && {
        echo "FAIL: query errored"; cat "$1"; exit 1; }
    return 0
}

echo "== churn: kill myconos outright, surviving node keeps answering"
kill -9 "$myconos_pid" 2>/dev/null || true
wait "$myconos_pid" 2>/dev/null || true
run_query "$dir/churn_down.log" corfu=127.0.0.1:7101 \
    "SELECT c.custname FROM customer c WHERE c.office = 'Corfu'"

echo "== churn: restart myconos, federation-wide queries work again"
"$dir/qtnode" -id myconos -listen 127.0.0.1:7102 -office Myconos \
    -obs-addr 127.0.0.1:9102 -peers corfu=127.0.0.1:7101 \
    >"$dir/myconos2.log" 2>&1 &
myconos_pid=$!
pids="$pids $myconos_pid"
wait_serving "$dir/myconos2.log" "$myconos_pid"
wait_tcp http://127.0.0.1:9102/healthz
run_query "$dir/churn_up.log" corfu=127.0.0.1:7101,myconos=127.0.0.1:7102 \
    "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')"

echo "== churn: SIGTERM drains corfu gracefully"
kill -TERM "$corfu_pid"
wait "$corfu_pid" || true
grep -q '"draining"\|msg=draining' "$dir/corfu.log" || {
    echo "FAIL: corfu never logged a drain"; cat "$dir/corfu.log"; exit 1; }
grep -q "standing_offers_revoked" "$dir/corfu.log" || {
    echo "FAIL: corfu never revoked standing offers"; cat "$dir/corfu.log"; exit 1; }

echo "e2e smoke OK"
