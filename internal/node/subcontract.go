package node

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/localopt"
	"qtrade/internal/obs"
	"qtrade/internal/rewrite"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// subcontract records how a composite offer is assembled at execution time:
// the node's own restricted subquery plus purchased fragments from third
// nodes.
type subcontract struct {
	localSQL string
	width    int
	remotes  []subRemote
}

type subRemote struct {
	peerID string
	sql    string
}

// subcontractOffers implements the §3.5 subcontracting procedure: for every
// query relation the node covers only partially, it asks its own peers for
// the missing partitions (a nested, depth-limited negotiation) and — when
// the gap can be covered — offers the *complete* relation extent, priced as
// its own cost plus the purchased offers.
//
// Each relation's probe is an independent nested negotiation, so they join
// the node's pricing pool: a probe runs on a spare worker slot when one is
// free and inline on the caller's slot otherwise. Offer ids are minted
// up front in relation order and results are collected positionally, so the
// output is byte-identical no matter how the probes were scheduled.
//
// sp is the parent span for the nested negotiation (nil when tracing is off).
func (n *Node) subcontractOffers(rfb trading.RFB, qr trading.QueryRequest, sel *sqlparse.Select, rw *rewrite.Rewritten, partials []*localopt.Partial, sp *obs.Span, ids *offerIDGen) []trading.Offer {
	peers := n.cfg.SubcontractPeers()
	if len(peers) == 0 {
		return nil
	}
	if n.cfg.Faults != nil {
		// Guard the negotiation only; execution-time fetches go through the
		// raw peers (executeSubcontract needs their Execute method).
		guarded := make(map[string]trading.Peer, len(peers))
		for id, p := range peers {
			guarded[id] = n.cfg.Faults.Wrap(id, p)
		}
		peers = guarded
	}
	type probe struct {
		tr                      sqlparse.TableRef
		own                     *localopt.Partial
		held, missing, relevant []string
		offerID                 string
	}
	var probes []probe
	for _, tr := range sel.From {
		b := strings.ToLower(tr.Binding())
		held, isKept := rw.Parts[b]
		if !isKept {
			continue // fully foreign relations are the buyer's problem
		}
		bindingPred := singleBindingPredOf(sel, tr.Binding())
		relevant := rewrite.RelevantPartitions(n.cfg.Schema, tr.Name, bindingPred)
		missing := subtract(relevant, held)
		if len(missing) == 0 {
			continue
		}
		// The node's own 1-way partial for this binding.
		var own *localopt.Partial
		for _, p := range partials {
			if len(p.Bindings) == 1 && strings.EqualFold(p.Bindings[0], tr.Binding()) {
				own = p
			}
		}
		if own == nil {
			continue
		}
		probes = append(probes, probe{tr: tr, own: own, held: held,
			missing: missing, relevant: relevant, offerID: ids.next("s")})
	}
	results := make([]*trading.Offer, len(probes))
	var wg sync.WaitGroup
	for i, pr := range probes {
		run := func(i int, pr probe) {
			if offer, ok := n.buildComposite(rfb, qr, sel, pr.tr, pr.own,
				pr.held, pr.missing, pr.relevant, peers, sp, pr.offerID); ok {
				results[i] = &offer
			}
		}
		if len(probes) > 1 && n.tryAcquire() {
			wg.Add(1)
			go func(i int, pr probe) {
				defer wg.Done()
				defer n.release()
				run(i, pr)
			}(i, pr)
		} else {
			run(i, pr)
		}
	}
	wg.Wait()
	var out []trading.Offer
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// buildComposite negotiates the missing partitions and assembles the
// composite offer.
func (n *Node) buildComposite(rfb trading.RFB, qr trading.QueryRequest, sel *sqlparse.Select,
	tr sqlparse.TableRef, own *localopt.Partial, held, missing, relevant []string,
	peers map[string]trading.Peer, sp *obs.Span, offerID string) (trading.Offer, bool) {

	base := localopt.SubqueryFor(sel, []string{tr.Binding()})
	// The nested negotiation inherits the buyer's trace context, so a sampled
	// Depth-1 subcontract ships its own sellers' subtrees back up the chain:
	// they graft under this node's subcontract span, which in turn rides home
	// inside the node's RequestBids payload.
	subRFB := trading.RFB{
		RFBID:   rfb.RFBID + "/sub/" + n.cfg.ID,
		BuyerID: n.cfg.ID,
		Depth:   rfb.Depth + 1,
		Trace:   rfb.Trace,
	}
	for i, pid := range missing {
		p, ok := n.cfg.Schema.Partition(tr.Name, pid)
		if !ok || p.Predicate == nil {
			return trading.Offer{}, false // whole-table gaps cannot be delegated piecewise
		}
		q := base.Clone()
		restriction := qualifyColumns(p.Predicate, tr.Binding())
		q.Where = expr.SimplifyPredicate(expr.And([]expr.Expr{q.Where, restriction}))
		subRFB.Queries = append(subRFB.Queries, trading.QueryRequest{
			QID: fmt.Sprintf("sub%d", i),
			SQL: q.SQL(),
		})
	}
	offers, _, err := trading.SealedBid{Policy: n.cfg.Faults}.Collect(subRFB, peers, sp)
	if err != nil {
		return trading.Offer{}, false
	}
	ownCols, err := OutputSpecs(own.SQL, n.cfg.Schema, n.store)
	if err != nil {
		return trading.Offer{}, false
	}
	// Greedy cover of the missing partitions by cheapest compatible offers.
	need := map[string]bool{}
	for _, pid := range missing {
		need[pid] = true
	}
	sort.SliceStable(offers, func(i, j int) bool { return offers[i].Price < offers[j].Price })
	var chosen []trading.Offer
	for _, o := range offers {
		parts := o.Parts[strings.ToLower(tr.Binding())]
		if len(parts) == 0 || !colsMatch(ownCols, o.Cols) {
			continue
		}
		adds := false
		inMissing := true
		for _, pid := range parts {
			if need[pid] {
				adds = true
			}
			if !contains(missing, pid) {
				inMissing = false
			}
		}
		if !adds || !inMissing {
			continue
		}
		// Disjointness with already chosen coverage.
		overlap := false
		for _, pid := range parts {
			if !need[pid] {
				overlap = true
			}
		}
		if overlap {
			continue
		}
		chosen = append(chosen, o)
		for _, pid := range parts {
			delete(need, pid)
		}
		if len(need) == 0 {
			break
		}
	}
	if len(need) > 0 {
		return trading.Offer{}, false
	}

	// Assemble the composite offer. Its buyer-facing SQL describes the full
	// covered extent (the union the node will deliver), projected onto the
	// same columns as the local partial so the shipped schema matches.
	covered := append(append([]string{}, held...), missing...)
	sort.Strings(covered)
	compositeSQL := base.Clone()
	compositeSQL.Items = nil
	for _, c := range ownCols {
		compositeSQL.Items = append(compositeSQL.Items, sqlparse.SelectItem{Expr: expr.NewColumn(c.Table, c.Name)})
	}
	restriction := rewrite.PartitionRestriction(n.cfg.Schema, tr.Name, tr.Binding(), covered)
	if restriction != nil && !expr.Implies(compositeSQL.Where, restriction) {
		compositeSQL.Where = expr.SimplifyPredicate(expr.And([]expr.Expr{compositeSQL.Where, restriction}))
	}
	props := cost.Valuation{Freshness: 1, Completeness: 1}
	props.TotalTime = own.Cost + n.cfg.Cost.Transfer(own.Bytes)
	props.Rows = own.Rows
	props.Bytes = own.Bytes
	remoteMax := 0.0
	sc := &subcontract{localSQL: own.SQL.SQL(), width: len(ownCols)}
	totalPurchased := 0.0
	for _, o := range chosen {
		remoteMax = math.Max(remoteMax, o.Props.TotalTime)
		props.Rows += o.Props.Rows
		props.Bytes += o.Props.Bytes
		totalPurchased += o.Price
		sc.remotes = append(sc.remotes, subRemote{peerID: o.SellerID, sql: o.SQL})
	}
	props.TotalTime += remoteMax
	props.FirstRow = n.cfg.Cost.StartupCost + 2*n.cfg.Cost.NetLatency
	if props.TotalTime > 0 {
		props.RowsPerSec = float64(props.Rows) / (props.TotalTime / 1000)
	}
	truth := trading.TruthScore(n.cfg.Weights, props) + totalPurchased

	n.mu.Lock()
	n.subcontracts[offerID] = sc
	n.mu.Unlock()

	return trading.Offer{
		OfferID:  offerID,
		RFBID:    rfb.RFBID,
		QID:      qr.QID,
		SellerID: n.cfg.ID,
		SQL:      compositeSQL.SQL(),
		Bindings: []string{tr.Binding()},
		Parts:    map[string][]string{strings.ToLower(tr.Binding()): covered},
		Complete: len(subtract(relevant, covered)) == 0,
		Stripped: sel.HasAggregates() || len(sel.GroupBy) > 0,
		Cols:     ownCols,
		Props:    props,
		Price:    n.cfg.Strategy.Price(qr.QID, truth),
	}, true
}

// executeSubcontract assembles a composite offer's answer: local partial
// rows plus the purchased fragments fetched from the subcontractors. sp is
// the node's execute span; a sampled ctx is propagated on the fetches so the
// subcontractors' execution subtrees graft under the per-peer fetch spans.
func (n *Node) executeSubcontract(sc *subcontract, sp *obs.Span, ctx obs.TraceContext) (trading.ExecResp, error) {
	sel, err := sqlparse.ParseSelect(sc.localSQL)
	if err != nil {
		return trading.ExecResp{}, err
	}
	res, err := localopt.Optimize(sel, n.cfg.Schema, n.store, n.cfg.Cost)
	if err != nil {
		return trading.ExecResp{}, err
	}
	ex := &exec.Executor{Store: n.store}
	local, err := ex.Run(res.Best.Plan)
	if err != nil {
		return trading.ExecResp{}, err
	}
	specs, err := OutputSpecs(sel, n.cfg.Schema, n.store)
	if err != nil {
		return trading.ExecResp{}, err
	}
	rows := append([]value.Row{}, local.Rows...)
	peers := n.cfg.SubcontractPeers()
	for _, r := range sc.remotes {
		peer, ok := peers[r.peerID].(interface {
			Execute(trading.ExecReq) (trading.ExecResp, error)
		})
		var resp trading.ExecResp
		var err error
		fs := sp.Child("fetch " + r.peerID)
		req := trading.ExecReq{BuyerID: n.cfg.ID, SQL: r.sql}
		if ctx.Sampled {
			req.Trace = ctx
			req.Trace.Parent = fs.ID()
		}
		sentAt := time.Now()
		switch {
		case ok:
			// Guarded so a subcontractor that died after winning cannot hang
			// the composite delivery (nil policy = direct call).
			resp, err = trading.GuardCall(n.cfg.Faults, r.peerID, func() (trading.ExecResp, error) {
				return peer.Execute(req)
			})
		case n.cfg.SubcontractFetch != nil:
			resp, err = n.cfg.SubcontractFetch(r.peerID, req)
		default:
			err = fmt.Errorf("no execution channel")
		}
		if err != nil {
			fs.Set("error", err)
			fs.End()
			return trading.ExecResp{}, fmt.Errorf("node %s: subcontractor %s: %w", n.cfg.ID, r.peerID, err)
		}
		fs.Graft(resp.Trace, sentAt, time.Now())
		fs.End()
		for _, row := range resp.Rows {
			if len(row) != sc.width {
				return trading.ExecResp{}, fmt.Errorf("node %s: subcontracted width %d != %d", n.cfg.ID, len(row), sc.width)
			}
			rows = append(rows, row)
		}
	}
	return trading.ExecResp{Cols: specs, Rows: rows}, nil
}

func colsMatch(a []trading.ColSpec, b []trading.ColSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i].Name, b[i].Name) {
			return false
		}
	}
	return true
}

func subtract(all, remove []string) []string {
	rm := map[string]bool{}
	for _, r := range remove {
		rm[r] = true
	}
	var out []string
	for _, a := range all {
		if !rm[a] {
			out = append(out, a)
		}
	}
	return out
}

func contains(list []string, x string) bool {
	for _, l := range list {
		if l == x {
			return true
		}
	}
	return false
}

// singleBindingPredOf extracts the conjunction of conjuncts referencing only
// the given binding.
func singleBindingPredOf(sel *sqlparse.Select, binding string) expr.Expr {
	var conj []expr.Expr
	for _, c := range expr.Conjuncts(sel.Where) {
		only := true
		any := false
		for _, col := range expr.Columns(c) {
			if strings.EqualFold(col.Table, binding) {
				any = true
			} else {
				only = false
				break
			}
		}
		if only && any {
			conj = append(conj, expr.Clone(c))
		}
	}
	return expr.And(conj)
}

// qualifyColumns attaches a binding qualifier to bare columns.
func qualifyColumns(e expr.Expr, binding string) expr.Expr {
	return expr.Transform(expr.Clone(e), func(x expr.Expr) expr.Expr {
		if c, ok := x.(*expr.Column); ok && c.Table == "" {
			return &expr.Column{Table: binding, Name: c.Name, Index: -1}
		}
		return x
	})
}
