package node

import (
	"testing"

	"qtrade/internal/trading"
)

func TestExecuteUnionAll(t *testing.T) {
	n := fullNode(t)
	resp, err := n.Execute(trading.ExecReq{SQL: `
		SELECT c.custname FROM customer c WHERE c.office = 'Corfu'
		UNION ALL
		SELECT c.custname FROM customer c WHERE c.office = 'Corfu'`})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 4 {
		t.Fatalf("union all rows: %d", len(resp.Rows))
	}
}

func TestExecuteUnionDistinct(t *testing.T) {
	n := fullNode(t)
	resp, err := n.Execute(trading.ExecReq{SQL: `
		SELECT c.office FROM customer c WHERE c.custid < 3
		UNION
		SELECT c.office FROM customer c`})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("union distinct rows: %v", resp.Rows)
	}
}

func TestExecuteUnionWidthMismatch(t *testing.T) {
	n := fullNode(t)
	_, err := n.Execute(trading.ExecReq{SQL: `
		SELECT c.office FROM customer c
		UNION ALL
		SELECT c.office, c.custid FROM customer c`})
	if err == nil {
		t.Fatal("mismatched union widths must error")
	}
}

func TestStandingStateEviction(t *testing.T) {
	n := fullNode(t)
	q := "SELECT c.custname FROM customer c WHERE c.office = 'Corfu'"
	for i := 0; i < maxStandingRFBs+10; i++ {
		rfb := trading.RFB{RFBID: itoa(i), BuyerID: "b",
			Queries: []trading.QueryRequest{{QID: "q0", SQL: q}}}
		if _, err := n.RequestBids(rfb); err != nil {
			t.Fatal(err)
		}
	}
	n.mu.Lock()
	size := len(n.standing)
	n.mu.Unlock()
	if size > maxStandingRFBs {
		t.Fatalf("standing state grew unbounded: %d", size)
	}
	// The oldest RFB is gone; improving it is a silent no-op.
	offers, err := bidOffers(n.ImproveBids(trading.ImproveReq{RFBID: "0", BestPrice: map[string]float64{"q0": 0.001}}))
	if err != nil || len(offers) != 0 {
		t.Fatalf("evicted rfb must be forgotten: %v %v", offers, err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
