package node

import (
	"fmt"
	"sync"
	"time"

	"qtrade/internal/exec"
	"qtrade/internal/localopt"
	"qtrade/internal/obs"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// This file is the seller side of the chunked fetch protocol. An ExecReq
// with Stream set opens the purchased query as a cursor pipeline and ships
// the first batch; when more remains, the cursor is parked in a bounded
// registry under a continuation token and the buyer pulls the rest batch by
// batch (ExecReq.Cursor/Seq), closes early (CloseCursor), or abandons it —
// in which case eviction reclaims the seller-side state. Continuations are
// idempotent per Seq so the buyer's fault policy can retry a lost batch
// without skipping rows, and the ledger's Served event fires once per
// streamed answer, on completion, with totals accumulated across batches.

// maxOpenCursors bounds the per-node registry of parked streamed
// executions. Hitting the bound evicts the oldest cursor: an abandoned
// buyer must not pin seller memory, and an evicted buyer's next
// continuation fails loudly, pushing it into the usual recovery path.
const maxOpenCursors = 64

// serverCursor is one streamed execution parked between batch pulls.
type serverCursor struct {
	id      string
	offerID string
	sql     string

	mu       sync.Mutex
	cur      exec.Cursor
	pending  []value.Row      // lookahead batch (owned copy), decides More
	seq      int64            // seq of the batch most recently delivered
	last     trading.ExecResp // that batch, re-delivered on a retried seq
	rows     int64            // cumulative rows shipped
	bytes    int64            // cumulative wire bytes shipped
	wall     float64          // cumulative execution+delivery wall ms
	finished bool             // completed, closed, or evicted
}

// sliceCursor adapts a materialized answer (a union chain or an assembled
// subcontract, which have no cursor pipeline of their own) to the cursor
// contract so chunked delivery stays uniform: execution materializes, but
// the transfer is still bounded batches.
type sliceCursor struct {
	rows  []value.Row
	pos   int
	batch int
}

func (c *sliceCursor) Open() error { return nil }

func (c *sliceCursor) Next() ([]value.Row, error) {
	if c.pos >= len(c.rows) {
		return nil, nil
	}
	end := c.pos + c.batch
	if end > len(c.rows) {
		end = len(c.rows)
	}
	b := c.rows[c.pos:end]
	c.pos = end
	return b, nil
}

func (c *sliceCursor) Close() error {
	c.pos = len(c.rows)
	return nil
}

// executeStreamOpen evaluates a purchased query through the cursor pipeline
// and returns its first batch. When batches remain, the returned
// serverCursor is non-nil and the caller (Execute) registers it after
// finalizing the response; a result that fits in one batch costs zero extra
// round trips and parks nothing.
func (n *Node) executeStreamOpen(req trading.ExecReq, sp *obs.Span) (trading.ExecResp, *serverCursor, error) {
	batch := req.BatchRows
	if batch <= 0 {
		batch = exec.DefaultBatchSize
	}
	cur, cols, err := n.openExecCursor(req, sp, batch)
	if err != nil {
		return trading.ExecResp{}, nil, err
	}
	first, err := cur.Next()
	if err != nil {
		cur.Close()
		return trading.ExecResp{}, nil, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	resp := trading.ExecResp{Cols: cols, Rows: append([]value.Row(nil), first...)}
	// One batch of lookahead decides More without an extra round trip; it is
	// copied out because cursor batches are only valid until the next pull.
	pending, err := cur.Next()
	if err != nil {
		cur.Close()
		return trading.ExecResp{}, nil, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	if len(pending) == 0 {
		return resp, nil, cur.Close()
	}
	sc := &serverCursor{
		id:      fmt.Sprintf("%s.c%d", n.cfg.ID, n.curSeq.Add(1)),
		offerID: req.OfferID,
		sql:     req.SQL,
		cur:     cur,
		pending: append([]value.Row(nil), pending...),
	}
	resp.Cursor, resp.More = sc.id, true
	return resp, sc, nil
}

// openExecCursor builds the cursor pipeline for a purchased query: the same
// plan construction as executeInner, but opened instead of drained. Unions
// and subcontract assemblies have no streaming pipeline — they materialize
// as before and chunk only the transfer.
func (n *Node) openExecCursor(req trading.ExecReq, sp *obs.Span, batch int) (exec.Cursor, []trading.ColSpec, error) {
	if req.OfferID != "" {
		n.mu.Lock()
		sub := n.subcontracts[req.OfferID]
		n.mu.Unlock()
		if sub != nil {
			resp, err := n.executeSubcontract(sub, sp, req.Trace)
			if err != nil {
				return nil, nil, err
			}
			return &sliceCursor{rows: resp.Rows, batch: batch}, resp.Cols, nil
		}
	}
	stmt, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return nil, nil, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	if u, ok := stmt.(*sqlparse.Union); ok {
		resp, err := n.executeUnion(u)
		if err != nil {
			return nil, nil, err
		}
		return &sliceCursor{rows: resp.Rows, batch: batch}, resp.Cols, nil
	}
	sel := stmt.(*sqlparse.Select)
	plan.Qualify(sel, n.cfg.Schema)
	var root plan.Node
	if len(sel.From) == 1 && n.store.View(sel.From[0].Name) != nil {
		root, err = n.viewPlan(sel)
	} else {
		var res *localopt.Result
		res, err = localopt.Optimize(sel, n.cfg.Schema, n.store, n.cfg.Cost)
		if err == nil {
			root = res.Best.Plan
		}
	}
	if err != nil {
		return nil, nil, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	specs, err := OutputSpecs(sel, n.cfg.Schema, n.store)
	if err != nil {
		// Fall back to the planned schema with unknown kinds.
		sch := root.Schema()
		specs = make([]trading.ColSpec, len(sch))
		for i, c := range sch {
			specs[i] = trading.ColSpec{Table: c.Table, Name: c.Name}
		}
	}
	ex := &exec.Executor{Store: n.store, BatchSize: batch}
	cur, err := ex.Open(root)
	if err != nil {
		return nil, nil, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	return cur, specs, nil
}

// continueStream serves one continuation (or close) of a parked streamed
// execution. Lifecycle gating already happened in Execute: a Left node never
// reaches here, a draining node keeps delivering.
func (n *Node) continueStream(req trading.ExecReq) (trading.ExecResp, error) {
	n.active.Add(1)
	defer n.active.Add(-1)
	n.curMu.Lock()
	sc := n.cursors[req.Cursor]
	n.curMu.Unlock()
	if sc == nil {
		return trading.ExecResp{}, fmt.Errorf("node %s: unknown cursor %s", n.cfg.ID, req.Cursor)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.finished {
		return trading.ExecResp{}, fmt.Errorf("node %s: cursor %s already closed", n.cfg.ID, req.Cursor)
	}
	if req.CloseCursor {
		// Early close: the buyer has what it needs (LIMIT satisfied, or the
		// plan failed elsewhere). The partial delivery is still recorded.
		n.finishCursor(sc, true)
		return trading.ExecResp{}, nil
	}
	switch {
	case req.Seq == sc.seq:
		// The buyer never saw the batch already pulled for this seq (a
		// retried delivery under the fault policy): re-deliver, don't
		// advance.
		return sc.last, nil
	case req.Seq != sc.seq+1:
		n.finishCursor(sc, false)
		return trading.ExecResp{}, fmt.Errorf("node %s: cursor %s out of sync (at %d, asked %d)",
			n.cfg.ID, req.Cursor, sc.seq, req.Seq)
	}
	var sp *obs.Span
	var remote *obs.Tracer
	if req.Trace.Sampled {
		remote = obs.NewTracer()
		sp = remote.Start(n.cfg.ID, "fetch-batch")
		sp.Set("cursor", sc.id)
		sp.Set("seq", req.Seq)
	}
	t0 := time.Now()
	rows := sc.pending
	next, err := sc.cur.Next()
	if err != nil {
		n.finishCursor(sc, false)
		sp.End()
		return trading.ExecResp{}, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	resp := trading.ExecResp{Rows: rows}
	if len(next) > 0 {
		sc.pending = append([]value.Row(nil), next...)
		resp.Cursor, resp.More = sc.id, true
	} else {
		sc.pending = nil
	}
	sc.wall += msSince(t0)
	// Cumulative wall time: the final batch carries the total cost of the
	// streamed answer, which is what the buyer's ledger records as the
	// actual behind the seller's quote.
	resp.ExecMS = sc.wall
	sc.rows += int64(len(rows))
	sc.bytes += int64(resp.WireSize())
	sp.Set("rows", len(rows))
	sp.End()
	if remote != nil {
		resp.Trace = sp.Payload()
	}
	sc.seq = req.Seq
	sc.last = resp
	if !resp.More {
		n.finishCursor(sc, true)
	}
	return resp, nil
}

// finishCursor closes a parked execution and unregisters it. Callers hold
// sc.mu. When served is true the completed (possibly partial) delivery lands
// in the seller's ledger next to its pricing events.
func (n *Node) finishCursor(sc *serverCursor, served bool) {
	if sc.finished {
		return
	}
	sc.finished = true
	sc.cur.Close()
	n.curMu.Lock()
	delete(n.cursors, sc.id)
	for i, id := range n.curOrder {
		if id == sc.id {
			n.curOrder = append(n.curOrder[:i], n.curOrder[i+1:]...)
			break
		}
	}
	n.curMu.Unlock()
	if !served || sc.offerID == "" {
		return
	}
	if ldg := n.ledg.Load(); ldg != nil {
		ldg.Served(rfbOfOffer(sc.offerID), n.cfg.ID, sc.offerID, sc.sql,
			sc.wall, sc.rows, sc.bytes)
	}
}

// registerCursor parks a streamed execution, evicting the oldest one when
// the registry is full.
func (n *Node) registerCursor(sc *serverCursor) {
	var evict *serverCursor
	n.curMu.Lock()
	if n.cursors == nil {
		n.cursors = map[string]*serverCursor{}
	}
	if len(n.cursors) >= maxOpenCursors {
		id := n.curOrder[0]
		n.curOrder = n.curOrder[1:]
		evict = n.cursors[id]
		delete(n.cursors, id)
	}
	n.cursors[sc.id] = sc
	n.curOrder = append(n.curOrder, sc.id)
	n.curMu.Unlock()
	if evict != nil {
		evict.mu.Lock()
		if !evict.finished {
			evict.finished = true
			evict.cur.Close()
		}
		evict.mu.Unlock()
	}
}

// OpenCursors reports how many streamed executions are currently parked,
// for tests and operational introspection (a healthy buyer drains or closes
// every stream it opens).
func (n *Node) OpenCursors() int {
	n.curMu.Lock()
	defer n.curMu.Unlock()
	return len(n.cursors)
}
