package node

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// fullNode holds the complete tiny dataset on one node, so every query in
// the logic battery runs the whole parse → optimize → execute stack.
//
//	customer: (1 alice Corfu) (2 bob Corfu) (3 carol Myconos) (4 dave Athens) (5 eve Myconos)
//	invoiceline: (100,1,1,10) (100,2,1,5) (101,1,2,7) (102,1,3,20) (103,1,5,2) (104,1,4,100)
func fullNode(t *testing.T) *Node {
	t.Helper()
	sch := telcoSchema()
	n := New(Config{ID: "oracle", Schema: sch})
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	for _, p := range []string{"corfu", "myconos"} {
		if _, err := n.Store().CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Store().CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		part   string
		id     int64
		name   string
		office string
	}{
		{"corfu", 1, "alice", "Corfu"},
		{"corfu", 2, "bob", "Corfu"},
		{"myconos", 3, "carol", "Myconos"},
		{"myconos", 5, "eve", "Myconos"},
	}
	for _, r := range rows {
		if err := n.Store().Insert("customer", r.part,
			value.Row{value.NewInt(r.id), value.NewStr(r.name), value.NewStr(r.office)}); err != nil {
			t.Fatal(err)
		}
	}
	lines := [][4]float64{
		{100, 1, 1, 10}, {100, 2, 1, 5}, {101, 1, 2, 7},
		{102, 1, 3, 20}, {103, 1, 5, 2},
	}
	for _, l := range lines {
		if err := n.Store().Insert("invoiceline", "p0", value.Row{
			value.NewInt(int64(l[0])), value.NewInt(int64(l[1])),
			value.NewInt(int64(l[2])), value.NewFloat(l[3]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// render canonicalizes a result to sorted rows of space-joined cells.
func render(resp trading.ExecResp) []string {
	out := make([]string, len(resp.Rows))
	for i, r := range resp.Rows {
		cells := make([]string, len(r))
		for j, v := range r {
			switch v.K {
			case value.Str:
				cells[j] = v.S
			case value.Float:
				cells[j] = trimFloat(v.F)
			case value.Null:
				cells[j] = "∅"
			default:
				cells[j] = v.String()
			}
		}
		out[i] = strings.Join(cells, " ")
	}
	sort.Strings(out)
	return out
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

func TestSQLLogicBattery(t *testing.T) {
	n := fullNode(t)
	cases := []struct {
		q    string
		want []string // sorted canonical rows; nil means only assert row count
		rows int
	}{
		// Projection and filters.
		{q: "SELECT c.custname FROM customer c WHERE c.office = 'Corfu'",
			want: []string{"alice", "bob"}},
		{q: "SELECT c.custname FROM customer c WHERE c.custid > 2 AND c.custid <= 5",
			want: []string{"carol", "eve"}},
		{q: "SELECT c.custname FROM customer c WHERE c.custid IN (1, 5)",
			want: []string{"alice", "eve"}},
		{q: "SELECT c.custname FROM customer c WHERE c.custid NOT IN (1, 5)",
			want: []string{"bob", "carol"}},
		{q: "SELECT c.custname FROM customer c WHERE c.custid BETWEEN 2 AND 3",
			want: []string{"bob", "carol"}},
		{q: "SELECT c.custname FROM customer c WHERE NOT c.office = 'Corfu'",
			want: []string{"carol", "eve"}},
		{q: "SELECT c.custname FROM customer c WHERE c.office = 'Corfu' OR c.custid = 5",
			want: []string{"alice", "bob", "eve"}},
		// Arithmetic in projections and predicates.
		{q: "SELECT c.custid * 10 + 1 FROM customer c WHERE c.custid = 3",
			want: []string{"31"}},
		{q: "SELECT c.custname FROM customer c WHERE c.custid % 2 = 0",
			want: []string{"bob"}},
		// Joins.
		{q: "SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid AND i.charge > 9",
			want: []string{"alice 10", "carol 20"}},
		{q: "SELECT c.custname FROM customer c JOIN invoiceline i ON c.custid = i.custid WHERE i.charge < 3",
			want: []string{"eve"}},
		// Self join: pairs of customers in the same office.
		{q: "SELECT a.custname, b.custname FROM customer a, customer b WHERE a.office = b.office AND a.custid < b.custid",
			want: []string{"alice bob", "carol eve"}},
		// Aggregation.
		{q: "SELECT SUM(i.charge) FROM invoiceline i", want: []string{"44"}},
		{q: "SELECT COUNT(*) FROM invoiceline i WHERE i.charge >= 7", want: []string{"3"}},
		{q: "SELECT MIN(i.charge), MAX(i.charge), AVG(i.charge) FROM invoiceline i WHERE i.custid = 1",
			want: []string{"5 10 7.5"}},
		{q: "SELECT c.office, SUM(i.charge) FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office",
			want: []string{"Corfu 22", "Myconos 22"}},
		{q: "SELECT c.office, COUNT(*) FROM customer c GROUP BY c.office HAVING COUNT(*) > 1",
			want: []string{"Corfu 2", "Myconos 2"}},
		{q: "SELECT i.custid, COUNT(DISTINCT i.invid) FROM invoiceline i GROUP BY i.custid HAVING COUNT(*) > 1",
			want: []string{"1 1"}},
		{q: "SELECT SUM(i.charge) FROM invoiceline i WHERE i.charge > 1000",
			want: []string{"∅"}},
		{q: "SELECT COUNT(*) FROM invoiceline i WHERE i.charge > 1000", want: []string{"0"}},
		// Expressions over aggregates.
		{q: "SELECT SUM(i.charge) / COUNT(*) FROM invoiceline i WHERE i.custid = 1",
			want: []string{"7.5"}},
		// DISTINCT, ORDER BY, LIMIT.
		{q: "SELECT DISTINCT c.office FROM customer c",
			want: []string{"Corfu", "Myconos"}},
		{q: "SELECT c.custname FROM customer c ORDER BY c.custid DESC LIMIT 2",
			want: []string{"carol", "eve"}},
		{q: "SELECT c.custname FROM customer c ORDER BY c.custname LIMIT 1",
			want: []string{"alice"}},
		// Star expansion.
		{q: "SELECT * FROM customer c WHERE c.custid = 1", rows: 1},
		// Aliased outputs.
		{q: "SELECT c.custname AS who, i.charge AS amt FROM customer c, invoiceline i WHERE c.custid = i.custid AND c.custid = 2",
			want: []string{"bob 7"}},
		// Empty results.
		{q: "SELECT c.custname FROM customer c WHERE c.office = 'Paris'", want: []string{}},
		// Cross join row count: 4 customers x 5 lines.
		{q: "SELECT c.custid, i.invid FROM customer c, invoiceline i", rows: 20},
		// IS NULL semantics (no NULLs in data).
		{q: "SELECT COUNT(*) FROM customer c WHERE c.custname IS NULL", want: []string{"0"}},
		{q: "SELECT COUNT(*) FROM customer c WHERE c.custname IS NOT NULL", want: []string{"4"}},
		// String comparison ordering.
		{q: "SELECT c.custname FROM customer c WHERE c.custname < 'bz' AND c.custname > 'am'",
			want: []string{"bob"}},
	}
	for _, tc := range cases {
		resp, err := n.Execute(trading.ExecReq{SQL: tc.q})
		if err != nil {
			t.Errorf("%s\n  error: %v", tc.q, err)
			continue
		}
		if tc.want == nil {
			if len(resp.Rows) != tc.rows {
				t.Errorf("%s\n  rows = %d, want %d", tc.q, len(resp.Rows), tc.rows)
			}
			continue
		}
		got := render(resp)
		want := append([]string{}, tc.want...)
		sort.Strings(want)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Errorf("%s\n  got  %v\n  want %v", tc.q, got, want)
		}
	}
}
