package node

import (
	"reflect"
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
	"qtrade/internal/storage"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// streamAll opens a streamed execution at the given batch size and pulls
// every continuation, returning the reassembled answer.
func streamAll(t *testing.T, n *Node, sql string, batch int) trading.ExecResp {
	t.Helper()
	resp, err := n.Execute(trading.ExecReq{SQL: sql, Stream: true, BatchRows: batch})
	if err != nil {
		t.Fatalf("stream open %q: %v", sql, err)
	}
	all := resp
	seq := int64(0)
	for all.More {
		seq++
		next, err := n.Execute(trading.ExecReq{Cursor: all.Cursor, Seq: seq})
		if err != nil {
			t.Fatalf("continuation %d of %q: %v", seq, sql, err)
		}
		resp.Rows = append(resp.Rows, next.Rows...)
		all = next
	}
	resp.Cursor, resp.More = "", false
	return resp
}

// TestStreamingDifferentialSQLLogic reassembles every query in the logic
// battery from size-3 batches and demands rows identical — content AND
// order — to the one-shot materializing Execute.
func TestStreamingDifferentialSQLLogic(t *testing.T) {
	n := fullNode(t)
	queries := []string{
		"SELECT c.custname FROM customer c WHERE c.office = 'Corfu'",
		"SELECT c.custname FROM customer c WHERE c.custid > 2 AND c.custid <= 5",
		"SELECT c.custname FROM customer c WHERE c.custid IN (1, 5)",
		"SELECT c.custid * 10 + 1 FROM customer c WHERE c.custid = 3",
		"SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid AND i.charge > 9",
		"SELECT a.custname, b.custname FROM customer a, customer b WHERE a.office = b.office AND a.custid < b.custid",
		"SELECT SUM(i.charge) FROM invoiceline i",
		"SELECT MIN(i.charge), MAX(i.charge), AVG(i.charge) FROM invoiceline i WHERE i.custid = 1",
		"SELECT c.office, SUM(i.charge) FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office",
		"SELECT c.office, COUNT(*) FROM customer c GROUP BY c.office HAVING COUNT(*) > 1",
		"SELECT DISTINCT c.office FROM customer c",
		"SELECT c.custname FROM customer c ORDER BY c.custid DESC LIMIT 2",
		"SELECT c.custname FROM customer c ORDER BY c.custname LIMIT 1",
		"SELECT * FROM customer c WHERE c.custid = 1",
		"SELECT c.custname FROM customer c WHERE c.office = 'Paris'",
		"SELECT c.custid, i.invid FROM customer c, invoiceline i",
		"SELECT COUNT(*) FROM customer c WHERE c.custname IS NOT NULL",
	}
	for _, q := range queries {
		want, err := n.Execute(trading.ExecReq{SQL: q})
		if err != nil {
			t.Fatalf("one-shot %q: %v", q, err)
		}
		got := streamAll(t, n, q, 3)
		if !reflect.DeepEqual(got.Rows, want.Rows) &&
			!(len(got.Rows) == 0 && len(want.Rows) == 0) {
			t.Errorf("%s\n  streamed %v\n  one-shot %v", q, got.Rows, want.Rows)
		}
		if !reflect.DeepEqual(got.Cols, want.Cols) {
			t.Errorf("%s\n  streamed cols %v != %v", q, got.Cols, want.Cols)
		}
	}
	if n.OpenCursors() != 0 {
		t.Fatalf("drained streams must leave no parked cursors, have %d", n.OpenCursors())
	}
}

// Sub-batch answers complete in the opening exchange: no cursor, no More,
// no extra round trips — the streamed wire conversation for small results
// is the one-shot conversation.
func TestStreamSmallResultSingleExchange(t *testing.T) {
	n := fullNode(t)
	resp, err := n.Execute(trading.ExecReq{
		SQL: "SELECT i.invid FROM invoiceline i", Stream: true, BatchRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if resp.More || resp.Cursor != "" {
		t.Fatalf("5-row answer in 64-row batches must finish in one exchange: %+v", resp)
	}
	if n.OpenCursors() != 0 {
		t.Fatal("nothing may be parked for a single-exchange answer")
	}
}

func TestStreamContinuationProtocol(t *testing.T) {
	n := fullNode(t)
	q := "SELECT c.custid, i.invid FROM customer c, invoiceline i" // 20 rows
	open, err := n.Execute(trading.ExecReq{SQL: q, Stream: true, BatchRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !open.More || open.Cursor == "" || len(open.Rows) != 4 {
		t.Fatalf("open: %+v", open)
	}
	b1, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A retried delivery of the same seq returns the identical batch and
	// does not advance the cursor.
	again, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 1})
	if err != nil {
		t.Fatalf("idempotent retry: %v", err)
	}
	if !reflect.DeepEqual(b1.Rows, again.Rows) || b1.More != again.More {
		t.Fatalf("retried seq must re-deliver: %v vs %v", b1.Rows, again.Rows)
	}
	b2, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 2})
	if err != nil || len(b2.Rows) != 4 {
		t.Fatalf("seq 2 after retry: %v %v", b2.Rows, err)
	}
	// Skipping ahead is a protocol violation: the cursor dies, and the
	// next touch reports it gone.
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 9}); err == nil ||
		!strings.Contains(err.Error(), "out of sync") {
		t.Fatalf("out-of-sync must kill the cursor, got %v", err)
	}
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 3}); err == nil {
		t.Fatal("killed cursor must refuse further pulls")
	}
	if n.OpenCursors() != 0 {
		t.Fatalf("killed cursor must be unregistered, have %d", n.OpenCursors())
	}
	// Unknown cursors fail loudly.
	if _, err := n.Execute(trading.ExecReq{Cursor: "ghost.c9", Seq: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown cursor") {
		t.Fatalf("unknown cursor: %v", err)
	}
}

// CloseCursor abandons a parked execution early and reclaims it
// immediately — the buyer-side LIMIT path depends on this not leaking.
func TestStreamEarlyClose(t *testing.T) {
	n := fullNode(t)
	open, err := n.Execute(trading.ExecReq{
		SQL:    "SELECT c.custid, i.invid FROM customer c, invoiceline i",
		Stream: true, BatchRows: 2})
	if err != nil || !open.More {
		t.Fatalf("open: %+v %v", open, err)
	}
	if n.OpenCursors() != 1 {
		t.Fatalf("parked cursors = %d, want 1", n.OpenCursors())
	}
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, CloseCursor: true}); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n.OpenCursors() != 0 {
		t.Fatalf("closed cursor must be reclaimed, have %d", n.OpenCursors())
	}
	// Closing twice is an error (the cursor is gone), not a hang.
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, CloseCursor: true}); err == nil {
		t.Fatal("double close must report the cursor gone")
	}
}

// The registry is bounded: abandoning more streams than maxOpenCursors
// evicts the oldest, whose next continuation fails into recovery.
func TestStreamCursorEviction(t *testing.T) {
	n := fullNode(t)
	q := "SELECT c.custid, i.invid FROM customer c, invoiceline i"
	var first trading.ExecResp
	for i := 0; i < maxOpenCursors+1; i++ {
		resp, err := n.Execute(trading.ExecReq{SQL: q, Stream: true, BatchRows: 2})
		if err != nil || !resp.More {
			t.Fatalf("open %d: %+v %v", i, resp, err)
		}
		if i == 0 {
			first = resp
		}
	}
	if got := n.OpenCursors(); got != maxOpenCursors {
		t.Fatalf("registry must stay bounded: %d > %d", got, maxOpenCursors)
	}
	if _, err := n.Execute(trading.ExecReq{Cursor: first.Cursor, Seq: 1}); err == nil {
		t.Fatal("evicted cursor must refuse continuation")
	}
}

// A node that has Left the federation refuses continuations like any other
// execution, with a transient error that routes the buyer into recovery.
func TestStreamLeftNodeRefusesContinuation(t *testing.T) {
	n := fullNode(t)
	open, err := n.Execute(trading.ExecReq{
		SQL:    "SELECT c.custid, i.invid FROM customer c, invoiceline i",
		Stream: true, BatchRows: 2})
	if err != nil || !open.More {
		t.Fatalf("open: %+v %v", open, err)
	}
	n.Leave("maintenance")
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 1}); err == nil {
		t.Fatal("left node must refuse continuations")
	}
}

// Streamed delivery of a purchased (offer-bound) answer records exactly one
// Served ledger event carrying the cumulative row count.
func TestStreamServedLedgerOnce(t *testing.T) {
	n := fullNode(t)
	led := ledger.New(4)
	n.SetLedger(led)
	q := "SELECT c.custid, i.invid FROM customer c, invoiceline i"
	open, err := n.Execute(trading.ExecReq{SQL: q, OfferID: "rfb7.oracle.1", Stream: true, BatchRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	rows := len(open.Rows)
	seq := int64(0)
	for open.More {
		seq++
		open, err = n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: seq, OfferID: "rfb7.oracle.1"})
		if err != nil {
			t.Fatal(err)
		}
		rows += len(open.Rows)
	}
	if rows != 20 {
		t.Fatalf("reassembled %d rows, want 20", rows)
	}
	var served []ledger.Event
	for _, neg := range led.Negotiations(0) {
		for _, e := range neg.Events {
			if e.Kind == ledger.KindServed {
				served = append(served, e)
			}
		}
	}
	if len(served) != 1 {
		t.Fatalf("served events = %d, want 1: %+v", len(served), served)
	}
	if served[0].Rows != 20 {
		t.Fatalf("served rows = %d, want cumulative 20", served[0].Rows)
	}
	if served[0].Bytes <= 0 || served[0].WallMS < 0 {
		t.Fatalf("served actuals: %+v", served[0])
	}
}

// Union answers have no cursor pipeline of their own: execution
// materializes and a sliceCursor chunks the transfer. Reassembled from
// 1-row batches, the answer must equal the one-shot union, and abandoning
// it mid-transfer must reclaim the parked slice like any other cursor.
func TestStreamUnionChunked(t *testing.T) {
	n := fullNode(t)
	q := `
		SELECT c.custname FROM customer c WHERE c.office = 'Corfu'
		UNION ALL
		SELECT c.custname FROM customer c WHERE c.office = 'Corfu'`
	want, err := n.Execute(trading.ExecReq{SQL: q})
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, n, q, 1)
	if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("streamed union differs:\n  streamed %v\n  one-shot %v", got.Rows, want.Rows)
	}
	open, err := n.Execute(trading.ExecReq{SQL: q, Stream: true, BatchRows: 1})
	if err != nil || !open.More {
		t.Fatalf("open: %+v %v", open, err)
	}
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, CloseCursor: true}); err != nil {
		t.Fatal(err)
	}
	if n.OpenCursors() != 0 {
		t.Fatalf("abandoned union cursor still parked: %d", n.OpenCursors())
	}
}

// View-backed offers stream through the same chunked protocol: the view
// plan feeds the cursor pipeline and the reassembled rollup matches the
// one-shot execution of the same offer SQL.
func TestStreamViewOfferChunked(t *testing.T) {
	n := myconosNode(t, nil)
	if err := n.Store().AddView(&storage.MaterializedView{
		Name: "officetotals",
		SQL: `SELECT c.office, c.custid, SUM(i.charge) AS total FROM customer c, invoiceline i
		      WHERE c.custid = i.custid GROUP BY c.office, c.custid`,
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "custid", Kind: value.Int},
			{Name: "total", Kind: value.Float},
		},
		Rows: []value.Row{
			{value.NewStr("Myconos"), value.NewInt(3), value.NewFloat(20)},
			{value.NewStr("Myconos"), value.NewInt(5), value.NewFloat(2)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
	      WHERE c.custid = i.custid GROUP BY c.office`
	rfb := trading.RFB{RFBID: "r2", BuyerID: "athens",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: q}}}
	offers, err := bidOffers(n.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	var viewOffer *trading.Offer
	for i := range offers {
		if offers[i].FromView {
			viewOffer = &offers[i]
		}
	}
	if viewOffer == nil {
		t.Fatal("view offer expected")
	}
	want, err := n.Execute(trading.ExecReq{SQL: viewOffer.SQL})
	if err != nil {
		t.Fatal(err)
	}
	got := streamAll(t, n, viewOffer.SQL, 1)
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("streamed view offer differs:\n  streamed %v\n  one-shot %v", got.Rows, want.Rows)
	}
	if n.OpenCursors() != 0 {
		t.Fatalf("view stream left %d cursors parked", n.OpenCursors())
	}
}

// A sampled continuation ships a per-batch span payload back for grafting
// into the buyer's trace; an unsampled one must ship nothing.
func TestStreamContinuationTraced(t *testing.T) {
	n := fullNode(t)
	open, err := n.Execute(trading.ExecReq{
		SQL:    "SELECT c.custid, i.invid FROM customer c, invoiceline i",
		Stream: true, BatchRows: 4})
	if err != nil || !open.More {
		t.Fatalf("open: %+v %v", open, err)
	}
	sampled, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 1,
		Trace: obs.TraceContext{TraceID: "t1", Parent: 7, Sampled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Trace == nil {
		t.Fatal("sampled continuation must carry a span payload")
	}
	plain, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("unsampled continuation must not ship trace data")
	}
	if _, err := n.Execute(trading.ExecReq{Cursor: open.Cursor, CloseCursor: true}); err != nil {
		t.Fatal(err)
	}
}

// sliceCursor adapts materialized answers to the cursor contract; its
// batching and termination behavior must hold on its own.
func TestSliceCursorContract(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1)}, {value.NewInt(2)}, {value.NewInt(3)},
	}
	c := &sliceCursor{rows: rows, batch: 2}
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	b, err := c.Next()
	if err != nil || len(b) != 2 {
		t.Fatalf("first batch: %v %v", b, err)
	}
	b, err = c.Next()
	if err != nil || len(b) != 1 {
		t.Fatalf("tail batch: %v %v", b, err)
	}
	if b, err = c.Next(); err != nil || b != nil {
		t.Fatalf("exhausted cursor: %v %v", b, err)
	}
	c2 := &sliceCursor{rows: rows, batch: 2}
	if _, err := c2.Next(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := c2.Next(); err != nil || b != nil {
		t.Fatalf("closed cursor must be exhausted: %v %v", b, err)
	}
}
