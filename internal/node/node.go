// Package node implements a federation node: an autonomous DBMS wrapping the
// local storage engine, statistics and System-R optimizer, plus the
// seller-side trading modules of Figure 3 — the partial query constructor
// and cost estimator (rewrite + modified DP), the seller predicates analyser
// (materialized-view offers), and the seller strategy module (pricing).
//
// A node never executes anything while negotiating: RequestBids and
// ImproveBids price offers purely from optimizer estimates; only Execute —
// sent by a buyer for a purchased answer after optimization has finished —
// touches data.
package node

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/ledger"
	"qtrade/internal/localopt"
	"qtrade/internal/obs"
	"qtrade/internal/plan"
	"qtrade/internal/pricecache"
	"qtrade/internal/rewrite"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/views"
)

// Config configures a node.
type Config struct {
	ID      string
	Schema  *catalog.Schema
	Cost    *cost.Model  // nil = cost.Default()
	Weights cost.Weights // zero = cost.DefaultWeights()
	// Strategy prices offers; nil = trading.Cooperative{}.
	Strategy trading.SellerStrategy
	// MaxOffersPerQuery caps how many partial-result offers a seller sends
	// per requested query (0 = 24).
	MaxOffersPerQuery int
	// DisableViews turns the seller predicates analyser off (ablation F7).
	DisableViews bool
	// DisableAggPush turns partial-aggregate offers off (ablation F11).
	DisableAggPush bool
	// SubcontractPeers, when set, enables the §3.5 subcontracting
	// procedure: the node purchases missing fragments of partially held
	// relations from these peers and offers complete extents. Only Depth-0
	// RFBs are subcontracted.
	SubcontractPeers func() map[string]trading.Peer
	// SubcontractFetch fetches a purchased fragment from a subcontractor at
	// execution time when the peers do not expose an Execute method
	// themselves (e.g. pure trading.Peer implementations).
	SubcontractFetch func(peerID string, req trading.ExecReq) (trading.ExecResp, error)
	// Faults, when set, guards the nested subcontract negotiation with the
	// policy's timeouts, retries and per-peer breakers. Share one policy
	// (and its BreakerSet) with the buyer so failures seen on either side
	// open the same breaker.
	Faults *trading.FaultPolicy
	// Workers bounds how many of an RFB's queries this node prices
	// concurrently (0 = runtime.GOMAXPROCS(0), 1 = strictly serial). The
	// bound is node-wide — concurrent RFBs share it — and subcontract
	// probing joins the same pool rather than spawning its own.
	Workers int
	// MaxInflightRFBs bounds how many buyer-originated (Depth-0) RFBs the
	// node admits concurrently; arrivals beyond the bound queue until a slot
	// frees, so overload degrades into waiting rather than an unbounded
	// pile-up of pricing work. 0 = 2×Workers; negative = unbounded (the
	// pre-gate behaviour). Depth>0 subcontract probes bypass the gate —
	// gating them could deadlock two mutually subcontracting nodes that each
	// hold their last admission slot while waiting on the other.
	MaxInflightRFBs int
	// PriceCacheSize caps the node's price cache: memoized rewrite + DP
	// pricing results keyed by canonical query text and the store's
	// data/stats/cost-model versions, so repeated negotiation iterations
	// re-price only through the strategy module. 0 = 256 entries, negative
	// disables the cache.
	PriceCacheSize int
	// LoadAwarePricing folds the node's live load — executions in flight
	// plus admitted and queued Depth-0 RFBs, normalized by Workers — into
	// every asked price (and a large surcharge while draining), so
	// overloaded or departing sellers price themselves out of new work
	// instead of winning bids they will serve slowly. This is the
	// QT-native answer to load balancing: back-pressure through the market
	// rather than a scheduler.
	LoadAwarePricing bool
	// Tracer and Metrics attach observability at construction time; both may
	// stay nil (the default) for zero-overhead operation, and either can be
	// swapped later with Node.SetObs.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
}

type standingOffer struct {
	offer trading.Offer
	truth float64
}

// Node is one autonomous federation member. It implements netsim.Service.
type Node struct {
	cfg      Config
	store    *storage.Store
	pool     chan struct{}     // pricing-worker semaphore, cap = cfg.Workers
	admit    chan struct{}     // Depth-0 RFB admission gate, cap = cfg.MaxInflightRFBs (nil = unbounded)
	queued   atomic.Int64      // Depth-0 RFBs waiting on the admission gate
	inflight atomic.Int64      // Depth-0 RFBs holding an admission slot
	prices   *pricecache.Cache // nil when caching is disabled
	costHash uint64            // fingerprint of cfg.Cost for cache keys

	mu           sync.Mutex
	standing     map[string]map[string]*standingOffer // rfbID -> offerID
	rfbOrder     []string                             // standing eviction order
	subcontracts map[string]*subcontract              // offerID -> assembly
	flights      map[string]map[string]*flight        // rfbID -> query key
	active       atomic.Int64                         // executions in flight, for load-aware pricing
	state        atomic.Int32                         // lifecycle position (trading.NodeState), see lifecycle.go
	obsv         atomic.Pointer[nodeObs]
	traceLog     atomic.Pointer[obs.TraceLog]
	ledg         atomic.Pointer[ledger.Ledger]

	curMu    sync.Mutex               // guards the streamed-execution registry, see stream.go
	cursors  map[string]*serverCursor // cursor id -> open streamed execution
	curOrder []string                 // cursor eviction order (oldest first)
	curSeq   atomic.Int64             // cursor id allocator
}

// SetTraceLog attaches a trace log that retains the most recent sampled
// subtree this node shipped, for live exposition at /trace/last. Nil detaches.
func (n *Node) SetTraceLog(l *obs.TraceLog) { n.traceLog.Store(l) }

// SetLedger attaches a trading ledger recording this node's seller-side
// events: per-query pricing (with price-cache provenance) and measured
// execution of purchased answers. Nil detaches; detached costs one atomic
// load per pricing or execution.
func (n *Node) SetLedger(l *ledger.Ledger) { n.ledg.Store(l) }

// flight is one single-flight pricing of a (RFB, query) pair: the first
// caller computes offers, every concurrent or later caller for the same pair
// waits on done and shares them.
type flight struct {
	done   chan struct{}
	offers []trading.Offer
}

// maxStandingRFBs bounds the per-node negotiation state: a long-lived seller
// forgets its oldest RFBs' standing offers (buyers that stall that long have
// abandoned the negotiation anyway).
const maxStandingRFBs = 128

// New creates a node with an empty store.
func New(cfg Config) *Node {
	if cfg.Cost == nil {
		cfg.Cost = cost.Default()
	}
	if (cfg.Weights == cost.Weights{}) {
		cfg.Weights = cost.DefaultWeights()
	}
	if cfg.Strategy == nil {
		cfg.Strategy = trading.Cooperative{}
	}
	if cfg.MaxOffersPerQuery <= 0 {
		cfg.MaxOffersPerQuery = 24
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxInflightRFBs == 0 {
		cfg.MaxInflightRFBs = 2 * cfg.Workers
	}
	if cfg.PriceCacheSize == 0 {
		cfg.PriceCacheSize = 256
	}
	n := &Node{
		cfg:          cfg,
		store:        storage.NewStore(),
		pool:         make(chan struct{}, cfg.Workers),
		costHash:     pricecache.HashModel(cfg.Cost),
		standing:     map[string]map[string]*standingOffer{},
		subcontracts: map[string]*subcontract{},
		flights:      map[string]map[string]*flight{},
	}
	if cfg.MaxInflightRFBs > 0 {
		n.admit = make(chan struct{}, cfg.MaxInflightRFBs)
	}
	if cfg.PriceCacheSize > 0 {
		n.prices = pricecache.New(cfg.PriceCacheSize)
	}
	if cfg.LoadAwarePricing {
		n.cfg.Strategy = &trading.LoadAware{Inner: n.cfg.Strategy, Load: n.loadFactor}
	}
	n.SetObs(cfg.Tracer, cfg.Metrics)
	return n
}

// acquire claims a pricing-pool slot, blocking until one frees up. Slot
// holders never block on the pool again (nested joiners use tryAcquire), so
// acquisition cannot deadlock.
func (n *Node) acquire() { n.pool <- struct{}{} }

// tryAcquire claims a slot only if one is free: nested work (subcontract
// probing under a held slot) either wins extra parallelism or runs inline on
// its parent's slot.
func (n *Node) tryAcquire() bool {
	select {
	case n.pool <- struct{}{}:
		return true
	default:
		return false
	}
}

func (n *Node) release() { <-n.pool }

// admitRFB claims an admission slot for a buyer-originated (Depth-0) RFB,
// blocking — with the wait visible in the queue-depth gauge — when the node
// already serves MaxInflightRFBs of them. The returned func releases the
// slot. Only Depth-0 RFBs pass through here; subcontract probes bypass the
// gate entirely (see Config.MaxInflightRFBs).
func (n *Node) admitRFB(ob *nodeObs) func() {
	select {
	case n.admit <- struct{}{}:
	default:
		d := n.queued.Add(1)
		if ob != nil {
			ob.rfbsQueued.Inc()
			ob.rfbQueueDepth.Set(float64(d))
		}
		n.admit <- struct{}{}
		d = n.queued.Add(-1)
		if ob != nil {
			ob.rfbQueueDepth.Set(float64(d))
		}
	}
	g := n.inflight.Add(1)
	if ob != nil {
		ob.rfbsInflight.Set(float64(g))
	}
	return func() {
		v := n.inflight.Add(-1)
		if ob != nil {
			ob.rfbsInflight.Set(float64(v))
		}
		<-n.admit
	}
}

// ID returns the node id.
func (n *Node) ID() string { return n.cfg.ID }

// Store exposes local storage for loading data.
func (n *Node) Store() *storage.Store { return n.store }

// Schema returns the public logical schema.
func (n *Node) Schema() *catalog.Schema { return n.cfg.Schema }

// CostModel returns the node's cost constants.
func (n *Node) CostModel() *cost.Model { return n.cfg.Cost }

// Weights returns the federation valuation weights this node prices under.
func (n *Node) Weights() cost.Weights { return n.cfg.Weights }

// Load reports the node's current load factor (executions in flight).
func (n *Node) Load() float64 { return float64(n.active.Load()) }

// RequestBids implements the seller side of an RFB (steps S1–S2): rewrite
// each requested query against local fragments, run the modified DP to price
// every optimal partial result, add view-based offers, and price everything
// through the strategy module.
//
// The per-query pricing fans out across the node's worker pool; offer order
// and offer ids are deterministic regardless of scheduling, so any worker
// count produces byte-identical output. The call is also idempotent: each
// (RFBID, query) is priced at most once while the RFB's state is alive, so a
// fault-layer retry racing an abandoned slow first attempt coalesces with it
// and a repeated RFBID returns the same offers.
// When the RFB carries a sampled trace context, the node records its work
// into a detached span tree and ships the finished subtree back in the
// reply: the buyer grafts it under its own RequestBids span, and in-process
// federations (where buyer and seller share one tracer) still see each
// subtree exactly once, because the sampled path bypasses the node's
// attached tracer.
func (n *Node) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	// Lifecycle gate, checked before the admission gate so a draining node
	// rejects immediately instead of queueing work it will not do: Draining
	// refuses new buyer-originated (Depth-0) negotiations, Left refuses
	// everything. Both surface the typed ErrDraining that buyers skip
	// without retry burn.
	if err := n.gateRFB(rfb.Depth); err != nil {
		return trading.BidReply{}, err
	}
	ob := n.obsv.Load()
	if n.admit != nil && rfb.Depth == 0 {
		release := n.admitRFB(ob)
		defer release()
	}
	var sp *obs.Span
	var remote *obs.Tracer
	if rfb.Trace.Sampled {
		remote = obs.NewTracer()
		sp = remote.Start(n.cfg.ID, "request-bids")
	} else if ob != nil {
		sp = ob.tracer.Start(n.cfg.ID, "request-bids")
	}
	if ob != nil {
		ob.rfbs.Inc()
	}
	if sp != nil {
		sp.Set("rfb", rfb.RFBID)
		sp.Set("queries", len(rfb.Queries))
	}
	results := make([][]trading.Offer, len(rfb.Queries))
	if n.cfg.Workers == 1 || len(rfb.Queries) <= 1 {
		for i, qr := range rfb.Queries {
			n.acquire()
			results[i] = n.offersForShared(rfb, qr, sp, ob)
			n.release()
		}
	} else {
		var wg sync.WaitGroup
		for i, qr := range rfb.Queries {
			wg.Add(1)
			go func(i int, qr trading.QueryRequest) {
				defer wg.Done()
				n.acquire()
				defer n.release()
				results[i] = n.offersForShared(rfb, qr, sp, ob)
			}(i, qr)
		}
		wg.Wait()
	}
	var out []trading.Offer
	for _, offers := range results {
		if ob != nil && len(offers) == 0 {
			ob.rewritesEmpty.Inc()
		}
		out = append(out, offers...)
	}
	sp.Set("offers", len(out))
	sp.End()
	reply := trading.BidReply{Offers: out}
	if remote != nil {
		payload := sp.Payload()
		reply.Trace = payload
		n.traceLog.Load().Record(payload)
	}
	n.mu.Lock()
	m := n.standing[rfb.RFBID]
	if m == nil {
		m = map[string]*standingOffer{}
		n.standing[rfb.RFBID] = m
		n.rfbOrder = append(n.rfbOrder, rfb.RFBID)
		for len(n.rfbOrder) > maxStandingRFBs {
			evicted := n.rfbOrder[0]
			n.rfbOrder = n.rfbOrder[1:]
			for _, so := range n.standing[evicted] {
				delete(n.subcontracts, so.offer.OfferID)
			}
			delete(n.standing, evicted)
			delete(n.flights, evicted)
		}
	}
	for i := range out {
		m[out[i].OfferID] = &standingOffer{offer: out[i], truth: trading.TruthScore(n.cfg.Weights, out[i].Props)}
	}
	n.mu.Unlock()
	return reply, nil
}

// offersForShared single-flights offersFor per (RFBID, query): the first
// caller prices, concurrent duplicates wait on the flight and share its
// offers, and completed flights are kept until the RFB's state is dropped
// (EndNegotiation or standing eviction) so a retried RFBID stays
// byte-identical without re-pricing.
func (n *Node) offersForShared(rfb trading.RFB, qr trading.QueryRequest, sp *obs.Span, ob *nodeObs) []trading.Offer {
	qkey := qr.QID + "\x00" + qr.SQL
	n.mu.Lock()
	m := n.flights[rfb.RFBID]
	if m == nil {
		m = map[string]*flight{}
		n.flights[rfb.RFBID] = m
	}
	if f := m[qkey]; f != nil {
		n.mu.Unlock()
		<-f.done
		if ob != nil {
			ob.pricingsCoalesced.Inc()
		}
		return f.offers
	}
	f := &flight{done: make(chan struct{})}
	m[qkey] = f
	n.mu.Unlock()
	f.offers = n.offersFor(rfb, qr, sp, ob)
	close(f.done)
	return f.offers
}

// offerIDGen mints deterministic offer ids scoped to one (node, RFB, query):
// "<node>/<rfbID>/<qid>/<kind><seq>". Ids depend only on the query's own
// pricing walk — never on cross-query scheduling — so parallel pricing emits
// offers byte-identical to the serial path, and a coalesced retry sees
// exactly the ids the first attempt minted.
type offerIDGen struct {
	prefix string
	n      int
}

func (g *offerIDGen) next(kind string) string {
	g.n++
	return fmt.Sprintf("%s/%s%d", g.prefix, kind, g.n)
}

// offersFor prices one requested query, recording the pricing into the
// attached trading ledger (offers produced, price-cache provenance, wall
// time). sp is the node's request-bids span and ob its loaded observer;
// both are nil when observability is off.
func (n *Node) offersFor(rfb trading.RFB, qr trading.QueryRequest, sp *obs.Span, ob *nodeObs) []trading.Offer {
	ldg := n.ledg.Load()
	if ldg == nil {
		offers, _ := n.priceQuery(rfb, qr, sp, ob, nil)
		return offers
	}
	t0 := time.Now()
	offers, cached := n.priceQuery(rfb, qr, sp, ob, ldg)
	ldg.Priced(rfb.RFBID, rfb.BuyerID, n.cfg.ID, qr.QID, len(offers), cached, msSince(t0))
	return offers
}

// priceQuery is the body of offersFor; the second return reports whether
// the rewrite+DP valuation came from the price cache.
func (n *Node) priceQuery(rfb trading.RFB, qr trading.QueryRequest, sp *obs.Span, ob *nodeObs, ldg *ledger.Ledger) ([]trading.Offer, bool) {
	sel, err := sqlparse.ParseSelect(qr.SQL)
	if err != nil {
		return nil, false
	}
	plan.Qualify(sel, n.cfg.Schema)
	ids := &offerIDGen{prefix: n.cfg.ID + "/" + rfb.RFBID + "/" + qr.QID}

	// The rewrite + modified-DP walk is the expensive part of pricing; look
	// it up in the price cache first. The key carries the store's data epoch,
	// stats version and the cost-model hash, so any mutation since the entry
	// was computed makes it unreachable — a hit is never stale. Strategy
	// pricing below always runs fresh: margins adapt between rounds.
	var (
		rw  *rewrite.Rewritten
		res *localopt.Result
		key pricecache.Key
	)
	cached := false
	if n.prices != nil {
		key = pricecache.Key{
			SQL:          sel.SQL(),
			Epoch:        n.store.Epoch(),
			StatsVersion: n.store.StatsVersion(),
			CostHash:     n.costHash,
		}
		if e, ok := n.prices.Get(key); ok {
			rw, res, cached = e.Rewritten, e.Result, true
			if ob != nil {
				ob.cacheHits.Inc()
			}
		} else if ob != nil {
			ob.cacheMisses.Inc()
		}
	}
	if cached {
		dpSp := sp.Child("dp-pricing")
		dpSp.Set("cache", "hit")
		dpSp.Set("partials", len(res.Partials))
		dpSp.End()
	} else {
		var t0 time.Time
		if ob != nil || ldg != nil {
			t0 = time.Now()
		}
		rwSp := sp.Child("rewrite")
		rw, err = rewrite.ForSeller(sel, n.cfg.Schema, n.store)
		if err != nil {
			rwSp.Set("error", err)
		}
		rwSp.End()
		if ob != nil {
			ob.rewriteMS.Observe(msSince(t0))
		}
		if ldg != nil {
			ldg.ObservePhase(ledger.PhaseRewrite, msSince(t0))
		}
		if err != nil {
			return nil, false
		}
		if ob != nil {
			t0 = time.Now()
		}
		dpSp := sp.Child("dp-pricing")
		if n.prices != nil {
			dpSp.Set("cache", "miss")
		}
		res, err = localopt.Optimize(rw.Sel, n.cfg.Schema, n.store, n.cfg.Cost)
		if err != nil {
			dpSp.Set("error", err)
		} else {
			dpSp.Set("partials", len(res.Partials))
		}
		dpSp.End()
		if ob != nil {
			ob.dpMS.Observe(msSince(t0))
		}
		if err != nil {
			return nil, false
		}
		if n.prices != nil {
			if ev := n.prices.Put(key, pricecache.Entry{Rewritten: rw, Result: res}); ev > 0 && ob != nil {
				ob.cacheEvictions.Add(int64(ev))
			}
		}
	}
	origHasAgg := sel.HasAggregates() || len(sel.GroupBy) > 0
	fullBindings := len(sel.From)
	var cands []trading.Offer
	for _, p := range res.Partials {
		o, err := n.offerFromPartial(rfb, qr, rw, p, origHasAgg, fullBindings, ids)
		if err != nil {
			continue
		}
		cands = append(cands, o)
	}
	if ob != nil {
		ob.offersPriced.Add(int64(len(cands)))
	}
	if !n.cfg.DisableViews {
		vo := n.viewOffers(rfb, qr, sel, ids)
		if ob != nil {
			ob.offersView.Add(int64(len(vo)))
		}
		cands = append(cands, vo...)
	}
	if n.cfg.SubcontractPeers != nil && rfb.Depth == 0 {
		scSp := sp.Child("subcontract")
		so := n.subcontractOffers(rfb, qr, sel, rw, res.Partials, scSp, ids)
		scSp.End()
		if ob != nil {
			ob.offersSubcontract.Add(int64(len(so)))
		}
		cands = append(cands, so...)
	}
	if origHasAgg && rw.Stripped && len(rw.Dropped) == 0 && !n.cfg.DisableAggPush {
		if o, ok := n.partialAggOffer(rfb, qr, sel, rw, res, ids); ok {
			if ob != nil {
				ob.offersPartialAgg.Inc()
			}
			cands = append(cands, o)
		}
	}
	// Cap by truthful value, cheapest first, keeping the widest coverage
	// offers regardless (they are what the buyer most needs).
	sort.SliceStable(cands, func(i, j int) bool {
		if len(cands[i].Bindings) != len(cands[j].Bindings) {
			return len(cands[i].Bindings) > len(cands[j].Bindings)
		}
		return cands[i].Props.TotalTime < cands[j].Props.TotalTime
	})
	if len(cands) > n.cfg.MaxOffersPerQuery {
		cands = cands[:n.cfg.MaxOffersPerQuery]
	}
	return cands, cached
}

func (n *Node) offerFromPartial(rfb trading.RFB, qr trading.QueryRequest, rw *rewrite.Rewritten, p *localopt.Partial, origHasAgg bool, fullBindings int, ids *offerIDGen) (trading.Offer, error) {
	cols, err := OutputSpecs(p.SQL, n.cfg.Schema, n.store)
	if err != nil {
		return trading.Offer{}, err
	}
	parts := map[string][]string{}
	coverage := 0.0
	for _, b := range p.Bindings {
		lb := strings.ToLower(b)
		parts[lb] = rw.Parts[lb]
		tr := p.SQL.FindFrom(b)
		if tr != nil {
			total := len(n.cfg.Schema.PartitionIDs(tr.Name))
			if total > 0 {
				coverage += float64(len(parts[lb])) / float64(total)
			}
		}
	}
	if len(p.Bindings) > 0 {
		coverage /= float64(len(p.Bindings))
	}
	offerHasAgg := p.SQL.HasAggregates() || len(p.SQL.GroupBy) > 0
	props := n.valuation(p.Cost, p.Rows, p.Bytes, coverage)
	truth := trading.TruthScore(n.cfg.Weights, props)
	o := trading.Offer{
		OfferID:  ids.next("o"),
		RFBID:    rfb.RFBID,
		QID:      qr.QID,
		SellerID: n.cfg.ID,
		SQL:      p.SQL.SQL(),
		Bindings: p.Bindings,
		Parts:    parts,
		Complete: rw.Complete && len(p.Bindings) == fullBindings,
		Stripped: origHasAgg && !offerHasAgg,
		Cols:     cols,
		Props:    props,
		Price:    n.cfg.Strategy.Price(qr.QID, truth),
	}
	return o, nil
}

// partialAggOffer offers per-fragment partial aggregates for a stripped
// aggregation query whose aggregates decompose (aggregate pushdown): the
// buyer merges group totals from disjoint fragments instead of
// re-aggregating raw rows, cutting the shipped volume to one row per group.
func (n *Node) partialAggOffer(rfb trading.RFB, qr trading.QueryRequest, sel *sqlparse.Select, rw *rewrite.Rewritten, res *localopt.Result, ids *offerIDGen) (trading.Offer, bool) {
	d, ok := plan.DecomposeAggregates(sel)
	if !ok || res.Best == nil {
		return trading.Offer{}, false
	}
	psel := &sqlparse.Select{Limit: -1, From: sel.From, Items: d.PartialItems()}
	if rw.Sel.Where != nil {
		psel.Where = expr.Clone(rw.Sel.Where)
	}
	for _, g := range sel.GroupBy {
		psel.GroupBy = append(psel.GroupBy, expr.Clone(g))
	}
	cols, err := OutputSpecs(psel, n.cfg.Schema, n.store)
	if err != nil {
		return trading.Offer{}, false
	}
	full := res.Best
	groups := full.Rows/2 + 1
	if len(sel.GroupBy) == 0 {
		groups = 1
	}
	execCost := full.Cost + n.cfg.Cost.Aggregate(full.Rows, groups)
	bytes := float64(groups) * float64(8*len(cols))
	coverage := 0.0
	for b, parts := range rw.Parts {
		tr := sel.FindFrom(b)
		if tr == nil {
			continue
		}
		if total := len(n.cfg.Schema.PartitionIDs(tr.Name)); total > 0 {
			coverage += float64(len(parts)) / float64(total)
		}
	}
	if len(rw.Parts) > 0 {
		coverage /= float64(len(rw.Parts))
	}
	props := n.valuation(execCost, groups, bytes, coverage)
	truth := trading.TruthScore(n.cfg.Weights, props)
	var bindings []string
	for _, tr := range sel.From {
		bindings = append(bindings, tr.Binding())
	}
	return trading.Offer{
		OfferID:    ids.next("a"),
		RFBID:      rfb.RFBID,
		QID:        qr.QID,
		SellerID:   n.cfg.ID,
		SQL:        psel.SQL(),
		Bindings:   bindings,
		Parts:      rw.Parts,
		Complete:   rw.Complete,
		PartialAgg: true,
		Cols:       cols,
		Props:      props,
		Price:      n.cfg.Strategy.Price(qr.QID, truth),
	}, true
}

// viewOffers is the seller predicates analyser (§3.5): offer matching
// materialized views at the (small) cost of scanning and shipping them.
func (n *Node) viewOffers(rfb trading.RFB, qr trading.QueryRequest, sel *sqlparse.Select, ids *offerIDGen) []trading.Offer {
	var out []trading.Offer
	for _, m := range views.BestMatches(sel, n.store) {
		v := n.store.View(m.View.Name)
		if v == nil || v.Stats == nil {
			continue
		}
		cols, err := OutputSpecs(m.Comp, n.cfg.Schema, n.store)
		if err != nil {
			continue
		}
		rows := v.Stats.Rows
		bytes := float64(rows) * math.Max(v.Stats.RowBytes, 8)
		execCost := n.cfg.Cost.Scan(rows)
		if m.ReAggregated {
			execCost += n.cfg.Cost.Aggregate(rows, rows/2+1)
		}
		props := n.valuation(execCost, rows, bytes, 1)
		truth := trading.TruthScore(n.cfg.Weights, props)
		var bindings []string
		for _, tr := range sel.From {
			bindings = append(bindings, tr.Binding())
		}
		parts := map[string][]string{}
		for _, tr := range sel.From {
			parts[strings.ToLower(tr.Binding())] = n.cfg.Schema.PartitionIDs(tr.Name)
		}
		out = append(out, trading.Offer{
			OfferID:  ids.next("v"),
			RFBID:    rfb.RFBID,
			QID:      qr.QID,
			SellerID: n.cfg.ID,
			SQL:      m.Comp.SQL(),
			Bindings: bindings,
			Parts:    parts,
			Complete: true,
			FromView: true,
			Cols:     cols,
			Props:    props,
			Price:    n.cfg.Strategy.Price(qr.QID, truth),
		})
	}
	return out
}

// valuation assembles the multidimensional offer properties the paper lists
// in §3.1.
func (n *Node) valuation(execCost float64, rows int64, bytes float64, coverage float64) cost.Valuation {
	transfer := n.cfg.Cost.Transfer(bytes)
	total := execCost + transfer
	v := cost.Valuation{
		TotalTime:    total,
		FirstRow:     n.cfg.Cost.StartupCost + n.cfg.Cost.NetLatency,
		Rows:         rows,
		Bytes:        bytes,
		Freshness:    1,
		Completeness: coverage,
	}
	if total > 0 {
		v.RowsPerSec = float64(rows) / (total / 1000)
	}
	return v
}

// ImproveBids implements the seller side of iterative bidding and bargaining
// (step S3): the strategy may undercut the best competing price or meet a
// bargaining target. A sampled request ships a small improve-bids span back
// so every protocol round is visible in the buyer's trace.
func (n *Node) ImproveBids(req trading.ImproveReq) (trading.BidReply, error) {
	switch n.State() {
	case trading.StateLeft:
		return trading.BidReply{}, n.drainErr("improve-bids")
	case trading.StateDraining:
		// A draining seller stops competing: its standing offers stay
		// honored at their current prices, but it submits no improvements
		// (winning more work would delay the drain).
		return trading.BidReply{}, nil
	}
	var sp *obs.Span
	if req.Trace.Sampled {
		sp = obs.NewTracer().Start(n.cfg.ID, "improve-bids")
		sp.Set("rfb", req.RFBID)
	}
	out := n.improveOffers(req)
	reply := trading.BidReply{Offers: out}
	if sp != nil {
		sp.Set("offers", len(out))
		sp.End()
		reply.Trace = sp.Payload()
	}
	return reply, nil
}

func (n *Node) improveOffers(req trading.ImproveReq) []trading.Offer {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.standing[req.RFBID]
	if m == nil {
		return nil
	}
	var out []trading.Offer
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		so := m[id]
		competing, ok := req.BestPrice[so.offer.QID]
		if !ok {
			continue
		}
		if t, hasTarget := req.Target[so.offer.QID]; hasTarget && t < competing {
			competing = t
		}
		newPrice, changed := n.cfg.Strategy.Improve(so.offer.QID, so.offer.Price, so.truth, competing)
		if !changed || newPrice >= so.offer.Price {
			continue
		}
		so.offer.Price = newPrice
		out = append(out, so.offer)
	}
	return out
}

// Award records a win (and implies losses for the node's competing offers on
// the same query), feeding strategy adaptation.
func (n *Node) Award(aw trading.Award) error {
	if n.State() == trading.StateLeft {
		return n.drainErr("award")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.standing[aw.RFBID]
	if m == nil {
		return nil
	}
	winner, ok := m[aw.OfferID]
	if !ok {
		return fmt.Errorf("node %s: unknown offer %q", n.cfg.ID, aw.OfferID)
	}
	if ob := n.obsv.Load(); ob != nil {
		ob.offersWon.Inc()
	}
	n.cfg.Strategy.Observe(winner.offer.QID, true)
	for id, so := range m {
		if id != aw.OfferID && so.offer.QID == winner.offer.QID {
			n.cfg.Strategy.Observe(so.offer.QID, false)
		}
	}
	return nil
}

// EndNegotiation drops the standing-offer state of an RFB, notifying the
// strategy of losses for offers that were never awarded.
func (n *Node) EndNegotiation(rfbID string, wonOfferIDs map[string]bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.standing[rfbID]
	for id, so := range m {
		if !wonOfferIDs[id] {
			n.cfg.Strategy.Observe(so.offer.QID, false)
		}
	}
	delete(n.standing, rfbID)
	delete(n.flights, rfbID)
}

// Execute evaluates a purchased query and ships the answer. The SQL is
// either a (rewritten) query over local fragments or a compensation query
// over a local materialized view. A sampled request ships the node's
// execution span subtree (including subcontract fetch spans) back on the
// response. A streaming request (req.Stream) ships the first batch plus a
// continuation cursor; continuation and close requests (req.Cursor) are
// routed to the streamed-execution registry in stream.go.
func (n *Node) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	// Draining nodes still deliver: every purchased answer is in-flight work
	// the drain must finish. Only a node that has Left refuses, and the
	// rejection is transient so recovery substitutes an equivalent offer.
	if n.State() == trading.StateLeft {
		return trading.ExecResp{}, n.drainErr("execute")
	}
	if req.Cursor != "" {
		return n.continueStream(req)
	}
	n.active.Add(1)
	defer n.active.Add(-1)
	ob := n.obsv.Load()
	var sp *obs.Span
	var remote *obs.Tracer
	if req.Trace.Sampled {
		remote = obs.NewTracer()
		sp = remote.Start(n.cfg.ID, "execute")
	} else if ob != nil {
		sp = ob.tracer.Start(n.cfg.ID, "execute")
	}
	sp.Set("sql", req.SQL)
	if ob != nil {
		ob.execs.Inc()
	}
	// Always measure the execution wall time: ExecMS on the response is the
	// seller's actual cost behind the quote it bid with, and buyers compare
	// it against the offer's estimated TotalTime in their trading ledger.
	t0 := time.Now()
	var resp trading.ExecResp
	var sc *serverCursor
	var err error
	if req.Stream {
		resp, sc, err = n.executeStreamOpen(req, sp)
	} else {
		resp, err = n.executeInner(req, sp)
	}
	wall := msSince(t0)
	if ob != nil {
		ob.execMS.Observe(wall)
	}
	if err == nil {
		resp.ExecMS = wall
		// Annotate the execute span with the seller-side actuals next to the
		// quote the buyer purchased against, so a grafted subtree lands in
		// the buyer's flight dossier carrying est-vs-actual without another
		// round-trip. (The standing offer may be gone — evicted or another
		// RFB's — in which case only the actuals ship.)
		if sp != nil {
			sp.Set("rows", len(resp.Rows))
			sp.Set("exec_ms", wall)
			if req.OfferID != "" {
				n.mu.Lock()
				so := n.standing[rfbOfOffer(req.OfferID)][req.OfferID]
				n.mu.Unlock()
				if so != nil {
					sp.Set("est_rows", so.offer.Props.Rows)
					sp.Set("quoted_ms", so.offer.Props.TotalTime)
				}
			}
		}
		// Purchased answers (OfferID set) land in the seller's own ledger;
		// recursive union-branch executions carry no offer id and stay
		// quiet. A streamed answer with batches still pending records its
		// Served event on completion instead (see stream.go), with totals
		// accumulated across every batch.
		if sc == nil {
			if ldg := n.ledg.Load(); ldg != nil && req.OfferID != "" {
				ldg.Served(rfbOfOffer(req.OfferID), n.cfg.ID, req.OfferID, req.SQL,
					wall, int64(len(resp.Rows)), int64(resp.WireSize()))
			}
		}
	}
	if err != nil {
		sp.Set("error", err)
	}
	sp.End()
	if remote != nil && err == nil {
		payload := sp.Payload()
		resp.Trace = payload
		n.traceLog.Load().Record(payload)
	}
	if sc != nil && err == nil {
		// Register only after the response is final: the buyer cannot send a
		// continuation before seeing this response, so nothing races the
		// registration, and the cursor seeds its cumulative totals from the
		// open batch.
		sc.wall = wall
		sc.rows = int64(len(resp.Rows))
		sc.bytes = int64(resp.WireSize())
		sc.last = resp
		n.registerCursor(sc)
	}
	return resp, err
}

// rfbOfOffer extracts the RFBID embedded in a node-minted offer id
// ("<node>/<rfbID>/<qid>/<kind><seq>"), so the seller's served event joins
// the same ledger record as its pricing. Empty for any other id shape.
func rfbOfOffer(offerID string) string {
	parts := strings.Split(offerID, "/")
	if len(parts) == 4 {
		return parts[1]
	}
	return ""
}

// executeInner is the body of Execute, with sp the node's execute span (nil
// when tracing is off).
func (n *Node) executeInner(req trading.ExecReq, sp *obs.Span) (trading.ExecResp, error) {
	if req.OfferID != "" {
		n.mu.Lock()
		sc := n.subcontracts[req.OfferID]
		n.mu.Unlock()
		if sc != nil {
			return n.executeSubcontract(sc, sp, req.Trace)
		}
	}
	stmt, err := sqlparse.Parse(req.SQL)
	if err != nil {
		return trading.ExecResp{}, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	if u, ok := stmt.(*sqlparse.Union); ok {
		return n.executeUnion(u)
	}
	sel := stmt.(*sqlparse.Select)
	plan.Qualify(sel, n.cfg.Schema)
	var root plan.Node
	if len(sel.From) == 1 && n.store.View(sel.From[0].Name) != nil {
		root, err = n.viewPlan(sel)
	} else {
		var res *localopt.Result
		res, err = localopt.Optimize(sel, n.cfg.Schema, n.store, n.cfg.Cost)
		if err == nil {
			root = res.Best.Plan
		}
	}
	if err != nil {
		return trading.ExecResp{}, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	ex := &exec.Executor{Store: n.store}
	result, err := ex.Run(root)
	if err != nil {
		return trading.ExecResp{}, fmt.Errorf("node %s: %w", n.cfg.ID, err)
	}
	specs, err := OutputSpecs(sel, n.cfg.Schema, n.store)
	if err != nil {
		// Fall back to the executed schema with unknown kinds.
		specs = make([]trading.ColSpec, len(result.Cols))
		for i, c := range result.Cols {
			specs[i] = trading.ColSpec{Table: c.Table, Name: c.Name}
		}
	}
	return trading.ExecResp{Cols: specs, Rows: result.Rows}, nil
}

// executeUnion evaluates a UNION [ALL] chain by running each branch and
// concatenating (deduplicating for plain UNION).
func (n *Node) executeUnion(u *sqlparse.Union) (trading.ExecResp, error) {
	var out trading.ExecResp
	seen := map[string]bool{}
	for i, sel := range u.Inputs {
		resp, err := n.Execute(trading.ExecReq{SQL: sel.SQL()})
		if err != nil {
			return trading.ExecResp{}, err
		}
		if i == 0 {
			out.Cols = resp.Cols
		} else if len(resp.Cols) != len(out.Cols) {
			return trading.ExecResp{}, fmt.Errorf("node %s: union branches have different widths (%d vs %d)",
				n.cfg.ID, len(resp.Cols), len(out.Cols))
		}
		for _, r := range resp.Rows {
			if !u.All {
				idx := make([]int, len(r))
				for k := range idx {
					idx[k] = k
				}
				key := value.Key(r, idx)
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// viewPlan builds the execution plan of a compensation query over a local
// materialized view.
func (n *Node) viewPlan(sel *sqlparse.Select) (plan.Node, error) {
	v := n.store.View(sel.From[0].Name)
	binding := sel.From[0].Binding()
	cols := make([]expr.ColumnID, len(v.Columns))
	for i, c := range v.Columns {
		cols[i] = expr.ColumnID{Table: binding, Name: c.Name}
	}
	var root plan.Node = &plan.ViewScan{Name: v.Name, Cols: cols}
	if sel.Where != nil {
		root = &plan.Filter{Input: root, Pred: expr.Clone(sel.Where)}
	}
	return plan.FinalizeSelect(sel, root)
}

// OutputSpecs computes the output schema (names and kinds) of a SELECT over
// base tables or local views. Buyers use the specs shipped in offers to
// build Remote plan nodes; sellers use them to label shipped answers.
func OutputSpecs(sel *sqlparse.Select, sch *catalog.Schema, store *storage.Store) ([]trading.ColSpec, error) {
	kindOf := buildKindResolver(sel, sch, store)
	var out []trading.ColSpec
	for i, it := range sel.Items {
		if it.Star {
			for _, tr := range sel.From {
				if def, ok := sch.Table(tr.Name); ok {
					for _, cd := range def.Columns {
						out = append(out, trading.ColSpec{Table: tr.Binding(), Name: cd.Name, Kind: cd.Kind})
					}
					continue
				}
				if store != nil {
					if v := store.View(tr.Name); v != nil {
						for _, cd := range v.Columns {
							out = append(out, trading.ColSpec{Table: tr.Binding(), Name: cd.Name, Kind: cd.Kind})
						}
					}
				}
			}
			continue
		}
		spec := trading.ColSpec{Kind: kindOf(it.Expr)}
		if it.Alias != "" {
			spec.Name = it.Alias
		} else if c, ok := it.Expr.(*expr.Column); ok {
			spec.Table = c.Table
			spec.Name = c.Name
		} else {
			spec.Name = fmt.Sprintf("_col%d", i)
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("node: query %q has no output columns", sel.SQL())
	}
	return out, nil
}

// buildKindResolver returns a function inferring the value kind of an
// expression under the query's FROM bindings.
func buildKindResolver(sel *sqlparse.Select, sch *catalog.Schema, store *storage.Store) func(expr.Expr) value.Kind {
	colKind := func(c *expr.Column) value.Kind {
		for _, tr := range sel.From {
			if c.Table != "" && !strings.EqualFold(c.Table, tr.Binding()) {
				continue
			}
			if def, ok := sch.Table(tr.Name); ok {
				if idx := def.ColumnIndex(c.Name); idx >= 0 {
					return def.Columns[idx].Kind
				}
			}
			if store != nil {
				if v := store.View(tr.Name); v != nil {
					for _, cd := range v.Columns {
						if strings.EqualFold(cd.Name, c.Name) {
							return cd.Kind
						}
					}
				}
			}
		}
		return value.Null
	}
	var kindOf func(e expr.Expr) value.Kind
	kindOf = func(e expr.Expr) value.Kind {
		switch t := e.(type) {
		case *expr.Column:
			return colKind(t)
		case *expr.Lit:
			return t.V.K
		case *expr.Agg:
			switch t.Fn {
			case "COUNT":
				return value.Int
			case "AVG":
				return value.Float
			default:
				if t.Arg != nil {
					return kindOf(t.Arg)
				}
				return value.Float
			}
		case *expr.Binary:
			switch t.Op {
			case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
				return value.Bool
			}
			lk, rk := kindOf(t.L), kindOf(t.R)
			if lk == value.Float || rk == value.Float || t.Op == "/" {
				return value.Float
			}
			return lk
		case *expr.Unary:
			if t.Op == "NOT" {
				return value.Bool
			}
			return kindOf(t.X)
		case *expr.In, *expr.Between, *expr.IsNull:
			return value.Bool
		}
		return value.Null
	}
	return kindOf
}
