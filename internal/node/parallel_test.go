package node

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// telcoNodeCfg builds a myconos-style node with a configurable Config and a
// larger data set, so pricing is nontrivial for the parallel/cache tests.
func telcoNodeCfg(t *testing.T, edit func(*Config)) *Node {
	t.Helper()
	sch := telcoSchema()
	cfg := Config{ID: "myconos", Schema: sch}
	if edit != nil {
		edit(&cfg)
	}
	n := New(cfg)
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	if _, err := n.Store().CreateFragment(cust, "myconos"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Store().CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := n.Store().Insert("customer", "myconos",
			value.Row{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("c%d", i)), value.NewStr("Myconos")},
		); err != nil {
			t.Fatal(err)
		}
		if err := n.Store().Insert("invoiceline", "p0",
			value.Row{value.NewInt(int64(100 + i)), value.NewInt(1), value.NewInt(int64(i)), value.NewFloat(float64(i % 13))},
		); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// wideRFB requests several distinct queries in one RFB.
func wideRFB(rfbID string, width int) trading.RFB {
	rfb := trading.RFB{RFBID: rfbID, BuyerID: "athens"}
	for i := 0; i < width; i++ {
		rfb.Queries = append(rfb.Queries, trading.QueryRequest{
			QID: fmt.Sprintf("q%d", i),
			SQL: fmt.Sprintf(`SELECT c.office, SUM(i.charge) AS total
				FROM customer c, invoiceline i
				WHERE c.custid = i.custid AND c.custid < %d
				GROUP BY c.office`, 5+5*i),
		})
	}
	return rfb
}

// TestParallelMatchesSerial pins that worker count and caching change only
// wall-clock time: offers (ids, prices, props, order) must be byte-identical
// between the serial/no-cache path and the parallel/cached path.
func TestParallelMatchesSerial(t *testing.T) {
	rfb := wideRFB("rfb-par", 6)
	serial := telcoNodeCfg(t, func(c *Config) { c.Workers = 1; c.PriceCacheSize = -1 })
	want, err := bidOffers(serial.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial node offered nothing")
	}
	for _, workers := range []int{2, 8} {
		par := telcoNodeCfg(t, func(c *Config) { c.Workers = workers })
		got, err := bidOffers(par.RequestBids(rfb))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d offers differ from serial path:\nserial:   %+v\nparallel: %+v",
				workers, want, got)
		}
	}
}

// TestPriceCacheHitsAcrossIterations pins the cache's purpose: the buyer
// re-requests overlapping query sets under fresh RFBIDs each negotiation
// iteration, and the second iteration must hit.
func TestPriceCacheHitsAcrossIterations(t *testing.T) {
	m := obs.NewMetrics()
	n := telcoNodeCfg(t, func(c *Config) { c.Metrics = m })
	first, err := bidOffers(n.RequestBids(wideRFB("rfb-i1", 3)))
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Counter("node.myconos.pricecache_hits").Value(); v != 0 {
		t.Fatalf("cold cache reported %d hits", v)
	}
	second, err := bidOffers(n.RequestBids(wideRFB("rfb-i2", 3)))
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Counter("node.myconos.pricecache_hits").Value(); v != 3 {
		t.Fatalf("second iteration hit %d times, want 3", v)
	}
	// Same pricing work, so everything but the RFB-scoped ids must agree.
	if len(first) != len(second) {
		t.Fatalf("offer counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		a.OfferID, a.RFBID = "", ""
		b.OfferID, b.RFBID = "", ""
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cached offer %d differs:\nfirst:  %+v\nsecond: %+v", i, a, b)
		}
	}
}

// TestPriceCacheInvalidatedByMutation is the stale-price test: inserting
// rows between iterations must miss the cache and re-price against the new
// statistics, matching a cold node holding the same final data.
func TestPriceCacheInvalidatedByMutation(t *testing.T) {
	m := obs.NewMetrics()
	n := telcoNodeCfg(t, func(c *Config) { c.Metrics = m })
	stale, err := bidOffers(n.RequestBids(wideRFB("rfb-m1", 2)))
	if err != nil {
		t.Fatal(err)
	}
	grow := func(node *Node) {
		for i := 0; i < 200; i++ {
			if err := node.Store().Insert("invoiceline", "p0",
				value.Row{value.NewInt(int64(1000 + i)), value.NewInt(2), value.NewInt(int64(i % 40)), value.NewFloat(1)},
			); err != nil {
				t.Fatal(err)
			}
		}
	}
	grow(n)
	fresh, err := bidOffers(n.RequestBids(wideRFB("rfb-m2", 2)))
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Counter("node.myconos.pricecache_hits").Value(); v != 0 {
		t.Fatalf("mutation must invalidate the cache, got %d hits", v)
	}
	samePrices := true
	for i := range fresh {
		if fresh[i].Price != stale[i].Price || fresh[i].Props.Rows != stale[i].Props.Rows {
			samePrices = false
		}
	}
	if samePrices {
		t.Fatal("post-mutation offers identical to pre-mutation ones: stale prices served")
	}
	// A cold node holding the same final data must price identically.
	cold := telcoNodeCfg(t, nil)
	grow(cold)
	want, err := bidOffers(cold.RequestBids(wideRFB("rfb-m2", 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, fresh) {
		t.Fatalf("re-priced offers differ from cold pricing:\ncold: %+v\ngot:  %+v", want, fresh)
	}
}

// countingStrategy prices truthfully but counts Price calls, and can block
// the first pricing mid-flight to stage a retry race.
type countingStrategy struct {
	mu      sync.Mutex
	calls   int
	started chan struct{} // closed when the first Price call begins
	gate    chan struct{} // first Price call blocks until this closes
	blocked bool
}

func (s *countingStrategy) Price(_ string, truth float64) float64 {
	s.mu.Lock()
	s.calls++
	first := s.calls == 1
	s.mu.Unlock()
	if first && s.gate != nil {
		close(s.started)
		<-s.gate
	}
	return truth
}

func (s *countingStrategy) Improve(_ string, current, _, _ float64) (float64, bool) {
	return current, false
}

func (s *countingStrategy) Observe(string, bool) {}

func (s *countingStrategy) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// TestRequestBidsIdempotentRepeat pins that re-sending an already-answered
// RFBID returns the same offers without re-pricing.
func TestRequestBidsIdempotentRepeat(t *testing.T) {
	m := obs.NewMetrics()
	strat := &countingStrategy{}
	n := telcoNodeCfg(t, func(c *Config) {
		c.Metrics = m
		c.Strategy = strat
	})
	rfb := wideRFB("rfb-idem", 3)
	first, err := bidOffers(n.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	priced := strat.count()
	again, err := bidOffers(n.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("repeated RFBID returned different offers")
	}
	if strat.count() != priced {
		t.Fatalf("repeat re-priced: %d strategy calls after, %d before", strat.count(), priced)
	}
	if v := m.Counter("node.myconos.pricings_coalesced").Value(); v != 3 {
		t.Fatalf("coalesced %d pricings, want 3", v)
	}
}

// TestRetryCoalescesWithAbandonedAttempt stages the fault-layer race from
// trading's retry machinery: a retry of the same RFB arrives while the
// abandoned first attempt is still pricing. The retry must coalesce onto the
// in-flight work — equal offers, the pricing work done once.
func TestRetryCoalescesWithAbandonedAttempt(t *testing.T) {
	// Reference: how many Price calls one clean pricing of the RFB costs.
	ref := &countingStrategy{}
	refNode := telcoNodeCfg(t, func(c *Config) { c.Strategy = ref })
	rfb := wideRFB("rfb-race", 1)
	if _, err := refNode.RequestBids(rfb); err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics()
	strat := &countingStrategy{started: make(chan struct{}), gate: make(chan struct{})}
	n := telcoNodeCfg(t, func(c *Config) {
		c.Metrics = m
		c.Strategy = strat
	})
	type res struct {
		offers []trading.Offer
		err    error
	}
	firstCh := make(chan res, 1)
	go func() {
		offers, err := bidOffers(n.RequestBids(rfb))
		firstCh <- res{offers, err}
	}()
	<-strat.started // first attempt is mid-pricing and now stalled
	retryCh := make(chan res, 1)
	go func() {
		offers, err := bidOffers(n.RequestBids(rfb))
		retryCh <- res{offers, err}
	}()
	// Give the retry a moment to reach the single-flight gate, then release
	// the stalled first attempt.
	time.Sleep(10 * time.Millisecond)
	close(strat.gate)
	first, retry := <-firstCh, <-retryCh
	if first.err != nil || retry.err != nil {
		t.Fatalf("errors: %v / %v", first.err, retry.err)
	}
	if !reflect.DeepEqual(first.offers, retry.offers) {
		t.Fatalf("retry and first attempt diverged:\nfirst: %+v\nretry: %+v", first.offers, retry.offers)
	}
	if got, want := strat.count(), ref.count(); got != want {
		t.Fatalf("pricing ran %d strategy calls, a single run costs %d: work duplicated", got, want)
	}
	if v := m.Counter("node.myconos.pricings_coalesced").Value(); v != 1 {
		t.Fatalf("coalesced %d pricings, want 1", v)
	}
}

// TestEndNegotiationDropsFlightState pins that a finished negotiation frees
// its single-flight memo: a later identical RFBID re-prices from scratch.
func TestEndNegotiationDropsFlightState(t *testing.T) {
	strat := &countingStrategy{}
	n := telcoNodeCfg(t, func(c *Config) { c.Strategy = strat })
	rfb := wideRFB("rfb-end", 2)
	if _, err := n.RequestBids(rfb); err != nil {
		t.Fatal(err)
	}
	priced := strat.count()
	n.EndNegotiation(rfb.RFBID, nil)
	if _, err := n.RequestBids(rfb); err != nil {
		t.Fatal(err)
	}
	if strat.count() == priced {
		t.Fatal("flight state survived EndNegotiation; RFB was not re-priced")
	}
}
