package node

import (
	"fmt"
	"time"

	"qtrade/internal/ledger"
	"qtrade/internal/trading"
)

// This file is the node's lifecycle state machine: Active → Draining → Left,
// with Draining → Active when a drain is cancelled. A draining node rejects
// new Depth-0 RFBs with the typed transient trading.ErrDraining (buyers skip
// it like an open breaker — no retry burn), keeps pricing subcontract probes
// it is asked to finish, honors its standing offers (awards and executions
// still served), and stops competing in improvement rounds. Once quiesced it
// can Leave: everything is refused and the standing-offer book is revoked.
// Transitions are recorded into the attached trading ledger as membership
// events, so churn is auditable next to the negotiations it perturbed.

// State reports the node's lifecycle position.
func (n *Node) State() trading.NodeState {
	return trading.NodeState(n.state.Load())
}

// gateRFB is the RequestBids lifecycle gate: Draining refuses new Depth-0
// negotiations, Left refuses all. Nil means the RFB may proceed.
func (n *Node) gateRFB(depth int) error {
	switch n.State() {
	case trading.StateLeft:
		return n.drainErr("request-bids")
	case trading.StateDraining:
		if depth == 0 {
			return n.drainErr("request-bids")
		}
	}
	return nil
}

// drainErr builds the typed rejection for one refused operation: wrapped
// trading.ErrDraining (so guards skip the peer without retries) marked
// transient (so the federation-level failure stays recoverable).
func (n *Node) drainErr(op string) error {
	return trading.MarkTransient(fmt.Errorf("node %s: %s refused, %s: %w",
		n.cfg.ID, op, n.State(), trading.ErrDraining))
}

// Drain moves the node Active → Draining: new Depth-0 RFBs are refused,
// in-flight negotiations and executions run to completion, standing offers
// stay honored. reason is operator context for the ledger's membership
// stream ("operator", "sigterm", …). Draining an already-draining or left
// node is a no-op.
func (n *Node) Drain(reason string) {
	if n.state.CompareAndSwap(int32(trading.StateActive), int32(trading.StateDraining)) {
		n.ledg.Load().Lifecycle(ledger.KindDrain, n.cfg.ID, reason)
	}
}

// Undrain cancels a drain, returning the node to Active, and reports whether
// it did (a node that already Left cannot come back under the same handle —
// rejoining is a fresh AddNode).
func (n *Node) Undrain() bool {
	if n.state.CompareAndSwap(int32(trading.StateDraining), int32(trading.StateActive)) {
		n.ledg.Load().Lifecycle(ledger.KindUndrain, n.cfg.ID, "")
		return true
	}
	return false
}

// Leave makes the departure final: every subsequent call is refused and the
// standing-offer book is revoked (buyers recover through equivalent offers
// from replicas). Callers that want a graceful exit Drain first and Quiesce
// before Leave; Leave itself does not wait.
func (n *Node) Leave(reason string) {
	prev := n.state.Swap(int32(trading.StateLeft))
	if trading.NodeState(prev) == trading.StateLeft {
		return
	}
	n.RevokeStandingOffers()
	n.ledg.Load().Lifecycle(ledger.KindLeave, n.cfg.ID, reason)
}

// RevokeStandingOffers drops every standing offer, pricing flight and
// subcontract assembly the node holds, returning how many offers were
// revoked. Buyers holding awards against them see execution failures and
// recover; buyers still negotiating simply stop hearing from this seller.
func (n *Node) RevokeStandingOffers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	revoked := 0
	for _, m := range n.standing {
		revoked += len(m)
	}
	n.standing = map[string]map[string]*standingOffer{}
	n.rfbOrder = nil
	n.subcontracts = map[string]*subcontract{}
	n.flights = map[string]map[string]*flight{}
	return revoked
}

// Quiesced reports whether the node holds no in-flight work: no admitted or
// queued Depth-0 RFBs and no executions running.
func (n *Node) Quiesced() bool {
	return n.inflight.Load() == 0 && n.queued.Load() == 0 && n.active.Load() == 0
}

// Quiesce waits — up to timeout — for in-flight work to finish, reporting
// whether the node fully quiesced. A draining node converges because the
// lifecycle gate stops new Depth-0 work; calling this on an Active node
// under load may simply time out.
func (n *Node) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if n.Quiesced() {
			return true
		}
		if time.Now().After(deadline) {
			return n.Quiesced()
		}
		time.Sleep(time.Millisecond)
	}
}

// loadFactor is the live load signal LoadAwarePricing folds into asked
// prices: executions in flight plus admitted and queued Depth-0 RFBs,
// normalized by the pricing worker count, plus a large surcharge while
// draining so a departing seller prices itself out of even the subcontract
// probes it still answers.
func (n *Node) loadFactor() float64 {
	f := float64(n.active.Load()+n.inflight.Load()+n.queued.Load()) / float64(n.cfg.Workers)
	if n.State() != trading.StateActive {
		f += 4
	}
	return f
}

// Health is the node's /healthz snapshot.
type Health struct {
	ID           string            `json:"id"`
	State        string            `json:"state"`
	Ready        bool              `json:"ready"` // accepting new Depth-0 RFBs
	QueueDepth   int64             `json:"rfb_queue_depth"`
	InflightRFBs int64             `json:"rfbs_inflight"`
	ActiveExecs  int64             `json:"active_execs"`
	StandingRFBs int               `json:"standing_rfbs"`
	Breakers     map[string]string `json:"breakers,omitempty"` // per-peer circuit state
}

// Health reports the node's live lifecycle and admission state plus the
// per-peer breaker summary of its fault policy (when one is attached).
func (n *Node) Health() Health {
	st := n.State()
	n.mu.Lock()
	standing := len(n.standing)
	n.mu.Unlock()
	h := Health{
		ID:           n.cfg.ID,
		State:        st.String(),
		Ready:        st == trading.StateActive,
		QueueDepth:   n.queued.Load(),
		InflightRFBs: n.inflight.Load(),
		ActiveExecs:  n.active.Load(),
		StandingRFBs: standing,
	}
	if pol := n.cfg.Faults; pol != nil {
		h.Breakers = pol.Breakers.States()
	}
	return h
}
