package node

import (
	"testing"

	"qtrade/internal/ledger"
	"qtrade/internal/trading"
)

// TestSellerLedgerAudit: a seller with a ledger attached records its pricing
// work keyed by the buyer's RFB id, joins served executions to the same
// negotiation by parsing the offer id, and stamps its measured wall time on
// the ExecResp; detaching stops recording.
func TestSellerLedgerAudit(t *testing.T) {
	n := myconosNode(t, nil)
	led := ledger.New(4)
	n.SetLedger(led)

	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil {
		t.Fatal(err)
	}
	var joint *trading.Offer
	for i := range offers {
		if len(offers[i].Bindings) == 2 && !offers[i].PartialAgg {
			joint = &offers[i]
		}
	}
	if joint == nil {
		t.Fatal("no 2-way offer")
	}
	resp, err := n.Execute(trading.ExecReq{BuyerID: "athens", OfferID: joint.OfferID, SQL: joint.SQL})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExecMS <= 0 {
		t.Fatalf("ExecMS not measured: %+v", resp.ExecMS)
	}

	negs := led.Negotiations(0)
	if len(negs) != 1 || negs[0].ID != "rfb1" {
		t.Fatalf("events must join under the buyer's RFB id: %+v", negs)
	}
	var priced, served *ledger.Event
	for i, e := range negs[0].Events {
		switch e.Kind {
		case ledger.KindPriced:
			priced = &negs[0].Events[i]
		case ledger.KindServed:
			served = &negs[0].Events[i]
		}
	}
	if priced == nil || priced.Seller != "myconos" || priced.Offers != len(offers) {
		t.Fatalf("priced event: %+v", priced)
	}
	if served == nil || served.OfferID != joint.OfferID || served.Rows != int64(len(resp.Rows)) {
		t.Fatalf("served event: %+v", served)
	}
	if served.Bytes <= 0 || served.WallMS < 0 {
		t.Fatalf("served actuals: %+v", served)
	}
	rep := led.Calibration()
	phases := map[string]bool{}
	for _, p := range rep.Phases {
		phases[p.Phase] = true
	}
	if !phases[ledger.PhaseRewrite.String()] || !phases[ledger.PhasePricing.String()] {
		t.Fatalf("phase breakdown missing rewrite/pricing: %+v", rep.Phases)
	}

	// A second identical RFB prices from the cache; the event must say so.
	if _, err := bidOffers(n.RequestBids(trading.RFB{RFBID: "rfb2", BuyerID: "athens",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: paperQuery}}})); err != nil {
		t.Fatal(err)
	}
	cached := false
	for _, neg := range led.Negotiations(0) {
		for _, e := range neg.Events {
			if e.Kind == ledger.KindPriced && e.CacheHit {
				cached = true
			}
		}
	}
	if !cached {
		t.Fatal("repeat pricing did not record a cache hit")
	}

	n.SetLedger(nil)
	if _, err := bidOffers(n.RequestBids(trading.RFB{RFBID: "rfb3", BuyerID: "athens",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: paperQuery}}})); err != nil {
		t.Fatal(err)
	}
	if led.Len() != 2 {
		t.Fatalf("detached node still recorded: %d negotiations", led.Len())
	}
}
