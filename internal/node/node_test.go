package node

import (
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

func telcoSchema() *catalog.Schema {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "custname", Kind: value.Str},
		{Name: "office", Kind: value.Str},
	}})
	sch.MustAddTable(&catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
		{Name: "invid", Kind: value.Int},
		{Name: "linenum", Kind: value.Int},
		{Name: "custid", Kind: value.Int},
		{Name: "charge", Kind: value.Float},
	}})
	if err := sch.SetPartitions("customer", []*catalog.Partition{
		{Table: "customer", ID: "corfu", Predicate: sqlparse.MustParseExpr("office = 'Corfu'")},
		{Table: "customer", ID: "myconos", Predicate: sqlparse.MustParseExpr("office = 'Myconos'")},
	}); err != nil {
		panic(err)
	}
	return sch
}

// myconosNode holds the myconos customer partition and all invoice lines.
func myconosNode(t *testing.T, strat trading.SellerStrategy) *Node {
	t.Helper()
	sch := telcoSchema()
	n := New(Config{ID: "myconos", Schema: sch, Strategy: strat})
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	if _, err := n.Store().CreateFragment(cust, "myconos"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Store().CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().Insert("customer", "myconos",
		value.Row{value.NewInt(3), value.NewStr("carol"), value.NewStr("Myconos")},
		value.Row{value.NewInt(5), value.NewStr("eve"), value.NewStr("Myconos")},
	); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().Insert("invoiceline", "p0",
		value.Row{value.NewInt(102), value.NewInt(1), value.NewInt(3), value.NewFloat(20)},
		value.Row{value.NewInt(103), value.NewInt(1), value.NewInt(5), value.NewFloat(2)},
		value.Row{value.NewInt(100), value.NewInt(1), value.NewInt(1), value.NewFloat(10)},
	); err != nil {
		t.Fatal(err)
	}
	return n
}

const paperQuery = `SELECT c.office, SUM(i.charge) AS total
	FROM customer c, invoiceline i
	WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	GROUP BY c.office`

func paperRFB() trading.RFB {
	return trading.RFB{RFBID: "rfb1", BuyerID: "athens",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: paperQuery}}}
}

// bidOffers unwraps a BidReply-returning call for tests that only care
// about the offers.
func bidOffers(rep trading.BidReply, err error) ([]trading.Offer, error) {
	return rep.Offers, err
}

func TestRequestBidsPaperExample(t *testing.T) {
	n := myconosNode(t, nil)
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) == 0 {
		t.Fatal("Myconos must offer something")
	}
	// Offers must include the raw 2-way partial with the office restriction.
	var joint *trading.Offer
	for i := range offers {
		if len(offers[i].Bindings) == 2 && !offers[i].PartialAgg {
			joint = &offers[i]
		}
	}
	if joint == nil {
		t.Fatalf("no 2-way offer among %d offers", len(offers))
	}
	if !strings.Contains(joint.SQL, "Myconos") {
		t.Fatalf("restriction missing: %s", joint.SQL)
	}
	if joint.Complete {
		t.Fatal("partial coverage cannot be complete")
	}
	if !joint.Stripped {
		t.Fatal("aggregation must be stripped (partial extent)")
	}
	if joint.Parts["c"][0] != "myconos" {
		t.Fatalf("parts: %+v", joint.Parts)
	}
	if joint.Props.TotalTime <= 0 || joint.Props.Completeness <= 0 || joint.Props.Completeness > 1 {
		t.Fatalf("props: %+v", joint.Props)
	}
	if joint.Price != joint.Props.TotalTime {
		t.Fatalf("cooperative price must be truthful: %f vs %f", joint.Price, joint.Props.TotalTime)
	}
	if len(joint.Cols) == 0 {
		t.Fatal("offer must carry its output schema")
	}
	// Every offered SQL must re-parse.
	for _, o := range offers {
		if _, err := sqlparse.Parse(o.SQL); err != nil {
			t.Fatalf("offer SQL unparseable: %q: %v", o.SQL, err)
		}
	}
}

func TestRequestBidsIrrelevantNode(t *testing.T) {
	sch := telcoSchema()
	n := New(Config{ID: "empty", Schema: sch})
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil || len(offers) != 0 {
		t.Fatalf("empty node must silently offer nothing: %v %v", offers, err)
	}
}

func TestCompetitivePricingAndImprove(t *testing.T) {
	strat := trading.NewCompetitive()
	n := myconosNode(t, strat)
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil || len(offers) == 0 {
		t.Fatal(err)
	}
	o := offers[0]
	truth := o.Props.TotalTime
	if o.Price <= truth {
		t.Fatalf("competitive ask must exceed truth: %f vs %f", o.Price, truth)
	}
	// A cheaper competitor forces an undercut.
	improved, err := bidOffers(n.ImproveBids(trading.ImproveReq{
		RFBID:     "rfb1",
		BestPrice: map[string]float64{"q0": o.Price * 0.99},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(improved) == 0 {
		t.Fatal("seller must undercut")
	}
	for _, im := range improved {
		if im.Price >= o.Price && im.OfferID == o.OfferID {
			t.Fatalf("no price cut: %f", im.Price)
		}
	}
	// Unknown RFB: nothing to improve.
	none, err := bidOffers(n.ImproveBids(trading.ImproveReq{RFBID: "ghost", BestPrice: map[string]float64{"q0": 1}}))
	if err != nil || len(none) != 0 {
		t.Fatal("unknown rfb must be empty")
	}
}

func TestAwardFeedsStrategy(t *testing.T) {
	strat := trading.NewCompetitive()
	n := myconosNode(t, strat)
	offers, _ := bidOffers(n.RequestBids(paperRFB()))
	before := strat.Margin()
	if err := n.Award(trading.Award{RFBID: "rfb1", OfferID: offers[0].OfferID}); err != nil {
		t.Fatal(err)
	}
	if strat.Margin() <= before*0.5 {
		t.Fatalf("winning must not crash the margin: %f -> %f", before, strat.Margin())
	}
	if err := n.Award(trading.Award{RFBID: "rfb1", OfferID: "nope"}); err == nil {
		t.Fatal("unknown offer award must error")
	}
	n.EndNegotiation("rfb1", map[string]bool{offers[0].OfferID: true})
	if _, err := n.ImproveBids(trading.ImproveReq{RFBID: "rfb1", BestPrice: map[string]float64{"q0": 0.01}}); err != nil {
		t.Fatal(err)
	}
}

func TestExecutePurchasedQuery(t *testing.T) {
	n := myconosNode(t, nil)
	offers, _ := bidOffers(n.RequestBids(paperRFB()))
	var joint *trading.Offer
	for i := range offers {
		if len(offers[i].Bindings) == 2 && !offers[i].PartialAgg {
			joint = &offers[i]
		}
	}
	resp, err := n.Execute(trading.ExecReq{BuyerID: "athens", OfferID: joint.OfferID, SQL: joint.SQL})
	if err != nil {
		t.Fatalf("execute %q: %v", joint.SQL, err)
	}
	// Myconos customers 3 and 5 have 2 invoice lines; customer 1's line has
	// no local customer row.
	if len(resp.Rows) != 2 {
		t.Fatalf("rows: %v", resp.Rows)
	}
	if len(resp.Cols) != len(joint.Cols) {
		t.Fatalf("schema drift: %d vs %d", len(resp.Cols), len(joint.Cols))
	}
	if _, err := n.Execute(trading.ExecReq{SQL: "not sql"}); err == nil {
		t.Fatal("bad SQL must error")
	}
	if _, err := n.Execute(trading.ExecReq{SQL: "SELECT g.x FROM ghost g"}); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestViewOffersAndExecution(t *testing.T) {
	n := myconosNode(t, nil)
	if err := n.Store().AddView(&storage.MaterializedView{
		Name: "officetotals",
		SQL: `SELECT c.office, c.custid, SUM(i.charge) AS total FROM customer c, invoiceline i
		      WHERE c.custid = i.custid GROUP BY c.office, c.custid`,
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "custid", Kind: value.Int},
			{Name: "total", Kind: value.Float},
		},
		Rows: []value.Row{
			{value.NewStr("Myconos"), value.NewInt(3), value.NewFloat(20)},
			{value.NewStr("Myconos"), value.NewInt(5), value.NewFloat(2)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
	      WHERE c.custid = i.custid GROUP BY c.office`
	rfb := trading.RFB{RFBID: "r2", BuyerID: "athens",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: q}}}
	offers, err := bidOffers(n.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	var viewOffer *trading.Offer
	for i := range offers {
		if offers[i].FromView {
			viewOffer = &offers[i]
		}
	}
	if viewOffer == nil {
		t.Fatal("view offer expected")
	}
	if !strings.Contains(viewOffer.SQL, "officetotals") {
		t.Fatalf("view offer SQL: %s", viewOffer.SQL)
	}
	resp, err := n.Execute(trading.ExecReq{SQL: viewOffer.SQL})
	if err != nil {
		t.Fatalf("execute view offer %q: %v", viewOffer.SQL, err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][1].AsFloat() != 22 {
		t.Fatalf("view rollup: %v", resp.Rows)
	}
	// Ablation: views disabled.
	n2 := myconosNode(t, nil)
	n2.cfg.DisableViews = true
	offers2, _ := bidOffers(n2.RequestBids(rfb))
	for _, o := range offers2 {
		if o.FromView {
			t.Fatal("views disabled but offered")
		}
	}
}

func TestOfferCap(t *testing.T) {
	sch := telcoSchema()
	n := New(Config{ID: "x", Schema: sch, MaxOffersPerQuery: 2})
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	if _, err := n.Store().CreateFragment(cust, "myconos"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Store().CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) > 2 {
		t.Fatalf("cap violated: %d", len(offers))
	}
	// Widest coverage survives the cap.
	if len(offers[0].Bindings) != 2 {
		t.Fatalf("widest offer must survive: %+v", offers[0].Bindings)
	}
}

func TestOutputSpecs(t *testing.T) {
	sch := telcoSchema()
	sel := sqlparse.MustParseSelect(
		"SELECT c.office, COUNT(*) AS n, SUM(i.charge) AS total, AVG(i.charge) AS a FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office")
	specs, err := OutputSpecs(sel, sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs: %+v", specs)
	}
	if specs[0].Kind != value.Str || specs[0].Name != "office" {
		t.Fatalf("office spec: %+v", specs[0])
	}
	if specs[1].Kind != value.Int || specs[1].Name != "n" {
		t.Fatalf("count spec: %+v", specs[1])
	}
	if specs[2].Kind != value.Float || specs[3].Kind != value.Float {
		t.Fatalf("sum/avg kinds: %+v", specs)
	}
	star := sqlparse.MustParseSelect("SELECT * FROM customer c")
	specs, err = OutputSpecs(star, sch, nil)
	if err != nil || len(specs) != 3 || specs[0].Table != "c" {
		t.Fatalf("star specs: %+v %v", specs, err)
	}
}

func TestLoadTracking(t *testing.T) {
	n := myconosNode(t, nil)
	if n.Load() != 0 {
		t.Fatal("idle load")
	}
	if n.ID() != "myconos" || n.Schema() == nil || n.CostModel() == nil {
		t.Fatal("accessors")
	}
	if n.Weights().TotalTime != 1 {
		t.Fatalf("default weights must value total time: %+v", n.Weights())
	}
}
