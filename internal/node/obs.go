package node

import (
	"time"

	"qtrade/internal/obs"
	"qtrade/internal/trading"
)

// nodeObs bundles a node's tracer with its pre-resolved instruments so the
// seller hot path (RequestBids → rewrite → DP pricing) never touches the
// metric registry. It is swapped atomically as a unit: nil means
// observability is off and every call site reduces to one pointer load.
type nodeObs struct {
	tracer *obs.Tracer

	rfbs              *obs.Counter // RFBs received
	offersPriced      *obs.Counter // DP-priced partial-result offers
	offersView        *obs.Counter // offers derived from materialized views
	offersPartialAgg  *obs.Counter // partial-aggregate (pushdown) offers
	offersSubcontract *obs.Counter // §3.5 composite offers
	offersWon         *obs.Counter // awards received
	rewritesEmpty     *obs.Counter // queries the node could not bid on
	execs             *obs.Counter // purchased answers executed

	cacheHits         *obs.Counter // price-cache hits (rewrite+DP skipped)
	cacheMisses       *obs.Counter // price-cache misses (full pricing ran)
	cacheEvictions    *obs.Counter // price-cache LRU evictions
	pricingsCoalesced *obs.Counter // duplicate (RFB, query) pricings single-flighted

	rfbsQueued    *obs.Counter // Depth-0 RFBs that had to wait for admission
	rfbQueueDepth *obs.Gauge   // Depth-0 RFBs currently waiting for admission
	rfbsInflight  *obs.Gauge   // Depth-0 RFBs currently holding an admission slot

	rewriteMS *obs.Histogram
	dpMS      *obs.Histogram
	execMS    *obs.Histogram
}

// SetObs attaches a tracer and metrics registry to the node (both may be
// nil). Safe to call concurrently with negotiations: in-flight calls keep
// the observer they loaded. Metric names are prefixed "node.<id>.".
func (n *Node) SetObs(tr *obs.Tracer, m *obs.Metrics) {
	if tr == nil && m == nil {
		n.obsv.Store(nil)
		return
	}
	p := "node." + n.cfg.ID + "."
	n.obsv.Store(&nodeObs{
		tracer:            tr,
		rfbs:              m.Counter(p + "rfbs"),
		offersPriced:      m.Counter(p + "offers_priced"),
		offersView:        m.Counter(p + "offers_view"),
		offersPartialAgg:  m.Counter(p + "offers_partialagg"),
		offersSubcontract: m.Counter(p + "offers_subcontract"),
		offersWon:         m.Counter(p + "offers_won"),
		rewritesEmpty:     m.Counter(p + "rewrites_empty"),
		execs:             m.Counter(p + "execs"),
		cacheHits:         m.Counter(p + "pricecache_hits"),
		cacheMisses:       m.Counter(p + "pricecache_misses"),
		cacheEvictions:    m.Counter(p + "pricecache_evictions"),
		pricingsCoalesced: m.Counter(p + "pricings_coalesced"),
		rfbsQueued:        m.Counter(p + "rfbs_queued"),
		rfbQueueDepth:     m.Gauge(p + "rfb_queue_depth"),
		rfbsInflight:      m.Gauge(p + "rfbs_inflight"),
		rewriteMS:         m.Histogram(p + "rewrite_ms"),
		dpMS:              m.Histogram(p + "dp_ms"),
		execMS:            m.Histogram(p + "exec_ms"),
	})
}

// SetFaultPolicy attaches (or with nil detaches) the fault policy guarding
// the node's subcontract exchanges. Call it during federation setup, before
// negotiations start: unlike SetObs it is not synchronized against in-flight
// calls.
func (n *Node) SetFaultPolicy(p *trading.FaultPolicy) { n.cfg.Faults = p }

// msSince converts an elapsed interval to histogram milliseconds.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}
