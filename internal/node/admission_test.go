package node

import (
	"testing"
	"time"

	"qtrade/internal/obs"
)

// gatedStrategy blocks every pricing call until released, signalling each
// RequestBids that reached the pricing stage (a node prices a one-query RFB
// through at most one in-flight Price call, so one signal arrives per
// admitted RFB).
type gatedStrategy struct {
	entered chan string
	gate    chan struct{}
}

func (s *gatedStrategy) Price(qid string, truth float64) float64 {
	select {
	case <-s.gate: // released: price freely
		return truth
	default:
	}
	s.entered <- qid
	<-s.gate
	return truth
}

func (s *gatedStrategy) Improve(_ string, current, _, _ float64) (float64, bool) {
	return current, false
}

func (s *gatedStrategy) Observe(string, bool) {}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionGateBoundsInflightRFBs pins the backpressure contract: with
// MaxInflightRFBs=1 a second buyer-originated RFB queues (visible in the
// rfbs_queued counter and rfb_queue_depth gauge) instead of pricing
// concurrently, while a Depth-1 subcontract probe bypasses the gate — the
// deadlock-freedom rule for mutually subcontracting nodes.
func TestAdmissionGateBoundsInflightRFBs(t *testing.T) {
	strat := &gatedStrategy{entered: make(chan string, 8), gate: make(chan struct{})}
	m := obs.NewMetrics()
	n := telcoNodeCfg(t, func(c *Config) {
		c.Workers = 4
		c.MaxInflightRFBs = 1
		c.Metrics = m
		c.Strategy = strat
	})
	done := make(chan error, 3)
	send := func(rfbID string, depth int) {
		rfb := wideRFB(rfbID, 1)
		rfb.Depth = depth
		go func() {
			_, err := n.RequestBids(rfb)
			done <- err
		}()
	}

	send("rfb-adm-a", 0)
	<-strat.entered // A holds the only admission slot, stalled in pricing

	send("rfb-adm-b", 0)
	waitFor(t, "second RFB to queue", func() bool {
		return m.Counter("node.myconos.rfbs_queued").Value() == 1
	})
	if g := m.Gauge("node.myconos.rfb_queue_depth").Value(); g != 1 {
		t.Fatalf("rfb_queue_depth = %v, want 1", g)
	}
	select {
	case q := <-strat.entered:
		t.Fatalf("second Depth-0 RFB began pricing (%q) despite a full admission gate", q)
	default:
	}

	send("rfb-adm-c", 1)
	<-strat.entered // the subcontract probe prices while the gate is full

	close(strat.gate)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if g := m.Gauge("node.myconos.rfb_queue_depth").Value(); g != 0 {
		t.Fatalf("rfb_queue_depth = %v after drain, want 0", g)
	}
	if g := m.Gauge("node.myconos.rfbs_inflight").Value(); g != 0 {
		t.Fatalf("rfbs_inflight = %v after drain, want 0", g)
	}
}

// TestAdmissionGateDisabled pins that a negative MaxInflightRFBs removes the
// bound: two Depth-0 RFBs price concurrently.
func TestAdmissionGateDisabled(t *testing.T) {
	strat := &gatedStrategy{entered: make(chan string, 8), gate: make(chan struct{})}
	n := telcoNodeCfg(t, func(c *Config) {
		c.Workers = 4
		c.MaxInflightRFBs = -1
		c.Strategy = strat
	})
	done := make(chan error, 2)
	for _, id := range []string{"rfb-open-a", "rfb-open-b"} {
		rfb := wideRFB(id, 1)
		go func() {
			_, err := n.RequestBids(rfb)
			done <- err
		}()
	}
	<-strat.entered
	<-strat.entered // both price concurrently: no gate in the way
	close(strat.gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
