package node

import (
	"sort"
	"strings"
	"testing"

	"qtrade/internal/netsim"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// subFederation builds the subcontracting topology: corfu holds the corfu
// customer partition, myconos holds the myconos partition, and corfu may
// purchase missing fragments from myconos. The buyer only ever talks to
// corfu.
func subFederation(t *testing.T) (*netsim.Network, *Node, *Node) {
	t.Helper()
	sch := telcoSchema()
	net := netsim.New()

	myc := New(Config{ID: "myconos", Schema: sch})
	cust, _ := sch.Table("customer")
	if _, err := myc.Store().CreateFragment(cust, "myconos"); err != nil {
		t.Fatal(err)
	}
	if err := myc.Store().Insert("customer", "myconos",
		value.Row{value.NewInt(3), value.NewStr("carol"), value.NewStr("Myconos")},
		value.Row{value.NewInt(5), value.NewStr("eve"), value.NewStr("Myconos")},
	); err != nil {
		t.Fatal(err)
	}

	corfu := New(Config{
		ID: "corfu", Schema: sch,
		SubcontractPeers: func() map[string]trading.Peer {
			return map[string]trading.Peer{"myconos": net.Peer("corfu", "myconos")}
		},
	})
	if _, err := corfu.Store().CreateFragment(cust, "corfu"); err != nil {
		t.Fatal(err)
	}
	if err := corfu.Store().Insert("customer", "corfu",
		value.Row{value.NewInt(1), value.NewStr("alice"), value.NewStr("Corfu")},
		value.Row{value.NewInt(2), value.NewStr("bob"), value.NewStr("Corfu")},
	); err != nil {
		t.Fatal(err)
	}

	net.Register("corfu", corfu)
	net.Register("myconos", myc)
	return net, corfu, myc
}

const bothOfficesQuery = "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')"

func TestSubcontractOfferCoversMissingPartition(t *testing.T) {
	_, corfu, _ := subFederation(t)
	rfb := trading.RFB{RFBID: "r1", BuyerID: "buyer",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: bothOfficesQuery}}}
	offers, err := bidOffers(corfu.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	var composite *trading.Offer
	for i := range offers {
		parts := offers[i].Parts["c"]
		if len(parts) == 2 {
			composite = &offers[i]
		}
	}
	if composite == nil {
		t.Fatalf("no composite offer among %d offers", len(offers))
	}
	if !composite.Complete {
		t.Fatalf("composite must cover all relevant partitions: %+v", composite)
	}
	sort.Strings(composite.Parts["c"])
	if composite.Parts["c"][0] != "corfu" || composite.Parts["c"][1] != "myconos" {
		t.Fatalf("parts: %v", composite.Parts)
	}
	// The composite is priced above corfu's own partial offer (it includes
	// the purchased fragment).
	var ownPartial *trading.Offer
	for i := range offers {
		if len(offers[i].Parts["c"]) == 1 {
			ownPartial = &offers[i]
		}
	}
	if ownPartial != nil && composite.Price <= ownPartial.Price {
		t.Fatalf("composite %.3f must cost more than partial %.3f", composite.Price, ownPartial.Price)
	}
}

func TestSubcontractExecution(t *testing.T) {
	_, corfu, _ := subFederation(t)
	rfb := trading.RFB{RFBID: "r2", BuyerID: "buyer",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: bothOfficesQuery}}}
	offers, err := bidOffers(corfu.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	var composite *trading.Offer
	for i := range offers {
		if len(offers[i].Parts["c"]) == 2 {
			composite = &offers[i]
		}
	}
	if composite == nil {
		t.Fatal("no composite offer")
	}
	resp, err := corfu.Execute(trading.ExecReq{
		BuyerID: "buyer", OfferID: composite.OfferID, SQL: composite.SQL})
	if err != nil {
		t.Fatalf("composite execute: %v", err)
	}
	names := map[string]bool{}
	for _, r := range resp.Rows {
		for i, c := range resp.Cols {
			if strings.EqualFold(c.Name, "custname") {
				names[r[i].S] = true
			}
		}
	}
	for _, want := range []string{"alice", "bob", "carol", "eve"} {
		if !names[want] {
			t.Fatalf("missing %s in composite answer: %v", want, names)
		}
	}
	if len(resp.Rows) != 4 {
		t.Fatalf("rows: %d", len(resp.Rows))
	}
}

func TestSubcontractDepthLimit(t *testing.T) {
	_, corfu, _ := subFederation(t)
	// A Depth-1 RFB (already a subcontract) must not be re-subcontracted.
	rfb := trading.RFB{RFBID: "r3", BuyerID: "other-seller", Depth: 1,
		Queries: []trading.QueryRequest{{QID: "q0", SQL: bothOfficesQuery}}}
	offers, err := bidOffers(corfu.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offers {
		if len(o.Parts["c"]) > 1 {
			t.Fatalf("depth-1 RFB produced a composite offer: %+v", o)
		}
	}
}

func TestSubcontractUnavailablePeerNoComposite(t *testing.T) {
	net, corfu, _ := subFederation(t)
	net.SetDown("myconos", true)
	rfb := trading.RFB{RFBID: "r4", BuyerID: "buyer",
		Queries: []trading.QueryRequest{{QID: "q0", SQL: bothOfficesQuery}}}
	offers, err := bidOffers(corfu.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offers {
		if len(o.Parts["c"]) > 1 {
			t.Fatal("composite offer without a reachable subcontractor")
		}
	}
	// Corfu still offers its own partition.
	if len(offers) == 0 {
		t.Fatal("own partial offers must survive")
	}
}

func TestSubcontractQueryOnlyNeedsOwnData(t *testing.T) {
	net, corfu, _ := subFederation(t)
	net.Reset()
	rfb := trading.RFB{RFBID: "r5", BuyerID: "buyer",
		Queries: []trading.QueryRequest{{QID: "q0",
			SQL: "SELECT c.custname FROM customer c WHERE c.office = 'Corfu'"}}}
	offers, err := bidOffers(corfu.RequestBids(rfb))
	if err != nil {
		t.Fatal(err)
	}
	// The only relevant partition is held locally: no subcontract RFB must
	// have been sent at all.
	if msgs, _ := net.Stats(); msgs != 0 {
		t.Fatalf("needless subcontract negotiation: %d messages", msgs)
	}
	for _, o := range offers {
		if !o.Complete {
			t.Fatalf("corfu fully covers the corfu query: %+v", o)
		}
	}
}
