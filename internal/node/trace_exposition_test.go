package node

import (
	"errors"
	"testing"

	"qtrade/internal/obs"
	"qtrade/internal/trading"
)

// TestExecuteSampledRecordsTraceLog: a sampled execution ships its span
// subtree on the response AND records it into the node's attached trace log
// (the /trace/last source for live exposition).
func TestExecuteSampledRecordsTraceLog(t *testing.T) {
	n := myconosNode(t, nil)
	tl := obs.NewTraceLog()
	n.SetTraceLog(tl)
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Execute(trading.ExecReq{BuyerID: "athens",
		OfferID: offers[0].OfferID, SQL: offers[0].SQL,
		Trace: obs.TraceContext{TraceID: "t1", Sampled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("sampled execute shipped no trace subtree")
	}
	last, _ := tl.Last()
	if last == nil {
		t.Fatal("sampled execute did not record into the trace log")
	}
	if last.Name != resp.Trace.Name {
		t.Fatalf("trace log holds %q, response shipped %q", last.Name, resp.Trace.Name)
	}
	// Detach: later executions must leave the retained subtree untouched.
	n.SetTraceLog(nil)
}

// TestImproveBidsLifecycleAndTrace: a node that has Left refuses improvement
// requests with the typed transient rejection, and a sampled improve on a
// live node ships a span subtree even when it holds no standing offers.
func TestImproveBidsLifecycleAndTrace(t *testing.T) {
	n := myconosNode(t, nil)
	reply, err := n.ImproveBids(trading.ImproveReq{RFBID: "ghost",
		BestPrice: map[string]float64{"q0": 1},
		Trace:     obs.TraceContext{TraceID: "t2", Sampled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Trace == nil {
		t.Fatal("sampled improve shipped no trace subtree")
	}
	n.Leave("test")
	if _, err := n.ImproveBids(trading.ImproveReq{RFBID: "ghost"}); !errors.Is(err, trading.ErrDraining) {
		t.Fatalf("improve on a left node: err = %v, want ErrDraining", err)
	}
}

// TestTryAcquireBounds: nested pricing work wins a free slot or is told to
// run inline on its parent's — never blocks.
func TestTryAcquireBounds(t *testing.T) {
	n := New(Config{ID: "x", Schema: telcoSchema(), Workers: 1})
	if !n.tryAcquire() {
		t.Fatal("tryAcquire failed on an idle pool")
	}
	if n.tryAcquire() {
		t.Fatal("tryAcquire won a second slot from a 1-worker pool")
	}
	n.release()
	if !n.tryAcquire() {
		t.Fatal("tryAcquire failed after release")
	}
	n.release()
}

// TestSetFaultPolicy: attach/detach guards subcontract exchanges; both
// directions must be accepted before negotiations start.
func TestSetFaultPolicy(t *testing.T) {
	n := New(Config{ID: "x", Schema: telcoSchema()})
	n.SetFaultPolicy(&trading.FaultPolicy{MaxRetries: 1})
	n.SetFaultPolicy(nil)
}
