package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"qtrade/internal/ledger"
	"qtrade/internal/trading"
)

// Pre-RFB phase: a draining node refuses new Depth-0 negotiations with the
// typed transient drain rejection, but keeps pricing Depth>0 subcontract
// probes so negotiations it is already part of can finish.
func TestDrainRefusesNewDepth0RFBs(t *testing.T) {
	n := myconosNode(t, nil)
	n.Drain("operator")

	_, err := n.RequestBids(paperRFB())
	if err == nil {
		t.Fatal("draining node must refuse a Depth-0 RFB")
	}
	if !errors.Is(err, trading.ErrDraining) {
		t.Fatalf("rejection must wrap ErrDraining: %v", err)
	}
	if !trading.IsTransient(err) {
		t.Fatalf("rejection must be transient so buyers recover: %v", err)
	}
	if r := trading.FailureReason(err); r != "drain" {
		t.Fatalf("rejection classified %q, want \"drain\"", r)
	}

	probe := paperRFB()
	probe.Depth = 1
	offers, err := bidOffers(n.RequestBids(probe))
	if err != nil {
		t.Fatalf("Depth-1 subcontract probe must still be priced: %v", err)
	}
	if len(offers) == 0 {
		t.Fatal("draining node must still offer on subcontract probes")
	}
}

// Mid-round phase: a seller that starts draining after bidding stops
// competing — improvement rounds get an empty, non-error reply (its standing
// offers stay live at their current prices) — and resumes undercutting once
// the drain is cancelled.
func TestDrainMidRoundStopsCompeting(t *testing.T) {
	n := myconosNode(t, trading.NewCompetitive())
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil || len(offers) == 0 {
		t.Fatal(err)
	}
	undercut := trading.ImproveReq{RFBID: "rfb1",
		BestPrice: map[string]float64{"q0": offers[0].Price * 0.99}}

	n.Drain("operator")
	improved, err := bidOffers(n.ImproveBids(undercut))
	if err != nil {
		t.Fatalf("mid-round drain must not error the round: %v", err)
	}
	if len(improved) != 0 {
		t.Fatalf("draining seller must not compete, improved %d offers", len(improved))
	}

	if !n.Undrain() {
		t.Fatal("Undrain must cancel a drain")
	}
	improved, err = bidOffers(n.ImproveBids(undercut))
	if err != nil || len(improved) == 0 {
		t.Fatalf("undrained seller must compete again: %v, %d offers", err, len(improved))
	}
}

// Post-award and mid-fetch phases: an award placed against a standing offer
// is still accepted while draining, and the purchased answer is still
// delivered — in-flight work is exactly what the drain exists to finish.
func TestDrainHonorsInFlightAwards(t *testing.T) {
	n := myconosNode(t, nil)
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil || len(offers) == 0 {
		t.Fatal(err)
	}
	o := offers[0]

	n.Drain("operator")
	if err := n.Award(trading.Award{RFBID: "rfb1", OfferID: o.OfferID, BuyerID: "athens"}); err != nil {
		t.Fatalf("award against a standing offer must survive a drain: %v", err)
	}
	resp, err := n.Execute(trading.ExecReq{BuyerID: "athens", OfferID: o.OfferID, SQL: o.SQL})
	if err != nil {
		t.Fatalf("draining node must still deliver purchased answers: %v", err)
	}
	if len(resp.Cols) == 0 {
		t.Fatalf("delivery lost its schema: %+v", resp)
	}
}

// Left is final: everything is refused — including Depth>0 probes and
// deliveries — the standing-offer book is revoked, and the node cannot be
// undrained back.
func TestLeaveRefusesEverythingAndRevokes(t *testing.T) {
	n := myconosNode(t, nil)
	offers, err := bidOffers(n.RequestBids(paperRFB()))
	if err != nil || len(offers) == 0 {
		t.Fatal(err)
	}
	if h := n.Health(); h.StandingRFBs != 1 {
		t.Fatalf("standing RFBs before leave: %+v", h)
	}

	n.Leave("decommissioned")
	probe := paperRFB()
	probe.Depth = 1
	if _, err := n.RequestBids(probe); !errors.Is(err, trading.ErrDraining) {
		t.Fatalf("left node must refuse even Depth>0 probes: %v", err)
	}
	if _, err := n.ImproveBids(trading.ImproveReq{RFBID: "rfb1"}); !errors.Is(err, trading.ErrDraining) {
		t.Fatalf("left node must refuse improvement rounds: %v", err)
	}
	if _, err := n.Execute(trading.ExecReq{OfferID: offers[0].OfferID, SQL: offers[0].SQL}); !trading.IsTransient(err) {
		t.Fatalf("left node's delivery refusal must stay transient for recovery: %v", err)
	}

	h := n.Health()
	if h.State != "left" || h.Ready || h.StandingRFBs != 0 {
		t.Fatalf("left health: %+v", h)
	}
	if n.Undrain() {
		t.Fatal("a left node must not come back under the same handle")
	}
	n.Drain("too late")
	if n.State() != trading.StateLeft {
		t.Fatalf("drain after leave must be a no-op, state %v", n.State())
	}
}

// Undrain restores full service, and lifecycle transitions land as
// membership events in the attached trading ledger.
func TestUndrainRestoresServiceAndLedgerAudit(t *testing.T) {
	n := myconosNode(t, nil)
	led := ledger.New(4)
	n.SetLedger(led)

	if n.Undrain() {
		t.Fatal("undraining an active node must report false")
	}
	n.Drain("scale-down")
	n.Drain("scale-down") // idempotent: one ledger event
	if h := n.Health(); h.State != "draining" || h.Ready {
		t.Fatalf("draining health: %+v", h)
	}
	if !n.Undrain() {
		t.Fatal("undrain must succeed from draining")
	}
	if offers, err := bidOffers(n.RequestBids(paperRFB())); err != nil || len(offers) == 0 {
		t.Fatalf("undrained node must price Depth-0 RFBs again: %v", err)
	}
	n.Leave("decommissioned")

	var kinds []string
	var reasons []string
	for _, e := range led.LifecycleEvents() {
		kinds = append(kinds, e.Kind)
		reasons = append(reasons, e.Reason)
	}
	want := []string{ledger.KindDrain, ledger.KindUndrain, ledger.KindLeave}
	if len(kinds) != len(want) {
		t.Fatalf("lifecycle events %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("lifecycle events %v, want %v", kinds, want)
		}
	}
	if reasons[0] != "scale-down" || reasons[2] != "decommissioned" {
		t.Fatalf("operator reasons lost: %v", reasons)
	}
}

// Quiesced tracks in-flight executions: a busy node is not quiesced, and
// Quiesce observes the moment the work finishes.
func TestQuiesceTracksInflightWork(t *testing.T) {
	n := myconosNode(t, nil)
	if !n.Quiesced() || !n.Quiesce(time.Millisecond) {
		t.Fatal("an idle node is quiesced")
	}
	n.active.Add(1)
	if n.Quiesced() || n.Quiesce(5*time.Millisecond) {
		t.Fatal("a node with an active execution is not quiesced")
	}
	done := make(chan bool)
	go func() { done <- n.Quiesce(2 * time.Second) }()
	time.Sleep(5 * time.Millisecond)
	n.active.Add(-1)
	if !<-done {
		t.Fatal("Quiesce must observe the execution finishing")
	}
}

// A draining node prices itself out: the load factor that LoadAwarePricing
// folds into margins carries a flat surcharge whenever the node is not
// Active, on top of the queue-depth term.
func TestLoadFactorDrainSurcharge(t *testing.T) {
	n := New(Config{ID: "n", Schema: telcoSchema(), Workers: 1})
	if f := n.loadFactor(); f != 0 {
		t.Fatalf("idle active load factor: %f", f)
	}
	n.Drain("operator")
	if f := n.loadFactor(); f != 4 {
		t.Fatalf("draining surcharge missing: %f", f)
	}
	n.queued.Add(2)
	if f := n.loadFactor(); f != 6 {
		t.Fatalf("queue depth must stack with the surcharge: %f", f)
	}
	n.queued.Add(-2)
	n.Undrain()
	if f := n.loadFactor(); f != 0 {
		t.Fatalf("surcharge must lift with the drain: %f", f)
	}
}

// Concurrent Drain/Undrain flips racing against RFB traffic: every request
// either succeeds or fails with the typed drain rejection, and the state
// machine lands in a legal state. Run under -race this also pins the
// lock-free lifecycle reads.
func TestConcurrentDrainUndrain(t *testing.T) {
	n := myconosNode(t, nil)
	var flippers, workers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		flippers.Add(1)
		go func() {
			defer flippers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n.Drain("churn")
				n.Undrain()
			}
		}()
	}
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 16; i++ {
				if _, err := n.RequestBids(paperRFB()); err != nil &&
					!errors.Is(err, trading.ErrDraining) {
					errs <- err
					return
				}
				_ = n.Health()
				_ = n.Quiesced()
			}
		}()
	}
	workers.Wait()
	close(stop)
	flippers.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request failed with a non-drain error under churn: %v", err)
	}
	n.Undrain()
	if st := n.State(); st != trading.StateActive && st != trading.StateDraining {
		t.Fatalf("illegal final state: %v", st)
	}
}
