// Package views implements answering-queries-using-materialized-views
// matching, the machinery behind the paper's seller predicates analyser
// (§3.5): when a node stores a materialized view whose definition subsumes a
// query the buyer asked for — same relations, weaker predicate, compatible
// (possibly coarser) grouping — the node can offer the view's contents at a
// much lower value than recomputing the query. The matcher is conservative:
// it only reports a match it can compensate exactly.
package views

import (
	"strings"

	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
)

// Match describes how a query can be answered from a materialized view.
type Match struct {
	View *storage.MaterializedView
	// Comp is the compensating query over the view: its FROM is the view
	// name, its WHERE/GROUP BY re-filter and re-aggregate view rows into the
	// query's answer.
	Comp *sqlparse.Select
	// ReAggregated reports whether the compensation re-aggregates (query
	// grouping coarser than the view's).
	ReAggregated bool
}

// MatchView reports whether view can answer q, returning the compensating
// query when it can.
func MatchView(q *sqlparse.Select, view *storage.MaterializedView) (*Match, bool) {
	vsel, err := sqlparse.ParseSelect(view.SQL)
	if err != nil {
		return nil, false
	}
	// 1. Relation sets must coincide (by table name, each used once).
	rename, ok := alignFrom(q, vsel)
	if !ok {
		return nil, false
	}
	qWhere := expr.RenameTables(q.Where, rename)

	// 2. Query predicate must imply the view predicate (view keeps a
	// superset of the query's rows).
	if !expr.Implies(qWhere, vsel.Where) {
		return nil, false
	}
	// Compensation keeps the query conjuncts not already guaranteed by the
	// view definition.
	var comp []expr.Expr
	vConj := map[string]bool{}
	for _, c := range expr.Conjuncts(vsel.Where) {
		vConj[c.String()] = true
	}
	for _, c := range expr.Conjuncts(qWhere) {
		if !vConj[c.String()] && !expr.Implies(expr.And([]expr.Expr{vsel.Where}), c) {
			comp = append(comp, c)
		}
	}

	out := newOutputMap(vsel, view)
	qAgg := q.HasAggregates() || len(q.GroupBy) > 0
	vAgg := vsel.HasAggregates() || len(vsel.GroupBy) > 0

	switch {
	case !qAgg && !vAgg:
		return matchSPJ(q, view, rename, comp, out)
	case qAgg && !vAgg:
		return matchAggOverSPJ(q, view, rename, comp, out)
	case qAgg && vAgg:
		return matchRollup(q, vsel, view, rename, comp, out)
	default: // view aggregated, query not: detail is lost
		return nil, false
	}
}

// BestMatches returns the matches of all stored views against q.
func BestMatches(q *sqlparse.Select, store *storage.Store) []*Match {
	var out []*Match
	for _, v := range store.Views() {
		if m, ok := MatchView(q, v); ok {
			out = append(out, m)
		}
	}
	return out
}

// alignFrom maps query bindings onto view bindings table-by-table. Both
// sides must reference the same set of table names, each exactly once.
func alignFrom(q, v *sqlparse.Select) (map[string]string, bool) {
	if len(q.From) != len(v.From) {
		return nil, false
	}
	vByTable := map[string]sqlparse.TableRef{}
	for _, tr := range v.From {
		key := strings.ToLower(tr.Name)
		if _, dup := vByTable[key]; dup {
			return nil, false // self-join views unsupported
		}
		vByTable[key] = tr
	}
	rename := map[string]string{}
	seen := map[string]bool{}
	for _, tr := range q.From {
		key := strings.ToLower(tr.Name)
		vt, ok := vByTable[key]
		if !ok || seen[key] {
			return nil, false
		}
		seen[key] = true
		rename[strings.ToLower(tr.Binding())] = vt.Binding()
	}
	return rename, true
}

// outputMap resolves view-namespace expressions to view output column names.
type outputMap struct {
	viewName string
	// byExpr maps the canonical string of a view select item's expression to
	// the output column name.
	byExpr map[string]string
}

func newOutputMap(vsel *sqlparse.Select, view *storage.MaterializedView) *outputMap {
	m := &outputMap{viewName: view.Name, byExpr: map[string]string{}}
	for i, it := range vsel.Items {
		if it.Star || it.Expr == nil {
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*expr.Column); ok {
				name = c.Name
			}
		}
		if name == "" && i < len(view.Columns) {
			name = view.Columns[i].Name
		}
		if name != "" {
			m.byExpr[it.Expr.String()] = name
		}
	}
	return m
}

// rewrite maps a view-namespace expression onto view output columns; ok is
// false when some subexpression is not available in the view output.
func (m *outputMap) rewrite(e expr.Expr) (expr.Expr, bool) {
	if e == nil {
		return nil, true
	}
	if name, hit := m.byExpr[e.String()]; hit {
		return expr.NewColumn("", name), true
	}
	switch t := e.(type) {
	case *expr.Lit:
		return expr.Clone(e), true
	case *expr.Binary:
		l, okl := m.rewrite(t.L)
		r, okr := m.rewrite(t.R)
		if !okl || !okr {
			return nil, false
		}
		return &expr.Binary{Op: t.Op, L: l, R: r}, true
	case *expr.Unary:
		x, ok := m.rewrite(t.X)
		if !ok {
			return nil, false
		}
		return &expr.Unary{Op: t.Op, X: x}, true
	case *expr.In:
		x, ok := m.rewrite(t.X)
		if !ok {
			return nil, false
		}
		list := make([]expr.Expr, len(t.List))
		for i, item := range t.List {
			li, ok := m.rewrite(item)
			if !ok {
				return nil, false
			}
			list[i] = li
		}
		return &expr.In{X: x, List: list, Not: t.Not}, true
	case *expr.Between:
		x, okx := m.rewrite(t.X)
		lo, okl := m.rewrite(t.Lo)
		hi, okh := m.rewrite(t.Hi)
		if !okx || !okl || !okh {
			return nil, false
		}
		return &expr.Between{X: x, Lo: lo, Hi: hi, Not: t.Not}, true
	case *expr.IsNull:
		x, ok := m.rewrite(t.X)
		if !ok {
			return nil, false
		}
		return &expr.IsNull{X: x, Not: t.Not}, true
	}
	return nil, false
}

// matchSPJ compensates a select-project-join query from an SPJ view.
func matchSPJ(q *sqlparse.Select, view *storage.MaterializedView, rename map[string]string, comp []expr.Expr, out *outputMap) (*Match, bool) {
	sel := &sqlparse.Select{Limit: q.Limit, Distinct: q.Distinct,
		From: []sqlparse.TableRef{{Name: view.Name}}}
	for _, it := range q.Items {
		if it.Star {
			return nil, false
		}
		e, ok := out.rewrite(expr.RenameTables(it.Expr, rename))
		if !ok {
			return nil, false
		}
		alias := it.Alias
		if alias == "" {
			if c, okc := it.Expr.(*expr.Column); okc {
				alias = c.Name
			}
		}
		sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: e, Alias: alias})
	}
	w, ok := rewriteAll(out, comp)
	if !ok {
		return nil, false
	}
	sel.Where = w
	for _, ob := range q.OrderBy {
		e, ok := out.rewrite(expr.RenameTables(ob.Expr, rename))
		if !ok {
			return nil, false
		}
		sel.OrderBy = append(sel.OrderBy, sqlparse.OrderItem{Expr: e, Desc: ob.Desc})
	}
	return &Match{View: view, Comp: sel}, true
}

// matchAggOverSPJ aggregates an SPJ view into the query's groups.
func matchAggOverSPJ(q *sqlparse.Select, view *storage.MaterializedView, rename map[string]string, comp []expr.Expr, out *outputMap) (*Match, bool) {
	sel := &sqlparse.Select{Limit: q.Limit, From: []sqlparse.TableRef{{Name: view.Name}}}
	for _, it := range q.Items {
		if it.Star {
			return nil, false
		}
		e, ok := rewriteWithAggs(out, expr.RenameTables(it.Expr, rename))
		if !ok {
			return nil, false
		}
		sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: e, Alias: it.Alias})
	}
	w, ok := rewriteAll(out, comp)
	if !ok {
		return nil, false
	}
	sel.Where = w
	for _, g := range q.GroupBy {
		e, ok := out.rewrite(expr.RenameTables(g, rename))
		if !ok {
			return nil, false
		}
		sel.GroupBy = append(sel.GroupBy, e)
	}
	if q.Having != nil {
		h, ok := rewriteWithAggs(out, expr.RenameTables(q.Having, rename))
		if !ok {
			return nil, false
		}
		sel.Having = h
	}
	return &Match{View: view, Comp: sel, ReAggregated: true}, true
}

// rewriteWithAggs rewrites an expression that may contain aggregates whose
// arguments must map to view output columns.
func rewriteWithAggs(out *outputMap, e expr.Expr) (expr.Expr, bool) {
	switch t := e.(type) {
	case *expr.Agg:
		if t.Star {
			return &expr.Agg{Fn: t.Fn, Star: true}, true
		}
		arg, ok := out.rewrite(t.Arg)
		if !ok {
			return nil, false
		}
		return &expr.Agg{Fn: t.Fn, Arg: arg, Distinct: t.Distinct}, true
	case *expr.Binary:
		l, okl := rewriteWithAggs(out, t.L)
		r, okr := rewriteWithAggs(out, t.R)
		if !okl || !okr {
			return nil, false
		}
		return &expr.Binary{Op: t.Op, L: l, R: r}, true
	case *expr.Unary:
		x, ok := rewriteWithAggs(out, t.X)
		if !ok {
			return nil, false
		}
		return &expr.Unary{Op: t.Op, X: x}, true
	}
	return out.rewrite(e)
}

// matchRollup compensates an aggregate query from an aggregated view whose
// grouping is at least as fine as the query's.
func matchRollup(q, vsel *sqlparse.Select, view *storage.MaterializedView, rename map[string]string, comp []expr.Expr, out *outputMap) (*Match, bool) {
	// Every query group expression must be one of the view's group
	// expressions and be available in the view output.
	vGroups := map[string]bool{}
	for _, g := range vsel.GroupBy {
		vGroups[g.String()] = true
	}
	var qGroupsOut []expr.Expr
	for _, g := range q.GroupBy {
		rg := expr.RenameTables(g, rename)
		if !vGroups[rg.String()] {
			return nil, false
		}
		e, ok := out.rewrite(rg)
		if !ok {
			return nil, false
		}
		qGroupsOut = append(qGroupsOut, e)
	}
	exact := len(q.GroupBy) == len(vsel.GroupBy)
	// Compensation predicates may only touch group columns (finer detail is
	// gone).
	w, ok := rewriteAll(out, comp)
	if !ok {
		return nil, false
	}

	sel := &sqlparse.Select{Limit: q.Limit, From: []sqlparse.TableRef{{Name: view.Name}}, Where: w}
	sel.GroupBy = qGroupsOut
	reAgg := !exact

	for _, it := range q.Items {
		if it.Star {
			return nil, false
		}
		e, ok := deriveAgg(out, expr.RenameTables(it.Expr, rename), exact)
		if !ok {
			return nil, false
		}
		sel.Items = append(sel.Items, sqlparse.SelectItem{Expr: e, Alias: it.Alias})
	}
	if q.Having != nil {
		h, ok := deriveAgg(out, expr.RenameTables(q.Having, rename), exact)
		if !ok {
			return nil, false
		}
		sel.Having = h
	}
	if exact {
		// Same grouping: no re-aggregation, plain projection of view rows.
		sel.GroupBy = nil
	}
	return &Match{View: view, Comp: sel, ReAggregated: reAgg}, true
}

// deriveAgg maps a (possibly aggregate) query expression onto an aggregated
// view: SUM(x) -> SUM(sum_x), COUNT(*) -> SUM(cnt), MIN/MAX -> MIN/MAX of
// the stored extreme. With exact grouping the stored value is used directly.
func deriveAgg(out *outputMap, e expr.Expr, exact bool) (expr.Expr, bool) {
	switch t := e.(type) {
	case *expr.Agg:
		stored, hit := out.byExpr[t.String()]
		if !hit {
			return nil, false
		}
		col := expr.NewColumn("", stored)
		if exact {
			return col, true
		}
		switch t.Fn {
		case "SUM", "COUNT":
			if t.Distinct {
				return nil, false // DISTINCT aggregates do not roll up
			}
			return &expr.Agg{Fn: "SUM", Arg: col}, true
		case "MIN", "MAX":
			return &expr.Agg{Fn: t.Fn, Arg: col}, true
		}
		return nil, false // AVG does not roll up without SUM+COUNT
	case *expr.Binary:
		l, okl := deriveAgg(out, t.L, exact)
		r, okr := deriveAgg(out, t.R, exact)
		if !okl || !okr {
			return nil, false
		}
		return &expr.Binary{Op: t.Op, L: l, R: r}, true
	case *expr.Unary:
		x, ok := deriveAgg(out, t.X, exact)
		if !ok {
			return nil, false
		}
		return &expr.Unary{Op: t.Op, X: x}, true
	}
	return out.rewrite(e)
}

func rewriteAll(out *outputMap, conj []expr.Expr) (expr.Expr, bool) {
	var mapped []expr.Expr
	for _, c := range conj {
		e, ok := out.rewrite(c)
		if !ok {
			return nil, false
		}
		mapped = append(mapped, e)
	}
	return expr.And(mapped), true
}
