package views

import (
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

// TestAliasIndependence: the query and the view may use entirely different
// aliases for the same tables; matching goes by table name.
func TestAliasIndependence(t *testing.T) {
	v := &storage.MaterializedView{
		Name: "vt",
		SQL: `SELECT cust.office, SUM(lines.charge) AS total
		      FROM customer cust, invoiceline lines
		      WHERE cust.custid = lines.custid GROUP BY cust.office`,
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "total", Kind: value.Float},
		},
	}
	q := sqlparse.MustParseSelect(`SELECT a.office, SUM(b.charge) AS total
		FROM customer a, invoiceline b WHERE a.custid = b.custid GROUP BY a.office`)
	m, ok := MatchView(q, v)
	if !ok {
		t.Fatal("alias-renamed query must match")
	}
	if m.ReAggregated {
		t.Fatal("exact grouping, no re-aggregation")
	}
	if !strings.Contains(m.Comp.SQL(), "FROM vt") {
		t.Fatalf("compensation: %s", m.Comp.SQL())
	}
}

func TestSelfJoinViewRejected(t *testing.T) {
	v := &storage.MaterializedView{
		Name: "selfjoin",
		SQL:  "SELECT a.custid FROM customer a, customer b WHERE a.custid = b.custid",
		Columns: []catalog.ColumnDef{
			{Name: "custid", Kind: value.Int},
		},
	}
	q := sqlparse.MustParseSelect(
		"SELECT a.custid FROM customer a, customer b WHERE a.custid = b.custid")
	if _, ok := MatchView(q, v); ok {
		t.Fatal("self-join views are out of scope and must be rejected")
	}
}

func TestViewWithExtraPredicateColumnInOutput(t *testing.T) {
	// The view keeps charge in its output, so compensation predicates on
	// charge are expressible even though the view filtered on it too.
	v := &storage.MaterializedView{
		Name: "big",
		SQL:  "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 5",
		Columns: []catalog.ColumnDef{
			{Name: "invid", Kind: value.Int},
			{Name: "charge", Kind: value.Float},
		},
	}
	q := sqlparse.MustParseSelect(
		"SELECT i.invid FROM invoiceline i WHERE i.charge > 5 AND i.charge < 100 AND i.invid <> 3")
	m, ok := MatchView(q, v)
	if !ok {
		t.Fatal("must match with compensation")
	}
	sql := m.Comp.SQL()
	if !strings.Contains(sql, "charge < 100") || !strings.Contains(sql, "invid <> 3") {
		t.Fatalf("compensation predicates missing: %s", sql)
	}
	if strings.Contains(sql, "charge > 5") {
		t.Fatalf("already-guaranteed predicate must not be re-applied: %s", sql)
	}
}

func TestOrderByThroughView(t *testing.T) {
	v := &storage.MaterializedView{
		Name: "plain",
		SQL:  "SELECT i.invid, i.charge FROM invoiceline i",
		Columns: []catalog.ColumnDef{
			{Name: "invid", Kind: value.Int},
			{Name: "charge", Kind: value.Float},
		},
	}
	q := sqlparse.MustParseSelect(
		"SELECT i.invid FROM invoiceline i ORDER BY i.charge DESC LIMIT 3")
	m, ok := MatchView(q, v)
	if !ok {
		t.Fatal("must match")
	}
	if len(m.Comp.OrderBy) != 1 || !m.Comp.OrderBy[0].Desc || m.Comp.Limit != 3 {
		t.Fatalf("order/limit must survive: %s", m.Comp.SQL())
	}
}

func TestGroupColumnMissingFromViewOutput(t *testing.T) {
	// The view groups by (office, custid) but only exposes office: rollup
	// by custid is impossible.
	v := &storage.MaterializedView{
		Name: "narrowagg",
		SQL: `SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
		      WHERE c.custid = i.custid GROUP BY c.office, c.custid`,
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "total", Kind: value.Float},
		},
	}
	q := sqlparse.MustParseSelect(`SELECT c.custid, SUM(i.charge) AS t FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.custid`)
	if _, ok := MatchView(q, v); ok {
		t.Fatal("group column missing from view output must reject")
	}
}
