package views

import (
	"sort"
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

// aggView is a per-(office, custid) totals view, finer than queries grouping
// by office alone — the paper's §3.5 example shape.
func aggView() *storage.MaterializedView {
	return &storage.MaterializedView{
		Name: "officecusttotals",
		SQL: `SELECT c.office, c.custid, SUM(i.charge) AS total, COUNT(*) AS cnt
		      FROM customer c, invoiceline i WHERE c.custid = i.custid
		      GROUP BY c.office, c.custid`,
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "custid", Kind: value.Int},
			{Name: "total", Kind: value.Float},
			{Name: "cnt", Kind: value.Int},
		},
		Rows: []value.Row{
			{value.NewStr("Corfu"), value.NewInt(1), value.NewFloat(15), value.NewInt(2)},
			{value.NewStr("Corfu"), value.NewInt(2), value.NewFloat(7), value.NewInt(1)},
			{value.NewStr("Myconos"), value.NewInt(3), value.NewFloat(20), value.NewInt(1)},
		},
	}
}

func spjView() *storage.MaterializedView {
	return &storage.MaterializedView{
		Name: "bigcharges",
		SQL: `SELECT i.invid, i.custid, i.charge FROM invoiceline i
		      WHERE i.charge > 5`,
		Columns: []catalog.ColumnDef{
			{Name: "invid", Kind: value.Int},
			{Name: "custid", Kind: value.Int},
			{Name: "charge", Kind: value.Float},
		},
		Rows: []value.Row{
			{value.NewInt(100), value.NewInt(1), value.NewFloat(10)},
			{value.NewInt(101), value.NewInt(2), value.NewFloat(7)},
			{value.NewInt(102), value.NewInt(3), value.NewFloat(20)},
		},
	}
}

func runComp(t *testing.T, st *storage.Store, m *Match) []string {
	t.Helper()
	v := st.View(m.View.Name)
	cols := make([]expr.ColumnID, len(v.Columns))
	for i, c := range v.Columns {
		cols[i] = expr.ColumnID{Table: m.View.Name, Name: c.Name}
	}
	var node plan.Node = &plan.ViewScan{Name: v.Name, Cols: cols}
	if m.Comp.Where != nil {
		node = &plan.Filter{Input: node, Pred: expr.Clone(m.Comp.Where)}
	}
	p, err := plan.FinalizeSelect(m.Comp, node)
	if err != nil {
		t.Fatalf("finalize compensation: %v\n%s", err, m.Comp.SQL())
	}
	ex := &exec.Executor{Store: st}
	res, err := ex.Run(p)
	if err != nil {
		t.Fatalf("run compensation: %v", err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		idx := make([]int, len(r))
		for j := range idx {
			idx[j] = j
		}
		out[i] = value.Key(r, idx)
	}
	sort.Strings(out)
	return out
}

func TestRollupCoarserGrouping(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office`)
	m, ok := MatchView(q, st.View("officecusttotals"))
	if !ok {
		t.Fatal("rollup must match")
	}
	if !m.ReAggregated {
		t.Fatal("coarser grouping must re-aggregate")
	}
	sql := m.Comp.SQL()
	if !strings.Contains(sql, "SUM(total)") {
		t.Fatalf("SUM must roll up over stored total: %s", sql)
	}
	rows := runComp(t, st, m)
	// Corfu: 15+7=22, Myconos: 20.
	if len(rows) != 2 {
		t.Fatalf("rollup rows: %v", rows)
	}
	joined := strings.Join(rows, "|")
	if !strings.Contains(joined, "Corfu") || !strings.Contains(joined, "22") || !strings.Contains(joined, "20") {
		t.Fatalf("rollup values: %v", rows)
	}
}

func TestRollupCountStarBecomesSum(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, COUNT(*) AS n FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office`)
	m, ok := MatchView(q, st.View("officecusttotals"))
	if !ok {
		t.Fatal("count rollup must match")
	}
	if !strings.Contains(m.Comp.SQL(), "SUM(cnt)") {
		t.Fatalf("COUNT(*) must become SUM(cnt): %s", m.Comp.SQL())
	}
	rows := runComp(t, st, m)
	if !strings.Contains(strings.Join(rows, "|"), "3") {
		t.Fatalf("corfu count must be 3: %v", rows)
	}
}

func TestExactGroupingNoReaggregation(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, c.custid, SUM(i.charge) AS total FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office, c.custid`)
	m, ok := MatchView(q, st.View("officecusttotals"))
	if !ok {
		t.Fatal("exact grouping must match")
	}
	if m.ReAggregated {
		t.Fatal("same grouping requires no re-aggregation")
	}
	rows := runComp(t, st, m)
	if len(rows) != 3 {
		t.Fatalf("exact rows: %v", rows)
	}
}

func TestCompensationPredicateOnGroupColumn(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
		GROUP BY c.office`)
	m, ok := MatchView(q, st.View("officecusttotals"))
	if !ok {
		t.Fatal("restricted rollup must match")
	}
	if !strings.Contains(m.Comp.SQL(), "IN ('Corfu', 'Myconos')") {
		t.Fatalf("compensation predicate missing: %s", m.Comp.SQL())
	}
}

func TestViewAggQueryDetailRejected(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT i.invid FROM customer c, invoiceline i WHERE c.custid = i.custid`)
	if _, ok := MatchView(q, st.View("officecusttotals")); ok {
		t.Fatal("detail query cannot be answered from aggregate view")
	}
}

func TestPredicateContainment(t *testing.T) {
	v := spjView()
	// Query asks for a subset of the view rows: charge > 8 implies charge > 5.
	q := sqlparse.MustParseSelect("SELECT i.invid FROM invoiceline i WHERE i.charge > 8")
	m, ok := MatchView(q, v)
	if !ok {
		t.Fatal("contained predicate must match")
	}
	if !strings.Contains(m.Comp.SQL(), "charge > 8") {
		t.Fatalf("compensation must re-filter: %s", m.Comp.SQL())
	}
	// Query asks for rows the view lost: charge > 2 does not imply charge > 5.
	q2 := sqlparse.MustParseSelect("SELECT i.invid FROM invoiceline i WHERE i.charge > 2")
	if _, ok := MatchView(q2, v); ok {
		t.Fatal("wider predicate must not match")
	}
}

func TestSPJCompensationRuns(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(spjView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect("SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 8")
	m, ok := MatchView(q, st.View("bigcharges"))
	if !ok {
		t.Fatal("must match")
	}
	rows := runComp(t, st, m)
	if len(rows) != 2 {
		t.Fatalf("compensated rows: %v", rows)
	}
}

func TestAggOverSPJView(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(spjView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT i.custid, SUM(i.charge) AS s FROM invoiceline i
		WHERE i.charge > 5 GROUP BY i.custid`)
	m, ok := MatchView(q, st.View("bigcharges"))
	if !ok {
		t.Fatal("aggregate over SPJ view must match")
	}
	if !m.ReAggregated {
		t.Fatal("must aggregate view rows")
	}
	rows := runComp(t, st, m)
	if len(rows) != 3 {
		t.Fatalf("agg rows: %v", rows)
	}
}

func TestFromSetMismatchRejected(t *testing.T) {
	v := spjView()
	q := sqlparse.MustParseSelect(
		"SELECT c.custid FROM customer c, invoiceline i WHERE c.custid = i.custid")
	if _, ok := MatchView(q, v); ok {
		t.Fatal("different FROM sets must not match")
	}
	q2 := sqlparse.MustParseSelect("SELECT c.custid FROM customer c")
	if _, ok := MatchView(q2, v); ok {
		t.Fatal("different table must not match")
	}
}

func TestMissingOutputColumnRejected(t *testing.T) {
	v := &storage.MaterializedView{
		Name: "narrow",
		SQL:  "SELECT i.invid FROM invoiceline i",
		Columns: []catalog.ColumnDef{
			{Name: "invid", Kind: value.Int},
		},
	}
	q := sqlparse.MustParseSelect("SELECT i.charge FROM invoiceline i")
	if _, ok := MatchView(q, v); ok {
		t.Fatal("column not in view output must reject")
	}
}

func TestDistinctAggregateDoesNotRollUp(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, SUM(DISTINCT i.charge) AS total FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office`)
	if _, ok := MatchView(q, st.View("officecusttotals")); ok {
		t.Fatal("DISTINCT aggregates must not roll up")
	}
}

func TestAvgDoesNotRollUpToCoarserGroups(t *testing.T) {
	v := &storage.MaterializedView{
		Name: "avgview",
		SQL: `SELECT c.office, c.custid, AVG(i.charge) AS a FROM customer c, invoiceline i
		      WHERE c.custid = i.custid GROUP BY c.office, c.custid`,
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "custid", Kind: value.Int},
			{Name: "a", Kind: value.Float},
		},
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, AVG(i.charge) AS a FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office`)
	if _, ok := MatchView(q, v); ok {
		t.Fatal("AVG must not roll up")
	}
	// But exact grouping is fine.
	q2 := sqlparse.MustParseSelect(`
		SELECT c.office, c.custid, AVG(i.charge) AS a FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office, c.custid`)
	if _, ok := MatchView(q2, v); !ok {
		t.Fatal("exact AVG grouping must match")
	}
}

func TestBestMatches(t *testing.T) {
	st := storage.NewStore()
	if err := st.AddView(aggView()); err != nil {
		t.Fatal(err)
	}
	if err := st.AddView(spjView()); err != nil {
		t.Fatal(err)
	}
	q := sqlparse.MustParseSelect(`
		SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
		WHERE c.custid = i.custid GROUP BY c.office`)
	ms := BestMatches(q, st)
	if len(ms) != 1 || ms[0].View.Name != "officecusttotals" {
		t.Fatalf("matches: %d", len(ms))
	}
}

func TestUnparseableViewIgnored(t *testing.T) {
	v := &storage.MaterializedView{Name: "broken", SQL: "NOT SQL AT ALL"}
	q := sqlparse.MustParseSelect("SELECT i.invid FROM invoiceline i")
	if _, ok := MatchView(q, v); ok {
		t.Fatal("broken view definition must not match")
	}
}
