package plan

import (
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/value"
)

var custDef = &catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
	{Name: "custid", Kind: value.Int},
	{Name: "office", Kind: value.Str},
}}

func TestScanNode(t *testing.T) {
	s := &Scan{Def: custDef, Alias: "c", PartID: "p1", Pred: sqlparse.MustParseExpr("office = 'X'")}
	schema := s.Schema()
	if len(schema) != 2 || schema[0].Table != "c" || schema[0].Name != "custid" {
		t.Fatalf("schema: %+v", schema)
	}
	if s.Children() != nil {
		t.Fatal("scan is a leaf")
	}
	if !strings.Contains(s.Describe(), "customer/p1") || !strings.Contains(s.Describe(), "filter") {
		t.Fatalf("describe: %s", s.Describe())
	}
}

func TestJoinSchemaConcat(t *testing.T) {
	j := &Join{
		L: &Scan{Def: custDef, Alias: "a", PartID: "p0"},
		R: &Scan{Def: custDef, Alias: "b", PartID: "p0"},
	}
	if len(j.Schema()) != 4 {
		t.Fatalf("join schema: %+v", j.Schema())
	}
	if j.Describe() != "CrossJoin" {
		t.Fatalf("cross describe: %s", j.Describe())
	}
	j.On = sqlparse.MustParseExpr("a.custid = b.custid")
	if !strings.Contains(j.Describe(), "Join on") {
		t.Fatalf("describe: %s", j.Describe())
	}
}

func TestAggregateSchema(t *testing.T) {
	a := &Aggregate{
		Input:      &Scan{Def: custDef, Alias: "c", PartID: "p0"},
		GroupBy:    []expr.Expr{sqlparse.MustParseExpr("c.office")},
		GroupNames: []expr.ColumnID{{Table: "c", Name: "office"}},
		Aggs: []AggItem{
			{Agg: &expr.Agg{Fn: "COUNT", Star: true}, Name: expr.ColumnID{Name: "n"}},
		},
	}
	schema := a.Schema()
	if len(schema) != 2 || schema[1].Name != "n" {
		t.Fatalf("agg schema: %+v", schema)
	}
	if !strings.Contains(a.Describe(), "COUNT(*)") {
		t.Fatalf("describe: %s", a.Describe())
	}
}

func TestWrapperNodes(t *testing.T) {
	scan := &Scan{Def: custDef, Alias: "c", PartID: "p0"}
	f := &Filter{Input: scan, Pred: sqlparse.MustParseExpr("c.custid > 1")}
	p := &Project{Input: f, Exprs: []expr.Expr{sqlparse.MustParseExpr("c.custid")}, Names: []expr.ColumnID{{Name: "id"}}}
	srt := &Sort{Input: p, Keys: []SortKey{{Expr: sqlparse.MustParseExpr("id"), Desc: true}}}
	lim := &Limit{Input: srt, N: 5}
	d := &Distinct{Input: lim}
	if len(d.Schema()) != 1 || d.Schema()[0].Name != "id" {
		t.Fatalf("pipeline schema: %+v", d.Schema())
	}
	for _, n := range []Node{f, p, srt, lim, d} {
		if len(n.Children()) != 1 {
			t.Fatalf("%T children", n)
		}
		if n.Describe() == "" {
			t.Fatalf("%T describe empty", n)
		}
	}
	if !strings.Contains(srt.Describe(), "DESC") {
		t.Fatalf("sort describe: %s", srt.Describe())
	}
}

func TestUnionAndRemote(t *testing.T) {
	r1 := &Remote{NodeID: "n1", SQL: "SELECT 1", Cols: []expr.ColumnID{{Name: "x"}}, EstRows: 10, EstCost: 1.5}
	r2 := &Remote{NodeID: "n2", SQL: "SELECT 2", Cols: []expr.ColumnID{{Name: "x"}}}
	u := &Union{Inputs: []Node{r1, r2}}
	if len(u.Schema()) != 1 {
		t.Fatalf("union schema: %+v", u.Schema())
	}
	if (&Union{}).Schema() != nil {
		t.Fatal("empty union schema must be nil")
	}
	if !strings.Contains(r1.Describe(), "Remote[n1]") || !strings.Contains(r1.Describe(), "1.5") {
		t.Fatalf("remote describe: %s", r1.Describe())
	}
	if got := Remotes(u); len(got) != 2 || got[0].NodeID != "n1" {
		t.Fatalf("remotes: %+v", got)
	}
	if CountNodes(u) != 3 {
		t.Fatalf("count: %d", CountNodes(u))
	}
}

func TestViewScanNode(t *testing.T) {
	v := &ViewScan{Name: "totals", Cols: []expr.ColumnID{{Name: "x"}}, Pred: sqlparse.MustParseExpr("x > 1")}
	if len(v.Schema()) != 1 || v.Children() != nil {
		t.Fatal("view scan shape")
	}
	if !strings.Contains(v.Describe(), "totals") || !strings.Contains(v.Describe(), "filter") {
		t.Fatalf("describe: %s", v.Describe())
	}
}

func TestExplainIndentation(t *testing.T) {
	tree := &Filter{
		Input: &Join{
			L: &Scan{Def: custDef, Alias: "a", PartID: "p0"},
			R: &Scan{Def: custDef, Alias: "b", PartID: "p0"},
		},
		Pred: sqlparse.MustParseExpr("a.custid = b.custid"),
	}
	out := Explain(tree)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("explain lines: %v", lines)
	}
	if !strings.HasPrefix(lines[1], "  ") || !strings.HasPrefix(lines[2], "    ") {
		t.Fatalf("indentation:\n%s", out)
	}
}

func TestFinalizeSelectProjectionNames(t *testing.T) {
	sel := sqlparse.MustParseSelect("SELECT c.custid AS id, c.custid + 1 FROM customer c")
	p, err := FinalizeSelect(sel, &Scan{Def: custDef, Alias: "c", PartID: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	schema := p.Schema()
	if schema[0].Name != "id" {
		t.Fatalf("alias name: %+v", schema[0])
	}
	if schema[1].Name != "_col1" {
		t.Fatalf("synth name: %+v", schema[1])
	}
}

func TestFinalizeSelectEmptySelectList(t *testing.T) {
	sel := &sqlparse.Select{Limit: -1}
	if _, err := FinalizeSelect(sel, &Scan{Def: custDef, Alias: "c", PartID: "p0"}); err == nil {
		t.Fatal("empty select list must error")
	}
}

func TestFinalizeOrderByHiddenColumn(t *testing.T) {
	// ORDER BY a non-projected column: the key rides along hidden and the
	// final schema shows only the select list.
	sel := sqlparse.MustParseSelect("SELECT c.office FROM customer c ORDER BY c.custid DESC")
	p, err := FinalizeSelect(sel, &Scan{Def: custDef, Alias: "c", PartID: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Schema(); len(got) != 1 || got[0].Name != "office" {
		t.Fatalf("hidden column leaked: %+v", got)
	}
	if !strings.Contains(Explain(p), "_ord0") {
		t.Fatalf("expected hidden sort column:\n%s", Explain(p))
	}
}

func TestFinalizeDistinctOrderByNonProjectedRejected(t *testing.T) {
	sel := sqlparse.MustParseSelect("SELECT DISTINCT c.office FROM customer c ORDER BY c.custid")
	if _, err := FinalizeSelect(sel, &Scan{Def: custDef, Alias: "c", PartID: "p0"}); err == nil {
		t.Fatal("DISTINCT with non-projected ORDER BY must be rejected")
	}
}

func TestFinalizeGroupByExpression(t *testing.T) {
	// Grouping by an expression (not a plain column) gets a synthetic name.
	sel := sqlparse.MustParseSelect("SELECT c.custid % 2, COUNT(*) FROM customer c GROUP BY c.custid % 2")
	p, err := FinalizeSelect(sel, &Scan{Def: custDef, Alias: "c", PartID: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Schema(); len(got) != 2 {
		t.Fatalf("schema: %+v", got)
	}
}
