// Package plan defines the operator trees shared by the local optimizers,
// the buyer plan generator and the executor. A plan combines local operators
// (scan, filter, project, join, aggregate, sort, union) with Remote nodes,
// which stand for query-answers purchased from other federation nodes during
// trading — the executor resolves them by actually fetching the answer.
package plan

import (
	"fmt"
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
)

// Node is one operator of a plan tree. Expressions held by nodes are
// unbound; the executor binds them against child schemas when it runs the
// plan, so plans can be freely rewritten and shipped.
type Node interface {
	// Schema lists the output columns in order.
	Schema() []expr.ColumnID
	// Children returns input operators.
	Children() []Node
	// Describe renders a one-line operator summary for EXPLAIN output.
	Describe() string
}

// Card is an optional estimated-cardinality annotation embedded in the
// operator structs. The buyer plan generator stamps it on operators as it
// assembles candidates (a plain field store, so the DP hot path pays no
// side-table cost) and EXPLAIN ANALYZE reads it back to print estimates
// next to actuals. Zero means "not annotated".
type Card struct {
	// Est is the estimated number of output rows (0 = unknown).
	Est int64
}

func (c *Card) card() *Card { return c }

type carded interface{ card() *Card }

// SetEst stamps the row estimate on n when its operator type carries a Card.
func SetEst(n Node, rows int64) {
	if c, ok := n.(carded); ok {
		c.card().Est = rows
	}
}

// EstOf reads n's row estimate; ok is false when n is un-annotated. Remote
// nodes always know theirs (the seller's offered cardinality).
func EstOf(n Node) (rows int64, ok bool) {
	if r, isRemote := n.(*Remote); isRemote {
		return r.EstRows, true
	}
	if c, isCarded := n.(carded); isCarded && c.card().Est != 0 {
		return c.card().Est, true
	}
	return 0, false
}

// Scan reads one fragment of a table, exposing columns under Alias.
type Scan struct {
	Card
	Def    *catalog.TableDef
	Alias  string
	PartID string
	Pred   expr.Expr // optional pushed-down filter
}

// Schema implements Node.
func (s *Scan) Schema() []expr.ColumnID { return s.Def.ColumnIDs(s.Alias) }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	out := fmt.Sprintf("Scan %s/%s as %s", s.Def.Name, s.PartID, s.Alias)
	if s.Pred != nil {
		out += " filter " + s.Pred.String()
	}
	return out
}

// Filter drops rows not satisfying Pred.
type Filter struct {
	Card
	Input Node
	Pred  expr.Expr
}

func (f *Filter) Schema() []expr.ColumnID { return f.Input.Schema() }
func (f *Filter) Children() []Node        { return []Node{f.Input} }
func (f *Filter) Describe() string        { return "Filter " + f.Pred.String() }

// Project computes output expressions. Names supplies the exposed column
// identities (same length as Exprs).
type Project struct {
	Card
	Input Node
	Exprs []expr.Expr
	Names []expr.ColumnID
}

func (p *Project) Schema() []expr.ColumnID { return p.Names }
func (p *Project) Children() []Node        { return []Node{p.Input} }
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Join combines two inputs on a predicate. When every conjunct of On is an
// equality between one left and one right column the executor uses a hash
// join, otherwise nested loops. A nil On is a cross product.
type Join struct {
	Card
	L, R Node
	On   expr.Expr
}

func (j *Join) Schema() []expr.ColumnID {
	return append(append([]expr.ColumnID{}, j.L.Schema()...), j.R.Schema()...)
}
func (j *Join) Children() []Node { return []Node{j.L, j.R} }
func (j *Join) Describe() string {
	if j.On == nil {
		return "CrossJoin"
	}
	return "Join on " + j.On.String()
}

// AggItem is one aggregate computed by an Aggregate node.
type AggItem struct {
	Agg  *expr.Agg
	Name expr.ColumnID
}

// Aggregate groups by the GroupBy expressions and computes Aggs per group.
// Output schema is [group columns..., aggregate columns...]. GroupNames
// supplies identities for the group columns.
type Aggregate struct {
	Card
	Input      Node
	GroupBy    []expr.Expr
	GroupNames []expr.ColumnID
	Aggs       []AggItem
}

func (a *Aggregate) Schema() []expr.ColumnID {
	out := append([]expr.ColumnID{}, a.GroupNames...)
	for _, it := range a.Aggs {
		out = append(out, it.Name)
	}
	return out
}
func (a *Aggregate) Children() []Node { return []Node{a.Input} }
func (a *Aggregate) Describe() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	var aggs []string
	for _, it := range a.Aggs {
		aggs = append(aggs, it.Agg.String())
	}
	return "Aggregate [" + strings.Join(parts, ", ") + "] " + strings.Join(aggs, ", ")
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort orders rows by Keys.
type Sort struct {
	Card
	Input Node
	Keys  []SortKey
}

func (s *Sort) Schema() []expr.ColumnID { return s.Input.Schema() }
func (s *Sort) Children() []Node        { return []Node{s.Input} }
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit passes at most N rows.
type Limit struct {
	Card
	Input Node
	N     int64
}

func (l *Limit) Schema() []expr.ColumnID { return l.Input.Schema() }
func (l *Limit) Children() []Node        { return []Node{l.Input} }
func (l *Limit) Describe() string        { return fmt.Sprintf("Limit %d", l.N) }

// Distinct removes duplicate rows.
type Distinct struct {
	Card
	Input Node
}

func (d *Distinct) Schema() []expr.ColumnID { return d.Input.Schema() }
func (d *Distinct) Children() []Node        { return []Node{d.Input} }
func (d *Distinct) Describe() string        { return "Distinct" }

// Union concatenates inputs (schemas must be union-compatible by position).
// When All is false a Distinct must be applied by the builder; Union itself
// always behaves as UNION ALL.
type Union struct {
	Card
	Inputs []Node
}

func (u *Union) Schema() []expr.ColumnID {
	if len(u.Inputs) == 0 {
		return nil
	}
	return u.Inputs[0].Schema()
}
func (u *Union) Children() []Node { return u.Inputs }
func (u *Union) Describe() string { return fmt.Sprintf("UnionAll (%d inputs)", len(u.Inputs)) }

// Remote is a purchased query-answer: the named seller node evaluates SQL
// and ships the result. Cols is the result schema the buyer exposes to the
// rest of the plan (qualified by Binding). The Est* fields carry the seller's
// offered properties for cost accounting and EXPLAIN.
type Remote struct {
	NodeID  string
	SQL     string
	Binding string
	Cols    []expr.ColumnID
	EstRows int64
	EstCost float64
	OfferID string
}

func (r *Remote) Schema() []expr.ColumnID { return r.Cols }
func (r *Remote) Children() []Node        { return nil }
func (r *Remote) Describe() string {
	return fmt.Sprintf("Remote[%s] cost=%.1f rows=%d: %s", r.NodeID, r.EstCost, r.EstRows, r.SQL)
}

// ViewScan reads a locally stored materialized view.
type ViewScan struct {
	Card
	Name string
	Cols []expr.ColumnID
	Pred expr.Expr
}

func (v *ViewScan) Schema() []expr.ColumnID { return v.Cols }
func (v *ViewScan) Children() []Node        { return nil }
func (v *ViewScan) Describe() string {
	out := "ViewScan " + v.Name
	if v.Pred != nil {
		out += " filter " + v.Pred.String()
	}
	return out
}

// Explain renders the tree as an indented multi-line string.
func Explain(n Node) string {
	var sb strings.Builder
	var walk func(Node, int)
	walk = func(x Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(x.Describe())
		sb.WriteString("\n")
		for _, c := range x.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Remotes collects every Remote node of the plan in visit order.
func Remotes(n Node) []*Remote {
	var out []*Remote
	var walk func(Node)
	walk = func(x Node) {
		if r, ok := x.(*Remote); ok {
			out = append(out, r)
		}
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// CountNodes returns the number of operators in the tree.
func CountNodes(n Node) int {
	count := 1
	for _, c := range n.Children() {
		count += CountNodes(c)
	}
	return count
}
