package plan

import (
	"fmt"
	"strconv"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
)

// FinalizeSelect lowers the post-join phase of a SELECT block onto an input
// operator that already produces the joined, filtered FROM rows: aggregation
// with HAVING, projection, DISTINCT, ORDER BY and LIMIT. It is shared by the
// sellers' local optimizer, the centralized baseline and the buyer plan
// generator, which differ only in how they build the input join tree.
func FinalizeSelect(sel *sqlparse.Select, input Node) (Node, error) {
	items, err := expandStars(sel, input.Schema())
	if err != nil {
		return nil, err
	}
	node := input
	if sel.HasAggregates() || len(sel.GroupBy) > 0 {
		node, items, err = buildAggregate(sel, node, items)
		if err != nil {
			return nil, err
		}
	}
	exprs := make([]expr.Expr, len(items))
	names := make([]expr.ColumnID, len(items))
	for i, it := range items {
		exprs[i] = it.Expr
		names[i] = outputName(it, i)
	}
	// ORDER BY may reference columns that are not projected (standard SQL);
	// such keys ride along as hidden projection columns and are stripped
	// after the sort.
	keys := make([]SortKey, len(sel.OrderBy))
	hidden := 0
	for i, o := range sel.OrderBy {
		key := expr.Clone(o.Expr)
		if !refsAvailable(key, names) && refsAvailable(key, node.Schema()) {
			if sel.Distinct {
				return nil, fmt.Errorf("plan: for SELECT DISTINCT, ORDER BY expressions must appear in the select list (%s)", key)
			}
			name := expr.ColumnID{Name: fmt.Sprintf("_ord%d", i)}
			exprs = append(exprs, key)
			names = append(names, name)
			key = expr.NewColumn("", name.Name)
			hidden++
		}
		keys[i] = SortKey{Expr: key, Desc: o.Desc}
	}
	visible := len(names) - hidden
	node = &Project{Input: node, Exprs: exprs, Names: names}
	if sel.Distinct {
		node = &Distinct{Input: node}
	}
	if len(keys) > 0 {
		node = &Sort{Input: node, Keys: keys}
	}
	if sel.Limit >= 0 {
		node = &Limit{Input: node, N: sel.Limit}
	}
	if hidden > 0 {
		// Strip the hidden sort columns.
		stripExprs := make([]expr.Expr, visible)
		stripNames := make([]expr.ColumnID, visible)
		for i := 0; i < visible; i++ {
			stripExprs[i] = expr.NewColumn(names[i].Table, names[i].Name)
			stripNames[i] = names[i]
		}
		node = &Project{Input: node, Exprs: stripExprs, Names: stripNames}
	}
	return node, nil
}

// Qualify resolves every unqualified column reference of a SELECT against
// the schema's table definitions: a column exposed by exactly one FROM
// relation gets that relation's binding as its qualifier (standard semantic
// analysis). Ambiguous or unknown names are left untouched — binding will
// reject them later with a precise error. Qualifying right after parsing
// lets every downstream component (partition pruning, rewriting, offer
// matching) reason about column identity reliably.
func Qualify(sel *sqlparse.Select, sch *catalog.Schema) {
	owner := func(name string) string {
		found := ""
		n := 0
		for _, tr := range sel.From {
			def, ok := sch.Table(tr.Name)
			if !ok {
				continue
			}
			if def.ColumnIndex(name) >= 0 {
				found = tr.Binding()
				n++
			}
		}
		if n == 1 {
			return found
		}
		return ""
	}
	fix := func(e expr.Expr) {
		expr.Walk(e, func(x expr.Expr) bool {
			if c, ok := x.(*expr.Column); ok && c.Table == "" {
				if b := owner(c.Name); b != "" {
					c.Table = b
				}
			}
			return true
		})
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			fix(it.Expr)
		}
	}
	fix(sel.Where)
	for _, g := range sel.GroupBy {
		fix(g)
	}
	fix(sel.Having)
	for _, o := range sel.OrderBy {
		fix(o.Expr)
	}
}

// refsAvailable reports whether every column of e resolves in the schema.
func refsAvailable(e expr.Expr, schema []expr.ColumnID) bool {
	for _, c := range expr.Columns(e) {
		found := false
		for _, s := range schema {
			if !equalFold(c.Name, s.Name) {
				continue
			}
			if c.Table == "" || equalFold(c.Table, s.Table) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// outputName derives the exposed column identity of a select item.
func outputName(it sqlparse.SelectItem, i int) expr.ColumnID {
	if it.Alias != "" {
		return expr.ColumnID{Name: it.Alias}
	}
	if c, ok := it.Expr.(*expr.Column); ok {
		return expr.ColumnID{Table: c.Table, Name: c.Name}
	}
	return expr.ColumnID{Name: "_col" + strconv.Itoa(i)}
}

// expandStars replaces `*` items with explicit column references over the
// input schema.
func expandStars(sel *sqlparse.Select, schema []expr.ColumnID) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			out = append(out, sqlparse.SelectItem{Expr: expr.Clone(it.Expr), Alias: it.Alias})
			continue
		}
		if len(schema) == 0 {
			return nil, fmt.Errorf("plan: cannot expand * with empty input schema")
		}
		for _, c := range schema {
			out = append(out, sqlparse.SelectItem{Expr: expr.NewColumn(c.Table, c.Name)})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	return out, nil
}

// buildAggregate inserts an Aggregate (and HAVING filter) below the final
// projection and rewrites select items so aggregate calls and group
// expressions become references to the aggregate's output columns.
func buildAggregate(sel *sqlparse.Select, input Node, items []sqlparse.SelectItem) (Node, []sqlparse.SelectItem, error) {
	// Collect distinct aggregate calls from items and HAVING.
	var aggs []*expr.Agg
	seen := map[string]int{}
	collect := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			if a, ok := n.(*expr.Agg); ok {
				if _, dup := seen[a.String()]; !dup {
					seen[a.String()] = len(aggs)
					aggs = append(aggs, a)
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		collect(it.Expr)
	}
	if sel.Having != nil {
		collect(sel.Having)
	}

	agg := &Aggregate{Input: input}
	groupIDs := make([]expr.ColumnID, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		agg.GroupBy = append(agg.GroupBy, expr.Clone(g))
		if c, ok := g.(*expr.Column); ok {
			groupIDs[i] = expr.ColumnID{Table: c.Table, Name: c.Name}
		} else {
			groupIDs[i] = expr.ColumnID{Name: "_g" + strconv.Itoa(i)}
		}
	}
	agg.GroupNames = groupIDs
	aggIDs := make([]expr.ColumnID, len(aggs))
	for i, a := range aggs {
		aggIDs[i] = expr.ColumnID{Name: "_agg" + strconv.Itoa(i)}
		agg.Aggs = append(agg.Aggs, AggItem{Agg: expr.Clone(a).(*expr.Agg), Name: aggIDs[i]})
	}

	// replace rewrites aggregate calls and group expressions into column
	// references over the aggregate output, top-down so group expressions do
	// not match inside already-replaced aggregates.
	var replace func(e expr.Expr) expr.Expr
	replace = func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil
		}
		if a, ok := e.(*expr.Agg); ok {
			idx, known := seen[a.String()]
			if !known {
				return expr.Clone(e)
			}
			return &expr.Column{Table: aggIDs[idx].Table, Name: aggIDs[idx].Name, Index: -1}
		}
		for i, g := range sel.GroupBy {
			if expr.Equal(e, g) {
				return &expr.Column{Table: groupIDs[i].Table, Name: groupIDs[i].Name, Index: -1}
			}
		}
		switch t := e.(type) {
		case *expr.Binary:
			return &expr.Binary{Op: t.Op, L: replace(t.L), R: replace(t.R)}
		case *expr.Unary:
			return &expr.Unary{Op: t.Op, X: replace(t.X)}
		case *expr.In:
			list := make([]expr.Expr, len(t.List))
			for i, x := range t.List {
				list[i] = replace(x)
			}
			return &expr.In{X: replace(t.X), List: list, Not: t.Not}
		case *expr.Between:
			return &expr.Between{X: replace(t.X), Lo: replace(t.Lo), Hi: replace(t.Hi), Not: t.Not}
		case *expr.IsNull:
			return &expr.IsNull{X: replace(t.X), Not: t.Not}
		}
		return expr.Clone(e)
	}

	outSchema := agg.Schema()
	validate := func(e expr.Expr, what string) error {
		for _, c := range expr.Columns(e) {
			ok := false
			for _, s := range outSchema {
				if expr.ColKey(c) == s.Key() || (c.Table == "" && equalFold(c.Name, s.Name)) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("plan: %s column %s must appear in GROUP BY or inside an aggregate", what, c)
			}
		}
		return nil
	}

	newItems := make([]sqlparse.SelectItem, len(items))
	for i, it := range items {
		newItems[i] = sqlparse.SelectItem{Expr: replace(it.Expr), Alias: it.Alias}
		if err := validate(newItems[i].Expr, "select"); err != nil {
			return nil, nil, err
		}
	}
	var node Node = agg
	if sel.Having != nil {
		h := replace(sel.Having)
		if err := validate(h, "HAVING"); err != nil {
			return nil, nil, err
		}
		node = &Filter{Input: node, Pred: h}
	}
	return node, newItems, nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'A' && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if cb >= 'A' && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
