package plan

import (
	"fmt"
	"strconv"

	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/value"
)

// Aggregate pushdown: a seller holding part of a partitioned relation can
// ship per-group partial aggregates of its fragment instead of raw rows, and
// the buyer merges them (SUM of SUMs, SUM of COUNTs, MIN of MINs, ...). This
// is sound exactly when the fragments a plan unions are disjoint — which the
// buyer plan generator's exact-coverage rule already guarantees. AVG
// decomposes into SUM and COUNT; DISTINCT aggregates do not decompose and
// disable the optimization.

// PartialAggSpec is one aggregate a seller computes per group over its
// fragment.
type PartialAggSpec struct {
	Agg  *expr.Agg
	Name string // output column name (_pa<i>)
	// Merge is the buyer-side combining aggregate: SUM, MIN or MAX.
	Merge string
}

// AggDecomposition describes how a query's aggregation splits into
// seller-side partials and a buyer-side merge.
type AggDecomposition struct {
	// GroupCols are the grouping columns (grouping by general expressions
	// disables pushdown).
	GroupCols []*expr.Column
	// Aggs are the distinct aggregate calls of the query, in first-seen
	// order; aggKey(Aggs[i]) == canonical string.
	Aggs []*expr.Agg
	// Partials are the flattened seller-side aggregates.
	Partials []PartialAggSpec
	// PartsOf maps each original aggregate to its partial indices (AVG has
	// two: SUM then COUNT).
	PartsOf [][]int
}

// DecomposeAggregates analyzes an aggregation query for pushdown; ok=false
// when any aggregate or grouping construct does not decompose.
func DecomposeAggregates(sel *sqlparse.Select) (*AggDecomposition, bool) {
	if !sel.HasAggregates() && len(sel.GroupBy) == 0 {
		return nil, false
	}
	d := &AggDecomposition{}
	for _, g := range sel.GroupBy {
		c, ok := g.(*expr.Column)
		if !ok {
			return nil, false
		}
		d.GroupCols = append(d.GroupCols, c)
	}
	seen := map[string]bool{}
	collect := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			a, isAgg := n.(*expr.Agg)
			if !isAgg {
				return true
			}
			if !seen[a.String()] {
				seen[a.String()] = true
				d.Aggs = append(d.Aggs, expr.Clone(a).(*expr.Agg))
			}
			return false
		})
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, false
		}
		collect(it.Expr)
	}
	if sel.Having != nil {
		collect(sel.Having)
	}
	for _, a := range d.Aggs {
		if a.Distinct {
			return nil, false
		}
		idx := len(d.Partials)
		name := func(i int) string { return "_pa" + strconv.Itoa(i) }
		switch a.Fn {
		case "SUM":
			d.Partials = append(d.Partials, PartialAggSpec{
				Agg: &expr.Agg{Fn: "SUM", Arg: expr.Clone(a.Arg)}, Name: name(idx), Merge: "SUM"})
			d.PartsOf = append(d.PartsOf, []int{idx})
		case "COUNT":
			p := &expr.Agg{Fn: "COUNT", Star: a.Star}
			if !a.Star {
				p.Arg = expr.Clone(a.Arg)
			}
			d.Partials = append(d.Partials, PartialAggSpec{Agg: p, Name: name(idx), Merge: "SUM"})
			d.PartsOf = append(d.PartsOf, []int{idx})
		case "MIN", "MAX":
			d.Partials = append(d.Partials, PartialAggSpec{
				Agg: &expr.Agg{Fn: a.Fn, Arg: expr.Clone(a.Arg)}, Name: name(idx), Merge: a.Fn})
			d.PartsOf = append(d.PartsOf, []int{idx})
		case "AVG":
			d.Partials = append(d.Partials,
				PartialAggSpec{Agg: &expr.Agg{Fn: "SUM", Arg: expr.Clone(a.Arg)}, Name: name(idx), Merge: "SUM"},
				PartialAggSpec{Agg: &expr.Agg{Fn: "COUNT", Arg: expr.Clone(a.Arg)}, Name: name(idx + 1), Merge: "SUM"})
			d.PartsOf = append(d.PartsOf, []int{idx, idx + 1})
		default:
			return nil, false
		}
	}
	return d, true
}

// PartialItems returns the select list of the seller-side partial query:
// the group columns followed by the partial aggregates.
func (d *AggDecomposition) PartialItems() []sqlparse.SelectItem {
	var items []sqlparse.SelectItem
	for _, c := range d.GroupCols {
		items = append(items, sqlparse.SelectItem{Expr: expr.NewColumn(c.Table, c.Name)})
	}
	for _, p := range d.Partials {
		items = append(items, sqlparse.SelectItem{Expr: expr.Clone(p.Agg), Alias: p.Name})
	}
	return items
}

// mergedName is the buyer-side column holding the merged partial i.
func mergedName(i int) string { return "_m" + strconv.Itoa(i) }

// finalExpr rewrites an original aggregate into an expression over merged
// columns.
func (d *AggDecomposition) finalExpr(aggIdx int) expr.Expr {
	parts := d.PartsOf[aggIdx]
	switch d.Aggs[aggIdx].Fn {
	case "AVG":
		// (SUM * 1.0) / COUNT forces float division.
		s := expr.NewColumn("", mergedName(parts[0]))
		c := expr.NewColumn("", mergedName(parts[1]))
		return &expr.Binary{Op: "/",
			L: &expr.Binary{Op: "*", L: s, R: expr.NewLit(value.NewFloat(1))},
			R: c,
		}
	default:
		return expr.NewColumn("", mergedName(parts[0]))
	}
}

// BuildMergePlan assembles the buyer-side plan over an input producing
// [group columns..., partial aggregates...] rows from disjoint fragments:
// merge-aggregate, HAVING, final projection, ORDER BY and LIMIT.
func (d *AggDecomposition) BuildMergePlan(sel *sqlparse.Select, input Node) (Node, error) {
	agg := &Aggregate{Input: input}
	for _, c := range d.GroupCols {
		agg.GroupBy = append(agg.GroupBy, expr.NewColumn(c.Table, c.Name))
		agg.GroupNames = append(agg.GroupNames, expr.ColumnID{Table: c.Table, Name: c.Name})
	}
	for i, p := range d.Partials {
		agg.Aggs = append(agg.Aggs, AggItem{
			Agg:  &expr.Agg{Fn: p.Merge, Arg: expr.NewColumn("", p.Name)},
			Name: expr.ColumnID{Name: mergedName(i)},
		})
	}

	// Rewrite an expression: aggregates become merged-column expressions,
	// group columns pass through.
	byAgg := map[string]int{}
	for i, a := range d.Aggs {
		byAgg[a.String()] = i
	}
	var replace func(e expr.Expr) (expr.Expr, error)
	replace = func(e expr.Expr) (expr.Expr, error) {
		if e == nil {
			return nil, nil
		}
		if a, ok := e.(*expr.Agg); ok {
			idx, known := byAgg[a.String()]
			if !known {
				return nil, fmt.Errorf("plan: aggregate %s not decomposed", a)
			}
			return d.finalExpr(idx), nil
		}
		switch t := e.(type) {
		case *expr.Binary:
			l, err := replace(t.L)
			if err != nil {
				return nil, err
			}
			r, err := replace(t.R)
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: t.Op, L: l, R: r}, nil
		case *expr.Unary:
			x, err := replace(t.X)
			if err != nil {
				return nil, err
			}
			return &expr.Unary{Op: t.Op, X: x}, nil
		case *expr.In:
			x, err := replace(t.X)
			if err != nil {
				return nil, err
			}
			list := make([]expr.Expr, len(t.List))
			for i, item := range t.List {
				li, err := replace(item)
				if err != nil {
					return nil, err
				}
				list[i] = li
			}
			return &expr.In{X: x, List: list, Not: t.Not}, nil
		case *expr.Between:
			x, errx := replace(t.X)
			lo, errl := replace(t.Lo)
			hi, errh := replace(t.Hi)
			if errx != nil || errl != nil || errh != nil {
				return nil, fmt.Errorf("plan: between rewrite failed")
			}
			return &expr.Between{X: x, Lo: lo, Hi: hi, Not: t.Not}, nil
		case *expr.IsNull:
			x, err := replace(t.X)
			if err != nil {
				return nil, err
			}
			return &expr.IsNull{X: x, Not: t.Not}, nil
		}
		return expr.Clone(e), nil
	}

	var node Node = agg
	if sel.Having != nil {
		h, err := replace(sel.Having)
		if err != nil {
			return nil, err
		}
		node = &Filter{Input: node, Pred: h}
	}
	var exprs []expr.Expr
	var names []expr.ColumnID
	for i, it := range sel.Items {
		e, err := replace(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		names = append(names, outputName(sqlparse.SelectItem{Expr: it.Expr, Alias: it.Alias}, i))
	}
	node = &Project{Input: node, Exprs: exprs, Names: names}
	if len(sel.OrderBy) > 0 {
		var keys []SortKey
		for _, o := range sel.OrderBy {
			if !refsAvailable(o.Expr, names) {
				return nil, fmt.Errorf("plan: ORDER BY %s not available after aggregate pushdown", o.Expr)
			}
			keys = append(keys, SortKey{Expr: expr.Clone(o.Expr), Desc: o.Desc})
		}
		node = &Sort{Input: node, Keys: keys}
	}
	if sel.Limit >= 0 {
		node = &Limit{Input: node, N: sel.Limit}
	}
	return node, nil
}
