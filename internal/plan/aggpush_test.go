package plan

import (
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/value"
)

func mergeInput() Node {
	// An input producing [c.office, _pa0, _pa1] partial rows.
	return &Remote{NodeID: "x", SQL: "…", Cols: []expr.ColumnID{
		{Table: "c", Name: "office"}, {Name: "_pa0"}, {Name: "_pa1"},
	}}
}

func TestBuildMergePlanShape(t *testing.T) {
	sel := sqlparse.MustParseSelect(`SELECT c.office, SUM(i.charge) AS total, COUNT(*) AS n
		FROM customer c, invoiceline i WHERE c.custid = i.custid
		GROUP BY c.office HAVING COUNT(*) > 2 ORDER BY total DESC LIMIT 5`)
	d, ok := DecomposeAggregates(sel)
	if !ok {
		t.Fatal("must decompose")
	}
	root, err := d.BuildMergePlan(sel, mergeInput())
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(root)
	for _, want := range []string{"Limit 5", "Sort total DESC", "Project", "Filter", "Aggregate", "SUM(_pa0)", "SUM(_pa1)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("merge plan missing %q:\n%s", want, out)
		}
	}
	// Output schema matches the query's select list.
	schema := root.Schema()
	if len(schema) != 3 || schema[1].Name != "total" || schema[2].Name != "n" {
		t.Fatalf("schema: %+v", schema)
	}
}

func TestBuildMergePlanAvgDivision(t *testing.T) {
	sel := sqlparse.MustParseSelect(`SELECT c.office, AVG(i.charge) AS mean
		FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office`)
	d, ok := DecomposeAggregates(sel)
	if !ok {
		t.Fatal("must decompose")
	}
	if d.Partials[0].Merge != "SUM" || d.Partials[1].Merge != "SUM" {
		t.Fatalf("AVG partial merges: %+v", d.Partials)
	}
	input := &Remote{NodeID: "x", SQL: "…", Cols: []expr.ColumnID{
		{Table: "c", Name: "office"}, {Name: "_pa0"}, {Name: "_pa1"},
	}}
	root, err := d.BuildMergePlan(sel, input)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(root)
	if !strings.Contains(out, "_m0 * 1 / _m1") {
		t.Fatalf("AVG must merge as SUM/COUNT division:\n%s", out)
	}
}

func TestBuildMergePlanOrderByUnavailable(t *testing.T) {
	// ORDER BY a raw column that does not survive aggregation pushdown.
	sel := sqlparse.MustParseSelect(`SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i WHERE c.custid = i.custid
		GROUP BY c.office ORDER BY i.charge`)
	d, ok := DecomposeAggregates(sel)
	if !ok {
		t.Fatal("must decompose")
	}
	if _, err := d.BuildMergePlan(sel, mergeInput()); err == nil {
		t.Fatal("unavailable ORDER BY must be rejected")
	}
}

func TestQualify(t *testing.T) {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int}, {Name: "office", Kind: value.Str},
	}})
	sch.MustAddTable(&catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
		{Name: "invid", Kind: value.Int}, {Name: "custid", Kind: value.Int}, {Name: "charge", Kind: value.Float},
	}})
	sel := sqlparse.MustParseSelect(`SELECT office, SUM(charge) AS total
		FROM customer c, invoiceline i WHERE c.custid = i.custid AND charge > 5
		GROUP BY office ORDER BY office`)
	Qualify(sel, sch)
	sql := sel.SQL()
	for _, want := range []string{"c.office", "SUM(i.charge)", "i.charge > 5", "GROUP BY c.office", "ORDER BY c.office"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("qualification missing %q: %s", want, sql)
		}
	}
	// Ambiguous custid stays untouched; aliases in ORDER BY stay untouched.
	sel2 := sqlparse.MustParseSelect("SELECT custid FROM customer c, invoiceline i ORDER BY total")
	Qualify(sel2, sch)
	if strings.Contains(sel2.SQL(), "c.custid") || strings.Contains(sel2.SQL(), "i.custid") {
		t.Fatalf("ambiguous column must stay bare: %s", sel2.SQL())
	}
	if !strings.Contains(sel2.SQL(), "ORDER BY total") {
		t.Fatalf("alias key must stay bare: %s", sel2.SQL())
	}
}

func TestDecomposePartialItemsNaming(t *testing.T) {
	sel := sqlparse.MustParseSelect(`SELECT c.office, MIN(i.charge), MAX(i.charge), COUNT(i.charge)
		FROM customer c, invoiceline i GROUP BY c.office`)
	d, ok := DecomposeAggregates(sel)
	if !ok {
		t.Fatal("must decompose")
	}
	items := d.PartialItems()
	if items[0].Expr.String() != "c.office" {
		t.Fatalf("group item: %s", items[0].Expr)
	}
	for i, it := range items[1:] {
		if it.Alias != "_pa"+string(rune('0'+i)) {
			t.Fatalf("partial alias: %+v", it)
		}
	}
	if d.Partials[0].Merge != "MIN" || d.Partials[1].Merge != "MAX" || d.Partials[2].Merge != "SUM" {
		t.Fatalf("merges: %+v", d.Partials)
	}
}
