package localopt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qtrade/internal/sqlparse"
)

// randomTelcoQuery builds a random valid query over the telco fixture.
func randomTelcoQuery(r *rand.Rand) string {
	preds := []string{
		"c.office = 'Corfu'",
		"c.office IN ('Corfu', 'Athens')",
		"c.custid > %d",
		"i.charge BETWEEN 5 AND 15",
		"i.charge <> 7",
		"c.custid < %d OR i.charge > 10",
	}
	var where []string
	where = append(where, "c.custid = i.custid")
	n := r.Intn(3)
	for k := 0; k < n; k++ {
		p := preds[r.Intn(len(preds))]
		p = strings.ReplaceAll(p, "%d", fmt.Sprint(r.Intn(5)))
		where = append(where, p)
	}
	switch r.Intn(3) {
	case 0:
		return "SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE " +
			strings.Join(where, " AND ")
	case 1:
		return "SELECT c.office, SUM(i.charge) AS s, COUNT(*) AS n FROM customer c, invoiceline i WHERE " +
			strings.Join(where, " AND ") + " GROUP BY c.office"
	default:
		return "SELECT DISTINCT c.office FROM customer c, invoiceline i WHERE " +
			strings.Join(where, " AND ")
	}
}

// Property: the DP optimizer's best plan always produces the same rows as
// brute-force (cross join + filter) evaluation, across random queries.
func TestQuickOptimizeMatchesNaive(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 60; i++ {
		q := randomTelcoQuery(r)
		res := optimize(t, q, sch, st)
		sel := sqlparse.MustParseSelect(q)
		want := runRows(t, st, naivePlan(t, sel, sch, st))
		got := runRows(t, st, res.Best.Plan)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("query %d: %s\n  optimizer and naive disagree: %d vs %d rows",
				i, q, len(got), len(want))
		}
		// Every partial's plan must also match its own subquery's naive
		// evaluation.
		for _, p := range res.Partials {
			pw := runRows(t, st, naivePlan(t, p.SQL, sch, st))
			pg := runRows(t, st, p.Plan)
			if strings.Join(pg, "|") != strings.Join(pw, "|") {
				t.Fatalf("query %d partial %v: %s\n  disagree: %d vs %d rows",
					i, p.Bindings, p.SQL.SQL(), len(pg), len(pw))
			}
		}
	}
}
