package localopt

import (
	"sort"
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

func telcoSchema() *catalog.Schema {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "custname", Kind: value.Str},
		{Name: "office", Kind: value.Str},
	}})
	sch.MustAddTable(&catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
		{Name: "invid", Kind: value.Int},
		{Name: "linenum", Kind: value.Int},
		{Name: "custid", Kind: value.Int},
		{Name: "charge", Kind: value.Float},
	}})
	if err := sch.SetPartitions("customer", []*catalog.Partition{
		{Table: "customer", ID: "corfu", Predicate: sqlparse.MustParseExpr("office = 'Corfu'")},
		{Table: "customer", ID: "athens", Predicate: sqlparse.MustParseExpr("office = 'Athens'")},
	}); err != nil {
		panic(err)
	}
	return sch
}

func telcoStore(t *testing.T, sch *catalog.Schema) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	for _, p := range []string{"corfu", "athens"} {
		if _, err := st.CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	add := func(part string, id int64, name, office string) {
		if err := st.Insert("customer", part, value.Row{value.NewInt(id), value.NewStr(name), value.NewStr(office)}); err != nil {
			t.Fatal(err)
		}
	}
	add("corfu", 1, "alice", "Corfu")
	add("corfu", 2, "bob", "Corfu")
	add("athens", 3, "carol", "Athens")
	lines := [][4]int64{{100, 1, 1, 10}, {101, 1, 2, 7}, {102, 1, 3, 20}, {103, 2, 1, 5}}
	for _, l := range lines {
		if err := st.Insert("invoiceline", "p0", value.Row{
			value.NewInt(l[0]), value.NewInt(l[1]), value.NewInt(l[2]), value.NewFloat(float64(l[3])),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// runRows executes a plan and returns its rows as sorted canonical strings.
func runRows(t *testing.T, st *storage.Store, n plan.Node) []string {
	t.Helper()
	ex := &exec.Executor{Store: st}
	res, err := ex.Run(n)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, plan.Explain(n))
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		idx := make([]int, len(r))
		for j := range idx {
			idx[j] = j
		}
		out[i] = value.Key(r, idx)
	}
	sort.Strings(out)
	return out
}

// naivePlan builds the brute-force plan: cross join everything, filter,
// finalize. Used as the correctness oracle.
func naivePlan(t *testing.T, sel *sqlparse.Select, sch *catalog.Schema, st *storage.Store) plan.Node {
	t.Helper()
	var node plan.Node
	for _, tr := range sel.From {
		def, _ := sch.Table(tr.Name)
		var rel plan.Node
		var scans []plan.Node
		for _, f := range st.Fragments(tr.Name) {
			scans = append(scans, &plan.Scan{Def: def, Alias: tr.Binding(), PartID: f.PartID})
		}
		if len(scans) == 1 {
			rel = scans[0]
		} else {
			rel = &plan.Union{Inputs: scans}
		}
		if node == nil {
			node = rel
		} else {
			node = &plan.Join{L: node, R: rel}
		}
	}
	if sel.Where != nil {
		node = &plan.Filter{Input: node, Pred: expr.Clone(sel.Where)}
	}
	p, err := plan.FinalizeSelect(sel, node)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func optimize(t *testing.T, q string, sch *catalog.Schema, st *storage.Store) *Result {
	t.Helper()
	sel := sqlparse.MustParseSelect(q)
	res, err := Optimize(sel, sch, st, cost.Default())
	if err != nil {
		t.Fatalf("optimize %q: %v", q, err)
	}
	return res
}

func TestOptimizeTwoWayJoin(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	q := "SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid AND i.charge > 6"
	res := optimize(t, q, sch, st)
	if res.Best == nil {
		t.Fatal("no best plan")
	}
	if len(res.Partials) != 3 {
		t.Fatalf("partials: %d, want 3 (c, i, c⋈i)", len(res.Partials))
	}
	// Best plan result equals naive evaluation.
	sel := sqlparse.MustParseSelect(q)
	want := runRows(t, st, naivePlan(t, sel, sch, st))
	got := runRows(t, st, res.Best.Plan)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("plan wrong:\ngot  %v\nwant %v\n%s", got, want, plan.Explain(res.Best.Plan))
	}
	if res.Best.Cost <= 0 || res.Best.Rows <= 0 || res.Best.Bytes <= 0 {
		t.Fatalf("estimates: %+v", res.Best)
	}
}

func TestPartialSubqueriesExecutable(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	q := "SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid AND c.office = 'Corfu'"
	res := optimize(t, q, sch, st)
	for _, p := range res.Partials {
		if p.SQL == nil {
			t.Fatalf("partial without SQL: %+v", p)
		}
		if _, err := sqlparse.Parse(p.SQL.SQL()); err != nil {
			t.Fatalf("partial SQL does not re-parse: %q: %v", p.SQL.SQL(), err)
		}
		got := runRows(t, st, p.Plan)
		want := runRows(t, st, naivePlan(t, p.SQL, sch, st))
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("partial %v wrong:\ngot  %v\nwant %v", p.Bindings, got, want)
		}
	}
	// The single-relation partial for c must carry the local predicate and
	// the join column.
	var cPart *Partial
	for _, p := range res.Partials {
		if len(p.Bindings) == 1 && p.Bindings[0] == "c" {
			cPart = p
		}
	}
	if cPart == nil {
		t.Fatal("no c partial")
	}
	sql := cPart.SQL.SQL()
	if !strings.Contains(sql, "office = 'Corfu'") || !strings.Contains(strings.ToLower(sql), "custid") {
		t.Fatalf("c partial SQL: %s", sql)
	}
}

func TestPartitionPruning(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	res := optimize(t, "SELECT c.custname FROM customer c WHERE c.office = 'Corfu'", sch, st)
	explain := plan.Explain(res.Best.Plan)
	if strings.Contains(explain, "athens") {
		t.Fatalf("athens fragment must be pruned:\n%s", explain)
	}
	if !strings.Contains(explain, "corfu") {
		t.Fatalf("corfu fragment missing:\n%s", explain)
	}
	got := runRows(t, st, res.Best.Plan)
	if len(got) != 2 {
		t.Fatalf("pruned plan rows: %v", got)
	}
}

func TestAllFragmentsPrunedYieldsEmptyPlan(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	res := optimize(t, "SELECT c.custname FROM customer c WHERE c.office = 'Paris'", sch, st)
	got := runRows(t, st, res.Best.Plan)
	if len(got) != 0 {
		t.Fatalf("must be empty: %v", got)
	}
}

func TestThreeWayJoinOrderAndCorrectness(t *testing.T) {
	sch := catalog.NewSchema()
	for _, name := range []string{"r1", "r2", "r3"} {
		sch.MustAddTable(&catalog.TableDef{Name: name, Columns: []catalog.ColumnDef{
			{Name: "a", Kind: value.Int}, {Name: "b", Kind: value.Int},
		}})
	}
	st := storage.NewStore()
	for _, name := range []string{"r1", "r2", "r3"} {
		def, _ := sch.Table(name)
		if _, err := st.CreateFragment(def, "p0"); err != nil {
			t.Fatal(err)
		}
	}
	// r1 small, r2 medium, r3 large; chain join r1.b=r2.a, r2.b=r3.a.
	for i := 0; i < 3; i++ {
		if err := st.Insert("r1", "p0", value.Row{value.NewInt(int64(i)), value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := st.Insert("r2", "p0", value.Row{value.NewInt(int64(i)), value.NewInt(int64(i % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := st.Insert("r3", "p0", value.Row{value.NewInt(int64(i % 5)), value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	q := "SELECT r1.a, r3.b FROM r1, r2, r3 WHERE r1.b = r2.a AND r2.b = r3.a"
	res := optimize(t, q, sch, st)
	if len(res.Partials) != 7 {
		t.Fatalf("partials: %d, want 7 subsets", len(res.Partials))
	}
	sel := sqlparse.MustParseSelect(q)
	want := runRows(t, st, naivePlan(t, sel, sch, st))
	got := runRows(t, st, res.Best.Plan)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("3-way join wrong:\ngot  %d rows\nwant %d rows", len(got), len(want))
	}
	// The disconnected pair {r1,r3} must still have a (cross product) entry.
	found := false
	for _, p := range res.Partials {
		if len(p.Bindings) == 2 && p.Bindings[0] == "r1" && p.Bindings[1] == "r3" {
			found = true
		}
	}
	if !found {
		t.Fatal("disconnected subset missing from partials")
	}
}

func TestAggregationPlan(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	q := `SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
	      WHERE c.custid = i.custid GROUP BY c.office ORDER BY total DESC`
	res := optimize(t, q, sch, st)
	sel := sqlparse.MustParseSelect(q)
	want := runRows(t, st, naivePlan(t, sel, sch, st))
	got := runRows(t, st, res.Best.Plan)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("aggregate plan wrong:\ngot  %v\nwant %v", got, want)
	}
	if res.Best.SQL.SQL() != sel.SQL() {
		t.Fatalf("full partial must carry original SQL: %s", res.Best.SQL.SQL())
	}
}

func TestErrors(t *testing.T) {
	sch := telcoSchema()
	st := telcoStore(t, sch)
	sel := sqlparse.MustParseSelect("SELECT g.x FROM ghost g")
	if _, err := Optimize(sel, sch, st, cost.Default()); err == nil {
		t.Fatal("unknown table must error")
	}
	sch2 := telcoSchema()
	st2 := storage.NewStore() // empty store
	sel2 := sqlparse.MustParseSelect("SELECT c.custid FROM customer c")
	if _, err := Optimize(sel2, sch2, st2, cost.Default()); err == nil {
		t.Fatal("missing fragments must error")
	}
	empty := &sqlparse.Select{Limit: -1}
	if _, err := Optimize(empty, sch, st, cost.Default()); err == nil {
		t.Fatal("no FROM must error")
	}
}

func TestCheaperPlanPreferred(t *testing.T) {
	// With one tiny and one huge relation, DP must build the hash table on
	// the tiny side (executor builds on R; optimizer puts smaller input
	// right).
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "small", Columns: []catalog.ColumnDef{{Name: "k", Kind: value.Int}}})
	sch.MustAddTable(&catalog.TableDef{Name: "big", Columns: []catalog.ColumnDef{{Name: "k", Kind: value.Int}}})
	st := storage.NewStore()
	sdef, _ := sch.Table("small")
	bdef, _ := sch.Table("big")
	if _, err := st.CreateFragment(sdef, "p0"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateFragment(bdef, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("small", "p0", value.Row{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := st.Insert("big", "p0", value.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	res := optimize(t, "SELECT s.k FROM small s, big b WHERE s.k = b.k", sch, st)
	// Find the Join node and check its right child scans `small`.
	var join *plan.Join
	var find func(n plan.Node)
	find = func(n plan.Node) {
		if jn, ok := n.(*plan.Join); ok {
			join = jn
		}
		for _, c := range n.Children() {
			find(c)
		}
	}
	find(res.Best.Plan)
	if join == nil {
		t.Fatal("no join in plan")
	}
	if sc, ok := join.R.(*plan.Scan); !ok || sc.Def.Name != "small" {
		t.Fatalf("build side must be the small relation:\n%s", plan.Explain(res.Best.Plan))
	}
}

func TestSubqueryFor(t *testing.T) {
	sel := sqlparse.MustParseSelect(
		"SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid AND c.office = 'X'")
	sub := SubqueryFor(sel, []string{"c"})
	sql := sub.SQL()
	if strings.Contains(sql, "invoiceline") {
		t.Fatalf("subquery must drop i: %s", sql)
	}
	if !strings.Contains(sql, "office = 'X'") {
		t.Fatalf("subquery must keep local predicate: %s", sql)
	}
	if !strings.Contains(strings.ToLower(sql), "c.custid") {
		t.Fatalf("subquery must keep join column: %s", sql)
	}
}
