// Package localopt is the System-R style cost-based optimizer every
// federation node runs over its local fragments. It is modified exactly as
// §3.4 of the paper prescribes: while the classic dynamic program prunes
// sub-optimal access paths — first two-way joins, then three-way, and so on —
// this optimizer *retains* the optimal partial result of every relation
// subset it visits, because those partial results are precisely the
// query-answers a seller can offer to the buyer during trading.
package localopt

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/stats"
	"qtrade/internal/storage"
)

// Partial is one optimal partial result: the best local plan answering the
// subquery over a subset of the query's relations (§3.4's set D).
type Partial struct {
	Bindings []string         // FROM bindings covered, in FROM order
	SQL      *sqlparse.Select // the subquery this partial answers
	Plan     plan.Node
	Cost     float64 // estimated local execution cost (ms)
	Rows     int64
	Bytes    float64 // estimated result size
}

// Result is the optimizer output: the best full plan plus every optimal
// k-way partial.
type Result struct {
	Best     *Partial
	Partials []*Partial
}

// Optimize runs the modified DP over the query's FROM relations using the
// node's local fragments. Every table referenced must have at least one
// local fragment (run the rewrite package first on foreign queries).
func Optimize(sel *sqlparse.Select, sch *catalog.Schema, store *storage.Store, m *cost.Model) (*Result, error) {
	o := &optimizer{sel: sel, sch: sch, store: store, m: m}
	return o.run()
}

type baseRel struct {
	ref      sqlparse.TableRef
	def      *catalog.TableDef
	node     plan.Node // union of filtered fragment scans
	cost     float64
	rows     int64
	st       *stats.TableStats // scaled by local predicate selectivity
	localPrd expr.Expr
}

type dpEntry struct {
	node plan.Node
	cost float64
	rows int64
}

type optimizer struct {
	sel   *sqlparse.Select
	sch   *catalog.Schema
	store *storage.Store
	m     *cost.Model

	rels      []*baseRel
	joinPreds []joinPred
	extra     []expr.Expr // conjuncts spanning >2 relations (applied at top)
	needCols  map[string][]string
}

type joinPred struct {
	e    expr.Expr
	mask uint // bindings referenced
	equi bool
}

func (o *optimizer) run() (*Result, error) {
	if len(o.sel.From) == 0 {
		return nil, fmt.Errorf("localopt: query has no FROM relations")
	}
	if len(o.sel.From) > 20 {
		return nil, fmt.Errorf("localopt: %d relations exceed DP limit", len(o.sel.From))
	}
	if err := o.buildBase(); err != nil {
		return nil, err
	}
	o.classifyPredicates()
	o.collectNeededColumns()

	n := len(o.rels)
	full := uint(1)<<n - 1
	dp := make(map[uint]dpEntry, 1<<n)
	for i, r := range o.rels {
		dp[1<<i] = dpEntry{node: r.node, cost: r.cost, rows: r.rows}
	}
	// Enumerate subsets in increasing popcount, all splits (bushy DP).
	masks := make([]uint, 0, 1<<n)
	for m := uint(1); m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := bits.OnesCount(uint(masks[i])), bits.OnesCount(uint(masks[j]))
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})
	for _, mask := range masks {
		if bits.OnesCount(uint(mask)) < 2 {
			continue
		}
		best, ok := dp[mask]
		_ = best
		found := ok
		trySplit := func(requireConnected bool) {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask &^ sub
				if sub > other {
					continue // each unordered split once
				}
				l, okl := dp[sub]
				r, okr := dp[other]
				if !okl || !okr {
					continue
				}
				preds := o.connecting(sub, other)
				if requireConnected && len(preds) == 0 {
					continue
				}
				entry := o.joinEntry(l, r, sub, other, preds)
				if !found || entry.cost < dp[mask].cost {
					dp[mask] = entry
					found = true
				}
			}
		}
		trySplit(true)
		if !found {
			trySplit(false) // forced cross product for disconnected queries
		}
		if !found {
			return nil, fmt.Errorf("localopt: no plan for relation subset %b", mask)
		}
	}

	res := &Result{}
	for _, mask := range masks {
		entry := dp[mask]
		p, err := o.finishPartial(mask, entry, full)
		if err != nil {
			return nil, err
		}
		res.Partials = append(res.Partials, p)
		if mask == full {
			res.Best = p
		}
	}
	return res, nil
}

// buildBase constructs the access path of each FROM relation: the union of
// the node's local fragments with pushed-down single-relation predicates and
// partition pruning.
func (o *optimizer) buildBase() error {
	for _, tr := range o.sel.From {
		def, ok := o.sch.Table(tr.Name)
		if !ok {
			return fmt.Errorf("localopt: unknown table %q", tr.Name)
		}
		frs := o.store.Fragments(tr.Name)
		if len(frs) == 0 {
			return fmt.Errorf("localopt: no local fragments of %q (rewrite foreign queries first)", tr.Name)
		}
		o.rels = append(o.rels, &baseRel{ref: tr, def: def})
	}
	// Single-relation conjuncts push into the base relation.
	bindLower := make([]string, len(o.rels))
	for i, r := range o.rels {
		bindLower[i] = strings.ToLower(r.ref.Binding())
	}
	for _, c := range expr.Conjuncts(o.sel.Where) {
		tabs := referencedBindings(c, bindLower)
		if bits.OnesCount(uint(tabs)) == 1 {
			idx := bits.TrailingZeros(uint(tabs))
			o.rels[idx].localPrd = expr.And([]expr.Expr{o.rels[idx].localPrd, c})
		}
	}
	for _, r := range o.rels {
		if err := o.buildAccessPath(r); err != nil {
			return err
		}
	}
	return nil
}

// referencedBindings returns the bitmask of FROM bindings a conjunct
// references. Unqualified columns resolve to the unique binding exposing the
// column name when possible.
func referencedBindings(e expr.Expr, bindings []string) uint {
	var mask uint
	for _, c := range expr.Columns(e) {
		if c.Table == "" {
			continue // resolved against full schema at bind time
		}
		lt := strings.ToLower(c.Table)
		for i, b := range bindings {
			if b == lt {
				mask |= 1 << i
			}
		}
	}
	return mask
}

func (o *optimizer) buildAccessPath(r *baseRel) error {
	binding := r.ref.Binding()
	// The local predicate with alias-stripped column names for selectivity.
	var scans []plan.Node
	var totalCost float64
	var totalRows int64
	var merged *stats.TableStats
	for _, f := range o.store.Fragments(r.ref.Name) {
		fs, err := o.store.FragmentStats(r.ref.Name, f.PartID)
		if err != nil {
			return err
		}
		// Partition pruning: skip fragments whose defining predicate
		// contradicts the pushed-down predicate.
		if part, ok := o.sch.Partition(r.ref.Name, f.PartID); ok && part.Predicate != nil && r.localPrd != nil {
			combined := expr.And([]expr.Expr{
				stripQualifiers(r.localPrd),
				stripQualifiers(part.Predicate),
			})
			if expr.Unsatisfiable(expr.Simplify(combined)) {
				continue
			}
		}
		sel := 1.0
		if r.localPrd != nil {
			sel = stats.Selectivity(fs, stripQualifiers(r.localPrd))
		}
		scan := &plan.Scan{Def: r.def, Alias: binding, PartID: f.PartID}
		if r.localPrd != nil {
			scan.Pred = expr.Clone(r.localPrd)
		}
		scans = append(scans, scan)
		totalCost += o.m.Scan(fs.Rows)
		rows := int64(math.Ceil(float64(fs.Rows) * sel))
		totalRows += rows
		merged = stats.Merge(merged, fs.Scale(sel))
	}
	if len(scans) == 0 {
		// All fragments pruned: an empty relation. Represent with a scan of
		// the first fragment plus an always-false filter to keep plan shape.
		frs := o.store.Fragments(r.ref.Name)
		scans = append(scans, &plan.Scan{Def: r.def, Alias: binding, PartID: frs[0].PartID, Pred: expr.FalseExpr()})
		merged = stats.FromRows(r.def, nil)
	}
	if len(scans) == 1 {
		r.node = scans[0]
	} else {
		r.node = &plan.Union{Inputs: scans}
	}
	r.cost = totalCost
	r.rows = totalRows
	r.st = merged
	return nil
}

// stripQualifiers rewrites alias-qualified columns to bare names so they can
// be evaluated against single-table schemas and statistics.
func stripQualifiers(e expr.Expr) expr.Expr {
	if e == nil {
		return nil
	}
	return expr.Transform(expr.Clone(e), func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Column); ok && c.Table != "" {
			return &expr.Column{Name: c.Name, Index: -1}
		}
		return n
	})
}

func (o *optimizer) classifyPredicates() {
	bindLower := make([]string, len(o.rels))
	for i, r := range o.rels {
		bindLower[i] = strings.ToLower(r.ref.Binding())
	}
	for _, c := range expr.Conjuncts(o.sel.Where) {
		mask := referencedBindings(c, bindLower)
		n := bits.OnesCount(uint(mask))
		switch {
		case n <= 1:
			// handled in buildBase (or constant; constants fold earlier)
		case n == 2:
			o.joinPreds = append(o.joinPreds, joinPred{e: c, mask: mask, equi: isEquiPred(c)})
		default:
			o.extra = append(o.extra, c)
		}
	}
}

func isEquiPred(e expr.Expr) bool {
	b, ok := e.(*expr.Binary)
	return ok && b.Op == "="
}

// connecting returns join predicates linking the two subsets.
func (o *optimizer) connecting(a, b uint) []joinPred {
	var out []joinPred
	for _, jp := range o.joinPreds {
		if jp.mask&a != 0 && jp.mask&b != 0 && jp.mask&^(a|b) == 0 {
			out = append(out, jp)
		}
	}
	return out
}

// joinEntry builds the DP entry for joining two solved subsets.
func (o *optimizer) joinEntry(l, r dpEntry, lMask, rMask uint, preds []joinPred) dpEntry {
	var on []expr.Expr
	hasEqui := false
	rows := float64(l.rows) * float64(r.rows)
	for _, jp := range preds {
		on = append(on, expr.Clone(jp.e))
		if jp.equi {
			hasEqui = true
			rows /= float64(o.equiNDV(jp))
		} else {
			rows /= 3
		}
	}
	if rows < 1 {
		rows = 1
	}
	outRows := int64(math.Ceil(rows))
	var joinCost float64
	if hasEqui {
		build, probe := l.rows, r.rows
		if build > probe {
			build, probe = probe, build
		}
		joinCost = o.m.HashJoin(build, probe, outRows)
	} else {
		joinCost = o.m.NLJoin(l.rows, r.rows, outRows)
	}
	// Build side: put the smaller input on the right (executor builds on R).
	left, right := l.node, r.node
	if l.rows < r.rows {
		left, right = r.node, l.node
	}
	node := &plan.Join{L: left, R: right, On: expr.And(on)}
	return dpEntry{node: node, cost: l.cost + r.cost + joinCost, rows: outRows}
}

// equiNDV estimates the distinct count of an equi-join key, using the larger
// side per the containment assumption.
func (o *optimizer) equiNDV(jp joinPred) int64 {
	var ndv int64 = 1
	for _, c := range expr.Columns(jp.e) {
		for i, r := range o.rels {
			if jp.mask&(1<<i) == 0 {
				continue
			}
			if c.Table != "" && !strings.EqualFold(c.Table, r.ref.Binding()) {
				continue
			}
			if cs := r.st.Col(c.Name); cs != nil && cs.NDV > ndv {
				ndv = cs.NDV
			}
		}
	}
	return ndv
}

// collectNeededColumns records, per binding, the columns of that relation
// referenced anywhere in the query; partial-result offers project onto them.
func (o *optimizer) collectNeededColumns() {
	o.needCols = map[string][]string{}
	seen := map[string]map[string]bool{}
	addCols := func(e expr.Expr) {
		for _, c := range expr.Columns(e) {
			o.addNeeded(seen, c)
		}
	}
	for _, it := range o.sel.Items {
		if it.Star {
			for _, r := range o.rels {
				for _, cd := range r.def.Columns {
					o.addNeeded(seen, &expr.Column{Table: r.ref.Binding(), Name: cd.Name})
				}
			}
			continue
		}
		addCols(it.Expr)
	}
	addCols(o.sel.Where)
	for _, g := range o.sel.GroupBy {
		addCols(g)
	}
	addCols(o.sel.Having)
	for _, ob := range o.sel.OrderBy {
		addCols(ob.Expr)
	}
}

func (o *optimizer) addNeeded(seen map[string]map[string]bool, c *expr.Column) {
	// Resolve the binding: qualified columns name it; unqualified columns
	// match the unique relation exposing that column name.
	var binding string
	if c.Table != "" {
		binding = strings.ToLower(c.Table)
	} else {
		matches := 0
		for _, r := range o.rels {
			if r.def.ColumnIndex(c.Name) >= 0 {
				binding = strings.ToLower(r.ref.Binding())
				matches++
			}
		}
		if matches != 1 {
			return
		}
	}
	m := seen[binding]
	if m == nil {
		m = map[string]bool{}
		seen[binding] = m
	}
	lc := strings.ToLower(c.Name)
	if !m[lc] {
		m[lc] = true
		o.needCols[binding] = append(o.needCols[binding], c.Name)
	}
}

// finishPartial turns a DP entry into an offered partial result with its
// subquery text. The full-relation entry additionally gets the query's
// aggregation/ordering phase and the >2-relation residual conjuncts.
func (o *optimizer) finishPartial(mask uint, entry dpEntry, full uint) (*Partial, error) {
	p := &Partial{Cost: entry.cost, Rows: entry.rows}
	var rowBytes float64
	for i, r := range o.rels {
		if mask&(1<<i) == 0 {
			continue
		}
		p.Bindings = append(p.Bindings, r.ref.Binding())
		used := len(o.needCols[strings.ToLower(r.ref.Binding())])
		if total := len(r.def.Columns); total > 0 && r.st != nil {
			rowBytes += r.st.RowBytes * float64(used) / float64(total)
		}
	}
	if mask == full {
		node := entry.node
		if len(o.extra) > 0 {
			node = &plan.Filter{Input: node, Pred: expr.And(cloneAll(o.extra))}
			p.Cost += o.m.Filter(entry.rows)
		}
		finished, err := plan.FinalizeSelect(o.sel, node)
		if err != nil {
			return nil, err
		}
		p.Plan = finished
		p.SQL = o.sel.Clone()
		if o.sel.HasAggregates() || len(o.sel.GroupBy) > 0 {
			groups := estimateGroups(entry.rows, len(o.sel.GroupBy))
			p.Cost += o.m.Aggregate(entry.rows, groups)
			p.Rows = groups
		}
		if len(o.sel.OrderBy) > 0 {
			p.Cost += o.m.Sort(p.Rows)
		}
		if o.sel.Limit >= 0 && p.Rows > o.sel.Limit {
			p.Rows = o.sel.Limit
		}
		p.Bytes = float64(p.Rows) * math.Max(rowBytes, 8)
		return p, nil
	}
	sub := o.Subquery(mask)
	p.SQL = sub
	finished, err := plan.FinalizeSelect(sub, entry.node)
	if err != nil {
		return nil, err
	}
	p.Plan = finished
	p.Bytes = float64(p.Rows) * math.Max(rowBytes, 8)
	return p, nil
}

func cloneAll(es []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = expr.Clone(e)
	}
	return out
}

// estimateGroups guesses the output cardinality of an aggregation.
func estimateGroups(rows int64, groupCols int) int64 {
	if groupCols == 0 {
		return 1
	}
	g := int64(math.Ceil(math.Sqrt(float64(rows)))) * int64(groupCols)
	if g > rows {
		g = rows
	}
	if g < 1 {
		g = 1
	}
	return g
}

// Subquery builds the SPJ subquery over a subset of the query's relations:
// the needed columns of those relations, their FROM entries, and the WHERE
// conjuncts referencing only them. This is the query text shipped in offers
// and RFBs.
func (o *optimizer) Subquery(mask uint) *sqlparse.Select {
	sub := &sqlparse.Select{Limit: -1}
	keep := map[string]bool{}
	for i, r := range o.rels {
		if mask&(1<<i) == 0 {
			continue
		}
		sub.From = append(sub.From, r.ref)
		b := strings.ToLower(r.ref.Binding())
		keep[b] = true
		for _, cn := range o.needCols[b] {
			sub.Items = append(sub.Items, sqlparse.SelectItem{Expr: expr.NewColumn(r.ref.Binding(), cn)})
		}
	}
	if len(sub.Items) == 0 {
		// Degenerate: no referenced columns (e.g. COUNT(*) only); expose the
		// first column so the subquery stays valid.
		first := o.rels[bits.TrailingZeros(mask)]
		sub.Items = append(sub.Items, sqlparse.SelectItem{Expr: expr.NewColumn(first.ref.Binding(), first.def.Columns[0].Name)})
	}
	// Canonical item order so equivalent subqueries offered by different
	// sellers are union-compatible at the buyer.
	sort.SliceStable(sub.Items, func(i, j int) bool {
		return sub.Items[i].Expr.String() < sub.Items[j].Expr.String()
	})
	var conj []expr.Expr
	for _, c := range expr.Conjuncts(o.sel.Where) {
		all := true
		for _, col := range expr.Columns(c) {
			if col.Table == "" {
				continue
			}
			if !keep[strings.ToLower(col.Table)] {
				all = false
				break
			}
		}
		if all {
			conj = append(conj, expr.Clone(c))
		}
	}
	sub.Where = expr.And(conj)
	return sub
}

// SubqueryFor exposes subquery construction for a binding subset by name;
// used by the buyer predicates analyser.
func SubqueryFor(sel *sqlparse.Select, bindings []string) *sqlparse.Select {
	o := &optimizer{sel: sel}
	for _, tr := range sel.From {
		o.rels = append(o.rels, &baseRel{ref: tr, def: &catalog.TableDef{Name: tr.Name, Columns: []catalog.ColumnDef{{Name: "_"}}}})
	}
	o.collectNeededColumnsLoose()
	var mask uint
	for i, r := range o.rels {
		for _, b := range bindings {
			if strings.EqualFold(r.ref.Binding(), b) {
				mask |= 1 << i
			}
		}
	}
	return o.Subquery(mask)
}

// collectNeededColumnsLoose collects needed columns using only qualified
// references (no table definitions available).
func (o *optimizer) collectNeededColumnsLoose() {
	o.needCols = map[string][]string{}
	seen := map[string]map[string]bool{}
	add := func(e expr.Expr) {
		for _, c := range expr.Columns(e) {
			if c.Table == "" {
				continue
			}
			b := strings.ToLower(c.Table)
			m := seen[b]
			if m == nil {
				m = map[string]bool{}
				seen[b] = m
			}
			lc := strings.ToLower(c.Name)
			if !m[lc] {
				m[lc] = true
				o.needCols[b] = append(o.needCols[b], c.Name)
			}
		}
	}
	for _, it := range o.sel.Items {
		if !it.Star {
			add(it.Expr)
		}
	}
	add(o.sel.Where)
	for _, g := range o.sel.GroupBy {
		add(g)
	}
	add(o.sel.Having)
	for _, ob := range o.sel.OrderBy {
		add(ob.Expr)
	}
}
