package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"qtrade/internal/value"
)

func col(t, n string) *Column { return NewColumn(t, n) }

func schema2() []ColumnID {
	return []ColumnID{{Table: "c", Name: "id"}, {Table: "c", Name: "office"}, {Table: "i", Name: "charge"}}
}

func bind(t *testing.T, e Expr) Expr {
	t.Helper()
	if err := Bind(e, schema2()); err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	return e
}

func TestBindQualifiedAndUnqualified(t *testing.T) {
	e := bind(t, Eq(col("c", "id"), col("", "charge")))
	b := e.(*Binary)
	if b.L.(*Column).Index != 0 || b.R.(*Column).Index != 2 {
		t.Errorf("indices: %d %d", b.L.(*Column).Index, b.R.(*Column).Index)
	}
}

func TestBindUnknownColumn(t *testing.T) {
	if err := Bind(col("c", "nope"), schema2()); err == nil {
		t.Error("expected unknown column error")
	}
	if err := Bind(col("x", "id"), schema2()); err == nil {
		t.Error("expected unknown qualifier error")
	}
}

func TestBindAmbiguous(t *testing.T) {
	schema := []ColumnID{{Table: "a", Name: "x"}, {Table: "b", Name: "x"}}
	if err := Bind(col("", "x"), schema); err == nil {
		t.Error("expected ambiguity error")
	}
	if err := Bind(col("b", "x"), schema); err != nil {
		t.Errorf("qualified must disambiguate: %v", err)
	}
}

func TestEvalComparisons(t *testing.T) {
	row := value.Row{value.NewInt(5), value.NewStr("Corfu"), value.NewFloat(9.5)}
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(col("c", "id"), Int(5)), true},
		{Cmp("<", col("c", "id"), Int(6)), true},
		{Cmp(">=", col("i", "charge"), Int(10)), false},
		{Cmp("<>", col("c", "office"), Str("Corfu")), false},
		{&Binary{Op: "AND", L: Eq(col("c", "id"), Int(5)), R: Eq(col("c", "office"), Str("Corfu"))}, true},
		{&Binary{Op: "OR", L: Eq(col("c", "id"), Int(1)), R: Eq(col("c", "office"), Str("Corfu"))}, true},
		{&Unary{Op: "NOT", X: Eq(col("c", "id"), Int(5))}, false},
		{&In{X: col("c", "office"), List: []Expr{Str("Corfu"), Str("Myconos")}}, true},
		{&In{X: col("c", "office"), List: []Expr{Str("Athens")}, Not: true}, true},
		{&Between{X: col("i", "charge"), Lo: Int(5), Hi: Int(10)}, true},
		{&Between{X: col("i", "charge"), Lo: Int(5), Hi: Int(10), Not: true}, false},
		{&IsNull{X: col("c", "id")}, false},
		{&IsNull{X: col("c", "id"), Not: true}, true},
	}
	for _, c := range cases {
		bind(t, c.e)
		got, err := EvalBool(c.e, row)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalArithmetic(t *testing.T) {
	row := value.Row{value.NewInt(5), value.NewStr("x"), value.NewFloat(2.5)}
	e := bind(t, Cmp("+", Cmp("*", col("c", "id"), Int(2)), col("i", "charge")))
	v, err := Eval(e, row)
	if err != nil || v.AsFloat() != 12.5 {
		t.Errorf("5*2+2.5 = %v (%v)", v, err)
	}
}

func TestEvalNullSemantics(t *testing.T) {
	row := value.Row{value.NewNull(), value.NewStr("x"), value.NewFloat(1)}
	// NULL = 5 is NULL, which is not true.
	e := bind(t, Eq(col("c", "id"), Int(5)))
	got, err := EvalBool(e, row)
	if err != nil || got {
		t.Errorf("NULL=5 must not be true: %v %v", got, err)
	}
	// NULL IS NULL is true.
	n := bind(t, &IsNull{X: col("c", "id")})
	got, _ = EvalBool(n, row)
	if !got {
		t.Error("NULL IS NULL must be true")
	}
	// FALSE AND NULL = FALSE (short-circuit and three-valued logic agree).
	a := bind(t, &Binary{Op: "AND", L: Eq(col("i", "charge"), Int(99)), R: Eq(col("c", "id"), Int(5))})
	v, _ := Eval(a, row)
	if v.Truth() || v.IsNull() {
		t.Errorf("FALSE AND NULL = %v, want FALSE", v)
	}
	// TRUE OR NULL = TRUE.
	o := bind(t, &Binary{Op: "OR", L: Eq(col("i", "charge"), Int(1)), R: Eq(col("c", "id"), Int(5))})
	v, _ = Eval(o, row)
	if !v.Truth() {
		t.Errorf("TRUE OR NULL = %v, want TRUE", v)
	}
	// x IN (1, NULL) where x=2 is NULL (not true, not false).
	in := bind(t, &In{X: col("i", "charge"), List: []Expr{Int(99), NewLit(value.NewNull())}})
	v, _ = Eval(in, row)
	if !v.IsNull() {
		t.Errorf("2 IN (99, NULL) = %v, want NULL", v)
	}
}

func TestEvalAggregateErrors(t *testing.T) {
	if _, err := Eval(&Agg{Fn: "SUM", Arg: Int(1)}, nil); err == nil {
		t.Error("aggregates must not evaluate outside aggregation")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Binary{Op: "OR", L: &Binary{Op: "AND", L: Eq(col("c", "id"), Int(1)), R: Eq(col("", "office"), Str("Corfu"))}, R: Eq(col("c", "id"), Int(2))}
	got := e.String()
	want := "c.id = 1 AND office = 'Corfu' OR c.id = 2"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	mul := &Binary{Op: "*", L: &Binary{Op: "+", L: Int(1), R: Int(2)}, R: Int(3)}
	if mul.String() != "(1 + 2) * 3" {
		t.Errorf("parens: %q", mul.String())
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := Eq(col("c", "id"), Int(1))
	c := Clone(e).(*Binary)
	c.L.(*Column).Name = "changed"
	if e.L.(*Column).Name != "id" {
		t.Error("Clone must not alias columns")
	}
}

func TestConjunctsAndAnd(t *testing.T) {
	a, b, c := Eq(col("t", "x"), Int(1)), Eq(col("t", "y"), Int(2)), Eq(col("t", "z"), Int(3))
	e := And([]Expr{a, b, c})
	list := Conjuncts(e)
	if len(list) != 3 {
		t.Fatalf("conjuncts: %d", len(list))
	}
	if Conjuncts(nil) != nil {
		t.Error("nil conjuncts")
	}
	if And(nil) != nil {
		t.Error("And(nil) must be nil")
	}
}

func TestSimplifyFolding(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{Cmp("+", Int(2), Int(3)), "5"},
		{&Binary{Op: "AND", L: TrueExpr(), R: Eq(col("t", "x"), Int(1))}, "t.x = 1"},
		{&Binary{Op: "AND", L: FalseExpr(), R: Eq(col("t", "x"), Int(1))}, "FALSE"},
		{&Binary{Op: "OR", L: TrueExpr(), R: Eq(col("t", "x"), Int(1))}, "TRUE"},
		{&Binary{Op: "OR", L: FalseExpr(), R: Eq(col("t", "x"), Int(1))}, "t.x = 1"},
		{&Unary{Op: "NOT", X: &Unary{Op: "NOT", X: Eq(col("t", "x"), Int(1))}}, "t.x = 1"},
		{&Unary{Op: "NOT", X: Cmp("<", col("t", "x"), Int(1))}, "t.x >= 1"},
		{Cmp("=", Int(1), Int(1)), "TRUE"},
		{&In{X: col("t", "x"), List: []Expr{Int(7)}}, "t.x = 7"},
		{&Between{X: Int(5), Lo: Int(1), Hi: Int(10)}, "TRUE"},
		{&IsNull{X: Int(5)}, "FALSE"},
		{&IsNull{X: NewLit(value.NewNull())}, "TRUE"},
		{&Unary{Op: "-", X: Int(4)}, "-4"},
	}
	for _, c := range cases {
		got := Simplify(c.in)
		if got.String() != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyContradiction(t *testing.T) {
	e := And([]Expr{Eq(col("t", "x"), Str("A")), Eq(col("t", "x"), Str("B"))})
	if got := Simplify(e); !IsFalse(got) {
		t.Errorf("x='A' AND x='B' must simplify to FALSE, got %s", got)
	}
	e2 := And([]Expr{Cmp(">", col("t", "x"), Int(10)), Cmp("<", col("t", "x"), Int(5))})
	if got := Simplify(e2); !IsFalse(got) {
		t.Errorf("x>10 AND x<5 must be FALSE, got %s", got)
	}
	e3 := And([]Expr{Cmp(">=", col("t", "x"), Int(5)), Cmp("<=", col("t", "x"), Int(5))})
	if got := Simplify(e3); IsFalse(got) {
		t.Errorf("x>=5 AND x<=5 is satisfiable, got %s", got)
	}
}

func TestSimplifyDedup(t *testing.T) {
	p := Eq(col("t", "x"), Int(1))
	e := And([]Expr{p, Clone(p), Eq(col("t", "y"), Int(2))})
	got := Simplify(e)
	if len(Conjuncts(got)) != 2 {
		t.Errorf("dedup failed: %s", got)
	}
}

func TestSimplifyPredicateTrueBecomesNil(t *testing.T) {
	if got := SimplifyPredicate(Cmp("=", Int(1), Int(1))); got != nil {
		t.Errorf("TRUE predicate must become nil, got %s", got)
	}
}

func TestImplies(t *testing.T) {
	x := func() *Column { return col("t", "x") }
	cases := []struct {
		p, q Expr
		want bool
	}{
		{Eq(x(), Int(5)), Cmp(">", x(), Int(1)), true},
		{Eq(x(), Int(5)), Cmp(">", x(), Int(5)), false},
		{Cmp(">", x(), Int(10)), Cmp(">", x(), Int(5)), true},
		{Cmp(">", x(), Int(5)), Cmp(">", x(), Int(10)), false},
		{And([]Expr{Cmp(">", x(), Int(5)), Cmp("<", x(), Int(8))}), &Between{X: x(), Lo: Int(5), Hi: Int(8)}, true},
		{&In{X: x(), List: []Expr{Int(1), Int(2)}}, Cmp("<", x(), Int(5)), true},
		{&In{X: x(), List: []Expr{Int(1), Int(9)}}, Cmp("<", x(), Int(5)), false},
		{Eq(x(), Str("Corfu")), &In{X: x(), List: []Expr{Str("Corfu"), Str("Myconos")}}, true},
		{nil, Eq(x(), Int(1)), false},
		{Eq(x(), Int(1)), nil, true},
		{Eq(x(), Int(5)), Cmp("<>", x(), Int(6)), true},
		{Eq(x(), Int(6)), Cmp("<>", x(), Int(6)), false},
		// Different columns: no implication.
		{Eq(col("t", "y"), Int(5)), Cmp(">", x(), Int(1)), false},
		// Residual conjunct must appear verbatim.
		{Eq(col("t", "a"), col("t", "b")), Eq(col("t", "a"), col("t", "b")), true},
	}
	for _, c := range cases {
		if got := Implies(c.p, c.q); got != c.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestUnsatisfiable(t *testing.T) {
	if !Unsatisfiable(FalseExpr()) {
		t.Error("FALSE is unsatisfiable")
	}
	if Unsatisfiable(nil) || Unsatisfiable(TrueExpr()) {
		t.Error("TRUE/nil are satisfiable")
	}
}

func TestRangeIntersectAndContains(t *testing.T) {
	ge5 := IntervalRange(true, value.NewInt(5), true, false, value.Value{}, false)
	le9 := IntervalRange(false, value.Value{}, false, true, value.NewInt(9), true)
	mid := Intersect(ge5, le9)
	if !mid.Admits(value.NewInt(7)) || mid.Admits(value.NewInt(4)) || mid.Admits(value.NewInt(10)) {
		t.Error("intersection 5..9 wrong")
	}
	if !ge5.Contains(mid) || !le9.Contains(mid) {
		t.Error("5..9 must be contained in both parents")
	}
	if mid.Contains(ge5) {
		t.Error("5..9 must not contain >=5")
	}
	pt := PointRange(value.NewInt(7))
	if !mid.Contains(pt) {
		t.Error("5..9 contains {7}")
	}
	empty := Intersect(PointRange(value.NewInt(1)), PointRange(value.NewInt(2)))
	if !empty.Empty {
		t.Error("{1} ∩ {2} must be empty")
	}
	if !mid.Contains(empty) {
		t.Error("everything contains empty")
	}
	if empty.Contains(pt) {
		t.Error("empty contains nothing")
	}
}

func TestRangeNotIn(t *testing.T) {
	ne := &Range{NotIn: []value.Value{value.NewInt(5)}}
	if ne.Admits(value.NewInt(5)) || !ne.Admits(value.NewInt(6)) {
		t.Error("<>5 range wrong")
	}
	pt := PointRange(value.NewInt(5))
	got := Intersect(ne, pt)
	if !got.Empty {
		t.Error("<>5 ∩ {5} must be empty")
	}
	set := SetRange([]value.Value{value.NewInt(4), value.NewInt(5)})
	got = Intersect(ne, set)
	if got.Empty || len(got.Set) != 1 || got.Set[0].I != 4 {
		t.Errorf("<>5 ∩ {4,5} = %+v", got)
	}
}

func TestDegenerateIntervalBecomesPoint(t *testing.T) {
	r := IntervalRange(true, value.NewInt(5), true, true, value.NewInt(5), true)
	if r.Set == nil || len(r.Set) != 1 {
		t.Errorf("[5,5] must normalize to {5}: %+v", r)
	}
	e := IntervalRange(true, value.NewInt(5), false, true, value.NewInt(5), true)
	if !e.Empty {
		t.Error("(5,5] must be empty")
	}
}

func TestRenameTables(t *testing.T) {
	e := Eq(col("Old", "x"), col("keep", "y"))
	got := RenameTables(e, map[string]string{"old": "new"})
	if got.String() != "new.x = keep.y" {
		t.Errorf("rename: %s", got)
	}
}

func TestConjunctsOnTables(t *testing.T) {
	e := And([]Expr{
		Eq(col("a", "x"), Int(1)),
		Eq(col("a", "y"), col("b", "y")),
		Eq(col("b", "z"), Int(2)),
	})
	local, rest := ConjunctsOnTables(e, map[string]bool{"a": true})
	if len(local) != 1 || len(rest) != 2 {
		t.Errorf("split: local=%d rest=%d", len(local), len(rest))
	}
}

func TestColumnsAndTables(t *testing.T) {
	e := And([]Expr{Eq(col("a", "x"), col("b", "y")), Cmp(">", col("a", "z"), Int(1))})
	if len(Columns(e)) != 3 {
		t.Errorf("columns: %d", len(Columns(e)))
	}
	tabs := Tables(e)
	if !tabs["a"] || !tabs["b"] || len(tabs) != 2 {
		t.Errorf("tables: %v", tabs)
	}
}

func TestHasAgg(t *testing.T) {
	if HasAgg(Eq(col("a", "x"), Int(1))) {
		t.Error("no agg here")
	}
	if !HasAgg(Cmp(">", &Agg{Fn: "SUM", Arg: col("a", "x")}, Int(1))) {
		t.Error("agg not found")
	}
}

// randomPredicate builds a random predicate over columns x (int) and s (str)
// using a bounded grammar, for property tests.
func randomPredicate(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(5) {
		case 0:
			ops := []string{"=", "<>", "<", "<=", ">", ">="}
			return Cmp(ops[r.Intn(len(ops))], col("t", "x"), Int(int64(r.Intn(10))))
		case 1:
			return &In{X: col("t", "x"), List: []Expr{Int(int64(r.Intn(5))), Int(int64(r.Intn(10)))}, Not: r.Intn(2) == 0}
		case 2:
			lo := int64(r.Intn(5))
			return &Between{X: col("t", "x"), Lo: Int(lo), Hi: Int(lo + int64(r.Intn(5)))}
		case 3:
			return Eq(col("t", "s"), Str(string(rune('a'+r.Intn(3)))))
		default:
			return &IsNull{X: col("t", "x"), Not: r.Intn(2) == 0}
		}
	}
	switch r.Intn(3) {
	case 0:
		return &Binary{Op: "AND", L: randomPredicate(r, depth-1), R: randomPredicate(r, depth-1)}
	case 1:
		return &Binary{Op: "OR", L: randomPredicate(r, depth-1), R: randomPredicate(r, depth-1)}
	default:
		return &Unary{Op: "NOT", X: randomPredicate(r, depth-1)}
	}
}

// Property: Simplify preserves WHERE semantics (NULL behaves as false) on
// random predicates and rows.
func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	schema := []ColumnID{{Table: "t", Name: "x"}, {Table: "t", Name: "s"}}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		p := randomPredicate(r, 3)
		s := Simplify(p)
		for j := 0; j < 20; j++ {
			row := value.Row{value.NewInt(int64(r.Intn(12))), value.NewStr(string(rune('a' + r.Intn(4))))}
			if r.Intn(10) == 0 {
				row[0] = value.NewNull()
			}
			p2, s2 := Clone(p), Clone(s)
			if err := Bind(p2, schema); err != nil {
				t.Fatal(err)
			}
			if s2 != nil {
				if err := Bind(s2, schema); err != nil {
					t.Fatal(err)
				}
			}
			want, err1 := EvalBool(p2, row)
			got, err2 := EvalBool(s2, row)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval error: %v / %v (p=%s, s=%s)", err1, err2, p, s)
			}
			if want != got {
				t.Fatalf("Simplify changed semantics: p=%s s=%s row=%v want=%v got=%v", p, s, row, want, got)
			}
		}
	}
}

// Property: Implies is sound — whenever Implies(p,q) holds, every row
// satisfying p satisfies q.
func TestQuickImpliesSound(t *testing.T) {
	schema := []ColumnID{{Table: "t", Name: "x"}, {Table: "t", Name: "s"}}
	r := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 2000 && checked < 200; i++ {
		p := randomPredicate(r, 2)
		q := randomPredicate(r, 1)
		if !Implies(p, q) {
			continue
		}
		checked++
		for x := int64(-2); x < 14; x++ {
			for _, s := range []string{"a", "b", "c", "d"} {
				row := value.Row{value.NewInt(x), value.NewStr(s)}
				p2, q2 := Clone(p), Clone(q)
				MustBind(p2, schema)
				MustBind(q2, schema)
				pv, _ := EvalBool(p2, row)
				qv, _ := EvalBool(q2, row)
				if pv && !qv {
					t.Fatalf("Implies unsound: p=%s q=%s row=%v", p, q, row)
				}
			}
		}
	}
	if checked == 0 {
		t.Error("no implication pairs exercised")
	}
}

// Property: Intersect is commutative w.r.t. Admits on sampled values.
func TestQuickIntersectCommutative(t *testing.T) {
	mk := func(seed int64) *Range {
		r := rand.New(rand.NewSource(seed))
		switch r.Intn(3) {
		case 0:
			return PointRange(value.NewInt(int64(r.Intn(10))))
		case 1:
			lo := int64(r.Intn(6))
			return IntervalRange(true, value.NewInt(lo), r.Intn(2) == 0, true, value.NewInt(lo+int64(r.Intn(6))), r.Intn(2) == 0)
		default:
			return &Range{NotIn: []value.Value{value.NewInt(int64(r.Intn(10)))}}
		}
	}
	f := func(a, b int64) bool {
		ra, rb := mk(a), mk(b)
		x, y := Intersect(ra, rb), Intersect(rb, ra)
		for v := int64(-1); v < 13; v++ {
			if x.Admits(value.NewInt(v)) != y.Admits(value.NewInt(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitColLitFlip(t *testing.T) {
	// 5 < x must normalize to x > 5.
	colKey, r, ok := rangeOfConjunct(Cmp("<", Int(5), col("t", "x")))
	if !ok || colKey != "t.x" {
		t.Fatalf("flip failed: %v %v", colKey, ok)
	}
	if r.Admits(value.NewInt(5)) || !r.Admits(value.NewInt(6)) {
		t.Error("5 < x range wrong")
	}
}

func TestRangeOfConjunctRejectsComplex(t *testing.T) {
	if _, _, ok := rangeOfConjunct(Eq(col("a", "x"), col("b", "y"))); ok {
		t.Error("join predicate is not range-expressible")
	}
	if _, _, ok := rangeOfConjunct(&Between{X: col("t", "x"), Lo: Int(1), Hi: Int(2), Not: true}); ok {
		t.Error("NOT BETWEEN is residual")
	}
}

func TestOrBuilder(t *testing.T) {
	e := Or([]Expr{Eq(col("t", "x"), Int(1)), Eq(col("t", "x"), Int(2))})
	if e.String() != "t.x = 1 OR t.x = 2" {
		t.Errorf("Or: %s", e)
	}
	if Or(nil) != nil {
		t.Error("Or(nil) must be nil")
	}
}

func TestStringsHelpers(t *testing.T) {
	if lower("ABc") != "abc" {
		t.Error("lower")
	}
	if !strings.Contains((&Agg{Fn: "COUNT", Star: true}).String(), "COUNT(*)") {
		t.Error("count star render")
	}
	a := &Agg{Fn: "SUM", Arg: col("t", "x"), Distinct: true}
	if a.String() != "SUM(DISTINCT t.x)" {
		t.Errorf("agg render: %s", a)
	}
}
