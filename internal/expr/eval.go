package expr

import (
	"fmt"
	"strings"

	"qtrade/internal/value"
)

// ColumnID identifies one output column of an operator or table for binding:
// the (table-or-alias, column) pair exposed to expressions.
type ColumnID struct {
	Table string
	Name  string
}

// Key returns the canonical lower-case identity of the column id.
func (c ColumnID) Key() string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
}

// Bind resolves every column reference in e against schema, setting
// Column.Index to the row position. Unqualified names match any table;
// ambiguous unqualified names are an error. Bind mutates e in place.
func Bind(e Expr, schema []ColumnID) error {
	var err error
	Walk(e, func(n Expr) bool {
		c, ok := n.(*Column)
		if !ok || err != nil {
			return err == nil
		}
		idx := -1
		for i, s := range schema {
			if !strings.EqualFold(c.Name, s.Name) {
				continue
			}
			if c.Table != "" && !strings.EqualFold(c.Table, s.Table) {
				continue
			}
			if idx >= 0 && c.Table == "" {
				err = fmt.Errorf("expr: ambiguous column %q", c.Name)
				return false
			}
			idx = i
			if c.Table != "" {
				break
			}
		}
		if idx < 0 {
			err = fmt.Errorf("expr: unknown column %s", c)
			return false
		}
		c.Index = idx
		return true
	})
	return err
}

// MustBind binds and panics on failure; for tests and static plans.
func MustBind(e Expr, schema []ColumnID) Expr {
	if err := Bind(e, schema); err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates a bound expression against a row. Aggregate nodes cannot be
// evaluated here (the executor's aggregation operator handles them) and
// return an error.
func Eval(e Expr, row value.Row) (value.Value, error) {
	switch t := e.(type) {
	case *Lit:
		return t.V, nil
	case *Column:
		if t.Index < 0 || t.Index >= len(row) {
			return value.Value{}, fmt.Errorf("expr: unbound column %s (index %d, row width %d)", t, t.Index, len(row))
		}
		return row[t.Index], nil
	case *Binary:
		return evalBinary(t, row)
	case *Unary:
		x, err := Eval(t.X, row)
		if err != nil {
			return value.Value{}, err
		}
		switch t.Op {
		case "NOT":
			if x.IsNull() {
				return value.NewNull(), nil
			}
			return value.NewBool(!x.Truth()), nil
		case "-":
			switch x.K {
			case value.Int:
				return value.NewInt(-x.I), nil
			case value.Float:
				return value.NewFloat(-x.F), nil
			case value.Null:
				return value.NewNull(), nil
			}
			return value.Value{}, fmt.Errorf("expr: cannot negate %s", x.K)
		}
		return value.Value{}, fmt.Errorf("expr: unknown unary op %q", t.Op)
	case *In:
		return evalIn(t, row)
	case *Between:
		x, err := Eval(t.X, row)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := Eval(t.Lo, row)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := Eval(t.Hi, row)
		if err != nil {
			return value.Value{}, err
		}
		c1, ok1 := value.Compare(x, lo)
		c2, ok2 := value.Compare(x, hi)
		if !ok1 || !ok2 {
			return value.NewNull(), nil
		}
		res := c1 >= 0 && c2 <= 0
		if t.Not {
			res = !res
		}
		return value.NewBool(res), nil
	case *IsNull:
		x, err := Eval(t.X, row)
		if err != nil {
			return value.Value{}, err
		}
		res := x.IsNull()
		if t.Not {
			res = !res
		}
		return value.NewBool(res), nil
	case *Agg:
		return value.Value{}, fmt.Errorf("expr: aggregate %s evaluated outside aggregation operator", t.Fn)
	}
	return value.Value{}, fmt.Errorf("expr: cannot evaluate %T", e)
}

func evalBinary(b *Binary, row value.Row) (value.Value, error) {
	switch b.Op {
	case "AND":
		l, err := Eval(b.L, row)
		if err != nil {
			return value.Value{}, err
		}
		if !l.IsNull() && !l.Truth() {
			return value.NewBool(false), nil
		}
		r, err := Eval(b.R, row)
		if err != nil {
			return value.Value{}, err
		}
		if !r.IsNull() && !r.Truth() {
			return value.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return value.NewNull(), nil
		}
		return value.NewBool(true), nil
	case "OR":
		l, err := Eval(b.L, row)
		if err != nil {
			return value.Value{}, err
		}
		if !l.IsNull() && l.Truth() {
			return value.NewBool(true), nil
		}
		r, err := Eval(b.R, row)
		if err != nil {
			return value.Value{}, err
		}
		if !r.IsNull() && r.Truth() {
			return value.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return value.NewNull(), nil
		}
		return value.NewBool(false), nil
	}
	l, err := Eval(b.L, row)
	if err != nil {
		return value.Value{}, err
	}
	r, err := Eval(b.R, row)
	if err != nil {
		return value.Value{}, err
	}
	switch b.Op {
	case "+", "-", "*", "/", "%":
		return value.Arith(b.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := value.Compare(l, r)
		if !ok {
			return value.NewNull(), nil
		}
		var res bool
		switch b.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return value.NewBool(res), nil
	}
	return value.Value{}, fmt.Errorf("expr: unknown binary op %q", b.Op)
}

func evalIn(t *In, row value.Row) (value.Value, error) {
	x, err := Eval(t.X, row)
	if err != nil {
		return value.Value{}, err
	}
	if x.IsNull() {
		return value.NewNull(), nil
	}
	sawNull := false
	for _, item := range t.List {
		v, err := Eval(item, row)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if value.Equal(x, v) {
			return value.NewBool(!t.Not), nil
		}
	}
	if sawNull {
		return value.NewNull(), nil
	}
	return value.NewBool(t.Not), nil
}

// EvalBool evaluates a predicate, mapping NULL to false (WHERE semantics).
func EvalBool(e Expr, row value.Row) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := Eval(e, row)
	if err != nil {
		return false, err
	}
	return v.Truth(), nil
}
