package expr

import (
	"qtrade/internal/value"
)

// Range is the set of values a single column may take under a conjunction of
// simple predicates. It is kept in one of two canonical forms:
//
//   - a finite set: Set != nil (interval and exclusions folded in), or
//   - an interval with optional bounds plus a list of excluded points.
//
// Range analysis underpins partition pruning, the seller rewrite algorithm
// (dropping partitions whose defining predicate contradicts the query), and
// the buyer predicates analyser's redundancy elimination.
type Range struct {
	Set []value.Value // finite form; nil means "interval form"

	HasLo, HasHi bool
	Lo, Hi       value.Value
	LoInc, HiInc bool
	NotIn        []value.Value

	Empty bool
}

// FullRange returns the unconstrained range.
func FullRange() *Range { return &Range{} }

// PointRange returns the range holding exactly v.
func PointRange(v value.Value) *Range { return &Range{Set: []value.Value{v}} }

// SetRange returns the finite range over the given values.
func SetRange(vs []value.Value) *Range {
	out := &Range{Set: append([]value.Value(nil), vs...)}
	out.normalize()
	return out
}

// IntervalRange builds lo..hi with the given bound inclusivity; a missing
// bound is expressed by hasLo/hasHi=false.
func IntervalRange(hasLo bool, lo value.Value, loInc bool, hasHi bool, hi value.Value, hiInc bool) *Range {
	r := &Range{HasLo: hasLo, Lo: lo, LoInc: loInc, HasHi: hasHi, Hi: hi, HiInc: hiInc}
	r.normalize()
	return r
}

// normalize folds interval/exclusion constraints into Set form when Set is
// non-nil and detects empty intervals.
func (r *Range) normalize() {
	if r.Empty {
		return
	}
	if r.Set != nil {
		kept := r.Set[:0]
		for _, v := range r.Set {
			if r.admitsInterval(v) && !inList(r.NotIn, v) {
				kept = append(kept, v)
			}
		}
		r.Set = dedupValues(kept)
		r.HasLo, r.HasHi, r.NotIn = false, false, nil
		if len(r.Set) == 0 {
			r.Empty = true
		}
		return
	}
	if r.HasLo && r.HasHi {
		c, ok := value.Compare(r.Lo, r.Hi)
		if ok && (c > 0 || (c == 0 && !(r.LoInc && r.HiInc))) {
			r.Empty = true
			return
		}
		if ok && c == 0 && r.LoInc && r.HiInc {
			// Degenerate interval is the point {Lo}.
			r.Set = []value.Value{r.Lo}
			r.normalize()
			return
		}
	}
}

// admitsInterval reports whether v satisfies the interval bounds (ignoring
// Set and NotIn).
func (r *Range) admitsInterval(v value.Value) bool {
	if r.HasLo {
		c, ok := value.Compare(v, r.Lo)
		if !ok || c < 0 || (c == 0 && !r.LoInc) {
			return false
		}
	}
	if r.HasHi {
		c, ok := value.Compare(v, r.Hi)
		if !ok || c > 0 || (c == 0 && !r.HiInc) {
			return false
		}
	}
	return true
}

// Admits reports whether a single value satisfies the range.
func (r *Range) Admits(v value.Value) bool {
	if r.Empty {
		return false
	}
	if r.Set != nil {
		return inList(r.Set, v)
	}
	return r.admitsInterval(v) && !inList(r.NotIn, v)
}

func inList(list []value.Value, v value.Value) bool {
	for _, x := range list {
		if value.Equal(x, v) {
			return true
		}
	}
	return false
}

func dedupValues(list []value.Value) []value.Value {
	var out []value.Value
	for _, v := range list {
		if !inList(out, v) {
			out = append(out, v)
		}
	}
	return out
}

// Intersect returns the range satisfying both r and o.
func Intersect(r, o *Range) *Range {
	if r.Empty || o.Empty {
		return &Range{Empty: true}
	}
	if r.Set != nil && o.Set != nil {
		var keep []value.Value
		for _, v := range r.Set {
			if inList(o.Set, v) {
				keep = append(keep, v)
			}
		}
		out := &Range{Set: keep}
		if len(keep) == 0 {
			out.Empty = true
			out.Set = []value.Value{}
		}
		return out
	}
	if r.Set != nil || o.Set != nil {
		fin, interval := r, o
		if o.Set != nil {
			fin, interval = o, r
		}
		var keep []value.Value
		for _, v := range fin.Set {
			if interval.Admits(v) {
				keep = append(keep, v)
			}
		}
		out := &Range{Set: keep}
		if len(keep) == 0 {
			out.Empty = true
			out.Set = []value.Value{}
		}
		return out
	}
	out := &Range{
		HasLo: r.HasLo, Lo: r.Lo, LoInc: r.LoInc,
		HasHi: r.HasHi, Hi: r.Hi, HiInc: r.HiInc,
		NotIn: append(append([]value.Value(nil), r.NotIn...), o.NotIn...),
	}
	if o.HasLo {
		if !out.HasLo {
			out.HasLo, out.Lo, out.LoInc = true, o.Lo, o.LoInc
		} else if c, ok := value.Compare(o.Lo, out.Lo); ok && (c > 0 || (c == 0 && !o.LoInc)) {
			out.Lo, out.LoInc = o.Lo, o.LoInc
		}
	}
	if o.HasHi {
		if !out.HasHi {
			out.HasHi, out.Hi, out.HiInc = true, o.Hi, o.HiInc
		} else if c, ok := value.Compare(o.Hi, out.Hi); ok && (c < 0 || (c == 0 && !o.HiInc)) {
			out.Hi, out.HiInc = o.Hi, o.HiInc
		}
	}
	out.normalize()
	if out.Set != nil {
		// normalize may have collapsed to a point; re-apply exclusions.
		out.normalize()
	}
	return out
}

// Contains reports whether r is a superset of o (every value admitted by o is
// admitted by r). It is conservative: false negatives are possible when the
// relationship cannot be decided from the constraint forms.
func (r *Range) Contains(o *Range) bool {
	if o.Empty {
		return true
	}
	if r.Empty {
		return false
	}
	if o.Set != nil {
		for _, v := range o.Set {
			if !r.Admits(v) {
				return false
			}
		}
		return true
	}
	if r.Set != nil {
		// Finite r cannot contain an (infinite or undecidable) interval o.
		return false
	}
	// Interval vs interval: r's bounds must be no tighter than o's.
	if r.HasLo {
		if !o.HasLo {
			return false
		}
		c, ok := value.Compare(r.Lo, o.Lo)
		if !ok || c > 0 || (c == 0 && !r.LoInc && o.LoInc) {
			return false
		}
	}
	if r.HasHi {
		if !o.HasHi {
			return false
		}
		c, ok := value.Compare(r.Hi, o.Hi)
		if !ok || c < 0 || (c == 0 && !r.HiInc && o.HiInc) {
			return false
		}
	}
	// Every point r excludes must also be excluded by o.
	for _, v := range r.NotIn {
		if o.Admits(v) {
			return false
		}
	}
	return true
}

// rangeOfConjunct recognizes a simple single-column predicate and returns the
// column key and its range. ok=false means the predicate is not
// range-expressible (it becomes a residual conjunct).
func rangeOfConjunct(e Expr) (col string, r *Range, ok bool) {
	switch t := e.(type) {
	case *Binary:
		c, lit, op, good := splitColLit(t)
		if !good {
			return "", nil, false
		}
		switch op {
		case "=":
			return ColKey(c), PointRange(lit), true
		case "<>":
			return ColKey(c), &Range{NotIn: []value.Value{lit}}, true
		case "<":
			return ColKey(c), IntervalRange(false, value.Value{}, false, true, lit, false), true
		case "<=":
			return ColKey(c), IntervalRange(false, value.Value{}, false, true, lit, true), true
		case ">":
			return ColKey(c), IntervalRange(true, lit, false, false, value.Value{}, false), true
		case ">=":
			return ColKey(c), IntervalRange(true, lit, true, false, value.Value{}, false), true
		}
		return "", nil, false
	case *In:
		if t.Not {
			c, okc := t.X.(*Column)
			if !okc {
				return "", nil, false
			}
			var ex []value.Value
			for _, item := range t.List {
				l, okl := item.(*Lit)
				if !okl || l.V.IsNull() {
					return "", nil, false
				}
				ex = append(ex, l.V)
			}
			return ColKey(c), &Range{NotIn: ex}, true
		}
		c, okc := t.X.(*Column)
		if !okc {
			return "", nil, false
		}
		var vs []value.Value
		for _, item := range t.List {
			l, okl := item.(*Lit)
			if !okl {
				return "", nil, false
			}
			if l.V.IsNull() {
				continue
			}
			vs = append(vs, l.V)
		}
		return ColKey(c), SetRange(vs), true
	case *Between:
		if t.Not {
			return "", nil, false
		}
		c, okc := t.X.(*Column)
		lo, okl := t.Lo.(*Lit)
		hi, okh := t.Hi.(*Lit)
		if !okc || !okl || !okh {
			return "", nil, false
		}
		return ColKey(c), IntervalRange(true, lo.V, true, true, hi.V, true), true
	}
	return "", nil, false
}

// splitColLit decomposes a comparison between a column and a literal in
// either order, normalizing the operator so the column is on the left.
func splitColLit(b *Binary) (c *Column, lit value.Value, op string, ok bool) {
	flip := map[string]string{"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}
	if _, isCmp := flip[b.Op]; !isCmp {
		return nil, value.Value{}, "", false
	}
	if c, okc := b.L.(*Column); okc {
		if l, okl := b.R.(*Lit); okl && !l.V.IsNull() {
			return c, l.V, b.Op, true
		}
	}
	if c, okc := b.R.(*Column); okc {
		if l, okl := b.L.(*Lit); okl && !l.V.IsNull() {
			return c, l.V, flip[b.Op], true
		}
	}
	return nil, value.Value{}, "", false
}

// AnalyzeConjuncts splits a conjunct list into per-column ranges plus the
// residual conjuncts that are not range-expressible.
func AnalyzeConjuncts(conj []Expr) (ranges map[string]*Range, residual []Expr) {
	ranges = map[string]*Range{}
	for _, e := range conj {
		col, r, ok := rangeOfConjunct(e)
		if !ok {
			residual = append(residual, e)
			continue
		}
		if prev, exists := ranges[col]; exists {
			ranges[col] = Intersect(prev, r)
		} else {
			ranges[col] = r
		}
	}
	return ranges, residual
}

// Unsatisfiable reports whether the predicate is provably always false. It
// only inspects single-column ranges over the top-level conjunction, so a
// false return does not prove satisfiability.
func Unsatisfiable(e Expr) bool {
	if e == nil {
		return false
	}
	if l, ok := e.(*Lit); ok {
		return !l.V.IsNull() && !l.V.Truth() && l.V.K == value.Bool
	}
	ranges, _ := AnalyzeConjuncts(Conjuncts(e))
	for _, r := range ranges {
		if r.Empty {
			return true
		}
	}
	return false
}

// Implies reports whether predicate p implies predicate q (p ⇒ q), treating
// nil as TRUE. The test is conservative (sound, not complete): it succeeds
// when every range-expressible conjunct of q is subsumed by p's ranges and
// every residual conjunct of q appears verbatim in p.
func Implies(p, q Expr) bool {
	if q == nil {
		return true
	}
	if Unsatisfiable(p) {
		return true
	}
	pRanges, _ := AnalyzeConjuncts(Conjuncts(p))
	pSeen := map[string]bool{}
	for _, c := range Conjuncts(p) {
		pSeen[c.String()] = true
	}
	qRanges, qResidual := AnalyzeConjuncts(Conjuncts(q))
	for _, c := range qResidual {
		if !pSeen[c.String()] {
			return false
		}
	}
	for col, qr := range qRanges {
		pr, ok := pRanges[col]
		if !ok {
			return false
		}
		if !qr.Contains(pr) {
			return false
		}
	}
	return true
}
