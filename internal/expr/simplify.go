package expr

import (
	"sort"

	"qtrade/internal/value"
)

// Simplify rewrites an expression into a cheaper equivalent: constant
// folding, boolean identity elimination, double-negation removal, duplicate
// conjunct elimination, and contradiction detection via range analysis.
// A nil input stays nil. Simplify never changes WHERE-clause semantics
// (NULL-as-false), which the property tests assert.
func Simplify(e Expr) Expr {
	if e == nil {
		return nil
	}
	out := Transform(Clone(e), simplifyNode)
	out = dedupAnd(out)
	if Unsatisfiable(out) {
		return FalseExpr()
	}
	return out
}

// SimplifyPredicate is Simplify for WHERE clauses: a predicate that folds to
// TRUE becomes nil (no filter).
func SimplifyPredicate(e Expr) Expr {
	s := Simplify(e)
	if l, ok := s.(*Lit); ok && l.V.K == value.Bool && l.V.B {
		return nil
	}
	return s
}

// IsFalse reports whether the expression is the literal FALSE.
func IsFalse(e Expr) bool {
	l, ok := e.(*Lit)
	return ok && l.V.K == value.Bool && !l.V.B
}

// IsTrue reports whether the expression is the literal TRUE (or nil).
func IsTrue(e Expr) bool {
	if e == nil {
		return true
	}
	l, ok := e.(*Lit)
	return ok && l.V.K == value.Bool && l.V.B
}

func isConst(e Expr) bool {
	_, ok := e.(*Lit)
	return ok
}

func litBool(e Expr) (b bool, isBool bool) {
	l, ok := e.(*Lit)
	if !ok || l.V.K != value.Bool {
		return false, false
	}
	return l.V.B, true
}

var negated = map[string]string{
	"=": "<>", "<>": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">",
}

func simplifyNode(e Expr) Expr {
	switch t := e.(type) {
	case *Binary:
		switch t.Op {
		case "AND":
			if lb, ok := litBool(t.L); ok {
				if !lb {
					return FalseExpr()
				}
				return t.R
			}
			if rb, ok := litBool(t.R); ok {
				if !rb {
					return FalseExpr()
				}
				return t.L
			}
			return t
		case "OR":
			if lb, ok := litBool(t.L); ok {
				if lb {
					return TrueExpr()
				}
				return t.R
			}
			if rb, ok := litBool(t.R); ok {
				if rb {
					return TrueExpr()
				}
				return t.L
			}
			return t
		}
		if isConst(t.L) && isConst(t.R) {
			v, err := Eval(t, nil)
			if err == nil && !v.IsNull() {
				return NewLit(v)
			}
		}
		return t
	case *Unary:
		if t.Op == "NOT" {
			if b, ok := litBool(t.X); ok {
				return NewLit(value.NewBool(!b))
			}
			if inner, ok := t.X.(*Unary); ok && inner.Op == "NOT" {
				return inner.X
			}
			if cmp, ok := t.X.(*Binary); ok {
				if neg, has := negated[cmp.Op]; has {
					return &Binary{Op: neg, L: cmp.L, R: cmp.R}
				}
			}
			if in, ok := t.X.(*In); ok {
				return &In{X: in.X, List: in.List, Not: !in.Not}
			}
			if bw, ok := t.X.(*Between); ok {
				return &Between{X: bw.X, Lo: bw.Lo, Hi: bw.Hi, Not: !bw.Not}
			}
			if n, ok := t.X.(*IsNull); ok {
				return &IsNull{X: n.X, Not: !n.Not}
			}
		}
		if t.Op == "-" && isConst(t.X) {
			v, err := Eval(t, nil)
			if err == nil {
				return NewLit(v)
			}
		}
		return t
	case *In:
		// Single-element IN collapses to a comparison.
		if len(t.List) == 1 {
			op := "="
			if t.Not {
				op = "<>"
			}
			return &Binary{Op: op, L: t.X, R: t.List[0]}
		}
		if isConst(t.X) && allConst(t.List) {
			v, err := Eval(t, nil)
			if err == nil && !v.IsNull() {
				return NewLit(v)
			}
		}
		return t
	case *Between:
		if isConst(t.X) && isConst(t.Lo) && isConst(t.Hi) {
			v, err := Eval(t, nil)
			if err == nil && !v.IsNull() {
				return NewLit(v)
			}
		}
		return t
	case *IsNull:
		if l, ok := t.X.(*Lit); ok {
			res := l.V.IsNull()
			if t.Not {
				res = !res
			}
			return NewLit(value.NewBool(res))
		}
		return t
	}
	return e
}

func allConst(list []Expr) bool {
	for _, e := range list {
		if !isConst(e) {
			return false
		}
	}
	return true
}

// dedupAnd removes duplicate and subsumed conjuncts from a top-level AND
// chain, keeping a deterministic order.
func dedupAnd(e Expr) Expr {
	conj := Conjuncts(e)
	if len(conj) <= 1 {
		return e
	}
	seen := map[string]bool{}
	var kept []Expr
	for _, c := range conj {
		if b, ok := litBool(c); ok {
			if !b {
				return FalseExpr()
			}
			continue
		}
		s := c.String()
		if !seen[s] {
			seen[s] = true
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return TrueExpr()
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].String() < kept[j].String() })
	return And(kept)
}

// RenameTables rewrites every column qualifier through the mapping (old
// lower-cased name -> new name). Unmapped qualifiers are untouched. Used when
// rewriting queries between alias namespaces during trading.
func RenameTables(e Expr, mapping map[string]string) Expr {
	if e == nil {
		return nil
	}
	return Transform(Clone(e), func(n Expr) Expr {
		if c, ok := n.(*Column); ok {
			if nn, has := mapping[lower(c.Table)]; has {
				return &Column{Table: nn, Name: c.Name, Index: c.Index}
			}
		}
		return n
	})
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// ConjunctsOnTables partitions a predicate's conjuncts by which table set
// they reference: those referencing only tables in keep, and the rest.
func ConjunctsOnTables(e Expr, keep map[string]bool) (local, rest []Expr) {
	for _, c := range Conjuncts(e) {
		all := true
		for _, col := range Columns(c) {
			if !keep[lower(col.Table)] {
				all = false
				break
			}
		}
		if all {
			local = append(local, c)
		} else {
			rest = append(rest, c)
		}
	}
	return local, rest
}
