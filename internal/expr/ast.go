// Package expr implements the scalar expression engine shared by the parser,
// optimizers, rewriter and executor: an AST with SQL rendering, evaluation
// against rows, constant folding, conjunct algebra, and single-column range
// analysis (satisfiability and implication) which powers horizontal-partition
// pruning and the query-trading rewrite rules.
package expr

import (
	"fmt"
	"strings"

	"qtrade/internal/value"
)

// Expr is a scalar expression tree node. Implementations are immutable once
// built except for Column index resolution performed by Bind.
type Expr interface {
	fmt.Stringer
	node()
}

// Column references a column, optionally qualified by a table or alias name.
// Index is the position in the input row; it is -1 until resolved by Bind.
type Column struct {
	Table string
	Name  string
	Index int
}

// Lit is a literal value.
type Lit struct {
	V value.Value
}

// Binary applies a binary operator. Comparison ops: = <> < <= > >=;
// logical: AND OR; arithmetic: + - * / %.
type Binary struct {
	Op string
	L  Expr
	R  Expr
}

// Unary applies NOT or unary minus.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// In tests membership in a literal list.
type In struct {
	X    Expr
	List []Expr
	Not  bool
}

// Between tests Lo <= X <= Hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// IsNull tests X IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// Agg is an aggregate call: SUM, COUNT, AVG, MIN, MAX. Star marks COUNT(*).
type Agg struct {
	Fn       string
	Arg      Expr
	Star     bool
	Distinct bool
}

func (*Column) node()  {}
func (*Lit) node()     {}
func (*Binary) node()  {}
func (*Unary) node()   {}
func (*In) node()      {}
func (*Between) node() {}
func (*IsNull) node()  {}
func (*Agg) node()     {}

// NewColumn returns an unresolved column reference.
func NewColumn(table, name string) *Column {
	return &Column{Table: table, Name: name, Index: -1}
}

// NewLit wraps a value as a literal expression.
func NewLit(v value.Value) *Lit { return &Lit{V: v} }

// Int returns an integer literal.
func Int(i int64) *Lit { return NewLit(value.NewInt(i)) }

// Str returns a string literal.
func Str(s string) *Lit { return NewLit(value.NewStr(s)) }

// TrueExpr and FalseExpr are the boolean literal singletons (by value, not
// pointer identity).
func TrueExpr() *Lit  { return NewLit(value.NewBool(true)) }
func FalseExpr() *Lit { return NewLit(value.NewBool(false)) }

// Eq builds L = R.
func Eq(l, r Expr) *Binary { return &Binary{Op: "=", L: l, R: r} }

// Cmp builds an arbitrary binary node.
func Cmp(op string, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

func (c *Column) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (l *Lit) String() string { return l.V.String() }

// precedence for parenthesization when printing.
func precedence(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return 6
}

// nodePrec is the binding strength of a whole node when it appears as an
// operand, mirroring the parser grammar (postfix IN/BETWEEN/IS sit at
// comparison level; NOT binds between AND and comparisons).
func nodePrec(e Expr) int {
	switch t := e.(type) {
	case *Binary:
		return precedence(t.Op)
	case *In, *Between, *IsNull:
		return 3
	case *Unary:
		if t.Op == "NOT" {
			return 2
		}
		return 6 // unary minus always prints parenthesized
	}
	return 6 // columns, literals, aggregates
}

// associative reports whether chaining the operator left or right reads the
// same (so equal-precedence right operands need no parentheses).
func associative(op string) bool {
	switch op {
	case "AND", "OR", "+", "*":
		return true
	}
	return false
}

// childStr prints an operand of op, parenthesizing when the operand binds
// more loosely than the operator — and, for the right operand of
// non-associative operators, when it binds equally (a - (b - c)).
func childStr(parent string, child Expr, rightSide bool) string {
	p := nodePrec(child)
	pp := precedence(parent)
	if p < pp || (p == pp && rightSide && !associative(parent)) {
		return "(" + child.String() + ")"
	}
	return child.String()
}

// postfixOperand prints the subject of a postfix IN/BETWEEN/IS NULL, which
// the grammar requires to be at least additive unless the subject is itself
// a left-assoc comparison chain; anything at comparison level or below is
// parenthesized for an unambiguous round trip.
func postfixOperand(e Expr) string {
	if nodePrec(e) <= 3 {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func (b *Binary) String() string {
	return childStr(b.Op, b.L, false) + " " + b.Op + " " + childStr(b.Op, b.R, true)
}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "NOT (" + u.X.String() + ")"
	}
	return "-(" + u.X.String() + ")"
}

func (i *In) String() string {
	parts := make([]string, len(i.List))
	for k, e := range i.List {
		parts[k] = e.String()
	}
	not := ""
	if i.Not {
		not = " NOT"
	}
	return postfixOperand(i.X) + not + " IN (" + strings.Join(parts, ", ") + ")"
}

func (b *Between) String() string {
	not := ""
	if b.Not {
		not = " NOT"
	}
	// BETWEEN bounds are additive expressions in the grammar; an AND inside
	// an unparenthesized bound would be eaten by BETWEEN's own AND.
	lo, hi := b.Lo.String(), b.Hi.String()
	if nodePrec(b.Lo) <= 3 {
		lo = "(" + lo + ")"
	}
	if nodePrec(b.Hi) <= 3 {
		hi = "(" + hi + ")"
	}
	return postfixOperand(b.X) + not + " BETWEEN " + lo + " AND " + hi
}

func (n *IsNull) String() string {
	if n.Not {
		return postfixOperand(n.X) + " IS NOT NULL"
	}
	return postfixOperand(n.X) + " IS NULL"
}

func (a *Agg) String() string {
	if a.Star {
		return a.Fn + "(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return a.Fn + "(" + d + a.Arg.String() + ")"
}

// Clone deep-copies an expression tree.
func Clone(e Expr) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case *Column:
		c := *t
		return &c
	case *Lit:
		l := *t
		return &l
	case *Binary:
		return &Binary{Op: t.Op, L: Clone(t.L), R: Clone(t.R)}
	case *Unary:
		return &Unary{Op: t.Op, X: Clone(t.X)}
	case *In:
		list := make([]Expr, len(t.List))
		for i, x := range t.List {
			list[i] = Clone(x)
		}
		return &In{X: Clone(t.X), List: list, Not: t.Not}
	case *Between:
		return &Between{X: Clone(t.X), Lo: Clone(t.Lo), Hi: Clone(t.Hi), Not: t.Not}
	case *IsNull:
		return &IsNull{X: Clone(t.X), Not: t.Not}
	case *Agg:
		var arg Expr
		if t.Arg != nil {
			arg = Clone(t.Arg)
		}
		return &Agg{Fn: t.Fn, Arg: arg, Star: t.Star, Distinct: t.Distinct}
	}
	panic(fmt.Sprintf("expr: unknown node %T", e))
}

// Walk calls fn for every node in the tree, parents before children. If fn
// returns false the node's children are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch t := e.(type) {
	case *Binary:
		Walk(t.L, fn)
		Walk(t.R, fn)
	case *Unary:
		Walk(t.X, fn)
	case *In:
		Walk(t.X, fn)
		for _, x := range t.List {
			Walk(x, fn)
		}
	case *Between:
		Walk(t.X, fn)
		Walk(t.Lo, fn)
		Walk(t.Hi, fn)
	case *IsNull:
		Walk(t.X, fn)
	case *Agg:
		if t.Arg != nil {
			Walk(t.Arg, fn)
		}
	}
}

// Transform rebuilds the tree bottom-up, replacing each node with fn(node).
// fn receives a node whose children have already been transformed.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case *Binary:
		e = &Binary{Op: t.Op, L: Transform(t.L, fn), R: Transform(t.R, fn)}
	case *Unary:
		e = &Unary{Op: t.Op, X: Transform(t.X, fn)}
	case *In:
		list := make([]Expr, len(t.List))
		for i, x := range t.List {
			list[i] = Transform(x, fn)
		}
		e = &In{X: Transform(t.X, fn), List: list, Not: t.Not}
	case *Between:
		e = &Between{X: Transform(t.X, fn), Lo: Transform(t.Lo, fn), Hi: Transform(t.Hi, fn), Not: t.Not}
	case *IsNull:
		e = &IsNull{X: Transform(t.X, fn), Not: t.Not}
	case *Agg:
		var arg Expr
		if t.Arg != nil {
			arg = Transform(t.Arg, fn)
		}
		e = &Agg{Fn: t.Fn, Arg: arg, Star: t.Star, Distinct: t.Distinct}
	}
	return fn(e)
}

// Columns returns every column reference in the tree, in visit order.
func Columns(e Expr) []*Column {
	var out []*Column
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*Column); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// HasAgg reports whether the tree contains an aggregate call.
func HasAgg(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if _, ok := n.(*Agg); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// Tables returns the set of table qualifiers referenced by the expression.
// Unqualified columns contribute "".
func Tables(e Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range Columns(e) {
		out[strings.ToLower(c.Table)] = true
	}
	return out
}

// Conjuncts flattens nested ANDs into a list. A nil expression yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// And rebuilds a conjunction from a list; nil for an empty list.
func And(list []Expr) Expr {
	var out Expr
	for _, e := range list {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// Or builds a disjunction from a list; nil for an empty list.
func Or(list []Expr) Expr {
	var out Expr
	for _, e := range list {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: "OR", L: out, R: e}
		}
	}
	return out
}

// Equal reports structural equality via canonical rendering. It is
// conservative: semantically equal but syntactically different expressions
// may compare unequal.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// ColKey returns the canonical lower-cased identity of a column used by range
// analysis maps.
func ColKey(c *Column) string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Name)
}
