package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// dossierSummary is the list-view row at /debug/queries: everything needed
// to decide which dossier to open, without shipping spans and operators.
type dossierSummary struct {
	ID         string   `json:"id"`
	Buyer      string   `json:"buyer"`
	SQL        string   `json:"sql"`
	WallMS     float64  `json:"wall_ms"`
	ExecMS     float64  `json:"exec_ms"`
	QuotedMS   float64  `json:"quoted_ms"`
	CostRatio  float64  `json:"cost_ratio,omitempty"`
	Rows       int64    `json:"rows"`
	WireBytes  int64    `json:"wire_bytes"`
	Err        string   `json:"err,omitempty"`
	Recoveries int      `json:"recoveries,omitempty"`
	CardError  float64  `json:"max_card_error,omitempty"`
	Triggers   []string `json:"triggers,omitempty"`
}

func summarize(d *Dossier) dossierSummary {
	return dossierSummary{
		ID: d.ID, Buyer: d.Buyer, SQL: d.SQL,
		WallMS: d.WallMS, ExecMS: d.ExecMS, QuotedMS: d.QuotedMS,
		CostRatio: d.CostRatio, Rows: d.Rows, WireBytes: d.WireBytes,
		Err: d.Err, Recoveries: len(d.Recoveries), CardError: d.CardError,
		Triggers: d.Triggers,
	}
}

type recorderPayload struct {
	Capacity int              `json:"capacity"`
	WorstK   int              `json:"worst_k"`
	Admitted int64            `json:"admitted"`
	Flagged  int64            `json:"flagged"`
	Recent   []dossierSummary `json:"recent"`
	Outliers []dossierSummary `json:"outliers"`
}

// ServeHTTP serves the recorder on both /debug/queries (summaries of the
// recent ring and the worst-K outliers; ?n=k limits the recent list) and
// /debug/queries/{id} (one full dossier: spans, ledger events, operators).
// A nil recorder answers 404 so a disabled federation stays mountable.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	// Accept /debug/queries, /debug/queries/ and /debug/queries/{id}
	// regardless of the mount prefix.
	path := strings.TrimSuffix(req.URL.Path, "/")
	if i := strings.LastIndex(path, "/debug/queries"); i >= 0 {
		path = path[i+len("/debug/queries"):]
	}
	id := strings.TrimPrefix(path, "/")
	if id != "" {
		d := r.Get(id)
		if d == nil {
			http.Error(w, fmt.Sprintf("no dossier %q (evicted or never captured)", id), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(d)
		return
	}
	n := 0
	if raw := req.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	r.mu.Lock()
	capacity, worstK := r.capacity, r.worstK
	r.mu.Unlock()
	admitted, flagged := r.Stats()
	p := recorderPayload{
		Capacity: capacity, WorstK: worstK,
		Admitted: admitted, Flagged: flagged,
		Recent: make([]dossierSummary, 0, 8), Outliers: make([]dossierSummary, 0, 8),
	}
	for _, d := range r.Recent(n) {
		p.Recent = append(p.Recent, summarize(d))
	}
	for _, d := range r.Outliers() {
		p.Outliers = append(p.Outliers, summarize(d))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(p)
}
