// Package flight is the query flight recorder: one bounded structure per
// completed negotiation — the dossier — unifying the evidence that today
// lives on three disconnected surfaces (trace ring, trading ledger,
// executor RunStats). A dossier carries the grafted span tree, the
// negotiation's ledger event chain, per-operator est-vs-actual rows,
// quoted-vs-measured cost, wire bytes, and recovery reasons, so "why was
// that query slow" is answered by one GET instead of a three-way join by
// hand.
//
// The recorder retains a ring of recent dossiers plus a worst-K outlier set
// auto-captured by trigger rules (latency SLO breach, any recovery event,
// quoted-vs-measured cost outlier, est/actual cardinality blowout). Like
// the ledger and the tracer, a nil *Recorder is a valid off switch: every
// method is a pure nil check (pinned by TestDisabledRecorderZeroAlloc), and
// internal/core skips dossier assembly entirely when Config.Flight is nil.
package flight

import (
	"sort"
	"sync"
	"time"

	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

// Trigger names, as they appear in Dossier.Triggers and /debug/queries.
const (
	TrigSlow        = "slow_slo"     // wall time reached the latency SLO
	TrigRecovery    = "recovery"     // execution needed a recovery substitution
	TrigCostOutlier = "cost_outlier" // measured/quoted cost ratio outside band
	TrigCardError   = "card_blowout" // an operator's est/actual rows error blew past the threshold
)

// Triggers are the outlier-capture rules. The zero value means defaults for
// the ratio rules and a disabled latency SLO.
type Triggers struct {
	// SlowMS is the latency SLO in milliseconds: a dossier whose WallMS is
	// greater than OR EQUAL to it trips TrigSlow (exactly-at-SLO breaches).
	// 0 disables the rule.
	SlowMS float64
	// CostRatioFactor flags quoted-vs-measured outliers: a dossier whose
	// CostRatio is >= factor or <= 1/factor trips TrigCostOutlier.
	// 0 means DefaultCostRatioFactor.
	CostRatioFactor float64
	// CardErrorFactor flags cardinality misestimates: a dossier whose
	// CardError (the worst per-operator est-vs-actual rows ratio) is >= the
	// factor trips TrigCardError. 0 means DefaultCardErrorFactor.
	CardErrorFactor float64
}

// Default trigger factors: a seller off by 4× on cost or a planner off by
// 8× on cardinality is worth keeping.
const (
	DefaultCostRatioFactor = 4.0
	DefaultCardErrorFactor = 8.0
)

// Evaluate returns the trigger names d trips, in declaration order. Pure —
// the trigger-edge tests drive it directly.
func (t Triggers) Evaluate(d *Dossier) []string {
	var out []string
	if t.SlowMS > 0 && d.WallMS >= t.SlowMS {
		out = append(out, TrigSlow)
	}
	if len(d.Recoveries) > 0 {
		out = append(out, TrigRecovery)
	}
	cf := t.CostRatioFactor
	if cf <= 0 {
		cf = DefaultCostRatioFactor
	}
	if d.CostRatio > 0 && (d.CostRatio >= cf || d.CostRatio <= 1/cf) {
		out = append(out, TrigCostOutlier)
	}
	ef := t.CardErrorFactor
	if ef <= 0 {
		ef = DefaultCardErrorFactor
	}
	if d.CardError >= ef {
		out = append(out, TrigCardError)
	}
	return out
}

// OpStat is one operator's est-vs-actual row in a dossier, in the plan's
// pre-order (Depth indents like EXPLAIN).
type OpStat struct {
	Op       string  `json:"op"`
	Depth    int     `json:"depth"`
	EstRows  int64   `json:"est_rows"`            // -1 when the generator had no estimate
	Rows     int64   `json:"actual_rows"`         // rows produced
	RowsIn   int64   `json:"rows_in,omitempty"`   // rows consumed from children
	Calls    int     `json:"calls,omitempty"`     // cursor invocations
	TimeMS   float64 `json:"time_ms"`             // self+children elapsed
	Executed bool    `json:"executed"`            // false: purchased but pruned / never pulled
	ErrRatio float64 `json:"err_ratio,omitempty"` // max(est/actual, actual/est), smoothed by +1
}

// Recovery is one execution-time substitution the dossier's query survived.
type Recovery struct {
	Failed     string `json:"failed"`     // seller that did not deliver
	Substitute string `json:"substitute"` // seller whose standing offer patched the plan
	OfferID    string `json:"offer"`
	Reason     string `json:"reason,omitempty"` // crash/drain/timeout/…
}

// Dossier is one completed query's unified flight record.
type Dossier struct {
	ID    string    `json:"id"` // negotiation id (first RFB id)
	Buyer string    `json:"buyer"`
	SQL   string    `json:"sql"`
	Start time.Time `json:"start"`

	WallMS     float64 `json:"wall_ms"`     // optimize + execute
	OptimizeMS float64 `json:"optimize_ms"` // B1–B8 negotiation wall
	ExecMS     float64 `json:"exec_ms"`     // winning-plan execution wall

	QuotedMS    float64 `json:"quoted_ms"`            // Σ purchased offers' quoted cost
	QuotedPrice float64 `json:"quoted_price"`         // Σ purchased offers' asking prices
	FetchMS     float64 `json:"fetch_ms,omitempty"`   // Σ buyer-measured delivery walls
	CostRatio   float64 `json:"cost_ratio,omitempty"` // measured / quoted (>1 sellers underquoted)

	Rows      int64  `json:"rows"`
	WireBytes int64  `json:"wire_bytes"`
	Err       string `json:"err,omitempty"`

	CardError  float64    `json:"max_card_error,omitempty"` // worst OpStat.ErrRatio
	Recoveries []Recovery `json:"recoveries,omitempty"`
	Triggers   []string   `json:"triggers,omitempty"` // why the outlier set kept it

	Operators []OpStat           `json:"operators,omitempty"`
	Ledger    ledger.Negotiation `json:"ledger"`
	Spans     []*obs.SpanPayload `json:"spans,omitempty"`
}

// DefaultCapacity and DefaultWorstK shape a NewRecorder ring when the
// capacity argument is <= 0.
const (
	DefaultCapacity = 64
	DefaultWorstK   = 16
)

// Recorder retains recent dossiers plus the worst-K trigger-flagged
// outliers. Safe for concurrent use; a nil *Recorder no-ops everywhere.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	worstK   int
	trig     Triggers
	recent   []*Dossier // newest last
	outliers []*Dossier // worst (highest WallMS) first
	admitted int64
	flagged  int64
}

// NewRecorder returns a recorder retaining the last capacity dossiers
// (DefaultCapacity when capacity <= 0) plus DefaultWorstK outliers, with
// default triggers (no latency SLO until SetTriggers arms one).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{capacity: capacity, worstK: DefaultWorstK}
}

// SetTriggers replaces the outlier-capture rules (applies to dossiers
// admitted from now on). Nil-safe.
func (r *Recorder) SetTriggers(t Triggers) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.trig = t
	r.mu.Unlock()
}

// Triggers returns the active rules (zero value for nil).
func (r *Recorder) Triggers() Triggers {
	if r == nil {
		return Triggers{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trig
}

// SetWorstK resizes the outlier set (k < 1 restores the default). Nil-safe.
func (r *Recorder) SetWorstK(k int) {
	if r == nil {
		return
	}
	if k < 1 {
		k = DefaultWorstK
	}
	r.mu.Lock()
	r.worstK = k
	if len(r.outliers) > k {
		r.outliers = r.outliers[:k]
	}
	r.mu.Unlock()
}

// dropID removes any retained dossier with the given id. Caller holds r.mu.
// Re-admission under one id happens when recovery re-executes the same
// negotiation's plan: the final state replaces the partial one.
func (r *Recorder) dropID(id string) {
	for i := 0; i < len(r.recent); i++ {
		if r.recent[i].ID == id {
			r.recent = append(r.recent[:i], r.recent[i+1:]...)
			i--
		}
	}
	for i := 0; i < len(r.outliers); i++ {
		if r.outliers[i].ID == id {
			r.outliers = append(r.outliers[:i], r.outliers[i+1:]...)
			i--
		}
	}
}

// Admit evaluates the triggers on d, stamps d.Triggers, and retains it: in
// the recent ring always, and in the worst-K outlier set when a trigger
// fired. A dossier with an already-retained ID replaces the older capture.
// The recorder owns d after Admit. Nil-safe on both sides.
func (r *Recorder) Admit(d *Dossier) {
	if r == nil || d == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d.Triggers = r.trig.Evaluate(d)
	if d.ID != "" {
		r.dropID(d.ID)
	}
	r.admitted++
	r.recent = append(r.recent, d)
	if len(r.recent) > r.capacity {
		r.recent = r.recent[1:]
	}
	if len(d.Triggers) == 0 {
		return
	}
	r.flagged++
	at := sort.Search(len(r.outliers), func(i int) bool { return r.outliers[i].WallMS < d.WallMS })
	r.outliers = append(r.outliers, nil)
	copy(r.outliers[at+1:], r.outliers[at:])
	r.outliers[at] = d
	if len(r.outliers) > r.worstK {
		r.outliers = r.outliers[:r.worstK]
	}
}

// Recent returns up to n retained dossiers, newest first (all when n <= 0).
// Dossiers are shared snapshots: treat them as read-only.
func (r *Recorder) Recent(n int) []*Dossier {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := len(r.recent)
	if n > 0 && n < k {
		k = n
	}
	out := make([]*Dossier, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, r.recent[len(r.recent)-1-i])
	}
	return out
}

// Outliers returns the worst-K trigger-flagged dossiers, worst first.
func (r *Recorder) Outliers() []*Dossier {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Dossier(nil), r.outliers...)
}

// Slow merges the outlier set and the recent ring (outliers win ties),
// dedupes by ID, and returns up to n dossiers sorted slowest first — the
// qtsql \slow and Federation.SlowQueries view.
func (r *Recorder) Slow(n int) []*Dossier {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	seen := make(map[string]bool, len(r.outliers)+len(r.recent))
	merged := make([]*Dossier, 0, len(r.outliers)+len(r.recent))
	for _, d := range r.outliers {
		if !seen[d.ID] {
			seen[d.ID] = true
			merged = append(merged, d)
		}
	}
	for _, d := range r.recent {
		if !seen[d.ID] {
			seen[d.ID] = true
			merged = append(merged, d)
		}
	}
	r.mu.Unlock()
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].WallMS > merged[j].WallMS })
	if n > 0 && n < len(merged) {
		merged = merged[:n]
	}
	return merged
}

// Get returns the retained dossier with the given id (nil when evicted or
// never captured).
func (r *Recorder) Get(id string) *Dossier {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.recent) - 1; i >= 0; i-- {
		if r.recent[i].ID == id {
			return r.recent[i]
		}
	}
	for _, d := range r.outliers {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Stats reports how many dossiers were admitted ever and how many tripped
// at least one trigger.
func (r *Recorder) Stats() (admitted, flagged int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admitted, r.flagged
}

// Len reports how many dossiers the recent ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recent)
}
