package flight

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

func d(id string, wall float64) *Dossier {
	return &Dossier{ID: id, Buyer: "hq", SQL: "SELECT 1", WallMS: wall}
}

// TestDisabledRecorderZeroAlloc pins the off switch: a nil *Recorder must
// be free on the hot path, exactly like the nil ledger and tracer.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	doss := d("q1", 5)
	allocs := testing.AllocsPerRun(100, func() {
		r.Admit(doss)
		r.SetTriggers(Triggers{SlowMS: 1})
		_ = r.Triggers()
		_ = r.Recent(4)
		_ = r.Outliers()
		_ = r.Slow(4)
		_ = r.Get("q1")
		_, _ = r.Stats()
		_ = r.Len()
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder must not allocate, got %.1f allocs/op", allocs)
	}
}

// TestTriggerEdges pins the rule boundaries the outlier set depends on.
func TestTriggerEdges(t *testing.T) {
	trig := Triggers{SlowMS: 100}

	// Exactly at the SLO counts as a breach.
	if got := trig.Evaluate(&Dossier{WallMS: 100}); len(got) != 1 || got[0] != TrigSlow {
		t.Fatalf("exactly-at-SLO must trip slow_slo: %v", got)
	}
	if got := trig.Evaluate(&Dossier{WallMS: 99.999}); len(got) != 0 {
		t.Fatalf("below SLO must not trip: %v", got)
	}
	// SlowMS == 0 disables the latency rule entirely.
	if got := (Triggers{}).Evaluate(&Dossier{WallMS: 1e9}); len(got) != 0 {
		t.Fatalf("disabled SLO tripped: %v", got)
	}

	// A recovery-then-success query still carries its recovery list and is
	// captured even though it finished fine and fast.
	rec := &Dossier{WallMS: 1, Recoveries: []Recovery{{Failed: "n2", Substitute: "n3", Reason: "crash"}}}
	if got := trig.Evaluate(rec); len(got) != 1 || got[0] != TrigRecovery {
		t.Fatalf("recovery-then-success must trip recovery: %v", got)
	}

	// Cost ratio trips on both sides of the default 4× band.
	if got := (Triggers{}).Evaluate(&Dossier{CostRatio: 4}); len(got) != 1 || got[0] != TrigCostOutlier {
		t.Fatalf("4x underquote must trip: %v", got)
	}
	if got := (Triggers{}).Evaluate(&Dossier{CostRatio: 0.25}); len(got) != 1 || got[0] != TrigCostOutlier {
		t.Fatalf("4x overquote must trip: %v", got)
	}
	if got := (Triggers{}).Evaluate(&Dossier{CostRatio: 3.9}); len(got) != 0 {
		t.Fatalf("in-band ratio tripped: %v", got)
	}
	if got := (Triggers{}).Evaluate(&Dossier{CostRatio: 0}); len(got) != 0 {
		t.Fatalf("unknown ratio (no quotes) tripped: %v", got)
	}

	// Cardinality blowout at the default 8× threshold.
	if got := (Triggers{}).Evaluate(&Dossier{CardError: 8}); len(got) != 1 || got[0] != TrigCardError {
		t.Fatalf("8x card error must trip: %v", got)
	}
	if got := (Triggers{CardErrorFactor: 100}).Evaluate(&Dossier{CardError: 8}); len(got) != 0 {
		t.Fatalf("raised threshold still tripped: %v", got)
	}

	// Multiple rules can fire at once; order is stable.
	multi := trig.Evaluate(&Dossier{WallMS: 500, CostRatio: 10, CardError: 20,
		Recoveries: []Recovery{{Failed: "n2"}}})
	want := []string{TrigSlow, TrigRecovery, TrigCostOutlier, TrigCardError}
	if fmt.Sprint(multi) != fmt.Sprint(want) {
		t.Fatalf("multi-trigger: got %v want %v", multi, want)
	}
}

// TestRecorderRetention pins the ring bound, the worst-K ordering, and the
// replace-by-ID semantics recovery re-execution depends on.
func TestRecorderRetention(t *testing.T) {
	r := NewRecorder(4)
	r.SetTriggers(Triggers{SlowMS: 100})
	r.SetWorstK(2)

	for i := 0; i < 8; i++ {
		r.Admit(d(fmt.Sprintf("q%d", i), float64(10*i))) // q0..q7, walls 0..70
	}
	if r.Len() != 4 {
		t.Fatalf("ring must hold capacity: %d", r.Len())
	}
	recent := r.Recent(0)
	if len(recent) != 4 || recent[0].ID != "q7" || recent[3].ID != "q4" {
		t.Fatalf("recent order: %v", ids(recent))
	}
	if got := r.Recent(2); len(got) != 2 || got[0].ID != "q7" {
		t.Fatalf("recent limit: %v", ids(got))
	}
	if len(r.Outliers()) != 0 {
		t.Fatal("nothing breached the SLO yet")
	}

	// Three breaches into a worst-2 set: the mildest one falls out.
	r.Admit(d("s1", 150))
	r.Admit(d("s2", 400))
	r.Admit(d("s3", 250))
	out := r.Outliers()
	if len(out) != 2 || out[0].ID != "s2" || out[1].ID != "s3" {
		t.Fatalf("worst-K: %v", ids(out))
	}
	if out[0].Triggers[0] != TrigSlow {
		t.Fatalf("admitted dossier must be stamped with its triggers: %v", out[0].Triggers)
	}

	// The ring evicted s1 (capacity 4: s3,s2,s1,q7 → wait, it holds the
	// last 4 admitted: q7 was pushed out). Outlier retention is independent
	// of the ring, so an evicted-from-ring outlier stays addressable.
	for i := 0; i < 8; i++ {
		r.Admit(d(fmt.Sprintf("f%d", i), 1))
	}
	if got := r.Get("s2"); got == nil || got.WallMS != 400 {
		t.Fatal("outlier must survive ring eviction")
	}

	// Re-admitting an ID (recovery re-executed the plan) replaces, never
	// duplicates.
	r.Admit(d("s2", 600))
	if got := r.Get("s2"); got.WallMS != 600 {
		t.Fatalf("replace-by-ID: %v", got.WallMS)
	}
	n := 0
	for _, x := range append(r.Recent(0), r.Outliers()...) {
		if x.ID == "s2" {
			n++
		}
	}
	if n != 2 { // once in ring, once in outliers — never twice in either
		t.Fatalf("s2 retained %d times", n)
	}

	admitted, flagged := r.Stats()
	if admitted != 20 || flagged != 4 {
		t.Fatalf("stats: admitted=%d flagged=%d", admitted, flagged)
	}
}

// TestRecorderSlow pins the merged slowest-first view behind qtsql \slow.
func TestRecorderSlow(t *testing.T) {
	r := NewRecorder(3)
	r.SetTriggers(Triggers{SlowMS: 100})
	r.Admit(d("a", 150)) // outlier, will fall out of the ring
	r.Admit(d("b", 20))
	r.Admit(d("c", 90))
	r.Admit(d("e", 50)) // evicts a from the ring
	slow := r.Slow(0)
	if len(slow) != 4 || slow[0].ID != "a" || slow[1].ID != "c" || slow[2].ID != "e" || slow[3].ID != "b" {
		t.Fatalf("slow view: %v", ids(slow))
	}
	if got := r.Slow(2); len(got) != 2 || got[0].ID != "a" || got[1].ID != "c" {
		t.Fatalf("slow limit: %v", ids(got))
	}
}

func ids(ds []*Dossier) []string {
	out := make([]string, len(ds))
	for i, x := range ds {
		out[i] = x.ID
	}
	return out
}

// TestRecorderHTTP drives both endpoints through real requests.
func TestRecorderHTTP(t *testing.T) {
	r := NewRecorder(8)
	r.SetTriggers(Triggers{SlowMS: 100})
	l := ledger.New(4)
	rec := l.Begin("hq", "SELECT x FROM t")
	rec.RFBIssued("hq-rfb1", 1, 2)
	full := &Dossier{
		ID: "hq-rfb1", Buyer: "hq", SQL: "SELECT x FROM t", WallMS: 250,
		OptimizeMS: 50, ExecMS: 200, QuotedMS: 40, CostRatio: 5,
		Rows: 10, WireBytes: 1234,
		Recoveries: []Recovery{{Failed: "n2", Substitute: "n3", OfferID: "o9", Reason: "crash"}},
		Operators:  []OpStat{{Op: "Join", EstRows: 10, Rows: 80, ErrRatio: 7.36, Executed: true}},
		Ledger:     rec.Snapshot(),
		Spans:      []*obs.SpanPayload{{Source: "hq", Name: "optimize"}},
	}
	r.Admit(full)
	r.Admit(d("hq-rfb2", 5))

	// List view.
	w := httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries", nil))
	if w.Code != 200 {
		t.Fatalf("list: %d %s", w.Code, w.Body)
	}
	var p recorderPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Admitted != 2 || p.Flagged != 1 || len(p.Recent) != 2 || len(p.Outliers) != 1 {
		t.Fatalf("payload: %+v", p)
	}
	if p.Outliers[0].ID != "hq-rfb1" || p.Outliers[0].Recoveries != 1 || len(p.Outliers[0].Triggers) == 0 {
		t.Fatalf("outlier summary: %+v", p.Outliers[0])
	}

	// ?n limit and bad n.
	w = httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries?n=1", nil))
	p = recorderPayload{}
	_ = json.Unmarshal(w.Body.Bytes(), &p)
	if len(p.Recent) != 1 || p.Recent[0].ID != "hq-rfb2" {
		t.Fatalf("n=1: %+v", p.Recent)
	}
	w = httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries?n=zero", nil))
	if w.Code != 400 {
		t.Fatalf("bad n: %d", w.Code)
	}

	// Detail view: one response carrying spans + ledger + operators +
	// quoted-vs-measured — the acceptance shape.
	w = httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries/hq-rfb1", nil))
	if w.Code != 200 {
		t.Fatalf("detail: %d %s", w.Code, w.Body)
	}
	body := w.Body.String()
	for _, want := range []string{`"optimize"`, `"rfb"`, `"est_rows": 10`, `"actual_rows": 80`,
		`"quoted_ms": 40`, `"exec_ms": 200`, `"cost_ratio": 5`, `"reason": "crash"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("detail missing %s:\n%s", want, body)
		}
	}

	w = httptest.NewRecorder()
	r.ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries/nope", nil))
	if w.Code != 404 {
		t.Fatalf("unknown id: %d", w.Code)
	}

	var nilR *Recorder
	w = httptest.NewRecorder()
	nilR.ServeHTTP(w, httptest.NewRequest("GET", "/debug/queries", nil))
	if w.Code != 404 || !strings.Contains(w.Body.String(), "disabled") {
		t.Fatalf("nil recorder: %d %s", w.Code, w.Body)
	}
}
