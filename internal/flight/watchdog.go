package flight

import (
	"math"
	"strings"
	"sync"

	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

// Anomaly kinds, as they appear in ledger anomaly events and /debug logs.
const (
	AnomalyP95         = "p95_regression"          // a latency histogram's windowed p95 regressed vs baseline
	AnomalyRecovery    = "recovery_spike"          // recovery fallbacks per window jumped
	AnomalyHitRate     = "pricecache_hitrate_drop" // a seller's price-cache hit rate fell off a cliff
	AnomalyCalibration = "calibration_drift"       // a seller's signed EWMA quote error left the band
)

// Anomaly is one watchdog finding: metric, the offending value, the trailing
// baseline it was judged against, and the window it was seen in.
type Anomaly struct {
	Kind     string  `json:"kind"`
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	Window   int64   `json:"window"`
}

// WatchdogConfig tunes the anomaly rules; zero values take the defaults.
type WatchdogConfig struct {
	// P95Factor flags a histogram window whose p95 is >= factor × the
	// trailing EWMA baseline. Default 3.
	P95Factor float64
	// MinSamples gates the p95 and hit-rate rules: windows with fewer
	// observations are too noisy to judge. Default 5.
	MinSamples int64
	// RecoveryFactor flags a window whose recovery-counter delta is both
	// >= 1 and > factor × the trailing baseline rate. Default 3.
	RecoveryFactor float64
	// HitRateDrop flags a window whose price-cache hit rate fell by at
	// least this much (absolute) below the trailing baseline. Default 0.25.
	HitRateDrop float64
	// CalibrationErr flags a seller whose |EWMA quote error| reaches this
	// threshold (1.0 = quotes off by 100%). Default 1.0.
	CalibrationErr float64
	// BaselineAlpha is the EWMA weight of the newest window when updating
	// baselines. Default 0.3.
	BaselineAlpha float64
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.P95Factor <= 0 {
		c.P95Factor = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.RecoveryFactor <= 0 {
		c.RecoveryFactor = 3
	}
	if c.HitRateDrop <= 0 {
		c.HitRateDrop = 0.25
	}
	if c.CalibrationErr <= 0 {
		c.CalibrationErr = 1
	}
	if c.BaselineAlpha <= 0 || c.BaselineAlpha > 1 {
		c.BaselineAlpha = 0.3
	}
	return c
}

// watchdogLogCap bounds the in-memory anomaly log.
const watchdogLogCap = 64

// Watchdog compares each freshly closed metrics window against trailing
// EWMA baselines and emits typed anomaly events into the trading ledger
// plus watchdog.* instruments. Attach it to a History (or call Observe
// directly from tests and experiments). A nil *Watchdog no-ops.
type Watchdog struct {
	cfg   WatchdogConfig
	ledg  *ledger.Ledger
	calib func() ledger.Report

	anomalies   *obs.Counter // watchdog.anomalies: total findings ever
	windowGauge *obs.Gauge   // watchdog.window_anomalies: findings in the newest window
	lastWindow  *obs.Gauge   // watchdog.last_anomaly_window: seq of the last offending window

	mu        sync.Mutex
	p95       map[string]float64 // histogram name → EWMA p95 baseline
	recRate   map[string]float64 // recovery counter name → EWMA delta/window
	hitRate   map[string]float64 // cache prefix → EWMA hit rate
	calWarned map[string]bool    // seller → already flagged (rising edge only)
	log       []Anomaly          // newest last, bounded at watchdogLogCap
}

// NewWatchdog builds a watchdog reporting into ledg and m (either may be
// nil — the corresponding sink just stays quiet).
func NewWatchdog(cfg WatchdogConfig, ledg *ledger.Ledger, m *obs.Metrics) *Watchdog {
	return &Watchdog{
		cfg:         cfg.withDefaults(),
		ledg:        ledg,
		calib:       func() ledger.Report { return ledg.Calibration() },
		anomalies:   m.Counter("watchdog.anomalies"),
		windowGauge: m.Gauge("watchdog.window_anomalies"),
		lastWindow:  m.Gauge("watchdog.last_anomaly_window"),
		p95:         make(map[string]float64),
		recRate:     make(map[string]float64),
		hitRate:     make(map[string]float64),
		calWarned:   make(map[string]bool),
	}
}

// SetCalibrationSource overrides where calibration drift is read from
// (default: the ledger's own report). Nil-safe.
func (w *Watchdog) SetCalibrationSource(fn func() ledger.Report) {
	if w == nil || fn == nil {
		return
	}
	w.mu.Lock()
	w.calib = fn
	w.mu.Unlock()
}

// Attach registers the watchdog as h's OnWindow hook. Observe never calls
// back into the history, so running under its lock is safe.
func (w *Watchdog) Attach(h *obs.History) {
	if w == nil {
		return
	}
	h.OnWindow(func(win *obs.Window) { w.Observe(win) })
}

// Anomalies returns the bounded in-memory log, oldest first.
func (w *Watchdog) Anomalies() []Anomaly {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Anomaly(nil), w.log...)
}

// Observe judges one freshly closed window against the trailing baselines,
// updates the baselines, and returns the findings (also pushed into the
// ledger anomaly stream and the watchdog.* instruments). The first sighting
// of any metric seeds its baseline silently. Nil-safe on both sides.
func (w *Watchdog) Observe(win *obs.Window) []Anomaly {
	if w == nil || win == nil {
		return nil
	}
	w.mu.Lock()
	var found []Anomaly
	flag := func(kind, metric string, value, baseline float64) {
		found = append(found, Anomaly{Kind: kind, Metric: metric, Value: value, Baseline: baseline, Window: win.Seq})
	}

	alpha := w.cfg.BaselineAlpha
	for i := range win.Hists {
		hw := &win.Hists[i]
		// Under-sampled windows are too noisy to judge — and too noisy to
		// learn a baseline from, so they are skipped entirely.
		if hw.Count < w.cfg.MinSamples || !strings.HasSuffix(hw.Name, "_ms") {
			continue
		}
		base, seen := w.p95[hw.Name]
		if seen && base > 0 && hw.P95 >= w.cfg.P95Factor*base {
			flag(AnomalyP95, hw.Name, hw.P95, base)
			// Do not fold the regressed window into the baseline: a
			// sustained regression should keep flagging, not become normal.
		} else if !seen {
			w.p95[hw.Name] = hw.P95
		} else {
			w.p95[hw.Name] = (1-alpha)*base + alpha*hw.P95
		}
	}

	for i := range win.Counters {
		cw := &win.Counters[i]
		if !strings.Contains(cw.Name, "recovery_fallbacks") {
			continue
		}
		base, seen := w.recRate[cw.Name]
		delta := float64(cw.Delta)
		if seen && delta >= 1 && delta > w.cfg.RecoveryFactor*base {
			flag(AnomalyRecovery, cw.Name, delta, base)
		} else if !seen {
			w.recRate[cw.Name] = delta
		} else {
			w.recRate[cw.Name] = (1-alpha)*base + alpha*delta
		}
	}

	for i := range win.Counters {
		cw := &win.Counters[i]
		if !strings.HasSuffix(cw.Name, "pricecache_hits") {
			continue
		}
		prefix := strings.TrimSuffix(cw.Name, "hits")
		misses, ok := win.CounterDelta(prefix + "misses")
		if !ok {
			continue
		}
		total := cw.Delta + misses
		if total < w.cfg.MinSamples {
			continue
		}
		rate := float64(cw.Delta) / float64(total)
		base, seen := w.hitRate[prefix]
		if seen && base-rate >= w.cfg.HitRateDrop {
			flag(AnomalyHitRate, prefix+"hit_rate", rate, base)
		} else if !seen {
			w.hitRate[prefix] = rate
		} else {
			w.hitRate[prefix] = (1-alpha)*base + alpha*rate
		}
	}

	if w.calib != nil {
		for _, s := range w.calib().Sellers {
			over := math.Abs(s.EWMAErr) >= w.cfg.CalibrationErr
			if over && !w.calWarned[s.Seller] {
				flag(AnomalyCalibration, "seller."+s.Seller+".ewma_err", s.EWMAErr, w.cfg.CalibrationErr)
			}
			w.calWarned[s.Seller] = over // rising edge: re-arm once back in band
		}
	}

	for _, a := range found {
		w.log = append(w.log, a)
	}
	if over := len(w.log) - watchdogLogCap; over > 0 {
		w.log = append(w.log[:0], w.log[over:]...)
	}
	w.mu.Unlock()

	w.windowGauge.Set(float64(len(found)))
	for _, a := range found {
		w.anomalies.Inc()
		w.lastWindow.Set(float64(a.Window))
		w.ledg.Anomaly(a.Kind, a.Metric, a.Value, a.Baseline, a.Window)
	}
	return found
}
