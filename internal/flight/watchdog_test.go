package flight

import (
	"testing"

	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

// win builds a synthetic metrics window for driving Observe directly.
func win(seq int64, mutate func(*obs.Window)) *obs.Window {
	w := &obs.Window{Seq: seq}
	if mutate != nil {
		mutate(w)
	}
	return w
}

func histWin(name string, count int64, p95 float64) obs.HistWindow {
	return obs.HistWindow{Name: name, Count: count, P95: p95, P50: p95 / 2, Sum: p95 * float64(count)}
}

// TestWatchdogP95Regression: first window seeds silently, steady windows
// update the baseline, a 3x p95 jump on enough samples is flagged — into
// the return value, the ledger anomaly stream, and watchdog.* instruments.
func TestWatchdogP95Regression(t *testing.T) {
	l := ledger.New(8)
	m := obs.NewMetrics()
	w := NewWatchdog(WatchdogConfig{}, l, m)

	seed := win(0, func(x *obs.Window) { x.Hists = append(x.Hists, histWin("buyer.hq.optimize_ms", 10, 5)) })
	if got := w.Observe(seed); len(got) != 0 {
		t.Fatalf("first sighting must seed silently: %v", got)
	}
	steady := win(1, func(x *obs.Window) { x.Hists = append(x.Hists, histWin("buyer.hq.optimize_ms", 10, 6)) })
	if got := w.Observe(steady); len(got) != 0 {
		t.Fatalf("in-band window flagged: %v", got)
	}

	// Too few samples: noisy, must not flag even at 10x.
	noisy := win(2, func(x *obs.Window) { x.Hists = append(x.Hists, histWin("buyer.hq.optimize_ms", 2, 60)) })
	if got := w.Observe(noisy); len(got) != 0 {
		t.Fatalf("under-sampled window flagged: %v", got)
	}

	bad := win(3, func(x *obs.Window) { x.Hists = append(x.Hists, histWin("buyer.hq.optimize_ms", 10, 60)) })
	got := w.Observe(bad)
	if len(got) != 1 || got[0].Kind != AnomalyP95 || got[0].Metric != "buyer.hq.optimize_ms" || got[0].Window != 3 {
		t.Fatalf("p95 regression: %+v", got)
	}
	if got[0].Value != 60 || got[0].Baseline <= 0 || got[0].Baseline >= 60 {
		t.Fatalf("value/baseline: %+v", got[0])
	}

	anoms := l.Anomalies()
	if len(anoms) != 1 || anoms[0].Kind != ledger.KindAnomaly || anoms[0].Reason != AnomalyP95 ||
		anoms[0].QID != "buyer.hq.optimize_ms" || anoms[0].Window != 3 {
		t.Fatalf("ledger anomaly: %+v", anoms)
	}
	if m.Counter("watchdog.anomalies").Value() != 1 {
		t.Fatal("anomaly counter")
	}
	if m.Gauge("watchdog.window_anomalies").Value() != 1 || m.Gauge("watchdog.last_anomaly_window").Value() != 3 {
		t.Fatal("window gauges")
	}

	// A regressed window must NOT be folded into the baseline: the same
	// regression next window still flags.
	bad2 := win(4, func(x *obs.Window) { x.Hists = append(x.Hists, histWin("buyer.hq.optimize_ms", 10, 60)) })
	if got := w.Observe(bad2); len(got) != 1 {
		t.Fatalf("sustained regression must keep flagging: %v", got)
	}

	// A clean window resets the gauge and eases the baseline back.
	clean := win(5, func(x *obs.Window) { x.Hists = append(x.Hists, histWin("buyer.hq.optimize_ms", 10, 6)) })
	w.Observe(clean)
	if m.Gauge("watchdog.window_anomalies").Value() != 0 {
		t.Fatal("clean window must zero the gauge")
	}
	if len(w.Anomalies()) != 2 {
		t.Fatalf("log: %v", w.Anomalies())
	}
}

// TestWatchdogRecoverySpike: recovery fallbacks are near-zero in steady
// state, so a burst of them in one window is an anomaly.
func TestWatchdogRecoverySpike(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{}, nil, nil)
	cnt := func(seq, delta int64) *obs.Window {
		return win(seq, func(x *obs.Window) {
			x.Counters = append(x.Counters, obs.CounterWindow{Name: "buyer.hq.recovery_fallbacks", Delta: delta})
		})
	}
	w.Observe(cnt(0, 0)) // seed: steady state has no recoveries
	if got := w.Observe(cnt(1, 0)); len(got) != 0 {
		t.Fatalf("quiet window flagged: %v", got)
	}
	got := w.Observe(cnt(2, 3))
	if len(got) != 1 || got[0].Kind != AnomalyRecovery || got[0].Value != 3 {
		t.Fatalf("spike: %+v", got)
	}
	// Unrelated counters are ignored.
	other := win(3, func(x *obs.Window) {
		x.Counters = append(x.Counters, obs.CounterWindow{Name: "buyer.hq.optimizations", Delta: 99})
	})
	if got := w.Observe(other); len(got) != 0 {
		t.Fatalf("unrelated counter flagged: %v", got)
	}
}

// TestWatchdogHitRateDrop: a seller's price cache going cold mid-run.
func TestWatchdogHitRateDrop(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{}, nil, nil)
	cache := func(seq, hits, misses int64) *obs.Window {
		return win(seq, func(x *obs.Window) {
			x.Counters = append(x.Counters,
				obs.CounterWindow{Name: "node.n1.pricecache_hits", Delta: hits},
				obs.CounterWindow{Name: "node.n1.pricecache_misses", Delta: misses})
		})
	}
	w.Observe(cache(0, 9, 1)) // seed at 90%
	if got := w.Observe(cache(1, 8, 2)); len(got) != 0 {
		t.Fatalf("mild dip flagged: %v", got)
	}
	got := w.Observe(cache(2, 1, 9))
	if len(got) != 1 || got[0].Kind != AnomalyHitRate || got[0].Metric != "node.n1.pricecache_hit_rate" {
		t.Fatalf("drop: %+v", got)
	}
	if got[0].Value != 0.1 {
		t.Fatalf("rate: %+v", got[0])
	}
	// Too few lookups to judge.
	if got := w.Observe(cache(3, 0, 2)); len(got) != 0 {
		t.Fatalf("under-sampled cache window flagged: %v", got)
	}
}

// TestWatchdogCalibrationDrift: EWMA quote error leaving the band flags
// once (rising edge), re-arms after the seller comes back in band.
func TestWatchdogCalibrationDrift(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{CalibrationErr: 0.5}, nil, nil)
	err := 0.0
	w.SetCalibrationSource(func() ledger.Report {
		return ledger.Report{Sellers: []ledger.SellerReport{{Seller: "n1", EWMAErr: err}}}
	})
	if got := w.Observe(win(0, nil)); len(got) != 0 {
		t.Fatalf("in-band: %v", got)
	}
	err = -0.8 // overquoting by 80%: |err| over the band
	got := w.Observe(win(1, nil))
	if len(got) != 1 || got[0].Kind != AnomalyCalibration || got[0].Metric != "seller.n1.ewma_err" || got[0].Value != -0.8 {
		t.Fatalf("drift: %+v", got)
	}
	if got := w.Observe(win(2, nil)); len(got) != 0 {
		t.Fatalf("still-over must not re-flag: %v", got)
	}
	err = 0.1
	w.Observe(win(3, nil)) // back in band: re-arms
	err = 0.9
	if got := w.Observe(win(4, nil)); len(got) != 1 {
		t.Fatalf("re-armed drift must flag again: %v", got)
	}
}

// TestWatchdogAttach wires a real History + registry end to end.
func TestWatchdogAttach(t *testing.T) {
	m := obs.NewMetrics()
	l := ledger.New(4)
	h := obs.NewHistory(m, 0, 8)
	w := NewWatchdog(WatchdogConfig{MinSamples: 1}, l, m)
	w.Attach(h)

	lat := m.Histogram("buyer.hq.wall_ms")
	lat.Observe(5)
	h.Sample() // seeds the baseline
	lat.Observe(5)
	h.Sample()
	lat.Observe(500)
	h.Sample()
	if got := w.Anomalies(); len(got) != 1 || got[0].Kind != AnomalyP95 {
		t.Fatalf("attached watchdog: %+v", got)
	}
	if len(l.Anomalies()) != 1 {
		t.Fatal("ledger did not receive the anomaly")
	}
}

// TestWatchdogLogBounded + nil-safety.
func TestWatchdogBoundsAndNil(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{MinSamples: 1}, nil, nil)
	name := "buyer.hq.wall_ms"
	w.Observe(win(0, func(x *obs.Window) { x.Hists = append(x.Hists, histWin(name, 1, 1)) }))
	for i := 1; i < watchdogLogCap+20; i++ {
		w.Observe(win(int64(i), func(x *obs.Window) { x.Hists = append(x.Hists, histWin(name, 1, 1e6)) }))
	}
	if got := len(w.Anomalies()); got != watchdogLogCap {
		t.Fatalf("log must stay bounded: %d", got)
	}

	var nilW *Watchdog
	if nilW.Observe(win(0, nil)) != nil || nilW.Anomalies() != nil {
		t.Fatal("nil watchdog must no-op")
	}
	nilW.Attach(nil)
	nilW.SetCalibrationSource(func() ledger.Report { return ledger.Report{} })
	if got := w.Observe(nil); got != nil {
		t.Fatal("nil window must no-op")
	}
}
