// Package workload builds the synthetic federations and query workloads the
// experiments run on: the paper's telco customer-care scenario (§1) and
// parameterized chain-join federations for the scalability, partitioning and
// replication sweeps.
//
// All generators are hermetic: each owns an explicitly seeded *rand.Rand
// (never the shared global math/rand source), so identical options produce
// identical federations regardless of what other code — including the
// parallel pricing benchmarks — draws from the global source concurrently.
// TestGeneratorsHermetic pins this.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/core"
	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/ledger"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// Federation is a ready-to-run simulated federation.
type Federation struct {
	Schema *catalog.Schema
	Net    *netsim.Network
	Nodes  map[string]*node.Node
	// Buyer is the node id optimizations are issued from.
	Buyer string
	// oracle holds every fragment, for ground-truth answers.
	oracle *node.Node
}

// Comm returns the buyer's communication surface.
func (f *Federation) Comm() *core.NetComm {
	return &core.NetComm{Net: f.Net, SelfID: f.Buyer}
}

// BuyerConfig returns a core.Config wired to this federation's buyer.
func (f *Federation) BuyerConfig() core.Config {
	return core.Config{ID: f.Buyer, Schema: f.Schema, Self: f.Nodes[f.Buyer]}
}

// Oracle returns the omniscient single node holding all data.
func (f *Federation) Oracle() *node.Node { return f.oracle }

// SetObs attaches tracing and metrics to every node's seller path (nil
// arguments detach). Pair it with a core.Config carrying the same Tracer
// and Metrics to capture the full buyer+sellers picture.
func (f *Federation) SetObs(tr *obs.Tracer, m *obs.Metrics) {
	for _, n := range f.Nodes {
		n.SetObs(tr, m)
	}
}

// SetLedger attaches a trading ledger to every node's seller path (nil
// detaches). Pair it with a core.Config carrying the same Ledger so buyer
// and seller events land in the same negotiation records.
func (f *Federation) SetLedger(l *ledger.Ledger) {
	for _, n := range f.Nodes {
		n.SetLedger(l)
	}
}

// GroundTruth evaluates sql on the oracle node.
func (f *Federation) GroundTruth(sql string) (trading.ExecResp, error) {
	return f.oracle.Execute(trading.ExecReq{SQL: sql})
}

// Optimize runs the QT optimizer from the buyer with the given overrides.
func (f *Federation) Optimize(cfg core.Config, sql string) (*core.Result, error) {
	return core.Optimize(cfg, f.Comm(), sql)
}

// Execute runs an optimized plan, fetching purchased answers over the
// simulated network.
func (f *Federation) Execute(res *core.Result) (*exec.Result, error) {
	ex := &exec.Executor{Store: f.Nodes[f.Buyer].Store()}
	return core.ExecuteResult(f.Comm(), ex, res)
}

// TelcoOptions parameterizes the paper's motivating scenario.
type TelcoOptions struct {
	Offices            []string // office names; one node each, plus a buyer "hq"
	CustomersPerOffice int
	LinesPerCustomer   int
	// InvoiceReplicas is how many office nodes hold the (single-fragment)
	// invoiceline table; 0 means every office node.
	InvoiceReplicas int
	Seed            int64
	// Strategy builds each node's pricing strategy; nil = cooperative.
	Strategy func() trading.SellerStrategy
	// Model overrides the cost model; nil = cost.Default().
	Model *cost.Model
	// Configure, when set, adjusts each node's configuration before
	// construction (ablations: disable view offers, cap offers, ...).
	Configure func(*node.Config)
}

// TelcoSchema returns the customer-care schema with customer horizontally
// partitioned by office.
func TelcoSchema(offices []string) *catalog.Schema {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "custname", Kind: value.Str},
		{Name: "office", Kind: value.Str},
	}})
	sch.MustAddTable(&catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
		{Name: "invid", Kind: value.Int},
		{Name: "linenum", Kind: value.Int},
		{Name: "custid", Kind: value.Int},
		{Name: "charge", Kind: value.Float},
	}})
	parts := make([]*catalog.Partition, len(offices))
	for i, off := range offices {
		parts[i] = &catalog.Partition{
			Table:     "customer",
			ID:        strings.ToLower(off),
			Predicate: sqlparse.MustParseExpr(fmt.Sprintf("office = '%s'", off)),
		}
	}
	if err := sch.SetPartitions("customer", parts); err != nil {
		panic(err)
	}
	return sch
}

// NewTelco builds the telco federation: one node per office holding its
// customer partition (and possibly an invoiceline replica), plus a data-less
// "hq" buyer node.
func NewTelco(opts TelcoOptions) *Federation {
	if len(opts.Offices) == 0 {
		opts.Offices = []string{"Corfu", "Myconos", "Athens"}
	}
	if opts.CustomersPerOffice <= 0 {
		opts.CustomersPerOffice = 20
	}
	if opts.LinesPerCustomer <= 0 {
		opts.LinesPerCustomer = 3
	}
	if opts.InvoiceReplicas <= 0 || opts.InvoiceReplicas > len(opts.Offices) {
		opts.InvoiceReplicas = len(opts.Offices)
	}
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	sch := TelcoSchema(opts.Offices)
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")

	custRows := map[string][]value.Row{}
	var invRows []value.Row
	id := int64(0)
	invid := int64(1000)
	for _, off := range opts.Offices {
		key := strings.ToLower(off)
		for c := 0; c < opts.CustomersPerOffice; c++ {
			id++
			custRows[key] = append(custRows[key], value.Row{
				value.NewInt(id),
				value.NewStr(fmt.Sprintf("cust%d", id)),
				value.NewStr(off),
			})
			for l := 0; l < opts.LinesPerCustomer; l++ {
				invid++
				// Zipf-ish charges: many small, few large.
				charge := float64(1+rng.Intn(10)) * float64(1+rng.Intn(1+rng.Intn(20)))
				invRows = append(invRows, value.Row{
					value.NewInt(invid),
					value.NewInt(int64(l + 1)),
					value.NewInt(id),
					value.NewFloat(charge),
				})
			}
		}
	}

	f := &Federation{Schema: sch, Net: netsim.New(), Nodes: map[string]*node.Node{}, Buyer: "hq"}
	mkStrategy := func() trading.SellerStrategy {
		if opts.Strategy == nil {
			return nil
		}
		return opts.Strategy()
	}
	loadCust := func(n *node.Node, part string) {
		if _, err := n.Store().CreateFragment(cust, part); err != nil {
			panic(err)
		}
		if err := n.Store().Insert("customer", part, custRows[part]...); err != nil {
			panic(err)
		}
	}
	loadInv := func(n *node.Node) {
		if _, err := n.Store().CreateFragment(inv, "p0"); err != nil {
			panic(err)
		}
		if err := n.Store().Insert("invoiceline", "p0", invRows...); err != nil {
			panic(err)
		}
	}
	mkNode := func(id string) *node.Node {
		cfg := node.Config{ID: id, Schema: sch, Strategy: mkStrategy(), Cost: opts.Model}
		if opts.Configure != nil {
			opts.Configure(&cfg)
		}
		return node.New(cfg)
	}
	for i, off := range opts.Offices {
		id := strings.ToLower(off)
		n := mkNode(id)
		loadCust(n, id)
		if i < opts.InvoiceReplicas {
			loadInv(n)
		}
		f.Nodes[id] = n
		f.Net.Register(id, n)
	}
	hq := mkNode("hq")
	f.Nodes["hq"] = hq
	f.Net.Register("hq", hq)

	oracle := node.New(node.Config{ID: "oracle", Schema: sch})
	for _, off := range opts.Offices {
		loadCust(oracle, strings.ToLower(off))
	}
	loadInv(oracle)
	f.oracle = oracle
	return f
}

// TotalsQuery is the paper's motivating query over the given offices.
func TotalsQuery(offices ...string) string {
	quoted := make([]string, len(offices))
	for i, o := range offices {
		quoted[i] = "'" + o + "'"
	}
	return fmt.Sprintf(`SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i `+
		`WHERE c.custid = i.custid AND c.office IN (%s) GROUP BY c.office ORDER BY c.office`,
		strings.Join(quoted, ", "))
}

// ChainOptions parameterizes a chain-join federation: K relations r1..rK,
// each range-partitioned into Parts partitions on its primary key, placed
// round-robin over N nodes with Replicas copies each.
type ChainOptions struct {
	Relations      int // K >= 1
	RowsPerRel     int
	Parts          int // partitions per relation
	Nodes          int
	Replicas       int
	Seed           int64
	Strategy       func() trading.SellerStrategy
	Model          *cost.Model
	SkipOracleData bool // very large federations: skip ground-truth store
	// Configure adjusts each node's configuration before construction.
	Configure func(*node.Config)
}

// ChainSchema builds relations r1..rK with columns (pk, fk, v), each
// range-partitioned on pk.
func ChainSchema(opts ChainOptions) *catalog.Schema {
	sch := catalog.NewSchema()
	per := opts.RowsPerRel / opts.Parts
	for k := 1; k <= opts.Relations; k++ {
		name := fmt.Sprintf("r%d", k)
		sch.MustAddTable(&catalog.TableDef{Name: name, Columns: []catalog.ColumnDef{
			{Name: "pk", Kind: value.Int},
			{Name: "fk", Kind: value.Int},
			{Name: "v", Kind: value.Float},
		}})
		parts := make([]*catalog.Partition, opts.Parts)
		for p := 0; p < opts.Parts; p++ {
			lo, hi := p*per, (p+1)*per
			var pred string
			switch {
			case opts.Parts == 1:
				parts[p] = &catalog.Partition{Table: name, ID: "p0"}
				continue
			case p == opts.Parts-1:
				pred = fmt.Sprintf("pk >= %d", lo)
			default:
				pred = fmt.Sprintf("pk >= %d AND pk < %d", lo, hi)
			}
			parts[p] = &catalog.Partition{
				Table: name, ID: fmt.Sprintf("p%d", p),
				Predicate: sqlparse.MustParseExpr(pred),
			}
		}
		if err := sch.SetPartitions(name, parts); err != nil {
			panic(err)
		}
	}
	return sch
}

// NewChain builds the chain federation. Node ids are n0..n{N-1}; the buyer
// is n0.
func NewChain(opts ChainOptions) *Federation {
	if opts.Relations <= 0 {
		opts.Relations = 3
	}
	if opts.RowsPerRel <= 0 {
		opts.RowsPerRel = 400
	}
	if opts.Parts <= 0 {
		opts.Parts = 2
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.Replicas > opts.Nodes {
		opts.Replicas = opts.Nodes
	}
	rng := rand.New(rand.NewSource(opts.Seed + 13))
	sch := ChainSchema(opts)

	f := &Federation{Schema: sch, Net: netsim.New(), Nodes: map[string]*node.Node{}, Buyer: "n0"}
	mkStrategy := func() trading.SellerStrategy {
		if opts.Strategy == nil {
			return nil
		}
		return opts.Strategy()
	}
	for i := 0; i < opts.Nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		cfg := node.Config{ID: id, Schema: sch, Strategy: mkStrategy(), Cost: opts.Model}
		if opts.Configure != nil {
			opts.Configure(&cfg)
		}
		n := node.New(cfg)
		f.Nodes[id] = n
		f.Net.Register(id, n)
	}
	var oracle *node.Node
	if !opts.SkipOracleData {
		oracle = node.New(node.Config{ID: "oracle", Schema: sch})
	}
	f.oracle = oracle

	// Generate rows per relation and distribute fragments round-robin.
	per := opts.RowsPerRel / opts.Parts
	placeSeq := 0
	for k := 1; k <= opts.Relations; k++ {
		name := fmt.Sprintf("r%d", k)
		def, _ := sch.Table(name)
		rowsByPart := map[string][]value.Row{}
		for i := 0; i < opts.RowsPerRel; i++ {
			p := i / per
			if p >= opts.Parts {
				p = opts.Parts - 1
			}
			pid := fmt.Sprintf("p%d", p)
			if opts.Parts == 1 {
				pid = "p0"
			}
			rowsByPart[pid] = append(rowsByPart[pid], value.Row{
				value.NewInt(int64(i)),
				value.NewInt(int64(rng.Intn(opts.RowsPerRel))),
				value.NewFloat(float64(rng.Intn(1000)) / 10),
			})
		}
		for p := 0; p < opts.Parts; p++ {
			pid := fmt.Sprintf("p%d", p)
			for rep := 0; rep < opts.Replicas; rep++ {
				holder := f.Nodes[fmt.Sprintf("n%d", (placeSeq+rep)%opts.Nodes)]
				if _, err := holder.Store().CreateFragment(def, pid); err != nil {
					panic(err)
				}
				if err := holder.Store().Insert(name, pid, rowsByPart[pid]...); err != nil {
					panic(err)
				}
			}
			placeSeq++
			if oracle != nil {
				if _, err := oracle.Store().CreateFragment(def, pid); err != nil {
					panic(err)
				}
				if err := oracle.Store().Insert(name, pid, rowsByPart[pid]...); err != nil {
					panic(err)
				}
			}
		}
	}
	return f
}

// JoinReplica builds a new node mirroring every fragment sourceID holds and
// registers it on the network — a runtime elastic join. The node prices and
// serves from the moment Register returns; the churn experiments use it to
// grow capacity mid-run and verify throughput recovery. Configure (optional)
// adjusts the node's configuration before construction.
//
// The Nodes map is written without synchronization: callers running
// concurrent load must sequence all joins through one controller goroutine
// and keep workers off the map (capture the buyer node and Comm up front).
func (f *Federation) JoinReplica(id, sourceID string, configure func(*node.Config)) (*node.Node, error) {
	src, ok := f.Nodes[sourceID]
	if !ok {
		return nil, fmt.Errorf("workload: unknown source node %q", sourceID)
	}
	if _, dup := f.Nodes[id]; dup {
		return nil, fmt.Errorf("workload: node %q already in federation", id)
	}
	cfg := node.Config{ID: id, Schema: f.Schema}
	if configure != nil {
		configure(&cfg)
	}
	n := node.New(cfg)
	for _, table := range src.Store().Tables() {
		def, ok := f.Schema.Table(table)
		if !ok {
			continue
		}
		for _, pid := range src.Store().PartIDs(table) {
			if _, err := n.Store().CreateFragment(def, pid); err != nil {
				return nil, err
			}
			var rows []value.Row
			if err := src.Store().Scan(table, pid, nil, func(r value.Row) bool {
				rows = append(rows, r)
				return true
			}); err != nil {
				return nil, err
			}
			if err := n.Store().Insert(table, pid, rows...); err != nil {
				return nil, err
			}
		}
	}
	f.Nodes[id] = n
	f.Net.Register(id, n)
	return n, nil
}

// ChainQuery builds the K-way chain join with an optional range filter on
// r1 (selFrac in (0,1]; 1 or 0 means no filter).
func ChainQuery(opts ChainOptions, selFrac float64) string {
	var from, where []string
	for k := 1; k <= opts.Relations; k++ {
		from = append(from, fmt.Sprintf("r%d", k))
		if k < opts.Relations {
			where = append(where, fmt.Sprintf("r%d.fk = r%d.pk", k, k+1))
		}
	}
	if selFrac > 0 && selFrac < 1 {
		where = append(where, fmt.Sprintf("r1.pk < %d", int(float64(opts.RowsPerRel)*selFrac)))
	}
	q := fmt.Sprintf("SELECT r1.pk, r%d.v FROM %s", opts.Relations, strings.Join(from, ", "))
	if len(where) > 0 {
		q += " WHERE " + strings.Join(where, " AND ")
	}
	return q
}
