package workload

import (
	"math/rand"
	"testing"

	"qtrade/internal/core"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
)

func TestStarFederationEndToEnd(t *testing.T) {
	opts := StarOptions{Dims: 3, FactRows: 120, DimRows: 20, FactParts: 2, Nodes: 4, Seed: 5}
	f := NewStar(opts)
	q := StarQuery(opts, 0.5)
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Rows) == 0 {
		t.Fatal("degenerate star workload")
	}
	res, err := f.Optimize(f.BuyerConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(got.Rows) != rowsKey(truth.Rows) {
		t.Fatalf("star distributed != truth: %d vs %d rows", len(got.Rows), len(truth.Rows))
	}
}

func TestStarQueryShape(t *testing.T) {
	opts := StarOptions{Dims: 4, FactRows: 100}
	sel := sqlparse.MustParseSelect(StarQuery(opts, 1))
	if len(sel.From) != 5 {
		t.Fatalf("from: %v", sel.From)
	}
	if got := len(expr.Conjuncts(sel.Where)); got != 4 {
		t.Fatalf("join predicates: %d", got)
	}
	selFiltered := sqlparse.MustParseSelect(StarQuery(opts, 0.25))
	if got := len(expr.Conjuncts(selFiltered.Where)); got != 5 {
		t.Fatalf("filtered predicates: %d", got)
	}
}

// TestFuzzStarFederations fuzzes bushy join spaces across generator modes.
func TestFuzzStarFederations(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz in short mode")
	}
	rng := rand.New(rand.NewSource(77))
	modes := []core.PlanGenMode{core.GenDP, core.GenIDP, core.GenGreedy}
	for i := 0; i < 12; i++ {
		opts := StarOptions{
			Dims:      2 + rng.Intn(3),
			FactRows:  60 + rng.Intn(80),
			DimRows:   10 + rng.Intn(20),
			FactParts: 1 + rng.Intn(3),
			Nodes:     2 + rng.Intn(4),
			Seed:      int64(i * 17),
		}
		f := NewStar(opts)
		q := StarQuery(opts, []float64{1, 0.5}[rng.Intn(2)])
		truth, err := f.GroundTruth(q)
		if err != nil {
			t.Fatalf("trial %d oracle: %v", i, err)
		}
		cfg := f.BuyerConfig()
		cfg.Mode = modes[rng.Intn(len(modes))]
		res, err := f.Optimize(cfg, q)
		if err != nil {
			t.Fatalf("trial %d (%+v, mode %s): optimize: %v", i, opts, cfg.Mode, err)
		}
		got, err := f.Execute(res)
		if err != nil {
			t.Fatalf("trial %d execute: %v", i, err)
		}
		if rowsKey(got.Rows) != rowsKey(truth.Rows) {
			t.Fatalf("trial %d (%+v, mode %s): answer differs: %d vs %d rows",
				i, opts, cfg.Mode, len(got.Rows), len(truth.Rows))
		}
	}
}
