package workload

import (
	"testing"

	"qtrade/internal/core"
	"qtrade/internal/cost"
	"qtrade/internal/node"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
)

// aggQuery exercises every decomposable aggregate, including AVG (which
// must merge as SUM/COUNT, not AVG of AVGs — the classic pitfall).
const aggQuery = `SELECT c.office, SUM(i.charge) AS total, COUNT(*) AS n,
	MIN(i.charge) AS lo, MAX(i.charge) AS hi, AVG(i.charge) AS mean
	FROM customer c, invoiceline i
	WHERE c.custid = i.custid
	GROUP BY c.office ORDER BY c.office`

func runTelcoAgg(t *testing.T, disablePush bool) (*core.Result, string, string) {
	t.Helper()
	// A WAN-ish network: shipping raw rows dominates, which is exactly the
	// regime aggregate pushdown exists for.
	slow := cost.Default()
	slow.BytesPerMS = 200
	f := NewTelco(TelcoOptions{
		Seed: 9, CustomersPerOffice: 40, LinesPerCustomer: 5, Model: slow,
		Configure: func(c *node.Config) { c.DisableAggPush = disablePush },
	})
	truth, err := f.GroundTruth(aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.BuyerConfig()
	cfg.Cost = slow
	res, err := f.Optimize(cfg, aggQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Execute(res)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, core.ExplainResult(res))
	}
	return res, rowsKey(got.Rows), rowsKey(truth.Rows)
}

func TestAggregatePushdownCorrectAndCheaper(t *testing.T) {
	pushed, gotP, wantP := runTelcoAgg(t, false)
	if gotP != wantP {
		t.Fatalf("pushed answer differs:\ngot  %v\nwant %v\n%s", gotP, wantP, core.ExplainResult(pushed))
	}
	raw, gotR, wantR := runTelcoAgg(t, true)
	if gotR != wantR {
		t.Fatalf("raw answer differs:\ngot  %v\nwant %v", gotR, wantR)
	}
	// The pushed plan must actually use partial aggregates and be cheaper.
	usedPush := false
	for _, o := range pushed.Candidate.Offers {
		if o.PartialAgg {
			usedPush = true
		}
	}
	if !usedPush {
		t.Fatalf("partial-aggregate offers did not win:\n%s", core.ExplainResult(pushed))
	}
	if pushed.Candidate.ResponseTime >= raw.Candidate.ResponseTime {
		t.Fatalf("pushdown must be cheaper: %.3f vs %.3f",
			pushed.Candidate.ResponseTime, raw.Candidate.ResponseTime)
	}
}

func TestAggregatePushdownDisabledForDistinct(t *testing.T) {
	f := NewTelco(TelcoOptions{Seed: 9, CustomersPerOffice: 10})
	q := `SELECT c.office, COUNT(DISTINCT i.invid) AS inv FROM customer c, invoiceline i
	      WHERE c.custid = i.custid GROUP BY c.office`
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Optimize(f.BuyerConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Candidate.Offers {
		if o.PartialAgg {
			t.Fatal("DISTINCT aggregates must not push down")
		}
	}
	got, err := f.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(got.Rows) != rowsKey(truth.Rows) {
		t.Fatal("distinct aggregation answer differs")
	}
}

func TestDecomposeAggregates(t *testing.T) {
	sel := sqlparse.MustParseSelect(aggQuery)
	d, ok := plan.DecomposeAggregates(sel)
	if !ok {
		t.Fatal("must decompose")
	}
	if len(d.Aggs) != 5 {
		t.Fatalf("aggs: %d", len(d.Aggs))
	}
	// AVG contributes two partials: 5 aggs -> 6 partials.
	if len(d.Partials) != 6 {
		t.Fatalf("partials: %d", len(d.Partials))
	}
	if items := d.PartialItems(); len(items) != 1+6 {
		t.Fatalf("partial items: %d", len(items))
	}
	// Grouping by an expression disables pushdown.
	if _, ok := plan.DecomposeAggregates(sqlparse.MustParseSelect(
		"SELECT COUNT(*) FROM customer c GROUP BY c.custid % 2")); ok {
		t.Fatal("expression grouping must not decompose")
	}
	// DISTINCT disables pushdown.
	if _, ok := plan.DecomposeAggregates(sqlparse.MustParseSelect(
		"SELECT SUM(DISTINCT c.custid) FROM customer c")); ok {
		t.Fatal("DISTINCT must not decompose")
	}
	// Non-aggregate queries do not decompose.
	if _, ok := plan.DecomposeAggregates(sqlparse.MustParseSelect(
		"SELECT c.custid FROM customer c")); ok {
		t.Fatal("plain SPJ must not decompose")
	}
}

func TestGlobalAggregatePushdown(t *testing.T) {
	// No GROUP BY: one partial row per seller, merged into one global row.
	f := NewTelco(TelcoOptions{Seed: 4, CustomersPerOffice: 30, LinesPerCustomer: 4})
	q := "SELECT SUM(i.charge) AS total, COUNT(*) AS n FROM customer c, invoiceline i WHERE c.custid = i.custid"
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Optimize(f.BuyerConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Execute(res)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, core.ExplainResult(res))
	}
	if rowsKey(got.Rows) != rowsKey(truth.Rows) {
		t.Fatalf("global agg differs:\ngot  %v\nwant %v\n%s",
			got.Rows, truth.Rows, core.ExplainResult(res))
	}
}
