package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qtrade/internal/core"
)

// TestFuzzChainFederations cross-checks the full QT pipeline against the
// single-node oracle over randomized federations: random relation counts,
// partitioning, replication, node counts, plan generator modes and filter
// selectivities. Any divergence between the distributed answer and the
// oracle is a correctness bug somewhere in the trading stack.
func TestFuzzChainFederations(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz in short mode")
	}
	rng := rand.New(rand.NewSource(20260705))
	modes := []core.PlanGenMode{core.GenDP, core.GenIDP, core.GenGreedy}
	trials := 30
	for i := 0; i < trials; i++ {
		opts := ChainOptions{
			Relations:  2 + rng.Intn(3),
			RowsPerRel: 30 + rng.Intn(60),
			Parts:      1 + rng.Intn(4),
			Nodes:      2 + rng.Intn(5),
			Replicas:   1 + rng.Intn(2),
			Seed:       int64(i * 31),
		}
		selFrac := []float64{1, 0.5, 0.25}[rng.Intn(3)]
		mode := modes[rng.Intn(len(modes))]
		label := fmt.Sprintf("trial %d: %+v selFrac=%.2f mode=%s", i, opts, selFrac, mode)

		f := NewChain(opts)
		q := ChainQuery(opts, selFrac)
		truth, err := f.GroundTruth(q)
		if err != nil {
			t.Fatalf("%s: oracle: %v", label, err)
		}
		cfg := f.BuyerConfig()
		cfg.Mode = mode
		res, err := f.Optimize(cfg, q)
		if err != nil {
			t.Fatalf("%s: optimize: %v", label, err)
		}
		got, err := f.Execute(res)
		if err != nil {
			t.Fatalf("%s: execute: %v", label, err)
		}
		if rowsKey(got.Rows) != rowsKey(truth.Rows) {
			t.Fatalf("%s: answer differs: %d vs %d rows\nquery: %s",
				label, len(got.Rows), len(truth.Rows), q)
		}
	}
}

// TestFuzzTelcoQueries randomizes the telco workload and office subsets.
func TestFuzzTelcoQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz in short mode")
	}
	rng := rand.New(rand.NewSource(42))
	allOffices := []string{"Corfu", "Myconos", "Athens", "Rhodes"}
	for i := 0; i < 12; i++ {
		nOffices := 2 + rng.Intn(3)
		offices := append([]string{}, allOffices[:nOffices]...)
		f := NewTelco(TelcoOptions{
			Offices:            offices,
			CustomersPerOffice: 5 + rng.Intn(20),
			LinesPerCustomer:   1 + rng.Intn(3),
			InvoiceReplicas:    1 + rng.Intn(nOffices),
			Seed:               int64(i),
		})
		// Random non-empty office subset for the IN list.
		var subset []string
		for _, o := range offices {
			if rng.Intn(2) == 0 {
				subset = append(subset, o)
			}
		}
		if len(subset) == 0 {
			subset = offices[:1]
		}
		queries := []string{
			TotalsQuery(subset...),
			fmt.Sprintf("SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid AND c.office IN (%s) AND i.charge > 20", quoteList(subset)),
			fmt.Sprintf("SELECT c.custname FROM customer c WHERE c.office IN (%s) ORDER BY c.custname LIMIT 7", quoteList(subset)),
		}
		for _, q := range queries {
			truth, err := f.GroundTruth(q)
			if err != nil {
				t.Fatalf("trial %d oracle (%s): %v", i, q, err)
			}
			res, err := f.Optimize(f.BuyerConfig(), q)
			if err != nil {
				t.Fatalf("trial %d optimize (%s): %v", i, q, err)
			}
			got, err := f.Execute(res)
			if err != nil {
				t.Fatalf("trial %d execute (%s): %v", i, q, err)
			}
			if !sameModuloLimit(q, rowsKey(got.Rows), rowsKey(truth.Rows), len(got.Rows), len(truth.Rows)) {
				t.Fatalf("trial %d answer differs for %s:\ngot  %d rows\nwant %d rows",
					i, q, len(got.Rows), len(truth.Rows))
			}
		}
	}
}

func quoteList(items []string) string {
	quoted := make([]string, len(items))
	for i, s := range items {
		quoted[i] = "'" + s + "'"
	}
	return strings.Join(quoted, ", ")
}

// sameModuloLimit treats LIMIT queries as set-compatible when row counts
// match (different but valid orders may pick different ties).
func sameModuloLimit(q, gotKey, wantKey string, gotN, wantN int) bool {
	if gotKey == wantKey {
		return true
	}
	return strings.Contains(strings.ToUpper(q), "LIMIT") && gotN == wantN
}
