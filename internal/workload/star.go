package workload

import (
	"fmt"
	"math/rand"

	"qtrade/internal/catalog"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/sqlparse"
	"qtrade/internal/value"
)

// StarOptions parameterizes a star-schema federation: one fact table,
// range-partitioned on its key, joined to Dims unpartitioned dimension
// tables scattered across nodes. Star queries produce bushy join spaces,
// complementing the chain workload's linear ones.
type StarOptions struct {
	Dims       int // number of dimension tables
	FactRows   int
	DimRows    int
	FactParts  int
	Nodes      int
	Seed       int64
	Configure  func(*node.Config)
	SkipOracle bool
}

// StarSchema builds fact(pk, d1 .. dK, v) plus dim1..dimK(pk, attr).
func StarSchema(opts StarOptions) *catalog.Schema {
	sch := catalog.NewSchema()
	factCols := []catalog.ColumnDef{{Name: "pk", Kind: value.Int}}
	for d := 1; d <= opts.Dims; d++ {
		factCols = append(factCols, catalog.ColumnDef{Name: fmt.Sprintf("d%d", d), Kind: value.Int})
	}
	factCols = append(factCols, catalog.ColumnDef{Name: "v", Kind: value.Float})
	sch.MustAddTable(&catalog.TableDef{Name: "fact", Columns: factCols})
	per := opts.FactRows / opts.FactParts
	parts := make([]*catalog.Partition, opts.FactParts)
	for p := 0; p < opts.FactParts; p++ {
		if opts.FactParts == 1 {
			parts[p] = &catalog.Partition{Table: "fact", ID: "p0"}
			continue
		}
		lo := p * per
		pred := fmt.Sprintf("pk >= %d AND pk < %d", lo, lo+per)
		if p == opts.FactParts-1 {
			pred = fmt.Sprintf("pk >= %d", lo)
		}
		parts[p] = &catalog.Partition{Table: "fact", ID: fmt.Sprintf("p%d", p),
			Predicate: sqlparse.MustParseExpr(pred)}
	}
	if err := sch.SetPartitions("fact", parts); err != nil {
		panic(err)
	}
	for d := 1; d <= opts.Dims; d++ {
		sch.MustAddTable(&catalog.TableDef{Name: fmt.Sprintf("dim%d", d), Columns: []catalog.ColumnDef{
			{Name: "pk", Kind: value.Int},
			{Name: "attr", Kind: value.Int},
		}})
	}
	return sch
}

// NewStar builds the star federation: fact partitions round-robin over the
// nodes, each dimension on one node (also round-robin). The buyer is n0.
func NewStar(opts StarOptions) *Federation {
	if opts.Dims <= 0 {
		opts.Dims = 3
	}
	if opts.FactRows <= 0 {
		opts.FactRows = 400
	}
	if opts.DimRows <= 0 {
		opts.DimRows = 40
	}
	if opts.FactParts <= 0 {
		opts.FactParts = 2
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 4
	}
	rng := rand.New(rand.NewSource(opts.Seed + 101))
	sch := StarSchema(opts)

	f := &Federation{Schema: sch, Net: netsim.New(), Nodes: map[string]*node.Node{}, Buyer: "n0"}
	for i := 0; i < opts.Nodes; i++ {
		id := fmt.Sprintf("n%d", i)
		cfg := node.Config{ID: id, Schema: sch}
		if opts.Configure != nil {
			opts.Configure(&cfg)
		}
		n := node.New(cfg)
		f.Nodes[id] = n
		f.Net.Register(id, n)
	}
	var oracle *node.Node
	if !opts.SkipOracle {
		oracle = node.New(node.Config{ID: "oracle", Schema: sch})
	}
	f.oracle = oracle

	factDef, _ := sch.Table("fact")
	per := opts.FactRows / opts.FactParts
	factRows := map[string][]value.Row{}
	for i := 0; i < opts.FactRows; i++ {
		p := i / per
		if p >= opts.FactParts {
			p = opts.FactParts - 1
		}
		pid := fmt.Sprintf("p%d", p)
		row := value.Row{value.NewInt(int64(i))}
		for d := 1; d <= opts.Dims; d++ {
			row = append(row, value.NewInt(int64(rng.Intn(opts.DimRows))))
		}
		row = append(row, value.NewFloat(float64(rng.Intn(1000))/10))
		factRows[pid] = append(factRows[pid], row)
	}
	loadFrag := func(n *node.Node, def *catalog.TableDef, pid string, rows []value.Row) {
		if _, err := n.Store().CreateFragment(def, pid); err != nil {
			panic(err)
		}
		if err := n.Store().Insert(def.Name, pid, rows...); err != nil {
			panic(err)
		}
	}
	seq := 0
	for p := 0; p < opts.FactParts; p++ {
		pid := fmt.Sprintf("p%d", p)
		holder := f.Nodes[fmt.Sprintf("n%d", seq%opts.Nodes)]
		loadFrag(holder, factDef, pid, factRows[pid])
		if oracle != nil {
			loadFrag(oracle, factDef, pid, factRows[pid])
		}
		seq++
	}
	for d := 1; d <= opts.Dims; d++ {
		def, _ := sch.Table(fmt.Sprintf("dim%d", d))
		rows := make([]value.Row, opts.DimRows)
		for i := range rows {
			rows[i] = value.Row{value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(100)))}
		}
		holder := f.Nodes[fmt.Sprintf("n%d", seq%opts.Nodes)]
		loadFrag(holder, def, "p0", rows)
		if oracle != nil {
			loadFrag(oracle, def, "p0", rows)
		}
		seq++
	}
	return f
}

// StarQuery joins the fact with every dimension, with an optional
// selectivity filter on fact.pk and on the first dimension's attribute.
func StarQuery(opts StarOptions, factFrac float64) string {
	q := "SELECT fact.pk, fact.v"
	for d := 1; d <= opts.Dims; d++ {
		q += fmt.Sprintf(", dim%d.attr", d)
	}
	q += " FROM fact"
	for d := 1; d <= opts.Dims; d++ {
		q += fmt.Sprintf(", dim%d", d)
	}
	where := ""
	for d := 1; d <= opts.Dims; d++ {
		if where != "" {
			where += " AND "
		}
		where += fmt.Sprintf("fact.d%d = dim%d.pk", d, d)
	}
	if factFrac > 0 && factFrac < 1 {
		where += fmt.Sprintf(" AND fact.pk < %d", int(float64(opts.FactRows)*factFrac))
	}
	return q + " WHERE " + where
}
