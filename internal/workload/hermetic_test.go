package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"qtrade/internal/value"
)

// fingerprint renders every node's stored rows deterministically.
func fingerprint(t *testing.T, f *Federation) string {
	t.Helper()
	var ids []string
	for id := range f.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		st := f.Nodes[id].Store()
		for _, table := range st.Tables() {
			for _, pid := range st.PartIDs(table) {
				fmt.Fprintf(&b, "%s/%s/%s:\n", id, table, pid)
				err := st.Scan(table, pid, nil, func(r value.Row) bool {
					fmt.Fprintf(&b, "%v\n", r)
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.String()
}

// TestGeneratorsHermetic pins that every generator owns its seeded random
// source: two builds with the same options are identical even while another
// goroutine churns the shared global math/rand source (as concurrent
// benchmarks or parallel pricing tests legitimately may).
func TestGeneratorsHermetic(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				rand.Int() // churn the global source
			}
		}
	}()
	defer func() { close(stop); <-done }()

	builds := map[string]func() *Federation{
		"telco": func() *Federation {
			return NewTelco(TelcoOptions{CustomersPerOffice: 8, LinesPerCustomer: 2, Seed: 42})
		},
		"chain": func() *Federation {
			return NewChain(ChainOptions{Relations: 3, RowsPerRel: 60, Parts: 2, Nodes: 3, Seed: 42})
		},
		"star": func() *Federation {
			return NewStar(StarOptions{Dims: 2, FactRows: 80, DimRows: 10, FactParts: 2, Nodes: 3, Seed: 42})
		},
	}
	for name, build := range builds {
		a, b := fingerprint(t, build()), fingerprint(t, build())
		if a == "" {
			t.Fatalf("%s: empty federation fingerprint", name)
		}
		if a != b {
			t.Fatalf("%s generator is not hermetic: same seed produced different data", name)
		}
	}

	// Query generators must be pure functions of options too.
	copts := ChainOptions{Relations: 4, RowsPerRel: 100}
	if ChainQuery(copts, 0.3) != ChainQuery(copts, 0.3) {
		t.Fatal("ChainQuery is nondeterministic")
	}
	sopts := StarOptions{Dims: 3, FactRows: 100}
	if StarQuery(sopts, 0.4) != StarQuery(sopts, 0.4) {
		t.Fatal("StarQuery is nondeterministic")
	}
}
