package workload

import (
	"sort"
	"strings"
	"testing"

	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

func rowsKey(rows []value.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		idx := make([]int, len(r))
		for j := range idx {
			idx[j] = j
		}
		out[i] = value.Key(r, idx)
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

func TestTelcoFederationEndToEnd(t *testing.T) {
	f := NewTelco(TelcoOptions{Seed: 1, CustomersPerOffice: 10, LinesPerCustomer: 2})
	q := TotalsQuery("Corfu", "Myconos")
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Rows) != 2 {
		t.Fatalf("truth rows: %v", truth.Rows)
	}
	res, err := f.Optimize(f.BuyerConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(got.Rows) != rowsKey(truth.Rows) {
		t.Fatalf("distributed != truth:\ngot  %v\nwant %v", got.Rows, truth.Rows)
	}
}

func TestTelcoDeterminism(t *testing.T) {
	a := NewTelco(TelcoOptions{Seed: 42})
	b := NewTelco(TelcoOptions{Seed: 42})
	ra, _ := a.GroundTruth(TotalsQuery("Corfu"))
	rb, _ := b.GroundTruth(TotalsQuery("Corfu"))
	if rowsKey(ra.Rows) != rowsKey(rb.Rows) {
		t.Fatal("same seed must generate identical data")
	}
	c := NewTelco(TelcoOptions{Seed: 43})
	rc, _ := c.GroundTruth(TotalsQuery("Corfu"))
	if rowsKey(ra.Rows) == rowsKey(rc.Rows) {
		t.Fatal("different seeds should differ (with overwhelming probability)")
	}
}

func TestTelcoPartitionsCoverAndAreDisjoint(t *testing.T) {
	// Property: every generated customer row satisfies exactly one partition
	// predicate.
	f := NewTelco(TelcoOptions{Seed: 3, CustomersPerOffice: 15})
	sch := f.Schema
	def, _ := sch.Table("customer")
	parts := sch.Partitions("customer")
	for _, n := range f.Nodes {
		for _, part := range n.Store().PartIDs("customer") {
			if err := n.Store().Scan("customer", part, nil, func(r value.Row) bool {
				matches := 0
				for _, p := range parts {
					pred := expr.Clone(p.Predicate)
					expr.MustBind(pred, def.ColumnIDs(""))
					ok, err := expr.EvalBool(pred, r)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						matches++
					}
				}
				if matches != 1 {
					t.Fatalf("row %v matches %d partitions", r, matches)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTelcoInvoiceReplicas(t *testing.T) {
	f := NewTelco(TelcoOptions{Seed: 5, InvoiceReplicas: 1})
	holders := 0
	for id, n := range f.Nodes {
		if id == "hq" {
			continue
		}
		if len(n.Store().PartIDs("invoiceline")) > 0 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("invoice holders: %d, want 1", holders)
	}
}

func TestChainFederationEndToEnd(t *testing.T) {
	opts := ChainOptions{Relations: 3, RowsPerRel: 60, Parts: 2, Nodes: 4, Replicas: 2, Seed: 9}
	f := NewChain(opts)
	q := ChainQuery(opts, 0.5)
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Optimize(f.BuyerConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Execute(res)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(got.Rows) != rowsKey(truth.Rows) {
		t.Fatalf("chain distributed != truth: %d vs %d rows", len(got.Rows), len(truth.Rows))
	}
	if len(truth.Rows) == 0 {
		t.Fatal("degenerate workload: truth empty")
	}
}

func TestChainQueryShape(t *testing.T) {
	opts := ChainOptions{Relations: 4, RowsPerRel: 100}
	q := ChainQuery(opts, 1)
	sel := sqlparse.MustParseSelect(q)
	if len(sel.From) != 4 {
		t.Fatalf("from: %v", sel.From)
	}
	conj := len(expr.Conjuncts(sel.Where))
	if conj != 3 {
		t.Fatalf("join predicates: %d", conj)
	}
	q2 := ChainQuery(opts, 0.25)
	sel2 := sqlparse.MustParseSelect(q2)
	if len(expr.Conjuncts(sel2.Where)) != 4 {
		t.Fatalf("filter missing: %s", q2)
	}
}

func TestChainReplicaCounts(t *testing.T) {
	opts := ChainOptions{Relations: 2, RowsPerRel: 40, Parts: 4, Nodes: 4, Replicas: 2, Seed: 1}
	f := NewChain(opts)
	counts := map[string]int{}
	for _, n := range f.Nodes {
		for _, table := range n.Store().Tables() {
			for _, pid := range n.Store().PartIDs(table) {
				counts[table+"/"+pid]++
			}
		}
	}
	for frag, c := range counts {
		if c != 2 {
			t.Fatalf("fragment %s has %d replicas, want 2", frag, c)
		}
	}
	if len(counts) != 8 {
		t.Fatalf("fragments: %d, want 8", len(counts))
	}
}

func TestChainSkipOracle(t *testing.T) {
	f := NewChain(ChainOptions{Relations: 2, RowsPerRel: 20, Nodes: 2, SkipOracleData: true, Seed: 2})
	if f.Oracle() != nil {
		t.Fatal("oracle must be skipped")
	}
}

func TestGroundTruthMatchesManualSum(t *testing.T) {
	f := NewTelco(TelcoOptions{Seed: 11, CustomersPerOffice: 5, LinesPerCustomer: 2})
	resp, err := f.GroundTruth(TotalsQuery("Corfu"))
	if err != nil {
		t.Fatal(err)
	}
	// Manually sum corfu charges from the oracle store.
	var want float64
	custIDs := map[int64]bool{}
	if err := f.Oracle().Store().Scan("customer", "corfu", nil, func(r value.Row) bool {
		custIDs[r[0].I] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Oracle().Store().Scan("invoiceline", "p0", nil, func(r value.Row) bool {
		if custIDs[r[2].I] {
			want += r[3].F
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][1].AsFloat() != want {
		t.Fatalf("sum: got %v, want %f", resp.Rows, want)
	}
}

func TestStrategyFactoryIsUsed(t *testing.T) {
	built := 0
	f := NewTelco(TelcoOptions{Seed: 1, Strategy: func() trading.SellerStrategy {
		built++
		return trading.NewCompetitive()
	}})
	if built < len(f.Nodes)-1 {
		t.Fatalf("strategy factory calls: %d", built)
	}
}
