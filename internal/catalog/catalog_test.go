package catalog

import (
	"testing"

	"qtrade/internal/sqlparse"
	"qtrade/internal/value"
)

func custTable() *TableDef {
	return &TableDef{Name: "customer", Columns: []ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "custname", Kind: value.Str},
		{Name: "office", Kind: value.Str},
	}}
}

func TestAddTableAndLookup(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(custTable()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Table("CUSTOMER"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if err := s.AddTable(custTable()); err == nil {
		t.Fatal("duplicate table must error")
	}
	if err := s.AddTable(&TableDef{Name: "empty"}); err == nil {
		t.Fatal("no columns must error")
	}
	if err := s.AddTable(&TableDef{Name: "dup", Columns: []ColumnDef{{Name: "x"}, {Name: "X"}}}); err == nil {
		t.Fatal("duplicate column must error")
	}
}

func TestColumnIndexAndIDs(t *testing.T) {
	tab := custTable()
	if tab.ColumnIndex("OFFICE") != 2 || tab.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex")
	}
	ids := tab.ColumnIDs("c")
	if ids[0].Table != "c" || ids[0].Name != "custid" {
		t.Fatalf("ColumnIDs: %+v", ids[0])
	}
	ids = tab.ColumnIDs("")
	if ids[0].Table != "customer" {
		t.Fatal("default alias must be table name")
	}
}

func TestImplicitPartition(t *testing.T) {
	s := NewSchema()
	s.MustAddTable(custTable())
	ps := s.Partitions("customer")
	if len(ps) != 1 || ps[0].ID != "p0" || ps[0].Predicate != nil {
		t.Fatalf("implicit partition: %+v", ps)
	}
	if s.Partitions("ghost") != nil {
		t.Fatal("unknown table partitions must be nil")
	}
}

func TestSetPartitions(t *testing.T) {
	s := NewSchema()
	s.MustAddTable(custTable())
	parts := []*Partition{
		{Table: "customer", ID: "corfu", Predicate: sqlparse.MustParseExpr("office = 'Corfu'")},
		{Table: "customer", ID: "myconos", Predicate: sqlparse.MustParseExpr("office = 'Myconos'")},
	}
	if err := s.SetPartitions("customer", parts); err != nil {
		t.Fatal(err)
	}
	if got := s.PartitionIDs("customer"); len(got) != 2 || got[0] != "corfu" {
		t.Fatalf("ids: %v", got)
	}
	p, ok := s.Partition("customer", "myconos")
	if !ok || p.Predicate.String() != "office = 'Myconos'" {
		t.Fatalf("partition lookup: %v %v", p, ok)
	}
	if _, ok := s.Partition("customer", "nope"); ok {
		t.Fatal("missing partition must not resolve")
	}
	if err := s.SetPartitions("ghost", parts); err == nil {
		t.Fatal("unknown table must error")
	}
	if err := s.SetPartitions("customer", nil); err == nil {
		t.Fatal("empty partitions must error")
	}
	if err := s.SetPartitions("customer", []*Partition{{Table: "other", ID: "x"}}); err == nil {
		t.Fatal("wrong table in partition must error")
	}
	if err := s.SetPartitions("customer", []*Partition{
		{Table: "customer", ID: "a"}, {Table: "customer", ID: "a"},
	}); err == nil {
		t.Fatal("duplicate ids must error")
	}
}

func TestPartitionKey(t *testing.T) {
	p := &Partition{Table: "Customer", ID: "p1"}
	if p.Key() != "customer/p1" {
		t.Fatalf("key: %s", p.Key())
	}
}

func TestSchemaClone(t *testing.T) {
	s := NewSchema()
	s.MustAddTable(custTable())
	if err := s.SetPartitions("customer", []*Partition{
		{Table: "customer", ID: "a", Predicate: sqlparse.MustParseExpr("office = 'X'")},
	}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	// Mutating the clone must not touch the original.
	cp, _ := c.Partition("customer", "a")
	cp.ID = "changed"
	if _, ok := s.Partition("customer", "a"); !ok {
		t.Fatal("clone aliased partitions")
	}
	ct, _ := c.Table("customer")
	ct.Columns[0].Name = "zzz"
	ot, _ := s.Table("customer")
	if ot.Columns[0].Name != "custid" {
		t.Fatal("clone aliased columns")
	}
}

func TestTablesSorted(t *testing.T) {
	s := NewSchema()
	s.MustAddTable(&TableDef{Name: "zebra", Columns: []ColumnDef{{Name: "x"}}})
	s.MustAddTable(&TableDef{Name: "ant", Columns: []ColumnDef{{Name: "x"}}})
	ts := s.Tables()
	if len(ts) != 2 || ts[0].Name != "ant" {
		t.Fatalf("sorted tables: %v", ts)
	}
}

func TestPlacement(t *testing.T) {
	p := NewPlacement()
	f1 := FragmentRef{Table: "Customer", Part: "a"}
	f2 := FragmentRef{Table: "customer", Part: "b"}
	p.Assign("n1", f1)
	p.Assign("n2", f1)
	p.Assign("n1", f1) // duplicate, no-op
	p.Assign("n2", f2)
	if h := p.Holders(f1); len(h) != 2 {
		t.Fatalf("holders: %v", h)
	}
	if got := p.NodeFragments("n2"); len(got) != 2 {
		t.Fatalf("node fragments: %v", got)
	}
	if nodes := p.Nodes(); len(nodes) != 2 || nodes[0] != "n1" {
		t.Fatalf("nodes: %v", nodes)
	}
	if f1.Key() != "customer/a" {
		t.Fatalf("fragment key: %s", f1.Key())
	}
}
