// Package catalog models logical schemas, horizontal partitioning and
// replica placement for a federation of autonomous DBMS nodes.
//
// Following the paper's setting, the *logical* schema (table and column
// definitions, and the predicates that define horizontal partitions) is
// public knowledge across the federation, while *placement* — which node
// holds which fragment, with what statistics, at what load — is private to
// each node. The global Placement type exists only for workload construction
// and for the centralized baseline optimizer, which is deliberately given
// full knowledge the QT algorithm never uses.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"qtrade/internal/expr"
	"qtrade/internal/value"
)

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	Kind value.Kind
}

// TableDef describes a logical table.
type TableDef struct {
	Name    string
	Columns []ColumnDef
}

// ColumnIndex returns the position of the named column, or -1.
func (t *TableDef) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnIDs returns the expr binding schema of the table exposed under the
// given alias (the table name itself when alias is empty).
func (t *TableDef) ColumnIDs(alias string) []expr.ColumnID {
	if alias == "" {
		alias = t.Name
	}
	out := make([]expr.ColumnID, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = expr.ColumnID{Table: alias, Name: c.Name}
	}
	return out
}

// Partition is one horizontal fragment of a table, defined by a predicate
// over the table's columns (the paper's `office='Myconos'` style fragments).
// A table with a single partition whose predicate is nil is unpartitioned.
type Partition struct {
	Table     string
	ID        string
	Predicate expr.Expr
}

// Key returns the canonical fragment identity "table/id".
func (p *Partition) Key() string {
	return strings.ToLower(p.Table) + "/" + p.ID
}

// Schema is the public logical schema of the federation: tables and their
// partitioning scheme.
type Schema struct {
	tables     map[string]*TableDef
	partitions map[string][]*Partition
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: map[string]*TableDef{}, partitions: map[string][]*Partition{}}
}

// AddTable registers a table definition. Adding a table implicitly creates a
// single whole-table partition "p0" unless partitions are defined later.
func (s *Schema) AddTable(t *TableDef) error {
	key := strings.ToLower(t.Name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("catalog: duplicate table %q", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: table %q has duplicate column %q", t.Name, c.Name)
		}
		seen[lc] = true
	}
	s.tables[key] = t
	return nil
}

// MustAddTable registers a table or panics; for fixture construction.
func (s *Schema) MustAddTable(t *TableDef) {
	if err := s.AddTable(t); err != nil {
		panic(err)
	}
}

// Table resolves a table definition by name (case-insensitive).
func (s *Schema) Table(name string) (*TableDef, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all table definitions sorted by name.
func (s *Schema) Tables() []*TableDef {
	out := make([]*TableDef, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetPartitions defines the horizontal partitioning of a table. The caller
// asserts the predicates are disjoint and jointly cover the table; the
// property tests in the workload package verify this for generated schemas.
func (s *Schema) SetPartitions(table string, parts []*Partition) error {
	key := strings.ToLower(table)
	if _, ok := s.tables[key]; !ok {
		return fmt.Errorf("catalog: unknown table %q", table)
	}
	if len(parts) == 0 {
		return fmt.Errorf("catalog: table %q needs at least one partition", table)
	}
	ids := map[string]bool{}
	for _, p := range parts {
		if !strings.EqualFold(p.Table, table) {
			return fmt.Errorf("catalog: partition %q belongs to table %q, not %q", p.ID, p.Table, table)
		}
		if ids[p.ID] {
			return fmt.Errorf("catalog: duplicate partition id %q for table %q", p.ID, table)
		}
		ids[p.ID] = true
	}
	s.partitions[key] = parts
	return nil
}

// Partitions returns the partition list of a table. A table without explicit
// partitions reports a single implicit whole-table partition "p0".
func (s *Schema) Partitions(table string) []*Partition {
	key := strings.ToLower(table)
	if ps, ok := s.partitions[key]; ok {
		return ps
	}
	if t, ok := s.tables[key]; ok {
		return []*Partition{{Table: t.Name, ID: "p0"}}
	}
	return nil
}

// Partition resolves one partition by table and id.
func (s *Schema) Partition(table, id string) (*Partition, bool) {
	for _, p := range s.Partitions(table) {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// PartitionIDs returns the ids of a table's partitions in definition order.
func (s *Schema) PartitionIDs(table string) []string {
	ps := s.Partitions(table)
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

// Clone returns a deep copy of the schema (partition predicates are cloned).
func (s *Schema) Clone() *Schema {
	out := NewSchema()
	for _, t := range s.tables {
		cols := append([]ColumnDef(nil), t.Columns...)
		out.tables[strings.ToLower(t.Name)] = &TableDef{Name: t.Name, Columns: cols}
	}
	for k, ps := range s.partitions {
		cp := make([]*Partition, len(ps))
		for i, p := range ps {
			np := &Partition{Table: p.Table, ID: p.ID}
			if p.Predicate != nil {
				np.Predicate = expr.Clone(p.Predicate)
			}
			cp[i] = np
		}
		out.partitions[k] = cp
	}
	return out
}

// FragmentRef names one replica-independent fragment.
type FragmentRef struct {
	Table string
	Part  string
}

// Key returns the canonical "table/part" identity.
func (f FragmentRef) Key() string { return strings.ToLower(f.Table) + "/" + f.Part }

// Placement records which nodes hold which fragments. It is global knowledge
// available only to workload construction and the centralized baseline.
type Placement struct {
	byFrag map[string][]string // fragment key -> node ids (replicas)
	byNode map[string][]FragmentRef
}

// NewPlacement returns an empty placement.
func NewPlacement() *Placement {
	return &Placement{byFrag: map[string][]string{}, byNode: map[string][]FragmentRef{}}
}

// Assign places a fragment replica on a node. Assigning the same pair twice
// is a no-op.
func (p *Placement) Assign(node string, f FragmentRef) {
	k := f.Key()
	for _, n := range p.byFrag[k] {
		if n == node {
			return
		}
	}
	p.byFrag[k] = append(p.byFrag[k], node)
	p.byNode[node] = append(p.byNode[node], f)
}

// Holders returns the nodes holding a replica of the fragment.
func (p *Placement) Holders(f FragmentRef) []string {
	return append([]string(nil), p.byFrag[f.Key()]...)
}

// NodeFragments returns the fragments a node holds.
func (p *Placement) NodeFragments(node string) []FragmentRef {
	return append([]FragmentRef(nil), p.byNode[node]...)
}

// Nodes returns all node ids mentioned by the placement, sorted.
func (p *Placement) Nodes() []string {
	out := make([]string, 0, len(p.byNode))
	for n := range p.byNode {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
