// Package storage is the in-memory storage engine each federation node runs:
// it holds table fragments (horizontal partitions), serves scans, maintains
// per-fragment statistics, and stores materialized views. It is deliberately
// simple — the paper's optimization algorithm treats each node's DBMS as a
// black box behind its optimizer's estimates, so the engine only needs to be
// correct and costed, not fast.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/stats"
	"qtrade/internal/value"
)

// Fragment is the stored rows of one horizontal partition replica.
type Fragment struct {
	Def    *catalog.TableDef
	PartID string
	Rows   []value.Row
	Stats  *stats.TableStats
}

// Ref returns the fragment's catalog identity.
func (f *Fragment) Ref() catalog.FragmentRef {
	return catalog.FragmentRef{Table: f.Def.Name, Part: f.PartID}
}

// MaterializedView is a stored query result a node may offer during trading
// (§3.5 of the paper).
type MaterializedView struct {
	Name    string
	SQL     string // definition, parseable by sqlparse
	Columns []catalog.ColumnDef
	Rows    []value.Row
	Stats   *stats.TableStats
}

// Store is a node's local storage: fragments keyed by table and partition,
// plus materialized views.
//
// The store versions itself with two monotonic counters: Epoch ticks on any
// change to what data is held (fragment creation, inserts, new views) and
// StatsVersion ticks whenever the statistics a cost estimate could read may
// have changed. Price caches key entries by both so a cached estimate can
// never outlive the state it was computed from.
type Store struct {
	mu    sync.RWMutex
	frags map[string]map[string]*Fragment // lower(table) -> partID
	views map[string]*MaterializedView    // lower(name)

	epoch  atomic.Int64
	statsV atomic.Int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{frags: map[string]map[string]*Fragment{}, views: map[string]*MaterializedView{}}
}

// CreateFragment registers an empty fragment for the given table partition.
// It errors if the fragment already exists.
func (s *Store) CreateFragment(def *catalog.TableDef, partID string) (*Fragment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(def.Name)
	m := s.frags[key]
	if m == nil {
		m = map[string]*Fragment{}
		s.frags[key] = m
	}
	if _, dup := m[partID]; dup {
		return nil, fmt.Errorf("storage: fragment %s/%s already exists", def.Name, partID)
	}
	f := &Fragment{Def: def, PartID: partID}
	m[partID] = f
	s.epoch.Add(1)
	return f, nil
}

// Epoch reports the store's data version: it increases whenever the set of
// held data changes (fragments created, rows inserted, views added).
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// StatsVersion reports the statistics version: it increases whenever
// statistics visible to cost estimation may have changed (inserts
// invalidating lazily built stats, or synthetic stats installed).
func (s *Store) StatsVersion() int64 { return s.statsV.Load() }

// Insert appends rows to a fragment, validating width and column kinds
// (NULLs are allowed in any column).
func (s *Store) Insert(table, partID string, rows ...value.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookup(table, partID)
	if f == nil {
		return fmt.Errorf("storage: no fragment %s/%s", table, partID)
	}
	for _, r := range rows {
		if len(r) != len(f.Def.Columns) {
			return fmt.Errorf("storage: row width %d != %d for %s", len(r), len(f.Def.Columns), table)
		}
		for i, v := range r {
			if v.IsNull() {
				continue
			}
			want := f.Def.Columns[i].Kind
			if v.K != want && !(numericKind(v.K) && numericKind(want)) {
				return fmt.Errorf("storage: column %s.%s wants %s, got %s",
					table, f.Def.Columns[i].Name, want, v.K)
			}
		}
		f.Rows = append(f.Rows, r)
	}
	f.Stats = nil // invalidate
	s.epoch.Add(1)
	s.statsV.Add(1)
	return nil
}

func numericKind(k value.Kind) bool { return k == value.Int || k == value.Float }

func (s *Store) lookup(table, partID string) *Fragment {
	m := s.frags[strings.ToLower(table)]
	if m == nil {
		return nil
	}
	return m[partID]
}

// Fragment returns a stored fragment, or nil.
func (s *Store) Fragment(table, partID string) *Fragment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lookup(table, partID)
}

// Fragments returns all fragments of a table held locally, sorted by
// partition id; nil if none.
func (s *Store) Fragments(table string) []*Fragment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.frags[strings.ToLower(table)]
	if len(m) == 0 {
		return nil
	}
	out := make([]*Fragment, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PartID < out[j].PartID })
	return out
}

// Tables returns the lower-cased names of tables with at least one local
// fragment, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.frags))
	for t, m := range s.frags {
		if len(m) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// PartIDs returns the partition ids of a table held locally, sorted.
func (s *Store) PartIDs(table string) []string {
	var out []string
	for _, f := range s.Fragments(table) {
		out = append(out, f.PartID)
	}
	return out
}

// Scan streams a fragment's rows through fn; fn returning false stops the
// scan. The optional predicate must be bound against the table's columns.
func (s *Store) Scan(table, partID string, pred expr.Expr, fn func(value.Row) bool) error {
	_, err := s.ScanFrom(table, partID, pred, 0, fn)
	return err
}

// ScanFrom streams a fragment's rows through fn starting at raw row position
// start (offsets count every stored row, including ones the predicate
// rejects) and returns the position the scan should resume from. fn
// returning false stops the scan after that row. Fragments are append-only,
// so a position handed out by one call stays valid for the next: cursor
// callers pull one bounded batch per call without the store holding any
// per-scan state.
func (s *Store) ScanFrom(table, partID string, pred expr.Expr, start int, fn func(value.Row) bool) (int, error) {
	s.mu.RLock()
	f := s.lookup(table, partID)
	var rows []value.Row
	if f != nil {
		rows = f.Rows
	}
	s.mu.RUnlock()
	if f == nil {
		return start, fmt.Errorf("storage: no fragment %s/%s", table, partID)
	}
	i := start
	for ; i < len(rows); i++ {
		r := rows[i]
		if pred != nil {
			ok, err := expr.EvalBool(pred, r)
			if err != nil {
				return i, err
			}
			if !ok {
				continue
			}
		}
		if !fn(r) {
			return i + 1, nil
		}
	}
	return i, nil
}

// FragmentStats returns (building lazily) statistics for a fragment. Built
// stats are immutable until the next insert invalidates them, so the common
// already-built case takes only the read lock — concurrent pricing workers
// sharing a store do not serialize on it.
func (s *Store) FragmentStats(table, partID string) (*stats.TableStats, error) {
	s.mu.RLock()
	f := s.lookup(table, partID)
	if f != nil && f.Stats != nil {
		ts := f.Stats
		s.mu.RUnlock()
		return ts, nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	f = s.lookup(table, partID)
	if f == nil {
		return nil, fmt.Errorf("storage: no fragment %s/%s", table, partID)
	}
	if f.Stats == nil {
		f.Stats = stats.FromRows(f.Def, f.Rows)
	}
	return f.Stats, nil
}

// SetFragmentStats installs synthetic statistics (for declarative,
// data-free experiment setups).
func (s *Store) SetFragmentStats(table, partID string, ts *stats.TableStats) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookup(table, partID)
	if f == nil {
		return fmt.Errorf("storage: no fragment %s/%s", table, partID)
	}
	f.Stats = ts
	s.statsV.Add(1)
	return nil
}

// TableStats merges the statistics of all local fragments of a table.
func (s *Store) TableStats(table string) (*stats.TableStats, error) {
	frs := s.Fragments(table)
	if len(frs) == 0 {
		return nil, fmt.Errorf("storage: no fragments of %s", table)
	}
	var merged *stats.TableStats
	for _, f := range frs {
		ts, err := s.FragmentStats(table, f.PartID)
		if err != nil {
			return nil, err
		}
		merged = stats.Merge(merged, ts)
	}
	return merged, nil
}

// AddView stores a materialized view.
func (s *Store) AddView(v *MaterializedView) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(v.Name)
	if _, dup := s.views[key]; dup {
		return fmt.Errorf("storage: duplicate view %q", v.Name)
	}
	if v.Stats == nil {
		def := &catalog.TableDef{Name: v.Name, Columns: v.Columns}
		v.Stats = stats.FromRows(def, v.Rows)
	}
	s.views[key] = v
	s.epoch.Add(1)
	return nil
}

// View returns a stored view by name, or nil.
func (s *Store) View(name string) *MaterializedView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[strings.ToLower(name)]
}

// Views returns all stored views sorted by name.
func (s *Store) Views() []*MaterializedView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*MaterializedView, 0, len(s.views))
	for _, v := range s.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalRows reports the number of rows stored across all fragments; used by
// load-aware pricing strategies.
func (s *Store) TotalRows() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, m := range s.frags {
		for _, f := range m {
			n += int64(len(f.Rows))
		}
	}
	return n
}
