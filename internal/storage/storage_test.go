package storage

import (
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/stats"
	"qtrade/internal/value"
)

func custDef() *catalog.TableDef {
	return &catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "office", Kind: value.Str},
	}}
}

func row(id int64, office string) value.Row {
	return value.Row{value.NewInt(id), value.NewStr(office)}
}

func TestCreateInsertScan(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateFragment(custDef(), "corfu"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateFragment(custDef(), "corfu"); err == nil {
		t.Fatal("duplicate fragment must error")
	}
	if err := s.Insert("customer", "corfu", row(1, "Corfu"), row(2, "Corfu")); err != nil {
		t.Fatal(err)
	}
	var got []int64
	err := s.Scan("customer", "corfu", nil, func(r value.Row) bool {
		got = append(got, r[0].I)
		return true
	})
	if err != nil || len(got) != 2 {
		t.Fatalf("scan: %v %v", got, err)
	}
}

func TestInsertValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateFragment(custDef(), "p0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("customer", "p0", value.Row{value.NewInt(1)}); err == nil {
		t.Fatal("width mismatch must error")
	}
	if err := s.Insert("customer", "p0", value.Row{value.NewStr("x"), value.NewStr("y")}); err == nil {
		t.Fatal("kind mismatch must error")
	}
	if err := s.Insert("customer", "p0", value.Row{value.NewNull(), value.NewNull()}); err != nil {
		t.Fatalf("nulls are allowed: %v", err)
	}
	if err := s.Insert("ghost", "p0", row(1, "x")); err != nil {
		// expected
	} else {
		t.Fatal("unknown fragment must error")
	}
	// Numeric coercion: float into int column is accepted.
	if err := s.Insert("customer", "p0", value.Row{value.NewFloat(2.0), value.NewStr("x")}); err != nil {
		t.Fatalf("numeric coercion: %v", err)
	}
}

func TestScanWithPredicate(t *testing.T) {
	s := NewStore()
	def := custDef()
	if _, err := s.CreateFragment(def, "p0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("customer", "p0", row(1, "Corfu"), row(2, "Myconos"), row(3, "Corfu")); err != nil {
		t.Fatal(err)
	}
	pred := sqlparse.MustParseExpr("office = 'Corfu'")
	expr.MustBind(pred, def.ColumnIDs(""))
	n := 0
	if err := s.Scan("customer", "p0", pred, func(value.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("filtered scan: %d", n)
	}
	// Early termination.
	n = 0
	if err := s.Scan("customer", "p0", nil, func(value.Row) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop: %d", n)
	}
	if err := s.Scan("ghost", "p0", nil, func(value.Row) bool { return true }); err == nil {
		t.Fatal("scan of missing fragment must error")
	}
}

func TestFragmentListingSorted(t *testing.T) {
	s := NewStore()
	def := custDef()
	for _, p := range []string{"z", "a", "m"} {
		if _, err := s.CreateFragment(def, p); err != nil {
			t.Fatal(err)
		}
	}
	fr := s.Fragments("customer")
	if len(fr) != 3 || fr[0].PartID != "a" || fr[2].PartID != "z" {
		t.Fatalf("sorted fragments: %v", fr)
	}
	if got := s.PartIDs("customer"); got[0] != "a" {
		t.Fatalf("part ids: %v", got)
	}
	if s.Fragments("ghost") != nil {
		t.Fatal("no fragments must be nil")
	}
	if tabs := s.Tables(); len(tabs) != 1 || tabs[0] != "customer" {
		t.Fatalf("tables: %v", tabs)
	}
	if s.Fragment("customer", "a") == nil || s.Fragment("customer", "q") != nil {
		t.Fatal("fragment lookup")
	}
	if (catalog.FragmentRef{Table: "customer", Part: "a"}) != fr[0].Ref() {
		t.Fatal("Ref identity")
	}
}

func TestStatsLifecycle(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateFragment(custDef(), "p0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("customer", "p0", row(1, "a"), row(2, "b")); err != nil {
		t.Fatal(err)
	}
	ts, err := s.FragmentStats("customer", "p0")
	if err != nil || ts.Rows != 2 {
		t.Fatalf("stats: %+v %v", ts, err)
	}
	// Insert invalidates cached stats.
	if err := s.Insert("customer", "p0", row(3, "c")); err != nil {
		t.Fatal(err)
	}
	ts, _ = s.FragmentStats("customer", "p0")
	if ts.Rows != 3 {
		t.Fatalf("stats must refresh after insert: %d", ts.Rows)
	}
	if _, err := s.FragmentStats("customer", "nope"); err == nil {
		t.Fatal("missing fragment stats must error")
	}
}

func TestSetFragmentStatsAndTableStats(t *testing.T) {
	s := NewStore()
	def := custDef()
	for _, p := range []string{"a", "b"} {
		if _, err := s.CreateFragment(def, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetFragmentStats("customer", "a", stats.Synthetic(def, 100, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFragmentStats("customer", "b", stats.Synthetic(def, 50, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFragmentStats("customer", "zzz", nil); err == nil {
		t.Fatal("missing fragment must error")
	}
	ts, err := s.TableStats("customer")
	if err != nil || ts.Rows != 150 {
		t.Fatalf("merged table stats: %+v %v", ts, err)
	}
	if _, err := s.TableStats("ghost"); err == nil {
		t.Fatal("missing table stats must error")
	}
}

func TestViews(t *testing.T) {
	s := NewStore()
	v := &MaterializedView{
		Name: "officetotals",
		SQL:  "SELECT office, SUM(custid) AS total FROM customer GROUP BY office",
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str},
			{Name: "total", Kind: value.Int},
		},
		Rows: []value.Row{{value.NewStr("Corfu"), value.NewInt(10)}},
	}
	if err := s.AddView(v); err != nil {
		t.Fatal(err)
	}
	if err := s.AddView(v); err == nil {
		t.Fatal("duplicate view must error")
	}
	got := s.View("OFFICETOTALS")
	if got == nil || got.Stats == nil || got.Stats.Rows != 1 {
		t.Fatalf("view stats: %+v", got)
	}
	if len(s.Views()) != 1 {
		t.Fatal("views listing")
	}
	if s.View("nope") != nil {
		t.Fatal("missing view must be nil")
	}
}

func TestTotalRows(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateFragment(custDef(), "p0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("customer", "p0", row(1, "a"), row(2, "b")); err != nil {
		t.Fatal(err)
	}
	if s.TotalRows() != 2 {
		t.Fatalf("total rows: %d", s.TotalRows())
	}
}

func TestEpochAndStatsVersionTick(t *testing.T) {
	s := NewStore()
	if s.Epoch() != 0 || s.StatsVersion() != 0 {
		t.Fatalf("fresh store versions %d/%d, want 0/0", s.Epoch(), s.StatsVersion())
	}
	if _, err := s.CreateFragment(custDef(), "corfu"); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("CreateFragment must tick the epoch, got %d", s.Epoch())
	}
	if err := s.Insert("customer", "corfu", row(1, "Corfu")); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 || s.StatsVersion() != 1 {
		t.Fatalf("Insert must tick both versions, got %d/%d", s.Epoch(), s.StatsVersion())
	}
	// Lazily building stats reads unchanged rows: no version tick.
	if _, err := s.FragmentStats("customer", "corfu"); err != nil {
		t.Fatal(err)
	}
	if s.StatsVersion() != 1 {
		t.Fatalf("lazy stats build must not tick, got %d", s.StatsVersion())
	}
	if err := s.SetFragmentStats("customer", "corfu", &stats.TableStats{Rows: 99}); err != nil {
		t.Fatal(err)
	}
	if s.StatsVersion() != 2 {
		t.Fatalf("SetFragmentStats must tick the stats version, got %d", s.StatsVersion())
	}
	if err := s.AddView(&MaterializedView{Name: "v", SQL: "SELECT custid FROM customer",
		Columns: custDef().Columns[:1]}); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 3 {
		t.Fatalf("AddView must tick the epoch, got %d", s.Epoch())
	}
}

func TestScanFromResume(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateFragment(custDef(), "p0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("customer", "p0",
		row(1, "A"), row(2, "B"), row(3, "A"), row(4, "B"), row(5, "A")); err != nil {
		t.Fatal(err)
	}
	// Pull the fragment in batches of two via resumable positions.
	var got []int64
	pos := 0
	for {
		n := 0
		next, err := s.ScanFrom("customer", "p0", nil, pos, func(r value.Row) bool {
			got = append(got, r[0].I)
			n++
			return n < 2
		})
		if err != nil {
			t.Fatal(err)
		}
		if next == pos {
			break
		}
		pos = next
	}
	if len(got) != 5 || got[0] != 1 || got[4] != 5 {
		t.Fatalf("batched resume: %v", got)
	}
	// Positions count predicate-rejected rows too: resuming after the first
	// match of a filtered scan must not skip or repeat matches.
	pred := sqlparse.MustParseExpr("office = 'A'")
	if err := expr.Bind(pred, []expr.ColumnID{{Name: "custid"}, {Name: "office"}}); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	pos = 0
	for {
		took := false
		next, err := s.ScanFrom("customer", "p0", pred, pos, func(r value.Row) bool {
			ids = append(ids, r[0].I)
			took = true
			return false // one match per call
		})
		if err != nil {
			t.Fatal(err)
		}
		if !took {
			break
		}
		pos = next
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("filtered resume: %v", ids)
	}
	if _, err := s.ScanFrom("ghost", "p0", nil, 0, func(value.Row) bool { return true }); err == nil {
		t.Fatal("missing fragment must error")
	}
}
