// Package netsim simulates the federation's network: an in-process message
// bus connecting autonomous nodes, with exact message and byte accounting
// and a parameterized latency model. The paper's experiments report
// optimization time and messages exchanged; both are functions of the
// protocol traffic this package observes, not of physical hardware, which is
// why an in-process bus reproduces their shape (see DESIGN.md,
// substitutions). A real net/rpc transport with the same interface lives in
// rpc.go for multi-process deployments.
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qtrade/internal/trading"
)

// Service is the seller-side surface a federation node exposes to peers.
type Service interface {
	RequestBids(trading.RFB) (trading.BidReply, error)
	ImproveBids(trading.ImproveReq) (trading.BidReply, error)
	Award(trading.Award) error
	Execute(trading.ExecReq) (trading.ExecResp, error)
}

// Network is the in-process bus. The zero value is not usable; call New.
type Network struct {
	// LatencyMS is the simulated per-message latency, accounted (never
	// slept) into SimTimeMS.
	LatencyMS float64

	mu    sync.RWMutex
	nodes map[string]Service
	down  map[string]bool

	messages  atomic.Int64
	bytes     atomic.Int64
	simTimeMS uint64 // float64 bits, updated via CAS

	pairMu sync.Mutex
	pairs  map[Pair]*pairCounters

	// chaos, when non-nil, is the installed fault injector (see chaos.go).
	// Kept behind one atomic pointer load so a fault-free network pays a
	// single nil check per call and behaves identically to one without
	// chaos support.
	chaos atomic.Pointer[chaosState]
}

// Pair identifies one directed sender→receiver link.
type Pair struct {
	From string
	To   string
}

// PairStats is the traffic recorded on one directed link.
type PairStats struct {
	Messages int64
	Bytes    int64
}

type pairCounters struct {
	messages atomic.Int64
	bytes    atomic.Int64
}

// New returns an empty network with 1 ms simulated latency.
func New() *Network {
	return &Network{LatencyMS: 1, nodes: map[string]Service{}, down: map[string]bool{}, pairs: map[Pair]*pairCounters{}}
}

// Register attaches a node's service under its id, replacing any previous
// registration.
func (n *Network) Register(id string, svc Service) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[id] = svc
}

// Unregister detaches a node from the bus (a member that left the
// federation). Subsequent calls to it fail as unknown, and it disappears
// from Peers fan-outs. Any lingering down-marking is cleared so a later
// re-registration under the same id starts reachable.
func (n *Network) Unregister(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
	delete(n.down, id)
}

// NodeIDs lists registered nodes, sorted.
func (n *Network) NodeIDs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SetDown marks a node unreachable (fault injection for robustness tests).
func (n *Network) SetDown(id string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[id] = down
}

// Stats returns the total messages and bytes since the last Reset.
func (n *Network) Stats() (messages, bytes int64) {
	return n.messages.Load(), n.bytes.Load()
}

// StatsByPair returns the per-directed-link traffic breakdown since the last
// Reset: one entry per sender→receiver pair that exchanged at least one
// message. Requests are charged to from→to and responses to to→from, so the
// asymmetry of the trading protocol (small RFBs out, large offer lists back)
// is visible per link.
func (n *Network) StatsByPair() map[Pair]PairStats {
	n.pairMu.Lock()
	defer n.pairMu.Unlock()
	out := make(map[Pair]PairStats, len(n.pairs))
	for p, c := range n.pairs {
		out[p] = PairStats{Messages: c.messages.Load(), Bytes: c.bytes.Load()}
	}
	return out
}

// SimTimeMS returns the accumulated simulated network time.
func (n *Network) SimTimeMS() float64 {
	return atomicLoadFloat(&n.simTimeMS)
}

// Reset zeroes all counters: the two global totals, the simulated network
// time, and every per-pair breakdown. Experiments call it between runs so
// each measurement starts from a clean ledger; it is safe to call
// concurrently with traffic, though messages in flight during the reset may
// land on either side of it.
func (n *Network) Reset() {
	n.messages.Store(0)
	n.bytes.Store(0)
	atomicStoreFloat(&n.simTimeMS, 0)
	n.pairMu.Lock()
	n.pairs = map[Pair]*pairCounters{}
	n.pairMu.Unlock()
}

// dispatch resolves the receiver of one call and runs the fault injector.
// An unknown node costs nothing (there is no route to send on); a down,
// crashed or flapping node and a dropped request charge the request on the
// from→to link — it crossed the wire even though nothing answered.
func (n *Network) dispatch(from, to string, reqBytes int) (Service, error) {
	n.mu.RLock()
	svc, ok := n.nodes[to]
	down := n.down[to]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("netsim: unknown node %q", to)
	}
	if down {
		n.accountLost(from, to, reqBytes)
		return nil, fmt.Errorf("netsim: node %q is down", to)
	}
	if err := n.chaosBefore(from, to, reqBytes); err != nil {
		return nil, err
	}
	return svc, nil
}

// account records one request/response exchange: the request on the
// from→to link, the response on to→from.
func (n *Network) account(from, to string, reqBytes, respBytes int) {
	n.messages.Add(2)
	n.bytes.Add(int64(reqBytes + respBytes))
	atomicAddFloat(&n.simTimeMS, 2*n.LatencyMS)
	n.pairAccount(Pair{From: from, To: to}, reqBytes)
	n.pairAccount(Pair{From: to, To: from}, respBytes)
}

func (n *Network) pairAccount(p Pair, bytes int) {
	n.pairMu.Lock()
	c := n.pairs[p]
	if c == nil {
		c = &pairCounters{}
		n.pairs[p] = c
	}
	n.pairMu.Unlock()
	c.messages.Add(1)
	c.bytes.Add(int64(bytes))
}

// Peer returns a counting Peer from one node to another.
func (n *Network) Peer(from, to string) trading.Peer {
	return &simPeer{net: n, from: from, to: to}
}

// Peers returns counting peers from one node to every other registered node.
func (n *Network) Peers(from string) map[string]trading.Peer {
	out := map[string]trading.Peer{}
	for _, id := range n.NodeIDs() {
		if id != from {
			out[id] = n.Peer(from, id)
		}
	}
	return out
}

// Execute performs a purchased-answer fetch with full accounting.
func (n *Network) Execute(from, to string, req trading.ExecReq) (trading.ExecResp, error) {
	svc, err := n.dispatch(from, to, req.WireSize())
	if err != nil {
		return trading.ExecResp{}, err
	}
	resp, err := svc.Execute(req)
	if err != nil {
		return trading.ExecResp{}, err
	}
	n.account(from, to, req.WireSize(), resp.WireSize())
	return resp, nil
}

// Award delivers an award notification with accounting. A node whose fault
// plan marks it crash-after-award accepts the award, then dies.
func (n *Network) Award(from, to string, aw trading.Award) error {
	svc, err := n.dispatch(from, to, aw.WireSize())
	if err != nil {
		return err
	}
	if err := svc.Award(aw); err != nil {
		return err
	}
	n.account(from, to, aw.WireSize(), 8)
	n.chaosAfterAward(to)
	return nil
}

type simPeer struct {
	net  *Network
	from string
	to   string
}

// RequestBids implements trading.Peer.
func (p *simPeer) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	svc, err := p.net.dispatch(p.from, p.to, rfb.WireSize())
	if err != nil {
		return trading.BidReply{}, err
	}
	rep, err := svc.RequestBids(rfb)
	if err != nil {
		return trading.BidReply{}, err
	}
	p.net.account(p.from, p.to, rfb.WireSize(), rep.WireSize())
	return rep, nil
}

// Execute fetches a purchased answer from the peer with full accounting
// (used directly by subcontracting sellers).
func (p *simPeer) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	return p.net.Execute(p.from, p.to, req)
}

// ImproveBids implements trading.Peer.
func (p *simPeer) ImproveBids(req trading.ImproveReq) (trading.BidReply, error) {
	svc, err := p.net.dispatch(p.from, p.to, req.WireSize())
	if err != nil {
		return trading.BidReply{}, err
	}
	rep, err := svc.ImproveBids(req)
	if err != nil {
		return trading.BidReply{}, err
	}
	p.net.account(p.from, p.to, req.WireSize(), rep.WireSize())
	return rep, nil
}

// atomic float helpers (no atomic.Float64 in the stdlib).

func atomicAddFloat(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		newBits := floatBits(floatFromBits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, newBits) {
			return
		}
	}
}

func atomicStoreFloat(addr *uint64, v float64) { atomic.StoreUint64(addr, floatBits(v)) }
func atomicLoadFloat(addr *uint64) float64     { return floatFromBits(atomic.LoadUint64(addr)) }
