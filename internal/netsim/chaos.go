// Chaos injection for the simulated network: a seeded, deterministic fault
// injector that perturbs every call crossing the bus. The paper's autonomy
// premise — sellers "may decline or die" mid-negotiation — is exercised by
// replaying realistic partial failures (drops, jitter, slow nodes, flaps,
// error replies, crash-after-award) under a fixed seed, so robustness
// experiments are reproducible. With no FaultPlan installed every code path
// below is skipped behind one atomic pointer load, keeping the fault-free
// network byte-identical to the unperturbed implementation.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qtrade/internal/trading"
)

// FaultPlan describes the faults to inject, all derived deterministically
// from Seed and the per-link call sequence: the same plan over the same
// call pattern makes the same decisions.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// DropProb is the probability a request is lost in transit on any link
	// (charged as one lost message; surfaces as a transient error).
	DropProb float64
	// LinkDropProb overrides DropProb for specific directed links.
	LinkDropProb map[Pair]float64
	// ErrorProb is the probability a delivered request is answered with an
	// error reply instead of a result (transient; charged request + error).
	ErrorProb float64
	// JitterMS adds a uniform [0, JitterMS) real sleep to every delivered
	// call.
	JitterMS float64
	// SlowNodeMS adds a fixed real sleep to every call *to* the named node —
	// a permanently slow (straggling) seller.
	SlowNodeMS map[string]float64
	// FlapPeriod makes the named node intermittently unreachable: calls are
	// rejected while floor(seq/period) is odd, where seq counts the calls
	// addressed to that node. Period 4 means: 4 calls served, 4 rejected, …
	FlapPeriod map[string]int
	// CrashAfterAward permanently crashes the named node right after it
	// accepts its next Award — the seller dies between winning the
	// negotiation and delivering, the hazard execution-time recovery targets.
	CrashAfterAward map[string]bool
}

// ChaosStats counts the faults injected since the plan was installed.
type ChaosStats struct {
	Drops          int64 // requests lost in transit
	InjectedErrors int64 // error replies
	SlowCalls      int64 // calls delayed by SlowNodeMS or jitter
	FlapRejects    int64 // calls rejected by a flapping node
	Crashes        int64 // crash-after-award transitions
}

// chaosState is the live injector: the immutable plan plus mutable
// per-node/per-link sequence counters and fault tallies.
type chaosState struct {
	plan FaultPlan

	mu      sync.Mutex
	nodeSeq map[string]uint64
	crashed map[string]bool

	drops       atomic.Int64
	errors      atomic.Int64
	slowCalls   atomic.Int64
	flapRejects atomic.Int64
	crashes     atomic.Int64
}

// SetFaultPlan installs (or, with nil, removes) the network's chaos plan.
// Counters restart from zero on every install.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		n.chaos.Store(nil)
		return
	}
	cs := &chaosState{plan: *p, nodeSeq: map[string]uint64{}, crashed: map[string]bool{}}
	n.chaos.Store(cs)
}

// FaultPlanActive reports whether a chaos plan is installed.
func (n *Network) FaultPlanActive() bool { return n.chaos.Load() != nil }

// ChaosStats returns the fault tallies of the installed plan (zero when no
// plan is active).
func (n *Network) ChaosStats() ChaosStats {
	cs := n.chaos.Load()
	if cs == nil {
		return ChaosStats{}
	}
	return ChaosStats{
		Drops:          cs.drops.Load(),
		InjectedErrors: cs.errors.Load(),
		SlowCalls:      cs.slowCalls.Load(),
		FlapRejects:    cs.flapRejects.Load(),
		Crashes:        cs.crashes.Load(),
	}
}

// accountLost charges a request that crossed the wire but produced no
// response: one message on the from→to link (a down/crashed receiver or a
// dropped packet still consumed the sender's bandwidth and latency).
func (n *Network) accountLost(from, to string, reqBytes int) {
	n.messages.Add(1)
	n.bytes.Add(int64(reqBytes))
	atomicAddFloat(&n.simTimeMS, n.LatencyMS)
	n.pairAccount(Pair{From: from, To: to}, reqBytes)
}

// chaosBefore runs the injector for one call from→to carrying reqBytes.
// It returns a non-nil error when the call must fail (the request is then
// already charged as appropriate); on nil the call proceeds normally.
func (n *Network) chaosBefore(from, to string, reqBytes int) error {
	cs := n.chaos.Load()
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	if cs.crashed[to] {
		cs.mu.Unlock()
		n.accountLost(from, to, reqBytes)
		// Transient and typed: a crashed seller is gone, but the failure
		// is recoverable at the federation level (an equivalent standing
		// offer or a replan absorbs it), and recovery audit trails want to
		// know it was a crash rather than a generic fetch error.
		return trading.MarkTransient(fmt.Errorf("netsim: node %q crashed: %w", to, trading.ErrPeerCrashed))
	}
	seq := cs.nodeSeq[to]
	cs.nodeSeq[to] = seq + 1
	cs.mu.Unlock()

	// Intermittent flap: the node alternates served/rejected windows.
	if period := cs.plan.FlapPeriod[to]; period > 0 && (seq/uint64(period))%2 == 1 {
		cs.flapRejects.Add(1)
		n.accountLost(from, to, reqBytes)
		return trading.MarkTransient(fmt.Errorf("netsim: node %q flapping", to))
	}

	h := chaosHash(cs.plan.Seed, from, to, seq)

	// Request lost in transit.
	drop := cs.plan.DropProb
	if p, ok := cs.plan.LinkDropProb[Pair{From: from, To: to}]; ok {
		drop = p
	}
	if drop > 0 && unitFloat(splitmix64(h^0xd1b54a32d192ed03)) < drop {
		cs.drops.Add(1)
		n.accountLost(from, to, reqBytes)
		return trading.MarkTransient(fmt.Errorf("netsim: message %s->%s dropped", from, to))
	}

	// Delivery delays: a permanently slow receiver plus uniform jitter.
	delayMS := cs.plan.SlowNodeMS[to]
	if cs.plan.JitterMS > 0 {
		delayMS += cs.plan.JitterMS * unitFloat(splitmix64(h^0x94d049bb133111eb))
	}
	if delayMS > 0 {
		cs.slowCalls.Add(1)
		time.Sleep(time.Duration(delayMS * float64(time.Millisecond)))
	}

	// Error reply: the request arrived, the answer is a failure. Charged as
	// a full exchange with a minimal error response.
	if cs.plan.ErrorProb > 0 && unitFloat(splitmix64(h^0xbf58476d1ce4e5b9)) < cs.plan.ErrorProb {
		cs.errors.Add(1)
		n.account(from, to, reqBytes, 8)
		return trading.MarkTransient(fmt.Errorf("netsim: node %q replied with injected error", to))
	}
	return nil
}

// chaosAfterAward crashes the receiver if the plan marks it crash-after-award.
func (n *Network) chaosAfterAward(to string) {
	cs := n.chaos.Load()
	if cs == nil || !cs.plan.CrashAfterAward[to] {
		return
	}
	cs.mu.Lock()
	if !cs.crashed[to] {
		cs.crashed[to] = true
		cs.crashes.Add(1)
	}
	cs.mu.Unlock()
}

// chaosRuntime returns the live injector, installing an empty plan first if
// none is active, so runtime churn primitives (CrashNode/RestartNode) work
// on an otherwise fault-free network. The install is racy only against a
// concurrent SetFaultPlan, which replaces runtime state by design.
func (n *Network) chaosRuntime() *chaosState {
	cs := n.chaos.Load()
	if cs == nil {
		cs = &chaosState{nodeSeq: map[string]uint64{}, crashed: map[string]bool{}}
		if !n.chaos.CompareAndSwap(nil, cs) {
			cs = n.chaos.Load()
		}
	}
	return cs
}

// CrashNode kills a node immediately: every subsequent call to it fails with
// a transient crashed error until RestartNode. Unlike SetDown this routes
// through the chaos injector, so the failure is typed, tallied and
// indistinguishable from a crash-after-award — the churn primitive
// experiments use to kill a seller mid-negotiation.
func (n *Network) CrashNode(id string) {
	cs := n.chaosRuntime()
	cs.mu.Lock()
	if !cs.crashed[id] {
		cs.crashed[id] = true
		cs.crashes.Add(1)
	}
	cs.mu.Unlock()
}

// RestartNode revives a crashed node: calls reach it again (its service was
// never unregistered — a restart is the same process image coming back).
func (n *Network) RestartNode(id string) {
	cs := n.chaos.Load()
	if cs == nil {
		return
	}
	cs.mu.Lock()
	delete(cs.crashed, id)
	cs.mu.Unlock()
}

// Crashed reports whether a node is currently crashed.
func (n *Network) Crashed(id string) bool {
	cs := n.chaos.Load()
	if cs == nil {
		return false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.crashed[id]
}

// chaosHash mixes the seed, both endpoints and the per-node call sequence
// into one 64-bit value; per-fault decisions re-mix it with distinct salts.
func chaosHash(seed int64, from, to string, seq uint64) uint64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ hashString(from))
	h = splitmix64(h ^ hashString(to))
	return splitmix64(h ^ seq)
}

// hashString is FNV-1a, inlined to keep the hot path allocation-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a 64-bit value to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / float64(uint64(1)<<53)
}
