package netsim

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"qtrade/internal/trading"
)

// run fires count RequestBids from "buyer" to "a" and reports how many
// succeeded.
func run(n *Network, count int) int {
	p := n.Peer("buyer", "a")
	ok := 0
	for i := 0; i < count; i++ {
		if _, err := p.RequestBids(rfb()); err == nil {
			ok++
		}
	}
	return ok
}

func TestChaosDeterministicDrops(t *testing.T) {
	outcomes := func() []bool {
		n := New()
		n.Register("a", &echoService{id: "a"})
		n.SetFaultPlan(&FaultPlan{Seed: 42, DropProb: 0.5})
		p := n.Peer("buyer", "a")
		var out []bool
		for i := 0; i < 40; i++ {
			_, err := p.RequestBids(rfb())
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, same call sequence must make the same decisions (call %d)", i)
		}
	}
	drops := 0
	for _, ok := range a {
		if !ok {
			drops++
		}
	}
	if drops < 8 || drops > 32 {
		t.Fatalf("50%% drop plan dropped %d/40", drops)
	}
}

func TestChaosDropsAreTransientAndCharged(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.SetFaultPlan(&FaultPlan{Seed: 7, DropProb: 1})
	req := rfb()
	_, err := n.Peer("buyer", "a").RequestBids(req)
	if err == nil || !trading.IsTransient(err) {
		t.Fatalf("a dropped message must be a transient error, got %v", err)
	}
	if m, b := n.Stats(); m != 1 || b != int64(req.WireSize()) {
		t.Fatalf("drop accounting: %d msgs %d bytes", m, b)
	}
	if st := n.ChaosStats(); st.Drops != 1 {
		t.Fatalf("chaos stats: %+v", st)
	}
}

func TestChaosInjectedErrors(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.SetFaultPlan(&FaultPlan{Seed: 7, ErrorProb: 1})
	_, err := n.Peer("buyer", "a").RequestBids(rfb())
	if err == nil || !trading.IsTransient(err) {
		t.Fatalf("injected errors must be transient, got %v", err)
	}
	// An error reply is a full round trip: request + minimal response.
	if m, _ := n.Stats(); m != 2 {
		t.Fatalf("error-reply accounting: %d msgs", m)
	}
	if st := n.ChaosStats(); st.InjectedErrors != 1 {
		t.Fatalf("chaos stats: %+v", st)
	}
}

func TestChaosLinkOverrideAndEmptyPlan(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	// Empty plan: no faults, traffic identical to a chaos-free network.
	n.SetFaultPlan(&FaultPlan{Seed: 1})
	if ok := run(n, 10); ok != 10 {
		t.Fatalf("empty plan must not fault: %d/10", ok)
	}
	if m, _ := n.Stats(); m != 20 {
		t.Fatalf("empty plan must not change accounting: %d msgs", m)
	}
	// Per-link override beats the global probability.
	n.SetFaultPlan(&FaultPlan{
		Seed:         1,
		DropProb:     1,
		LinkDropProb: map[Pair]float64{{From: "buyer", To: "a"}: 0},
	})
	if ok := run(n, 10); ok != 10 {
		t.Fatalf("overridden link must not drop: %d/10", ok)
	}
	n.SetFaultPlan(nil)
	if !errorsNil(run(n, 5), 5) {
		t.Fatal("cleared plan must stop injecting")
	}
	if n.FaultPlanActive() {
		t.Fatal("FaultPlanActive after clear")
	}
}

func errorsNil(got, want int) bool { return got == want }

func TestChaosSlowNode(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.SetFaultPlan(&FaultPlan{Seed: 1, SlowNodeMS: map[string]float64{"a": 20}})
	t0 := time.Now()
	if _, err := n.Peer("buyer", "a").RequestBids(rfb()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("slow node must really delay: %v", d)
	}
	if st := n.ChaosStats(); st.SlowCalls != 1 {
		t.Fatalf("chaos stats: %+v", st)
	}
}

func TestChaosFlap(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.SetFaultPlan(&FaultPlan{Seed: 1, FlapPeriod: map[string]int{"a": 3}})
	p := n.Peer("buyer", "a")
	var got []bool
	for i := 0; i < 12; i++ {
		_, err := p.RequestBids(rfb())
		got = append(got, err == nil)
		if err != nil && !trading.IsTransient(err) {
			t.Fatalf("flap rejection must be transient: %v", err)
		}
	}
	want := []bool{true, true, true, false, false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flap window mismatch at call %d: %v", i, got)
		}
	}
	if st := n.ChaosStats(); st.FlapRejects != 6 {
		t.Fatalf("chaos stats: %+v", st)
	}
}

func TestChaosCrashAfterAward(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.SetFaultPlan(&FaultPlan{Seed: 1, CrashAfterAward: map[string]bool{"a": true}})
	if ok := run(n, 2); ok != 2 {
		t.Fatal("node must serve before the award")
	}
	// The award itself succeeds — then the node dies.
	if err := n.Award("buyer", "a", trading.Award{RFBID: "r", OfferID: "o"}); err != nil {
		t.Fatalf("award: %v", err)
	}
	if _, err := n.Peer("buyer", "a").RequestBids(rfb()); err == nil {
		t.Fatal("crashed node must reject")
	} else if !trading.IsTransient(err) {
		// Transient at the federation level: a replica or a replan can
		// absorb the crash even though this node is gone for good.
		t.Fatalf("a crash must be transient (recoverable), got %v", err)
	} else if !errors.Is(err, trading.ErrPeerCrashed) {
		t.Fatalf("crash must be typed ErrPeerCrashed for recovery classification, got %v", err)
	} else if trading.FailureReason(err) != "crash" {
		t.Fatalf("crash must classify as \"crash\", got %q", trading.FailureReason(err))
	}
	if _, err := n.Execute("buyer", "a", trading.ExecReq{SQL: "SELECT 1"}); err == nil {
		t.Fatal("crashed node must fail execution fetches")
	}
	if st := n.ChaosStats(); st.Crashes != 1 {
		t.Fatalf("chaos stats: %+v", st)
	}
}

func TestRuntimeCrashRestart(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	// No fault plan installed: CrashNode must bootstrap the injector.
	n.CrashNode("a")
	if !n.Crashed("a") {
		t.Fatal("node must report crashed")
	}
	if _, err := n.Peer("buyer", "a").RequestBids(rfb()); err == nil {
		t.Fatal("crashed node must reject")
	} else if !errors.Is(err, trading.ErrPeerCrashed) {
		t.Fatalf("want typed crash error, got %v", err)
	}
	if st := n.ChaosStats(); st.Crashes != 1 {
		t.Fatalf("chaos stats: %+v", st)
	}
	n.RestartNode("a")
	if n.Crashed("a") {
		t.Fatal("restarted node must not report crashed")
	}
	if _, err := n.Peer("buyer", "a").RequestBids(rfb()); err != nil {
		t.Fatalf("restarted node must serve again: %v", err)
	}
	// Crashing twice tallies once per actual transition.
	n.CrashNode("a")
	n.CrashNode("a")
	if st := n.ChaosStats(); st.Crashes != 2 {
		t.Fatalf("chaos stats after re-crash: %+v", st)
	}
}

func TestUnregister(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.Register("b", &echoService{id: "b"})
	if got := len(n.Peers("a")); got != 1 {
		t.Fatalf("want 1 peer, got %d", got)
	}
	n.Unregister("b")
	if got := len(n.Peers("a")); got != 0 {
		t.Fatalf("unregistered node still in peer view: %d", got)
	}
	if _, err := n.Peer("a", "b").RequestBids(rfb()); err == nil {
		t.Fatal("calls to an unregistered node must fail")
	}
	// Re-registration under the same id starts reachable even if the node
	// was marked down before it left.
	n.SetDown("b", true)
	n.Unregister("b")
	n.Register("b", &echoService{id: "b"})
	if _, err := n.Peer("a", "b").RequestBids(rfb()); err != nil {
		t.Fatalf("re-registered node must serve: %v", err)
	}
}

func TestRPCCallTimeout(t *testing.T) {
	svc := &slowService{echoService: echoService{id: "slow"}}
	svc.delay.Store(int64(200 * time.Millisecond))
	ln, err := ServeRPC("127.0.0.1:0", "Node", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	peer, err := DialPeerTimeout(ln.Addr().String(), "Node", 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	_, err = peer.RequestBids(rfb())
	if !errors.Is(err, trading.ErrCallTimeout) || !trading.IsTransient(err) {
		t.Fatalf("want transient ErrCallTimeout, got %v", err)
	}
	// A fast call under the same timeout succeeds. The first call's server
	// goroutine may still be sleeping, so the delay must be atomic.
	svc.delay.Store(0)
	if _, err := peer.RequestBids(rfb()); err != nil {
		t.Fatalf("fast call: %v", err)
	}
}

// slowService delays every RequestBids by delay (nanoseconds).
type slowService struct {
	echoService
	delay atomic.Int64
}

func (s *slowService) RequestBids(r trading.RFB) (trading.BidReply, error) {
	time.Sleep(time.Duration(s.delay.Load()))
	return s.echoService.RequestBids(r)
}
