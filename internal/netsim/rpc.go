package netsim

import (
	"math"
	"net"
	"net/rpc"

	"qtrade/internal/trading"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// RPCService adapts a Service to the net/rpc calling convention so a node can
// be served over TCP (see cmd/qtnode). Answers are gob-encoded; value.Value
// has exported fields, so rows ship without custom codecs.
type RPCService struct {
	Svc Service
}

// RequestBids is the net/rpc method for RFBs.
func (r *RPCService) RequestBids(rfb *trading.RFB, reply *[]trading.Offer) error {
	offers, err := r.Svc.RequestBids(*rfb)
	if err != nil {
		return err
	}
	*reply = offers
	return nil
}

// ImproveBids is the net/rpc method for improvement rounds.
func (r *RPCService) ImproveBids(req *trading.ImproveReq, reply *[]trading.Offer) error {
	offers, err := r.Svc.ImproveBids(*req)
	if err != nil {
		return err
	}
	*reply = offers
	return nil
}

// Award is the net/rpc method for award notifications.
func (r *RPCService) Award(aw *trading.Award, reply *bool) error {
	if err := r.Svc.Award(*aw); err != nil {
		return err
	}
	*reply = true
	return nil
}

// Execute is the net/rpc method for purchased-answer delivery.
func (r *RPCService) Execute(req *trading.ExecReq, reply *trading.ExecResp) error {
	resp, err := r.Svc.Execute(*req)
	if err != nil {
		return err
	}
	*reply = resp
	return nil
}

// ServeRPC exposes a node service on a TCP address. It returns the listener
// (close it to stop) and serves connections on background goroutines.
func ServeRPC(addr string, name string, svc Service) (net.Listener, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(name, &RPCService{Svc: svc}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, nil
}

// RPCPeer is a trading.Peer speaking net/rpc to a remote node.
type RPCPeer struct {
	Name   string // registered service name on the remote side
	client *rpc.Client
}

// DialPeer connects to a node served by ServeRPC.
func DialPeer(addr, name string) (*RPCPeer, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RPCPeer{Name: name, client: c}, nil
}

// RequestBids implements trading.Peer.
func (p *RPCPeer) RequestBids(rfb trading.RFB) ([]trading.Offer, error) {
	var reply []trading.Offer
	err := p.client.Call(p.Name+".RequestBids", &rfb, &reply)
	return reply, err
}

// ImproveBids implements trading.Peer.
func (p *RPCPeer) ImproveBids(req trading.ImproveReq) ([]trading.Offer, error) {
	var reply []trading.Offer
	err := p.client.Call(p.Name+".ImproveBids", &req, &reply)
	return reply, err
}

// Award notifies the remote node of a win.
func (p *RPCPeer) Award(aw trading.Award) error {
	var ok bool
	return p.client.Call(p.Name+".Award", &aw, &ok)
}

// Execute fetches a purchased answer.
func (p *RPCPeer) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	var resp trading.ExecResp
	err := p.client.Call(p.Name+".Execute", &req, &resp)
	return resp, err
}

// Close releases the connection.
func (p *RPCPeer) Close() error { return p.client.Close() }
