package netsim

import (
	"fmt"
	"math"
	"net"
	"net/rpc"
	"time"

	"qtrade/internal/trading"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// RPCService adapts a Service to the net/rpc calling convention so a node can
// be served over TCP (see cmd/qtnode). Answers are gob-encoded; value.Value
// has exported fields, so rows ship without custom codecs.
type RPCService struct {
	Svc Service
}

// RequestBids is the net/rpc method for RFBs.
func (r *RPCService) RequestBids(rfb *trading.RFB, reply *trading.BidReply) error {
	rep, err := r.Svc.RequestBids(*rfb)
	if err != nil {
		return err
	}
	*reply = rep
	return nil
}

// ImproveBids is the net/rpc method for improvement rounds.
func (r *RPCService) ImproveBids(req *trading.ImproveReq, reply *trading.BidReply) error {
	rep, err := r.Svc.ImproveBids(*req)
	if err != nil {
		return err
	}
	*reply = rep
	return nil
}

// Award is the net/rpc method for award notifications.
func (r *RPCService) Award(aw *trading.Award, reply *bool) error {
	if err := r.Svc.Award(*aw); err != nil {
		return err
	}
	*reply = true
	return nil
}

// Execute is the net/rpc method for purchased-answer delivery.
func (r *RPCService) Execute(req *trading.ExecReq, reply *trading.ExecResp) error {
	resp, err := r.Svc.Execute(*req)
	if err != nil {
		return err
	}
	*reply = resp
	return nil
}

// ServeRPC exposes a node service on a TCP address. It returns the listener
// (close it to stop) and serves connections on background goroutines.
func ServeRPC(addr string, name string, svc Service) (net.Listener, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(name, &RPCService{Svc: svc}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, nil
}

// RPCPeer is a trading.Peer speaking net/rpc to a remote node.
type RPCPeer struct {
	Name string // registered service name on the remote side
	// CallTimeout, when positive, bounds every call; a call that exceeds it
	// fails with a transient trading.ErrCallTimeout (the in-flight RPC is
	// abandoned, its late reply discarded). Zero keeps calls unbounded — a
	// hung server then hangs the caller, exactly net/rpc's native behaviour.
	CallTimeout time.Duration
	client      *rpc.Client
}

// DialPeer connects to a node served by ServeRPC.
func DialPeer(addr, name string) (*RPCPeer, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RPCPeer{Name: name, client: c}, nil
}

// DialPeerTimeout is DialPeer with a bound on connection establishment; the
// returned peer also applies timeout to every call. An unreachable or
// blackholed server then fails the dial within timeout instead of hanging.
func DialPeerTimeout(addr, name string, timeout time.Duration) (*RPCPeer, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &RPCPeer{Name: name, CallTimeout: timeout, client: rpc.NewClient(conn)}, nil
}

// call performs one RPC under the peer's CallTimeout.
func (p *RPCPeer) call(method string, args, reply any) error {
	if p.CallTimeout <= 0 {
		return p.client.Call(p.Name+"."+method, args, reply)
	}
	c := p.client.Go(p.Name+"."+method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(p.CallTimeout)
	defer t.Stop()
	select {
	case done := <-c.Done:
		return done.Error
	case <-t.C:
		return trading.MarkTransient(fmt.Errorf("netsim: rpc %s.%s: %w", p.Name, method, trading.ErrCallTimeout))
	}
}

// RequestBids implements trading.Peer.
func (p *RPCPeer) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	var reply trading.BidReply
	err := p.call("RequestBids", &rfb, &reply)
	return reply, err
}

// ImproveBids implements trading.Peer.
func (p *RPCPeer) ImproveBids(req trading.ImproveReq) (trading.BidReply, error) {
	var reply trading.BidReply
	err := p.call("ImproveBids", &req, &reply)
	return reply, err
}

// Award notifies the remote node of a win.
func (p *RPCPeer) Award(aw trading.Award) error {
	var ok bool
	return p.call("Award", &aw, &ok)
}

// Execute fetches a purchased answer.
func (p *RPCPeer) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	var resp trading.ExecResp
	err := p.call("Execute", &req, &resp)
	return resp, err
}

// Close releases the connection.
func (p *RPCPeer) Close() error { return p.client.Close() }
