package netsim

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// echoService answers every request with one fixed offer / answer.
type echoService struct {
	id   string
	mu   sync.Mutex
	rfbs int
}

func (e *echoService) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	e.mu.Lock()
	e.rfbs++
	e.mu.Unlock()
	return trading.BidReply{Offers: []trading.Offer{{OfferID: e.id + "/1", RFBID: rfb.RFBID, QID: rfb.Queries[0].QID, SellerID: e.id, SQL: "SELECT 1", Price: 10}}}, nil
}

func (e *echoService) ImproveBids(req trading.ImproveReq) (trading.BidReply, error) {
	return trading.BidReply{}, nil
}

func (e *echoService) Award(trading.Award) error { return nil }

func (e *echoService) Execute(req trading.ExecReq) (trading.ExecResp, error) {
	if strings.Contains(req.SQL, "boom") {
		return trading.ExecResp{}, errors.New("boom")
	}
	return trading.ExecResp{
		Cols: []trading.ColSpec{{Name: "x", Kind: value.Int}},
		Rows: []value.Row{{value.NewInt(7)}},
	}, nil
}

func rfb() trading.RFB {
	return trading.RFB{RFBID: "r1", BuyerID: "buyer", Queries: []trading.QueryRequest{{QID: "q1", SQL: "SELECT 1"}}}
}

func TestRegisterAndPeers(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.Register("b", &echoService{id: "b"})
	n.Register("buyer", &echoService{id: "buyer"})
	if got := n.NodeIDs(); len(got) != 3 || got[0] != "a" {
		t.Fatalf("node ids: %v", got)
	}
	peers := n.Peers("buyer")
	if len(peers) != 2 {
		t.Fatalf("peers exclude self: %v", len(peers))
	}
}

func TestCallCountsMessagesAndBytes(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	p := n.Peer("buyer", "a")
	rep, err := p.RequestBids(rfb())
	if err != nil || len(rep.Offers) != 1 {
		t.Fatalf("bids: %v %v", rep, err)
	}
	msgs, bytes := n.Stats()
	if msgs != 2 {
		t.Fatalf("messages: %d, want 2 (request+response)", msgs)
	}
	if bytes <= 0 {
		t.Fatal("bytes must be counted")
	}
	if n.SimTimeMS() != 2*n.LatencyMS {
		t.Fatalf("sim time: %f", n.SimTimeMS())
	}
	n.Reset()
	if m, b := n.Stats(); m != 0 || b != 0 || n.SimTimeMS() != 0 {
		t.Fatal("reset")
	}
}

func TestUnknownAndDownNodes(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	if _, err := n.Peer("x", "ghost").RequestBids(rfb()); err == nil {
		t.Fatal("unknown node must error")
	}
	n.SetDown("a", true)
	if _, err := n.Peer("x", "a").RequestBids(rfb()); err == nil {
		t.Fatal("down node must error")
	}
	n.SetDown("a", false)
	if _, err := n.Peer("x", "a").RequestBids(rfb()); err != nil {
		t.Fatalf("revived node: %v", err)
	}
	// A call to a down node still cost its request: one message, charged on
	// the x→a link only (nothing came back).
	n.Reset()
	n.SetDown("a", true)
	req := rfb()
	_, _ = n.Peer("x", "a").RequestBids(req)
	if m, b := n.Stats(); m != 1 || b != int64(req.WireSize()) {
		t.Fatalf("down call must charge the lost request: %d msgs %d bytes", m, b)
	}
	by := n.StatsByPair()
	if st := by[Pair{From: "x", To: "a"}]; st.Messages != 1 {
		t.Fatalf("x->a: %+v", st)
	}
	if st := by[Pair{From: "a", To: "x"}]; st.Messages != 0 {
		t.Fatalf("a->x must stay empty: %+v", st)
	}
	// A call to an unknown node costs nothing: there is no route to send on.
	n.Reset()
	_, _ = n.Peer("x", "ghost").RequestBids(rfb())
	if m, _ := n.Stats(); m != 0 {
		t.Fatalf("unknown-node call counted: %d", m)
	}
}

func TestExecuteAndAwardAccounting(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	resp, err := n.Execute("buyer", "a", trading.ExecReq{SQL: "SELECT 1"})
	if err != nil || len(resp.Rows) != 1 {
		t.Fatalf("execute: %v %v", resp, err)
	}
	if err := n.Award("buyer", "a", trading.Award{RFBID: "r", OfferID: "o"}); err != nil {
		t.Fatal(err)
	}
	msgs, _ := n.Stats()
	if msgs != 4 {
		t.Fatalf("messages: %d, want 4", msgs)
	}
	if _, err := n.Execute("buyer", "a", trading.ExecReq{SQL: "boom"}); err == nil {
		t.Fatal("execute error must propagate")
	}
}

func TestImproveBidsAccounting(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	if _, err := n.Peer("b", "a").ImproveBids(trading.ImproveReq{RFBID: "r"}); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := n.Stats(); msgs != 2 {
		t.Fatalf("improve messages: %d", msgs)
	}
}

func TestConcurrentCallsAreSafe(t *testing.T) {
	n := New()
	svc := &echoService{id: "a"}
	n.Register("a", svc)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := n.Peer("x", "a").RequestBids(rfb()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if msgs, _ := n.Stats(); msgs != 100 {
		t.Fatalf("messages: %d", msgs)
	}
	if svc.rfbs != 50 {
		t.Fatalf("service calls: %d", svc.rfbs)
	}
}

func TestRPCLoopback(t *testing.T) {
	svc := &echoService{id: "rpcnode"}
	ln, err := ServeRPC("127.0.0.1:0", "Node", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	peer, err := DialPeer(ln.Addr().String(), "Node")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	rep, err := peer.RequestBids(rfb())
	if err != nil || len(rep.Offers) != 1 || rep.Offers[0].SellerID != "rpcnode" {
		t.Fatalf("rpc bids: %v %v", rep, err)
	}
	if _, err := peer.ImproveBids(trading.ImproveReq{RFBID: "r"}); err != nil {
		t.Fatalf("rpc improve: %v", err)
	}
	if err := peer.Award(trading.Award{RFBID: "r", OfferID: "o"}); err != nil {
		t.Fatalf("rpc award: %v", err)
	}
	resp, err := peer.Execute(trading.ExecReq{SQL: "SELECT 1"})
	if err != nil || len(resp.Rows) != 1 || resp.Rows[0][0].I != 7 {
		t.Fatalf("rpc execute: %v %v", resp, err)
	}
	// Remote errors surface as client errors.
	if _, err := peer.Execute(trading.ExecReq{SQL: "boom"}); err == nil {
		t.Fatal("rpc error must propagate")
	}
}

func TestStatsByPairBreakdown(t *testing.T) {
	n := New()
	n.Register("a", &echoService{id: "a"})
	n.Register("b", &echoService{id: "b"})
	if _, err := n.Peer("buyer", "a").RequestBids(rfb()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Peer("buyer", "b").RequestBids(rfb()); err != nil {
		t.Fatal(err)
	}
	by := n.StatsByPair()
	// The request travels buyer->a, its response a->buyer.
	if st := by[Pair{From: "buyer", To: "a"}]; st.Messages != 1 || st.Bytes <= 0 {
		t.Fatalf("buyer->a: %+v", st)
	}
	if st := by[Pair{From: "a", To: "buyer"}]; st.Messages != 1 || st.Bytes <= 0 {
		t.Fatalf("a->buyer: %+v", st)
	}
	// The breakdown must sum to the aggregate counters.
	var msgs, bytes int64
	for _, st := range by {
		msgs += st.Messages
		bytes += st.Bytes
	}
	if am, ab := n.Stats(); msgs != am || bytes != ab {
		t.Fatalf("pair sums %d/%d != aggregate %d/%d", msgs, bytes, am, ab)
	}
	n.Reset()
	if len(n.StatsByPair()) != 0 {
		t.Fatal("Reset must clear the pair breakdown")
	}
}
