// Package stats implements per-fragment table statistics — row counts,
// per-column NDV, min/max and equi-depth histograms — plus the selectivity
// and join-cardinality estimation used by every cost-based component: the
// sellers' local optimizers, the buyer plan generator, and the centralized
// baseline.
package stats

import (
	"math"
	"sort"
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/value"
)

// DefaultBuckets is the histogram resolution used when building stats from
// data.
const DefaultBuckets = 32

// Histogram is an equi-depth histogram. Bucket i covers (Bounds[i],
// Bounds[i+1]], except bucket 0 which is inclusive on both ends. Counts[i]
// is the number of rows in bucket i.
type Histogram struct {
	Bounds []value.Value
	Counts []int64
}

// BuildHistogram constructs an equi-depth histogram over non-NULL values.
// Returns nil when there are no values or they are not mutually comparable.
func BuildHistogram(vals []value.Value, buckets int) *Histogram {
	var clean []value.Value
	for _, v := range vals {
		if !v.IsNull() {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 || buckets < 1 {
		return nil
	}
	sort.SliceStable(clean, func(i, j int) bool {
		c, _ := value.Compare(clean[i], clean[j])
		return c < 0
	})
	if buckets > len(clean) {
		buckets = len(clean)
	}
	h := &Histogram{}
	per := len(clean) / buckets
	extra := len(clean) % buckets
	h.Bounds = append(h.Bounds, clean[0])
	idx := 0
	for b := 0; b < buckets; b++ {
		n := per
		if b < extra {
			n++
		}
		if n == 0 {
			continue
		}
		idx += n
		h.Bounds = append(h.Bounds, clean[idx-1])
		h.Counts = append(h.Counts, int64(n))
	}
	return h
}

// Total returns the number of rows summarized by the histogram.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// FracInRange estimates the fraction of summarized rows admitted by r,
// assuming uniformity within buckets.
func (h *Histogram) FracInRange(r *expr.Range) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var in float64
	for b := range h.Counts {
		lo, hi := h.Bounds[b], h.Bounds[b+1]
		f := bucketOverlap(lo, hi, r)
		in += f * float64(h.Counts[b])
	}
	frac := in / float64(total)
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// bucketOverlap estimates what fraction of a bucket [lo,hi] satisfies r.
func bucketOverlap(lo, hi value.Value, r *expr.Range) float64 {
	if r.Empty {
		return 0
	}
	if r.Set != nil {
		// Finite set: count members inside the bucket, assume each hits a
		// distinct-value sliver. Without per-bucket NDV, approximate each
		// member as covering a small constant fraction of the bucket.
		n := 0
		for _, v := range r.Set {
			if ge(v, lo) && le(v, hi) {
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return math.Min(1, float64(n)*0.1)
	}
	// Interval form: numeric buckets interpolate, others all-or-nothing.
	inLo, inHi := true, true
	if r.HasLo {
		if lt(hi, r.Lo) {
			return 0
		}
		inLo = ge(lo, r.Lo)
	}
	if r.HasHi {
		if gt(lo, r.Hi) {
			return 0
		}
		inHi = le(hi, r.Hi)
	}
	if inLo && inHi {
		return 1
	}
	if numeric(lo) && numeric(hi) {
		span := hi.AsFloat() - lo.AsFloat()
		if span <= 0 {
			return 0.5
		}
		a, b := lo.AsFloat(), hi.AsFloat()
		if r.HasLo && numeric(r.Lo) && r.Lo.AsFloat() > a {
			a = r.Lo.AsFloat()
		}
		if r.HasHi && numeric(r.Hi) && r.Hi.AsFloat() < b {
			b = r.Hi.AsFloat()
		}
		if b < a {
			return 0
		}
		if b == a {
			// The intersection degenerates to one point (e.g. a range
			// starting exactly at the bucket's upper bound). Credit the same
			// distinct-value sliver the finite-set path gives one member, so
			// widening a range past a bucket edge never shrinks the estimate.
			return 0.1
		}
		return (b - a) / span
	}
	return 0.5
}

func numeric(v value.Value) bool { return v.K == value.Int || v.K == value.Float }

func ge(a, b value.Value) bool { c, ok := value.Compare(a, b); return ok && c >= 0 }
func le(a, b value.Value) bool { c, ok := value.Compare(a, b); return ok && c <= 0 }
func lt(a, b value.Value) bool { c, ok := value.Compare(a, b); return ok && c < 0 }
func gt(a, b value.Value) bool { c, ok := value.Compare(a, b); return ok && c > 0 }

// ColumnStats summarizes one column.
type ColumnStats struct {
	NDV      int64
	NullFrac float64
	Min, Max value.Value
	Hist     *Histogram
}

// TableStats summarizes one table fragment.
type TableStats struct {
	Rows     int64
	RowBytes float64
	Cols     map[string]*ColumnStats // lower-cased column name
}

// Col returns stats for a column (case-insensitive), or nil.
func (t *TableStats) Col(name string) *ColumnStats {
	if t == nil || t.Cols == nil {
		return nil
	}
	return t.Cols[strings.ToLower(name)]
}

// Clone returns a shallow-histogram copy with independent maps.
func (t *TableStats) Clone() *TableStats {
	out := &TableStats{Rows: t.Rows, RowBytes: t.RowBytes, Cols: map[string]*ColumnStats{}}
	for k, v := range t.Cols {
		c := *v
		out.Cols[k] = &c
	}
	return out
}

// Scale returns stats for a filtered version of the table with selectivity f:
// rows and NDVs shrink, bounds stay.
func (t *TableStats) Scale(f float64) *TableStats {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	out := t.Clone()
	out.Rows = int64(math.Ceil(float64(t.Rows) * f))
	for _, c := range out.Cols {
		// Cardinality of distinct values under uniform sampling.
		c.NDV = int64(math.Ceil(float64(c.NDV) * (1 - math.Pow(1-f, 2))))
		if c.NDV < 1 && out.Rows > 0 {
			c.NDV = 1
		}
		if c.NDV > out.Rows {
			c.NDV = out.Rows
		}
	}
	return out
}

// FromRows computes statistics from the actual rows of a fragment.
func FromRows(def *catalog.TableDef, rows []value.Row) *TableStats {
	ts := &TableStats{Rows: int64(len(rows)), Cols: map[string]*ColumnStats{}}
	var bytes float64
	for ci, cd := range def.Columns {
		cs := &ColumnStats{}
		distinct := map[string]bool{}
		var vals []value.Value
		nulls := 0
		for _, r := range rows {
			v := r[ci]
			if v.IsNull() {
				nulls++
				continue
			}
			vals = append(vals, v)
			distinct[value.Key(value.Row{v}, []int{0})] = true
			if cs.Min.IsNull() || lt(v, cs.Min) {
				cs.Min = v
			}
			if cs.Max.IsNull() || gt(v, cs.Max) {
				cs.Max = v
			}
			switch v.K {
			case value.Str:
				bytes += float64(len(v.S)) + 4
			default:
				bytes += 8
			}
		}
		cs.NDV = int64(len(distinct))
		if len(rows) > 0 {
			cs.NullFrac = float64(nulls) / float64(len(rows))
		}
		cs.Hist = BuildHistogram(vals, DefaultBuckets)
		ts.Cols[strings.ToLower(cd.Name)] = cs
	}
	if len(rows) > 0 {
		ts.RowBytes = bytes / float64(len(rows))
	} else {
		ts.RowBytes = float64(8 * len(def.Columns))
	}
	return ts
}

// Synthetic builds statistics without data, for declarative workload setup:
// each column gets the given NDV and a uniform numeric range.
func Synthetic(def *catalog.TableDef, rows int64, ndv int64) *TableStats {
	ts := &TableStats{Rows: rows, RowBytes: float64(12 * len(def.Columns)), Cols: map[string]*ColumnStats{}}
	for _, cd := range def.Columns {
		n := ndv
		if n > rows {
			n = rows
		}
		ts.Cols[strings.ToLower(cd.Name)] = &ColumnStats{
			NDV: n,
			Min: value.NewInt(0),
			Max: value.NewInt(n),
		}
	}
	return ts
}

// Merge combines stats of two fragments of the same table (union of rows).
func Merge(a, b *TableStats) *TableStats {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &TableStats{Rows: a.Rows + b.Rows, Cols: map[string]*ColumnStats{}}
	if out.Rows > 0 {
		out.RowBytes = (a.RowBytes*float64(a.Rows) + b.RowBytes*float64(b.Rows)) / float64(out.Rows)
	}
	for k, ca := range a.Cols {
		cb := b.Cols[k]
		if cb == nil {
			out.Cols[k] = ca
			continue
		}
		m := &ColumnStats{NDV: maxI(ca.NDV, cb.NDV)}
		// Disjoint fragments can double NDV; split the difference.
		m.NDV = (m.NDV + ca.NDV + cb.NDV) / 2
		if m.NDV > out.Rows {
			m.NDV = out.Rows
		}
		m.Min, m.Max = ca.Min, ca.Max
		if !cb.Min.IsNull() && (m.Min.IsNull() || lt(cb.Min, m.Min)) {
			m.Min = cb.Min
		}
		if !cb.Max.IsNull() && (m.Max.IsNull() || gt(cb.Max, m.Max)) {
			m.Max = cb.Max
		}
		if out.Rows > 0 {
			m.NullFrac = (ca.NullFrac*float64(a.Rows) + cb.NullFrac*float64(b.Rows)) / float64(out.Rows)
		}
		out.Cols[k] = m
	}
	for k, cb := range b.Cols {
		if _, ok := out.Cols[k]; !ok {
			out.Cols[k] = cb
		}
	}
	return out
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Default selectivities for predicates the range analyzer cannot express,
// following the classic System R constants.
const (
	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3.0
	defaultOtherSel = 0.25
)

// Selectivity estimates the fraction of rows of a single table satisfying
// pred. Column references are matched by column name only (the stats carry no
// alias), so pred must reference a single table.
func Selectivity(ts *TableStats, pred expr.Expr) float64 {
	if pred == nil {
		return 1
	}
	if b, ok := pred.(*expr.Binary); ok && b.Op == "OR" {
		l := Selectivity(ts, b.L)
		r := Selectivity(ts, b.R)
		s := l + r - l*r
		if s > 1 {
			return 1
		}
		return s
	}
	if expr.IsFalse(pred) {
		return 0
	}
	if expr.IsTrue(pred) {
		return 1
	}
	ranges, residual := expr.AnalyzeConjuncts(expr.Conjuncts(pred))
	sel := 1.0
	for colKey, r := range ranges {
		name := colKey[strings.LastIndex(colKey, ".")+1:]
		sel *= rangeSelectivity(ts.Col(name), r, ts.Rows)
	}
	for _, e := range residual {
		sel *= residualSelectivity(e)
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func residualSelectivity(e expr.Expr) float64 {
	switch t := e.(type) {
	case *expr.Binary:
		switch t.Op {
		case "=":
			return defaultEqSel
		case "<", "<=", ">", ">=":
			return defaultRangeSel
		case "<>":
			return 1 - defaultEqSel
		}
	case *expr.IsNull:
		if t.Not {
			return 0.95
		}
		return 0.05
	}
	return defaultOtherSel
}

func rangeSelectivity(cs *ColumnStats, r *expr.Range, rows int64) float64 {
	if r.Empty {
		return 0
	}
	if cs == nil {
		if r.Set != nil {
			return math.Min(1, defaultEqSel*float64(len(r.Set)))
		}
		return defaultRangeSel
	}
	if r.Set != nil {
		if cs.NDV <= 0 {
			return math.Min(1, defaultEqSel*float64(len(r.Set)))
		}
		inDomain := 0
		for _, v := range r.Set {
			if (cs.Min.IsNull() || ge(v, cs.Min)) && (cs.Max.IsNull() || le(v, cs.Max)) {
				inDomain++
			}
		}
		return math.Min(1, float64(inDomain)/float64(cs.NDV))
	}
	if len(r.NotIn) > 0 && !r.HasLo && !r.HasHi {
		if cs.NDV <= 0 {
			return 1 - defaultEqSel
		}
		s := 1 - float64(len(r.NotIn))/float64(cs.NDV)
		if s < 0 {
			return 0
		}
		return s
	}
	if cs.Hist != nil {
		return cs.Hist.FracInRange(r)
	}
	// Interpolate against min/max when numeric.
	if !cs.Min.IsNull() && !cs.Max.IsNull() && numeric(cs.Min) && numeric(cs.Max) {
		span := cs.Max.AsFloat() - cs.Min.AsFloat()
		if span <= 0 {
			if r.Admits(cs.Min) {
				return 1
			}
			return 0
		}
		lo, hi := cs.Min.AsFloat(), cs.Max.AsFloat()
		if r.HasLo && numeric(r.Lo) && r.Lo.AsFloat() > lo {
			lo = r.Lo.AsFloat()
		}
		if r.HasHi && numeric(r.Hi) && r.Hi.AsFloat() < hi {
			hi = r.Hi.AsFloat()
		}
		if hi <= lo {
			return 0
		}
		return (hi - lo) / span
	}
	return defaultRangeSel
}

// JoinRows estimates |L ⋈ R| on an equality predicate between columns with
// the given NDVs, using the standard containment assumption.
func JoinRows(lRows, lNDV, rRows, rNDV int64) int64 {
	d := maxI(maxI(lNDV, rNDV), 1)
	est := float64(lRows) * float64(rRows) / float64(d)
	if est < 0 {
		return 0
	}
	return int64(math.Ceil(est))
}
