package stats

import (
	"math/rand"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/value"
)

func tableDef() *catalog.TableDef {
	return &catalog.TableDef{Name: "t", Columns: []catalog.ColumnDef{
		{Name: "id", Kind: value.Int},
		{Name: "grp", Kind: value.Str},
		{Name: "amt", Kind: value.Float},
	}}
}

func uniformRows(n int) []value.Row {
	r := rand.New(rand.NewSource(1))
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{
			value.NewInt(int64(i)),
			value.NewStr(string(rune('a' + i%4))),
			value.NewFloat(float64(r.Intn(100))),
		}
	}
	return rows
}

func TestFromRowsBasics(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(1000))
	if ts.Rows != 1000 {
		t.Fatalf("rows: %d", ts.Rows)
	}
	id := ts.Col("ID")
	if id == nil || id.NDV != 1000 || id.Min.I != 0 || id.Max.I != 999 {
		t.Fatalf("id stats: %+v", id)
	}
	grp := ts.Col("grp")
	if grp.NDV != 4 {
		t.Fatalf("grp ndv: %d", grp.NDV)
	}
	if ts.RowBytes <= 0 {
		t.Fatal("row bytes must be positive")
	}
}

func TestFromRowsNulls(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1), value.NewNull(), value.NewFloat(1)},
		{value.NewInt(2), value.NewStr("x"), value.NewFloat(2)},
	}
	ts := FromRows(tableDef(), rows)
	if got := ts.Col("grp").NullFrac; got != 0.5 {
		t.Fatalf("null frac: %f", got)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	ts := FromRows(tableDef(), nil)
	if ts.Rows != 0 || ts.RowBytes <= 0 {
		t.Fatalf("empty stats: %+v", ts)
	}
	if Selectivity(ts, sqlparse.MustParseExpr("id = 5")) < 0 {
		t.Fatal("selectivity must not be negative")
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 100; i++ {
		vals = append(vals, value.NewInt(int64(i)))
	}
	h := BuildHistogram(vals, 10)
	if h == nil || len(h.Counts) != 10 {
		t.Fatalf("histogram: %+v", h)
	}
	if h.Total() != 100 {
		t.Fatalf("total: %d", h.Total())
	}
	for _, c := range h.Counts {
		if c != 10 {
			t.Fatalf("equi-depth violated: %v", h.Counts)
		}
	}
}

func TestHistogramNilCases(t *testing.T) {
	if BuildHistogram(nil, 10) != nil {
		t.Fatal("empty values must yield nil histogram")
	}
	if BuildHistogram([]value.Value{value.NewNull()}, 10) != nil {
		t.Fatal("all-null must yield nil histogram")
	}
	h := BuildHistogram([]value.Value{value.NewInt(1), value.NewInt(2)}, 100)
	if h == nil || h.Total() != 2 {
		t.Fatal("buckets clamp to value count")
	}
}

func selOf(t *testing.T, ts *TableStats, pred string) float64 {
	t.Helper()
	return Selectivity(ts, sqlparse.MustParseExpr(pred))
}

func TestSelectivityEquality(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(1000))
	s := selOf(t, ts, "grp = 'a'")
	if s < 0.2 || s > 0.3 {
		t.Fatalf("grp='a' sel = %f, want ~0.25", s)
	}
	s = selOf(t, ts, "id = 5")
	if s <= 0 || s > 0.01 {
		t.Fatalf("id=5 sel = %f, want ~0.001", s)
	}
}

func TestSelectivityRange(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(1000))
	s := selOf(t, ts, "id < 500")
	if s < 0.4 || s > 0.6 {
		t.Fatalf("id<500 sel = %f, want ~0.5", s)
	}
	s = selOf(t, ts, "id >= 900")
	if s < 0.05 || s > 0.15 {
		t.Fatalf("id>=900 sel = %f, want ~0.1", s)
	}
	s = selOf(t, ts, "id BETWEEN 100 AND 199")
	if s < 0.05 || s > 0.15 {
		t.Fatalf("between sel = %f, want ~0.1", s)
	}
}

func TestSelectivityConjunctionAndOr(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(1000))
	and := selOf(t, ts, "grp = 'a' AND id < 500")
	if and < 0.08 || and > 0.18 {
		t.Fatalf("AND sel = %f, want ~0.125", and)
	}
	or := selOf(t, ts, "grp = 'a' OR grp = 'b'")
	if or < 0.4 || or > 0.6 {
		t.Fatalf("OR sel = %f, want ~0.44-0.5", or)
	}
}

func TestSelectivityInAndNotEq(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(1000))
	s := selOf(t, ts, "grp IN ('a', 'b')")
	if s < 0.4 || s > 0.6 {
		t.Fatalf("IN sel = %f", s)
	}
	s = selOf(t, ts, "grp <> 'a'")
	if s < 0.6 || s > 0.9 {
		t.Fatalf("<> sel = %f", s)
	}
	// Out-of-domain equality should estimate ~0.
	s = selOf(t, ts, "grp = 'zzz'")
	if s > 0.01 {
		t.Fatalf("out-of-domain sel = %f", s)
	}
}

func TestSelectivityFalseTrueNil(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(10))
	if Selectivity(ts, nil) != 1 {
		t.Fatal("nil pred sel must be 1")
	}
	if Selectivity(ts, expr.FalseExpr()) != 0 {
		t.Fatal("FALSE sel must be 0")
	}
	if Selectivity(ts, expr.TrueExpr()) != 1 {
		t.Fatal("TRUE sel must be 1")
	}
}

func TestSelectivityResidual(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(100))
	// Join-ish predicate falls back to default equality selectivity.
	s := Selectivity(ts, sqlparse.MustParseExpr("id = amt"))
	if s != defaultEqSel {
		t.Fatalf("residual eq sel = %f", s)
	}
	s = Selectivity(ts, sqlparse.MustParseExpr("id IS NULL"))
	if s != 0.05 {
		t.Fatalf("IS NULL sel = %f", s)
	}
	s = Selectivity(ts, sqlparse.MustParseExpr("id IS NOT NULL"))
	if s != 0.95 {
		t.Fatalf("IS NOT NULL sel = %f", s)
	}
}

func TestScale(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(1000))
	half := ts.Scale(0.5)
	if half.Rows != 500 {
		t.Fatalf("scaled rows: %d", half.Rows)
	}
	if half.Col("id").NDV > ts.Col("id").NDV || half.Col("id").NDV <= 0 {
		t.Fatalf("scaled ndv: %d", half.Col("id").NDV)
	}
	if ts.Rows != 1000 {
		t.Fatal("Scale must not mutate the source")
	}
	zero := ts.Scale(-1)
	if zero.Rows != 0 {
		t.Fatal("negative clamps to 0")
	}
	full := ts.Scale(2)
	if full.Rows != 1000 {
		t.Fatal(">1 clamps to 1")
	}
}

func TestMerge(t *testing.T) {
	a := FromRows(tableDef(), uniformRows(100))
	b := FromRows(tableDef(), uniformRows(50))
	m := Merge(a, b)
	if m.Rows != 150 {
		t.Fatalf("merged rows: %d", m.Rows)
	}
	if m.Col("id").Min.I != 0 || m.Col("id").Max.I != 99 {
		t.Fatalf("merged bounds: %+v", m.Col("id"))
	}
	if Merge(nil, a) != a || Merge(a, nil) != a {
		t.Fatal("nil merge identity")
	}
}

func TestSynthetic(t *testing.T) {
	ts := Synthetic(tableDef(), 1000, 50)
	if ts.Rows != 1000 || ts.Col("id").NDV != 50 {
		t.Fatalf("synthetic: %+v", ts)
	}
	ts2 := Synthetic(tableDef(), 10, 50)
	if ts2.Col("id").NDV != 10 {
		t.Fatal("NDV must clamp to rows")
	}
}

func TestJoinRows(t *testing.T) {
	if got := JoinRows(1000, 100, 500, 50); got != 5000 {
		t.Fatalf("join rows: %d, want 5000", got)
	}
	if got := JoinRows(10, 0, 10, 0); got != 100 {
		t.Fatalf("zero ndv guards: %d", got)
	}
}

// Property: selectivity estimates stay within [0,1] for random predicates.
func TestQuickSelectivityBounds(t *testing.T) {
	ts := FromRows(tableDef(), uniformRows(500))
	r := rand.New(rand.NewSource(3))
	preds := []string{
		"id = %d", "id < %d", "id > %d", "id BETWEEN %d AND 400",
		"grp = 'a' AND id < %d", "grp IN ('a','b') OR id = %d", "id <> %d",
	}
	for i := 0; i < 300; i++ {
		p := preds[r.Intn(len(preds))]
		q := sqlparse.MustParseExpr(sprintf(p, r.Intn(600)))
		s := Selectivity(ts, q)
		if s < 0 || s > 1 {
			t.Fatalf("selectivity out of bounds: %s -> %f", q, s)
		}
	}
}

func sprintf(format string, a int) string {
	out := ""
	for i := 0; i < len(format); i++ {
		if format[i] == '%' && i+1 < len(format) && format[i+1] == 'd' {
			out += itoa(a)
			i++
			continue
		}
		out += string(format[i])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// Property: histogram range estimates roughly track true fractions on
// uniform integer data.
func TestQuickHistogramAccuracy(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 10000; i++ {
		vals = append(vals, value.NewInt(int64(i%1000)))
	}
	h := BuildHistogram(vals, 32)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		lo := int64(r.Intn(900))
		hi := lo + int64(r.Intn(int(1000-lo)))
		rng := expr.IntervalRange(true, value.NewInt(lo), true, true, value.NewInt(hi), true)
		got := h.FracInRange(rng)
		want := float64(hi-lo+1) / 1000
		if diff := got - want; diff < -0.1 || diff > 0.1 {
			t.Fatalf("range [%d,%d]: got %f want %f", lo, hi, got, want)
		}
	}
}
