package stats

import (
	"testing"
	"testing/quick"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/value"
)

func TestMergeDisjointColumns(t *testing.T) {
	a := &TableStats{Rows: 10, Cols: map[string]*ColumnStats{
		"x": {NDV: 5, Min: value.NewInt(0), Max: value.NewInt(9)},
	}}
	b := &TableStats{Rows: 20, Cols: map[string]*ColumnStats{
		"y": {NDV: 3, Min: value.NewInt(100), Max: value.NewInt(200)},
	}}
	m := Merge(a, b)
	if m.Rows != 30 || m.Col("x") == nil || m.Col("y") == nil {
		t.Fatalf("merge: %+v", m)
	}
}

func TestMergeBoundsWiden(t *testing.T) {
	a := &TableStats{Rows: 10, Cols: map[string]*ColumnStats{
		"x": {NDV: 5, Min: value.NewInt(5), Max: value.NewInt(9)},
	}}
	b := &TableStats{Rows: 10, Cols: map[string]*ColumnStats{
		"x": {NDV: 5, Min: value.NewInt(0), Max: value.NewInt(20)},
	}}
	m := Merge(a, b)
	cs := m.Col("x")
	if cs.Min.I != 0 || cs.Max.I != 20 {
		t.Fatalf("bounds: %+v", cs)
	}
	if cs.NDV > m.Rows || cs.NDV < 5 {
		t.Fatalf("merged ndv: %d", cs.NDV)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := &TableStats{Rows: 10, RowBytes: 8, Cols: map[string]*ColumnStats{
		"x": {NDV: 5},
	}}
	c := a.Clone()
	c.Cols["x"].NDV = 99
	if a.Cols["x"].NDV != 5 {
		t.Fatal("Clone must not alias column stats")
	}
}

func TestColNilSafety(t *testing.T) {
	var ts *TableStats
	if ts.Col("x") != nil {
		t.Fatal("nil stats Col must be nil")
	}
	empty := &TableStats{}
	if empty.Col("x") != nil {
		t.Fatal("empty stats Col must be nil")
	}
}

// Property: Scale keeps rows within [0, original] and NDV within [1, rows]
// for non-empty tables.
func TestQuickScaleInvariants(t *testing.T) {
	def := &catalog.TableDef{Name: "t", Columns: []catalog.ColumnDef{{Name: "x", Kind: value.Int}}}
	base := Synthetic(def, 1000, 100)
	f := func(numer uint8) bool {
		frac := float64(numer) / 255
		s := base.Scale(frac)
		if s.Rows < 0 || s.Rows > base.Rows {
			return false
		}
		cs := s.Col("x")
		if s.Rows > 0 && (cs.NDV < 1 || cs.NDV > s.Rows) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram FracInRange is monotone in the range width.
func TestQuickHistogramMonotone(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, value.NewInt(int64(i%100)))
	}
	h := BuildHistogram(vals, 16)
	f := func(a, b uint8) bool {
		lo := int64(a % 100)
		hi1 := lo + int64(b%20)
		hi2 := hi1 + 10
		r1 := intervalOf(lo, hi1)
		r2 := intervalOf(lo, hi2)
		return h.FracInRange(r1) <= h.FracInRange(r2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func intervalOf(lo, hi int64) *expr.Range {
	return expr.IntervalRange(true, value.NewInt(lo), true, true, value.NewInt(hi), true)
}
