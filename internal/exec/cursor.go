package exec

import (
	"fmt"
	"time"

	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/value"
)

// DefaultBatchSize is the row-batch granularity cursors pull at when the
// executor does not set one. Large enough to amortize per-batch dispatch,
// small enough that a pipeline holds only a few KB per operator.
const DefaultBatchSize = 256

// Cursor is a pulled row-batch iterator over one plan subtree: the Volcano
// model at batch rather than row granularity. Open prepares the operator
// (binding expressions, building hash tables, opening remote fetches); Next
// returns the next batch, where a nil or empty batch means exhausted; Close
// releases resources. A batch is valid only until the following Next call —
// consumers that retain rows across calls must copy the slice (the row
// values themselves are never reused). Close is idempotent, safe to call
// before exhaustion (early close releases upstream work, e.g. seller-side
// cursors), and safe on a cursor whose Open failed or never ran.
type Cursor interface {
	Open() error
	Next() ([]value.Row, error)
	Close() error
}

// RowStream is one streamed remote answer. Cols is the seller's declared
// output spec, known at open even when no rows exist; Next returns row
// batches until a nil or empty batch signals exhaustion. Close releases the
// seller-side cursor and must be idempotent and safe to call early.
type RowStream interface {
	Cols() []expr.ColumnID
	Next() ([]value.Row, error)
	Close() error
}

// StreamFunc opens a chunked fetch against the named seller, the streaming
// counterpart of FetchFunc. When an Executor has one, Remote nodes pull the
// purchased answer batch by batch instead of materializing it in one
// ExecResp.
type StreamFunc func(nodeID, sql, offerID string) (RowStream, error)

// batch returns the effective batch size.
func (ex *Executor) batch() int {
	if ex.BatchSize > 0 {
		return ex.BatchSize
	}
	return DefaultBatchSize
}

// Open builds and opens a cursor over the plan. The caller owns the cursor:
// Close must be called (even after a Next error), and closing before
// exhaustion releases upstream resources — scans stop, remote fetches send
// their cursor-close — without draining the remaining rows.
func (ex *Executor) Open(n plan.Node) (Cursor, error) {
	c, err := ex.build(n)
	if err != nil {
		return nil, err
	}
	if err := c.Open(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// build constructs the (unopened) cursor tree for a plan, wrapping every
// operator in a stats recorder when Stats is attached.
func (ex *Executor) build(n plan.Node) (Cursor, error) {
	var c Cursor
	switch t := n.(type) {
	case *plan.Scan:
		c = &scanCursor{ex: ex, t: t}
	case *plan.ViewScan:
		c = &viewScanCursor{ex: ex, t: t}
	case *plan.Filter:
		in, err := ex.build(t.Input)
		if err != nil {
			return nil, err
		}
		c = &filterCursor{ex: ex, t: t, in: in}
	case *plan.Project:
		in, err := ex.build(t.Input)
		if err != nil {
			return nil, err
		}
		c = &projectCursor{ex: ex, t: t, in: in}
	case *plan.Join:
		l, err := ex.build(t.L)
		if err != nil {
			return nil, err
		}
		r, err := ex.build(t.R)
		if err != nil {
			return nil, err
		}
		c = &joinCursor{ex: ex, t: t, l: l, r: r}
	case *plan.Aggregate:
		in, err := ex.build(t.Input)
		if err != nil {
			return nil, err
		}
		c = &blockingCursor{ex: ex, in: in, compute: func(rows []value.Row) ([]value.Row, error) {
			return aggregateRows(t, rows)
		}}
	case *plan.Sort:
		in, err := ex.build(t.Input)
		if err != nil {
			return nil, err
		}
		c = &blockingCursor{ex: ex, in: in, compute: func(rows []value.Row) ([]value.Row, error) {
			return sortRows(t, rows)
		}}
	case *plan.Limit:
		in, err := ex.build(t.Input)
		if err != nil {
			return nil, err
		}
		c = &limitCursor{t: t, in: in}
	case *plan.Distinct:
		in, err := ex.build(t.Input)
		if err != nil {
			return nil, err
		}
		c = &distinctCursor{ex: ex, in: in}
	case *plan.Union:
		inputs := make([]Cursor, len(t.Inputs))
		for i, child := range t.Inputs {
			cc, err := ex.build(child)
			if err != nil {
				return nil, err
			}
			inputs[i] = cc
		}
		c = &unionCursor{t: t, inputs: inputs}
	case *plan.Remote:
		c = &remoteCursor{ex: ex, t: t}
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
	if ex.Stats != nil {
		c = &statsCursor{inner: c, stats: ex.Stats, node: n}
	}
	return c, nil
}

// drain pulls a cursor to exhaustion, materializing its rows, and closes it.
// Blocking operators (sort, aggregate, join build side) use it on their
// inputs.
func drain(c Cursor) ([]value.Row, error) {
	var rows []value.Row
	for {
		b, err := c.Next()
		if err != nil {
			c.Close()
			return nil, err
		}
		if len(b) == 0 {
			break
		}
		rows = append(rows, b...)
	}
	return rows, c.Close()
}

// scanCursor pulls one bounded batch per Next from a stored fragment,
// resuming at a raw row offset: the scan callback finally returns false at
// batch boundaries, so a LIMIT (or an abandoned stream) stops the scan
// instead of filtering a fully built slice.
type scanCursor struct {
	ex     *Executor
	t      *plan.Scan
	pred   expr.Expr
	pos    int
	out    []value.Row
	done   bool
	closed bool
}

func (c *scanCursor) Open() error {
	if c.ex.Store == nil {
		return fmt.Errorf("exec: no local store for scan of %s", c.t.Def.Name)
	}
	pred, err := bindClone(c.t.Pred, c.t.Schema())
	if err != nil {
		return err
	}
	c.pred = pred
	return nil
}

func (c *scanCursor) Next() ([]value.Row, error) {
	if c.done || c.closed {
		return nil, nil
	}
	limit := c.ex.batch()
	c.out = c.out[:0]
	next, err := c.ex.Store.ScanFrom(c.t.Def.Name, c.t.PartID, c.pred, c.pos, func(r value.Row) bool {
		c.out = append(c.out, r)
		return len(c.out) < limit
	})
	if err != nil {
		return nil, err
	}
	c.pos = next
	if len(c.out) < limit {
		c.done = true
	}
	return c.out, nil
}

func (c *scanCursor) Close() error {
	c.closed = true
	return nil
}

// viewScanCursor iterates a materialized view snapshot batch by batch.
type viewScanCursor struct {
	ex     *Executor
	t      *plan.ViewScan
	rows   []value.Row
	pred   expr.Expr
	pos    int
	out    []value.Row
	closed bool
}

func (c *viewScanCursor) Open() error {
	if c.ex.Store == nil {
		return fmt.Errorf("exec: no local store for view %s", c.t.Name)
	}
	v := c.ex.Store.View(c.t.Name)
	if v == nil {
		return fmt.Errorf("exec: unknown view %s", c.t.Name)
	}
	pred, err := bindClone(c.t.Pred, c.t.Schema())
	if err != nil {
		return err
	}
	c.rows, c.pred = v.Rows, pred
	return nil
}

func (c *viewScanCursor) Next() ([]value.Row, error) {
	if c.closed {
		return nil, nil
	}
	limit := c.ex.batch()
	c.out = c.out[:0]
	for c.pos < len(c.rows) && len(c.out) < limit {
		r := c.rows[c.pos]
		c.pos++
		if c.pred != nil {
			ok, err := expr.EvalBool(c.pred, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		c.out = append(c.out, r)
	}
	return c.out, nil
}

func (c *viewScanCursor) Close() error {
	c.closed = true
	return nil
}

// filterCursor streams its input through the bound predicate.
type filterCursor struct {
	ex     *Executor
	t      *plan.Filter
	in     Cursor
	pred   expr.Expr
	buf    []value.Row
	idx    int
	out    []value.Row
	done   bool
	closed bool
}

func (c *filterCursor) Open() error {
	pred, err := bindClone(c.t.Pred, c.t.Input.Schema())
	if err != nil {
		return err
	}
	c.pred = pred
	return c.in.Open()
}

func (c *filterCursor) Next() ([]value.Row, error) {
	if c.done || c.closed {
		return nil, nil
	}
	limit := c.ex.batch()
	c.out = c.out[:0]
	for len(c.out) < limit {
		if c.idx >= len(c.buf) {
			b, err := c.in.Next()
			if err != nil {
				return nil, err
			}
			if len(b) == 0 {
				c.done = true
				break
			}
			c.buf, c.idx = b, 0
			continue
		}
		r := c.buf[c.idx]
		c.idx++
		ok, err := expr.EvalBool(c.pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			c.out = append(c.out, r)
		}
	}
	return c.out, nil
}

func (c *filterCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.in.Close()
}

// projectCursor evaluates the projection row by row as batches flow through.
type projectCursor struct {
	ex     *Executor
	t      *plan.Project
	in     Cursor
	bound  []expr.Expr
	out    []value.Row
	closed bool
}

func (c *projectCursor) Open() error {
	c.bound = make([]expr.Expr, len(c.t.Exprs))
	for i, e := range c.t.Exprs {
		b, err := bindClone(e, c.t.Input.Schema())
		if err != nil {
			return err
		}
		c.bound[i] = b
	}
	return c.in.Open()
}

func (c *projectCursor) Next() ([]value.Row, error) {
	if c.closed {
		return nil, nil
	}
	b, err := c.in.Next()
	if err != nil || len(b) == 0 {
		return nil, err
	}
	c.out = c.out[:0]
	for _, r := range b {
		row := make(value.Row, len(c.bound))
		for i, e := range c.bound {
			v, err := expr.Eval(e, r)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		c.out = append(c.out, row)
	}
	return c.out, nil
}

func (c *projectCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.in.Close()
}

// joinCursor builds a hash table over the (fully drained) right input at
// Open, then streams the left input through it: probe output appears as soon
// as the first left batch arrives. Output order matches the materializing
// path exactly — left row order crossed with right insertion order per
// bucket. Without equi-join keys it degrades to nested loops over the
// materialized right side.
type joinCursor struct {
	ex       *Executor
	t        *plan.Join
	l, r     Cursor
	lKeys    []expr.Expr
	rKeys    []expr.Expr
	residual expr.Expr
	table    map[uint64][]joinBucket
	rRows    []value.Row // nested-loop fallback
	buf      []value.Row
	idx      int
	out      []value.Row
	done     bool
	closed   bool
}

type joinBucket struct {
	keys value.Row
	row  value.Row
}

func (c *joinCursor) Open() error {
	var err error
	c.lKeys, c.rKeys, c.residual, err = classifyJoinPred(c.t.On, c.t.L.Schema(), c.t.R.Schema())
	if err != nil {
		return err
	}
	if err := c.r.Open(); err != nil {
		return err
	}
	rRows, err := drain(c.r) // build side blocks; drained and released here
	if err != nil {
		return err
	}
	if len(c.lKeys) == 0 {
		c.rRows = rRows
	} else {
		c.table = map[uint64][]joinBucket{}
		for _, rr := range rRows {
			keys, null, err := evalKeys(c.rKeys, rr)
			if err != nil {
				return err
			}
			if null {
				continue // NULL keys never match
			}
			h := value.HashRow(keys, seq(len(keys)))
			c.table[h] = append(c.table[h], joinBucket{keys: keys, row: rr})
		}
	}
	return c.l.Open()
}

func (c *joinCursor) emit(lr, rr value.Row) error {
	row := make(value.Row, 0, len(lr)+len(rr))
	row = append(append(row, lr...), rr...)
	if c.residual != nil {
		ok, err := expr.EvalBool(c.residual, row)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	c.out = append(c.out, row)
	return nil
}

func (c *joinCursor) Next() ([]value.Row, error) {
	if c.done || c.closed {
		return nil, nil
	}
	limit := c.ex.batch()
	c.out = c.out[:0]
	// A single left row can emit many matches, so a batch may overrun the
	// limit by one row's matches; it stays bounded by max bucket size.
	for len(c.out) < limit {
		if c.idx >= len(c.buf) {
			b, err := c.l.Next()
			if err != nil {
				return nil, err
			}
			if len(b) == 0 {
				c.done = true
				break
			}
			c.buf, c.idx = b, 0
			continue
		}
		lr := c.buf[c.idx]
		c.idx++
		if c.table == nil {
			for _, rr := range c.rRows {
				if err := c.emit(lr, rr); err != nil {
					return nil, err
				}
			}
			continue
		}
		keys, null, err := evalKeys(c.lKeys, lr)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		h := value.HashRow(keys, seq(len(keys)))
		for _, b := range c.table[h] {
			if !keysEqual(keys, b.keys) {
				continue
			}
			if err := c.emit(lr, b.row); err != nil {
				return nil, err
			}
		}
	}
	return c.out, nil
}

func (c *joinCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.l.Close()
	if err2 := c.r.Close(); err == nil {
		err = err2
	}
	return err
}

// blockingCursor implements sort and aggregate: both must see every input
// row before emitting the first output row, so the input is drained (and
// closed) on the first Next and the computed result re-emitted in bounded
// batches.
type blockingCursor struct {
	ex      *Executor
	in      Cursor
	compute func([]value.Row) ([]value.Row, error)
	res     *sliceBatcher
	closed  bool
}

func (c *blockingCursor) Open() error { return c.in.Open() }

func (c *blockingCursor) Next() ([]value.Row, error) {
	if c.closed {
		return nil, nil
	}
	if c.res == nil {
		rows, err := drain(c.in)
		if err != nil {
			return nil, err
		}
		out, err := c.compute(rows)
		if err != nil {
			return nil, err
		}
		c.res = &sliceBatcher{rows: out, batch: c.ex.batch()}
	}
	return c.res.next(), nil
}

func (c *blockingCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.in.Close()
}

// sliceBatcher re-emits a materialized slice in bounded batches.
type sliceBatcher struct {
	rows  []value.Row
	pos   int
	batch int
}

func (s *sliceBatcher) next() []value.Row {
	if s.pos >= len(s.rows) {
		return nil
	}
	end := s.pos + s.batch
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b := s.rows[s.pos:end]
	s.pos = end
	return b
}

// limitCursor truncates the stream after N rows and is where streaming pays
// off most: LIMIT 0 never opens its input, and hitting the limit closes the
// input immediately, so upstream scans stop and seller-side cursors are
// released without shipping the rest of the answer.
type limitCursor struct {
	t           *plan.Limit
	in          Cursor
	remaining   int64
	opened      bool
	childClosed bool
	done        bool
	closed      bool
}

func (c *limitCursor) Open() error {
	c.remaining = c.t.N
	if c.remaining <= 0 {
		return nil // LIMIT 0: the input is never opened, let alone run
	}
	if err := c.in.Open(); err != nil {
		return err
	}
	c.opened = true
	return nil
}

func (c *limitCursor) Next() ([]value.Row, error) {
	if c.done || c.closed || c.remaining <= 0 {
		return nil, nil
	}
	b, err := c.in.Next()
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		c.done = true
		return nil, c.closeChild()
	}
	if int64(len(b)) >= c.remaining {
		b = b[:c.remaining]
		c.remaining = 0
		c.done = true
		if err := c.closeChild(); err != nil {
			return nil, err
		}
		return b, nil
	}
	c.remaining -= int64(len(b))
	return b, nil
}

func (c *limitCursor) closeChild() error {
	if !c.opened || c.childClosed {
		return nil
	}
	c.childClosed = true
	return c.in.Close()
}

func (c *limitCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.closeChild()
}

// distinctCursor streams rows through a first-seen filter, preserving the
// materializing path's first-occurrence order.
type distinctCursor struct {
	ex     *Executor
	in     Cursor
	seen   map[string]bool
	buf    []value.Row
	idx    int
	out    []value.Row
	done   bool
	closed bool
}

func (c *distinctCursor) Open() error {
	c.seen = map[string]bool{}
	return c.in.Open()
}

func (c *distinctCursor) Next() ([]value.Row, error) {
	if c.done || c.closed {
		return nil, nil
	}
	limit := c.ex.batch()
	c.out = c.out[:0]
	for len(c.out) < limit {
		if c.idx >= len(c.buf) {
			b, err := c.in.Next()
			if err != nil {
				return nil, err
			}
			if len(b) == 0 {
				c.done = true
				break
			}
			c.buf, c.idx = b, 0
			continue
		}
		r := c.buf[c.idx]
		c.idx++
		k := value.Key(r, seq(len(r)))
		if !c.seen[k] {
			c.seen[k] = true
			c.out = append(c.out, r)
		}
	}
	return c.out, nil
}

func (c *distinctCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.in.Close()
}

// unionCursor concatenates its inputs, running them one at a time (an input
// opens only when its predecessor is exhausted and closed). Every batch is
// width-checked against the union's declared schema, so drift from a
// mis-shaped branch — local or remote — fails at its first row instead of
// corrupting a downstream operator.
type unionCursor struct {
	t      *plan.Union
	inputs []Cursor
	cur    int
	opened bool
	closed bool
}

func (c *unionCursor) Open() error {
	if len(c.inputs) == 0 {
		return nil
	}
	if err := c.inputs[0].Open(); err != nil {
		return err
	}
	c.opened = true
	return nil
}

func (c *unionCursor) Next() ([]value.Row, error) {
	if c.closed {
		return nil, nil
	}
	want := len(c.t.Schema())
	for c.cur < len(c.inputs) {
		b, err := c.inputs[c.cur].Next()
		if err != nil {
			return nil, err
		}
		if len(b) == 0 {
			if err := c.inputs[c.cur].Close(); err != nil {
				return nil, err
			}
			c.cur++
			if c.cur < len(c.inputs) {
				if err := c.inputs[c.cur].Open(); err != nil {
					return nil, err
				}
			}
			continue
		}
		if want > 0 && len(b[0]) != want {
			return nil, fmt.Errorf("exec: union input %d has width %d, schema declares %d", c.cur, len(b[0]), want)
		}
		return b, nil
	}
	return nil, nil
}

func (c *unionCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	// Close the in-flight input and any never-opened successors (their Close
	// must be tolerated per the Cursor contract); already-exhausted
	// predecessors were closed as the stream advanced.
	for i := c.cur; i < len(c.inputs); i++ {
		if i == 0 && !c.opened {
			continue
		}
		if e := c.inputs[i].Close(); err == nil {
			err = e
		}
	}
	return err
}

// remoteCursor resolves a Remote leaf. With a StreamFunc it pulls the
// purchased answer batch by batch (and an early Close releases the
// seller-side cursor); with only a FetchFunc it falls back to the one-shot
// materialized fetch and re-emits it in bounded batches. Both paths validate
// the seller's declared column spec against the plan — even for empty
// results — and every batch's row width.
type remoteCursor struct {
	ex     *Executor
	t      *plan.Remote
	st     RowStream
	mat    *sliceBatcher
	closed bool
}

func (c *remoteCursor) Open() error {
	t := c.t
	if c.ex.FetchStream != nil {
		st, err := c.ex.FetchStream(t.NodeID, t.SQL, t.OfferID)
		if err != nil {
			return fmt.Errorf("exec: fetching from %s: %w", t.NodeID, err)
		}
		if cols := st.Cols(); len(cols) > 0 && len(cols) != len(t.Cols) {
			st.Close()
			return fmt.Errorf("exec: remote %s returned %d columns, plan expects %d", t.NodeID, len(cols), len(t.Cols))
		}
		c.st = st
		return nil
	}
	if c.ex.Fetch == nil {
		return fmt.Errorf("exec: plan contains Remote[%s] but executor has no fetcher", t.NodeID)
	}
	res, err := c.ex.Fetch(t.NodeID, t.SQL, t.OfferID)
	if err != nil {
		return fmt.Errorf("exec: fetching from %s: %w", t.NodeID, err)
	}
	if err := validateRemote(t, res); err != nil {
		return err
	}
	c.mat = &sliceBatcher{rows: res.Rows, batch: c.ex.batch()}
	return nil
}

func (c *remoteCursor) Next() ([]value.Row, error) {
	if c.closed {
		return nil, nil
	}
	if c.st != nil {
		b, err := c.st.Next()
		if err != nil {
			return nil, err
		}
		if len(b) > 0 && len(b[0]) != len(c.t.Cols) {
			return nil, fmt.Errorf("exec: remote %s returned width %d, plan expects %d", c.t.NodeID, len(b[0]), len(c.t.Cols))
		}
		return b, nil
	}
	return c.mat.next(), nil
}

func (c *remoteCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.st != nil {
		return c.st.Close()
	}
	return nil
}

// validateRemote checks a materialized remote answer against the plan's
// expectations: the declared column spec (when the seller sent one — this
// catches empty-but-mis-shaped answers) and the first row's width.
func validateRemote(t *plan.Remote, res *Result) error {
	if len(res.Cols) > 0 && len(res.Cols) != len(t.Cols) {
		return fmt.Errorf("exec: remote %s returned %d columns, plan expects %d", t.NodeID, len(res.Cols), len(t.Cols))
	}
	if len(res.Rows) > 0 && len(res.Rows[0]) != len(t.Cols) {
		return fmt.Errorf("exec: remote %s returned width %d, plan expects %d", t.NodeID, len(res.Rows[0]), len(t.Cols))
	}
	return nil
}

// statsCursor records one operator's actuals — wall time across
// Open/Next/Close (inclusive of children, like the materializing path),
// rows produced, and rows consumed (the sum of its children's rows-out,
// final by the time the children's own recorders have closed).
type statsCursor struct {
	inner    Cursor
	stats    *RunStats
	node     plan.Node
	elapsed  time.Duration
	rowsOut  int64
	recorded bool
}

func (c *statsCursor) Open() error {
	t0 := time.Now()
	err := c.inner.Open()
	c.elapsed += time.Since(t0)
	return err
}

func (c *statsCursor) Next() ([]value.Row, error) {
	t0 := time.Now()
	b, err := c.inner.Next()
	c.elapsed += time.Since(t0)
	c.rowsOut += int64(len(b))
	return b, err
}

func (c *statsCursor) Close() error {
	if c.recorded {
		return c.inner.Close()
	}
	c.recorded = true
	t0 := time.Now()
	err := c.inner.Close() // closes children, recording their actuals first
	c.elapsed += time.Since(t0)
	var in int64
	for _, child := range c.node.Children() {
		in += c.stats.rowsOut(child)
	}
	c.stats.record(c.node, in, c.rowsOut, c.elapsed)
	return err
}
