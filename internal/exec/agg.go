package exec

import (
	"fmt"
	"sort"

	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/value"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	fn       string
	distinct bool
	star     bool

	count    int64
	sumInt   int64
	sumFloat float64
	sawFloat bool
	sawAny   bool
	min, max value.Value
	seen     map[string]bool // for DISTINCT
}

func newAggState(it plan.AggItem) *aggState {
	s := &aggState{fn: it.Agg.Fn, distinct: it.Agg.Distinct, star: it.Agg.Star}
	if s.distinct {
		s.seen = map[string]bool{}
	}
	return s
}

func (s *aggState) add(v value.Value) error {
	if s.star {
		s.count++
		return nil
	}
	if v.IsNull() {
		return nil // aggregates skip NULLs
	}
	if s.distinct {
		k := value.Key(value.Row{v}, []int{0})
		if s.seen[k] {
			return nil
		}
		s.seen[k] = true
	}
	s.sawAny = true
	s.count++
	switch s.fn {
	case "COUNT":
		return nil
	case "SUM", "AVG":
		switch v.K {
		case value.Int:
			s.sumInt += v.I
		case value.Float:
			s.sawFloat = true
			s.sumFloat += v.F
		default:
			return fmt.Errorf("exec: %s over non-numeric value %s", s.fn, v)
		}
		return nil
	case "MIN":
		if s.min.IsNull() {
			s.min = v
		} else if c, ok := value.Compare(v, s.min); ok && c < 0 {
			s.min = v
		}
		return nil
	case "MAX":
		if s.max.IsNull() {
			s.max = v
		} else if c, ok := value.Compare(v, s.max); ok && c > 0 {
			s.max = v
		}
		return nil
	}
	return fmt.Errorf("exec: unknown aggregate %q", s.fn)
}

func (s *aggState) result() value.Value {
	switch s.fn {
	case "COUNT":
		return value.NewInt(s.count)
	case "SUM":
		if !s.sawAny {
			return value.NewNull()
		}
		if s.sawFloat {
			return value.NewFloat(s.sumFloat + float64(s.sumInt))
		}
		return value.NewInt(s.sumInt)
	case "AVG":
		if !s.sawAny || s.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat((s.sumFloat + float64(s.sumInt)) / float64(s.count))
	case "MIN":
		return s.min
	case "MAX":
		return s.max
	}
	return value.NewNull()
}

func (ex *Executor) runAggregate(t *plan.Aggregate) ([]value.Row, error) {
	in, err := ex.run(t.Input)
	if err != nil {
		return nil, err
	}
	return aggregateRows(t, in)
}

// aggregateRows evaluates the aggregate over fully materialized input rows,
// emitting groups in first-seen order. Shared by the streaming cursor
// (aggregation is a blocking operator) and the materializing reference path.
func aggregateRows(t *plan.Aggregate, in []value.Row) ([]value.Row, error) {
	inSchema := t.Input.Schema()
	groupExprs := make([]expr.Expr, len(t.GroupBy))
	for i, g := range t.GroupBy {
		b, err := bindClone(g, inSchema)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = b
	}
	argExprs := make([]expr.Expr, len(t.Aggs))
	for i, it := range t.Aggs {
		if it.Agg.Star {
			continue
		}
		b, err := bindClone(it.Agg.Arg, inSchema)
		if err != nil {
			return nil, err
		}
		argExprs[i] = b
	}

	type group struct {
		key    value.Row
		states []*aggState
		order  int
	}
	groups := map[string]*group{}
	for _, r := range in {
		keyVals := make(value.Row, len(groupExprs))
		for i, g := range groupExprs {
			v, err := expr.Eval(g, r)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		k := value.Key(keyVals, seq(len(keyVals)))
		grp := groups[k]
		if grp == nil {
			grp = &group{key: keyVals, order: len(groups)}
			for _, it := range t.Aggs {
				grp.states = append(grp.states, newAggState(it))
			}
			groups[k] = grp
		}
		for i, st := range grp.states {
			var v value.Value
			if !st.star {
				var err error
				v, err = expr.Eval(argExprs[i], r)
				if err != nil {
					return nil, err
				}
			}
			if err := st.add(v); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregation over zero rows still yields one row.
	if len(groups) == 0 && len(t.GroupBy) == 0 {
		g := &group{}
		for _, it := range t.Aggs {
			g.states = append(g.states, newAggState(it))
		}
		groups[""] = g
	}
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	out := make([]value.Row, 0, len(ordered))
	for _, g := range ordered {
		row := make(value.Row, 0, len(g.key)+len(g.states))
		row = append(row, g.key...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		out = append(out, row)
	}
	return out, nil
}
