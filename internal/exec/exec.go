// Package exec executes plan trees against a node's local storage and, for
// Remote nodes, against the sellers a plan purchased answers from. Execution
// is pulled row-batch iteration: every operator is an Open/Next/Close cursor
// over bounded batches, so the first row surfaces as soon as the pipeline
// below it produces one, LIMIT stops upstream work instead of truncating a
// fully built slice, and peak memory is set by the blocking operators (sort,
// aggregate, join build side) rather than the result size. The pre-streaming
// recursive materializing evaluator survives as RunMaterialized, the
// reference that differential tests pin the streamed answers byte-identical
// against. No execution ever happens during optimization — the trading
// algorithm prices offers purely from optimizer estimates, and only a
// finished winning plan reaches this package.
package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

// Result is a materialized query answer: column identities plus rows.
type Result struct {
	Cols []expr.ColumnID
	Rows []value.Row
}

// FetchFunc resolves a Remote plan node by asking the named seller to
// evaluate sql and ship the answer. offerID identifies the purchased offer
// (empty for plans, like the baselines', that fetch ad hoc); sellers use it
// to recognize composite subcontracted offers.
type FetchFunc func(nodeID, sql, offerID string) (*Result, error)

// Executor runs plans against a store, fetching purchased answers via Fetch
// (one-shot) or FetchStream (chunked).
type Executor struct {
	Store *storage.Store
	Fetch FetchFunc
	// FetchStream, when non-nil, takes precedence over Fetch for Remote
	// nodes: purchased answers arrive batch by batch instead of as one
	// materialized ExecResp, and closing the plan's cursor early releases
	// the seller-side cursors.
	FetchStream StreamFunc
	// BatchSize bounds cursor batches; 0 means DefaultBatchSize.
	BatchSize int
	// Stats, when non-nil, receives per-operator actuals (rows in/out,
	// elapsed, call counts) during Run — the raw material of EXPLAIN
	// ANALYZE. Nil (the default) keeps execution on the unwrapped fast path.
	Stats *RunStats
}

// OpStats are the actuals one plan operator accumulated during execution.
// Elapsed is inclusive of the operator's children (execution is
// materialized, so a parent's wall time contains its inputs').
type OpStats struct {
	Calls   int
	RowsIn  int64 // rows consumed from children (0 for leaves)
	RowsOut int64 // rows produced
	Elapsed time.Duration
}

// RunStats collects per-operator actuals for one (or several) executions,
// keyed by plan-node identity. Safe for concurrent use.
type RunStats struct {
	mu  sync.Mutex
	ops map[plan.Node]*OpStats
}

// NewRunStats returns an empty collector.
func NewRunStats() *RunStats { return &RunStats{ops: map[plan.Node]*OpStats{}} }

// Get returns the recorded actuals of one operator.
func (s *RunStats) Get(n plan.Node) (OpStats, bool) {
	if s == nil {
		return OpStats{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.ops[n]
	if !ok {
		return OpStats{}, false
	}
	return *op, true
}

func (s *RunStats) record(n plan.Node, rowsIn, rowsOut int64, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	op := s.ops[n]
	if op == nil {
		op = &OpStats{}
		s.ops[n] = op
	}
	op.Calls++
	op.RowsIn += rowsIn
	op.RowsOut += rowsOut
	op.Elapsed += d
}

func (s *RunStats) rowsOut(n plan.Node) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if op := s.ops[n]; op != nil {
		return op.RowsOut
	}
	return 0
}

// Run executes the plan through the streaming cursor pipeline and returns
// its materialized result. Callers that want the rows incrementally (first
// row before the last is computed) use Open directly.
func (ex *Executor) Run(n plan.Node) (*Result, error) {
	cur, err := ex.Open(n)
	if err != nil {
		return nil, err
	}
	var rows []value.Row
	for {
		b, err := cur.Next()
		if err != nil {
			cur.Close()
			return nil, err
		}
		if len(b) == 0 {
			break
		}
		rows = append(rows, b...)
	}
	if err := cur.Close(); err != nil {
		return nil, err
	}
	return &Result{Cols: n.Schema(), Rows: rows}, nil
}

// RunMaterialized executes the plan with the pre-streaming recursive
// evaluator that materializes every operator's full result. It is kept as
// the differential-testing reference: the streaming-vs-materializing tests
// pin Run's answers byte-identical to it across the sqllogic corpus.
func (ex *Executor) RunMaterialized(n plan.Node) (*Result, error) {
	rows, err := ex.run(n)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: n.Schema(), Rows: rows}, nil
}

// run dispatches to runNode, recording actuals when Stats is attached. The
// rows-in of an operator is the sum of its children's rows-out, which are
// already recorded by the time the operator itself returns.
func (ex *Executor) run(n plan.Node) ([]value.Row, error) {
	if ex.Stats == nil {
		return ex.runNode(n)
	}
	t0 := time.Now()
	rows, err := ex.runNode(n)
	if err != nil {
		return nil, err
	}
	var in int64
	for _, c := range n.Children() {
		in += ex.Stats.rowsOut(c)
	}
	ex.Stats.record(n, in, int64(len(rows)), time.Since(t0))
	return rows, nil
}

// bindClone clones an expression and binds it against a schema.
func bindClone(e expr.Expr, schema []expr.ColumnID) (expr.Expr, error) {
	if e == nil {
		return nil, nil
	}
	c := expr.Clone(e)
	if err := expr.Bind(c, schema); err != nil {
		return nil, err
	}
	return c, nil
}

func (ex *Executor) runNode(n plan.Node) ([]value.Row, error) {
	switch t := n.(type) {
	case *plan.Scan:
		return ex.runScan(t)
	case *plan.ViewScan:
		return ex.runViewScan(t)
	case *plan.Filter:
		return ex.runFilter(t)
	case *plan.Project:
		return ex.runProject(t)
	case *plan.Join:
		return ex.runJoin(t)
	case *plan.Aggregate:
		return ex.runAggregate(t)
	case *plan.Sort:
		return ex.runSort(t)
	case *plan.Limit:
		in, err := ex.run(t.Input)
		if err != nil {
			return nil, err
		}
		if int64(len(in)) > t.N {
			in = in[:t.N]
		}
		return in, nil
	case *plan.Distinct:
		in, err := ex.run(t.Input)
		if err != nil {
			return nil, err
		}
		return distinctRows(in), nil
	case *plan.Union:
		return ex.runUnion(t)
	case *plan.Remote:
		return ex.runRemote(t)
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", n)
}

func (ex *Executor) runScan(t *plan.Scan) ([]value.Row, error) {
	if ex.Store == nil {
		return nil, fmt.Errorf("exec: no local store for scan of %s", t.Def.Name)
	}
	pred, err := bindClone(t.Pred, t.Schema())
	if err != nil {
		return nil, err
	}
	var out []value.Row
	err = ex.Store.Scan(t.Def.Name, t.PartID, pred, func(r value.Row) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

func (ex *Executor) runViewScan(t *plan.ViewScan) ([]value.Row, error) {
	if ex.Store == nil {
		return nil, fmt.Errorf("exec: no local store for view %s", t.Name)
	}
	v := ex.Store.View(t.Name)
	if v == nil {
		return nil, fmt.Errorf("exec: unknown view %s", t.Name)
	}
	pred, err := bindClone(t.Pred, t.Schema())
	if err != nil {
		return nil, err
	}
	var out []value.Row
	for _, r := range v.Rows {
		if pred != nil {
			ok, err := expr.EvalBool(pred, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, r)
	}
	return out, nil
}

func (ex *Executor) runFilter(t *plan.Filter) ([]value.Row, error) {
	in, err := ex.run(t.Input)
	if err != nil {
		return nil, err
	}
	pred, err := bindClone(t.Pred, t.Input.Schema())
	if err != nil {
		return nil, err
	}
	var out []value.Row
	for _, r := range in {
		ok, err := expr.EvalBool(pred, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (ex *Executor) runProject(t *plan.Project) ([]value.Row, error) {
	in, err := ex.run(t.Input)
	if err != nil {
		return nil, err
	}
	bound := make([]expr.Expr, len(t.Exprs))
	for i, e := range t.Exprs {
		b, err := bindClone(e, t.Input.Schema())
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	out := make([]value.Row, len(in))
	for ri, r := range in {
		row := make(value.Row, len(bound))
		for i, e := range bound {
			v, err := expr.Eval(e, r)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out[ri] = row
	}
	return out, nil
}

// classifyJoinPred splits the ON conjuncts into equi-join key pairs (left
// expression over L schema, right expression over R schema) and residual
// predicates over the concatenated schema.
func classifyJoinPred(on expr.Expr, lSchema, rSchema []expr.ColumnID) (lKeys, rKeys []expr.Expr, residual expr.Expr, err error) {
	both := append(append([]expr.ColumnID{}, lSchema...), rSchema...)
	var rest []expr.Expr
	for _, c := range expr.Conjuncts(on) {
		b, isBin := c.(*expr.Binary)
		if isBin && b.Op == "=" {
			lOnly, errL := bindClone(b.L, lSchema)
			rOnly, errR := bindClone(b.R, rSchema)
			if errL == nil && errR == nil {
				lKeys = append(lKeys, lOnly)
				rKeys = append(rKeys, rOnly)
				continue
			}
			// Swapped sides: L expr over R schema, R expr over L schema.
			lSwap, errLS := bindClone(b.R, lSchema)
			rSwap, errRS := bindClone(b.L, rSchema)
			if errLS == nil && errRS == nil {
				lKeys = append(lKeys, lSwap)
				rKeys = append(rKeys, rSwap)
				continue
			}
		}
		rest = append(rest, c)
	}
	residual, err = bindClone(expr.And(rest), both)
	return lKeys, rKeys, residual, err
}

func (ex *Executor) runJoin(t *plan.Join) ([]value.Row, error) {
	l, err := ex.run(t.L)
	if err != nil {
		return nil, err
	}
	r, err := ex.run(t.R)
	if err != nil {
		return nil, err
	}
	lKeys, rKeys, residual, err := classifyJoinPred(t.On, t.L.Schema(), t.R.Schema())
	if err != nil {
		return nil, err
	}
	var out []value.Row
	emit := func(lr, rr value.Row) error {
		row := make(value.Row, 0, len(lr)+len(rr))
		row = append(append(row, lr...), rr...)
		if residual != nil {
			ok, err := expr.EvalBool(residual, row)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out = append(out, row)
		return nil
	}
	if len(lKeys) == 0 {
		// Nested loops (cross product plus residual filter).
		for _, lr := range l {
			for _, rr := range r {
				if err := emit(lr, rr); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	// Hash join: build on the right input.
	type bucket struct {
		keys value.Row
		row  value.Row
	}
	table := map[uint64][]bucket{}
	for _, rr := range r {
		keys, null, err := evalKeys(rKeys, rr)
		if err != nil {
			return nil, err
		}
		if null {
			continue // NULL keys never match
		}
		h := value.HashRow(keys, seq(len(keys)))
		table[h] = append(table[h], bucket{keys: keys, row: rr})
	}
	for _, lr := range l {
		keys, null, err := evalKeys(lKeys, lr)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		h := value.HashRow(keys, seq(len(keys)))
		for _, b := range table[h] {
			if !keysEqual(keys, b.keys) {
				continue
			}
			if err := emit(lr, b.row); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func evalKeys(keys []expr.Expr, row value.Row) (value.Row, bool, error) {
	out := make(value.Row, len(keys))
	for i, k := range keys {
		v, err := expr.Eval(k, row)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, true, nil
		}
		out[i] = v
	}
	return out, false, nil
}

func keysEqual(a, b value.Row) bool {
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (ex *Executor) runSort(t *plan.Sort) ([]value.Row, error) {
	in, err := ex.run(t.Input)
	if err != nil {
		return nil, err
	}
	return sortRows(t, in)
}

// sortRows stably orders fully materialized rows by the sort keys, shared by
// the streaming cursor (sort is a blocking operator) and the materializing
// reference path. Key-evaluation and comparison failures propagate out: an
// incomparable pair silently treated as equal would make the comparator
// inconsistent and the output order undefined.
func sortRows(t *plan.Sort, in []value.Row) ([]value.Row, error) {
	keys := make([]expr.Expr, len(t.Keys))
	for i, k := range t.Keys {
		b, err := bindClone(k.Expr, t.Input.Schema())
		if err != nil {
			return nil, err
		}
		keys[i] = b
	}
	type sortable struct {
		row  value.Row
		keys value.Row
	}
	items := make([]sortable, len(in))
	for i, r := range in {
		kv := make(value.Row, len(keys))
		for j, k := range keys {
			v, err := expr.Eval(k, r)
			if err != nil {
				return nil, err
			}
			kv[j] = v
		}
		items[i] = sortable{row: r, keys: kv}
	}
	var sortErr error
	sort.SliceStable(items, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		for k := range keys {
			a, b := items[i].keys[k], items[j].keys[k]
			c, err := compareForSort(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if t.Keys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([]value.Row, len(items))
	for i, it := range items {
		out[i] = it.row
	}
	return out, nil
}

// compareForSort orders values with NULLs first (ascending). Values
// value.Compare refuses to order (invalid or unknown kinds, e.g. from a
// corrupted remote answer) are an error, not a silent tie.
func compareForSort(a, b value.Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	c, ok := value.Compare(a, b)
	if !ok {
		return 0, fmt.Errorf("exec: sort key values %s and %s are not comparable", a, b)
	}
	return c, nil
}

func distinctRows(in []value.Row) []value.Row {
	seen := map[string]bool{}
	var out []value.Row
	for _, r := range in {
		k := value.Key(r, seq(len(r)))
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func (ex *Executor) runUnion(t *plan.Union) ([]value.Row, error) {
	var out []value.Row
	// Each input is checked against the union's declared schema, not merely
	// against its non-empty siblings: drift from one mis-shaped branch fails
	// here instead of corrupting a downstream operator.
	want := len(t.Schema())
	for i, in := range t.Inputs {
		rows, err := ex.run(in)
		if err != nil {
			return nil, err
		}
		if want > 0 && len(rows) > 0 && len(rows[0]) != want {
			return nil, fmt.Errorf("exec: union input %d has width %d, schema declares %d", i, len(rows[0]), want)
		}
		out = append(out, rows...)
	}
	return out, nil
}

func (ex *Executor) runRemote(t *plan.Remote) ([]value.Row, error) {
	if ex.Fetch == nil {
		return nil, fmt.Errorf("exec: plan contains Remote[%s] but executor has no fetcher", t.NodeID)
	}
	res, err := ex.Fetch(t.NodeID, t.SQL, t.OfferID)
	if err != nil {
		return nil, fmt.Errorf("exec: fetching from %s: %w", t.NodeID, err)
	}
	if err := validateRemote(t, res); err != nil {
		return nil, err
	}
	return res.Rows, nil
}
