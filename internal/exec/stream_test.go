package exec

import (
	"reflect"
	"strings"
	"testing"

	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

// fakeStream is a scripted RowStream for exercising the remote cursor.
type fakeStream struct {
	cols    []expr.ColumnID
	batches [][]value.Row
	i       int
	nexts   int
	closed  bool
}

func (f *fakeStream) Cols() []expr.ColumnID { return f.cols }

func (f *fakeStream) Next() ([]value.Row, error) {
	f.nexts++
	if f.i >= len(f.batches) {
		return nil, nil
	}
	b := f.batches[f.i]
	f.i++
	return b, nil
}

func (f *fakeStream) Close() error {
	f.closed = true
	return nil
}

// streamingPlans is the operator-coverage corpus for the differential test:
// every cursor type, composed the way real plans compose them.
func streamingPlans() map[string]func() plan.Node {
	scan := func() plan.Node { return &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"} }
	inv := func() plan.Node { return &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"} }
	join := func() plan.Node {
		return &plan.Join{L: scan(), R: inv(), On: sqlparse.MustParseExpr("c.custid = i.custid")}
	}
	return map[string]func() plan.Node{
		"scan":   scan,
		"filter": func() plan.Node { return &plan.Filter{Input: scan(), Pred: sqlparse.MustParseExpr("c.custid > 2")} },
		"project": func() plan.Node {
			return &plan.Project{Input: scan(),
				Exprs: []expr.Expr{sqlparse.MustParseExpr("c.custid * 10"), sqlparse.MustParseExpr("c.office")},
				Names: []expr.ColumnID{{Name: "x10"}, {Name: "office"}}}
		},
		"hash-join": join,
		"cross-join": func() plan.Node {
			return &plan.Join{L: scan(), R: &plan.Scan{Def: custDef, Alias: "d", PartID: "p0"}}
		},
		"nonequi-join": func() plan.Node {
			return &plan.Join{L: scan(), R: &plan.Scan{Def: custDef, Alias: "d", PartID: "p0"},
				On: sqlparse.MustParseExpr("c.custid < d.custid")}
		},
		"sort": func() plan.Node {
			return &plan.Sort{Input: join(), Keys: []plan.SortKey{
				{Expr: sqlparse.MustParseExpr("i.charge"), Desc: true},
				{Expr: sqlparse.MustParseExpr("c.custname")}}}
		},
		"agg": func() plan.Node {
			return &plan.Aggregate{Input: join(),
				GroupBy:    []expr.Expr{sqlparse.MustParseExpr("c.office")},
				GroupNames: []expr.ColumnID{{Table: "c", Name: "office"}},
				Aggs: []plan.AggItem{
					{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("i.charge")}, Name: expr.ColumnID{Name: "total"}},
					{Agg: &expr.Agg{Fn: "COUNT", Star: true}, Name: expr.ColumnID{Name: "n"}}}}
		},
		"limit": func() plan.Node { return &plan.Limit{Input: join(), N: 3} },
		"distinct": func() plan.Node {
			return &plan.Distinct{Input: &plan.Project{Input: scan(),
				Exprs: []expr.Expr{sqlparse.MustParseExpr("c.office")},
				Names: []expr.ColumnID{{Name: "office"}}}}
		},
		"union": func() plan.Node { return &plan.Union{Inputs: []plan.Node{scan(), scan(), scan()}} },
		"sort-limit": func() plan.Node {
			return &plan.Limit{Input: &plan.Sort{Input: scan(),
				Keys: []plan.SortKey{{Expr: sqlparse.MustParseExpr("c.custname"), Desc: true}}}, N: 2}
		},
	}
}

// The streamed pipeline must produce byte-identical rows, in identical
// order, to the materializing reference path — at every batch size,
// including degenerate batch 1.
func TestStreamingMatchesMaterialized(t *testing.T) {
	s := telcoStore(t)
	for name, mk := range streamingPlans() {
		for _, batch := range []int{1, 2, 3, DefaultBatchSize} {
			n := mk()
			stream := &Executor{Store: s, BatchSize: batch}
			got, err := stream.Run(n)
			if err != nil {
				t.Fatalf("%s batch %d: streaming: %v", name, batch, err)
			}
			ref := &Executor{Store: s}
			want, err := ref.RunMaterialized(mk())
			if err != nil {
				t.Fatalf("%s: materialized: %v", name, err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) && !(len(got.Rows) == 0 && len(want.Rows) == 0) {
				t.Fatalf("%s batch %d: streaming %v != materialized %v", name, batch, got.Rows, want.Rows)
			}
		}
	}
}

// Incomparable sort keys (same unknown kind on both sides, e.g. rows
// corrupted in transit) must fail the sort in both paths — the regression
// for the dead sortErr variable and the dropped value.Compare error.
func TestSortErrorPropagates(t *testing.T) {
	bad := value.Value{K: value.Kind(99)}
	fetch := func(string, string, string) (*Result, error) {
		return &Result{
			Cols: []expr.ColumnID{{Name: "x"}},
			Rows: []value.Row{{bad}, {bad}},
		}, nil
	}
	mk := func() plan.Node {
		return &plan.Sort{
			Input: &plan.Remote{NodeID: "corfu", SQL: "SELECT x FROM t", Cols: []expr.ColumnID{{Name: "x"}}},
			Keys:  []plan.SortKey{{Expr: sqlparse.MustParseExpr("x")}},
		}
	}
	ex := &Executor{Fetch: fetch}
	if _, err := ex.Run(mk()); err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("streaming sort must surface comparison error, got %v", err)
	}
	if _, err := ex.RunMaterialized(mk()); err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("materialized sort must surface comparison error, got %v", err)
	}
}

// An empty-but-mis-shaped remote answer (zero rows, wrong column spec) must
// fail loudly instead of slipping past the width check, in the one-shot
// path and the streaming path alike.
func TestRemoteEmptyAnswerColsValidated(t *testing.T) {
	r := &plan.Remote{NodeID: "corfu", SQL: "SELECT x FROM t", Cols: []expr.ColumnID{{Name: "x"}}}
	ex := &Executor{Fetch: func(string, string, string) (*Result, error) {
		return &Result{Cols: []expr.ColumnID{{Name: "a"}, {Name: "b"}}}, nil // no rows, two cols
	}}
	if _, err := ex.Run(r); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("streaming: empty mis-shaped answer must error, got %v", err)
	}
	if _, err := ex.RunMaterialized(r); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("materialized: empty mis-shaped answer must error, got %v", err)
	}
	st := &fakeStream{cols: []expr.ColumnID{{Name: "a"}, {Name: "b"}}}
	exs := &Executor{FetchStream: func(string, string, string) (RowStream, error) { return st, nil }}
	if _, err := exs.Run(r); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("stream fetch: empty mis-shaped answer must error, got %v", err)
	}
	if !st.closed {
		t.Fatal("rejected stream must be closed")
	}
	// A mis-shaped batch mid-stream is also caught.
	st2 := &fakeStream{
		cols:    []expr.ColumnID{{Name: "x"}},
		batches: [][]value.Row{{{value.NewInt(1), value.NewInt(2)}}},
	}
	exs2 := &Executor{FetchStream: func(string, string, string) (RowStream, error) { return st2, nil }}
	if _, err := exs2.Run(r); err == nil || !strings.Contains(err.Error(), "width") {
		t.Fatalf("stream fetch: mis-shaped batch must error, got %v", err)
	}
}

// A union whose first input is empty used to skip width validation
// entirely; every input is now checked against the union's declared schema.
func TestUnionSchemaDriftCaught(t *testing.T) {
	s := telcoStore(t)
	empty := storage.NewStore()
	mustCreate(t, empty, custDef, "p0")
	un := &plan.Union{Inputs: []plan.Node{
		&plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}, // 3 cols, zero rows in `empty`
		&plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},  // 4 cols
	}}
	// Against the empty store the first input yields no rows; the second
	// input's drift from the declared 3-column schema must still fail.
	exEmpty := &Executor{Store: empty}
	// The empty store has no invoiceline fragment, so give it one row.
	mustCreate(t, empty, invDef, "p0")
	if err := empty.Insert("invoiceline", "p0",
		value.Row{value.NewInt(1), value.NewInt(1), value.NewInt(1), value.NewFloat(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := exEmpty.Run(un); err == nil || !strings.Contains(err.Error(), "schema declares") {
		t.Fatalf("streaming: union drift past empty input must error, got %v", err)
	}
	if _, err := exEmpty.RunMaterialized(un); err == nil || !strings.Contains(err.Error(), "schema declares") {
		t.Fatalf("materialized: union drift past empty input must error, got %v", err)
	}
	// Sanity: a well-shaped union still works on both paths.
	ok := &plan.Union{Inputs: []plan.Node{
		&plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		&plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
	}}
	ex := &Executor{Store: s}
	if res, err := ex.Run(ok); err != nil || len(res.Rows) != 10 {
		t.Fatalf("well-shaped union: %v %v", res, err)
	}
}

// LIMIT 0 must not even open its input — no fetch, no scan — and a LIMIT
// larger than the input drains normally.
func TestLimitStreamingEdges(t *testing.T) {
	s := telcoStore(t)
	fetched := false
	ex := &Executor{
		Store: s,
		FetchStream: func(string, string, string) (RowStream, error) {
			fetched = true
			return &fakeStream{cols: []expr.ColumnID{{Name: "x"}}}, nil
		},
	}
	zero := &plan.Limit{
		Input: &plan.Remote{NodeID: "corfu", SQL: "SELECT x FROM t", Cols: []expr.ColumnID{{Name: "x"}}},
		N:     0,
	}
	res, err := ex.Run(zero)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("limit 0: %v %v", res, err)
	}
	if fetched {
		t.Fatal("LIMIT 0 must not fetch its input")
	}
	over := &plan.Limit{Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}, N: 99}
	if res := runPlan(t, s, over); len(res.Rows) != 5 {
		t.Fatalf("limit over input: %d", len(res.Rows))
	}
}

// Hitting the limit must stop pulling the remote stream and close it: the
// whole point of streaming is that the seller does not ship (or compute)
// the rest of the answer.
func TestLimitReleasesUpstreamStream(t *testing.T) {
	st := &fakeStream{
		cols: []expr.ColumnID{{Name: "x"}},
		batches: [][]value.Row{
			{{value.NewInt(1)}, {value.NewInt(2)}},
			{{value.NewInt(3)}, {value.NewInt(4)}},
			{{value.NewInt(5)}, {value.NewInt(6)}},
		},
	}
	ex := &Executor{
		BatchSize:   2,
		FetchStream: func(string, string, string) (RowStream, error) { return st, nil },
	}
	lim := &plan.Limit{
		Input: &plan.Remote{NodeID: "corfu", SQL: "SELECT x FROM t", Cols: []expr.ColumnID{{Name: "x"}}},
		N:     2,
	}
	res, err := ex.Run(lim)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("limit over stream: %v %v", res, err)
	}
	if !st.closed {
		t.Fatal("satisfied LIMIT must close the remote stream")
	}
	if st.nexts > 1 {
		t.Fatalf("satisfied LIMIT pulled %d batches, want 1", st.nexts)
	}
}

// DESC ordering with NULL keys through the streaming sort matches the
// materializing comparator exactly (NULLs first ascending, therefore last
// descending), at a batch size small enough to split the input.
func TestStreamingSortDescNulls(t *testing.T) {
	s := storage.NewStore()
	mustCreate(t, s, custDef, "p0")
	if err := s.Insert("customer", "p0",
		value.Row{value.NewInt(2), value.NewStr("b"), value.NewStr("X")},
		value.Row{value.NewNull(), value.NewStr("n1"), value.NewStr("X")},
		value.Row{value.NewInt(1), value.NewStr("a"), value.NewStr("X")},
		value.Row{value.NewNull(), value.NewStr("n2"), value.NewStr("X")},
		value.Row{value.NewInt(3), value.NewStr("c"), value.NewStr("X")},
	); err != nil {
		t.Fatal(err)
	}
	mk := func() plan.Node {
		return &plan.Sort{
			Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
			Keys:  []plan.SortKey{{Expr: sqlparse.MustParseExpr("c.custid"), Desc: true}},
		}
	}
	ex := &Executor{Store: s, BatchSize: 2}
	got, err := ex.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != 3 || got.Rows[1][0].I != 2 || got.Rows[2][0].I != 1 ||
		!got.Rows[3][0].IsNull() || !got.Rows[4][0].IsNull() {
		t.Fatalf("desc with nulls: %v", got.Rows)
	}
	// NULL ties keep input order (stable sort): n1 before n2.
	if got.Rows[3][1].S != "n1" || got.Rows[4][1].S != "n2" {
		t.Fatalf("stability among null keys: %v", got.Rows)
	}
	want, err := (&Executor{Store: s}).RunMaterialized(mk())
	if err != nil || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("streaming %v != materialized %v (%v)", got.Rows, want.Rows, err)
	}
}

// A batch-boundary scan (fragment size an exact multiple of the batch) and
// resumable ScanFrom positions behave.
func TestScanBatchBoundaries(t *testing.T) {
	s := telcoStore(t) // customer has 5 rows
	for _, batch := range []int{1, 5, 6} {
		ex := &Executor{Store: s, BatchSize: batch}
		res, err := ex.Run(&plan.Scan{Def: custDef, Alias: "c", PartID: "p0"})
		if err != nil || len(res.Rows) != 5 {
			t.Fatalf("batch %d: %v %v", batch, res, err)
		}
	}
}

// Stats recording through the cursor pipeline: per-operator rows-out, and
// rows-in as the sum of children's rows-out.
func TestStreamingRunStats(t *testing.T) {
	s := telcoStore(t)
	scan := &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}
	fil := &plan.Filter{Input: scan, Pred: sqlparse.MustParseExpr("c.custid > 2")}
	stats := NewRunStats()
	ex := &Executor{Store: s, Stats: stats, BatchSize: 2}
	if _, err := ex.Run(fil); err != nil {
		t.Fatal(err)
	}
	if op, ok := stats.Get(scan); !ok || op.RowsOut != 5 {
		t.Fatalf("scan stats: %+v %v", op, ok)
	}
	if op, ok := stats.Get(fil); !ok || op.RowsIn != 5 || op.RowsOut != 3 || op.Calls != 1 {
		t.Fatalf("filter stats: %+v %v", op, ok)
	}
}

// Executor.Open surfaces the first row before the stream is drained, and an
// early Close releases the remote stream.
func TestOpenFirstRowEarlyClose(t *testing.T) {
	st := &fakeStream{
		cols: []expr.ColumnID{{Name: "x"}},
		batches: [][]value.Row{
			{{value.NewInt(1)}},
			{{value.NewInt(2)}},
		},
	}
	ex := &Executor{
		BatchSize:   1,
		FetchStream: func(string, string, string) (RowStream, error) { return st, nil },
	}
	cur, err := ex.Open(&plan.Remote{NodeID: "corfu", SQL: "SELECT x FROM t", Cols: []expr.ColumnID{{Name: "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cur.Next()
	if err != nil || len(b) != 1 || b[0][0].I != 1 {
		t.Fatalf("first batch: %v %v", b, err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if !st.closed {
		t.Fatal("early close must release the stream")
	}
	// Closed cursors are exhausted and re-closable.
	if b, err := cur.Next(); err != nil || len(b) != 0 {
		t.Fatalf("closed cursor must be exhausted: %v %v", b, err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
}
