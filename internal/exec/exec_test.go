package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

var custDef = &catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
	{Name: "custid", Kind: value.Int},
	{Name: "custname", Kind: value.Str},
	{Name: "office", Kind: value.Str},
}}

var invDef = &catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
	{Name: "invid", Kind: value.Int},
	{Name: "linenum", Kind: value.Int},
	{Name: "custid", Kind: value.Int},
	{Name: "charge", Kind: value.Float},
}}

func telcoStore(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	mustCreate(t, s, custDef, "p0")
	mustCreate(t, s, invDef, "p0")
	customers := []struct {
		id     int64
		name   string
		office string
	}{
		{1, "alice", "Corfu"}, {2, "bob", "Corfu"}, {3, "carol", "Myconos"},
		{4, "dave", "Athens"}, {5, "eve", "Myconos"},
	}
	for _, c := range customers {
		if err := s.Insert("customer", "p0", value.Row{value.NewInt(c.id), value.NewStr(c.name), value.NewStr(c.office)}); err != nil {
			t.Fatal(err)
		}
	}
	lines := []struct {
		inv, line, cust int64
		charge          float64
	}{
		{100, 1, 1, 10}, {100, 2, 1, 5}, {101, 1, 2, 7},
		{102, 1, 3, 20}, {103, 1, 5, 2}, {104, 1, 4, 100},
	}
	for _, l := range lines {
		if err := s.Insert("invoiceline", "p0", value.Row{value.NewInt(l.inv), value.NewInt(l.line), value.NewInt(l.cust), value.NewFloat(l.charge)}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func mustCreate(t *testing.T, s *storage.Store, def *catalog.TableDef, part string) {
	t.Helper()
	if _, err := s.CreateFragment(def, part); err != nil {
		t.Fatal(err)
	}
}

func runPlan(t *testing.T, s *storage.Store, n plan.Node) *Result {
	t.Helper()
	ex := &Executor{Store: s}
	res, err := ex.Run(n)
	if err != nil {
		t.Fatalf("run %s: %v", n.Describe(), err)
	}
	return res
}

func TestScanAndFilter(t *testing.T) {
	s := telcoStore(t)
	scan := &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}
	res := runPlan(t, s, scan)
	if len(res.Rows) != 5 || len(res.Cols) != 3 {
		t.Fatalf("scan: %d rows %d cols", len(res.Rows), len(res.Cols))
	}
	if res.Cols[0].Table != "c" {
		t.Fatalf("alias exposure: %+v", res.Cols[0])
	}
	scan.Pred = sqlparse.MustParseExpr("office = 'Corfu'")
	res = runPlan(t, s, scan)
	if len(res.Rows) != 2 {
		t.Fatalf("pushed filter: %d", len(res.Rows))
	}
	f := &plan.Filter{Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}, Pred: sqlparse.MustParseExpr("c.custid > 3")}
	res = runPlan(t, s, f)
	if len(res.Rows) != 2 {
		t.Fatalf("filter: %d", len(res.Rows))
	}
}

func TestProject(t *testing.T) {
	s := telcoStore(t)
	p := &plan.Project{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Exprs: []expr.Expr{sqlparse.MustParseExpr("c.custid * 10"), sqlparse.MustParseExpr("c.office")},
		Names: []expr.ColumnID{{Name: "x10"}, {Table: "c", Name: "office"}},
	}
	res := runPlan(t, s, p)
	if res.Rows[0][0].I != 10 {
		t.Fatalf("projection: %v", res.Rows[0])
	}
	if res.Cols[0].Name != "x10" {
		t.Fatalf("names: %+v", res.Cols)
	}
}

func TestHashJoin(t *testing.T) {
	s := telcoStore(t)
	j := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		R:  &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
		On: sqlparse.MustParseExpr("c.custid = i.custid"),
	}
	res := runPlan(t, s, j)
	if len(res.Rows) != 6 {
		t.Fatalf("join rows: %d, want 6", len(res.Rows))
	}
	if len(res.Cols) != 7 {
		t.Fatalf("join schema width: %d", len(res.Cols))
	}
	// Every output row satisfies the join predicate.
	for _, r := range res.Rows {
		if r[0].I != r[5].I {
			t.Fatalf("join mismatch: %v", r)
		}
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	s := telcoStore(t)
	j := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		R:  &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
		On: sqlparse.MustParseExpr("c.custid = i.custid AND i.charge > 6"),
	}
	res := runPlan(t, s, j)
	if len(res.Rows) != 4 {
		t.Fatalf("residual join rows: %d, want 4", len(res.Rows))
	}
}

func TestCrossJoin(t *testing.T) {
	s := telcoStore(t)
	j := &plan.Join{
		L: &plan.Scan{Def: custDef, Alias: "a", PartID: "p0"},
		R: &plan.Scan{Def: custDef, Alias: "b", PartID: "p0"},
	}
	res := runPlan(t, s, j)
	if len(res.Rows) != 25 {
		t.Fatalf("cross join: %d", len(res.Rows))
	}
}

func TestNonEquiJoinFallsBackToNL(t *testing.T) {
	s := telcoStore(t)
	j := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "a", PartID: "p0"},
		R:  &plan.Scan{Def: custDef, Alias: "b", PartID: "p0"},
		On: sqlparse.MustParseExpr("a.custid < b.custid"),
	}
	res := runPlan(t, s, j)
	if len(res.Rows) != 10 {
		t.Fatalf("non-equi join: %d, want 10", len(res.Rows))
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	s := storage.NewStore()
	mustCreate(t, s, custDef, "p0")
	if err := s.Insert("customer", "p0",
		value.Row{value.NewNull(), value.NewStr("n1"), value.NewStr("X")},
		value.Row{value.NewInt(1), value.NewStr("n2"), value.NewStr("X")},
	); err != nil {
		t.Fatal(err)
	}
	j := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "a", PartID: "p0"},
		R:  &plan.Scan{Def: custDef, Alias: "b", PartID: "p0"},
		On: sqlparse.MustParseExpr("a.custid = b.custid"),
	}
	res := runPlan(t, s, j)
	if len(res.Rows) != 1 {
		t.Fatalf("NULL join keys must not match: %d rows", len(res.Rows))
	}
}

func TestAggregateGroupBy(t *testing.T) {
	s := telcoStore(t)
	join := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		R:  &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
		On: sqlparse.MustParseExpr("c.custid = i.custid"),
	}
	agg := &plan.Aggregate{
		Input:      join,
		GroupBy:    []expr.Expr{sqlparse.MustParseExpr("c.office")},
		GroupNames: []expr.ColumnID{{Table: "c", Name: "office"}},
		Aggs: []plan.AggItem{
			{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("i.charge")}, Name: expr.ColumnID{Name: "total"}},
			{Agg: &expr.Agg{Fn: "COUNT", Star: true}, Name: expr.ColumnID{Name: "n"}},
			{Agg: &expr.Agg{Fn: "MIN", Arg: sqlparse.MustParseExpr("i.charge")}, Name: expr.ColumnID{Name: "lo"}},
			{Agg: &expr.Agg{Fn: "MAX", Arg: sqlparse.MustParseExpr("i.charge")}, Name: expr.ColumnID{Name: "hi"}},
			{Agg: &expr.Agg{Fn: "AVG", Arg: sqlparse.MustParseExpr("i.charge")}, Name: expr.ColumnID{Name: "avg"}},
		},
	}
	res := runPlan(t, s, agg)
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	byOffice := map[string]value.Row{}
	for _, r := range res.Rows {
		byOffice[r[0].S] = r
	}
	corfu := byOffice["Corfu"]
	if corfu[1].AsFloat() != 22 || corfu[2].I != 3 || corfu[3].AsFloat() != 5 || corfu[4].AsFloat() != 10 {
		t.Fatalf("corfu aggregates: %v", corfu)
	}
	my := byOffice["Myconos"]
	if my[1].AsFloat() != 22 || my[2].I != 2 {
		t.Fatalf("myconos aggregates: %v", my)
	}
	if av := my[5].AsFloat(); av != 11 {
		t.Fatalf("avg: %v", av)
	}
}

func TestAggregateGlobalEmptyInput(t *testing.T) {
	s := storage.NewStore()
	mustCreate(t, s, custDef, "p0")
	agg := &plan.Aggregate{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Aggs: []plan.AggItem{
			{Agg: &expr.Agg{Fn: "COUNT", Star: true}, Name: expr.ColumnID{Name: "n"}},
			{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("c.custid")}, Name: expr.ColumnID{Name: "s"}},
		},
	}
	res := runPlan(t, s, agg)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty global agg: %v", res.Rows)
	}
}

func TestAggregateDistinctAndNulls(t *testing.T) {
	s := storage.NewStore()
	mustCreate(t, s, custDef, "p0")
	rows := []value.Row{
		{value.NewInt(1), value.NewStr("a"), value.NewStr("X")},
		{value.NewInt(1), value.NewStr("b"), value.NewStr("X")},
		{value.NewInt(2), value.NewStr("c"), value.NewStr("X")},
		{value.NewNull(), value.NewStr("d"), value.NewStr("X")},
	}
	if err := s.Insert("customer", "p0", rows...); err != nil {
		t.Fatal(err)
	}
	agg := &plan.Aggregate{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Aggs: []plan.AggItem{
			{Agg: &expr.Agg{Fn: "COUNT", Arg: sqlparse.MustParseExpr("c.custid"), Distinct: true}, Name: expr.ColumnID{Name: "d"}},
			{Agg: &expr.Agg{Fn: "COUNT", Arg: sqlparse.MustParseExpr("c.custid")}, Name: expr.ColumnID{Name: "n"}},
			{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("c.custid"), Distinct: true}, Name: expr.ColumnID{Name: "sd"}},
			{Agg: &expr.Agg{Fn: "COUNT", Star: true}, Name: expr.ColumnID{Name: "all"}},
		},
	}
	res := runPlan(t, s, agg)
	r := res.Rows[0]
	if r[0].I != 2 || r[1].I != 3 || r[2].I != 3 || r[3].I != 4 {
		t.Fatalf("distinct/null aggregates: %v", r)
	}
}

func TestSortOrderAndNulls(t *testing.T) {
	s := storage.NewStore()
	mustCreate(t, s, custDef, "p0")
	if err := s.Insert("customer", "p0",
		value.Row{value.NewInt(2), value.NewStr("b"), value.NewStr("X")},
		value.Row{value.NewNull(), value.NewStr("n"), value.NewStr("X")},
		value.Row{value.NewInt(1), value.NewStr("a"), value.NewStr("X")},
	); err != nil {
		t.Fatal(err)
	}
	srt := &plan.Sort{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Keys:  []plan.SortKey{{Expr: sqlparse.MustParseExpr("c.custid")}},
	}
	res := runPlan(t, s, srt)
	if !res.Rows[0][0].IsNull() || res.Rows[1][0].I != 1 || res.Rows[2][0].I != 2 {
		t.Fatalf("asc nulls first: %v", res.Rows)
	}
	srt.Keys[0].Desc = true
	res = runPlan(t, s, srt)
	if res.Rows[0][0].I != 2 || !res.Rows[2][0].IsNull() {
		t.Fatalf("desc: %v", res.Rows)
	}
}

func TestLimitDistinctUnion(t *testing.T) {
	s := telcoStore(t)
	scan := func() plan.Node { return &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"} }
	lim := &plan.Limit{Input: scan(), N: 2}
	if res := runPlan(t, s, lim); len(res.Rows) != 2 {
		t.Fatalf("limit: %d", len(res.Rows))
	}
	proj := &plan.Project{Input: scan(), Exprs: []expr.Expr{sqlparse.MustParseExpr("c.office")}, Names: []expr.ColumnID{{Name: "office"}}}
	dis := &plan.Distinct{Input: proj}
	if res := runPlan(t, s, dis); len(res.Rows) != 3 {
		t.Fatalf("distinct: %d", len(res.Rows))
	}
	un := &plan.Union{Inputs: []plan.Node{scan(), scan()}}
	if res := runPlan(t, s, un); len(res.Rows) != 10 {
		t.Fatalf("union all: %d", len(res.Rows))
	}
}

func TestUnionWidthMismatch(t *testing.T) {
	s := telcoStore(t)
	un := &plan.Union{Inputs: []plan.Node{
		&plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		&plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
	}}
	ex := &Executor{Store: s}
	if _, err := ex.Run(un); err == nil {
		t.Fatal("width mismatch must error")
	}
}

func TestRemoteFetch(t *testing.T) {
	called := ""
	ex := &Executor{
		Fetch: func(nodeID, sql, offerID string) (*Result, error) {
			called = nodeID + ":" + sql
			return &Result{
				Cols: []expr.ColumnID{{Name: "x"}},
				Rows: []value.Row{{value.NewInt(42)}},
			}, nil
		},
	}
	r := &plan.Remote{NodeID: "corfu", SQL: "SELECT x FROM t", Cols: []expr.ColumnID{{Table: "r", Name: "x"}}}
	res, err := ex.Run(r)
	if err != nil || res.Rows[0][0].I != 42 {
		t.Fatalf("remote: %v %v", res, err)
	}
	if called != "corfu:SELECT x FROM t" {
		t.Fatalf("fetch call: %s", called)
	}
	// No fetcher configured.
	ex2 := &Executor{}
	if _, err := ex2.Run(r); err == nil {
		t.Fatal("missing fetcher must error")
	}
	// Width mismatch.
	ex3 := &Executor{Fetch: func(string, string, string) (*Result, error) {
		return &Result{Rows: []value.Row{{value.NewInt(1), value.NewInt(2)}}}, nil
	}}
	if _, err := ex3.Run(r); err == nil {
		t.Fatal("remote width mismatch must error")
	}
	// Fetch error propagates.
	ex4 := &Executor{Fetch: func(string, string, string) (*Result, error) { return nil, fmt.Errorf("boom") }}
	if _, err := ex4.Run(r); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("fetch error: %v", err)
	}
}

func TestViewScan(t *testing.T) {
	s := storage.NewStore()
	if err := s.AddView(&storage.MaterializedView{
		Name: "totals",
		Columns: []catalog.ColumnDef{
			{Name: "office", Kind: value.Str}, {Name: "total", Kind: value.Float},
		},
		Rows: []value.Row{
			{value.NewStr("Corfu"), value.NewFloat(22)},
			{value.NewStr("Myconos"), value.NewFloat(22)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	v := &plan.ViewScan{
		Name: "totals",
		Cols: []expr.ColumnID{{Table: "v", Name: "office"}, {Table: "v", Name: "total"}},
		Pred: sqlparse.MustParseExpr("office = 'Corfu'"),
	}
	res := runPlan(t, s, v)
	if len(res.Rows) != 1 || res.Rows[0][1].F != 22 {
		t.Fatalf("view scan: %v", res.Rows)
	}
	bad := &plan.ViewScan{Name: "ghost"}
	ex := &Executor{Store: s}
	if _, err := ex.Run(bad); err == nil {
		t.Fatal("unknown view must error")
	}
}

func TestFinalizeSelectEndToEnd(t *testing.T) {
	s := telcoStore(t)
	sel := sqlparse.MustParseSelect(`
		SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
		GROUP BY c.office
		ORDER BY total DESC`)
	join := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		R:  &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
		On: sel.Where,
	}
	p, err := plan.FinalizeSelect(sel, join)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, s, p)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Both offices total 22; ordering by total DESC is stable.
	if res.Rows[0][1].AsFloat() != 22 || res.Rows[1][1].AsFloat() != 22 {
		t.Fatalf("totals: %v", res.Rows)
	}
	if res.Cols[1].Name != "total" {
		t.Fatalf("output name: %+v", res.Cols)
	}
}

func TestFinalizeHavingAndExpressions(t *testing.T) {
	s := telcoStore(t)
	sel := sqlparse.MustParseSelect(`
		SELECT c.office, COUNT(*) AS n, SUM(i.charge) * 2 AS dbl
		FROM customer c, invoiceline i
		WHERE c.custid = i.custid
		GROUP BY c.office
		HAVING COUNT(*) > 1`)
	join := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		R:  &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
		On: sel.Where,
	}
	p, err := plan.FinalizeSelect(sel, join)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, s, p)
	if len(res.Rows) != 2 {
		t.Fatalf("having rows: %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].I < 2 {
			t.Fatalf("having violated: %v", r)
		}
		if r[2].AsFloat() != 44 {
			t.Fatalf("expression over aggregate: %v", r)
		}
	}
}

func TestFinalizeStarAndDistinct(t *testing.T) {
	s := telcoStore(t)
	sel := sqlparse.MustParseSelect("SELECT DISTINCT * FROM customer c LIMIT 3")
	p, err := plan.FinalizeSelect(sel, &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, s, p)
	if len(res.Rows) != 3 || len(res.Cols) != 3 {
		t.Fatalf("star/distinct/limit: %d x %d", len(res.Rows), len(res.Cols))
	}
}

func TestFinalizeInvalidGroupColumn(t *testing.T) {
	sel := sqlparse.MustParseSelect("SELECT c.custname, COUNT(*) FROM customer c GROUP BY c.office")
	_, err := plan.FinalizeSelect(sel, &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"})
	if err == nil {
		t.Fatal("non-grouped column must be rejected")
	}
}

func TestExplainAndHelpers(t *testing.T) {
	j := &plan.Join{
		L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		R:  &plan.Remote{NodeID: "n2", SQL: "SELECT 1", Cols: []expr.ColumnID{{Name: "one"}}},
		On: sqlparse.MustParseExpr("c.custid = one"),
	}
	out := plan.Explain(j)
	if !strings.Contains(out, "Join") || !strings.Contains(out, "Remote[n2]") {
		t.Fatalf("explain: %s", out)
	}
	if len(plan.Remotes(j)) != 1 {
		t.Fatal("Remotes helper")
	}
	if plan.CountNodes(j) != 3 {
		t.Fatalf("CountNodes: %d", plan.CountNodes(j))
	}
}

// Property: hash join output equals brute-force nested-loop evaluation on
// random data.
func TestQuickJoinEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		s := storage.NewStore()
		mustCreate(t, s, custDef, "p0")
		mustCreate(t, s, invDef, "p0")
		nl, nr := 1+r.Intn(20), 1+r.Intn(30)
		lrows := make([]value.Row, nl)
		for i := range lrows {
			lrows[i] = value.Row{value.NewInt(int64(r.Intn(8))), value.NewStr("n"), value.NewStr("X")}
		}
		rrows := make([]value.Row, nr)
		for i := range rrows {
			rrows[i] = value.Row{value.NewInt(int64(i)), value.NewInt(1), value.NewInt(int64(r.Intn(8))), value.NewFloat(1)}
		}
		if err := s.Insert("customer", "p0", lrows...); err != nil {
			t.Fatal(err)
		}
		if err := s.Insert("invoiceline", "p0", rrows...); err != nil {
			t.Fatal(err)
		}
		j := &plan.Join{
			L:  &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
			R:  &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
			On: sqlparse.MustParseExpr("c.custid = i.custid"),
		}
		res := runPlan(t, s, j)
		want := 0
		for _, lr := range lrows {
			for _, rr := range rrows {
				if lr[0].I == rr[2].I {
					want++
				}
			}
		}
		if len(res.Rows) != want {
			t.Fatalf("trial %d: hash join %d rows, brute force %d", trial, len(res.Rows), want)
		}
	}
}

// Property: Distinct(Union(x, x)) == Distinct(x).
func TestQuickUnionDistinctIdempotent(t *testing.T) {
	s := telcoStore(t)
	scan := func() plan.Node { return &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"} }
	d1 := runPlan(t, s, &plan.Distinct{Input: scan()})
	d2 := runPlan(t, s, &plan.Distinct{Input: &plan.Union{Inputs: []plan.Node{scan(), scan()}}})
	if len(d1.Rows) != len(d2.Rows) {
		t.Fatalf("distinct union: %d vs %d", len(d1.Rows), len(d2.Rows))
	}
}
