package exec

import (
	"testing"

	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

func TestDivisionByZeroYieldsNull(t *testing.T) {
	s := telcoStore(t)
	p := &plan.Project{
		Input: &plan.Limit{Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}, N: 1},
		Exprs: []expr.Expr{sqlparse.MustParseExpr("c.custid / 0"), sqlparse.MustParseExpr("c.custid % 0")},
		Names: []expr.ColumnID{{Name: "div"}, {Name: "mod"}},
	}
	res := runPlan(t, s, p)
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Fatalf("x/0 and x%%0 must be NULL: %v", res.Rows[0])
	}
}

func TestLimitZero(t *testing.T) {
	s := telcoStore(t)
	res := runPlan(t, s, &plan.Limit{Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}, N: 0})
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0: %d rows", len(res.Rows))
	}
}

func TestFilterErrorPropagates(t *testing.T) {
	s := telcoStore(t)
	// Unknown column in the filter: binding fails at run time.
	f := &plan.Filter{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Pred:  sqlparse.MustParseExpr("c.ghost = 1"),
	}
	ex := &Executor{Store: s}
	if _, err := ex.Run(f); err == nil {
		t.Fatal("unknown filter column must error")
	}
}

func TestMixedIntFloatAggregation(t *testing.T) {
	s := storage.NewStore()
	mustCreate(t, s, invDef, "p0")
	// charge column is float; custid is int — SUM over each keeps its kind.
	rows := []value.Row{
		{value.NewInt(1), value.NewInt(1), value.NewInt(2), value.NewFloat(1.5)},
		{value.NewInt(2), value.NewInt(1), value.NewInt(3), value.NewFloat(2.5)},
	}
	if err := s.Insert("invoiceline", "p0", rows...); err != nil {
		t.Fatal(err)
	}
	agg := &plan.Aggregate{
		Input: &plan.Scan{Def: invDef, Alias: "i", PartID: "p0"},
		Aggs: []plan.AggItem{
			{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("i.custid")}, Name: expr.ColumnID{Name: "si"}},
			{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("i.charge")}, Name: expr.ColumnID{Name: "sf"}},
		},
	}
	res := runPlan(t, s, agg)
	if res.Rows[0][0].K != value.Int || res.Rows[0][0].I != 5 {
		t.Fatalf("int sum: %v", res.Rows[0][0])
	}
	if res.Rows[0][1].K != value.Float || res.Rows[0][1].F != 4.0 {
		t.Fatalf("float sum: %v", res.Rows[0][1])
	}
}

func TestAggregateOverNonNumericErrors(t *testing.T) {
	s := telcoStore(t)
	agg := &plan.Aggregate{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Aggs: []plan.AggItem{
			{Agg: &expr.Agg{Fn: "SUM", Arg: sqlparse.MustParseExpr("c.custname")}, Name: expr.ColumnID{Name: "s"}},
		},
	}
	ex := &Executor{Store: s}
	if _, err := ex.Run(agg); err == nil {
		t.Fatal("SUM over strings must error")
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	s := telcoStore(t)
	agg := &plan.Aggregate{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Aggs: []plan.AggItem{
			{Agg: &expr.Agg{Fn: "MIN", Arg: sqlparse.MustParseExpr("c.custname")}, Name: expr.ColumnID{Name: "lo"}},
			{Agg: &expr.Agg{Fn: "MAX", Arg: sqlparse.MustParseExpr("c.custname")}, Name: expr.ColumnID{Name: "hi"}},
		},
	}
	res := runPlan(t, s, agg)
	if res.Rows[0][0].S != "alice" || res.Rows[0][1].S != "eve" {
		t.Fatalf("string min/max: %v", res.Rows[0])
	}
}

func TestScanMissingFragmentErrors(t *testing.T) {
	s := telcoStore(t)
	ex := &Executor{Store: s}
	if _, err := ex.Run(&plan.Scan{Def: custDef, Alias: "c", PartID: "ghost"}); err == nil {
		t.Fatal("missing fragment must error")
	}
	noStore := &Executor{}
	if _, err := noStore.Run(&plan.Scan{Def: custDef, Alias: "c", PartID: "p0"}); err == nil {
		t.Fatal("scan without store must error")
	}
	if _, err := noStore.Run(&plan.ViewScan{Name: "v"}); err == nil {
		t.Fatal("view scan without store must error")
	}
}

func TestEmptyUnion(t *testing.T) {
	s := telcoStore(t)
	res := runPlan(t, s, &plan.Union{})
	if len(res.Rows) != 0 {
		t.Fatalf("empty union: %v", res.Rows)
	}
}

func TestSortByExpression(t *testing.T) {
	s := telcoStore(t)
	srt := &plan.Sort{
		Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
		Keys:  []plan.SortKey{{Expr: sqlparse.MustParseExpr("c.custid % 3")}, {Expr: sqlparse.MustParseExpr("c.custid")}},
	}
	res := runPlan(t, s, srt)
	// custid%3: 3->0, 1->1, 4->1, 2->2, 5->2; within group by custid.
	wantOrder := []int64{3, 1, 4, 2, 5}
	for i, w := range wantOrder {
		if res.Rows[i][0].I != w {
			t.Fatalf("expression sort order: %v", res.Rows)
		}
	}
}

func TestStringConcatInProjection(t *testing.T) {
	s := telcoStore(t)
	p := &plan.Project{
		Input: &plan.Filter{
			Input: &plan.Scan{Def: custDef, Alias: "c", PartID: "p0"},
			Pred:  sqlparse.MustParseExpr("c.custid = 1"),
		},
		Exprs: []expr.Expr{sqlparse.MustParseExpr("c.custname + '@' + c.office")},
		Names: []expr.ColumnID{{Name: "email"}},
	}
	res := runPlan(t, s, p)
	if res.Rows[0][0].S != "alice@Corfu" {
		t.Fatalf("concat: %v", res.Rows[0][0])
	}
}
