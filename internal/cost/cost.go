// Package cost implements the cost model and the multidimensional valuation
// of query-answers. The paper prices offers by estimated properties — total
// time, first-row latency, delivery rate, row count, freshness, completeness
// and optionally money — aggregated by an administrator-defined weighting
// function; the default weights reduce the valuation to total execution time,
// the choice the paper uses throughout its examples.
package cost

import "math"

// Model holds the cost constants of a node's engine and network, in
// milliseconds (time units are arbitrary but consistent federation-wide for
// the experiments).
type Model struct {
	CPURow       float64 // per-row predicate/projection evaluation
	IORow        float64 // per-row fragment read
	HashBuildRow float64
	HashProbeRow float64
	SortRow      float64 // multiplied by log2(n)
	AggRow       float64
	NetLatency   float64 // per message
	BytesPerMS   float64 // network bandwidth
	StartupCost  float64 // fixed cost of starting a local plan
}

// Default returns the cost constants used across the experiments: a node
// that reads ~1M rows/s, hashes ~2M rows/s, and a LAN-ish network with 1 ms
// latency and 100 MB/s bandwidth.
func Default() *Model {
	return &Model{
		CPURow:       0.0002,
		IORow:        0.001,
		HashBuildRow: 0.0006,
		HashProbeRow: 0.0004,
		SortRow:      0.0003,
		AggRow:       0.0005,
		NetLatency:   1.0,
		BytesPerMS:   100_000, // 100 MB/s
		StartupCost:  0.5,
	}
}

// Scan costs reading rows from local storage and evaluating a predicate.
func (m *Model) Scan(rows int64) float64 {
	return m.StartupCost + float64(rows)*(m.IORow+m.CPURow)
}

// HashJoin costs building on build rows, probing with probe rows and
// emitting out rows.
func (m *Model) HashJoin(build, probe, out int64) float64 {
	return float64(build)*m.HashBuildRow + float64(probe)*m.HashProbeRow + float64(out)*m.CPURow
}

// NLJoin costs a nested-loop join.
func (m *Model) NLJoin(l, r, out int64) float64 {
	return float64(l)*float64(r)*m.CPURow + float64(out)*m.CPURow
}

// Sort costs an n·log n sort.
func (m *Model) Sort(rows int64) float64 {
	if rows <= 1 {
		return 0
	}
	return float64(rows) * math.Log2(float64(rows)) * m.SortRow
}

// Aggregate costs hash aggregation of rows into groups.
func (m *Model) Aggregate(rows, groups int64) float64 {
	return float64(rows)*m.AggRow + float64(groups)*m.CPURow
}

// Filter costs evaluating a predicate over rows.
func (m *Model) Filter(rows int64) float64 { return float64(rows) * m.CPURow }

// Transfer costs shipping bytes over the network as one message stream.
func (m *Model) Transfer(bytes float64) float64 {
	if bytes <= 0 {
		return m.NetLatency
	}
	return m.NetLatency + bytes/m.BytesPerMS
}

// Valuation is the multidimensional value of a query-answer, as estimated by
// the seller's optimizer (§3.1 of the paper).
type Valuation struct {
	TotalTime    float64 // ms to produce and deliver the full answer
	FirstRow     float64 // ms to first row
	RowsPerSec   float64
	Rows         int64
	Bytes        float64
	Freshness    float64 // 1 = current, 0 = arbitrarily stale
	Completeness float64 // fraction of requested data covered
	Money        float64 // charged amount, if the federation is commercial
}

// Weights is the administrator-defined aggregation function that ranks
// offers. Score is a weighted sum where quality dimensions (freshness,
// completeness, rate) contribute inverted so that lower scores are better.
type Weights struct {
	TotalTime    float64
	FirstRow     float64
	Rows         float64
	Staleness    float64 // weight on (1 - Freshness)
	Incomplete   float64 // weight on (1 - Completeness)
	Money        float64
	SlowDelivery float64 // weight on 1/RowsPerSec
}

// DefaultWeights values offers purely by total time, the paper's running
// choice ("the valuation of the offered query-answers will be the total
// execution time of the query").
func DefaultWeights() Weights { return Weights{TotalTime: 1} }

// Score aggregates a valuation; lower is better.
func (w Weights) Score(v Valuation) float64 {
	s := w.TotalTime*v.TotalTime +
		w.FirstRow*v.FirstRow +
		w.Rows*float64(v.Rows) +
		w.Staleness*(1-v.Freshness) +
		w.Incomplete*(1-v.Completeness) +
		w.Money*v.Money
	if w.SlowDelivery > 0 && v.RowsPerSec > 0 {
		s += w.SlowDelivery / v.RowsPerSec
	}
	return s
}
