package cost

import (
	"testing"
	"testing/quick"
)

func TestDefaultModelSane(t *testing.T) {
	m := Default()
	if m.CPURow <= 0 || m.IORow <= 0 || m.BytesPerMS <= 0 || m.NetLatency <= 0 {
		t.Fatalf("default constants: %+v", m)
	}
}

func TestScanMonotonic(t *testing.T) {
	m := Default()
	if m.Scan(1000) <= m.Scan(100) {
		t.Fatal("scan cost must grow with rows")
	}
	if m.Scan(0) < m.StartupCost {
		t.Fatal("scan includes startup")
	}
}

func TestHashJoinVsNLJoin(t *testing.T) {
	m := Default()
	// For large inputs, hashing beats nested loops by orders of magnitude.
	h := m.HashJoin(10000, 10000, 10000)
	nl := m.NLJoin(10000, 10000, 10000)
	if h >= nl/100 {
		t.Fatalf("hash %.2f vs nl %.2f", h, nl)
	}
}

func TestSortCost(t *testing.T) {
	m := Default()
	if m.Sort(0) != 0 || m.Sort(1) != 0 {
		t.Fatal("trivial sorts are free")
	}
	if m.Sort(10000) <= m.Sort(1000)*2 {
		t.Fatal("sort superlinear growth expected")
	}
}

func TestTransfer(t *testing.T) {
	m := Default()
	if m.Transfer(0) != m.NetLatency {
		t.Fatal("empty transfer still pays latency")
	}
	if m.Transfer(1_000_000) <= m.Transfer(1000) {
		t.Fatal("transfer grows with bytes")
	}
	// 100 KB at 100 MB/s is ~1 ms plus latency.
	got := m.Transfer(100_000)
	if got < 1.9 || got > 2.1 {
		t.Fatalf("100KB transfer: %.3f ms", got)
	}
}

func TestAggregateAndFilter(t *testing.T) {
	m := Default()
	if m.Aggregate(1000, 10) <= 0 || m.Filter(1000) <= 0 {
		t.Fatal("positive costs")
	}
}

func TestDefaultWeightsScoreIsTotalTime(t *testing.T) {
	w := DefaultWeights()
	v := Valuation{TotalTime: 42, FirstRow: 5, Rows: 1000, Money: 99}
	if w.Score(v) != 42 {
		t.Fatalf("default score: %f", w.Score(v))
	}
}

func TestWeightsDimensions(t *testing.T) {
	w := Weights{TotalTime: 1, Staleness: 10, Incomplete: 20, Money: 2, SlowDelivery: 100, FirstRow: 1, Rows: 0.001}
	fresh := Valuation{TotalTime: 10, Freshness: 1, Completeness: 1, RowsPerSec: 1000, Rows: 100, FirstRow: 1, Money: 1}
	stale := fresh
	stale.Freshness = 0.5
	if w.Score(stale) <= w.Score(fresh) {
		t.Fatal("staleness must cost")
	}
	partial := fresh
	partial.Completeness = 0.5
	if w.Score(partial) <= w.Score(fresh) {
		t.Fatal("incompleteness must cost")
	}
	slow := fresh
	slow.RowsPerSec = 1
	if w.Score(slow) <= w.Score(fresh) {
		t.Fatal("slow delivery must cost")
	}
	// Zero RowsPerSec must not divide by zero.
	zero := fresh
	zero.RowsPerSec = 0
	_ = w.Score(zero)
}

// Property: costs are non-negative and monotone in rows.
func TestQuickCostMonotone(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(a)+int64(b)
		return m.Scan(x) <= m.Scan(y) &&
			m.Filter(x) <= m.Filter(y) &&
			m.Sort(x) <= m.Sort(y) &&
			m.HashJoin(x, x, x) <= m.HashJoin(y, y, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
