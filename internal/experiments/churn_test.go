package experiments

import (
	"strconv"
	"testing"
)

// TestF17ChurnSmoke is the fixed-seed elastic-churn smoke test. The hard
// acceptance bar rides here: across steady state, a churn window (join,
// drain, crash — all mid-run) and the recovery window, not one query may
// fail. Latency assertions stay loose (wall-clock belongs to the benchmark
// and full_results); membership columns are exact because the churn script
// is deterministic.
func TestF17ChurnSmoke(t *testing.T) {
	tab := F17Churn(4, 3, 6, 7)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (steady/churn/recovered):\n%v", len(tab.Rows), tab.Rows)
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	num := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(row[col(name)], 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		if f := row[col("failed")]; f != "0" {
			t.Fatalf("phase %q failed %s queries, want 0 — elastic churn must be invisible to clients\n%v",
				row[0], f, tab.Rows)
		}
		if qps := num(row, "qps"); qps <= 0 {
			t.Fatalf("qps %v not positive\n%v", qps, row)
		}
		p50, p95 := num(row, "p50_ms"), num(row, "p95_ms")
		if p50 <= 0 || p95 < p50 {
			t.Fatalf("latency percentiles out of order (p50=%v p95=%v)\n%v", p50, p95, row)
		}
	}
	want := [][3]string{ // members, draining, crashed per phase
		{"4", "0", "0"}, {"5", "1", "1"}, {"5", "1", "1"},
	}
	for i, row := range tab.Rows {
		got := [3]string{row[col("members")], row[col("draining")], row[col("crashed")]}
		if got != want[i] {
			t.Fatalf("phase %q membership = %v, want %v", row[0], got, want[i])
		}
	}
}

// TestF17FedRejectsTinyFederations pins the guard that keeps the crash and
// drain victims from ever co-holding a fragment's only two replicas.
func TestF17FedRejectsTinyFederations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("f17Fed(3, ...) must panic: with <4 sellers the victims could co-hold a fragment")
		}
	}()
	f17Fed(3, 1)
}
