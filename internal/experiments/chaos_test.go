package experiments

import (
	"strconv"
	"testing"
)

// TestF12ChaosSmoke is the fixed-seed chaos smoke test: with a 20% drop
// plan and a permanently slow seller in the sweep, every query must still
// complete (stragglers cut, retries absorb the drops, the slow peer's
// breaker opens) and the fault counters must show the machinery worked.
func TestF12ChaosSmoke(t *testing.T) {
	const queries = 3
	tab := F12Chaos(queries, 7)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	num := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col(name)], 10, 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}
	want := strconv.Itoa(queries) + "/" + strconv.Itoa(queries)
	for _, row := range tab.Rows {
		if got := row[col("ok")]; got != want {
			t.Fatalf("drop rate %s completed %s queries, want %s\n%v",
				row[0], got, want, tab.Rows)
		}
		// The slow seller exceeds the call timeout at every drop rate, so
		// timeouts accrue and its breaker opens even in the 0% row.
		if num(row, "timeouts") == 0 {
			t.Fatalf("drop rate %s: no call timeouts despite slow seller\n%v", row[0], row)
		}
		if num(row, "breaker_opens") == 0 {
			t.Fatalf("drop rate %s: slow seller's breaker never opened\n%v", row[0], row)
		}
		if num(row, "retries") == 0 {
			t.Fatalf("drop rate %s: no retries recorded\n%v", row[0], row)
		}
	}
}
