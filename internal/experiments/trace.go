package experiments

import (
	"time"

	"qtrade/internal/obs"
	"qtrade/internal/workload"
)

// F14TraceOverhead measures what federation-wide distributed tracing costs
// (extension): chain negotiations of growing width run under three sampling
// policies — Never (the zero-cost baseline: no spans recorded, no trace
// bytes on the wire), Ratio(0.1) (the production default), and Always.
// Reported per (relations, policy): mean optimization wall ms, overhead
// percent against Never at the same width, mean negotiation wire bytes
// (seller span subtrees piggyback on BidReply, so Always pays bytes and
// Never must match the untraced baseline exactly), and the number of traces
// the buyer retained. The policies run interleaved — rep r of every policy
// before rep r+1 of any — so thermal/GC drift over the sweep hits all three
// equally, and the federation is stats-warmed up front so the comparison is
// tracing cost, not lazy statistics construction.
func F14TraceOverhead(widths []int, reps int, seed int64) *Table {
	t := &Table{
		ID:     "F14",
		Title:  "distributed tracing overhead (chain, Never vs Ratio(0.1) vs Always)",
		Header: []string{"relations", "policy", "opt_ms", "overhead_pct", "net_bytes", "traces"},
	}
	for _, width := range widths {
		f, opts := chainFed(workload.ChainOptions{Relations: width, Nodes: 4, Seed: seed})
		q := workload.ChainQuery(opts, 0.5)
		type polRun struct {
			name     string
			sampling *obs.Sampling
			tracer   *obs.Tracer
			dur      time.Duration
			bytes    int64
		}
		runs := []*polRun{
			{name: "never", sampling: &obs.Sampling{Mode: obs.SampleNever}},
			{name: "ratio0.1", sampling: &obs.Sampling{Mode: obs.SampleRatio, Ratio: 0.1, Seed: seed}},
			{name: "always", sampling: &obs.Sampling{Mode: obs.SampleAlways}},
		}
		run := func(p *polRun, timed bool) {
			cfg := f.BuyerConfig()
			cfg.Tracer = p.tracer
			cfg.Sampling = p.sampling
			_, b0 := f.Net.Stats()
			t0 := time.Now()
			if _, err := f.Optimize(cfg, q); err != nil {
				panic(err)
			}
			if timed {
				p.dur += time.Since(t0)
				_, b1 := f.Net.Stats()
				p.bytes += b1 - b0
			}
		}
		// Warmup: lazy per-fragment statistics, price-cache fills, allocator
		// growth — one untimed rep per policy so all three start equal.
		for _, p := range runs {
			p.tracer = obs.NewTracer()
			run(p, false)
			p.tracer = obs.NewTracer() // warmup traces don't count
		}
		for r := 0; r < reps; r++ {
			for _, p := range runs {
				run(p, true)
			}
		}
		neverMS := 0.0
		for _, p := range runs {
			ms := float64(p.dur.Microseconds()) / 1000 / float64(reps)
			if p.name == "never" {
				neverMS = ms
			}
			overhead := 0.0
			if neverMS > 0 {
				overhead = 100 * (ms - neverMS) / neverMS
			}
			t.Rows = append(t.Rows, []string{
				d(int64(width)), p.name,
				f2(ms), f1(overhead),
				d(p.bytes / int64(reps)), d(int64(len(p.tracer.Roots()))),
			})
		}
	}
	return t
}
