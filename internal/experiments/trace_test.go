package experiments

import (
	"strconv"
	"testing"
)

// TestF14TraceOverheadSmoke is the fixed-seed trace-overhead smoke test. It
// deliberately asserts nothing about wall-clock overhead — that is the
// benchmark's job — only the deterministic columns: Never ships no trace
// bytes and retains no traces, Always retains one trace per rep and pays
// wire bytes for the piggybacked span payloads, Ratio sits in between.
func TestF14TraceOverheadSmoke(t *testing.T) {
	const reps = 6
	tab := F14TraceOverhead([]int{3}, reps, 7)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	get := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col(name)], 10, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	byPolicy := map[string][]string{}
	for _, row := range tab.Rows {
		byPolicy[row[col("policy")]] = row
	}
	never, ratio, always := byPolicy["never"], byPolicy["ratio0.1"], byPolicy["always"]
	if never == nil || ratio == nil || always == nil {
		t.Fatalf("policies missing: %v", tab.Rows)
	}
	if n := get(never, "traces"); n != 0 {
		t.Fatalf("Never retained %d traces", n)
	}
	if n := get(always, "traces"); n != reps {
		t.Fatalf("Always retained %d/%d traces", n, reps)
	}
	if n := get(ratio, "traces"); n < 0 || n > reps {
		t.Fatalf("Ratio retained %d traces", n)
	}
	nb, ab := get(never, "net_bytes"), get(always, "net_bytes")
	if ab <= nb {
		t.Fatalf("Always must pay trace bytes on the wire: always=%d never=%d", ab, nb)
	}
	if rb := get(ratio, "net_bytes"); rb < nb || rb > ab {
		t.Fatalf("Ratio bytes outside [never, always]: %d vs [%d, %d]", rb, nb, ab)
	}
}
