package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestF19FlightSmoke is the fixed-seed flight-recorder smoke test. The hard
// acceptance bar: every query of every recorded phase lands as exactly one
// dossier, the slow-seller phase's queries are all captured by the latency
// SLO trigger and its window is flagged by the watchdog, and the stale-stats
// phase's queries are all flagged as cardinality blowouts. Wall-clock and
// the overhead percentage stay unasserted — they belong to the benchmark.
func TestF19FlightSmoke(t *testing.T) {
	tab := F19Flight(8, 7)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (baseline/steady/slow_seller/stale_stats):\n%v", len(tab.Rows), tab.Rows)
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	num := func(row []string, name string) int {
		v, err := strconv.Atoi(row[col(name)])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}

	// Baseline runs unobserved: no dossiers, no flags.
	if got := num(rows["baseline"], "dossiers"); got != 0 {
		t.Fatalf("baseline admitted %d dossiers, want 0", got)
	}

	// Steady state: one dossier per query, none flagged, no anomalies — the
	// recorder must be silent on a healthy run.
	if got := num(rows["steady"], "dossiers"); got != 16 {
		t.Fatalf("steady admitted %d dossiers, want 16 (one per query)", got)
	}
	if got := num(rows["steady"], "flagged"); got != 0 {
		t.Fatalf("steady flagged %d dossiers, want 0:\n%v", got, rows["steady"])
	}
	if got := num(rows["steady"], "anomalies"); got != 0 {
		t.Fatalf("steady raised %d anomalies, want 0", got)
	}

	// Slow seller: every query breaches the SLO, and the watchdog flags the
	// window against the steady baselines.
	if got := num(rows["slow_seller"], "dossiers"); got != 8 {
		t.Fatalf("slow_seller admitted %d dossiers, want 8", got)
	}
	if got := num(rows["slow_seller"], "flagged"); got != 8 {
		t.Fatalf("slow_seller flagged %d dossiers, want 8:\n%v", got, rows["slow_seller"])
	}
	if trig := rows["slow_seller"][col("triggers")]; !strings.Contains(trig, "slow_slo=8") {
		t.Fatalf("slow_seller triggers = %q, want slow_slo=8", trig)
	}
	if got := num(rows["slow_seller"], "anomalies"); got < 1 {
		t.Fatalf("watchdog raised no anomaly for the slow window:\n%v", rows["slow_seller"])
	}

	// Stale statistics: every query's estimate blows out against the actuals.
	if got := num(rows["stale_stats"], "flagged"); got != 8 {
		t.Fatalf("stale_stats flagged %d dossiers, want 8:\n%v", got, rows["stale_stats"])
	}
	if trig := rows["stale_stats"][col("triggers")]; !strings.Contains(trig, "card_blowout=8") {
		t.Fatalf("stale_stats triggers = %q, want card_blowout=8", trig)
	}
}

// BenchmarkExpF19 times the flight-recorder experiment end to end.
func BenchmarkExpF19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		F19Flight(8, 1)
	}
}
