package experiments

import (
	"fmt"
	"time"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/workload"
)

// F12Chaos stresses fault-tolerant trading (extension): a star federation
// where node n1 is permanently slow (every call to it exceeds the buyer's
// call timeout) while a seeded chaos plan drops a sweep of request
// fractions on every link. The buyer runs with a full fault policy —
// per-call timeouts, bounded retries, round deadlines and per-peer circuit
// breakers — and the queries prune to fact partition p0, so the plan never
// needs the slow seller's data: negotiations must cut it off and proceed.
// Reported per drop rate: queries answered, mean plan value, recovery
// rounds spent, offer-substitution fallbacks, and the policy's fault
// counters.
func F12Chaos(queries int, seed int64) *Table {
	t := &Table{
		ID:    "F12",
		Title: "fault-tolerant trading under chaos (star, slow seller n1)",
		Header: []string{"drop_prob", "ok", "value_ms", "reopts", "fallbacks",
			"timeouts", "retries", "stragglers", "breaker_opens", "msgs"},
	}
	for _, rate := range []float64{0, 0.1, 0.2, 0.3} {
		opts := workload.StarOptions{Dims: 3, FactRows: 400, DimRows: 40,
			FactParts: 2, Nodes: 4, Seed: seed, SkipOracle: true}
		f := workload.NewStar(opts)
		f.Net.SetFaultPlan(&netsim.FaultPlan{
			Seed:       seed,
			DropProb:   rate,
			JitterMS:   1,
			SlowNodeMS: map[string]float64{"n1": 25},
		})
		m := obs.NewMetrics()
		pol := &trading.FaultPolicy{
			CallTimeout:  8 * time.Millisecond,
			RoundTimeout: 30 * time.Millisecond,
			MaxRetries:   4,
			Backoff:      time.Millisecond,
			Breakers: trading.NewBreakerSet(trading.BreakerConfig{
				Threshold: 5, Cooldown: 40 * time.Millisecond,
			}, m),
			Metrics: m,
		}
		// The fault counters need a fresh registry per drop rate, so this
		// experiment keeps its own metrics and only borrows the shared tracer.
		f.SetObs(obsTracer, m)
		f.Net.Reset()
		ok, reopts := 0, 0
		var valueSum float64
		for i := 0; i < queries; i++ {
			// Fractions below 0.5 prune the query to fact partition p0, which
			// the buyer holds itself: the slow seller is never load-bearing.
			q := workload.StarQuery(opts, 0.25+0.02*float64(i%10))
			cfg := f.BuyerConfig()
			cfg.Tracer = obsTracer
			cfg.Metrics = m
			cfg.Faults = pol
			// A query whose negotiation itself is killed by bad luck (every
			// retry of a critical call dropped) is reissued, like a client
			// would; each reissue counts as recovery work.
			for try := 0; try < 3; try++ {
				_, res, rounds, err := core.OptimizeAndExecute(cfg, f.Comm(),
					&exec.Executor{Store: f.Nodes[f.Buyer].Store()}, q, 2)
				reopts += rounds
				if err == nil {
					ok++
					valueSum += res.Candidate.ResponseTime
					break
				}
			}
		}
		msgs, _ := f.Net.Stats()
		mean := 0.0
		if ok > 0 {
			mean = valueSum / float64(ok)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d/%d", ok, queries),
			f2(mean),
			d(int64(reopts)),
			d(m.Counter("buyer.n0.recovery_fallbacks").Value()),
			d(m.Counter("fault.call_timeouts").Value()),
			d(m.Counter("fault.retries").Value()),
			d(m.Counter("fault.stragglers").Value()),
			d(m.Counter("fault.breaker_opens").Value()),
			d(msgs),
		})
	}
	return t
}
