package experiments

// F17: elastic federation churn. A chain federation with replicated
// fragments serves closed-loop load through three phases — steady state,
// churn (a replacement seller joins, one seller drains, one crashes, all
// mid-run), and recovery at the new membership. The acceptance bar is the
// robustness claim of the lifecycle subsystem: zero failed queries across
// every phase, with throughput recovering once the health-gated peer view
// has absorbed the membership changes.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/trading"
	"qtrade/internal/workload"
)

// f17Fed builds a chain federation with the given number of sellers
// (n1..nN; the buyer n0 holds its round-robin share too), every fragment
// replicated twice so any single seller's exit leaves full coverage, and
// load-aware pricing on so busy or draining sellers price themselves out of
// new work. It returns the federation plus the shared fault policy and peer
// directory the buyer-side churn machinery runs under.
func f17Fed(sellers int, seed int64) (*workload.Federation, workload.ChainOptions, *trading.FaultPolicy, *trading.Directory) {
	if sellers < 4 {
		panic("f17Fed: need at least 4 sellers so the crash and drain victims never co-hold a fragment")
	}
	opts := workload.ChainOptions{
		Relations: 3, RowsPerRel: 120, Parts: 2, Nodes: sellers + 1, Replicas: 2,
		Seed: seed, SkipOracleData: true,
		Configure: func(c *node.Config) {
			// Disable price caches (identical pricing cost whatever ran
			// before) and let admission pressure feed back into prices.
			c.PriceCacheSize = -1
			c.LoadAwarePricing = true
		},
	}
	f := workload.NewChain(opts)
	slow := make(map[string]float64, sellers)
	for i := 1; i <= sellers; i++ {
		slow[fmt.Sprintf("n%d", i)] = 2
	}
	f.Net.SetFaultPlan(&netsim.FaultPlan{Seed: seed, SlowNodeMS: slow})
	pol := &trading.FaultPolicy{
		CallTimeout: 2 * time.Second,
		MaxRetries:  2,
		Backoff:     time.Millisecond,
		Breakers: trading.NewBreakerSet(trading.BreakerConfig{
			Threshold: 3, Cooldown: 250 * time.Millisecond,
		}, nil),
	}
	dir := trading.NewDirectory(pol.Breakers)
	for _, n := range f.Nodes {
		for _, table := range n.Store().Tables() {
			if _, err := n.Store().TableStats(table); err != nil {
				panic(err)
			}
		}
	}
	return f, opts, pol, dir
}

// f17Run drives clients closed-loop goroutines through the recovery
// pipeline (OptimizeAndExecute: standing-offer substitution before
// re-optimization) and returns aggregate qps, p50/p95 wall latency in ms,
// and how many queries ultimately failed. during, when set, runs on its own
// goroutine as the churn controller; it receives the live count of finished
// queries so it can fire membership changes mid-run. All federation map
// access during the run happens on the controller goroutine — the workers
// only touch state captured here, so a concurrent JoinReplica cannot race
// them.
func f17Run(f *workload.Federation, opts workload.ChainOptions, pol *trading.FaultPolicy, dir *trading.Directory,
	clients, queriesPerClient int, during func(done *atomic.Int64)) (qps, p50, p95 float64, failed int64) {
	buyer := f.Nodes[f.Buyer]
	comm := f.Comm()
	var done, fails atomic.Int64
	lat := make([][]float64, clients)
	var wg, ctl sync.WaitGroup
	t0 := time.Now()
	if during != nil {
		ctl.Add(1)
		go func() { defer ctl.Done(); during(&done) }()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]float64, 0, queriesPerClient)
			for q := 0; q < queriesPerClient; q++ {
				sql := workload.ChainQuery(opts, 0.25+0.03*float64((c*queriesPerClient+q)%16))
				cfg := core.Config{ID: f.Buyer, Schema: f.Schema, Self: buyer, Faults: pol, Directory: dir}
				q0 := time.Now()
				_, _, _, err := core.OptimizeAndExecute(cfg, comm, &exec.Executor{Store: buyer.Store()}, sql, 3)
				if err != nil {
					fails.Add(1)
				} else {
					lat[c] = append(lat[c], float64(time.Since(q0).Microseconds())/1000)
				}
				done.Add(1)
			}
		}(c)
	}
	wg.Wait()
	ctl.Wait()
	wall := time.Since(t0).Seconds()
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Float64s(all)
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(len(all)) / wall, f15Pct(all, 0.50), f15Pct(all, 0.95), fails.Load()
}

// F17Churn runs the elastic-churn experiment: steady state, then a churn
// window where a replacement for the crash victim joins at 25% progress,
// one seller drains at 50%, and the crash victim dies at 75%, then a
// recovery window at the final membership (one joined, one draining, one
// crashed). Every row reports the phase's qps, latency percentiles, failed
// queries (the robustness bar: always 0) and the membership picture.
func F17Churn(sellers, clients, queriesPerClient int, seed int64) *Table {
	t := &Table{
		ID: "F17",
		Title: fmt.Sprintf("elastic churn: %d sellers, %d clients × %d queries, join+drain+crash mid-run",
			sellers, clients, queriesPerClient),
		Header: []string{"phase", "qps", "p50_ms", "p95_ms", "failed", "members", "draining", "crashed"},
	}
	f, opts, pol, dir := f17Fed(sellers, seed)
	crashID, drainID := "n2", "n4"
	joinID := fmt.Sprintf("n%d", sellers+1)

	record := func(phase string, qps, p50, p95 float64, failed int64) {
		members, draining, crashed := int64(0), int64(0), int64(0)
		for id := range f.Nodes {
			if id == f.Buyer {
				continue
			}
			members++
			if dir.State(id) == trading.StateDraining {
				draining++
			}
			if f.Net.Crashed(id) {
				crashed++
			}
		}
		t.Rows = append(t.Rows, []string{phase, f2(qps), f2(p50), f2(p95), d(failed), d(members), d(draining), d(crashed)})
	}

	qps, p50, p95, failed := f17Run(f, opts, pol, dir, clients, queriesPerClient, nil)
	record("steady", qps, p50, p95, failed)

	total := int64(clients * queriesPerClient)
	churn := func(done *atomic.Int64) {
		wait := func(k int64) {
			for done.Load() < k {
				time.Sleep(time.Millisecond)
			}
		}
		// Grow first: the joiner mirrors the crash victim's fragments, so
		// the later crash costs no coverage even transiently.
		wait(total / 4)
		if _, err := f.JoinReplica(joinID, crashID, opts.Configure); err != nil {
			panic(err)
		}
		wait(total / 2)
		f.Nodes[drainID].Drain("elastic scale-down")
		dir.MarkState(drainID, trading.StateDraining)
		wait(3 * total / 4)
		f.Net.CrashNode(crashID)
	}
	qps, p50, p95, failed = f17Run(f, opts, pol, dir, clients, queriesPerClient, churn)
	record("churn", qps, p50, p95, failed)

	qps, p50, p95, failed = f17Run(f, opts, pol, dir, clients, queriesPerClient, nil)
	record("recovered", qps, p50, p95, failed)
	return t
}
