package experiments

import (
	"reflect"
	"strconv"
	"testing"
)

// TestF13ParallelSmoke is the fixed-seed parallel-pricing smoke test. It
// deliberately asserts nothing about wall-clock speedup — that is the
// benchmark's job — only structure, that the repeated-iteration cache pass
// hits, and (the load-bearing invariant) that worker count leaves the
// offers byte-identical to the serial path.
func TestF13ParallelSmoke(t *testing.T) {
	tab := F13ParallelPricing([]int{2, 4}, []int{1, 4}, 1, 7)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	for _, row := range tab.Rows {
		hitPct, err := strconv.ParseFloat(row[col("cache_hit_pct")], 64)
		if err != nil {
			t.Fatalf("cache_hit_pct: %v", err)
		}
		if hitPct < 50 {
			t.Fatalf("repeated iteration hit only %.1f%% of pricings\n%v", hitPct, row)
		}
		if offers, _ := strconv.Atoi(row[col("offers")]); offers == 0 {
			t.Fatalf("seller offered nothing\n%v", row)
		}
	}

	// Byte-identity: the parallel, cached seller must produce exactly the
	// offers of the serial, uncached one for the same RFB.
	serial, opts := f13Seller(1, -1, nil, 7)
	want, err := serial.RequestBids(f13RFB(opts, 4, "f13-ident"))
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Offers) == 0 {
		t.Fatal("serial seller offered nothing")
	}
	par, popts := f13Seller(8, 0, nil, 7)
	got, err := par.RequestBids(f13RFB(popts, 4, "f13-ident"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel offers diverge from serial:\nserial:   %+v\nparallel: %+v", want, got)
	}
}
