package experiments

import (
	"strconv"
	"testing"
)

func f18Cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("F18 cell [%d][%d] = %q: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

// TestF18StreamingSmoke asserts the shape of the streaming claim at CI
// scale, with loose bounds so scheduler noise cannot flake it:
//   - both delivery modes return every row (checked inside F18Streaming);
//   - the streamed first batch lands before the materialized answer
//     finishes at the largest cardinality;
//   - first-batch latency is roughly independent of result size;
//   - streamed peak live memory stays well below the materialized peak,
//     which must grow with cardinality.
func TestF18StreamingSmoke(t *testing.T) {
	tab := F18Streaming([]int{400, 6400}, 1)
	if len(tab.Rows) != 2 {
		t.Fatalf("F18 rows: %d", len(tab.Rows))
	}
	last := len(tab.Rows) - 1
	sFirstSmall := f18Cell(t, tab, 0, 1)
	sFirstLarge := f18Cell(t, tab, last, 1)
	matTotalLarge := f18Cell(t, tab, last, 4)
	sPeakLarge := f18Cell(t, tab, last, 5)
	mPeakSmall := f18Cell(t, tab, 0, 6)
	mPeakLarge := f18Cell(t, tab, last, 6)

	if sFirstLarge >= matTotalLarge {
		t.Errorf("first streamed batch (%.2fms) must beat materialized completion (%.2fms) at 6400 rows",
			sFirstLarge, matTotalLarge)
	}
	// 16x the result size may cost at most ~4x the first-batch latency
	// (generous: the claim is ~flat, the bound only guards regressions that
	// reintroduce full materialization before the first row).
	if sFirstLarge > 4*sFirstSmall+1 {
		t.Errorf("first-batch latency grew with result size: %.2fms at 400 rows, %.2fms at 6400",
			sFirstSmall, sFirstLarge)
	}
	if sPeakLarge >= mPeakLarge {
		t.Errorf("streamed peak (%.1fkb) must stay below materialized peak (%.1fkb)",
			sPeakLarge, mPeakLarge)
	}
	if mPeakLarge <= mPeakSmall {
		t.Errorf("materialized peak must grow with result size: %.1fkb -> %.1fkb",
			mPeakSmall, mPeakLarge)
	}
}
