package experiments

// F18: streaming row-batch delivery. The chunked fetch protocol exists to
// decouple two costs from result cardinality: the latency to the first
// answer row and how much of the answer the buyer must hold at once. A
// single-relation federation sweeps the result size and runs the same
// purchased plan both ways — streamed through ExecuteResultStream (batched
// continuations, nothing retained) and materialized through the
// pre-streaming one-shot fetch (FetchBatchRows < 0). The claim to
// reproduce: stream_first_ms stays roughly flat as rows grow while
// mat_first_ms (== its total: the first row of a materialized answer
// arrives when the whole answer does) grows with cardinality, and
// stream_peak_kb — the largest single batch the buyer buffers, in the wire
// accounting every message in the system is costed with — stays bounded by
// the batch size while mat_peak_kb is the whole answer and grows linearly.
// (Wire-accounted buffering, not live-heap deltas: the in-process netsim
// shares row memory between buyer and seller, so heap samples measure the
// simulator, not the protocol.)

import (
	"fmt"
	"time"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

// f18Fed builds a small federation whose single relation's cardinality is
// the swept variable: two partitions round-robined over three nodes, so the
// buyer always purchases at least one remote leaf and result transfer
// dominates as rows grow.
func f18Fed(rows int, seed int64) *workload.Federation {
	return workload.NewChain(workload.ChainOptions{
		Relations: 1, RowsPerRel: rows, Parts: 2, Nodes: 3, Replicas: 1,
		Seed: seed, SkipOracleData: true,
	})
}

const f18Query = "SELECT r1.pk, r1.fk, r1.v FROM r1"

func f18MS(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// rowsKB sizes a batch of rows with the same per-value accounting the
// trading messages use for wire costs.
func rowsKB(rows []value.Row) float64 {
	n := 0
	for _, r := range rows {
		n += 24
		for _, v := range r {
			if v.K == value.Str {
				n += len(v.S) + 4
			} else {
				n += 8
			}
		}
	}
	return float64(n) / 1024
}

// f18Streamed optimizes and pulls the answer through the cursor pipeline,
// retaining nothing. It reports time to the first batch, time to drain, the
// peak buffered batch, and the row count.
func f18Streamed(f *workload.Federation, seed int64) (firstMS, totalMS, peakKB float64, rows int64, err error) {
	cfg := f.BuyerConfig()
	res, err := core.Optimize(cfg, f.Comm(), f18Query)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	t0 := time.Now()
	cur, _, err := core.ExecuteResultStream(f.Comm(),
		&exec.Executor{Store: f.Nodes[f.Buyer].Store()}, res, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cur.Close()
	for {
		b, err := cur.Next()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if len(b) == 0 {
			break
		}
		if rows == 0 {
			firstMS = f18MS(t0)
		}
		rows += int64(len(b))
		if kb := rowsKB(b); kb > peakKB {
			peakKB = kb
		}
	}
	totalMS = f18MS(t0)
	if err := cur.Close(); err != nil {
		return 0, 0, 0, 0, err
	}
	return firstMS, totalMS, peakKB, rows, nil
}

// f18Materialized runs the same purchase through the one-shot path. The
// first row is available only when the whole answer is: firstMS == totalMS
// by construction, and the buyer buffers the entire answer at once.
func f18Materialized(f *workload.Federation, seed int64) (totalMS, peakKB float64, rows int64, err error) {
	cfg := f.BuyerConfig()
	cfg.FetchBatchRows = -1
	res, err := core.Optimize(cfg, f.Comm(), f18Query)
	if err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	out, err := core.ExecuteResult(f.Comm(),
		&exec.Executor{Store: f.Nodes[f.Buyer].Store()}, res)
	if err != nil {
		return 0, 0, 0, err
	}
	totalMS = f18MS(t0)
	peakKB = rowsKB(out.Rows)
	rows = int64(len(out.Rows))
	return totalMS, peakKB, rows, nil
}

// F18Streaming sweeps result cardinality and compares streamed against
// materialized delivery of the identical purchased plan.
func F18Streaming(cards []int, seed int64) *Table {
	t := &Table{
		ID:    "F18",
		Title: "streaming delivery: first-row latency and peak memory vs result size",
		Header: []string{"rows", "stream_first_ms", "mat_first_ms",
			"stream_total_ms", "mat_total_ms", "stream_peak_kb", "mat_peak_kb"},
	}
	for _, card := range cards {
		sFirst, sTotal, sPeak, sRows, err := f18Streamed(f18Fed(card, seed), seed)
		if err != nil {
			panic(fmt.Sprintf("F18 streamed %d rows: %v", card, err))
		}
		mTotal, mPeak, mRows, err := f18Materialized(f18Fed(card, seed), seed)
		if err != nil {
			panic(fmt.Sprintf("F18 materialized %d rows: %v", card, err))
		}
		if sRows != int64(card) || mRows != int64(card) {
			panic(fmt.Sprintf("F18 row counts diverged at %d: streamed %d, materialized %d",
				card, sRows, mRows))
		}
		t.Rows = append(t.Rows, []string{
			d(int64(card)), f2(sFirst), f2(mTotal), f2(sTotal), f2(mTotal),
			f1(sPeak), f1(mPeak),
		})
	}
	return t
}
