package experiments

// F19: the query flight recorder and anomaly watchdog under fault injection.
// A chain federation runs the same query mix through four phases: a baseline
// with no observability attached, a recorded steady state (flight recorder +
// ledger + windowed metrics history + watchdog — the overhead column is the
// recorder's steady-state cost against the baseline), a phase where one
// seller turns slow mid-run, and a phase where a relation's statistics go
// stale (the estimates claim one row while the data holds hundreds). The
// acceptance bar: every query lands as exactly one dossier, the slow phase's
// queries are flagged by the latency SLO trigger and its metrics window by
// the watchdog's p95 rule, and the stale-stats phase's dossiers are flagged
// as cardinality blowouts.

import (
	"fmt"
	"strings"
	"time"

	"qtrade/internal/core"
	"qtrade/internal/exec"
	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/netsim"
	"qtrade/internal/obs"
	"qtrade/internal/stats"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

// f19Opts is the shared federation shape: 3-relation chain, every fragment
// replicated twice over four nodes (buyer n0 included).
func f19Opts(seed int64) workload.ChainOptions {
	return workload.ChainOptions{
		Relations: 3, RowsPerRel: 120, Parts: 2, Nodes: 4, Replicas: 2,
		Seed: seed, SkipOracleData: true,
	}
}

// f19Run executes one batch of chain queries end to end and returns the
// batch's wall time in ms. Observability (metrics, ledger, recorder) rides
// cfg; nil values keep the batch unobserved.
func f19Run(f *workload.Federation, opts workload.ChainOptions, queries int,
	metrics *obs.Metrics, led *ledger.Ledger, rec *flight.Recorder) float64 {
	buyer := f.Nodes[f.Buyer]
	comm := f.Comm()
	t0 := time.Now()
	for q := 0; q < queries; q++ {
		sql := workload.ChainQuery(opts, 0.25+0.05*float64(q%10))
		cfg := core.Config{ID: f.Buyer, Schema: f.Schema, Self: buyer,
			Metrics: metrics, Ledger: led, Flight: rec}
		res, err := core.Optimize(cfg, comm, sql)
		if err != nil {
			panic(fmt.Sprintf("F19 optimize: %v", err))
		}
		if _, err := core.ExecuteResult(comm, &exec.Executor{Store: buyer.Store()}, res); err != nil {
			panic(fmt.Sprintf("F19 execute: %v", err))
		}
	}
	return float64(time.Since(t0).Microseconds()) / 1000
}

// f19Triggers summarizes the trigger flags on the batch's dossiers (the n
// most recent) as "name=count" pairs.
func f19Triggers(rec *flight.Recorder, n int) string {
	counts := map[string]int{}
	order := []string{}
	for _, d := range rec.Recent(n) {
		for _, tr := range d.Triggers {
			if counts[tr] == 0 {
				order = append(order, tr)
			}
			counts[tr]++
		}
	}
	if len(order) == 0 {
		return "-"
	}
	parts := make([]string, len(order))
	for i, tr := range order {
		parts[i] = fmt.Sprintf("%s=%d", tr, counts[tr])
	}
	return strings.Join(parts, ",")
}

// F19Flight runs the flight-recorder experiment: queriesPerPhase queries per
// phase, windows closed deterministically at phase boundaries (one batch =
// one metrics window), anomalies counted from the watchdog.
func F19Flight(queriesPerPhase int, seed int64) *Table {
	t := &Table{
		ID: "F19",
		Title: fmt.Sprintf("flight recorder + watchdog: %d queries/phase, slow seller and stale stats mid-run",
			queriesPerPhase),
		Header: []string{"phase", "queries", "wall_ms", "dossiers", "flagged", "triggers", "anomalies", "overhead_pct"},
	}
	opts := f19Opts(seed)

	// Baseline: identical federation and query mix, nothing attached. Two
	// batches to match the recorded steady state's sample count.
	base := workload.NewChain(opts)
	baseWall := f19Run(base, opts, 2*queriesPerPhase, nil, nil, nil)
	t.Rows = append(t.Rows, []string{"baseline", d(int64(2 * queriesPerPhase)),
		f2(baseWall), "0", "0", "-", "0", "-"})

	// Recorded federation: recorder + ledger + history + watchdog. Windows
	// close at phase boundaries via Sample, so each phase is one window.
	f := workload.NewChain(opts)
	metrics := obs.NewMetrics()
	led := ledger.New(0)
	rec := flight.NewRecorder(8 * queriesPerPhase)
	// The in-process simulation executes far cheaper than the cost model
	// quotes, so the default quoted-vs-measured band would flag every steady
	// query as a (low) cost outlier and drown the phase signal. Widen the
	// band: this experiment demonstrates the latency and cardinality
	// triggers; the cost trigger is pinned by the flight package's tests.
	trig0 := rec.Triggers()
	trig0.CostRatioFactor = 1e6
	rec.SetTriggers(trig0)
	hist := obs.NewHistory(metrics, time.Second, 16)
	wd := flight.NewWatchdog(flight.WatchdogConfig{}, led, metrics)
	wd.Attach(hist)

	phase := func(name string, wall, overhead float64, prevAdmitted, prevFlagged int64, anomalies int) {
		admitted, flagged := rec.Stats()
		over := "-"
		if overhead >= 0 {
			over = f2(overhead)
		}
		t.Rows = append(t.Rows, []string{name, d(int64(queriesPerPhase)), f2(wall),
			d(admitted - prevAdmitted), d(flagged - prevFlagged),
			f19Triggers(rec, queriesPerPhase), d(int64(anomalies)), over})
	}

	// Steady state: two batches, two windows — the first seeds the watchdog
	// baselines, the second confirms them. Overhead compares against the
	// baseline run of the same 2×queriesPerPhase batch.
	steadyWall := f19Run(f, opts, queriesPerPhase, metrics, led, rec)
	hist.Sample()
	steadyWall += f19Run(f, opts, queriesPerPhase, metrics, led, rec)
	hist.Sample()
	admitted, flagged := rec.Stats()
	overhead := 100 * (steadyWall - baseWall) / baseWall
	t.Rows = append(t.Rows, []string{"steady", d(int64(2 * queriesPerPhase)), f2(steadyWall),
		d(admitted), d(flagged), f19Triggers(rec, 2*queriesPerPhase),
		d(int64(len(wd.Anomalies()))), f2(overhead)})

	// Slow seller: n1 answers every call 25ms late. The SLO trigger is armed
	// between the steady per-query wall and the straggler's, so exactly the
	// slow phase's queries are captured as outliers; the watchdog flags the
	// window against the steady baselines.
	steadyPerQuery := steadyWall / float64(2*queriesPerPhase)
	trig := rec.Triggers()
	trig.SlowMS = 2*steadyPerQuery + 10
	rec.SetTriggers(trig)
	f.Net.SetFaultPlan(&netsim.FaultPlan{Seed: seed, SlowNodeMS: map[string]float64{"n1": 25}})
	prevAnoms := len(wd.Anomalies())
	prevAdmitted, prevFlagged := rec.Stats()
	slowWall := f19Run(f, opts, queriesPerPhase, metrics, led, rec)
	hist.Sample()
	phase("slow_seller", slowWall, -1, prevAdmitted, prevFlagged, len(wd.Anomalies())-prevAnoms)

	// Stale statistics: every replica of r2 claims a single row while the
	// fragments hold dozens, so sellers quote tiny cardinalities and the
	// executed plans blow past them — the card_blowout trigger.
	f.Net.SetFaultPlan(nil)
	trig.SlowMS = 0
	rec.SetTriggers(trig)
	def, _ := f.Schema.Table("r2")
	for _, n := range f.Nodes {
		for _, pid := range n.Store().PartIDs("r2") {
			var first []value.Row
			if err := n.Store().Scan("r2", pid, nil, func(r value.Row) bool {
				first = append(first, r)
				return false
			}); err != nil {
				panic(err)
			}
			if err := n.Store().SetFragmentStats("r2", pid, stats.FromRows(def, first)); err != nil {
				panic(err)
			}
		}
	}
	prevAnoms = len(wd.Anomalies())
	prevAdmitted, prevFlagged = rec.Stats()
	staleWall := f19Run(f, opts, queriesPerPhase, metrics, led, rec)
	hist.Sample()
	phase("stale_stats", staleWall, -1, prevAdmitted, prevFlagged, len(wd.Anomalies())-prevAnoms)
	return t
}
