package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/workload"
)

// f15Clients is the closed-loop client sweep the registered F15 specs run;
// qtbench's -clients flag overrides it through SetF15Clients.
var f15Clients = []int{1, 2, 4}

// SetF15Clients overrides the closed-loop client sweep used by the F15 specs
// in QuickSpecs and FullSpecs. Empty input keeps the default.
func SetF15Clients(clients []int) {
	if len(clients) > 0 {
		f15Clients = clients
	}
}

// F15Throughput measures the concurrent buyer end to end (extension): every
// seller of a chain federation answers over links that sleep for real
// (SlowNodeMS), so negotiation rounds are latency-bound the way a deployed
// federation's are. Phase A runs a single client per federation size and
// compares strictly serial RFB dispatch (workers=1) against the full
// parallel fan-out (workers=0): the x_vs_base column is the fan-out speedup,
// which grows with the number of sellers a round must reach. Phase B holds
// the widest federation and scales closed-loop clients — each runs
// optimize+execute back to back — reporting aggregate qps with p50/p95
// per-query latency; x_vs_base is the qps multiple over the single-client
// run. Price caches are disabled so every configuration pays full pricing
// and the comparison is fair.
func F15Throughput(sellerCounts, clientCounts []int, queriesPerClient int, seed int64) *Table {
	t := &Table{
		ID:     "F15",
		Title:  "multi-client throughput (chain federation, slow sellers, parallel fan-out)",
		Header: []string{"sellers", "clients", "workers", "queries", "qps", "p50_ms", "p95_ms", "x_vs_base"},
	}
	widest := 0
	for _, s := range sellerCounts {
		if s > widest {
			widest = s
		}
	}
	// Phase A: one client, serial dispatch vs full fan-out.
	for _, sellers := range sellerCounts {
		f, opts := f15Fed(sellers, seed)
		serialQPS := 0.0
		for _, workers := range []int{1, 0} {
			qps, p50, p95 := f15Run(f, opts, 1, workers, queriesPerClient)
			if workers == 1 {
				serialQPS = qps
			}
			x := 1.0
			if serialQPS > 0 {
				x = qps / serialQPS
			}
			t.Rows = append(t.Rows, []string{
				d(int64(sellers)), "1", d(int64(workers)), d(int64(queriesPerClient)),
				f2(qps), f2(p50), f2(p95), f2(x),
			})
		}
	}
	// Phase B: closed-loop client scaling at the widest federation.
	f, opts := f15Fed(widest, seed)
	baseQPS := 0.0
	for _, clients := range clientCounts {
		qps, p50, p95 := f15Run(f, opts, clients, 0, queriesPerClient)
		if baseQPS == 0 {
			baseQPS = qps
		}
		x := 1.0
		if baseQPS > 0 {
			x = qps / baseQPS
		}
		t.Rows = append(t.Rows, []string{
			d(int64(widest)), d(int64(clients)), "0", d(int64(clients * queriesPerClient)),
			f2(qps), f2(p50), f2(p95), f2(x),
		})
	}
	return t
}

// f15Fed builds a chain federation with the given number of sellers (nodes
// n1..nN; the buyer n0 holds its round-robin share of fragments too). Every
// call to a seller sleeps a fixed 4 ms, and statistics and price caches are
// pre-arranged so timings compare negotiation and delivery, not lazy stats
// construction or cache warmth.
func f15Fed(sellers int, seed int64) (*workload.Federation, workload.ChainOptions) {
	opts := workload.ChainOptions{
		Relations: 3, RowsPerRel: 120, Parts: 2, Nodes: sellers + 1,
		Seed: seed, SkipOracleData: true,
		// Disable price caches: repeated sweeps over one federation must pay
		// identical pricing cost whatever ran before them.
		Configure: func(c *node.Config) { c.PriceCacheSize = -1 },
	}
	f := workload.NewChain(opts)
	slow := make(map[string]float64, sellers)
	for i := 1; i <= sellers; i++ {
		slow[fmt.Sprintf("n%d", i)] = 4
	}
	f.Net.SetFaultPlan(&netsim.FaultPlan{Seed: seed, SlowNodeMS: slow})
	for _, n := range f.Nodes {
		for _, table := range n.Store().Tables() {
			if _, err := n.Store().TableStats(table); err != nil {
				panic(err)
			}
		}
	}
	return f, opts
}

// f15Run drives clients closed-loop goroutines, each optimizing and
// executing queriesPerClient chain queries (distinct range filters, so
// concurrent negotiations never share a query) through the shared buyer, and
// returns aggregate qps with p50/p95 per-query wall latency in ms.
func f15Run(f *workload.Federation, opts workload.ChainOptions, clients, workers, queriesPerClient int) (qps, p50, p95 float64) {
	lat := make([][]float64, clients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]float64, 0, queriesPerClient)
			for q := 0; q < queriesPerClient; q++ {
				sql := workload.ChainQuery(opts, 0.25+0.03*float64((c*queriesPerClient+q)%16))
				cfg := f.BuyerConfig()
				cfg.Workers = workers
				q0 := time.Now()
				res, err := f.Optimize(cfg, sql)
				if err != nil {
					panic(err)
				}
				if _, err := f.Execute(res); err != nil {
					panic(err)
				}
				lat[c] = append(lat[c], float64(time.Since(q0).Microseconds())/1000)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Float64s(all)
	if wall <= 0 {
		wall = 1e-9
	}
	return float64(len(all)) / wall, f15Pct(all, 0.50), f15Pct(all, 0.95)
}

// f15Pct reads the p-th percentile (0..1) of an ascending-sorted sample.
func f15Pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}
