// Package experiments regenerates every table and figure of the paper's
// evaluation (reconstructed — see DESIGN.md "Source-text note"): plan
// quality against full-knowledge baselines, scalability in nodes, message
// counts, convergence, and the partitioning / plan-generator / strategy /
// view / protocol / replication sweeps. Each driver returns a Table whose
// rows are what cmd/qtbench prints and what EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"qtrade/internal/baseline"
	"qtrade/internal/catalog"
	"qtrade/internal/core"
	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/ledger"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/plan"
	"qtrade/internal/storage"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

// Table is one regenerated experiment result.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }

// chainFed builds a chain federation for optimization-only experiments.
func chainFed(opts workload.ChainOptions) (*workload.Federation, workload.ChainOptions) {
	if opts.RowsPerRel == 0 {
		opts.RowsPerRel = 240
	}
	if opts.Parts == 0 {
		opts.Parts = 2
	}
	if opts.Replicas == 0 {
		opts.Replicas = 2
	}
	opts.SkipOracleData = true
	return workload.NewChain(opts), opts
}

// obsTracer/obsMetrics, when set via SetObs, are injected into every
// optimization the drivers run — buyer config and seller nodes alike — so
// cmd/qtbench can export a trace or metrics snapshot of an experiment run.
var (
	obsTracer  *obs.Tracer
	obsMetrics *obs.Metrics
)

// SetObs registers a tracer and metrics registry for all subsequent
// experiment optimizations; nil, nil detaches.
func SetObs(tr *obs.Tracer, m *obs.Metrics) { obsTracer, obsMetrics = tr, m }

// expLedger, when set via SetLedger, audits every experiment negotiation so
// cmd/qtbench -ledger can print a calibration report after a run.
var expLedger *ledger.Ledger

// SetLedger registers a trading ledger for all subsequent experiment
// optimizations; nil detaches.
func SetLedger(l *ledger.Ledger) { expLedger = l }

// instrument injects the registered observability into one optimization.
func instrument(f *workload.Federation, cfg *core.Config) {
	if expLedger != nil {
		cfg.Ledger = expLedger
		f.SetLedger(expLedger)
	}
	if obsTracer == nil && obsMetrics == nil {
		return
	}
	cfg.Tracer = obsTracer
	cfg.Metrics = obsMetrics
	f.SetObs(obsTracer, obsMetrics)
}

// optimizeQT runs one QT optimization and returns the result plus the
// network message/byte counters it consumed.
func optimizeQT(f *workload.Federation, cfg core.Config, q string) (*core.Result, int64, int64, error) {
	f.Net.Reset()
	instrument(f, &cfg)
	res, err := f.Optimize(cfg, q)
	if err != nil {
		return nil, 0, 0, err
	}
	msgs, bytes := f.Net.Stats()
	return res, msgs, bytes, nil
}

// T1PlanQuality compares QT plans against the full-knowledge centralized
// DP, IDP(2,5) and naive data shipping, as the query grows from 2 to
// maxJoins relations. Estimated response times come from each optimizer's
// own cost model (so their ratio includes estimator bias); the meas_ columns
// actually execute the QT and centralized plans over the simulated
// federation and report measured wall microseconds, the bias-free
// comparison.
func T1PlanQuality(maxJoins, nodes int, seed int64) *Table {
	t := &Table{
		ID:     "T1",
		Title:  "plan quality vs centralized DP (est = optimizer estimates, meas = executed)",
		Header: []string{"relations", "centralDP_ms", "QT_est", "IDP_est", "ship_est", "QT_meas_us", "central_meas_us"},
	}
	for k := 2; k <= maxJoins; k++ {
		f, opts := chainFed(workload.ChainOptions{Relations: k, Nodes: nodes, Seed: seed})
		q := workload.ChainQuery(opts, 0.5)
		gv := baseline.NewGlobalView(f.Schema, nil, f.Nodes)
		central, err := baseline.Centralized(gv, f.Buyer, q, 0)
		if err != nil {
			continue
		}
		idp, err := baseline.Centralized(gv, f.Buyer, q, 5)
		if err != nil {
			continue
		}
		ship, err := baseline.DataShipping(gv, f.Buyer, q)
		if err != nil {
			continue
		}
		res, _, _, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			continue
		}
		qtMeas, err1 := measureQT(f, res)
		cenMeas, err2 := measurePlan(f, central.Root)
		if err1 != nil || err2 != nil {
			continue
		}
		ref := central.ResponseTime
		t.Rows = append(t.Rows, []string{
			d(int64(k)), f2(ref),
			f2(res.Candidate.ResponseTime / ref),
			f2(idp.ResponseTime / ref),
			f2(ship.ResponseTime / ref),
			f1(qtMeas), f1(cenMeas),
		})
	}
	return t
}

// measureQT executes a QT result and returns wall microseconds.
func measureQT(f *workload.Federation, res *core.Result) (float64, error) {
	start := time.Now()
	if _, err := f.Execute(res); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()) / 1000, nil
}

// measurePlan executes a baseline plan over the federation and returns wall
// microseconds.
func measurePlan(f *workload.Federation, root plan.Node) (float64, error) {
	comm := f.Comm()
	ex := &exec.Executor{
		Store: f.Nodes[f.Buyer].Store(),
		Fetch: func(nodeID, sql, offerID string) (*exec.Result, error) {
			resp, err := comm.Fetch(nodeID, trading.ExecReq{SQL: sql, OfferID: offerID})
			if err != nil {
				return nil, err
			}
			cols := make([]expr.ColumnID, len(resp.Cols))
			for i, c := range resp.Cols {
				cols[i] = expr.ColumnID{Table: c.Table, Name: c.Name}
			}
			return &exec.Result{Cols: cols, Rows: resp.Rows}, nil
		},
	}
	start := time.Now()
	if _, err := ex.Run(root); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Nanoseconds()) / 1000, nil
}

// T2StarPlanQuality is T1 on bushy (star) join spaces: a fact table joined
// with a growing number of dimension tables scattered across nodes.
func T2StarPlanQuality(maxDims, nodes int, seed int64) *Table {
	t := &Table{
		ID:     "T2",
		Title:  "star-schema plan quality vs centralized DP",
		Header: []string{"dims", "centralDP_ms", "QT_est", "ship_est", "QT_meas_us", "central_meas_us"},
	}
	for dims := 2; dims <= maxDims; dims++ {
		opts := workload.StarOptions{Dims: dims, FactRows: 300, DimRows: 30, FactParts: 2, Nodes: nodes, Seed: seed, SkipOracle: true}
		f := workload.NewStar(opts)
		q := workload.StarQuery(opts, 0.5)
		gv := baseline.NewGlobalView(f.Schema, nil, f.Nodes)
		central, err := baseline.Centralized(gv, f.Buyer, q, 0)
		if err != nil {
			continue
		}
		ship, err := baseline.DataShipping(gv, f.Buyer, q)
		if err != nil {
			continue
		}
		res, _, _, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			continue
		}
		qtMeas, err1 := measureQT(f, res)
		cenMeas, err2 := measurePlan(f, central.Root)
		if err1 != nil || err2 != nil {
			continue
		}
		ref := central.ResponseTime
		t.Rows = append(t.Rows, []string{
			d(int64(dims)), f2(ref),
			f2(res.Candidate.ResponseTime / ref),
			f2(ship.ResponseTime / ref),
			f1(qtMeas), f1(cenMeas),
		})
	}
	return t
}

// F1OptTimeVsNodes sweeps the federation size and reports optimization time
// (wall clock plus simulated network latency on the critical path) for QT
// and the centralized baseline, whose statistics collection and site-aware
// DP grow with the federation.
func F1OptTimeVsNodes(nodeCounts []int, joins int, seed int64) *Table {
	t := &Table{
		ID:     "F1",
		Title:  "optimization time vs federation size",
		Header: []string{"nodes", "QT_wall_ms", "QT_net_ms", "QT_total_ms", "central_wall_ms", "central_net_ms", "central_total_ms"},
	}
	for _, n := range nodeCounts {
		f, opts := chainFed(workload.ChainOptions{Relations: joins, Nodes: n, Seed: seed})
		q := workload.ChainQuery(opts, 0.5)
		lat := f.Net.LatencyMS

		res, _, _, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			continue
		}
		qtWall := float64(res.Stats.WallTime.Microseconds()) / 1000
		// Each protocol round is one parallel request/response exchange.
		qtNet := float64(res.Stats.ProtocolRounds) * 2 * lat

		gv := baseline.NewGlobalView(f.Schema, nil, f.Nodes)
		start := time.Now()
		_, err = baseline.Centralized(gv, f.Buyer, q, 0)
		if err != nil {
			continue
		}
		cenWall := float64(time.Since(start).Microseconds()) / 1000
		// Statistics collection: one parallel round trip to every node, but
		// the responses serialize at the coordinator's link.
		cenNet := 2*lat + float64(n)*0.2*lat

		t.Rows = append(t.Rows, []string{
			d(int64(n)), f2(qtWall), f2(qtNet), f2(qtWall + qtNet),
			f2(cenWall), f2(cenNet), f2(cenWall + cenNet),
		})
	}
	return t
}

// F2MessagesVsNodes reports negotiation messages exchanged per optimization
// as the federation grows.
func F2MessagesVsNodes(nodeCounts []int, joins int, seed int64) *Table {
	t := &Table{
		ID:     "F2",
		Title:  "messages per optimization vs federation size",
		Header: []string{"nodes", "QT_msgs", "QT_bytes", "central_stat_msgs"},
	}
	for _, n := range nodeCounts {
		f, opts := chainFed(workload.ChainOptions{Relations: joins, Nodes: n, Seed: seed})
		q := workload.ChainQuery(opts, 0.5)
		_, msgs, bytes, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			continue
		}
		gv := baseline.NewGlobalView(f.Schema, nil, f.Nodes)
		t.Rows = append(t.Rows, []string{d(int64(n)), d(msgs), d(bytes), d(gv.StatMessages())})
	}
	return t
}

// F3Convergence traces the best-plan value over QT iterations.
func F3Convergence(joins, nodes int, seed int64) *Table {
	t := &Table{
		ID:     "F3",
		Title:  "convergence: best plan value per trading iteration",
		Header: []string{"iteration", "best_value_ms", "offer_pool"},
	}
	f, opts := chainFed(workload.ChainOptions{Relations: joins, Nodes: nodes, Seed: seed, Replicas: 2})
	q := workload.ChainQuery(opts, 0.5)
	cfg := f.BuyerConfig()
	cfg.MaxIterations = 8
	cfg.OnIteration = func(iter int, best float64, pool int) {
		t.Rows = append(t.Rows, []string{d(int64(iter)), f2(best), d(int64(pool))})
	}
	instrument(f, &cfg)
	if _, err := f.Optimize(cfg, q); err != nil {
		t.Rows = append(t.Rows, []string{"error", err.Error(), ""})
	}
	return t
}

// F4Partitions sweeps partitions per relation.
func F4Partitions(partCounts []int, seed int64) *Table {
	t := &Table{
		ID:     "F4",
		Title:  "effect of horizontal partitioning (3-way join, 8 nodes)",
		Header: []string{"parts/rel", "QT_value_ms", "QT_wall_ms", "QT_msgs", "offers"},
	}
	for _, p := range partCounts {
		f, opts := chainFed(workload.ChainOptions{Relations: 3, Nodes: 8, Parts: p, Seed: seed, RowsPerRel: 240})
		q := workload.ChainQuery(opts, 0.5)
		res, msgs, _, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			t.Rows = append(t.Rows, []string{d(int64(p)), "n/a", "", "", ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			d(int64(p)),
			f2(res.Candidate.ResponseTime),
			f2(float64(res.Stats.WallTime.Microseconds()) / 1000),
			d(msgs),
			d(int64(res.Stats.OffersReceived)),
		})
	}
	return t
}

// F5PlanGen compares the buyer plan generator algorithms as queries grow.
func F5PlanGen(maxJoins, nodes int, seed int64) *Table {
	t := &Table{
		ID:     "F5",
		Title:  "buyer plan generator: DP vs IDP-M(2,5) vs greedy",
		Header: []string{"relations", "DP_value", "DP_wall_ms", "IDP_value", "IDP_wall_ms", "greedy_value", "greedy_wall_ms"},
	}
	for k := 2; k <= maxJoins; k++ {
		f, opts := chainFed(workload.ChainOptions{Relations: k, Nodes: nodes, Seed: seed})
		q := workload.ChainQuery(opts, 0.5)
		row := []string{d(int64(k))}
		for _, mode := range []core.PlanGenMode{core.GenDP, core.GenIDP, core.GenGreedy} {
			cfg := f.BuyerConfig()
			cfg.Mode = mode
			res, _, _, err := optimizeQT(f, cfg, q)
			if err != nil {
				row = append(row, "n/a", "n/a")
				continue
			}
			row = append(row, f2(res.Candidate.ResponseTime),
				f2(float64(res.Stats.WallTime.Microseconds())/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// F6Strategies runs repeated negotiations with competitive sellers and
// reports the buyer-paid value and margins adapting over rounds.
func F6Strategies(rounds int, seed int64) *Table {
	t := &Table{
		ID:     "F6",
		Title:  "competitive pricing over repeated trading rounds",
		Header: []string{"round", "paid_value", "truthful_value", "avg_margin"},
	}
	var strategies []*trading.Competitive
	f := workload.NewTelco(workload.TelcoOptions{
		Seed: seed, CustomersPerOffice: 20, LinesPerCustomer: 3,
		Strategy: func() trading.SellerStrategy {
			s := trading.NewCompetitive()
			strategies = append(strategies, s)
			return s
		},
	})
	q := workload.TotalsQuery("Corfu", "Myconos")
	step := rounds / 10
	if step < 1 {
		step = 1
	}
	for r := 1; r <= rounds; r++ {
		cfg := f.BuyerConfig()
		instrument(f, &cfg)
		res, err := f.Optimize(cfg, q)
		if err != nil {
			break
		}
		var paid, truth float64
		for _, o := range res.Candidate.Offers {
			paid += o.Price
			truth += o.Props.TotalTime
		}
		var m float64
		for _, s := range strategies {
			m += s.Margin()
		}
		m /= float64(len(strategies))
		if r == 1 || r%step == 0 {
			t.Rows = append(t.Rows, []string{d(int64(r)), f2(paid), f2(truth), f2(m)})
		}
	}
	return t
}

// F7Views measures the benefit of the seller predicates analyser: the same
// aggregation query with and without materialized-view offers.
func F7Views(seed int64) *Table {
	t := &Table{
		ID:     "F7",
		Title:  "materialized-view offers (seller predicates analyser)",
		Header: []string{"views", "plan_value_ms", "purchases", "view_offers", "priced_offers", "empty_replies"},
	}
	q := `SELECT c.office, SUM(i.charge) AS total FROM customer c, invoiceline i
	      WHERE c.custid = i.custid GROUP BY c.office`
	for _, enabled := range []bool{false, true} {
		f := workload.NewTelco(workload.TelcoOptions{
			Seed: seed, CustomersPerOffice: 60, LinesPerCustomer: 4,
			Configure: func(c *node.Config) { c.DisableViews = !enabled },
		})
		if enabled {
			// Materialize the per-office-per-customer totals on corfu from
			// ground truth.
			viewSQL := `SELECT c.office, c.custid, SUM(i.charge) AS total FROM customer c, invoiceline i
			            WHERE c.custid = i.custid GROUP BY c.office, c.custid`
			truth, err := f.GroundTruth(viewSQL)
			if err == nil {
				_ = addViewToNode(f, "corfu", "officecusttotals", viewSQL, truth)
			}
		}
		res, _, _, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			continue
		}
		label := "disabled"
		if enabled {
			label = "enabled"
		}
		t.Rows = append(t.Rows, []string{
			label, f2(res.Candidate.ResponseTime), d(int64(len(res.Candidate.Offers))),
			d(int64(res.Stats.ViewOffers)), d(int64(res.Stats.OffersPriced)),
			d(int64(res.Stats.EmptyBidResponses))})
	}
	return t
}

// F8Protocols compares negotiation protocols with competitive sellers.
func F8Protocols(seed int64) *Table {
	t := &Table{
		ID:     "F8",
		Title:  "negotiation protocol ablation (competitive sellers)",
		Header: []string{"protocol", "paid_value", "plan_value_ms", "msgs", "rounds"},
	}
	protos := []trading.Protocol{
		trading.SealedBid{},
		trading.IterativeBid{MaxRounds: 4},
		trading.Bargain{MaxRounds: 4},
	}
	for _, p := range protos {
		f := workload.NewTelco(workload.TelcoOptions{
			Seed: seed, CustomersPerOffice: 30, LinesPerCustomer: 3,
			Strategy: func() trading.SellerStrategy { return trading.NewCompetitive() },
		})
		q := workload.TotalsQuery("Corfu", "Myconos")
		cfg := f.BuyerConfig()
		cfg.Protocol = p
		res, msgs, _, err := optimizeQT(f, cfg, q)
		if err != nil {
			continue
		}
		var paid float64
		for _, o := range res.Candidate.Offers {
			paid += o.Price
		}
		t.Rows = append(t.Rows, []string{
			p.Name(), f2(paid), f2(res.Candidate.ResponseTime), d(msgs),
			d(int64(res.Stats.ProtocolRounds))})
	}
	return t
}

// F9Replication sweeps replicas per fragment.
func F9Replication(replicaCounts []int, seed int64) *Table {
	t := &Table{
		ID:     "F9",
		Title:  "effect of replication (3-way join, 8 nodes)",
		Header: []string{"replicas", "QT_value_ms", "QT_msgs", "offers"},
	}
	for _, r := range replicaCounts {
		f, opts := chainFed(workload.ChainOptions{Relations: 3, Nodes: 8, Replicas: r, Seed: seed})
		q := workload.ChainQuery(opts, 0.5)
		res, msgs, _, err := optimizeQT(f, f.BuyerConfig(), q)
		if err != nil {
			t.Rows = append(t.Rows, []string{d(int64(r)), "n/a", "", ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			d(int64(r)), f2(res.Candidate.ResponseTime), d(msgs),
			d(int64(res.Stats.OffersReceived))})
	}
	return t
}

// F10Subcontract demonstrates the §3.5 subcontracting extension under
// restricted visibility: the buyer knows only one seller, which holds one of
// two needed partitions. Without subcontracting the query is unanswerable;
// with it, the visible seller purchases the missing fragment from a peer
// the buyer cannot see.
func F10Subcontract(seed int64) *Table {
	t := &Table{
		ID:     "F10",
		Title:  "subcontracting under restricted visibility (extension)",
		Header: []string{"subcontracting", "outcome", "plan_value_ms", "purchases", "priced_offers", "empty_replies"},
	}
	q := "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')"
	for _, enabled := range []bool{false, true} {
		f := workload.NewTelco(workload.TelcoOptions{
			Seed: seed, Offices: []string{"Corfu", "Myconos"},
			CustomersPerOffice: 25, InvoiceReplicas: 1,
		})
		if enabled {
			// Wire corfu to subcontract from myconos. Node configs are
			// fixed at construction, so rebuild corfu's peer hook through
			// the federation's network.
			net := f.Net
			f.Nodes["corfu"] = rebuildWithSubcontract(f, "corfu", net)
			net.Register("corfu", f.Nodes["corfu"])
		}
		// The buyer's world: only corfu.
		comm := &core.PeerComm{
			PeerMap: map[string]trading.Peer{"corfu": f.Net.Peer("hq", "corfu")},
			AwardFn: func(to string, aw trading.Award) error { return f.Net.Award("hq", to, aw) },
			FetchFn: func(to string, req trading.ExecReq) (trading.ExecResp, error) {
				return f.Net.Execute("hq", to, req)
			},
		}
		label := "disabled"
		if enabled {
			label = "enabled"
		}
		res, err := core.Optimize(core.Config{ID: "hq", Schema: f.Schema}, comm, q)
		if err != nil {
			t.Rows = append(t.Rows, []string{label, "unanswerable", "-", "-", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{label, "answered",
			f2(res.Candidate.ResponseTime), d(int64(len(res.Candidate.Offers))),
			d(int64(res.Stats.OffersPriced)), d(int64(res.Stats.EmptyBidResponses))})
	}
	return t
}

// rebuildWithSubcontract reconstructs a telco node with subcontracting
// enabled, copying its fragments.
func rebuildWithSubcontract(f *workload.Federation, id string, net interface {
	Peer(from, to string) trading.Peer
}) *node.Node {
	src := f.Nodes[id]
	n := node.New(node.Config{
		ID: id, Schema: f.Schema,
		SubcontractPeers: func() map[string]trading.Peer {
			peers := map[string]trading.Peer{}
			for other := range f.Nodes {
				if other != id && other != "hq" {
					peers[other] = net.Peer(id, other)
				}
			}
			return peers
		},
	})
	for _, table := range src.Store().Tables() {
		def, _ := f.Schema.Table(table)
		for _, pid := range src.Store().PartIDs(table) {
			if _, err := n.Store().CreateFragment(def, pid); err != nil {
				continue
			}
			var rows []value.Row
			_ = src.Store().Scan(table, pid, nil, func(r value.Row) bool {
				rows = append(rows, r)
				return true
			})
			_ = n.Store().Insert(table, pid, rows...)
		}
	}
	return n
}

// F11AggPushdown measures aggregate pushdown (extension): partial
// per-fragment aggregates merged at the buyer vs. shipping raw rows, on a
// WAN-ish network where transfers dominate.
func F11AggPushdown(seed int64) *Table {
	t := &Table{
		ID:     "F11",
		Title:  "aggregate pushdown on a slow network (extension)",
		Header: []string{"pushdown", "plan_value_ms", "bytes_shipped", "purchases"},
	}
	q := `SELECT c.office, SUM(i.charge) AS total, COUNT(*) AS n
	      FROM customer c, invoiceline i WHERE c.custid = i.custid
	      GROUP BY c.office`
	for _, enabled := range []bool{false, true} {
		slow := cost.Default()
		slow.BytesPerMS = 200
		f := workload.NewTelco(workload.TelcoOptions{
			Seed: seed, CustomersPerOffice: 60, LinesPerCustomer: 5, Model: slow,
			Configure: func(c *node.Config) { c.DisableAggPush = !enabled },
		})
		cfg := f.BuyerConfig()
		cfg.Cost = slow
		res, _, _, err := optimizeQT(f, cfg, q)
		if err != nil {
			continue
		}
		f.Net.Reset()
		if _, err := f.Execute(res); err != nil {
			continue
		}
		_, bytes := f.Net.Stats()
		label := "disabled"
		if enabled {
			label = "enabled"
		}
		t.Rows = append(t.Rows, []string{label, f2(res.Candidate.ResponseTime), d(bytes),
			d(int64(len(res.Candidate.Offers)))})
	}
	return t
}

// addViewToNode materializes rows into a node's view store.
func addViewToNode(f *workload.Federation, nodeID, name, sql string, truth trading.ExecResp) error {
	cols := make([]catalog.ColumnDef, len(truth.Cols))
	for i, c := range truth.Cols {
		cols[i] = catalog.ColumnDef{Name: c.Name, Kind: c.Kind}
	}
	return f.Nodes[nodeID].Store().AddView(&storage.MaterializedView{
		Name: name, SQL: sql, Columns: cols, Rows: truth.Rows,
	})
}

// Quick returns every experiment at CI-friendly scale.
func Quick(seed int64) []*Table { return runSpecs(QuickSpecs(seed)) }

// Full returns every experiment at paper scale (minutes of runtime).
func Full(seed int64) []*Table { return runSpecs(FullSpecs(seed)) }

// Spec is one runnable experiment: its table id plus a thunk that builds the
// federation and produces the table. Drivers only run when Run is called, so
// callers can filter by ID without paying for (or tracing) the rest.
type Spec struct {
	ID  string
	Run func() *Table
}

// QuickSpecs returns every experiment at quick scale, lazily.
func QuickSpecs(seed int64) []Spec {
	return []Spec{
		{"T1", func() *Table { return T1PlanQuality(4, 6, seed) }},
		{"T2", func() *Table { return T2StarPlanQuality(3, 5, seed) }},
		{"F1", func() *Table { return F1OptTimeVsNodes([]int{4, 8, 16}, 3, seed) }},
		{"F2", func() *Table { return F2MessagesVsNodes([]int{4, 8, 16}, 3, seed) }},
		{"F3", func() *Table { return F3Convergence(4, 8, seed) }},
		{"F4", func() *Table { return F4Partitions([]int{1, 2, 4}, seed) }},
		{"F5", func() *Table { return F5PlanGen(4, 6, seed) }},
		{"F6", func() *Table { return F6Strategies(10, seed) }},
		{"F7", func() *Table { return F7Views(seed) }},
		{"F8", func() *Table { return F8Protocols(seed) }},
		{"F9", func() *Table { return F9Replication([]int{1, 2}, seed) }},
		{"F10", func() *Table { return F10Subcontract(seed) }},
		{"F11", func() *Table { return F11AggPushdown(seed) }},
		{"F12", func() *Table { return F12Chaos(4, seed) }},
		{"F13", func() *Table { return F13ParallelPricing([]int{2, 6}, []int{1, 2, 4, 8}, 2, seed) }},
		{"F14", func() *Table { return F14TraceOverhead([]int{3, 5}, 4, seed) }},
		{"F15", func() *Table { return F15Throughput([]int{4, 8}, f15Clients, 4, seed) }},
		{"F16", func() *Table { return F16Calibration(6, seed) }},
		{"F17", func() *Table { return F17Churn(4, 3, 6, seed) }},
		{"F18", func() *Table { return F18Streaming([]int{400, 3200}, seed) }},
		{"F19", func() *Table { return F19Flight(8, seed) }},
	}
}

// FullSpecs returns every experiment at paper scale, lazily.
func FullSpecs(seed int64) []Spec {
	return []Spec{
		{"T1", func() *Table { return T1PlanQuality(7, 12, seed) }},
		{"T2", func() *Table { return T2StarPlanQuality(5, 8, seed) }},
		{"F1", func() *Table { return F1OptTimeVsNodes([]int{10, 20, 40, 80, 160, 320, 640}, 4, seed) }},
		{"F2", func() *Table { return F2MessagesVsNodes([]int{10, 20, 40, 80, 160, 320, 640}, 4, seed) }},
		{"F3", func() *Table { return F3Convergence(6, 16, seed) }},
		{"F4", func() *Table { return F4Partitions([]int{1, 2, 4, 8, 16}, seed) }},
		{"F5", func() *Table { return F5PlanGen(8, 10, seed) }},
		{"F6", func() *Table { return F6Strategies(50, seed) }},
		{"F7", func() *Table { return F7Views(seed) }},
		{"F8", func() *Table { return F8Protocols(seed) }},
		{"F9", func() *Table { return F9Replication([]int{1, 2, 3, 4}, seed) }},
		{"F10", func() *Table { return F10Subcontract(seed) }},
		{"F11", func() *Table { return F11AggPushdown(seed) }},
		{"F12", func() *Table { return F12Chaos(20, seed) }},
		{"F13", func() *Table { return F13ParallelPricing([]int{2, 6, 12}, []int{1, 2, 4, 8}, 5, seed) }},
		{"F14", func() *Table { return F14TraceOverhead([]int{3, 5, 7}, 40, seed) }},
		{"F15", func() *Table { return F15Throughput([]int{8, 16}, f15Clients, 12, seed) }},
		{"F16", func() *Table { return F16Calibration(20, seed) }},
		{"F17", func() *Table { return F17Churn(8, 4, 12, seed) }},
		{"F18", func() *Table { return F18Streaming([]int{400, 1600, 6400, 25600}, seed) }},
		{"F19", func() *Table { return F19Flight(24, seed) }},
	}
}

func runSpecs(specs []Spec) []*Table {
	out := make([]*Table, len(specs))
	for i, s := range specs {
		out[i] = s.Run()
	}
	return out
}
