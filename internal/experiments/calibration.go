package experiments

import (
	"fmt"

	"qtrade/internal/ledger"
	"qtrade/internal/netsim"
	"qtrade/internal/workload"
)

// F16Calibration measures how well sellers' quoted costs predict measured
// execution (extension): a chain federation runs a workload of executed
// queries with the trading ledger attached, once undisturbed and once with
// node n2 — a seller the buyer actually purchases from — made slow by a
// real per-call delay the cost model knows nothing about. The ledger's
// calibration layer compares each awarded offer's quoted TotalTime against
// the buyer-measured fetch wall time; per seller it reports bid/win/exec
// counts, the mean and p95 of the measured/quoted ratio, and the EWMA of
// the signed quote error. The honest baseline sellers should sit near a
// shared ratio; the slow seller's ratio and EWMA error should stand out
// only in the slow variant — that separation is what makes the report
// actionable for recalibrating a cost model.
func F16Calibration(queries int, seed int64) *Table {
	t := &Table{
		ID:    "F16",
		Title: "cost-model calibration: measured/quoted per seller (chain; slow variant delays n2)",
		Header: []string{"config", "seller", "bids", "wins", "win_rate", "execs",
			"mean_ratio", "p95_ratio", "ewma_err"},
	}
	for _, variant := range []struct {
		name string
		slow map[string]float64
	}{
		{"baseline", nil},
		{"slow-n2", map[string]float64{"n2": 5}},
	} {
		f, opts := chainFed(workload.ChainOptions{Relations: 3, Nodes: 4, Seed: seed})
		if variant.slow != nil {
			f.Net.SetFaultPlan(&netsim.FaultPlan{Seed: seed, SlowNodeMS: variant.slow})
		}
		led := ledger.New(2 * queries)
		f.SetLedger(led)
		for i := 0; i < queries; i++ {
			q := workload.ChainQuery(opts, 0.3+0.05*float64(i%8))
			cfg := f.BuyerConfig()
			cfg.Ledger = led
			res, err := f.Optimize(cfg, q)
			if err != nil {
				continue
			}
			if _, err := f.Execute(res); err != nil {
				continue
			}
		}
		f.SetLedger(nil)
		rep := led.Calibration()
		for _, s := range rep.Sellers {
			t.Rows = append(t.Rows, []string{
				variant.name, s.Seller, d(s.Bids), d(s.Wins), f2(s.WinRate),
				d(s.Execs), f2(s.MeanRatio), f2(s.P95Ratio),
				fmt.Sprintf("%+.2f", s.EWMAErr),
			})
		}
	}
	return t
}
