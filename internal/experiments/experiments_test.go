package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestT1PlanQualityShape(t *testing.T) {
	tab := T1PlanQuality(4, 6, 1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		qt := parseF(t, r[2])
		ship := parseF(t, r[4])
		// QT must stay within a small factor of the full-knowledge optimum
		// and beat (or at least not lose badly to) naive shipping.
		if qt > 3 {
			t.Fatalf("QT plan quality off: %v", r)
		}
		if qt > ship*2 {
			t.Fatalf("QT should not lose to shipping by 2x: %v", r)
		}
	}
}

func TestF1AndF2Shapes(t *testing.T) {
	f1 := F1OptTimeVsNodes([]int{4, 8}, 3, 1)
	if len(f1.Rows) != 2 {
		t.Fatalf("F1 rows: %v", f1.Rows)
	}
	f2t := F2MessagesVsNodes([]int{4, 8}, 3, 1)
	if len(f2t.Rows) != 2 {
		t.Fatalf("F2 rows: %v", f2t.Rows)
	}
	// Messages grow with nodes for both methods.
	qt4 := parseF(t, f2t.Rows[0][1])
	qt8 := parseF(t, f2t.Rows[1][1])
	if qt8 <= qt4 {
		t.Fatalf("QT messages must grow with nodes: %v", f2t.Rows)
	}
	cen4 := parseF(t, f2t.Rows[0][3])
	cen8 := parseF(t, f2t.Rows[1][3])
	if cen8 <= cen4 {
		t.Fatalf("central stat messages must grow: %v", f2t.Rows)
	}
}

func TestF3ConvergenceMonotone(t *testing.T) {
	tab := F3Convergence(4, 8, 1)
	if len(tab.Rows) == 0 {
		t.Fatal("no iterations traced")
	}
	prev := 1e18
	for _, r := range tab.Rows {
		if r[0] == "error" {
			t.Fatalf("convergence errored: %v", r)
		}
		v := parseF(t, r[1])
		if v > prev*1.0001 {
			t.Fatalf("best value must be non-increasing: %v", tab.Rows)
		}
		prev = v
	}
}

func TestF4PartitionsRuns(t *testing.T) {
	tab := F4Partitions([]int{1, 2, 4}, 1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	for _, r := range tab.Rows {
		if r[1] == "n/a" {
			t.Fatalf("partition sweep failed: %v", r)
		}
	}
}

func TestF5PlanGenOrdering(t *testing.T) {
	tab := F5PlanGen(4, 6, 1)
	for _, r := range tab.Rows {
		dp := parseF(t, r[1])
		idp := parseF(t, r[3])
		greedy := parseF(t, r[5])
		// DP is exhaustive: it can never be beaten on estimated value.
		if idp < dp*0.999 || greedy < dp*0.999 {
			t.Fatalf("DP must be optimal: %v", r)
		}
	}
}

func TestF6MarginsAdapt(t *testing.T) {
	tab := F6Strategies(10, 1)
	if len(tab.Rows) < 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	first := parseF(t, tab.Rows[0][3])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][3])
	if first == last {
		t.Fatalf("margins never adapted: %v", tab.Rows)
	}
	for _, r := range tab.Rows {
		paid := parseF(t, r[1])
		truth := parseF(t, r[2])
		if paid < truth*0.999 {
			t.Fatalf("paid below truthful cost: %v", r)
		}
	}
}

func TestF7ViewsImprovePlans(t *testing.T) {
	tab := F7Views(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	off := parseF(t, tab.Rows[0][1])
	on := parseF(t, tab.Rows[1][1])
	if on >= off {
		t.Fatalf("view offers must reduce plan value: off=%f on=%f", off, on)
	}
}

func TestF8ProtocolsReducePaid(t *testing.T) {
	tab := F8Protocols(1)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	sealed := parseF(t, tab.Rows[0][1])
	iter := parseF(t, tab.Rows[1][1])
	if iter > sealed*1.001 {
		t.Fatalf("iterative bidding must not pay more than sealed: %v", tab.Rows)
	}
	sealedMsgs := parseF(t, tab.Rows[0][3])
	iterMsgs := parseF(t, tab.Rows[1][3])
	if iterMsgs <= sealedMsgs {
		t.Fatalf("iterative bidding costs more messages: %v", tab.Rows)
	}
}

func TestF9ReplicationRuns(t *testing.T) {
	tab := F9Replication([]int{1, 2}, 1)
	for _, r := range tab.Rows {
		if r[1] == "n/a" {
			t.Fatalf("replication sweep failed: %v", r)
		}
	}
	one := parseF(t, tab.Rows[0][1])
	two := parseF(t, tab.Rows[1][1])
	if two > one*1.5 {
		t.Fatalf("replication should not hurt plan value badly: %v", tab.Rows)
	}
}

func TestQuickSuiteAndPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite in short mode")
	}
	tables := Quick(1)
	if len(tables) != 21 {
		t.Fatalf("tables: %d", len(tables))
	}
	var buf bytes.Buffer
	for _, tab := range tables {
		tab.Fprint(&buf)
	}
	out := buf.String()
	for _, id := range []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18", "F19"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Fatalf("missing table %s in output", id)
		}
	}
}

func TestT2StarShape(t *testing.T) {
	tab := T2StarPlanQuality(3, 5, 1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	for _, r := range tab.Rows {
		if qt := parseF(t, r[2]); qt > 3 {
			t.Fatalf("star QT quality off: %v", r)
		}
	}
}

func TestF11AggPushdownShape(t *testing.T) {
	tab := F11AggPushdown(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	off := parseF(t, tab.Rows[0][1])
	on := parseF(t, tab.Rows[1][1])
	if on >= off {
		t.Fatalf("pushdown must reduce plan value on a slow network: off=%f on=%f", off, on)
	}
	bytesOff := parseF(t, tab.Rows[0][2])
	bytesOn := parseF(t, tab.Rows[1][2])
	if bytesOn >= bytesOff {
		t.Fatalf("pushdown must ship fewer bytes: %f vs %f", bytesOn, bytesOff)
	}
}

func TestF10SubcontractShape(t *testing.T) {
	tab := F10Subcontract(1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	if tab.Rows[0][1] != "unanswerable" {
		t.Fatalf("without subcontracting the restricted query must fail: %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "answered" {
		t.Fatalf("with subcontracting it must succeed: %v", tab.Rows[1])
	}
}
