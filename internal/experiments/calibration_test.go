package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestF16CalibrationSmoke runs the calibration experiment at tiny scale and
// checks the report separates the slow seller from the honest ones.
func TestF16CalibrationSmoke(t *testing.T) {
	tab := F16Calibration(4, 11)
	if tab.ID != "F16" || len(tab.Rows) == 0 {
		t.Fatalf("table: %+v", tab)
	}
	cols := map[string]int{}
	for i, h := range tab.Header {
		cols[h] = i
	}
	execs := map[string]int64{} // config -> total measured executions
	var slowRatio, baseRatio float64
	for _, r := range tab.Rows {
		n, err := strconv.ParseInt(r[cols["execs"]], 10, 64)
		if err != nil {
			t.Fatalf("execs cell %q: %v", r[cols["execs"]], err)
		}
		execs[r[cols["config"]]] += n
		if r[cols["seller"]] == "n2" && n > 0 {
			v, err := strconv.ParseFloat(r[cols["mean_ratio"]], 64)
			if err != nil {
				t.Fatalf("ratio cell %q: %v", r[cols["mean_ratio"]], err)
			}
			switch r[cols["config"]] {
			case "baseline":
				baseRatio = v
			case "slow-n2":
				slowRatio = v
			}
		}
	}
	for _, cfgName := range []string{"baseline", "slow-n2"} {
		if execs[cfgName] == 0 {
			t.Fatalf("config %s recorded no executions:\n%s", cfgName, render(tab))
		}
	}
	// The injected 5ms delay dwarfs the sub-millisecond honest fetches: the
	// slow variant's n2 ratio must exceed the baseline's by a wide margin.
	if slowRatio == 0 || baseRatio == 0 {
		t.Fatalf("n2 recorded no executions in a variant:\n%s", render(tab))
	}
	if slowRatio < 2*baseRatio {
		t.Fatalf("slow seller not separated: baseline=%.2f slow=%.2f\n%s",
			baseRatio, slowRatio, render(tab))
	}
}

func render(tab *Table) string {
	var b strings.Builder
	tab.Fprint(&b)
	return b.String()
}
