package experiments

import (
	"strconv"
	"testing"
)

// TestF15ThroughputSmoke is the fixed-seed throughput smoke test. Wall-clock
// scaling claims belong to the benchmark and full_results; here only
// structure, sane latency ordering, and a deliberately loose fan-out speedup
// are asserted — the federation sleeps 4 ms per seller call, so even a
// single-core runner overlaps the waits.
func TestF15ThroughputSmoke(t *testing.T) {
	tab := F15Throughput([]int{2, 4}, []int{1, 2}, 2, 7)
	// Phase A: 2 seller counts x {serial, fan-out}; phase B: 2 client counts.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6:\n%v", len(tab.Rows), tab.Rows)
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	num := func(row []string, name string) float64 {
		v, err := strconv.ParseFloat(row[col(name)], 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		if qps := num(row, "qps"); qps <= 0 {
			t.Fatalf("qps %v not positive\n%v", qps, row)
		}
		p50, p95 := num(row, "p50_ms"), num(row, "p95_ms")
		if p50 <= 0 || p95 < p50 {
			t.Fatalf("latency percentiles out of order (p50=%v p95=%v)\n%v", p50, p95, row)
		}
	}
	// The widest phase-A fan-out row (sellers=4, workers=0) must beat serial
	// dispatch: four 4 ms seller calls overlapped cannot be slower than four
	// in sequence. Threshold is loose for noisy runners.
	fanout := tab.Rows[3]
	if fanout[col("sellers")] != "4" || fanout[col("workers")] != "0" {
		t.Fatalf("unexpected row order: %v", tab.Rows)
	}
	if x := num(fanout, "x_vs_base"); x < 1.1 {
		t.Fatalf("fan-out speedup %.2f at 4 sellers, want > 1.1\n%v", x, tab.Rows)
	}
}
