package experiments

import (
	"fmt"
	"time"

	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

// F13ParallelPricing measures parallel seller bid pricing (extension): one
// seller of a chain federation receives RFBs of growing width and prices
// them with a sweep of worker-pool sizes. The seller holds four of the six
// relations only partially, so every query's pricing includes subcontract
// probes — nested negotiations whose network calls sleep for real
// (SlowNodeMS on both peers) — making per-query pricing latency-bound the
// way a deployed federation's is; fanning the queries (and their probes)
// across the pool overlaps those waits. Reported per (width, workers):
// wall-clock per RFB, speedup over the serial path, and the price-cache hit
// rate of a repeated-iteration run (the buyer's iteration loop re-requests
// overlapping query sets under fresh RFBIDs).
func F13ParallelPricing(widths, workerCounts []int, reps int, seed int64) *Table {
	t := &Table{
		ID:     "F13",
		Title:  "parallel bid pricing + price cache (chain seller, slow subcontract peers)",
		Header: []string{"queries", "workers", "price_ms", "speedup", "cache_hit_pct", "offers"},
	}
	for _, width := range widths {
		serialMS := 0.0
		for _, workers := range workerCounts {
			// Timing pass: cache disabled so every rep pays full pricing.
			seller, opts := f13Seller(workers, -1, nil, seed)
			var offers int
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				rfb := f13RFB(opts, width, fmt.Sprintf("f13-%dq-%dw-r%d", width, workers, r))
				out, err := seller.RequestBids(rfb)
				if err != nil {
					panic(err)
				}
				offers = len(out.Offers)
			}
			ms := float64(time.Since(t0).Microseconds()) / 1000 / float64(reps)
			if workers == 1 {
				serialMS = ms
			}
			speedup := 1.0
			if serialMS > 0 && ms > 0 {
				speedup = serialMS / ms
			}
			// Cache pass: a second iteration re-requests the same queries
			// under a fresh RFBID, as the buyer's iteration loop does.
			m := obs.NewMetrics()
			cached, copts := f13Seller(workers, 0, m, seed)
			for it := 0; it < 2; it++ {
				if _, err := cached.RequestBids(f13RFB(copts, width, fmt.Sprintf("f13c-%dq-%dw-i%d", width, workers, it))); err != nil {
					panic(err)
				}
			}
			hits := m.Counter("node.n1.pricecache_hits").Value()
			misses := m.Counter("node.n1.pricecache_misses").Value()
			hitPct := 0.0
			if hits+misses > 0 {
				hitPct = 100 * float64(hits) / float64(hits+misses)
			}
			t.Rows = append(t.Rows, []string{
				d(int64(width)), d(int64(workers)),
				f2(ms), f2(speedup), f1(hitPct), d(int64(offers)),
			})
		}
	}
	return t
}

// f13Seller builds the chain federation and rebuilds seller n1 with
// subcontracting enabled, the given worker count and price-cache setting
// (cacheSize as in node.Config.PriceCacheSize). Every call to the two
// subcontract peers sleeps a fixed 4 ms, and statistics are pre-built
// everywhere so timings compare pure pricing, not lazy stats construction.
func f13Seller(workers, cacheSize int, m *obs.Metrics, seed int64) (*node.Node, workload.ChainOptions) {
	opts := workload.ChainOptions{
		Relations: 6, RowsPerRel: 240, Parts: 2, Nodes: 3,
		Seed: seed, SkipOracleData: true,
	}
	f := workload.NewChain(opts)
	f.Net.SetFaultPlan(&netsim.FaultPlan{
		Seed:       seed,
		SlowNodeMS: map[string]float64{"n0": 4, "n2": 4},
	})
	src := f.Nodes["n1"]
	n := node.New(node.Config{
		ID: "n1", Schema: f.Schema,
		Workers: workers, PriceCacheSize: cacheSize, Metrics: m,
		SubcontractPeers: func() map[string]trading.Peer {
			return map[string]trading.Peer{
				"n0": f.Net.Peer("n1", "n0"),
				"n2": f.Net.Peer("n1", "n2"),
			}
		},
	})
	for _, table := range src.Store().Tables() {
		def, _ := f.Schema.Table(table)
		for _, pid := range src.Store().PartIDs(table) {
			if _, err := n.Store().CreateFragment(def, pid); err != nil {
				panic(err)
			}
			var rows []value.Row
			if err := src.Store().Scan(table, pid, nil, func(r value.Row) bool {
				rows = append(rows, r)
				return true
			}); err != nil {
				panic(err)
			}
			if err := n.Store().Insert(table, pid, rows...); err != nil {
				panic(err)
			}
		}
	}
	for _, peer := range []*node.Node{n, f.Nodes["n0"], f.Nodes["n2"]} {
		for _, table := range peer.Store().Tables() {
			if _, err := peer.Store().TableStats(table); err != nil {
				panic(err)
			}
		}
	}
	return n, opts
}

// f13RFB requests width distinct chain queries (differing range filters).
func f13RFB(opts workload.ChainOptions, width int, rfbID string) trading.RFB {
	rfb := trading.RFB{RFBID: rfbID, BuyerID: "n0"}
	for q := 0; q < width; q++ {
		rfb.Queries = append(rfb.Queries, trading.QueryRequest{
			QID: fmt.Sprintf("q%d", q),
			SQL: workload.ChainQuery(opts, 0.35+0.04*float64(q)),
		})
	}
	return rfb
}
