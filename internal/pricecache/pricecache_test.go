package pricecache

import (
	"fmt"
	"testing"

	"qtrade/internal/cost"
	"qtrade/internal/localopt"
)

func key(sql string, epoch, statsV int64) Key {
	return Key{SQL: sql, Epoch: epoch, StatsVersion: statsV, CostHash: 42}
}

func entry() Entry { return Entry{Result: &localopt.Result{}} }

func TestGetPutAndStats(t *testing.T) {
	c := New(4)
	k := key("SELECT 1", 1, 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	e := entry()
	c.Put(k, e)
	got, ok := c.Get(k)
	if !ok || got.Result != e.Result {
		t.Fatal("stored entry not returned")
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/0", hits, misses, evictions)
	}
}

func TestEpochChangeMisses(t *testing.T) {
	c := New(4)
	c.Put(key("q", 1, 1), entry())
	for _, k := range []Key{
		key("q", 2, 1), // data epoch moved
		key("q", 1, 2), // stats version moved
		{SQL: "q", Epoch: 1, StatsVersion: 1, CostHash: 7}, // different cost model
	} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("stale hit for %+v", k)
		}
	}
	if _, ok := c.Get(key("q", 1, 1)); !ok {
		t.Fatal("original key should still hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	k0, k1, k2 := key("q0", 1, 1), key("q1", 1, 1), key("q2", 1, 1)
	c.Put(k0, entry())
	c.Put(k1, entry())
	c.Get(k0) // touch k0 so k1 is now the LRU victim
	if ev := c.Put(k2, entry()); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.Get(k1); ok {
		t.Fatal("LRU entry k1 survived eviction")
	}
	if _, ok := c.Get(k0); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	if _, ok := c.Get(k2); !ok {
		t.Fatal("new entry k2 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestPutExistingUpdates(t *testing.T) {
	c := New(2)
	k := key("q", 1, 1)
	c.Put(k, entry())
	e2 := entry()
	if ev := c.Put(k, e2); ev != 0 {
		t.Fatalf("update evicted %d entries", ev)
	}
	got, _ := c.Get(k)
	if got.Result != e2.Result {
		t.Fatal("update did not replace entry")
	}
}

func TestHashModelDistinguishesModels(t *testing.T) {
	a, b := cost.Default(), cost.Default()
	if HashModel(a) != HashModel(b) {
		t.Fatal("equal models hash differently")
	}
	b.NetLatency *= 2
	if HashModel(a) == HashModel(b) {
		t.Fatal("different models collide")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("q%d", (g+i)%16), 1, 1)
				if _, ok := c.Get(k); !ok {
					c.Put(k, entry())
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
