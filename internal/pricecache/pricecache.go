// Package pricecache memoizes the expensive half of seller-side bid
// pricing. The QT buyer re-issues largely overlapping query sets across
// negotiation iterations (every iteration's RFB repeats the still-open
// queries of the previous one), so a seller that keeps the partition
// restriction rewrite and the modified-DP partials of a query around can
// answer the repeat RFB at strategy-pricing cost only.
//
// Entries are keyed by the canonical (qualified) SQL of the requested query
// *and* the versions of everything the cached computation read: the store's
// data epoch, its statistics version, and a hash of the node's cost-model
// constants. Any store mutation bumps an epoch, which changes the key, which
// makes every older entry unreachable — a stale price can never be returned,
// it can only age out of the LRU. Offer prices themselves are NOT cached:
// strategies are adaptive (competitive margins move between rounds), so the
// seller re-prices the cached partials through its strategy on every hit.
package pricecache

import (
	"container/list"
	"hash/fnv"
	"math"
	"sync"

	"qtrade/internal/cost"
	"qtrade/internal/localopt"
	"qtrade/internal/rewrite"
)

// Key identifies one priced query under one world state.
type Key struct {
	// SQL is the canonical text of the requested query after parsing and
	// schema qualification (so formatting differences collapse).
	SQL string
	// Epoch and StatsVersion are the store counters at pricing time.
	Epoch        int64
	StatsVersion int64
	// CostHash fingerprints the cost-model constants the DP priced under.
	CostHash uint64
}

// Entry is the cached computation: the seller rewrite of the query against
// local fragments plus the modified-DP result holding every optimal partial.
// Both are treated as immutable by all readers; concurrent pricing workers
// share them without copying.
type Entry struct {
	Rewritten *rewrite.Rewritten
	Result    *localopt.Result
}

// Cache is a mutex-guarded LRU of priced queries. The zero value is not
// usable; call New.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *slot
	byKey map[Key]*list.Element

	hits, misses, evictions int64
}

type slot struct {
	key Key
	e   Entry
}

// New returns a cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, order: list.New(), byKey: map[Key]*list.Element{}}
}

// Get returns the entry for k, marking it most recently used.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*slot).e, true
}

// Put stores e under k, evicting least-recently-used entries over capacity.
// It returns how many entries were evicted.
func (c *Cache) Put(k Key, e Entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*slot).e = e
		c.order.MoveToFront(el)
		return 0
	}
	c.byKey[k] = c.order.PushFront(&slot{key: k, e: e})
	evicted := 0
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*slot).key)
		evicted++
	}
	c.evictions += int64(evicted)
	return evicted
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// HashModel fingerprints a cost model's constants for use in Key.CostHash.
// Nodes hold their model immutable after construction, so this is computed
// once per node.
func HashModel(m *cost.Model) uint64 {
	h := fnv.New64a()
	for _, f := range []float64{
		m.CPURow, m.IORow, m.HashBuildRow, m.HashProbeRow, m.SortRow,
		m.AggRow, m.NetLatency, m.BytesPerMS, m.StartupCost,
	} {
		b := math.Float64bits(f)
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
