// Package value implements the typed value model used throughout the query
// trading engine: SQL-style scalar values with NULL, comparison, hashing and
// arithmetic. Rows are flat slices of values.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// The supported value kinds. Null is the zero Kind so that the zero Value is
// SQL NULL.
const (
	Null Kind = iota
	Int
	Float
	Str
	Bool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "INTEGER"
	case Float:
		return "DOUBLE"
	case Str:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL scalar. The zero value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// NewNull returns the SQL NULL value.
func NewNull() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a double-precision value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewStr returns a string value.
func NewStr(s string) Value { return Value{K: Str, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{K: Bool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == Null }

// AsFloat converts numeric values to float64. Non-numeric values yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	}
	return 0
}

// AsInt converts numeric values to int64 (floats truncate). Non-numeric
// values yield 0.
func (v Value) AsInt() int64 {
	switch v.K {
	case Int:
		return v.I
	case Float:
		return int64(v.F)
	}
	return 0
}

// Truth reports whether v counts as true in a WHERE clause. NULL is not true.
func (v Value) Truth() bool {
	switch v.K {
	case Bool:
		return v.B
	case Int:
		return v.I != 0
	case Float:
		return v.F != 0
	}
	return false
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.K {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Str:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case Bool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// numericKinds reports whether both values are numeric (Int or Float).
func numericKinds(a, b Value) bool {
	return (a.K == Int || a.K == Float) && (b.K == Int || b.K == Float)
}

// Compare orders two non-NULL values. It returns -1, 0 or +1. Mixed
// Int/Float compare numerically; otherwise values of different kinds order by
// kind (a stable, arbitrary cross-type order so sorting is total). Comparing
// anything with NULL returns 0 with ok=false.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.K == Null || b.K == Null {
		return 0, false
	}
	if numericKinds(a, b) && a.K != b.K {
		return cmpFloat(a.AsFloat(), b.AsFloat()), true
	}
	if a.K != b.K {
		return cmpInt(int64(a.K), int64(b.K)), true
	}
	switch a.K {
	case Int:
		return cmpInt(a.I, b.I), true
	case Float:
		return cmpFloat(a.F, b.F), true
	case Str:
		return strings.Compare(a.S, b.S), true
	case Bool:
		x, y := 0, 0
		if a.B {
			x = 1
		}
		if b.B {
			y = 1
		}
		return cmpInt(int64(x), int64(y)), true
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports SQL equality of two values; NULL equals nothing (not even
// NULL).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Identical reports structural equality, treating NULL as identical to NULL.
// Used by grouping and DISTINCT, which follow SQL's "nulls group together".
func Identical(a, b Value) bool {
	if a.K == Null && b.K == Null {
		return true
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Hash returns a hash of v such that Identical values hash equally.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	switch v.K {
	case Null:
		h.Write([]byte{0})
	case Int:
		writeUint64(h, uint64(v.I))
	case Float:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			// Integral floats hash like ints so 1 and 1.0 group together.
			writeUint64(h, uint64(int64(v.F)))
		} else {
			writeUint64(h, math.Float64bits(v.F))
		}
	case Str:
		h.Write([]byte{2})
		h.Write([]byte(v.S))
	case Bool:
		if v.B {
			h.Write([]byte{3, 1})
		} else {
			h.Write([]byte{3, 0})
		}
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var buf [9]byte
	buf[0] = 1
	for i := 0; i < 8; i++ {
		buf[i+1] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// Arith applies the arithmetic operator op ("+", "-", "*", "/") to two
// values. NULL operands yield NULL. Division by zero yields NULL (SQL would
// raise; NULL keeps the engine total and is asserted in tests).
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return NewNull(), nil
	}
	if !numericKinds(a, b) {
		if op == "+" && a.K == Str && b.K == Str {
			return NewStr(a.S + b.S), nil
		}
		return Value{}, fmt.Errorf("value: cannot apply %q to %s and %s", op, a.K, b.K)
	}
	if a.K == Int && b.K == Int {
		switch op {
		case "+":
			return NewInt(a.I + b.I), nil
		case "-":
			return NewInt(a.I - b.I), nil
		case "*":
			return NewInt(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return NewNull(), nil
			}
			return NewInt(a.I / b.I), nil
		case "%":
			if b.I == 0 {
				return NewNull(), nil
			}
			return NewInt(a.I % b.I), nil
		}
		return Value{}, fmt.Errorf("value: unknown operator %q", op)
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return NewNull(), nil
		}
		return NewFloat(x / y), nil
	case "%":
		if y == 0 {
			return NewNull(), nil
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return Value{}, fmt.Errorf("value: unknown operator %q", op)
}

// Row is a tuple of values.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// HashRow hashes the projection of r onto the given column indexes.
func HashRow(r Row, cols []int) uint64 {
	h := fnv.New64a()
	for _, c := range cols {
		writeUint64(h, Hash(r[c]))
	}
	return h.Sum64()
}

// RowsEqualOn reports whether two rows agree (Identical) on the given
// columns of each.
func RowsEqualOn(a Row, ac []int, b Row, bc []int) bool {
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !Identical(a[ac[i]], b[bc[i]]) {
			return false
		}
	}
	return true
}

// Key renders a row as a canonical string key on the given columns; used for
// grouping and distinct where hash collisions must be resolved exactly.
func Key(r Row, cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		v := r[c]
		switch v.K {
		case Null:
			sb.WriteString("\x00N")
		case Int:
			sb.WriteString("\x00I")
			sb.WriteString(strconv.FormatInt(v.I, 10))
		case Float:
			if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
				sb.WriteString("\x00I")
				sb.WriteString(strconv.FormatInt(int64(v.F), 10))
			} else {
				sb.WriteString("\x00F")
				sb.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
			}
		case Str:
			sb.WriteString("\x00S")
			sb.WriteString(v.S)
		case Bool:
			if v.B {
				sb.WriteString("\x00B1")
			} else {
				sb.WriteString("\x00B0")
			}
		}
	}
	return sb.String()
}
