package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Null: "NULL", Int: "INTEGER", Float: "DOUBLE", Str: "VARCHAR", Bool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
}

func TestCompareNumericMixed(t *testing.T) {
	c, ok := Compare(NewInt(2), NewFloat(2.0))
	if !ok || c != 0 {
		t.Errorf("2 vs 2.0: got (%d,%v)", c, ok)
	}
	c, ok = Compare(NewInt(2), NewFloat(2.5))
	if !ok || c != -1 {
		t.Errorf("2 vs 2.5: got (%d,%v)", c, ok)
	}
	c, ok = Compare(NewFloat(3.5), NewInt(3))
	if !ok || c != 1 {
		t.Errorf("3.5 vs 3: got (%d,%v)", c, ok)
	}
}

func TestCompareNullNotOK(t *testing.T) {
	if _, ok := Compare(NewNull(), NewInt(1)); ok {
		t.Error("NULL comparison must not be ok")
	}
	if Equal(NewNull(), NewNull()) {
		t.Error("NULL = NULL must be false under Equal")
	}
	if !Identical(NewNull(), NewNull()) {
		t.Error("NULL must be Identical to NULL")
	}
}

func TestCompareStrings(t *testing.T) {
	c, ok := Compare(NewStr("a"), NewStr("b"))
	if !ok || c != -1 {
		t.Errorf("'a' vs 'b': got (%d,%v)", c, ok)
	}
}

func TestCompareBools(t *testing.T) {
	c, ok := Compare(NewBool(false), NewBool(true))
	if !ok || c != -1 {
		t.Errorf("false vs true: (%d,%v)", c, ok)
	}
}

func TestCompareCrossKindTotalOrder(t *testing.T) {
	// Cross-kind comparison must be antisymmetric to give sorting a total order.
	a, b := NewInt(5), NewStr("5")
	c1, ok1 := Compare(a, b)
	c2, ok2 := Compare(b, a)
	if !ok1 || !ok2 || c1 != -c2 || c1 == 0 {
		t.Errorf("cross-kind order broken: %d %d", c1, c2)
	}
}

func TestTruth(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{NewBool(true), true}, {NewBool(false), false},
		{NewInt(1), true}, {NewInt(0), false},
		{NewFloat(0.1), true}, {NewFloat(0), false},
		{NewNull(), false}, {NewStr("x"), false},
	}
	for _, c := range cases {
		if got := c.v.Truth(); got != c.want {
			t.Errorf("Truth(%s) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	if got := NewStr("it's").String(); got != "'it''s'" {
		t.Errorf("escaping: %q", got)
	}
	if got := NewInt(-7).String(); got != "-7" {
		t.Errorf("int: %q", got)
	}
	if got := NewNull().String(); got != "NULL" {
		t.Errorf("null: %q", got)
	}
	if got := NewBool(true).String(); got != "TRUE" {
		t.Errorf("bool: %q", got)
	}
}

func TestArithIntFloat(t *testing.T) {
	v, err := Arith("+", NewInt(2), NewInt(3))
	if err != nil || v.I != 5 || v.K != Int {
		t.Errorf("2+3: %v %v", v, err)
	}
	v, err = Arith("*", NewInt(2), NewFloat(2.5))
	if err != nil || v.K != Float || v.F != 5.0 {
		t.Errorf("2*2.5: %v %v", v, err)
	}
	v, err = Arith("/", NewInt(7), NewInt(2))
	if err != nil || v.I != 3 {
		t.Errorf("7/2: %v %v", v, err)
	}
	v, err = Arith("/", NewInt(7), NewInt(0))
	if err != nil || !v.IsNull() {
		t.Errorf("7/0 must be NULL: %v %v", v, err)
	}
	v, err = Arith("%", NewInt(7), NewInt(4))
	if err != nil || v.I != 3 {
		t.Errorf("7%%4: %v %v", v, err)
	}
	v, err = Arith("-", NewFloat(1.5), NewFloat(0.5))
	if err != nil || v.F != 1.0 {
		t.Errorf("1.5-0.5: %v %v", v, err)
	}
	v, err = Arith("/", NewFloat(1), NewFloat(0))
	if err != nil || !v.IsNull() {
		t.Errorf("1.0/0.0 must be NULL: %v %v", v, err)
	}
}

func TestArithNullPropagation(t *testing.T) {
	v, err := Arith("+", NewNull(), NewInt(1))
	if err != nil || !v.IsNull() {
		t.Errorf("NULL+1: %v %v", v, err)
	}
}

func TestArithStringConcat(t *testing.T) {
	v, err := Arith("+", NewStr("a"), NewStr("b"))
	if err != nil || v.S != "ab" {
		t.Errorf("'a'+'b': %v %v", v, err)
	}
	if _, err := Arith("-", NewStr("a"), NewStr("b")); err == nil {
		t.Error("'a'-'b' must error")
	}
	if _, err := Arith("+", NewBool(true), NewInt(1)); err == nil {
		t.Error("bool arithmetic must error")
	}
}

func TestHashIdenticalValuesHashEqual(t *testing.T) {
	if Hash(NewInt(1)) != Hash(NewFloat(1.0)) {
		t.Error("1 and 1.0 must hash equal (they compare equal)")
	}
	if Hash(NewStr("a")) == Hash(NewStr("b")) {
		t.Error("suspicious collision 'a'/'b'")
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{NewInt(1), NewStr("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
}

func TestHashRowAndKey(t *testing.T) {
	a := Row{NewInt(1), NewStr("x"), NewFloat(1)}
	b := Row{NewFloat(1.0), NewStr("x"), NewInt(1)}
	if HashRow(a, []int{0, 1}) != HashRow(b, []int{0, 1}) {
		t.Error("rows equal on cols must hash equal")
	}
	if Key(a, []int{0}) != Key(b, []int{0}) {
		t.Error("Key must canonicalize integral floats")
	}
	if Key(a, []int{1}) == Key(a, []int{0}) {
		t.Error("keys of different cols should differ")
	}
}

func TestRowsEqualOn(t *testing.T) {
	a := Row{NewInt(1), NewStr("x")}
	b := Row{NewStr("x"), NewInt(1)}
	if !RowsEqualOn(a, []int{0, 1}, b, []int{1, 0}) {
		t.Error("permuted columns should match")
	}
	if RowsEqualOn(a, []int{0}, b, []int{0, 1}) {
		t.Error("length mismatch must be false")
	}
	if !RowsEqualOn(Row{NewNull()}, []int{0}, Row{NewNull()}, []int{0}) {
		t.Error("NULLs must group together")
	}
}

// Property: Compare is antisymmetric and Equal agrees with Compare==0 on
// random int/float pairs.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, _ := Compare(x, y)
		c2, _ := Compare(y, x)
		return c1 == -c2 && (Equal(x, y) == (c1 == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Identical values hash identically for random strings.
func TestQuickHashConsistency(t *testing.T) {
	f := func(s string) bool {
		return Hash(NewStr(s)) == Hash(NewStr(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer arithmetic matches Go semantics for +,-,*.
func TestQuickIntArith(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInt(int64(a)), NewInt(int64(b))
		plus, _ := Arith("+", x, y)
		minus, _ := Arith("-", x, y)
		times, _ := Arith("*", x, y)
		return plus.I == int64(a)+int64(b) && minus.I == int64(a)-int64(b) && times.I == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatSpecials(t *testing.T) {
	inf := NewFloat(math.Inf(1))
	c, ok := Compare(inf, NewFloat(1e308))
	if !ok || c != 1 {
		t.Errorf("+inf compare: (%d,%v)", c, ok)
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if NewFloat(2.9).AsInt() != 2 {
		t.Error("AsInt truncates")
	}
	if NewInt(3).AsFloat() != 3.0 {
		t.Error("AsFloat of int")
	}
	if NewStr("x").AsFloat() != 0 || NewStr("x").AsInt() != 0 {
		t.Error("non-numeric conversions yield 0")
	}
}
