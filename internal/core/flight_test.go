package core

import (
	"testing"
	"time"

	"qtrade/internal/exec"
	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
)

// flightCfg is athensCfg with the full observability stack and a flight
// recorder attached.
func flightCfg(f *federation) (Config, *flight.Recorder) {
	rec := flight.NewRecorder(8)
	cfg := athensCfg(f)
	cfg.Tracer = obs.NewTracer()
	cfg.Metrics = obs.NewMetrics()
	cfg.Ledger = ledger.New(8)
	cfg.Flight = rec
	return cfg, rec
}

// optimizeAndRunTraced is optimizeAndRun via ExecuteResultTraced, so the
// execution carries its own span tree into the dossier.
func optimizeAndRunTraced(t *testing.T, f *federation, cfg Config, sql string) *Result {
	t.Helper()
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, sql)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if _, err := ExecuteResultTraced(comm, &exec.Executor{Store: f.athens.Store()}, res, cfg.Tracer); err != nil {
		t.Fatalf("execute: %v\n%s", err, ExplainResult(res))
	}
	return res
}

// TestFlightDossierEndToEnd: one optimize+execute cycle with the recorder on
// must leave exactly one dossier unifying spans, ledger events, per-operator
// est-vs-actual and quoted-vs-measured cost — the acceptance shape.
func TestFlightDossierEndToEnd(t *testing.T) {
	f := buildFederation(t, nil)
	led := ledger.New(8)
	f.corfu.SetLedger(led)
	f.myc.SetLedger(led)
	cfg, rec := flightCfg(f)
	cfg.Ledger = led

	res := optimizeAndRunTraced(t, f, cfg, paperQuery)

	if n := rec.Len(); n != 1 {
		t.Fatalf("dossiers: %d", n)
	}
	d := rec.Recent(1)[0]
	if d.ID == "" || d.ID != led.Negotiations(0)[0].ID {
		t.Fatalf("dossier id must match the ledger negotiation: %q", d.ID)
	}
	if got := rec.Get(d.ID); got != d {
		t.Fatal("Get by id")
	}
	if d.Buyer != "athens" || d.SQL == "" || d.Start.IsZero() {
		t.Fatalf("header: %+v", d)
	}
	if d.OptimizeMS <= 0 || d.ExecMS <= 0 || d.WallMS != d.OptimizeMS+d.ExecMS {
		t.Fatalf("walls: opt=%v exec=%v wall=%v", d.OptimizeMS, d.ExecMS, d.WallMS)
	}
	if d.QuotedMS <= 0 || d.QuotedPrice <= 0 || d.CostRatio <= 0 {
		t.Fatalf("quoted-vs-measured: %+v", d)
	}
	if d.Rows == 0 || d.WireBytes == 0 || d.FetchMS <= 0 {
		t.Fatalf("delivery actuals: rows=%d bytes=%d fetch=%v", d.Rows, d.WireBytes, d.FetchMS)
	}

	// The full ledger chain rides inside.
	kinds := map[string]int{}
	for _, e := range d.Ledger.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{ledger.KindRFB, ledger.KindBid, ledger.KindAward,
		ledger.KindExecStart, ledger.KindExec, ledger.KindFetch} {
		if kinds[k] == 0 {
			t.Fatalf("dossier ledger missing %q: %v", k, kinds)
		}
	}

	// Per-operator est-vs-actual: every executed operator has actual rows,
	// remote leaves carry the sellers' estimates.
	if len(d.Operators) == 0 {
		t.Fatal("no operators")
	}
	executed, withEst := 0, 0
	for _, op := range d.Operators {
		if op.Executed {
			executed++
		}
		if op.EstRows >= 0 {
			withEst++
		}
		if op.Op == "" {
			t.Fatalf("unnamed operator: %+v", op)
		}
	}
	if executed == 0 || withEst == 0 {
		t.Fatalf("operators lack actuals or estimates: %+v", d.Operators)
	}
	if d.CardError < 1 {
		t.Fatalf("card error must be >= 1 once est and actual met: %v", d.CardError)
	}

	// Both span trees present: the optimize root and the execute root, the
	// latter with grafted seller execute subtrees (est-vs-actual attrs from
	// the seller side).
	if len(d.Spans) != 2 || d.Spans[0].Name != "optimize" || d.Spans[1].Name != "execute" {
		t.Fatalf("span roots: %+v", spanNames(d.Spans))
	}
	if d.Spans[1].Unfinished {
		t.Fatal("execute span copy must be stamped closed")
	}
	var sellerExec *obs.SpanPayload
	var find func(p *obs.SpanPayload)
	find = func(p *obs.SpanPayload) {
		if p.Name == "execute" && p.Source != "athens" {
			sellerExec = p
		}
		for _, c := range p.Children {
			find(c)
		}
	}
	find(d.Spans[1])
	if sellerExec == nil {
		t.Fatalf("no grafted seller execute span under the buyer's execute root")
	}
	attrs := map[string]bool{}
	for _, a := range sellerExec.Attrs {
		attrs[a.Key] = true
	}
	for _, k := range []string{"rows", "exec_ms", "est_rows", "quoted_ms"} {
		if !attrs[k] {
			t.Fatalf("seller execute span missing %q: %+v", k, sellerExec.Attrs)
		}
	}
	_ = res
}

func spanNames(ps []*obs.SpanPayload) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// TestFlightDossierStreamed: the cursor path must finalize the dossier at
// Close with the rows actually pulled, including from streamed fetches.
func TestFlightDossierStreamed(t *testing.T) {
	f := buildFederation(t, nil)
	cfg, rec := flightCfg(f)
	cfg.FetchBatchRows = 2
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := ExecuteResultStream(comm, &exec.Executor{Store: f.athens.Store()}, res, cfg.Tracer)
	if err != nil {
		t.Fatal(err)
	}
	rows := int64(0)
	for {
		b, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			break
		}
		rows += int64(len(b))
	}
	if rec.Len() != 0 {
		t.Fatal("dossier must not exist before Close")
	}
	cur.Close()
	if rec.Len() != 1 {
		t.Fatalf("dossiers after close: %d", rec.Len())
	}
	d := rec.Recent(1)[0]
	if d.Rows != rows || rows == 0 {
		t.Fatalf("streamed dossier rows: %d pulled %d", d.Rows, rows)
	}
	if d.ExecMS <= 0 || d.WireBytes == 0 {
		t.Fatalf("streamed actuals: %+v", d)
	}
	ops := 0
	for _, op := range d.Operators {
		if op.Executed {
			ops++
		}
	}
	if ops == 0 {
		t.Fatal("streamed run must still collect per-operator actuals")
	}
}

// TestFlightRecoveryDossier: a crash-then-substitute execution must end as
// ONE dossier (the re-run replaces the partial capture) carrying the
// recovery audit and the recovery trigger.
func TestFlightRecoveryDossier(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	cfg, rec := flightCfg(f)
	cfg.Faults = testPolicy(cfg.Metrics)

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Candidate.Offers[0].SellerID
	crash := &crashOnDeliver{Comm: comm, victim: winner, onCrash: func() {}}

	if _, _, _, err := OptimizeAndExecute(cfg, crash,
		&exec.Executor{Store: f.athens.Store()}, q, 2); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	// Two Optimize calls ran (the probe above and the one inside
	// OptimizeAndExecute) but only the latter executed — executions admit.
	if rec.Len() != 1 {
		t.Fatalf("dossiers: %d (re-runs must replace, not append)", rec.Len())
	}
	d := rec.Recent(1)[0]
	if d.Err != "" {
		t.Fatalf("final dossier must reflect the recovered success: %+v", d)
	}
	if len(d.Recoveries) == 0 {
		t.Fatal("no recovery in dossier")
	}
	r := d.Recoveries[0]
	if r.Failed != winner || r.Substitute == "" || r.Substitute == winner || r.Reason != "crash" {
		t.Fatalf("recovery: %+v", r)
	}
	if !hasTrigger(d.Triggers, flight.TrigRecovery) {
		t.Fatalf("recovery dossier must be flagged: %v", d.Triggers)
	}
	if len(rec.Outliers()) != 1 {
		t.Fatal("flagged dossier must land in the outlier set")
	}
}

func hasTrigger(ts []string, want string) bool {
	for _, s := range ts {
		if s == want {
			return true
		}
	}
	return false
}

// TestFlightTailSampledDossier: with head sampling off and tail sampling on
// (obs.Sampling.TailSlower), a tail-kept slow query's dossier must still be
// complete — including the grafted seller subtrees, because collection runs
// regardless of the head decision.
func TestFlightTailSampledDossier(t *testing.T) {
	f := buildFederation(t, nil)
	cfg, rec := flightCfg(f)
	cfg.Sampling = &obs.Sampling{Mode: obs.SampleNever, TailSlower: time.Nanosecond}

	optimizeAndRunTraced(t, f, cfg, paperQuery)
	if rec.Len() != 1 {
		t.Fatalf("dossiers: %d", rec.Len())
	}
	d := rec.Recent(1)[0]
	if len(d.Spans) != 2 {
		t.Fatalf("tail-kept dossier must carry both span trees: %v", spanNames(d.Spans))
	}
	foundRemote := false
	var find func(p *obs.SpanPayload)
	find = func(p *obs.SpanPayload) {
		if p.Source != "" && p.Source != "athens" {
			foundRemote = true
		}
		for _, c := range p.Children {
			find(c)
		}
	}
	for _, p := range d.Spans {
		find(p)
	}
	if !foundRemote {
		t.Fatal("tail-kept dossier lost the seller subtrees")
	}

	// Head-sampling NEVER with no tail keeps execution untraced: the
	// dossier still assembles, with the optimize span but no remote graft.
	f2 := buildFederation(t, nil)
	cfg2, rec2 := flightCfg(f2)
	cfg2.Sampling = &obs.Sampling{Mode: obs.SampleNever}
	optimizeAndRunTraced(t, f2, cfg2, paperQuery)
	if rec2.Len() != 1 {
		t.Fatalf("never-sampled dossiers: %d", rec2.Len())
	}
	d2 := rec2.Recent(1)[0]
	if d2.Rows == 0 || len(d2.Operators) == 0 {
		t.Fatalf("never-sampled dossier incomplete: %+v", d2)
	}
}

// TestFlightDisabled: without a recorder nothing is captured and no RunStats
// are attached (the off switch really is off).
func TestFlightDisabled(t *testing.T) {
	f := buildFederation(t, nil)
	cfg := athensCfg(f)
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.flight != nil {
		t.Fatal("no capture without a recorder")
	}
	ex, cleanup := buildPlanExecutor(comm, &exec.Executor{Store: f.athens.Store()}, res, nil)
	cleanup()
	if ex.Stats != nil {
		t.Fatal("RunStats must not be attached without a recorder")
	}
}

// TestFlightCardBlowoutTrigger: a seller whose estimate is badly stale must
// produce a card_blowout-flagged dossier via the per-operator error.
func TestFlightCardBlowoutTrigger(t *testing.T) {
	d := &flight.Dossier{
		Operators: []flight.OpStat{{Op: "Remote", EstRows: 1, Rows: 100, Executed: true, ErrRatio: 50.5}},
		CardError: 50.5,
	}
	got := flight.Triggers{}.Evaluate(d)
	if !hasTrigger(got, flight.TrigCardError) {
		t.Fatalf("card blowout: %v", got)
	}
}

var _ = trading.ExecReq{} // keep the import for crashOnDeliver's package
