package core

import (
	"sort"

	"qtrade/internal/plan"
	"qtrade/internal/trading"
)

// partialAggCandidates builds plans from partial-aggregate offers (aggregate
// pushdown): each offer delivers per-group totals of a disjoint fragment
// set; the buyer unions them and merges with combining aggregates. Only
// offers covering the query's full relation set qualify, and coverage must
// be exact along exactly one partitioned binding (the same rule as raw
// unions — disjointness is what makes SUM-of-SUMs sound).
func (g *planGen) partialAggCandidates() []Candidate {
	if !g.hasAgg {
		return nil
	}
	d, ok := plan.DecomposeAggregates(g.sel)
	if !ok {
		return nil
	}
	full := uint(1)<<len(g.bindings) - 1
	var usable []*offerInfo
	for _, info := range g.offers {
		if info.partialAgg && info.mask == full {
			usable = append(usable, info)
		}
	}
	if len(usable) == 0 {
		return nil
	}

	var assemblies []*assembly
	// Single offers covering everything.
	for _, info := range usable {
		covers := true
		for _, b := range info.bindings {
			if !info.fullIn(g, b) {
				covers = false
				break
			}
		}
		if covers {
			node := info.remote()
			assemblies = append(assemblies, &assembly{
				node:      node,
				schema:    info.schema,
				remoteMax: info.o.Props.TotalTime,
				remoteSum: info.o.Props.TotalTime,
				rows:      info.o.Props.Rows,
				bytes:     info.o.Props.Bytes,
				offers:    []trading.Offer{info.o},
			})
		}
	}
	// Exact-coverage unions along one binding, per schema signature.
	for _, b := range g.bindings {
		if bitsCount(g.fullMask[b]) < 2 {
			continue
		}
		bySig := map[string][]*offerInfo{}
		for _, info := range usable {
			good := info.partMask[b] != 0
			for _, ob := range info.bindings {
				if ob != b {
					if !info.fullIn(g, ob) {
						good = false
						break
					}
				}
			}
			if good {
				bySig[info.sig] = append(bySig[info.sig], info)
			}
		}
		for _, group := range bySig {
			if a := g.exactCover(b, group); a != nil {
				assemblies = append(assemblies, a)
			}
		}
	}

	var out []Candidate
	for _, a := range assemblies {
		root, err := d.BuildMergePlan(g.sel, a.node)
		if err != nil {
			continue
		}
		groups := a.rows/2 + 1
		if len(g.sel.GroupBy) == 0 {
			groups = 1
		}
		local := a.localCost + g.model.Aggregate(a.rows, groups)
		if len(g.sel.OrderBy) > 0 {
			local += g.model.Sort(groups)
		}
		noteSpine(root, a.node, groups)
		out = append(out, Candidate{
			Root:          root,
			ResponseTime:  a.remoteMax + local,
			TotalWork:     a.remoteSum + local,
			Rows:          groups,
			Offers:        a.offers,
			UnionBindings: dedupStrings(a.unions),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ResponseTime < out[j].ResponseTime })
	return out
}

func bitsCount(m uint) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}
