package core

import (
	"strings"
	"testing"
)

// TestUnqualifiedColumnsEndToEnd runs a query whose columns carry no table
// qualifiers through the whole trading pipeline.
func TestUnqualifiedColumnsEndToEnd(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT custname FROM customer c WHERE office IN ('Corfu', 'Myconos')"
	want := oracle(t, f.sch, q)
	res, got := optimizeAndRun(t, f, athensCfg(f), q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("unqualified query differs:\ngot  %v\nwant %v\n%s", got, want, ExplainResult(res))
	}
}

// TestNoAliasQuery uses the bare table name as the binding.
func TestNoAliasQuery(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT customer.custname FROM customer WHERE customer.office = 'Myconos'"
	want := oracle(t, f.sch, q)
	res, got := optimizeAndRun(t, f, athensCfg(f), q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("bare-name query differs:\ngot  %v\nwant %v\n%s", got, want, ExplainResult(res))
	}
}
