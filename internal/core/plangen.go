// Package core implements the paper's primary contribution: the query-trading
// (QT) optimizer. The buyer side runs the iterative algorithm of Figure 2
// (steps B1–B8): it requests bids for a set Q of queries, turns the received
// offers into distributed execution plans with the buyer plan generator
// (answering-queries-using-views over offers: DP, IDP-M(2,5) or greedy), has
// the buyer predicates analyser derive new queries worth asking for, and
// repeats until the plan stops improving. No data moves until the final plan
// is awarded and executed.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/rewrite"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
)

// PlanGenMode selects the buyer plan generator algorithm (§3.6).
type PlanGenMode string

// The three implemented generators: full dynamic programming, the
// IDP-M(2,5) variant the paper adopts from iterative dynamic programming,
// and a greedy left-deep generator for very large queries.
const (
	GenDP     PlanGenMode = "dp"
	GenIDP    PlanGenMode = "idp"
	GenGreedy PlanGenMode = "greedy"
)

// Candidate is one distributed execution plan built from offers plus local
// processing, with its estimated costs.
type Candidate struct {
	Root plan.Node
	// ResponseTime models parallel delivery: slowest remote answer plus
	// local processing. TotalWork sums all remote and local costs.
	ResponseTime float64
	TotalWork    float64
	Rows         int64
	Offers       []trading.Offer
	// UnionBindings lists bindings whose extent was assembled by unioning
	// several offers (input to the predicates analyser).
	UnionBindings []string
	// JoinSubsets lists the binding subsets joined locally (input to the
	// predicates analyser).
	JoinSubsets [][]string
}

// assembly is a way to produce the full relevant extent of a binding subset.
type assembly struct {
	node      plan.Node
	schema    []expr.ColumnID
	remoteMax float64
	remoteSum float64
	localCost float64
	rows      int64
	bytes     float64
	offers    []trading.Offer
	unions    []string
	joins     [][]string
}

func (a *assembly) response() float64 { return a.remoteMax + a.localCost }
func (a *assembly) work() float64     { return a.remoteSum + a.localCost }

// paid sums the asked prices of the assembly's offers; it breaks cost ties
// so the buyer never pays more for an equally fast plan.
func (a *assembly) paid() float64 {
	var p float64
	for _, o := range a.offers {
		p += o.Price
	}
	return p
}

// offerInfo is a pool offer decoded against the buyer's query.
type offerInfo struct {
	o        trading.Offer
	bindings []string // lower-cased, sorted
	mask     uint
	// partMask is the bitmask of relevant partitions covered, per binding.
	partMask   map[string]uint
	schema     []expr.ColumnID
	sig        string // schema signature for union compatibility
	whole      bool   // complete aggregated (or view) answer to the full query
	partialAgg bool   // per-fragment partial aggregates (merged, not unioned raw)
}

// planGen holds the per-query state of one plan-generation run.
type planGen struct {
	sel      *sqlparse.Select
	sch      *catalog.Schema
	model    *cost.Model
	mode     PlanGenMode
	keep     int // IDP-M keep width
	bindings []string
	bindIdx  map[string]int
	relevant map[string][]string // binding -> relevant partition ids
	partBit  map[string]map[string]uint
	fullMask map[string]uint
	joinPred []genJoinPred
	offers   []*offerInfo
	hasAgg   bool
}

type genJoinPred struct {
	e    expr.Expr
	mask uint
}

// Generate builds candidate plans for sel from the offer pool. It returns
// candidates sorted by response time. See GenerateWithLatency for
// heterogeneous-network buyers.
func Generate(sel *sqlparse.Select, sch *catalog.Schema, model *cost.Model,
	mode PlanGenMode, keep int, offers []trading.Offer) ([]Candidate, error) {
	return GenerateWithLatency(sel, sch, model, mode, keep, offers, nil)
}

// GenerateWithLatency is Generate with a buyer-side latency correction: each
// offer's delivery estimate is increased by the round trip to its seller
// before plans are costed.
func GenerateWithLatency(sel *sqlparse.Select, sch *catalog.Schema, model *cost.Model,
	mode PlanGenMode, keep int, offers []trading.Offer, peerLatency func(string) float64) ([]Candidate, error) {

	if peerLatency != nil {
		adjusted := make([]trading.Offer, len(offers))
		copy(adjusted, offers)
		for i := range adjusted {
			adjusted[i].Props.TotalTime += 2 * peerLatency(adjusted[i].SellerID)
		}
		offers = adjusted
	}

	g := &planGen{sel: sel, sch: sch, model: model, mode: mode, keep: keep,
		bindIdx: map[string]int{}, relevant: map[string][]string{},
		partBit: map[string]map[string]uint{}, fullMask: map[string]uint{}}
	if g.keep <= 0 {
		g.keep = 5
	}
	g.hasAgg = sel.HasAggregates() || len(sel.GroupBy) > 0
	for i, tr := range sel.From {
		b := strings.ToLower(tr.Binding())
		g.bindings = append(g.bindings, b)
		g.bindIdx[b] = i
	}
	if len(g.bindings) == 0 {
		return nil, fmt.Errorf("core: query has no relations")
	}
	if len(g.bindings) > 16 {
		return nil, fmt.Errorf("core: %d relations exceed plan generator limit", len(g.bindings))
	}
	g.computeRelevant()
	g.classifyJoinPreds()
	for i := range offers {
		if info := g.decode(&offers[i]); info != nil {
			g.offers = append(g.offers, info)
		}
	}
	return g.run()
}

// computeRelevant prunes each binding's partitions against the query's
// single-binding predicates.
func (g *planGen) computeRelevant() {
	perBinding := map[string][]expr.Expr{}
	for _, c := range expr.Conjuncts(g.sel.Where) {
		var owner string
		single := true
		for _, col := range expr.Columns(c) {
			lt := strings.ToLower(col.Table)
			if lt == "" {
				single = false
				break
			}
			if owner == "" {
				owner = lt
			} else if owner != lt {
				single = false
				break
			}
		}
		if single && owner != "" {
			perBinding[owner] = append(perBinding[owner], c)
		}
	}
	for _, tr := range g.sel.From {
		b := strings.ToLower(tr.Binding())
		pred := expr.And(perBinding[b])
		ids := rewrite.RelevantPartitions(g.sch, tr.Name, pred)
		g.relevant[b] = ids
		bitsOf := map[string]uint{}
		var full uint
		for i, id := range ids {
			bitsOf[id] = 1 << i
			full |= 1 << i
		}
		g.partBit[b] = bitsOf
		g.fullMask[b] = full
	}
}

func (g *planGen) classifyJoinPreds() {
	for _, c := range expr.Conjuncts(g.sel.Where) {
		var mask uint
		for _, col := range expr.Columns(c) {
			if idx, ok := g.bindIdx[strings.ToLower(col.Table)]; ok {
				mask |= 1 << idx
			}
		}
		if bits.OnesCount(mask) == 2 {
			g.joinPred = append(g.joinPred, genJoinPred{e: c, mask: mask})
		}
	}
}

// decode validates an offer against the query and computes its coverage.
func (g *planGen) decode(o *trading.Offer) *offerInfo {
	info := &offerInfo{o: *o, partMask: map[string]uint{}}
	for _, b := range o.Bindings {
		lb := strings.ToLower(b)
		idx, ok := g.bindIdx[lb]
		if !ok {
			return nil // not about this query's relations
		}
		info.mask |= 1 << idx
		info.bindings = append(info.bindings, lb)
		var m uint
		for _, pid := range o.Parts[lb] {
			m |= g.partBit[lb][pid] // irrelevant partitions contribute 0
		}
		info.partMask[lb] = m
	}
	sort.Strings(info.bindings)
	info.schema = make([]expr.ColumnID, len(o.Cols))
	var sig strings.Builder
	for i, c := range o.Cols {
		info.schema[i] = expr.ColumnID{Table: c.Table, Name: c.Name}
		sig.WriteString(strings.ToLower(c.Table))
		sig.WriteByte('.')
		sig.WriteString(strings.ToLower(c.Name))
		sig.WriteByte('|')
	}
	info.sig = sig.String()
	// whole-query candidacy is verified against the buyer's own relevant
	// partition sets — the seller's Complete flag was computed for the query
	// *it* rewrote, which may differ (e.g. offers answering
	// analyser-generated restricted queries).
	full := uint(1)<<len(g.bindings) - 1
	coversAll := info.mask == full
	if coversAll {
		for _, b := range info.bindings {
			if !info.fullIn(g, b) {
				coversAll = false
				break
			}
		}
	}
	if o.PartialAgg {
		// Partial aggregates are only meaningful for this query if it
		// aggregates, and they combine exclusively with their own kind.
		if !g.hasAgg {
			return nil
		}
		info.partialAgg = true
		return info
	}
	aggregated := g.hasAgg && !o.Stripped
	info.whole = coversAll && o.Complete && aggregated
	if g.hasAgg && !o.Stripped && !info.whole {
		// An aggregated partial answer cannot be recombined safely.
		return nil
	}
	if !g.hasAgg && coversAll && o.Complete {
		info.whole = true
	}
	return info
}

func (info *offerInfo) fullIn(g *planGen, b string) bool {
	return info.partMask[b] == g.fullMask[b] // vacuously true when no relevant partitions
}

// remote builds the Remote plan node of an offer.
func (info *offerInfo) remote() *plan.Remote {
	return &plan.Remote{
		NodeID:  info.o.SellerID,
		SQL:     info.o.SQL,
		Cols:    info.schema,
		EstRows: info.o.Props.Rows,
		EstCost: info.o.Props.TotalTime,
		OfferID: info.o.OfferID,
	}
}

func (g *planGen) run() ([]Candidate, error) {
	n := len(g.bindings)
	full := uint(1)<<n - 1
	dp := make(map[uint][]*assembly)

	masks := make([]uint, 0, 1<<n)
	for m := uint(1); m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := bits.OnesCount(masks[i]), bits.OnesCount(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})

	for _, mask := range masks {
		var cands []*assembly
		cands = append(cands, g.directAssemblies(mask)...)
		cands = append(cands, g.unionAssemblies(mask)...)
		if bits.OnesCount(mask) >= 2 {
			cands = append(cands, g.joinAssemblies(dp, mask)...)
		}
		dp[mask] = g.prune(mask, cands)
	}

	if g.mode == GenIDP {
		g.idpPrune(dp, masks)
		// Rebuild larger subsets from the surviving 2-way entries.
		for _, mask := range masks {
			if bits.OnesCount(mask) < 3 {
				continue
			}
			var cands []*assembly
			cands = append(cands, g.directAssemblies(mask)...)
			cands = append(cands, g.unionAssemblies(mask)...)
			cands = append(cands, g.joinAssemblies(dp, mask)...)
			dp[mask] = g.prune(mask, cands)
		}
	}

	var out []Candidate
	for _, a := range dp[full] {
		c, err := g.finishAssembly(a)
		if err != nil {
			continue
		}
		out = append(out, *c)
	}
	out = append(out, g.wholePlanCandidates()...)
	out = append(out, g.partialAggCandidates()...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ResponseTime < out[j].ResponseTime })
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no candidate plan can be built from %d offers", len(g.offers))
	}
	return out, nil
}

// prune keeps the best assemblies per subset: 1 for DP and greedy, keep for
// 2-way subsets in IDP before the global IDP cut.
func (g *planGen) prune(mask uint, cands []*assembly) []*assembly {
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		ri, rj := cands[i].response(), cands[j].response()
		if ri != rj {
			return ri < rj
		}
		if wi, wj := cands[i].work(), cands[j].work(); wi != wj {
			return wi < wj
		}
		return cands[i].paid() < cands[j].paid()
	})
	width := 1
	if g.mode == GenIDP && bits.OnesCount(mask) == 2 {
		width = g.keep
	}
	if len(cands) > width {
		cands = cands[:width]
	}
	return cands
}

// idpPrune implements the IDP-M(2,k) cut: rank all 2-way subsets by their
// best assembly and drop all but the best k subsets.
func (g *planGen) idpPrune(dp map[uint][]*assembly, masks []uint) {
	type scored struct {
		mask uint
		cost float64
	}
	var twoWay []scored
	for _, m := range masks {
		if bits.OnesCount(m) != 2 || len(dp[m]) == 0 {
			continue
		}
		twoWay = append(twoWay, scored{mask: m, cost: dp[m][0].response()})
	}
	if len(twoWay) <= g.keep {
		return
	}
	sort.Slice(twoWay, func(i, j int) bool { return twoWay[i].cost < twoWay[j].cost })
	for _, s := range twoWay[g.keep:] {
		delete(dp, s.mask)
	}
}

// directAssemblies turns single offers fully covering the subset into
// assemblies.
func (g *planGen) directAssemblies(mask uint) []*assembly {
	var out []*assembly
	for _, info := range g.offers {
		if info.mask != mask || info.whole || info.partialAgg {
			continue
		}
		ok := true
		for _, b := range info.bindings {
			if !info.fullIn(g, b) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, &assembly{
			node:      info.remote(),
			schema:    info.schema,
			remoteMax: info.o.Props.TotalTime,
			remoteSum: info.o.Props.TotalTime,
			rows:      info.o.Props.Rows,
			bytes:     info.o.Props.Bytes,
			offers:    []trading.Offer{info.o},
		})
	}
	return out
}

// unionAssemblies assembles the subset by unioning offers that are full in
// every binding except one, along which their disjoint partition sets must
// exactly cover the relevant partitions. This is how the buyer reassembles a
// horizontally partitioned relation (or co-partitioned join) from several
// sellers.
func (g *planGen) unionAssemblies(mask uint) []*assembly {
	var out []*assembly
	for bIdx, b := range g.bindings {
		if mask&(1<<bIdx) == 0 {
			continue
		}
		if g.fullMask[b] == 0 || bits.OnesCount(g.fullMask[b]) < 2 {
			continue // nothing to assemble along this binding
		}
		// Group usable offers by schema signature.
		bySig := map[string][]*offerInfo{}
		for _, info := range g.offers {
			if info.mask != mask || info.whole || info.partialAgg {
				continue
			}
			usable := info.partMask[b] != 0
			for _, ob := range info.bindings {
				if ob == b {
					continue
				}
				if !info.fullIn(g, ob) {
					usable = false
					break
				}
			}
			if usable {
				bySig[info.sig] = append(bySig[info.sig], info)
			}
		}
		for _, group := range bySig {
			if a := g.exactCover(b, group); a != nil {
				out = append(out, a)
			}
		}
	}
	return out
}

// exactCover finds a low-cost set of offers whose partition masks for
// binding b are disjoint and jointly cover all relevant partitions, via
// bitmask DP (minimizing the response metric: max remote time, then sum).
func (g *planGen) exactCover(b string, group []*offerInfo) *assembly {
	target := g.fullMask[b]
	type entry struct {
		max, sum float64
		rows     int64
		bytes    float64
		used     []*offerInfo
	}
	dp := map[uint]*entry{0: {}}
	// Deterministic iteration.
	sort.Slice(group, func(i, j int) bool { return group[i].o.OfferID < group[j].o.OfferID })
	for _, info := range group {
		pm := info.partMask[b]
		if pm == 0 || pm&^target != 0 {
			continue
		}
		updates := map[uint]*entry{}
		for covered, e := range dp {
			if covered&pm != 0 {
				continue // overlap would duplicate rows
			}
			nc := covered | pm
			cand := &entry{
				max:   math.Max(e.max, info.o.Props.TotalTime),
				sum:   e.sum + info.o.Props.TotalTime,
				rows:  e.rows + info.o.Props.Rows,
				bytes: e.bytes + info.o.Props.Bytes,
				used:  append(append([]*offerInfo{}, e.used...), info),
			}
			prev, ok := dp[nc]
			prevU, okU := updates[nc]
			better := func(old *entry) bool {
				if old == nil {
					return true
				}
				if cand.max != old.max {
					return cand.max < old.max
				}
				return cand.sum < old.sum
			}
			if (!ok || better(prev)) && (!okU || better(prevU)) {
				updates[nc] = cand
			}
		}
		for k, v := range updates {
			dp[k] = v
		}
	}
	win, ok := dp[target]
	if !ok || len(win.used) < 2 {
		return nil // single-offer covers are handled by directAssemblies
	}
	inputs := make([]plan.Node, len(win.used))
	var offers []trading.Offer
	for i, info := range win.used {
		inputs[i] = info.remote()
		offers = append(offers, info.o)
	}
	return &assembly{
		node:      &plan.Union{Card: plan.Card{Est: win.rows}, Inputs: inputs},
		schema:    win.used[0].schema,
		remoteMax: win.max,
		remoteSum: win.sum,
		rows:      win.rows,
		bytes:     win.bytes,
		offers:    offers,
		unions:    []string{b},
	}
}

// joinAssemblies joins solved sub-subsets, mirroring the seller-side DP.
func (g *planGen) joinAssemblies(dp map[uint][]*assembly, mask uint) []*assembly {
	var out []*assembly
	gen := func(requireConnected bool) {
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			if sub > other {
				continue
			}
			if g.mode == GenGreedy && bits.OnesCount(sub) != 1 && bits.OnesCount(other) != 1 {
				continue // left-deep only
			}
			ls, rs := dp[sub], dp[other]
			if len(ls) == 0 || len(rs) == 0 {
				continue
			}
			preds := g.connecting(sub, other)
			if requireConnected && len(preds) == 0 {
				continue
			}
			for _, l := range ls {
				for _, r := range rs {
					out = append(out, g.join(l, r, preds))
				}
			}
		}
	}
	gen(true)
	if len(out) == 0 {
		gen(false)
	}
	return out
}

func (g *planGen) connecting(a, b uint) []expr.Expr {
	var out []expr.Expr
	for _, jp := range g.joinPred {
		if jp.mask&a != 0 && jp.mask&b != 0 {
			out = append(out, expr.Clone(jp.e))
		}
	}
	return out
}

func (g *planGen) join(l, r *assembly, preds []expr.Expr) *assembly {
	// Cardinality: containment assumption with NDV ≈ distinct rows of the
	// larger side (offers do not ship per-column NDVs).
	rows := float64(l.rows) * float64(r.rows)
	if len(preds) > 0 {
		d := math.Max(float64(maxI(l.rows, r.rows)), 1)
		rows = rows / d * math.Pow(1.0/3.0, float64(len(preds)-1))
	}
	if rows < 1 {
		rows = 1
	}
	outRows := int64(math.Ceil(rows))
	build, probe := l.rows, r.rows
	if build > probe {
		build, probe = probe, build
	}
	var joinCost float64
	if len(preds) > 0 {
		joinCost = g.model.HashJoin(build, probe, outRows)
	} else {
		joinCost = g.model.NLJoin(l.rows, r.rows, outRows)
	}
	left, right := l.node, r.node
	if l.rows < r.rows {
		left, right = r.node, l.node
	}
	lBind, rBind := g.bindingNames(l), g.bindingNames(r)
	return &assembly{
		node:      &plan.Join{Card: plan.Card{Est: outRows}, L: left, R: right, On: expr.And(preds)},
		schema:    append(append([]expr.ColumnID{}, l.schema...), r.schema...),
		remoteMax: math.Max(l.remoteMax, r.remoteMax),
		remoteSum: l.remoteSum + r.remoteSum,
		localCost: l.localCost + r.localCost + joinCost,
		rows:      outRows,
		bytes:     l.bytes + r.bytes,
		offers:    append(append([]trading.Offer{}, l.offers...), r.offers...),
		unions:    append(append([]string{}, l.unions...), r.unions...),
		joins:     append(append([][]string{}, append(l.joins, lBind)...), append(r.joins, rBind)...),
	}
}

func (g *planGen) bindingNames(a *assembly) []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range a.offers {
		for _, b := range o.Bindings {
			lb := strings.ToLower(b)
			if !seen[lb] {
				seen[lb] = true
				out = append(out, lb)
			}
		}
	}
	sort.Strings(out)
	return out
}

// finishAssembly applies the original query's full predicate as a safety
// compensation filter, then the aggregation/ordering phase, and prices the
// candidate.
func (g *planGen) finishAssembly(a *assembly) (*Candidate, error) {
	node := a.node
	// Re-apply the query conjuncts the assembly's schema can evaluate (the
	// sellers already applied them remotely; re-filtering is an idempotent
	// safety net). Conjuncts over columns the offers did not ship are
	// guaranteed by the offer SQL itself.
	var applicable []expr.Expr
	for _, c := range expr.Conjuncts(g.sel.Where) {
		if bindable(c, a.schema) {
			applicable = append(applicable, expr.Clone(c))
		}
	}
	if pred := expr.And(applicable); pred != nil {
		node = &plan.Filter{Card: plan.Card{Est: a.rows}, Input: node, Pred: pred}
	}
	root, err := plan.FinalizeSelect(g.sel, node)
	if err != nil {
		return nil, err
	}
	local := a.localCost + g.model.Filter(a.rows)
	rows := a.rows
	if g.hasAgg {
		groups := rows/2 + 1
		local += g.model.Aggregate(rows, groups)
		rows = groups
	}
	if len(g.sel.OrderBy) > 0 {
		local += g.model.Sort(rows)
	}
	noteSpine(root, node, rows)
	return &Candidate{
		Root:          root,
		ResponseTime:  a.remoteMax + local,
		TotalWork:     a.remoteSum + local,
		Rows:          rows,
		Offers:        a.offers,
		UnionBindings: dedupStrings(a.unions),
		JoinSubsets:   a.joins,
	}, nil
}

// wholePlanCandidates turns complete (aggregated or view) whole-query offers
// into single-Remote candidates with local ordering applied.
func (g *planGen) wholePlanCandidates() []Candidate {
	var out []Candidate
	for _, info := range g.offers {
		if !info.whole {
			continue
		}
		var node plan.Node = info.remote()
		local := 0.0
		if len(g.sel.OrderBy) > 0 {
			keys := make([]plan.SortKey, 0, len(g.sel.OrderBy))
			for _, ob := range g.sel.OrderBy {
				keys = append(keys, plan.SortKey{Expr: sortKeyForOutput(ob.Expr, info.schema), Desc: ob.Desc})
			}
			node = &plan.Sort{Input: node, Keys: keys}
			local += g.model.Sort(info.o.Props.Rows)
		}
		rows := info.o.Props.Rows
		if g.sel.Limit >= 0 {
			node = &plan.Limit{Input: node, N: g.sel.Limit}
			rows = minI(rows, g.sel.Limit)
		}
		noteSpine(node, nil, rows)
		out = append(out, Candidate{
			Root:         node,
			ResponseTime: info.o.Props.TotalTime + local,
			TotalWork:    info.o.Props.TotalTime + local,
			Rows:         info.o.Props.Rows,
			Offers:       []trading.Offer{info.o},
		})
	}
	return out
}

// noteSpine stamps the final row estimate on the single-input operators
// wrapped around base (the aggregate/sort/limit/distinct spine built by
// FinalizeSelect), for EXPLAIN ANALYZE. Walking stops at base or at the
// first operator with several inputs.
func noteSpine(root, base plan.Node, rows int64) {
	for n := root; n != nil && n != base; {
		plan.SetEst(n, rows)
		ch := n.Children()
		if len(ch) != 1 {
			return
		}
		n = ch[0]
	}
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// sortKeyForOutput maps an ORDER BY expression onto the remote output schema
// (aliases win over source columns).
func sortKeyForOutput(e expr.Expr, schema []expr.ColumnID) expr.Expr {
	if c, ok := e.(*expr.Column); ok {
		for _, s := range schema {
			if strings.EqualFold(c.Name, s.Name) {
				return expr.NewColumn(s.Table, s.Name)
			}
		}
	}
	return expr.Clone(e)
}

// bindable reports whether every column of e is available in the schema.
func bindable(e expr.Expr, schema []expr.ColumnID) bool {
	for _, c := range expr.Columns(e) {
		found := false
		for _, s := range schema {
			if !strings.EqualFold(c.Name, s.Name) {
				continue
			}
			if c.Table == "" || strings.EqualFold(c.Table, s.Table) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EstimateValuation turns a candidate into the multidimensional valuation the
// buyer ranks with its weighting function. Money is the sum of the asked
// prices of the purchased offers, so commercial federations (Weights.Money
// > 0) trade execution speed against spend.
func EstimateValuation(c *Candidate) cost.Valuation {
	var paid float64
	minFresh := 1.0
	for _, o := range c.Offers {
		paid += o.Price
		if o.Props.Freshness > 0 && o.Props.Freshness < minFresh {
			minFresh = o.Props.Freshness
		}
	}
	return cost.Valuation{
		TotalTime: c.ResponseTime,
		Rows:      c.Rows,
		Freshness: minFresh,
		// The plan generator assembles exact coverage, so the answer is
		// complete even when individual offers were partial.
		Completeness: 1,
		Money:        paid,
	}
}

// ValueOf ranks a candidate under the federation weights; lower is better.
func ValueOf(w cost.Weights, c *Candidate) float64 {
	return w.Score(EstimateValuation(c))
}
