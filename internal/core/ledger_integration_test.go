package core

import (
	"fmt"
	"strings"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
)

// TestLedgerAuditsNegotiationEndToEnd: with a shared ledger on buyer and
// sellers, one optimize+execute cycle must leave a complete negotiation
// record — RFB out, bids in, rounds, awards, seller-side pricing, execution
// and fetches with measured actuals — and the calibration layer must see
// every seller that bid.
func TestLedgerAuditsNegotiationEndToEnd(t *testing.T) {
	f := buildFederation(t, nil)
	led := ledger.New(8)
	f.athens.SetLedger(led)
	f.corfu.SetLedger(led)
	f.myc.SetLedger(led)
	want := oracle(t, f.sch, paperQuery)

	cfg := athensCfg(f)
	cfg.Ledger = led
	res, got := optimizeAndRun(t, f, cfg, paperQuery)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs:\ngot  %v\nwant %v", got, want)
	}
	if res.LedgerRec == nil {
		t.Fatal("result must carry its ledger record")
	}

	negs := led.Negotiations(0)
	if len(negs) != 1 {
		t.Fatalf("negotiations: %d", len(negs))
	}
	n := negs[0]
	if !n.Awarded || n.Buyer != "athens" || n.ID == "" {
		t.Fatalf("negotiation header: %+v", n)
	}
	kinds := map[string]int{}
	for _, e := range n.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{ledger.KindRFB, ledger.KindBid, ledger.KindRound,
		ledger.KindAward, ledger.KindPriced, ledger.KindExecStart,
		ledger.KindExec, ledger.KindFetch} {
		if kinds[k] == 0 {
			t.Fatalf("no %q event in %v", k, kinds)
		}
	}
	// Fetches must carry measured actuals joined to the quoted estimate.
	quoted := 0
	for _, e := range n.Events {
		if e.Kind == ledger.KindFetch && e.Err == "" {
			if e.Rows == 0 || e.Seller == "" {
				t.Fatalf("fetch event incomplete: %+v", e)
			}
			if e.QuotedMS > 0 {
				quoted++
			}
		}
	}
	if quoted == 0 {
		t.Fatal("no fetch joined a quoted estimate")
	}

	rep := led.Calibration()
	if rep.Negotiations != 1 {
		t.Fatalf("report negotiations: %d", rep.Negotiations)
	}
	bySeller := map[string]ledger.SellerReport{}
	for _, s := range rep.Sellers {
		bySeller[s.Seller] = s
	}
	execs := int64(0)
	for _, id := range []string{"corfu", "myconos"} {
		s, ok := bySeller[id]
		if !ok || s.Bids == 0 {
			t.Fatalf("seller %s missing from calibration: %+v", id, rep.Sellers)
		}
		execs += s.Execs
	}
	if execs == 0 {
		t.Fatalf("no measured execution reached calibration: %+v", rep.Sellers)
	}
}

// TestLedgerRecordsRecovery mirrors TestFallbackSubstitution with a ledger
// attached: when a crashed seller's purchases are patched from standing
// offers, the negotiation record must show the substitution.
func TestLedgerRecordsRecovery(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	led := ledger.New(8)

	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)
	cfg.Ledger = led

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Candidate.Offers[0].SellerID
	crash := &crashOnDeliver{Comm: comm, victim: winner, onCrash: func() {}}

	if _, _, _, err := OptimizeAndExecute(cfg, crash,
		&exec.Executor{Store: f.athens.Store()}, q, 2); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	found := false
	for _, n := range led.Negotiations(0) {
		for _, e := range n.Events {
			if e.Kind == ledger.KindRecovery {
				if e.Err != winner || e.Seller == winner || e.Seller == "" {
					t.Fatalf("recovery event should substitute away from %s: %+v", winner, e)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no recovery event recorded")
	}
}

// recoveryReason runs one crash-or-drain delivery failure through
// OptimizeAndExecute with a ledger attached and returns the Reason recorded
// on the resulting recovery event.
func recoveryReason(t *testing.T, deliverErr func(to string) error) string {
	t.Helper()
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	led := ledger.New(8)

	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)
	cfg.Ledger = led

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Candidate.Offers[0].SellerID
	fail := &failDeliver{Comm: comm, victim: winner, mkErr: deliverErr}

	if _, _, _, err := OptimizeAndExecute(cfg, fail,
		&exec.Executor{Store: f.athens.Store()}, q, 2); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	for _, n := range led.Negotiations(0) {
		for _, e := range n.Events {
			if e.Kind == ledger.KindRecovery {
				return e.Reason
			}
		}
	}
	t.Fatal("no recovery event recorded")
	return ""
}

// failDeliver fails every Fetch to the victim with a caller-supplied error.
type failDeliver struct {
	Comm
	victim string
	mkErr  func(to string) error
}

func (c *failDeliver) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	if to == c.victim {
		return trading.ExecResp{}, c.mkErr(to)
	}
	return c.Comm.Fetch(to, req)
}

// TestRecoveryEventsClassifyFailureReason pins the audit trail's why-column
// (the satellite-3 regression: a crash between award and fetch used to
// surface as a generic error). A crash lands a recovery event with Reason
// "crash" — whether typed or flattened to text by an RPC boundary — and a
// typed drain rejection lands "drain".
func TestRecoveryEventsClassifyFailureReason(t *testing.T) {
	typedCrash := func(to string) error {
		return trading.MarkTransient(fmt.Errorf("netsim: node %q crashed: %w", to, trading.ErrPeerCrashed))
	}
	if r := recoveryReason(t, typedCrash); r != "crash" {
		t.Fatalf("typed crash classified %q, want \"crash\"", r)
	}
	flattenedCrash := func(to string) error { return fmt.Errorf("node %s crashed", to) }
	if r := recoveryReason(t, flattenedCrash); r != "crash" {
		t.Fatalf("flattened crash classified %q, want \"crash\"", r)
	}
	drain := func(to string) error {
		return trading.MarkTransient(fmt.Errorf("node %s: execute refused: %w", to, trading.ErrDraining))
	}
	if r := recoveryReason(t, drain); r != "drain" {
		t.Fatalf("drain rejection classified %q, want \"drain\"", r)
	}
}
