package core

import (
	"strings"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
)

// TestLedgerAuditsNegotiationEndToEnd: with a shared ledger on buyer and
// sellers, one optimize+execute cycle must leave a complete negotiation
// record — RFB out, bids in, rounds, awards, seller-side pricing, execution
// and fetches with measured actuals — and the calibration layer must see
// every seller that bid.
func TestLedgerAuditsNegotiationEndToEnd(t *testing.T) {
	f := buildFederation(t, nil)
	led := ledger.New(8)
	f.athens.SetLedger(led)
	f.corfu.SetLedger(led)
	f.myc.SetLedger(led)
	want := oracle(t, f.sch, paperQuery)

	cfg := athensCfg(f)
	cfg.Ledger = led
	res, got := optimizeAndRun(t, f, cfg, paperQuery)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs:\ngot  %v\nwant %v", got, want)
	}
	if res.LedgerRec == nil {
		t.Fatal("result must carry its ledger record")
	}

	negs := led.Negotiations(0)
	if len(negs) != 1 {
		t.Fatalf("negotiations: %d", len(negs))
	}
	n := negs[0]
	if !n.Awarded || n.Buyer != "athens" || n.ID == "" {
		t.Fatalf("negotiation header: %+v", n)
	}
	kinds := map[string]int{}
	for _, e := range n.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{ledger.KindRFB, ledger.KindBid, ledger.KindRound,
		ledger.KindAward, ledger.KindPriced, ledger.KindExecStart,
		ledger.KindExec, ledger.KindFetch} {
		if kinds[k] == 0 {
			t.Fatalf("no %q event in %v", k, kinds)
		}
	}
	// Fetches must carry measured actuals joined to the quoted estimate.
	quoted := 0
	for _, e := range n.Events {
		if e.Kind == ledger.KindFetch && e.Err == "" {
			if e.Rows == 0 || e.Seller == "" {
				t.Fatalf("fetch event incomplete: %+v", e)
			}
			if e.QuotedMS > 0 {
				quoted++
			}
		}
	}
	if quoted == 0 {
		t.Fatal("no fetch joined a quoted estimate")
	}

	rep := led.Calibration()
	if rep.Negotiations != 1 {
		t.Fatalf("report negotiations: %d", rep.Negotiations)
	}
	bySeller := map[string]ledger.SellerReport{}
	for _, s := range rep.Sellers {
		bySeller[s.Seller] = s
	}
	execs := int64(0)
	for _, id := range []string{"corfu", "myconos"} {
		s, ok := bySeller[id]
		if !ok || s.Bids == 0 {
			t.Fatalf("seller %s missing from calibration: %+v", id, rep.Sellers)
		}
		execs += s.Execs
	}
	if execs == 0 {
		t.Fatalf("no measured execution reached calibration: %+v", rep.Sellers)
	}
}

// TestLedgerRecordsRecovery mirrors TestFallbackSubstitution with a ledger
// attached: when a crashed seller's purchases are patched from standing
// offers, the negotiation record must show the substitution.
func TestLedgerRecordsRecovery(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	led := ledger.New(8)

	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)
	cfg.Ledger = led

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Candidate.Offers[0].SellerID
	crash := &crashOnDeliver{Comm: comm, victim: winner, onCrash: func() {}}

	if _, _, _, err := OptimizeAndExecute(cfg, crash,
		&exec.Executor{Store: f.athens.Store()}, q, 2); err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	found := false
	for _, n := range led.Negotiations(0) {
		for _, e := range n.Events {
			if e.Kind == ledger.KindRecovery {
				if e.Err != winner || e.Seller == winner || e.Seller == "" {
					t.Fatalf("recovery event should substitute away from %s: %+v", winner, e)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no recovery event recorded")
	}
}
