package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// Streaming and one-shot delivery must purchase the same plans and produce
// the same answers: the chunked fetch is a transport change, not a
// semantics change.
func TestStreamingFederationDifferential(t *testing.T) {
	queries := []string{
		paperQuery,
		"SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4",
		"SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid",
		"SELECT c.custname FROM customer c WHERE c.office = 'Myconos'",
	}
	for _, q := range queries {
		f := buildFederation(t, nil)
		oneShot := athensCfg(f)
		oneShot.FetchBatchRows = -1 // pre-streaming materializing fetch
		_, plain := optimizeAndRunCfg(t, f, oneShot, q)

		streamed := athensCfg(f)
		streamed.FetchBatchRows = 2 // force multiple continuations per leaf
		_, chunked := optimizeAndRunCfg(t, f, streamed, q)

		if strings.Join(plain, "|") != strings.Join(chunked, "|") {
			t.Fatalf("%s\n  one-shot %v\n  streamed %v", q, plain, chunked)
		}
		if got := f.corfu.OpenCursors() + f.myc.OpenCursors(); got != 0 {
			t.Fatalf("%s: %d seller cursors left parked", q, got)
		}
	}
}

func optimizeAndRunCfg(t *testing.T, f *federation, cfg Config, sql string) (*Result, []string) {
	t.Helper()
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, sql)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	out, err := ExecuteResult(comm, &exec.Executor{Store: f.athens.Store()}, res)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, ExplainResult(res))
	}
	return res, rowsKey(out.Rows)
}

// Abandoning a streamed result early (the consumer closes after the first
// batch) must release every seller-side cursor the plan opened.
func TestStreamEarlyCloseReleasesSellers(t *testing.T) {
	f := buildFederation(t, nil)
	cfg := athensCfg(f)
	cfg.FetchBatchRows = 1 // every multi-row leaf parks a seller cursor
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	q := "SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid"
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	cur, cols, err := ExecuteResultStream(comm, &exec.Executor{Store: f.athens.Store()}, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("schema: %v", cols)
	}
	b, err := cur.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("streamed execution must surface a first batch")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if got := f.corfu.OpenCursors() + f.myc.OpenCursors() + f.athens.OpenCursors(); got != 0 {
		t.Fatalf("early close left %d seller cursors parked", got)
	}
}

// Pulling a streamed result to completion matches the materialized answer.
func TestStreamedResultMatchesOracle(t *testing.T) {
	f := buildFederation(t, nil)
	want := oracle(t, f.sch, paperQuery)
	cfg := athensCfg(f)
	cfg.FetchBatchRows = 2
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := ExecuteResultStream(comm, &exec.Executor{Store: f.athens.Store()}, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rows []value.Row
	for {
		b, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			break
		}
		rows = append(rows, b...)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowsKey(rows), "|") != strings.Join(want, "|") {
		t.Fatalf("streamed answer differs:\ngot  %v\nwant %v", rowsKey(rows), want)
	}
}

// loseReplyOnce forwards a continuation to the seller but drops the reply
// once: the seller advanced, the buyer retries the same Seq, and the
// idempotent re-delivery keeps the answer exact with zero recovery rounds.
type loseReplyOnce struct {
	Comm
	mu   sync.Mutex
	lost bool
}

func (c *loseReplyOnce) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	if req.Cursor != "" && !req.CloseCursor {
		c.mu.Lock()
		first := !c.lost
		c.lost = true
		c.mu.Unlock()
		if first {
			if _, err := c.Comm.Fetch(to, req); err != nil {
				return trading.ExecResp{}, err
			}
			return trading.ExecResp{}, trading.MarkTransient(fmt.Errorf("reply to %s lost", to))
		}
	}
	return c.Comm.Fetch(to, req)
}

func TestStreamLostReplyRetriedIdempotently(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	want := oracle(t, f.sch, q)
	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)
	cfg.FetchBatchRows = 1
	comm := &loseReplyOnce{Comm: &NetComm{Net: f.net, SelfID: "athens"}}
	out, _, retries, err := OptimizeAndExecute(cfg, comm, &exec.Executor{Store: f.athens.Store()}, q, 2)
	if err != nil {
		t.Fatalf("lost reply must be absorbed by the retry: %v", err)
	}
	if retries != 0 {
		t.Fatalf("idempotent re-delivery must not cost a recovery round, got %d", retries)
	}
	if strings.Join(rowsKey(out.Rows), "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs after retried batch:\ngot  %v\nwant %v", rowsKey(out.Rows), want)
	}
}

// failContinuations persistently fails every continuation pull against one
// victim seller (the opening fetch still works), simulating a seller that
// dies mid-stream.
type failContinuations struct {
	Comm
	victim string
}

func (c *failContinuations) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	if to == c.victim && req.Cursor != "" && !req.CloseCursor {
		return trading.ExecResp{}, fmt.Errorf("node %s crashed", to)
	}
	return c.Comm.Fetch(to, req)
}

// A seller that dies mid-stream is recovered like one that dies before
// delivery: the failure is attributed to that seller and a standing-offer
// substitute (or re-optimization) answers the query.
func TestStreamMidStreamFaultRecovered(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	want := oracle(t, f.sch, q)
	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)
	cfg.FetchBatchRows = 1
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for _, o := range res.Candidate.Offers {
		if o.SellerID != "athens" {
			victim = o.SellerID
			break
		}
	}
	if victim == "" {
		t.Skip("plan bought nothing remote")
	}
	faulty := &failContinuations{Comm: comm, victim: victim}
	out, finalRes, _, err := OptimizeAndExecute(cfg, faulty, &exec.Executor{Store: f.athens.Store()}, q, 2)
	if err != nil {
		t.Fatalf("mid-stream fault not recovered: %v", err)
	}
	if strings.Join(rowsKey(out.Rows), "|") != strings.Join(want, "|") {
		t.Fatalf("recovered answer differs:\ngot  %v\nwant %v", rowsKey(out.Rows), want)
	}
	for _, o := range finalRes.Candidate.Offers {
		if o.SellerID == victim {
			t.Fatalf("mid-stream-failed seller %s still in the recovered plan", victim)
		}
	}
}

// The streamed cursor honors the full cursor contract under tracing: Open
// is a no-op (ExecuteResultStream returns the handle already opened), Next
// after Close reports exhaustion, and Close is idempotent.
func TestStreamTracedHandleLifecycle(t *testing.T) {
	f := buildFederation(t, nil)
	cfg := athensCfg(f)
	cfg.FetchBatchRows = 2
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	cur, _, err := ExecuteResultStream(comm, &exec.Executor{Store: f.athens.Store()}, res, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Open(); err != nil {
		t.Fatalf("re-open of a live handle must be a no-op: %v", err)
	}
	var rows int
	for {
		b, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			break
		}
		rows += len(b)
	}
	if rows == 0 {
		t.Fatal("traced stream produced no rows")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if b, err := cur.Next(); err != nil || b != nil {
		t.Fatalf("closed handle must be exhausted: %v %v", b, err)
	}
	if len(tr.Roots()) == 0 {
		t.Fatal("traced execution must record spans")
	}
}

// failStreamOpens refuses every streamed opening fetch: the pipeline cannot
// open, and ExecuteResultStream must surface the error instead of handing
// back a half-built cursor.
type failStreamOpens struct{ Comm }

func (c *failStreamOpens) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	if req.Stream {
		return trading.ExecResp{}, fmt.Errorf("node %s unreachable", to)
	}
	return c.Comm.Fetch(to, req)
}

func TestStreamOpenFailureSurfaced(t *testing.T) {
	f := buildFederation(t, nil)
	cfg := athensCfg(f)
	cfg.FetchBatchRows = 1
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	q := "SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid"
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	remote := false
	for _, o := range res.Candidate.Offers {
		if o.SellerID != "athens" {
			remote = true
		}
	}
	if !remote {
		t.Skip("plan bought nothing remote")
	}
	faulty := &failStreamOpens{Comm: comm}
	cur, _, err := ExecuteResultStream(faulty, &exec.Executor{Store: f.athens.Store()}, res, obs.NewTracer())
	if err == nil {
		cur.Close()
		t.Fatal("unreachable sellers must fail the streamed open")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("error must attribute the unreachable seller: %v", err)
	}
}
