package core

import (
	"fmt"
	"sync"

	"qtrade/internal/exec"
	"qtrade/internal/trading"
)

// trackingComm wraps a Comm and records which sellers failed to deliver a
// purchased answer, keeping the first error per seller so recovery can
// classify why (crash vs drain vs timeout) in its audit trail.
type trackingComm struct {
	inner Comm

	mu     sync.Mutex
	failed map[string]error
}

func (c *trackingComm) Peers() map[string]trading.Peer { return c.inner.Peers() }

func (c *trackingComm) Award(to string, aw trading.Award) error { return c.inner.Award(to, aw) }

func (c *trackingComm) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	resp, err := c.inner.Fetch(to, req)
	if err != nil {
		c.mu.Lock()
		if c.failed[to] == nil {
			c.failed[to] = err
		}
		c.mu.Unlock()
	}
	return resp, err
}

// failedSet returns the failed sellers as the set shape substituteOffers
// consumes.
func (c *trackingComm) failedSet() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.failed))
	for id := range c.failed {
		out[id] = true
	}
	return out
}

// reasonFor classifies the recorded failure of one seller.
func (c *trackingComm) reasonFor(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return trading.FailureReason(c.failed[id])
}

// guardedComm runs a Comm's exchanges under a FaultPolicy: Fetch gets the
// full breaker/timeout/retry guard (a hung or flaky seller cannot stall
// delivery unboundedly), Award the same as a plain guarded call.
type guardedComm struct {
	inner Comm
	pol   *trading.FaultPolicy
}

func (g guardedComm) Peers() map[string]trading.Peer { return g.inner.Peers() }

func (g guardedComm) Award(to string, aw trading.Award) error {
	return g.pol.Call(to, func() error { return g.inner.Award(to, aw) })
}

func (g guardedComm) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	return trading.GuardCall(g.pol, to, func() (trading.ExecResp, error) { return g.inner.Fetch(to, req) })
}

// OptimizeAndExecute runs the full pipeline with execution-time recovery: if
// a purchased seller fails while delivering (crash between negotiation and
// execution — the autonomy hazard the paper's contracting extension targets),
// the buyer recovers and retries, up to maxRetries times. With cfg.Faults
// set, recovery first tries the cheap path — substituting an equivalent
// standing offer from the final pool into the winning plan (see
// substituteOffers) — and only re-optimizes with the failed sellers excluded
// when no substitute exists. It returns the rows, the final winning plan,
// and the number of recovery rounds used.
func OptimizeAndExecute(cfg Config, comm Comm, localExec *exec.Executor, sql string, maxRetries int) (*exec.Result, *Result, int, error) {
	if maxRetries < 0 {
		maxRetries = 0
	}
	excluded := map[string]bool{}
	for k, v := range cfg.ExcludeSellers {
		excluded[k] = v
	}
	fallbacks := cfg.Metrics.Counter("buyer." + cfg.ID + ".recovery_fallbacks")
	execComm := comm
	if cfg.Faults != nil {
		execComm = guardedComm{inner: comm, pol: cfg.Faults}
	}
	var lastErr error
	for attempt := 0; attempt <= maxRetries; attempt++ {
		attemptCfg := cfg
		attemptCfg.ExcludeSellers = excluded
		res, err := Optimize(attemptCfg, comm, sql)
		if err != nil {
			return nil, nil, attempt, err
		}
		tc := &trackingComm{inner: execComm, failed: map[string]error{}}
		sp := cfg.Tracer.Start(cfg.ID, "execute")
		sp.Set("attempt", attempt)
		out, err := executeUnder(tc, localExec, res, sp)
		if err == nil {
			sp.End()
			return out, res, attempt, nil
		}
		// Graceful degradation: before paying for a re-optimization, fall
		// back to the next-best standing offers covering the failed
		// purchases. Each pass may expose another broken seller, so keep
		// substituting until the plan runs or the pool is out of equivalents.
		if cfg.Faults != nil {
			for err != nil && len(tc.failed) > 0 {
				// Snapshot the failed purchases' sellers before substituteOffers
				// patches the plan, so the ledger can name who was replaced.
				var oldSeller map[string]string
				if res.LedgerRec != nil {
					oldSeller = make(map[string]string, len(res.Candidate.Offers))
					for _, o := range res.Candidate.Offers {
						oldSeller[o.OfferID] = o.SellerID
					}
				}
				repl, ok := substituteOffers(res, tc.failedSet())
				if !ok {
					break
				}
				fallbacks.Add(int64(len(repl)))
				sp.Set("fallbacks", len(repl))
				if res.LedgerRec != nil {
					for oldID, nb := range repl {
						res.LedgerRec.Recovery(oldSeller[oldID], nb.SellerID, nb.OfferID,
							tc.reasonFor(oldSeller[oldID]))
					}
				}
				for _, nb := range repl {
					if nb.SellerID == cfg.ID {
						continue
					}
					// Courtesy award to the substitute; failures are
					// tolerable (execution carries the purchased SQL).
					_ = execComm.Award(nb.SellerID, trading.Award{RFBID: nb.RFBID, OfferID: nb.OfferID, BuyerID: cfg.ID})
				}
				out, err = executeUnder(tc, localExec, res, sp)
			}
			if err == nil {
				sp.End()
				return out, res, attempt, nil
			}
		}
		sp.Set("error", err)
		sp.End()
		lastErr = err
		if len(tc.failed) == 0 {
			// Not a delivery failure (e.g. a local execution bug): retrying
			// with the same plan cannot help.
			return nil, nil, attempt, err
		}
		for id, ferr := range tc.failed {
			excluded[id] = true
			// A drain rejection at fetch time is membership news, not a
			// fault: record it so the re-optimization's health gate skips
			// the peer instead of rediscovering the drain per call.
			if trading.FailureReason(ferr) == "drain" {
				cfg.Directory.MarkState(id, trading.StateDraining)
			}
		}
	}
	return nil, nil, maxRetries + 1, fmt.Errorf("core: recovery exhausted after %d retries: %w", maxRetries, lastErr)
}
