package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
)

// Comm is the buyer's communication surface: negotiate through Peers, notify
// winners through Award, and fetch purchased answers through Fetch at
// execution time.
type Comm interface {
	Peers() map[string]trading.Peer
	Award(to string, aw trading.Award) error
	Fetch(to string, req trading.ExecReq) (trading.ExecResp, error)
}

// LocalSeller lets the buyer fold its own node's offers into the pool (a
// node outsources a query only when some remote offer beats local
// execution). node.Node satisfies it.
type LocalSeller interface {
	RequestBids(trading.RFB) (trading.BidReply, error)
}

// Config configures the buyer side of the QT optimizer.
type Config struct {
	ID     string
	Schema *catalog.Schema
	Cost   *cost.Model  // nil = cost.Default()
	Weight cost.Weights // zero = cost.DefaultWeights()
	// Protocol is the nested negotiation of steps B2/B3/S3; nil = SealedBid.
	Protocol trading.Protocol
	// Mode selects the buyer plan generator; empty = GenDP. IDPKeep is the
	// M of IDP-M(2, M); 0 = 5.
	Mode    PlanGenMode
	IDPKeep int
	// MaxIterations bounds the trading loop; 0 = 5.
	MaxIterations int
	// MaxNewQueries bounds the predicates analyser output per iteration;
	// 0 = 12.
	MaxNewQueries int
	// Strategy produces the buyer's value estimates (B1); nil = anchored.
	Strategy trading.BuyerStrategy
	// Self contributes the buyer's own offers at zero network cost.
	Self LocalSeller
	// OnIteration, when set, observes each trading iteration: the iteration
	// number, the best candidate value so far and the offer pool size (used
	// by the convergence experiment).
	OnIteration func(iter int, bestValue float64, poolSize int)
	// ExcludeSellers drops the named peers from the negotiation (used by
	// execution-time recovery to re-optimize around a failed seller).
	ExcludeSellers map[string]bool
	// Directory, when set, health-gates the peer view resolved for this
	// negotiation: peers recorded as draining or left — or whose circuit
	// breaker is open — are skipped before any RFB is sent, and call
	// outcomes feed back into it (a drain rejection marks the peer
	// draining; a successful exchange refreshes last-seen and clears an
	// observed drain). Nil gates nothing.
	Directory *trading.Directory
	// PeerLatency, when set, returns the buyer's measured one-way latency
	// to a seller in cost-model time units. Sellers price delivery with
	// their own network constants; the buyer corrects each offer's total
	// time with its private knowledge of the path, so nearby replicas win
	// over far ones in heterogeneous (WAN) federations.
	PeerLatency func(sellerID string) float64
	// Faults, when set, guards every peer exchange with the policy's
	// per-call timeout, bounded retry, and per-peer circuit breaker, and
	// bounds each negotiation round with a straggler-cutting deadline
	// (FaultAware protocols). It also unlocks the graceful-degradation path
	// of OptimizeAndExecute: standing-offer fallback before re-optimization.
	// Nil (the default) leaves every call unguarded — the exact
	// pre-fault-tolerance behaviour.
	Faults *trading.FaultPolicy
	// Tracer, when set, records one span tree for this optimization:
	// iterations → negotiation rounds → per-seller RFBs (with the sellers'
	// own pricing subtrees grafted under them when sampled), plus plan
	// generation and the predicates analyser. Nil (the default) costs
	// nothing.
	Tracer *obs.Tracer
	// Sampling decides which optimizations carry a distributed trace context
	// across the federation. Nil means obs.SampleAlways. Ignored without a
	// Tracer. Share one *Sampling across optimizations: it owns the seeded
	// rng for obs.SampleRatio.
	Sampling *obs.Sampling
	// Metrics, when set, receives buyer-side counters/histograms under
	// "buyer.<id>.". Nil costs nothing.
	Metrics *obs.Metrics
	// Ledger, when set, records this negotiation's economic event chain —
	// RFBs, bids, rounds, awards, and at execution time the measured actuals
	// behind every purchase — and feeds the per-seller quoted-vs-actual
	// calibration. Nil (the default) adds zero allocations.
	Ledger *ledger.Ledger
	// Flight, when set, assembles one flight dossier per completed
	// execution of this buyer's queries — grafted trace spans, the ledger
	// event chain, per-operator est-vs-actual rows, quoted-vs-measured cost
	// — and admits it to the recorder (outliers are kept by its trigger
	// rules). Executions automatically collect exec.RunStats when set. Nil
	// (the default) skips dossier assembly entirely.
	Flight *flight.Recorder
	// Workers bounds the buyer's own fan-out: the per-round RFB/improve
	// dispatch of ConcurrencyAware protocols and the execution-time fetch of
	// remote plan leaves. 0 (the default) means one in-flight call per
	// seller — the full fan-out; 1 means strictly serial in deterministic
	// order; n > 1 caps the in-flight calls at n. Whatever the setting, the
	// assembled offer pool and the chosen plan are byte-identical (replies
	// are collected positionally and re-sorted).
	Workers int
	// FetchBatchRows sets the row-batch granularity of execution-time
	// fetches. 0 (the default) streams purchased answers in
	// exec.DefaultBatchSize batches; n > 0 streams in batches of n; a
	// negative value disables streaming entirely and ships each answer as
	// one materialized ExecResp (the pre-streaming wire behaviour). The
	// answer is byte-identical either way — only delivery granularity, peak
	// memory, and first-row latency change.
	FetchBatchRows int
}

// Stats reports what one optimization cost.
type Stats struct {
	Iterations     int
	RFBsSent       int
	OffersReceived int
	PoolSize       int
	ProtocolRounds int
	QueriesAsked   int
	Improvements   int
	WallTime       time.Duration

	// Seller-side telemetry, aggregated from the offers the negotiation saw
	// (so the F7/F10 experiments can report it without re-instrumenting).
	OffersPriced      int // DP-priced partial-result offers received
	ViewOffers        int // offers derived from materialized views
	PartialAggOffers  int // partial-aggregate (pushdown) offers
	EmptyBidResponses int // RFB replies carrying no offers: the seller's rewrite produced nothing
}

// Result is the outcome of a QT optimization: the winning candidate plan and
// the offers it purchases. Pool retains the full standing-offer pool of the
// final iteration (sorted by OfferID) so execution-time recovery can fall
// back to the next-best standing offer without re-negotiating.
type Result struct {
	SQL       string
	Candidate Candidate
	Stats     Stats
	Pool      []trading.Offer
	// BuyerID and TraceCtx carry the optimization's identity and sampling
	// decision into execution, so ExecuteResultTraced extends the same
	// federation-wide trace across the purchased-answer fetches.
	BuyerID  string
	TraceCtx obs.TraceContext
	// Workers carries Config.Workers into execution so the remote-leaf
	// prefetch honours the same fan-out bound as the negotiation.
	Workers int
	// FetchBatch carries Config.FetchBatchRows into execution (see there
	// for the 0 / n / negative semantics).
	FetchBatch int
	// LedgerRec is this negotiation's open trading-ledger record (nil when
	// Config.Ledger was unset), carried into execution so the fetch/execute
	// actuals land in the same event chain as the bids and awards.
	LedgerRec *ledger.Rec
	// flight carries the negotiation's identity into the execution
	// finalizers that assemble its dossier (nil when Config.Flight unset).
	flight *flightCapture
}

var rfbSeq atomic.Int64

// countingPeer wraps a seller to count replies that carried no offers — the
// remote rewrite produced nothing the node could bid. The wrapper is built
// once per optimization, so the per-call overhead is one length check.
type countingPeer struct {
	trading.Peer
	empty *atomic.Int64
}

func (p countingPeer) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	rep, err := p.Peer.RequestBids(rfb)
	if err == nil && len(rep.Offers) == 0 {
		p.empty.Add(1)
	}
	return rep, err
}

// directoryPeer feeds call outcomes back into the shared peer directory: a
// successful exchange refreshes last-seen (undraining the peer if a drain
// had been observed), a drain rejection marks the peer draining so the next
// negotiation's health gate skips it without spending a round-trip.
type directoryPeer struct {
	trading.Peer
	id  string
	dir *trading.Directory
}

func (p directoryPeer) observe(err error) {
	switch {
	case err == nil:
		p.dir.Seen(p.id)
	case trading.FailureReason(err) == "drain":
		p.dir.MarkState(p.id, trading.StateDraining)
	}
}

func (p directoryPeer) RequestBids(rfb trading.RFB) (trading.BidReply, error) {
	rep, err := p.Peer.RequestBids(rfb)
	p.observe(err)
	return rep, err
}

func (p directoryPeer) ImproveBids(req trading.ImproveReq) (trading.BidReply, error) {
	rep, err := p.Peer.ImproveBids(req)
	// A draining seller still serves improvement rounds (with an empty
	// reply), so a successful improve is NOT evidence the peer undrained —
	// only failures feed back here. RequestBids success is the undrain
	// signal: draining nodes refuse those.
	if err != nil {
		p.observe(err)
	}
	return rep, err
}

// buyerObs bundles the buyer's pre-resolved instruments (all nil-safe).
type buyerObs struct {
	optimizations *obs.Counter
	rfbsSent      *obs.Counter
	offersRecv    *obs.Counter
	poolSize      *obs.Gauge
	optimizeMS    *obs.Histogram
	plangenMS     *obs.Histogram
}

func newBuyerObs(m *obs.Metrics, id string) buyerObs {
	p := "buyer." + id + "."
	return buyerObs{
		optimizations: m.Counter(p + "optimizations"),
		rfbsSent:      m.Counter(p + "rfbs_sent"),
		offersRecv:    m.Counter(p + "offers_received"),
		poolSize:      m.Gauge(p + "pool_size"),
		optimizeMS:    m.Histogram(p + "optimize_ms"),
		plangenMS:     m.Histogram(p + "plangen_ms"),
	}
}

// partsKey canonicalizes an offer's coverage for pool deduplication (the
// same SQL may be offered with different coverage, e.g. a partial and its
// subcontracted completion).
func partsKey(o trading.Offer) string {
	keys := make([]string, 0, len(o.Parts))
	for b, ps := range o.Parts {
		sorted := append([]string(nil), ps...)
		sort.Strings(sorted)
		keys = append(keys, b+"="+strings.Join(sorted, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// Optimize runs the full iterative QT algorithm (steps B1–B8 of Figure 2)
// for the given SQL text and returns the best distributed plan found.
// Nothing is executed; call ExecuteResult with the returned plan to fetch
// the purchased answers and produce rows.
func Optimize(cfg Config, comm Comm, sql string) (*Result, error) {
	start := time.Now()
	if cfg.Cost == nil {
		cfg.Cost = cost.Default()
	}
	if (cfg.Weight == cost.Weights{}) {
		cfg.Weight = cost.DefaultWeights()
	}
	if cfg.Protocol == nil {
		cfg.Protocol = trading.SealedBid{}
	}
	if cfg.Faults != nil {
		if fa, ok := cfg.Protocol.(trading.FaultAware); ok {
			cfg.Protocol = fa.WithPolicy(cfg.Faults)
		}
	}
	if cfg.Workers != 0 {
		if ca, ok := cfg.Protocol.(trading.ConcurrencyAware); ok {
			cfg.Protocol = ca.WithWorkers(cfg.Workers)
		}
	}
	if cfg.Mode == "" {
		cfg.Mode = GenDP
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 5
	}
	if cfg.Strategy == nil {
		cfg.Strategy = trading.AnchoredBuyer{}
	}
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	plan.Qualify(sel, cfg.Schema)

	var bo buyerObs
	if cfg.Metrics != nil {
		bo = newBuyerObs(cfg.Metrics, cfg.ID)
	}
	bo.optimizations.Inc()
	rec := cfg.Ledger.Begin(cfg.ID, sel.SQL())
	root := cfg.Tracer.Start(cfg.ID, "optimize")
	root.Set("sql", sql)
	defer root.End()

	// Head sampling decides up front whether this negotiation ships trace
	// data across the federation; tail sampling (Sampling.TailSlower) keeps
	// collection on regardless and drops the finished trace below if the
	// negotiation turned out fast. Without a tracer there is nothing to graft
	// onto, so no context is minted and the wire stays trace-free.
	head := true
	var tctx obs.TraceContext
	if cfg.Tracer != nil {
		head = cfg.Sampling.SampleHead()
		if cfg.Sampling.Collect(head) {
			// Mint the context only when collecting: an unsampled negotiation
			// keeps the zero TraceContext, so its messages gob-encode (and
			// account) byte-identically to a federation without tracing.
			tctx = obs.TraceContext{TraceID: obs.NewTraceID(cfg.ID), Sampled: true}
			root.Set("trace_id", tctx.TraceID)
		}
	}

	stats := Stats{}
	pool := map[string]trading.Offer{} // seller+sql -> cheapest offer
	bestPrice := map[string]float64{}  // qid -> best price seen
	asked := map[string]bool{}
	queries := []trading.QueryRequest{{QID: "q0", SQL: sel.SQL()}}
	asked[sel.SQL()] = true
	qSeq := 0

	var best *Candidate
	peers := comm.Peers()
	for id := range cfg.ExcludeSellers {
		delete(peers, id)
	}
	for id := range peers {
		// Health gate: don't spend an RFB round-trip on a peer known to be
		// draining or left, or whose breaker is open. The directory is an
		// exclusion list — unknown peers pass.
		if !cfg.Directory.Eligible(id) {
			delete(peers, id)
		}
	}
	negID := "" // first RFB id: the negotiation's identity in ledger and dossier
	var emptyReplies atomic.Int64
	for id, p := range peers {
		guarded := cfg.Faults.Wrap(id, p)
		if cfg.Directory != nil {
			guarded = directoryPeer{Peer: guarded, id: id, dir: cfg.Directory}
		}
		peers[id] = countingPeer{Peer: guarded, empty: &emptyReplies}
	}

	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		stats.Iterations = iter
		var itSp *obs.Span
		if root != nil {
			itSp = root.Child("iteration")
			itSp.Set("iter", iter)
		}
		// B1: strategic value estimates for the queries in Q.
		for i := range queries {
			queries[i].EstValue = cfg.Strategy.Estimate(queries[i].QID, bestPrice[queries[i].QID])
		}
		// B2/B3 + S1–S3: the nested negotiation.
		rfb := trading.RFB{
			RFBID:   fmt.Sprintf("%s-rfb%d", cfg.ID, rfbSeq.Add(1)),
			BuyerID: cfg.ID,
			Trace:   tctx,
			Queries: queries,
		}
		if negID == "" {
			negID = rfb.RFBID
		}
		stats.RFBsSent += len(peers)
		bo.rfbsSent.Add(int64(len(peers)))
		rec.RFBIssued(rfb.RFBID, iter, len(queries))
		var roundT0 time.Time
		if rec != nil {
			roundT0 = time.Now()
		}
		negSp := itSp.Child("negotiate")
		negSp.Set("peers", len(peers))
		offers, rounds, err := cfg.Protocol.Collect(rfb, peers, negSp)
		negSp.End()
		if err != nil {
			itSp.End()
			return nil, fmt.Errorf("core: negotiation failed: %w", err)
		}
		stats.ProtocolRounds += rounds
		if cfg.Self != nil {
			selfSp := itSp.Child("self-bids")
			selfRFB := rfb
			if selfRFB.Trace.Sampled {
				selfRFB.Trace.Parent = selfSp.ID()
			}
			sentAt := time.Now()
			rep, err := cfg.Self.RequestBids(selfRFB)
			if err == nil {
				selfSp.Set("offers", len(rep.Offers))
				selfSp.Graft(rep.Trace, sentAt, time.Now())
				offers = append(offers, rep.Offers...)
			}
			selfSp.End()
		}
		stats.OffersReceived += len(offers)
		bo.offersRecv.Add(int64(len(offers)))
		for _, o := range offers {
			rec.Bid(iter, o.SellerID, o.QID, o.OfferID, o.Props.TotalTime, o.Price)
			switch {
			case o.FromView:
				stats.ViewOffers++
			case o.PartialAgg:
				stats.PartialAggOffers++
			default:
				stats.OffersPriced++
			}
			key := o.SellerID + "\x00" + o.SQL + "\x00" + partsKey(o)
			if prev, ok := pool[key]; !ok || o.Price < prev.Price {
				pool[key] = o
			}
			if b, ok := bestPrice[o.QID]; !ok || o.Price < b {
				bestPrice[o.QID] = o.Price
			}
		}
		bo.poolSize.Set(float64(len(pool)))
		if rec != nil {
			rec.Round(iter, rounds, len(offers), len(pool),
				float64(time.Since(roundT0).Microseconds())/1000)
		}

		// B4: candidate plan generation from the standing pool, in
		// deterministic order so equal-cost ties break reproducibly.
		poolList := make([]trading.Offer, 0, len(pool))
		for _, o := range pool {
			poolList = append(poolList, o)
		}
		sort.Slice(poolList, func(i, j int) bool { return poolList[i].OfferID < poolList[j].OfferID })
		var t0 time.Time
		if cfg.Metrics != nil {
			t0 = time.Now()
		}
		genSp := itSp.Child("plangen")
		genSp.Set("mode", string(cfg.Mode))
		genSp.Set("pool", len(poolList))
		cands, err := GenerateWithLatency(sel, cfg.Schema, cfg.Cost, cfg.Mode, cfg.IDPKeep, poolList, cfg.PeerLatency)
		genSp.End()
		if cfg.Metrics != nil {
			bo.plangenMS.Observe(float64(time.Since(t0).Microseconds()) / 1000)
		}
		if err != nil {
			itSp.End()
			if iter == 1 {
				// The paper: abort when the first iteration yields no
				// candidate plan at all.
				return nil, fmt.Errorf("core: no distributed plan possible: %w", err)
			}
			break
		}
		genSp.Set("candidates", len(cands))
		newBest := cands[0]
		improved := best == nil || ValueOf(cfg.Weight, &newBest) < ValueOf(cfg.Weight, best)*(1-1e-9)
		if improved {
			b := newBest
			best = &b
			stats.Improvements++
		}
		if cfg.OnIteration != nil {
			cfg.OnIteration(iter, ValueOf(cfg.Weight, best), len(pool))
		}

		// B5/B6: the predicates analyser proposes the next round's queries.
		topK := cands
		if len(topK) > 3 {
			topK = topK[:3]
		}
		anSp := itSp.Child("analyse")
		newSQLs := Analyse(sel, cfg.Schema, topK, asked, cfg.MaxNewQueries)
		anSp.Set("new_queries", len(newSQLs))
		anSp.End()
		itSp.Set("improved", improved)
		itSp.End()
		// B7: terminate when neither the plan nor Q changed.
		if !improved && len(newSQLs) == 0 {
			break
		}
		if len(newSQLs) == 0 && iter > 1 && !improved {
			break
		}
		for _, s := range newSQLs {
			qSeq++
			queries = append(queries, trading.QueryRequest{QID: fmt.Sprintf("q%d", qSeq), SQL: s})
		}
		stats.QueriesAsked = len(queries)
	}
	if best == nil {
		return nil, fmt.Errorf("core: optimization produced no plan")
	}

	// B8: award the winning offers.
	awSp := root.Child("award")
	awSp.Set("offers", len(best.Offers))
	var awardT0 time.Time
	if rec != nil {
		awardT0 = time.Now()
	}
	for _, o := range best.Offers {
		rec.Award(o.SellerID, o.QID, o.OfferID, o.Props.TotalTime, o.Price)
		if o.SellerID == cfg.ID {
			continue // own offers need no award message
		}
		aw := trading.Award{RFBID: o.RFBID, OfferID: o.OfferID, BuyerID: cfg.ID}
		// Award failures are tolerable (sellers execute purchased SQL even
		// without the courtesy notification), but guard them so a dead
		// winner cannot hang the buyer.
		_ = cfg.Faults.Call(o.SellerID, func() error { return comm.Award(o.SellerID, aw) })
	}
	awSp.End()
	if rec != nil {
		rec.ObservePhase(ledger.PhaseAward, float64(time.Since(awardT0).Microseconds())/1000)
	}
	stats.PoolSize = len(pool)
	stats.EmptyBidResponses = int(emptyReplies.Load())
	stats.WallTime = time.Since(start)
	bo.optimizeMS.Observe(float64(stats.WallTime.Microseconds()) / 1000)
	if cfg.Tracer != nil && !cfg.Sampling.Keep(head, stats.WallTime) {
		// Tail sampling: the negotiation was fast and head sampling said no —
		// drop the collected trace instead of retaining it.
		root.End()
		cfg.Tracer.DropRoot(root)
	}
	finalPool := make([]trading.Offer, 0, len(pool))
	for _, o := range pool {
		finalPool = append(finalPool, o)
	}
	sort.Slice(finalPool, func(i, j int) bool { return finalPool[i].OfferID < finalPool[j].OfferID })
	var fc *flightCapture
	if cfg.Flight != nil {
		fc = &flightCapture{rec: cfg.Flight, id: negID, start: start,
			optimizeMS: float64(stats.WallTime.Microseconds()) / 1000, optSpan: root}
	}
	return &Result{SQL: sel.SQL(), Candidate: *best, Stats: stats, Pool: finalPool,
		BuyerID: cfg.ID, TraceCtx: tctx, Workers: cfg.Workers,
		FetchBatch: cfg.FetchBatchRows, LedgerRec: rec, flight: fc}, nil
}

// ExecuteResult runs the winning plan: Remote leaves are fetched from their
// sellers through comm, local operators run on the buyer's executor. store
// may be nil when the plan has no local scans.
func ExecuteResult(comm Comm, localExec *exec.Executor, res *Result) (*exec.Result, error) {
	return ExecuteResultTraced(comm, localExec, res, nil)
}

// ExecuteResultTraced is ExecuteResult recording the execution on tr: a root
// execute span with one fetch child per remote leaf, under which a sampled
// seller's execution subtree (including its subcontract fetches) is grafted.
// The sampling decision is the one minted at optimization time
// (res.TraceCtx), so one negotiation stays one trace end to end. A nil
// tracer is exactly ExecuteResult.
func ExecuteResultTraced(comm Comm, localExec *exec.Executor, res *Result, tr *obs.Tracer) (*exec.Result, error) {
	var root *obs.Span
	if tr != nil {
		root = tr.Start(res.BuyerID, "execute")
		root.Set("sql", res.SQL)
		defer root.End()
	}
	return executeUnder(comm, localExec, res, root)
}

// executeUnder runs the winning plan with every remote fetch recorded as a
// child of root (nil root = untraced, no context stamped on the wire).
//
// When the plan buys from more than one remote leaf and res.Workers allows
// it, the leaves are prefetched concurrently (bounded by the same worker
// knob as the negotiation fan-out) and the executor's sequential tree walk
// is served from the prefetched answers. Answers are queued FIFO per
// (seller, SQL, offer) key so every walk step consumes exactly the fetch
// issued for its own leaf — message accounting and error attribution stay
// identical to the serial walk.
func executeUnder(comm Comm, localExec *exec.Executor, res *Result, root *obs.Span) (*exec.Result, error) {
	ex, cleanup := buildPlanExecutor(comm, localExec, res, root)
	defer cleanup()
	rec := res.LedgerRec
	rec.ExecStarted()
	var execT0 time.Time
	if rec != nil || res.flight != nil {
		execT0 = time.Now()
	}
	out, err := ex.Run(res.Candidate.Root)
	var wall float64
	if rec != nil || res.flight != nil {
		wall = float64(time.Since(execT0).Microseconds()) / 1000
	}
	rows := int64(0)
	if err == nil {
		rows = int64(len(out.Rows))
	}
	if rec != nil {
		if err != nil {
			rec.ExecFinished(wall, 0, err.Error())
		} else {
			rec.ExecFinished(wall, rows, "")
		}
	}
	finalizeFlight(res, root, ex.Stats, wall, rows, err)
	return out, err
}

// buildPlanExecutor assembles the executor that runs a winning plan:
// res.FetchBatch decides whether Remote leaves stream (the default) or fall
// back to one-shot materialized fetches, and multi-leaf plans prefetch
// concurrently under res.Workers either way. The returned cleanup releases
// prefetched streams the plan walk never consumed (e.g. after a failure in
// another leaf) and must be called once execution is done.
func buildPlanExecutor(comm Comm, localExec *exec.Executor, res *Result, root *obs.Span) (*exec.Executor, func()) {
	ex := &exec.Executor{}
	if localExec != nil {
		ex.Store = localExec.Store
		ex.Stats = localExec.Stats
	}
	if res.flight != nil && ex.Stats == nil {
		// The dossier's per-operator est-vs-actual rows need RunStats; the
		// recorder being on opts the execution in automatically.
		ex.Stats = exec.NewRunStats()
	}
	traced := root != nil && res.TraceCtx.Sampled
	// With a ledger record open, precompute each purchased offer's quoted
	// cost so the fetch actuals can be tied back to the quote they answered
	// (the pool covers recovery substitutes spliced in after the award).
	rec := res.LedgerRec
	var quoted map[string]float64
	if rec != nil {
		quoted = make(map[string]float64, len(res.Candidate.Offers))
		for _, o := range res.Candidate.Offers {
			quoted[o.OfferID] = o.Props.TotalTime
		}
		for _, o := range res.Pool {
			if _, ok := quoted[o.OfferID]; !ok {
				quoted[o.OfferID] = o.Props.TotalTime
			}
		}
	}
	cleanup := func() {}
	// plan.Remotes walks the tree in the same pre-order the executor fetches.
	remotes := plan.Remotes(res.Candidate.Root)
	if batch := effectiveBatch(res.FetchBatch); batch > 0 {
		ex.BatchSize = batch
		openOne := func(nodeID, sql, offerID string) (exec.RowStream, error) {
			return openRemoteStream(comm, nodeID, sql, offerID, batch,
				root, traced, res.TraceCtx, rec, quoted[offerID])
		}
		ex.FetchStream = openOne
		if len(remotes) > 1 && res.Workers != 1 {
			ex.FetchStream, cleanup = prefetchStreams(remotes, res.Workers, openOne)
		}
		return ex, cleanup
	}
	fetchOne := func(nodeID, sql, offerID string) (*exec.Result, error) {
		fs := root.Child("fetch " + nodeID)
		req := trading.ExecReq{SQL: sql, OfferID: offerID}
		if traced {
			req.Trace = res.TraceCtx
			req.Trace.Parent = fs.ID()
		}
		sentAt := time.Now()
		resp, err := comm.Fetch(nodeID, req)
		if rec != nil {
			wall := float64(time.Since(sentAt).Microseconds()) / 1000
			if err != nil {
				rec.Fetch(nodeID, offerID, sql, quoted[offerID], wall, 0, 0, 0, err.Error())
			} else {
				rec.Fetch(nodeID, offerID, sql, quoted[offerID], wall, resp.ExecMS,
					int64(len(resp.Rows)), int64(resp.WireSize()), "")
			}
		}
		if err != nil {
			fs.Set("error", err)
			fs.End()
			return nil, err
		}
		fs.Graft(resp.Trace, sentAt, time.Now())
		fs.End()
		cols := make([]expr.ColumnID, len(resp.Cols))
		for i, c := range resp.Cols {
			cols[i] = expr.ColumnID{Table: c.Table, Name: c.Name}
		}
		return &exec.Result{Cols: cols, Rows: resp.Rows}, nil
	}
	ex.Fetch = fetchOne
	if len(remotes) > 1 && res.Workers != 1 {
		ex.Fetch = prefetchRemotes(remotes, res.Workers, fetchOne)
	}
	return ex, cleanup
}

// effectiveBatch resolves the FetchBatchRows knob: 0 = default streaming
// batch, negative = streaming off.
func effectiveBatch(n int) int {
	switch {
	case n == 0:
		return exec.DefaultBatchSize
	case n < 0:
		return 0
	}
	return n
}

// prefetchRemotes fetches every remote leaf concurrently — at most `workers`
// calls in flight (0 = one per leaf) — and returns a Fetch that serves the
// executor's sequential walk from the prefetched answers. Results are keyed
// by (seller, SQL, offer) and consumed FIFO, so a plan that buys the same
// offer twice still performs (and accounts) one fetch per leaf, and the walk
// surfaces exactly the error of its own leaf's fetch. The returned Fetch is
// only called from the executor's single goroutine, so the queue map needs
// no lock.
func prefetchRemotes(remotes []*plan.Remote, workers int,
	fetchOne func(nodeID, sql, offerID string) (*exec.Result, error)) func(string, string, string) (*exec.Result, error) {

	type fetched struct {
		res *exec.Result
		err error
	}
	results := make([]fetched, len(remotes))
	if workers <= 0 || workers > len(remotes) {
		workers = len(remotes)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(remotes) {
					return
				}
				r := remotes[i]
				res, err := fetchOne(r.NodeID, r.SQL, r.OfferID)
				results[i] = fetched{res: res, err: err}
			}
		}()
	}
	wg.Wait()

	queues := make(map[string][]fetched, len(remotes))
	for i, r := range remotes {
		k := r.NodeID + "\x00" + r.SQL + "\x00" + r.OfferID
		queues[k] = append(queues[k], results[i])
	}
	return func(nodeID, sql, offerID string) (*exec.Result, error) {
		k := nodeID + "\x00" + sql + "\x00" + offerID
		q := queues[k]
		if len(q) == 0 {
			// A leaf the pre-walk did not see (defensive): fetch it directly.
			return fetchOne(nodeID, sql, offerID)
		}
		queues[k] = q[1:]
		return q[0].res, q[0].err
	}
}

// ExplainResult renders the winning plan and its purchases.
func ExplainResult(res *Result) string {
	out := fmt.Sprintf("-- response time %.2f ms, total work %.2f ms, %d offers purchased\n",
		res.Candidate.ResponseTime, res.Candidate.TotalWork, len(res.Candidate.Offers))
	return out + plan.Explain(res.Candidate.Root)
}
