package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"qtrade/internal/exec"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
)

// testPolicy returns a FaultPolicy tight enough for tests but generous
// enough that healthy in-process calls never trip it.
func testPolicy(m *obs.Metrics) *trading.FaultPolicy {
	return &trading.FaultPolicy{
		CallTimeout:  200 * time.Millisecond,
		RoundTimeout: 400 * time.Millisecond,
		MaxRetries:   2,
		Backoff:      time.Millisecond,
		Breakers: trading.NewBreakerSet(trading.BreakerConfig{
			Threshold: 3, Cooldown: 20 * time.Millisecond,
		}, m),
		Metrics: m,
	}
}

// TestConcurrentFlapDuringNegotiation hammers SetDown on a remote seller
// while negotiations are in flight. The buyer must neither hang nor race
// (run under -race): down-node errors are hard failures, the round deadline
// cuts stragglers, and a query answerable from the buyer's own partition
// keeps succeeding throughout.
func TestConcurrentFlapDuringNegotiation(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT c.custname FROM customer c WHERE c.office = 'Athens'"
	want := oracle(t, f.sch, q)

	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := false
		for {
			select {
			case <-stop:
				f.net.SetDown("corfu", false)
				return
			default:
				down = !down
				f.net.SetDown("corfu", down)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	for i := 0; i < 5; i++ {
		out, _, _, err := OptimizeAndExecute(cfg, comm, &exec.Executor{Store: f.athens.Store()}, q, 1)
		if err != nil {
			t.Fatalf("query %d under flapping peer: %v", i, err)
		}
		got := rowsKey(out.Rows)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("query %d answer differs:\ngot  %v\nwant %v", i, got, want)
		}
	}
	close(stop)
	wg.Wait()
}

// failComm fails every remote Fetch with the same sentinel.
var errDeliver = errors.New("delivery channel severed")

type failComm struct {
	Comm
}

func (c failComm) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	return trading.ExecResp{}, fmt.Errorf("fetch %s: %w", to, errDeliver)
}

// TestRecoveryExhaustionAllSellersFail: every seller fails at delivery and
// the retry budget runs out. The error must wrap the last delivery failure
// and report the retry count, and the returned round count must be
// maxRetries+1.
func TestRecoveryExhaustionAllSellersFail(t *testing.T) {
	f := buildFederation(t, nil)
	// Answerable by either island's invoice replica — so each attempt finds
	// a fresh seller to fail on, and exhaustion beats unanswerability.
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	comm := failComm{Comm: &NetComm{Net: f.net, SelfID: "athens"}}

	const maxRetries = 1
	_, _, rounds, err := OptimizeAndExecute(athensCfg(f), comm, &exec.Executor{Store: f.athens.Store()}, q, maxRetries)
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if rounds != maxRetries+1 {
		t.Fatalf("rounds = %d, want %d", rounds, maxRetries+1)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("recovery exhausted after %d retries", maxRetries)) {
		t.Fatalf("error lacks retry count: %v", err)
	}
	if !errors.Is(err, errDeliver) {
		t.Fatalf("error does not wrap the delivery failure: %v", err)
	}
}

// TestFallbackSubstitution: with a fault policy installed, a seller that
// crashes at delivery is replaced by the equivalent standing offer from its
// replica peer — no re-optimization round is spent, and the fallback counter
// records the substitution.
func TestFallbackSubstitution(t *testing.T) {
	f := buildFederation(t, nil)
	// Invoiceline is fully replicated on corfu and myconos, so whichever
	// wins has a byte-identical standing offer from the other island.
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	want := oracle(t, f.sch, q)

	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Candidate.Offers[0].SellerID
	crash := &crashOnDeliver{Comm: comm, victim: winner, onCrash: func() {}}

	out, finalRes, rounds, err := OptimizeAndExecute(cfg, crash, &exec.Executor{Store: f.athens.Store()}, q, 2)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if rounds != 0 {
		t.Fatalf("substitution should not spend a re-optimization round, got %d", rounds)
	}
	got := rowsKey(out.Rows)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("substituted answer differs:\ngot  %v\nwant %v", got, want)
	}
	for _, o := range finalRes.Candidate.Offers {
		if o.SellerID == winner {
			t.Fatalf("crashed seller %s still in the patched plan", winner)
		}
	}
	if v := cfg.Metrics.Counter("buyer.athens.recovery_fallbacks").Value(); v < 1 {
		t.Fatalf("recovery_fallbacks = %d, want >= 1", v)
	}
}
