package core

import (
	"sync"
	"sync/atomic"
	"time"

	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
	"qtrade/internal/plan"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// This file is the buyer side of the chunked fetch protocol: remoteStream
// pulls one purchased answer batch by batch over the Comm the rest of the
// negotiation uses, so every batch request rides the same fault guards
// (per-call timeout, retry, breaker — retries are safe because continuation
// is idempotent per Seq), the same failure attribution that drives
// standing-offer substitution recovery, and the same trace plumbing as the
// one-shot fetch it replaces.

// remoteStream is one open streamed fetch. It implements exec.RowStream; the
// executor's Remote cursor pulls it and closes it (closing early sends the
// seller a cursor release instead of draining the answer).
type remoteStream struct {
	comm    Comm
	nodeID  string
	sql     string
	offerID string

	root   *obs.Span
	traced bool
	tctx   obs.TraceContext
	rec    *ledger.Rec
	quoted float64

	cols      []expr.ColumnID
	first     []value.Row
	delivered bool
	cursor    string
	seq       int64

	execMS   float64 // seller-reported cumulative execution ms (last batch wins)
	wall     float64 // buyer-side wall ms across every exchange
	rows     int64
	bytes    int64
	done     bool
	closed   bool
	recorded bool
}

// openRemoteStream issues the opening fetch (Stream set, first batch plus a
// continuation token when more remains) and wraps the reply as a RowStream.
func openRemoteStream(comm Comm, nodeID, sql, offerID string, batch int,
	root *obs.Span, traced bool, tctx obs.TraceContext, rec *ledger.Rec, quoted float64) (exec.RowStream, error) {

	s := &remoteStream{
		comm: comm, nodeID: nodeID, sql: sql, offerID: offerID,
		root: root, traced: traced, tctx: tctx, rec: rec, quoted: quoted,
	}
	fs := root.Child("fetch " + nodeID)
	req := trading.ExecReq{SQL: sql, OfferID: offerID, Stream: true, BatchRows: batch}
	if traced {
		req.Trace = tctx
		req.Trace.Parent = fs.ID()
	}
	sentAt := time.Now()
	resp, err := comm.Fetch(nodeID, req)
	s.wall = float64(time.Since(sentAt).Microseconds()) / 1000
	if err != nil {
		fs.Set("error", err)
		fs.End()
		s.finish(err)
		return nil, err
	}
	fs.Graft(resp.Trace, sentAt, time.Now())
	fs.End()
	s.cols = make([]expr.ColumnID, len(resp.Cols))
	for i, c := range resp.Cols {
		s.cols[i] = expr.ColumnID{Table: c.Table, Name: c.Name}
	}
	s.first = resp.Rows
	s.execMS = resp.ExecMS
	s.rows = int64(len(resp.Rows))
	s.bytes = int64(resp.WireSize())
	if resp.More {
		s.cursor = resp.Cursor
	}
	return s, nil
}

func (s *remoteStream) Cols() []expr.ColumnID { return s.cols }

func (s *remoteStream) Next() ([]value.Row, error) {
	if s.done || s.closed {
		return nil, nil
	}
	if !s.delivered {
		s.delivered = true
		if len(s.first) > 0 {
			b := s.first
			s.first = nil
			if s.cursor == "" {
				s.done = true
				s.finish(nil)
			}
			return b, nil
		}
	}
	if s.cursor == "" {
		s.done = true
		s.finish(nil)
		return nil, nil
	}
	fs := s.root.Child("fetch-batch " + s.nodeID)
	req := trading.ExecReq{OfferID: s.offerID, Cursor: s.cursor, Seq: s.seq + 1}
	if s.traced {
		req.Trace = s.tctx
		req.Trace.Parent = fs.ID()
	}
	sentAt := time.Now()
	resp, err := s.comm.Fetch(s.nodeID, req)
	s.wall += float64(time.Since(sentAt).Microseconds()) / 1000
	if err != nil {
		fs.Set("error", err)
		fs.End()
		s.done = true
		s.finish(err)
		return nil, err
	}
	fs.Set("rows", len(resp.Rows))
	fs.Graft(resp.Trace, sentAt, time.Now())
	fs.End()
	s.seq++
	s.execMS = resp.ExecMS // cumulative on the seller side: last batch is the total
	s.rows += int64(len(resp.Rows))
	s.bytes += int64(resp.WireSize())
	if resp.More {
		s.cursor = resp.Cursor
	} else {
		s.cursor = ""
	}
	if len(resp.Rows) == 0 {
		s.done = true
		s.finish(nil)
		return nil, nil
	}
	return resp.Rows, nil
}

// Close releases the stream. Abandoning an unfinished stream (LIMIT
// satisfied, a sibling leaf failed) sends the seller a best-effort cursor
// release so its parked execution is reclaimed immediately instead of
// waiting for eviction.
func (s *remoteStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if !s.done && s.cursor != "" {
		req := trading.ExecReq{OfferID: s.offerID, Cursor: s.cursor, CloseCursor: true}
		_, _ = s.comm.Fetch(s.nodeID, req)
		s.cursor = ""
	}
	s.finish(nil)
	return nil
}

// finish records the stream's single ledger fetch event — one per leaf, like
// the one-shot path, with actuals accumulated across every batch.
func (s *remoteStream) finish(err error) {
	if s.recorded {
		return
	}
	s.recorded = true
	if s.rec == nil {
		return
	}
	if err != nil {
		s.rec.Fetch(s.nodeID, s.offerID, s.sql, s.quoted, s.wall, 0, 0, 0, err.Error())
		return
	}
	s.rec.Fetch(s.nodeID, s.offerID, s.sql, s.quoted, s.wall, s.execMS, s.rows, s.bytes, "")
}

// prefetchStreams opens every remote leaf's stream concurrently — at most
// `workers` opens in flight (0 = one per leaf) — so the sellers all start
// executing and their first batches ship in parallel; the executor's
// sequential walk then consumes the streams on demand. Streams are keyed and
// queued FIFO like prefetchRemotes, so error attribution per leaf is
// unchanged. The returned release func closes streams the walk never took
// (a failure elsewhere in the plan): their sellers' parked cursors are
// freed instead of leaking until eviction.
func prefetchStreams(remotes []*plan.Remote, workers int,
	openOne func(nodeID, sql, offerID string) (exec.RowStream, error)) (exec.StreamFunc, func()) {

	type opened struct {
		st    exec.RowStream
		err   error
		taken bool
	}
	results := make([]opened, len(remotes))
	if workers <= 0 || workers > len(remotes) {
		workers = len(remotes)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(remotes) {
					return
				}
				r := remotes[i]
				st, err := openOne(r.NodeID, r.SQL, r.OfferID)
				results[i] = opened{st: st, err: err}
			}
		}()
	}
	wg.Wait()

	queues := make(map[string][]*opened, len(remotes))
	for i, r := range remotes {
		k := r.NodeID + "\x00" + r.SQL + "\x00" + r.OfferID
		queues[k] = append(queues[k], &results[i])
	}
	fn := func(nodeID, sql, offerID string) (exec.RowStream, error) {
		k := nodeID + "\x00" + sql + "\x00" + offerID
		q := queues[k]
		if len(q) == 0 {
			// A leaf the pre-walk did not see (defensive): open it directly.
			return openOne(nodeID, sql, offerID)
		}
		queues[k] = q[1:]
		q[0].taken = true
		return q[0].st, q[0].err
	}
	release := func() {
		for i := range results {
			if o := &results[i]; !o.taken && o.st != nil {
				o.st.Close()
			}
		}
	}
	return fn, release
}

// ExecuteResultStream opens the winning plan as a pulled cursor instead of
// materializing the answer: the first batch is available as soon as the
// pipeline produces it, regardless of how many rows follow. The returned
// schema is the plan's output columns. The caller owns the cursor and must
// Close it; closing before exhaustion releases every seller-side cursor the
// plan opened (and records the partial actuals in the trading ledger), so an
// abandoned result does not leak parked executions. A nil tracer is
// untraced, like ExecuteResult.
func ExecuteResultStream(comm Comm, localExec *exec.Executor, res *Result, tr *obs.Tracer) (exec.Cursor, []expr.ColumnID, error) {
	var root *obs.Span
	if tr != nil {
		root = tr.Start(res.BuyerID, "execute")
		root.Set("sql", res.SQL)
	}
	ex, cleanup := buildPlanExecutor(comm, localExec, res, root)
	rec := res.LedgerRec
	rec.ExecStarted()
	t0 := time.Now()
	cur, err := ex.Open(res.Candidate.Root)
	if err != nil {
		cleanup()
		wall := float64(time.Since(t0).Microseconds()) / 1000
		if rec != nil {
			rec.ExecFinished(wall, 0, err.Error())
		}
		root.End()
		finalizeFlight(res, root, ex.Stats, wall, 0, err)
		return nil, nil, err
	}
	h := &streamHandle{cur: cur, cleanup: cleanup, rec: rec, root: root, t0: t0, res: res, st: ex.Stats}
	return h, res.Candidate.Root.Schema(), nil
}

// streamHandle finalizes a streamed execution at Close: leftover prefetched
// streams are released, the ledger's execute record is completed with the
// rows actually pulled, the execute span ends, and the flight dossier (if a
// recorder is on) is assembled from whatever the cursor's consumer pulled.
type streamHandle struct {
	cur     exec.Cursor
	cleanup func()
	rec     *ledger.Rec
	root    *obs.Span
	t0      time.Time
	res     *Result
	st      *exec.RunStats
	rows    int64
	err     error
	closed  bool
}

func (h *streamHandle) Open() error { return nil } // opened by ExecuteResultStream

func (h *streamHandle) Next() ([]value.Row, error) {
	if h.closed {
		return nil, nil
	}
	b, err := h.cur.Next()
	if err != nil {
		h.err = err
		return nil, err
	}
	h.rows += int64(len(b))
	return b, nil
}

func (h *streamHandle) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	err := h.cur.Close()
	h.cleanup()
	wall := float64(time.Since(h.t0).Microseconds()) / 1000
	if h.rec != nil {
		msg := ""
		if h.err != nil {
			msg = h.err.Error()
		}
		h.rec.ExecFinished(wall, h.rows, msg)
	}
	h.root.End()
	finalizeFlight(h.res, h.root, h.st, wall, h.rows, h.err)
	return err
}
