package core

import (
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// TestBuyerBenefitsFromSubcontracting models restricted visibility: the
// buyer only knows the corfu node, which holds just the corfu customer
// partition, but corfu can subcontract the myconos partition from a peer
// the buyer cannot see. The query over both offices is answerable only
// through the §3.5 subcontracting extension.
func TestBuyerBenefitsFromSubcontracting(t *testing.T) {
	sch := telcoSchema()
	net := netsim.New()

	cust, _ := sch.Table("customer")
	myc := node.New(node.Config{ID: "myconos", Schema: sch})
	mustFrag(t, myc, cust, "myconos")
	mustIns(t, myc, "customer", "myconos",
		value.Row{value.NewInt(3), value.NewStr("carol"), value.NewStr("Myconos")},
		value.Row{value.NewInt(5), value.NewStr("eve"), value.NewStr("Myconos")})

	corfu := node.New(node.Config{
		ID: "corfu", Schema: sch,
		SubcontractPeers: func() map[string]trading.Peer {
			return map[string]trading.Peer{"myconos": net.Peer("corfu", "myconos")}
		},
	})
	mustFrag(t, corfu, cust, "corfu")
	mustIns(t, corfu, "customer", "corfu",
		value.Row{value.NewInt(1), value.NewStr("alice"), value.NewStr("Corfu")},
		value.Row{value.NewInt(2), value.NewStr("bob"), value.NewStr("Corfu")})

	net.Register("corfu", corfu)
	net.Register("myconos", myc)

	// The buyer's world is just corfu.
	comm := &PeerComm{
		PeerMap: map[string]trading.Peer{"corfu": net.Peer("buyer", "corfu")},
		AwardFn: func(to string, aw trading.Award) error { return net.Award("buyer", to, aw) },
		FetchFn: func(to string, req trading.ExecReq) (trading.ExecResp, error) {
			return net.Execute("buyer", to, req)
		},
	}
	q := "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')"
	res, err := Optimize(Config{ID: "buyer", Schema: sch}, comm, q)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	out, err := ExecuteResult(comm, &exec.Executor{}, res)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, ExplainResult(res))
	}
	if len(out.Rows) != 4 {
		t.Fatalf("rows: %v (want all four customers)", out.Rows)
	}
	names := map[string]bool{}
	for _, r := range out.Rows {
		names[r[0].S] = true
	}
	if !names["carol"] || !names["eve"] {
		t.Fatalf("myconos customers missing (subcontract did not fire): %v\n%s",
			names, ExplainResult(res))
	}
	// Every purchase is from corfu — the buyer never saw myconos.
	for _, o := range res.Candidate.Offers {
		if o.SellerID != "corfu" {
			t.Fatalf("buyer bought from invisible node %s", o.SellerID)
		}
	}
}

func mustFrag(t *testing.T, n *node.Node, def *catalog.TableDef, part string) {
	t.Helper()
	if _, err := n.Store().CreateFragment(def, part); err != nil {
		t.Fatal(err)
	}
}

func mustIns(t *testing.T, n *node.Node, table, part string, rows ...value.Row) {
	t.Helper()
	if err := n.Store().Insert(table, part, rows...); err != nil {
		t.Fatal(err)
	}
}
