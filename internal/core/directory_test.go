package core

import (
	"strings"
	"testing"

	"qtrade/internal/obs"
	"qtrade/internal/trading"
)

// TestDirectoryGatesFanout pins the buyer side of the elastic lifecycle: a
// shared peer directory learns from call outcomes — successful exchanges
// refresh last-seen, a drain rejection marks the peer draining — and the
// next negotiation excludes the draining peer before spending a round-trip.
// Undraining the node restores it to the fan-out through the same feedback
// loop once a call reaches it again.
func TestDirectoryGatesFanout(t *testing.T) {
	// Competitive sellers force improvement rounds, so the directory feedback
	// wrapper sees both RequestBids and ImproveBids outcomes.
	f := buildFederation(t, func() trading.SellerStrategy { return trading.NewCompetitive() })
	want := oracle(t, f.sch, paperQuery)

	cfg := athensCfg(f)
	cfg.Metrics = obs.NewMetrics()
	cfg.Faults = testPolicy(cfg.Metrics)
	cfg.Directory = trading.NewDirectory(cfg.Faults.Breakers)
	cfg.Protocol = trading.IterativeBid{MaxRounds: 2}

	// Healthy federation: both island sellers answer, the directory records
	// the successful contacts.
	_, got := optimizeAndRun(t, f, cfg, paperQuery)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs:\ngot  %v\nwant %v", got, want)
	}
	for _, id := range []string{"corfu", "myconos"} {
		if cfg.Directory.State(id) != trading.StateActive {
			t.Fatalf("%s should be active after a clean exchange", id)
		}
	}
	seen := false
	for _, p := range cfg.Directory.Snapshot() {
		if p.ID == "corfu" && !p.LastSeen.IsZero() {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("successful contact must refresh last-seen: %+v", cfg.Directory.Snapshot())
	}

	// Corfu drains. The invoiceline replica lives on both islands, so a
	// query over it alone still succeeds — and the drain rejection corfu
	// answers with must land in the directory.
	f.corfu.Drain("elastic scale-down")
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	wantInv := oracle(t, f.sch, q)
	_, got = optimizeAndRun(t, f, cfg, q)
	if strings.Join(got, "|") != strings.Join(wantInv, "|") {
		t.Fatalf("answer around the draining seller differs:\ngot  %v\nwant %v", got, wantInv)
	}
	// Corfu still answered the improvement round (empty reply, by design) —
	// that success must NOT read as an undrain: the RequestBids rejection is
	// the authoritative signal and the mark must stick.
	if cfg.Directory.State("corfu") != trading.StateDraining {
		t.Fatalf("drain rejection must mark corfu draining, got %v", cfg.Directory.State("corfu"))
	}

	// Next negotiation: corfu is excluded before the RFB fan-out.
	res, err := Optimize(cfg, &NetComm{Net: f.net, SelfID: "athens"}, q)
	if err != nil {
		t.Fatalf("gated optimize: %v", err)
	}
	for _, o := range res.Pool {
		if o.SellerID == "corfu" {
			t.Fatalf("draining seller must be out of the pool: %+v", o)
		}
	}

	// The node undrains; the buyer only learns once traffic reaches it
	// again, so clear the stale mark the way AddNode/UndrainNode do and
	// verify corfu sells again.
	f.corfu.Undrain()
	cfg.Directory.MarkState("corfu", trading.StateActive)
	res, err = Optimize(cfg, &NetComm{Net: f.net, SelfID: "athens"}, q)
	if err != nil {
		t.Fatalf("optimize after undrain: %v", err)
	}
	fromCorfu := false
	for _, o := range res.Pool {
		if o.SellerID == "corfu" {
			fromCorfu = true
		}
	}
	if !fromCorfu {
		t.Fatal("undrained seller must bid again")
	}
}
