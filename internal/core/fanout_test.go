package core

import (
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/trading"
)

// rfbNum extracts the global sequence numbers minted for a run's RFB ids so
// canonPool can rewrite them to per-run iteration indexes: two otherwise
// identical optimizations never share absolute rfb numbers (the sequence is
// process-global), so byte comparison must happen modulo that numbering.
var rfbNum = regexp.MustCompile(`-rfb(\d+)`)

// canonPool renders an offer pool as canonical bytes: rfb sequence numbers
// are replaced by their per-run rank, map-valued fields are serialized in
// sorted order, and the canonical offer lines themselves are sorted. Two
// runs of the same negotiation must produce equal canonical pools whatever
// the fan-out interleaving.
func canonPool(t *testing.T, offers []trading.Offer) string {
	t.Helper()
	nums := map[int]bool{}
	for _, o := range offers {
		for _, m := range rfbNum.FindAllStringSubmatch(o.RFBID+" "+o.OfferID, -1) {
			n, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatalf("rfb number %q: %v", m[1], err)
			}
			nums[n] = true
		}
	}
	order := make([]int, 0, len(nums))
	for n := range nums {
		order = append(order, n)
	}
	sort.Ints(order)
	rank := make(map[string]string, len(order))
	for i, n := range order {
		rank["-rfb"+strconv.Itoa(n)] = "-rfb#" + strconv.Itoa(i)
	}
	canon := func(s string) string {
		return rfbNum.ReplaceAllStringFunc(s, func(m string) string { return rank[m] })
	}
	lines := make([]string, len(offers))
	for i, o := range offers {
		lines[i] = fmt.Sprintf("%s|%s|%s|%s|%s|%v|%s|%v%v%v%v|%v|%+v|%.9f",
			canon(o.OfferID), canon(o.RFBID), o.QID, o.SellerID, o.SQL,
			o.Bindings, partsKey(o), o.Complete, o.Stripped, o.FromView,
			o.PartialAgg, o.Cols, o.Props, o.Price)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// runFanout optimizes and executes the paper query with the given buyer
// worker bound and returns the canonical pool, the canonical purchased
// offers, the plan explanation and the result rows.
func runFanout(t *testing.T, workers int, protocol trading.Protocol) (pool, bought, explain string, rows []string) {
	t.Helper()
	f := buildFederation(t, nil)
	cfg := athensCfg(f)
	cfg.Workers = workers
	cfg.Protocol = protocol
	res, got := optimizeAndRun(t, f, cfg, paperQuery)
	if res.Workers != workers {
		t.Fatalf("Result.Workers = %d, want %d", res.Workers, workers)
	}
	return canonPool(t, res.Pool), canonPool(t, res.Candidate.Offers), ExplainResult(res), got
}

// TestBuyerFanoutMatchesSerial pins the tentpole invariant: the buyer's
// bounded parallel fan-out (RFB rounds, improve rounds, and execution-time
// prefetch of remote leaves) assembles an offer pool, plan choice and answer
// byte-identical to the strictly serial path, for every protocol and worker
// bound, including under GOMAXPROCS=1.
func TestBuyerFanoutMatchesSerial(t *testing.T) {
	protocols := map[string]func() trading.Protocol{
		"sealed":    func() trading.Protocol { return trading.SealedBid{} },
		"iterative": func() trading.Protocol { return trading.IterativeBid{MaxRounds: 3} },
		"bargain":   func() trading.Protocol { return trading.Bargain{MaxRounds: 3} },
	}
	for name, mk := range protocols {
		t.Run(name, func(t *testing.T) {
			basePool, baseBought, baseExplain, baseRows := runFanout(t, 1, mk())
			for _, workers := range []int{0, 2, 8} {
				pool, bought, explain, rows := runFanout(t, workers, mk())
				if pool != basePool {
					t.Errorf("workers=%d pool differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, basePool, pool)
				}
				if bought != baseBought {
					t.Errorf("workers=%d purchased offers differ:\nserial   %s\nparallel %s",
						workers, baseBought, bought)
				}
				if explain != baseExplain {
					t.Errorf("workers=%d plan differs:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, baseExplain, explain)
				}
				if strings.Join(rows, "|") != strings.Join(baseRows, "|") {
					t.Errorf("workers=%d answer differs:\ngot  %v\nwant %v", workers, rows, baseRows)
				}
			}
		})
	}
	t.Run("gomaxprocs-1", func(t *testing.T) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		basePool, _, _, baseRows := runFanout(t, 1, trading.IterativeBid{MaxRounds: 3})
		pool, _, _, rows := runFanout(t, 0, trading.IterativeBid{MaxRounds: 3})
		if pool != basePool {
			t.Errorf("GOMAXPROCS=1 pool differs:\n--- serial ---\n%s\n--- parallel ---\n%s", basePool, pool)
		}
		if strings.Join(rows, "|") != strings.Join(baseRows, "|") {
			t.Errorf("GOMAXPROCS=1 answer differs:\ngot  %v\nwant %v", rows, baseRows)
		}
	})
}

// TestPrefetchServesEachLeafOnce pins the execution-time prefetch contract:
// a multi-leaf plan performs exactly one fetch per remote leaf (message
// accounting identical to the serial walk), whatever the worker bound.
func TestPrefetchServesEachLeafOnce(t *testing.T) {
	var serial int64 = -1
	for _, workers := range []int{1, 0, 2} {
		f := buildFederation(t, nil)
		cfg := athensCfg(f)
		cfg.Workers = workers
		comm := &NetComm{Net: f.net, SelfID: "athens"}
		res, err := Optimize(cfg, comm, paperQuery)
		if err != nil {
			t.Fatal(err)
		}
		f.net.Reset()
		ex := &exec.Executor{Store: f.athens.Store()}
		if _, err := ExecuteResult(comm, ex, res); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		msgs, _ := f.net.Stats()
		if serial == -1 {
			serial = msgs // the workers=1 walk is the accounting baseline
			continue
		}
		if msgs != serial {
			t.Fatalf("workers=%d: %d execution messages, serial walk sent %d",
				workers, msgs, serial)
		}
	}
}
