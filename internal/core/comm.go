package core

import (
	"qtrade/internal/netsim"
	"qtrade/internal/trading"
)

// NetComm adapts a netsim.Network into the buyer's Comm surface, with full
// message accounting.
type NetComm struct {
	Net    *netsim.Network
	SelfID string
}

// Peers implements Comm.
func (c *NetComm) Peers() map[string]trading.Peer { return c.Net.Peers(c.SelfID) }

// Award implements Comm.
func (c *NetComm) Award(to string, aw trading.Award) error {
	return c.Net.Award(c.SelfID, to, aw)
}

// Fetch implements Comm.
func (c *NetComm) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	return c.Net.Execute(c.SelfID, to, req)
}

// PeerComm adapts an arbitrary set of peers (e.g. netsim.RPCPeer connections
// to qtnode processes) into the buyer's Comm surface.
type PeerComm struct {
	PeerMap map[string]trading.Peer
	AwardFn func(to string, aw trading.Award) error
	FetchFn func(to string, req trading.ExecReq) (trading.ExecResp, error)
}

// Peers implements Comm.
func (c *PeerComm) Peers() map[string]trading.Peer { return c.PeerMap }

// Award implements Comm.
func (c *PeerComm) Award(to string, aw trading.Award) error {
	if c.AwardFn == nil {
		return nil
	}
	return c.AwardFn(to, aw)
}

// Fetch implements Comm.
func (c *PeerComm) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	return c.FetchFn(to, req)
}
