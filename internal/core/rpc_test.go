package core

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/trading"
)

// TestRPCFederationEndToEnd runs the full trading pipeline over real TCP:
// the island nodes are served with net/rpc on loopback, the buyer
// negotiates, awards and fetches through RPC peers — the multi-process
// deployment path of cmd/qtnode.
func TestRPCFederationEndToEnd(t *testing.T) {
	f := buildFederation(t, nil)
	want := oracle(t, f.sch, paperQuery)

	var listeners []net.Listener
	peers := map[string]trading.Peer{}
	rpcPeers := map[string]*netsim.RPCPeer{}
	for _, id := range []string{"corfu", "myconos"} {
		n := map[string]interface {
			netsim.Service
		}{"corfu": f.corfu, "myconos": f.myc}[id]
		ln, err := netsim.ServeRPC("127.0.0.1:0", id, n)
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		p, err := netsim.DialPeer(ln.Addr().String(), id)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers[id] = p
		rpcPeers[id] = p
	}
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()

	comm := &PeerComm{
		PeerMap: peers,
		AwardFn: func(to string, aw trading.Award) error {
			p, ok := rpcPeers[to]
			if !ok {
				return fmt.Errorf("no peer %s", to)
			}
			return p.Award(aw)
		},
		FetchFn: func(to string, req trading.ExecReq) (trading.ExecResp, error) {
			p, ok := rpcPeers[to]
			if !ok {
				return trading.ExecResp{}, fmt.Errorf("no peer %s", to)
			}
			return p.Execute(req)
		},
	}
	cfg := Config{ID: "athens", Schema: f.sch, Self: f.athens}
	res, err := Optimize(cfg, comm, paperQuery)
	if err != nil {
		t.Fatalf("rpc optimize: %v", err)
	}
	ex := &exec.Executor{Store: f.athens.Store()}
	out, err := ExecuteResult(comm, ex, res)
	if err != nil {
		t.Fatalf("rpc execute: %v\n%s", err, ExplainResult(res))
	}
	got := rowsKey(out.Rows)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("rpc federation answer differs:\ngot  %v\nwant %v", got, want)
	}
}
