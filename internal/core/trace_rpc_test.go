package core

import (
	"strings"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/obs"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

func findSpans(sp *obs.Span, name string) []*obs.Span {
	var out []*obs.Span
	if sp.Name() == name {
		out = append(out, sp)
	}
	for _, c := range sp.Children() {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

func hasAttr(sp *obs.Span, key, val string) bool {
	for _, a := range sp.Attrs() {
		if a.Key == key && a.Val == val {
			return true
		}
	}
	return false
}

// TestRPCTracedSubcontractFederation is the tentpole acceptance test: a
// buyer negotiates over real TCP (net/rpc) with a corfu node that itself
// subcontracts the missing myconos partition from a second TCP-served node
// (§3.5, Depth 1). One trace must cover all three processes: corfu's
// dp-pricing spans grafted under the buyer's per-seller rfb span, with
// myconos's pricing nested inside corfu's subcontract negotiation — and at
// execution time the same nesting for the execute/fetch chain.
func TestRPCTracedSubcontractFederation(t *testing.T) {
	sch := telcoSchema()
	cust, _ := sch.Table("customer")

	myc := node.New(node.Config{ID: "myconos", Schema: sch})
	mustFrag(t, myc, cust, "myconos")
	mustIns(t, myc, "customer", "myconos",
		value.Row{value.NewInt(3), value.NewStr("carol"), value.NewStr("Myconos")},
		value.Row{value.NewInt(5), value.NewStr("eve"), value.NewStr("Myconos")})
	mycLn, err := netsim.ServeRPC("127.0.0.1:0", "myconos", myc)
	if err != nil {
		t.Fatal(err)
	}
	defer mycLn.Close()
	mycPeer, err := netsim.DialPeer(mycLn.Addr().String(), "myconos")
	if err != nil {
		t.Fatal(err)
	}
	defer mycPeer.Close()

	corfu := node.New(node.Config{
		ID: "corfu", Schema: sch,
		SubcontractPeers: func() map[string]trading.Peer {
			return map[string]trading.Peer{"myconos": mycPeer}
		},
	})
	mustFrag(t, corfu, cust, "corfu")
	mustIns(t, corfu, "customer", "corfu",
		value.Row{value.NewInt(1), value.NewStr("alice"), value.NewStr("Corfu")},
		value.Row{value.NewInt(2), value.NewStr("bob"), value.NewStr("Corfu")})
	corfuLn, err := netsim.ServeRPC("127.0.0.1:0", "corfu", corfu)
	if err != nil {
		t.Fatal(err)
	}
	defer corfuLn.Close()
	corfuPeer, err := netsim.DialPeer(corfuLn.Addr().String(), "corfu")
	if err != nil {
		t.Fatal(err)
	}
	defer corfuPeer.Close()

	comm := &PeerComm{
		PeerMap: map[string]trading.Peer{"corfu": corfuPeer},
		AwardFn: func(to string, aw trading.Award) error { return corfuPeer.Award(aw) },
		FetchFn: func(to string, req trading.ExecReq) (trading.ExecResp, error) {
			return corfuPeer.Execute(req)
		},
	}
	tr := obs.NewTracer()
	q := "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')"
	res, err := Optimize(Config{ID: "buyer", Schema: sch, Tracer: tr}, comm, q)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if !res.TraceCtx.Sampled || res.TraceCtx.TraceID == "" {
		t.Fatalf("traced optimization must mint a sampled context: %+v", res.TraceCtx)
	}

	var root *obs.Span
	for _, r := range tr.Roots() {
		if r.Name() == "optimize" {
			root = r
		}
	}
	if root == nil {
		t.Fatal("no optimize root")
	}
	if !hasAttr(root, "trace_id", res.TraceCtx.TraceID) {
		t.Fatalf("root missing trace_id attr %q", res.TraceCtx.TraceID)
	}

	// Corfu's pricing subtree, shipped over TCP and grafted under the
	// buyer's "rfb corfu" span.
	var corfuBids *obs.Span
	for _, rb := range findSpans(root, "request-bids") {
		if rb.Source() == "corfu" {
			corfuBids = rb
		}
	}
	if corfuBids == nil {
		t.Fatalf("corfu request-bids not grafted into buyer tree:\n%s", tr.RenderText())
	}
	if !hasAttr(corfuBids, "remote", "true") {
		t.Fatal("grafted corfu subtree must be marked remote=true")
	}
	if len(findSpans(corfuBids, "dp-pricing")) == 0 {
		t.Fatalf("corfu dp-pricing spans missing under the buyer's rfb span:\n%s", tr.RenderText())
	}

	// Depth-1: myconos's pricing nested inside corfu's subcontract span —
	// two network hops away from the buyer, still one tree.
	subs := findSpans(corfuBids, "subcontract")
	if len(subs) == 0 {
		t.Fatalf("corfu subcontract span missing:\n%s", tr.RenderText())
	}
	var mycBids *obs.Span
	for _, s := range subs {
		for _, rb := range findSpans(s, "request-bids") {
			if rb.Source() == "myconos" {
				mycBids = rb
			}
		}
	}
	if mycBids == nil {
		t.Fatalf("myconos pricing not nested in corfu's subcontract subtree:\n%s", tr.RenderText())
	}
	if len(findSpans(mycBids, "dp-pricing")) == 0 {
		t.Fatal("myconos subtree lost its dp-pricing spans")
	}

	// Execution: the fetch to corfu grafts corfu's execute subtree, which
	// contains its own fetch to myconos with myconos's execute inside.
	out, err := ExecuteResultTraced(comm, &exec.Executor{}, res, tr)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, ExplainResult(res))
	}
	if len(out.Rows) != 4 {
		t.Fatalf("rows: %v (want all four customers)", out.Rows)
	}
	var execRoot *obs.Span
	for _, r := range tr.Roots() {
		if r.Name() == "execute" && r.Source() == "buyer" {
			execRoot = r
		}
	}
	if execRoot == nil {
		t.Fatalf("no buyer execute root:\n%s", tr.RenderText())
	}
	var corfuExec *obs.Span
	for _, e := range findSpans(execRoot, "execute") {
		if e.Source() == "corfu" {
			corfuExec = e
		}
	}
	if corfuExec == nil {
		t.Fatalf("corfu execute subtree not grafted under the buyer fetch:\n%s", tr.RenderText())
	}
	var mycExec *obs.Span
	for _, e := range findSpans(corfuExec, "execute") {
		if e.Source() == "myconos" {
			mycExec = e
		}
	}
	if mycExec == nil {
		t.Fatalf("myconos execute subtree not nested in corfu's fetch:\n%s", tr.RenderText())
	}

	// The rendered tree names every party once on a shared timeline.
	text := tr.RenderText()
	for _, want := range []string{"rfb corfu", "subcontract", "fetch myconos"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, text)
		}
	}
}
