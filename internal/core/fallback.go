package core

import (
	"qtrade/internal/plan"
	"qtrade/internal/trading"
)

// substituteOffers implements the cheap half of graceful degradation: when a
// purchased seller fails at delivery, look for an equivalent standing offer
// in the final pool — same SQL, same partition coverage, from a seller not
// known to have failed — and splice the cheapest one into the winning plan
// in place, instead of paying for a full re-optimization. Returns the
// substitutions made (old OfferID → replacement) and whether every failed
// purchase could be covered; on false the plan is left unchanged.
func substituteOffers(res *Result, failed map[string]bool) (map[string]trading.Offer, bool) {
	repl := map[string]trading.Offer{}
	patched := append([]trading.Offer(nil), res.Candidate.Offers...)
	for i, o := range patched {
		if !failed[o.SellerID] {
			continue
		}
		want := partsKey(o)
		var best *trading.Offer
		for j := range res.Pool {
			c := &res.Pool[j]
			if c.SellerID == o.SellerID || failed[c.SellerID] {
				continue
			}
			if c.SQL != o.SQL || partsKey(*c) != want {
				continue
			}
			if best == nil || c.Price < best.Price ||
				(c.Price == best.Price && c.OfferID < best.OfferID) {
				best = c
			}
		}
		if best == nil {
			return nil, false // this purchase has no standing equivalent
		}
		repl[o.OfferID] = *best
		patched[i] = *best
	}
	if len(repl) == 0 {
		return nil, false // nothing to substitute (no purchase from a failed seller)
	}
	res.Candidate.Offers = patched
	for _, r := range plan.Remotes(res.Candidate.Root) {
		nb, ok := repl[r.OfferID]
		if !ok {
			continue
		}
		r.NodeID = nb.SellerID
		r.SQL = nb.SQL
		r.OfferID = nb.OfferID
		r.EstRows = nb.Props.Rows
		r.EstCost = nb.Props.TotalTime
	}
	return repl, true
}
