package core

import (
	"time"

	"qtrade/internal/exec"
	"qtrade/internal/flight"
	"qtrade/internal/ledger"
	"qtrade/internal/obs"
	"qtrade/internal/plan"
)

// Flight-recorder integration: Optimize snapshots what the negotiation knew
// (identity, wall, the optimize span) into a flightCapture riding on the
// Result; every execution finalizer — one-shot, streamed, and each recovery
// re-run — then assembles the full dossier from the capture plus the
// execution's own actuals and admits it. Re-runs of the same negotiation
// replace the earlier dossier (the recorder dedupes by ID), so the retained
// capture always reflects the final outcome with the complete ledger chain.

// flightCapture carries a negotiation's identity from Optimize into the
// execution finalizers.
type flightCapture struct {
	rec        *flight.Recorder
	id         string // negotiation id: the first RFB id, matching the ledger
	start      time.Time
	optimizeMS float64
	optSpan    *obs.Span
}

// finalizeFlight assembles and admits the dossier for one finished
// execution of res. execSpan is the execution's root span (nil untraced; it
// may still be open — the copy in the dossier is stamped closed). st holds
// the per-operator actuals (nil when no stats were collected), execMS the
// buyer-side execution wall, rows/execErr the outcome.
func finalizeFlight(res *Result, execSpan *obs.Span, st *exec.RunStats, execMS float64, rows int64, execErr error) {
	fc := res.flight
	if fc == nil || fc.rec == nil {
		return
	}
	d := &flight.Dossier{
		ID: fc.id, Buyer: res.BuyerID, SQL: res.SQL, Start: fc.start,
		OptimizeMS: fc.optimizeMS, ExecMS: execMS, WallMS: fc.optimizeMS + execMS,
		Rows: rows,
	}
	if execErr != nil {
		d.Err = execErr.Error()
	}
	// Quoted side: the winning purchases as they stand NOW — recovery
	// substitution patches res.Candidate.Offers in place, so a recovered
	// query's dossier prices the plan that actually ran.
	for _, o := range res.Candidate.Offers {
		d.QuotedMS += o.Props.TotalTime
		d.QuotedPrice += o.Price
	}
	// Measured side and the recovery audit trail come from the negotiation's
	// ledger chain (empty Negotiation when no ledger is configured).
	d.Ledger = res.LedgerRec.Snapshot()
	for _, e := range d.Ledger.Events {
		switch e.Kind {
		case ledger.KindFetch:
			d.FetchMS += e.WallMS
			d.WireBytes += e.Bytes
		case ledger.KindRecovery:
			d.Recoveries = append(d.Recoveries, flight.Recovery{
				Failed: e.Err, Substitute: e.Seller, OfferID: e.OfferID, Reason: e.Reason,
			})
		}
	}
	if d.QuotedMS > 0 {
		measured := d.FetchMS
		if measured == 0 {
			// No remote purchases delivered (all-local plan, or no ledger to
			// itemize fetches): the execution wall is the closest measurement.
			measured = execMS
		}
		d.CostRatio = measured / d.QuotedMS
	}
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		op := flight.OpStat{Op: n.Describe(), Depth: depth, EstRows: -1}
		if est, ok := plan.EstOf(n); ok {
			op.EstRows = est
		}
		if a, ok := st.Get(n); ok {
			op.Executed = true
			op.Rows = a.RowsOut
			op.RowsIn = a.RowsIn
			op.Calls = a.Calls
			op.TimeMS = float64(a.Elapsed.Microseconds()) / 1000
			if op.EstRows >= 0 {
				// +1 smoothing keeps zero-row operators comparable instead of
				// dividing by zero.
				est, act := float64(op.EstRows)+1, float64(a.RowsOut)+1
				r := est / act
				if r < 1 {
					r = act / est
				}
				op.ErrRatio = r
				if r > d.CardError {
					d.CardError = r
				}
			}
		}
		d.Operators = append(d.Operators, op)
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(res.Candidate.Root, 0)
	if p := fc.optSpan.Payload(); p != nil {
		d.Spans = append(d.Spans, p)
	}
	if p := execSpan.Payload(); p != nil {
		if p.Unfinished {
			// The execute span ends just after this finalizer returns (its
			// End is the caller's); stamp the dossier's copy closed so the
			// record is self-consistent.
			p.EndUS = time.Now().UnixMicro()
			p.Unfinished = false
		}
		d.Spans = append(d.Spans, p)
	}
	fc.rec.Admit(d)
}
