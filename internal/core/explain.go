package core

import (
	"fmt"
	"strings"

	"qtrade/internal/exec"
	"qtrade/internal/plan"
)

// ExplainAnalyze renders the winning plan with per-operator actuals next to
// the plan generator's estimates — the EXPLAIN ANALYZE of the federation.
// st carries the actuals recorded by an Executor whose Stats field was set
// during execution; pass nil for an estimates-only rendering (operators then
// show "not executed", which is also what a purchased-but-pruned branch
// shows after a partial run).
func ExplainAnalyze(res *Result, st *exec.RunStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- response time %.2f ms, total work %.2f ms, %d offers purchased\n",
		res.Candidate.ResponseTime, res.Candidate.TotalWork, len(res.Candidate.Offers))
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Describe())
		sb.WriteString("  (")
		sb.WriteString(estLabel(res, n))
		if op, ok := st.Get(n); ok {
			fmt.Fprintf(&sb, " actual rows=%d", op.RowsOut)
			if len(n.Children()) > 0 {
				fmt.Fprintf(&sb, " in=%d", op.RowsIn)
			}
			fmt.Fprintf(&sb, " time=%.3fms", float64(op.Elapsed.Microseconds())/1000)
			if op.Calls > 1 {
				fmt.Fprintf(&sb, " calls=%d", op.Calls)
			}
		} else {
			sb.WriteString(" not executed")
		}
		sb.WriteString(")\n")
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(res.Candidate.Root, 0)
	return sb.String()
}

// estLabel renders the generator's row estimate for one operator. Remote
// leaves always know theirs (the seller's offered cardinality); assembled
// operators carry theirs in the plan.Card annotation.
func estLabel(res *Result, n plan.Node) string {
	if rows, ok := plan.EstOf(n); ok {
		return fmt.Sprintf("est rows=%d", rows)
	}
	return "est rows=?"
}
