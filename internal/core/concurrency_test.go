package core

import (
	"strings"
	"sync"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/trading"
)

// TestConcurrentBuyers has several buyers negotiate and execute against the
// same sellers simultaneously — sellers must keep per-RFB standing offers
// and strategy state consistent under concurrency (run with -race).
func TestConcurrentBuyers(t *testing.T) {
	f := buildFederation(t, func() trading.SellerStrategy { return trading.NewCompetitive() })
	want := oracle(t, f.sch, paperQuery)

	const buyers = 8
	var wg sync.WaitGroup
	errs := make(chan error, buyers)
	for b := 0; b < buyers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			comm := &NetComm{Net: f.net, SelfID: "athens"}
			cfg := athensCfg(f)
			cfg.Protocol = trading.IterativeBid{MaxRounds: 3}
			res, err := Optimize(cfg, comm, paperQuery)
			if err != nil {
				errs <- err
				return
			}
			out, err := ExecuteResult(comm, &exec.Executor{Store: f.athens.Store()}, res)
			if err != nil {
				errs <- err
				return
			}
			got := rowsKey(out.Rows)
			if strings.Join(got, "|") != strings.Join(want, "|") {
				errs <- &mismatchError{got: got, want: want}
			}
		}(b)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ got, want []string }

func (e *mismatchError) Error() string {
	return "concurrent buyer got wrong answer"
}
