package core

import (
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// fixedMargin always asks truth*(1+m), never improves.
type fixedMargin struct{ m float64 }

func (f fixedMargin) Price(_ string, truth float64) float64 { return truth * (1 + f.m) }
func (f fixedMargin) Improve(_ string, cur, _, _ float64) (float64, bool) {
	return cur, false
}
func (fixedMargin) Observe(string, bool) {}

// TestEqualPlansCheaperSellerWins: two sellers replicate the same fragment
// with identical data (identical delivery times); the one asking a lower
// price must win the trade.
func TestEqualPlansCheaperSellerWins(t *testing.T) {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "t", Columns: []catalog.ColumnDef{
		{Name: "x", Kind: value.Int},
	}})
	net := netsim.New()
	mk := func(id string, margin float64) *node.Node {
		n := node.New(node.Config{ID: id, Schema: sch, Strategy: fixedMargin{m: margin}})
		def, _ := sch.Table("t")
		if _, err := n.Store().CreateFragment(def, "p0"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := n.Store().Insert("t", "p0", value.Row{value.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		net.Register(id, n)
		return n
	}
	mk("greedyseller", 0.9)
	mk("fairseller", 0.1)

	comm := &NetComm{Net: net, SelfID: "buyer"}
	res, err := Optimize(Config{ID: "buyer", Schema: sch}, comm, "SELECT t.x FROM t WHERE t.x < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidate.Offers) != 1 || res.Candidate.Offers[0].SellerID != "fairseller" {
		t.Fatalf("cheaper seller must win: %+v", res.Candidate.Offers)
	}
}

// TestMoneyWeightedValuation: EstimateValuation exposes the paid sum so a
// commercial weighting can trade time against spend.
func TestMoneyWeightedValuation(t *testing.T) {
	fast := &Candidate{
		ResponseTime: 10,
		Offers:       []trading.Offer{{Price: 100, Props: cost.Valuation{Freshness: 1}}},
	}
	slow := &Candidate{
		ResponseTime: 20,
		Offers:       []trading.Offer{{Price: 5, Props: cost.Valuation{Freshness: 1}}},
	}
	timeOnly := cost.DefaultWeights()
	if ValueOf(timeOnly, fast) >= ValueOf(timeOnly, slow) {
		t.Fatal("time-only weights must prefer the fast plan")
	}
	commercial := cost.Weights{TotalTime: 1, Money: 1}
	if ValueOf(commercial, fast) <= ValueOf(commercial, slow) {
		t.Fatal("money-weighted valuation must prefer the cheap plan")
	}
	v := EstimateValuation(fast)
	if v.Money != 100 || v.Completeness != 1 {
		t.Fatalf("valuation: %+v", v)
	}
}

// TestFreshnessFlowsFromOffers: the stalest purchased component bounds the
// candidate's freshness.
func TestFreshnessFlowsFromOffers(t *testing.T) {
	c := &Candidate{Offers: []trading.Offer{
		{Props: cost.Valuation{Freshness: 1}},
		{Props: cost.Valuation{Freshness: 0.4}},
	}}
	if got := EstimateValuation(c).Freshness; got != 0.4 {
		t.Fatalf("freshness: %f", got)
	}
}
