package core

import (
	"testing"

	"qtrade/internal/trading"
)

// noFetchComm fails the test if optimization ever triggers an execution
// fetch — the paper's core invariant: "no query or part of it is physically
// executed during the whole optimization procedure".
type noFetchComm struct {
	inner Comm
	t     *testing.T
}

func (c *noFetchComm) Peers() map[string]trading.Peer { return c.inner.Peers() }

func (c *noFetchComm) Award(to string, aw trading.Award) error { return c.inner.Award(to, aw) }

func (c *noFetchComm) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	c.t.Fatalf("optimization executed a query at %s: %s", to, req.SQL)
	return trading.ExecResp{}, nil
}

func TestNoExecutionDuringOptimization(t *testing.T) {
	f := buildFederation(t, nil)
	comm := &noFetchComm{inner: &NetComm{Net: f.net, SelfID: "athens"}, t: t}
	for _, q := range []string{
		paperQuery,
		"SELECT c.custname FROM customer c WHERE c.office = 'Corfu'",
		"SELECT c.custname, i.charge FROM customer c, invoiceline i WHERE c.custid = i.custid",
	} {
		cfg := athensCfg(f)
		cfg.MaxIterations = 4
		if _, err := Optimize(cfg, comm, q); err != nil {
			t.Fatalf("optimize %q: %v", q, err)
		}
	}
	// The same holds under every negotiation protocol.
	for _, p := range []trading.Protocol{trading.IterativeBid{MaxRounds: 4}, trading.Bargain{MaxRounds: 4}} {
		cfg := athensCfg(f)
		cfg.Protocol = p
		if _, err := Optimize(cfg, comm, paperQuery); err != nil {
			t.Fatalf("optimize under %s: %v", p.Name(), err)
		}
	}
}
