package core

import (
	"fmt"
	"strings"
	"testing"

	"qtrade/internal/exec"
	"qtrade/internal/trading"
)

// crashOnDeliver simulates a seller that negotiates fine but crashes the
// moment it must deliver: Fetch to the victim fails (and takes the node
// down for subsequent negotiations).
type crashOnDeliver struct {
	Comm
	victim  string
	crashed bool
	onCrash func()
}

func (c *crashOnDeliver) Fetch(to string, req trading.ExecReq) (trading.ExecResp, error) {
	if to == c.victim {
		if !c.crashed {
			c.crashed = true
			c.onCrash()
		}
		return trading.ExecResp{}, fmt.Errorf("node %s crashed", to)
	}
	return c.Comm.Fetch(to, req)
}

// TestRecoveryAfterSellerCrash: the winning seller dies between negotiation
// and delivery; the buyer must re-optimize around it. Invoiceline is
// replicated on both islands, and myconos customers exist only on myconos,
// so a corfu-only query stays answerable when... corfu fails: use a query
// answerable from either island's invoice replica plus surviving partitions.
func TestRecoveryAfterSellerCrash(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT i.invid, i.charge FROM invoiceline i WHERE i.charge > 4"
	want := oracle(t, f.sch, q)

	comm := &NetComm{Net: f.net, SelfID: "athens"}
	cfg := athensCfg(f)

	// Find who would win, then have exactly that seller crash at delivery
	// time (negotiation succeeded, execution fails — the adaptive case).
	res, err := Optimize(cfg, comm, q)
	if err != nil {
		t.Fatal(err)
	}
	winner := res.Candidate.Offers[0].SellerID
	crash := &crashOnDeliver{Comm: comm, victim: winner,
		onCrash: func() { f.net.SetDown(winner, true) }}

	out, finalRes, retries, err := OptimizeAndExecute(cfg, crash, &exec.Executor{Store: f.athens.Store()}, q, 2)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if retries < 1 {
		t.Fatalf("expected at least one recovery round, got %d", retries)
	}
	got := rowsKey(out.Rows)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("recovered answer differs:\ngot  %v\nwant %v", got, want)
	}
	for _, o := range finalRes.Candidate.Offers {
		if o.SellerID == winner {
			t.Fatalf("failed seller %s still in the recovered plan", winner)
		}
	}
}

func TestRecoveryNoFailureZeroRetries(t *testing.T) {
	f := buildFederation(t, nil)
	want := oracle(t, f.sch, paperQuery)
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	out, _, retries, err := OptimizeAndExecute(athensCfg(f), comm, &exec.Executor{Store: f.athens.Store()}, paperQuery, 3)
	if err != nil || retries != 0 {
		t.Fatalf("healthy run: retries=%d err=%v", retries, err)
	}
	got := rowsKey(out.Rows)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatal("healthy answer differs")
	}
}

func TestRecoveryExhaustion(t *testing.T) {
	f := buildFederation(t, nil)
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	// Query needs corfu's partition; corfu down and nobody else has it.
	q := "SELECT c.custname FROM customer c WHERE c.office = 'Corfu'"
	// Let the negotiation succeed first, then down corfu before delivery.
	res, err := Optimize(athensCfg(f), comm, q)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	f.net.SetDown("corfu", true)
	_, _, _, err = OptimizeAndExecute(athensCfg(f), comm, &exec.Executor{Store: f.athens.Store()}, q, 2)
	if err == nil {
		t.Fatal("unanswerable recovery must fail")
	}
}
