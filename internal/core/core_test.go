package core

import (
	"sort"
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/exec"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/plan"
	"qtrade/internal/sqlparse"
	"qtrade/internal/trading"
	"qtrade/internal/value"
)

// telcoSchema partitions customer by office; invoiceline is a single
// partition replicated at every office node (the paper's example has the
// Myconos node hold the whole invoiceline table).
func telcoSchema() *catalog.Schema {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "custname", Kind: value.Str},
		{Name: "office", Kind: value.Str},
	}})
	sch.MustAddTable(&catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
		{Name: "invid", Kind: value.Int},
		{Name: "linenum", Kind: value.Int},
		{Name: "custid", Kind: value.Int},
		{Name: "charge", Kind: value.Float},
	}})
	if err := sch.SetPartitions("customer", []*catalog.Partition{
		{Table: "customer", ID: "corfu", Predicate: sqlparse.MustParseExpr("office = 'Corfu'")},
		{Table: "customer", ID: "myconos", Predicate: sqlparse.MustParseExpr("office = 'Myconos'")},
		{Table: "customer", ID: "athens", Predicate: sqlparse.MustParseExpr("office = 'Athens'")},
	}); err != nil {
		panic(err)
	}
	return sch
}

var custRows = map[string][]value.Row{
	"corfu": {
		{value.NewInt(1), value.NewStr("alice"), value.NewStr("Corfu")},
		{value.NewInt(2), value.NewStr("bob"), value.NewStr("Corfu")},
	},
	"myconos": {
		{value.NewInt(3), value.NewStr("carol"), value.NewStr("Myconos")},
		{value.NewInt(5), value.NewStr("eve"), value.NewStr("Myconos")},
	},
	"athens": {
		{value.NewInt(4), value.NewStr("dave"), value.NewStr("Athens")},
	},
}

var invRows = []value.Row{
	{value.NewInt(100), value.NewInt(1), value.NewInt(1), value.NewFloat(10)},
	{value.NewInt(100), value.NewInt(2), value.NewInt(1), value.NewFloat(5)},
	{value.NewInt(101), value.NewInt(1), value.NewInt(2), value.NewFloat(7)},
	{value.NewInt(102), value.NewInt(1), value.NewInt(3), value.NewFloat(20)},
	{value.NewInt(103), value.NewInt(1), value.NewInt(5), value.NewFloat(2)},
	{value.NewInt(104), value.NewInt(1), value.NewInt(4), value.NewFloat(100)},
}

// buildNode creates an office node holding its customer partition plus a
// full invoiceline replica.
func buildNode(t *testing.T, sch *catalog.Schema, id string, custParts []string, withInv bool, strat trading.SellerStrategy) *node.Node {
	t.Helper()
	n := node.New(node.Config{ID: id, Schema: sch, Strategy: strat})
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	for _, p := range custParts {
		if _, err := n.Store().CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
		if err := n.Store().Insert("customer", p, custRows[p]...); err != nil {
			t.Fatal(err)
		}
	}
	if withInv {
		if _, err := n.Store().CreateFragment(inv, "p0"); err != nil {
			t.Fatal(err)
		}
		if err := n.Store().Insert("invoiceline", "p0", invRows...); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

type federation struct {
	sch    *catalog.Schema
	net    *netsim.Network
	athens *node.Node
	corfu  *node.Node
	myc    *node.Node
}

func buildFederation(t *testing.T, strat func() trading.SellerStrategy) *federation {
	t.Helper()
	sch := telcoSchema()
	mk := func() trading.SellerStrategy {
		if strat == nil {
			return nil
		}
		return strat()
	}
	f := &federation{
		sch:    sch,
		net:    netsim.New(),
		athens: buildNode(t, sch, "athens", []string{"athens"}, false, mk()),
		corfu:  buildNode(t, sch, "corfu", []string{"corfu"}, true, mk()),
		myc:    buildNode(t, sch, "myconos", []string{"myconos"}, true, mk()),
	}
	f.net.Register("athens", f.athens)
	f.net.Register("corfu", f.corfu)
	f.net.Register("myconos", f.myc)
	return f
}

const paperQuery = `SELECT c.office, SUM(i.charge) AS total
	FROM customer c, invoiceline i
	WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	GROUP BY c.office ORDER BY c.office`

// oracle computes the ground truth on a single node holding everything.
func oracle(t *testing.T, sch *catalog.Schema, sql string) []string {
	t.Helper()
	n := buildNode(t, sch, "oracle", []string{"corfu", "myconos", "athens"}, true, nil)
	resp, err := n.Execute(trading.ExecReq{SQL: sql})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return rowsKey(resp.Rows)
}

func rowsKey(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		idx := make([]int, len(r))
		for j := range idx {
			idx[j] = j
		}
		out[i] = value.Key(r, idx)
	}
	sort.Strings(out)
	return out
}

func optimizeAndRun(t *testing.T, f *federation, cfg Config, sql string) (*Result, []string) {
	t.Helper()
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	res, err := Optimize(cfg, comm, sql)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	ex := &exec.Executor{Store: f.athens.Store()}
	out, err := ExecuteResult(comm, ex, res)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, ExplainResult(res))
	}
	return res, rowsKey(out.Rows)
}

func athensCfg(f *federation) Config {
	return Config{ID: "athens", Schema: f.sch, Self: f.athens}
}

func TestPaperScenarioEndToEnd(t *testing.T) {
	f := buildFederation(t, nil)
	want := oracle(t, f.sch, paperQuery)
	res, got := optimizeAndRun(t, f, athensCfg(f), paperQuery)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("distributed answer differs:\ngot  %v\nwant %v\n%s", got, want, ExplainResult(res))
	}
	// The winning plan buys from both island nodes, like the paper's story.
	sellers := map[string]bool{}
	for _, o := range res.Candidate.Offers {
		sellers[o.SellerID] = true
	}
	if !sellers["corfu"] || !sellers["myconos"] {
		t.Fatalf("expected purchases from corfu and myconos: %v\n%s", sellers, ExplainResult(res))
	}
	if res.Stats.OffersReceived == 0 || res.Stats.Iterations == 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	msgs, bytes := f.net.Stats()
	if msgs == 0 || bytes == 0 {
		t.Fatal("network accounting must be non-zero")
	}
	// No query is executed during optimization: only the two purchased
	// fetches plus negotiation/award messages may appear. Execution messages
	// are counted, so just assert remote fetch count equals purchases.
	remotes := plan.Remotes(res.Candidate.Root)
	if len(remotes) < 2 {
		t.Fatalf("expected >=2 remote answers:\n%s", ExplainResult(res))
	}
}

func TestSPJQueryAcrossPartitions(t *testing.T) {
	f := buildFederation(t, nil)
	q := `SELECT c.custname, i.charge FROM customer c, invoiceline i
	      WHERE c.custid = i.custid AND i.charge > 4`
	want := oracle(t, f.sch, q)
	res, got := optimizeAndRun(t, f, athensCfg(f), q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs:\ngot  %v\nwant %v\n%s", got, want, ExplainResult(res))
	}
}

func TestSingleRelationQuery(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT c.custname FROM customer c WHERE c.office IN ('Corfu', 'Myconos')"
	want := oracle(t, f.sch, q)
	res, got := optimizeAndRun(t, f, athensCfg(f), q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs:\ngot  %v\nwant %v\n%s", got, want, ExplainResult(res))
	}
	// Coverage must union corfu and myconos partitions.
	if len(res.Candidate.Offers) < 2 {
		t.Fatalf("expected a union of partition offers\n%s", ExplainResult(res))
	}
}

func TestGeneratorModesAgreeOnAnswers(t *testing.T) {
	for _, mode := range []PlanGenMode{GenDP, GenIDP, GenGreedy} {
		f := buildFederation(t, nil)
		want := oracle(t, f.sch, paperQuery)
		cfg := athensCfg(f)
		cfg.Mode = mode
		res, got := optimizeAndRun(t, f, cfg, paperQuery)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("mode %s wrong:\ngot  %v\nwant %v\n%s", mode, got, want, ExplainResult(res))
		}
	}
}

func TestProtocolsAgreeOnAnswers(t *testing.T) {
	protos := []trading.Protocol{
		trading.SealedBid{},
		trading.IterativeBid{MaxRounds: 3},
		trading.Bargain{MaxRounds: 3},
	}
	for _, p := range protos {
		f := buildFederation(t, func() trading.SellerStrategy { return trading.NewCompetitive() })
		want := oracle(t, f.sch, paperQuery)
		cfg := athensCfg(f)
		cfg.Protocol = p
		res, got := optimizeAndRun(t, f, cfg, paperQuery)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("protocol %s wrong:\ngot  %v\nwant %v\n%s", p.Name(), got, want, ExplainResult(res))
		}
	}
}

func TestCompetitivePricesAboveCooperative(t *testing.T) {
	coop := buildFederation(t, nil)
	cgot, _ := optimizeAndRun(t, coop, athensCfg(coop), paperQuery)
	comp := buildFederation(t, func() trading.SellerStrategy { return trading.NewCompetitive() })
	pgot, _ := optimizeAndRun(t, comp, athensCfg(comp), paperQuery)
	coopPaid, compPaid := 0.0, 0.0
	for _, o := range cgot.Candidate.Offers {
		coopPaid += o.Price
	}
	for _, o := range pgot.Candidate.Offers {
		compPaid += o.Price
	}
	if compPaid <= coopPaid {
		t.Fatalf("competitive margins must raise paid value: coop %.2f comp %.2f", coopPaid, compPaid)
	}
}

func TestNoPlanPossibleAborts(t *testing.T) {
	f := buildFederation(t, nil)
	// Nobody holds table `ghost`.
	sch := f.sch
	sch.MustAddTable(&catalog.TableDef{Name: "ghost", Columns: []catalog.ColumnDef{{Name: "x", Kind: value.Int}}})
	comm := &NetComm{Net: f.net, SelfID: "athens"}
	_, err := Optimize(athensCfg(f), comm, "SELECT g.x FROM ghost g")
	if err == nil {
		t.Fatal("unanswerable query must abort")
	}
}

func TestDownSellerIsTolerated(t *testing.T) {
	f := buildFederation(t, nil)
	// Corfu goes down: the query restricted to Myconos must still work.
	f.net.SetDown("corfu", true)
	q := "SELECT c.custname FROM customer c WHERE c.office = 'Myconos'"
	want := oracle(t, f.sch, q)
	_, got := optimizeAndRun(t, f, athensCfg(f), q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs with corfu down:\ngot %v\nwant %v", got, want)
	}
}

func TestBuyerUsesOwnDataWhenCheapest(t *testing.T) {
	f := buildFederation(t, nil)
	q := "SELECT c.custname FROM customer c WHERE c.office = 'Athens'"
	want := oracle(t, f.sch, q)
	res, got := optimizeAndRun(t, f, athensCfg(f), q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("answer differs:\ngot %v\nwant %v", got, want)
	}
	for _, o := range res.Candidate.Offers {
		if o.SellerID != "athens" {
			t.Fatalf("athens data must be served locally, bought from %s", o.SellerID)
		}
	}
}

func TestAnalyseGeneratesPartitionQueries(t *testing.T) {
	sel := sqlparse.MustParseSelect(paperQuery)
	sch := telcoSchema()
	cands := []Candidate{{
		UnionBindings: []string{"c"},
		JoinSubsets:   [][]string{{"c", "i"}},
	}}
	asked := map[string]bool{}
	// The full query's binding set {c,i} equals the whole FROM, so only
	// partition-restricted queries emerge.
	got := Analyse(sel, sch, cands, asked, 10)
	if len(got) != 2 { // corfu and myconos are relevant; athens is pruned
		t.Fatalf("analyser queries: %v", got)
	}
	for _, q := range got {
		if _, err := sqlparse.Parse(q); err != nil {
			t.Fatalf("analyser SQL unparseable: %q: %v", q, err)
		}
	}
	// Asking again yields nothing (dedup).
	if again := Analyse(sel, sch, cands, asked, 10); len(again) != 0 {
		t.Fatalf("dedup failed: %v", again)
	}
}

func TestAnalyseJoinSubsets(t *testing.T) {
	sch := telcoSchema()
	sel := sqlparse.MustParseSelect(`SELECT c.custname, i.charge, c2.custname
		FROM customer c, invoiceline i, customer c2
		WHERE c.custid = i.custid AND i.custid = c2.custid`)
	cands := []Candidate{{JoinSubsets: [][]string{{"c", "i"}}}}
	got := Analyse(sel, sch, cands, map[string]bool{}, 10)
	if len(got) != 1 || !strings.Contains(got[0], "customer c") {
		t.Fatalf("join subquery: %v", got)
	}
}

func TestStatsAndExplain(t *testing.T) {
	f := buildFederation(t, nil)
	res, _ := optimizeAndRun(t, f, athensCfg(f), paperQuery)
	if res.Stats.WallTime <= 0 || res.Stats.PoolSize == 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	exp := ExplainResult(res)
	if !strings.Contains(exp, "Remote[") {
		t.Fatalf("explain: %s", exp)
	}
}
