package core

import (
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/netsim"
	"qtrade/internal/node"
	"qtrade/internal/value"
)

// TestBuyerPrefersNearbyReplica: two sellers replicate identical data; the
// buyer's private latency knowledge must route the purchase to the near one.
func TestBuyerPrefersNearbyReplica(t *testing.T) {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "t", Columns: []catalog.ColumnDef{
		{Name: "x", Kind: value.Int},
	}})
	net := netsim.New()
	for _, id := range []string{"near", "far"} {
		n := node.New(node.Config{ID: id, Schema: sch})
		def, _ := sch.Table("t")
		if _, err := n.Store().CreateFragment(def, "p0"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := n.Store().Insert("t", "p0", value.Row{value.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		net.Register(id, n)
	}
	comm := &NetComm{Net: net, SelfID: "buyer"}
	cfg := Config{
		ID: "buyer", Schema: sch,
		PeerLatency: func(seller string) float64 {
			if seller == "far" {
				return 80 // WAN hop
			}
			return 0.5
		},
	}
	res, err := Optimize(cfg, comm, "SELECT t.x FROM t WHERE t.x < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidate.Offers) != 1 || res.Candidate.Offers[0].SellerID != "near" {
		t.Fatalf("must buy from the near replica: %+v", res.Candidate.Offers)
	}
	// The latency correction is visible in the plan's response estimate.
	if res.Candidate.ResponseTime < 1 {
		t.Fatalf("response must include the round trip: %f", res.Candidate.ResponseTime)
	}
	// Without latency knowledge, the tie breaks arbitrarily but the answer
	// stays correct.
	cfg.PeerLatency = nil
	if _, err := Optimize(cfg, comm, "SELECT t.x FROM t WHERE t.x < 10"); err != nil {
		t.Fatal(err)
	}
}
