package core

import (
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/localopt"
	"qtrade/internal/rewrite"
	"qtrade/internal/sqlparse"
)

// Analyse is the buyer predicates analyser (§3.7): it inspects the candidate
// execution plans and derives additional queries worth asking for in the
// next iteration of the trading loop.
//
// Two families of queries are generated:
//
//   - join subqueries: for every binding subset a candidate joined locally,
//     the corresponding subquery is added to Q so sellers can bid on the join
//     itself (a seller co-located with both sides evaluates it far cheaper
//     than the buyer can join two shipped answers);
//
//   - partition-restricted subqueries: for every binding whose extent a
//     candidate assembled by unioning several offers, one subquery per
//     relevant partition is added (the paper's redundancy-elimination
//     example: restricting overlapping offered extents so cheaper,
//     non-redundant offers can replace them).
//
// Queries whose canonical SQL was already asked are skipped; at most maxNew
// queries are returned.
func Analyse(sel *sqlparse.Select, sch *catalog.Schema, cands []Candidate, asked map[string]bool, maxNew int) []string {
	if maxNew <= 0 {
		maxNew = 12
	}
	var out []string
	add := func(sub *sqlparse.Select) {
		if sub == nil || len(out) >= maxNew {
			return
		}
		sql := sub.SQL()
		if asked[sql] {
			return
		}
		asked[sql] = true
		out = append(out, sql)
	}

	for _, c := range cands {
		for _, subset := range c.JoinSubsets {
			if len(subset) < 2 || len(subset) >= len(sel.From) {
				continue // singles are implied; the full set is the query itself
			}
			add(localopt.SubqueryFor(sel, subset))
		}
	}
	for _, c := range cands {
		for _, b := range c.UnionBindings {
			tr := sel.FindFrom(b)
			if tr == nil {
				continue
			}
			base := localopt.SubqueryFor(sel, []string{tr.Binding()})
			pred := singleBindingPred(sel, b)
			for _, pid := range rewrite.RelevantPartitions(sch, tr.Name, pred) {
				p, ok := sch.Partition(tr.Name, pid)
				if !ok || p.Predicate == nil {
					continue
				}
				restricted := base.Clone()
				restriction := qualifyFor(p.Predicate, tr.Binding())
				restricted.Where = expr.SimplifyPredicate(expr.And([]expr.Expr{restricted.Where, restriction}))
				add(restricted)
			}
		}
	}
	return out
}

// singleBindingPred extracts the conjunction of predicates referencing only
// the given binding.
func singleBindingPred(sel *sqlparse.Select, binding string) expr.Expr {
	var conj []expr.Expr
	for _, c := range expr.Conjuncts(sel.Where) {
		only := true
		any := false
		for _, col := range expr.Columns(c) {
			if strings.EqualFold(col.Table, binding) {
				any = true
			} else {
				only = false
				break
			}
		}
		if only && any {
			conj = append(conj, expr.Clone(c))
		}
	}
	return expr.And(conj)
}

// qualifyFor attaches the binding qualifier to bare columns of a partition
// predicate.
func qualifyFor(e expr.Expr, binding string) expr.Expr {
	return expr.Transform(expr.Clone(e), func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Column); ok && c.Table == "" {
			return &expr.Column{Table: binding, Name: c.Name, Index: -1}
		}
		return n
	})
}
