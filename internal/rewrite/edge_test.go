package rewrite

import (
	"strings"
	"testing"

	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
)

func TestUnqualifiedColumnsResolve(t *testing.T) {
	sch := telcoSchema()
	st := myconosStore(t, sch)
	sel := sqlparse.MustParseSelect(
		"SELECT custname FROM customer c WHERE office = 'Myconos'")
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	sql := rw.Sel.SQL()
	if !strings.Contains(sql, "custname") {
		t.Fatalf("unqualified item lost: %s", sql)
	}
	if _, err := sqlparse.Parse(sql); err != nil {
		t.Fatalf("unparseable rewrite: %q: %v", sql, err)
	}
}

func TestAmbiguousUnqualifiedColumnConjunctDropped(t *testing.T) {
	// custid exists in both tables: an unqualified custid conjunct cannot
	// be attributed and must not survive into a single-relation rewrite.
	sch := telcoSchema()
	st := storage.NewStore()
	cust, _ := sch.Table("customer")
	if _, err := st.CreateFragment(cust, "myconos"); err != nil {
		t.Fatal(err)
	}
	sel := sqlparse.MustParseSelect(
		"SELECT c.custname FROM customer c, invoiceline i WHERE custid = 3")
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rw.Sel.SQL(), "custid = 3") {
		t.Fatalf("ambiguous conjunct must be dropped (buyer re-applies): %s", rw.Sel.SQL())
	}
}

func TestGroupByForeignColumnStripsAggregation(t *testing.T) {
	// The node holds only invoiceline; grouping is by a customer column it
	// lacks — aggregation must be stripped and the local agg argument
	// exposed raw.
	sch := telcoSchema()
	st := storage.NewStore()
	inv, _ := sch.Table("invoiceline")
	if _, err := st.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	sel := sqlparse.MustParseSelect(`SELECT c.office, SUM(i.charge) AS total
		FROM customer c, invoiceline i WHERE c.custid = i.custid GROUP BY c.office`)
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Stripped {
		t.Fatal("aggregation must be stripped")
	}
	sql := strings.ToLower(rw.Sel.SQL())
	if !strings.Contains(sql, "i.charge") || !strings.Contains(sql, "i.custid") {
		t.Fatalf("agg argument and join key must be exposed: %s", sql)
	}
	if strings.Contains(sql, "group by") || strings.Contains(sql, "sum(") {
		t.Fatalf("no aggregation may survive: %s", sql)
	}
}

func TestHavingSurvivesOnlyWithAggregation(t *testing.T) {
	sch := telcoSchema()
	full := storage.NewStore()
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	for _, p := range []string{"corfu", "myconos", "athens"} {
		if _, err := full.CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := full.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	sel := sqlparse.MustParseSelect(`SELECT c.office, COUNT(*) AS n
		FROM customer c, invoiceline i WHERE c.custid = i.custid
		GROUP BY c.office HAVING COUNT(*) > 2`)
	rw, err := ForSeller(sel, sch, full)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Sel.Having == nil {
		t.Fatalf("complete holder keeps HAVING: %s", rw.Sel.SQL())
	}
	partial := storage.NewStore()
	if _, err := partial.CreateFragment(cust, "corfu"); err != nil {
		t.Fatal(err)
	}
	if _, err := partial.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	rw2, err := ForSeller(sel, sch, partial)
	if err != nil {
		t.Fatal(err)
	}
	if rw2.Sel.Having != nil {
		t.Fatalf("partial holder must drop HAVING: %s", rw2.Sel.SQL())
	}
}

func TestOnlyIrrelevantPartitionsHeld(t *testing.T) {
	// Athens holds only the athens partition; for a Corfu-only query its
	// customer relation is dropped entirely, but the invoice replica is
	// still offered.
	sch := telcoSchema()
	st := storage.NewStore()
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	if _, err := st.CreateFragment(cust, "athens"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	sel := sqlparse.MustParseSelect(`SELECT c.custname, i.charge FROM customer c, invoiceline i
		WHERE c.custid = i.custid AND c.office = 'Corfu'`)
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Dropped) != 1 || rw.Dropped[0] != "c" {
		t.Fatalf("customer must be dropped: %+v", rw.Dropped)
	}
	if !strings.Contains(strings.ToLower(rw.Sel.SQL()), "invoiceline") {
		t.Fatalf("invoice replica must survive: %s", rw.Sel.SQL())
	}
}
