// Package rewrite implements the seller-side query rewriting algorithm of
// §3.4: given a query received in an RFB, remove the base relations the node
// does not hold, restrict each remaining relation's extent to the horizontal
// partitions available locally (adding their defining predicates to WHERE,
// like the `office='Myconos'` restriction in the paper's example), simplify,
// and report exactly which fragments the rewritten query covers so the buyer
// can assemble full extents from several offers.
package rewrite

import (
	"errors"
	"sort"
	"strings"

	"qtrade/internal/catalog"
	"qtrade/internal/expr"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
)

// ErrNothingLocal is returned when the node holds no relation of the query.
var ErrNothingLocal = errors.New("rewrite: no query relation is locally available")

// ErrContradiction is returned when the local restriction contradicts the
// query predicate — the node's data is irrelevant to this query.
var ErrContradiction = errors.New("rewrite: local partitions contradict the query predicate")

// Rewritten is the local version of a foreign query.
type Rewritten struct {
	Sel *sqlparse.Select
	// Parts maps each kept binding (lower-cased) to the partition ids the
	// rewritten query covers.
	Parts map[string][]string
	// Dropped lists the bindings of relations removed because the node holds
	// no fragment of them.
	Dropped []string
	// Complete reports whether the rewritten query covers every partition of
	// every relation of the original query (no relation dropped, full
	// extents) — only then may aggregation, ORDER BY and LIMIT survive.
	Complete bool
	// Stripped reports whether aggregation was removed (the buyer must
	// re-aggregate).
	Stripped bool
}

// ForSeller rewrites a buyer query against the seller's schema and store.
func ForSeller(sel *sqlparse.Select, sch *catalog.Schema, store *storage.Store) (*Rewritten, error) {
	rw := &Rewritten{Parts: map[string][]string{}}
	var kept []sqlparse.TableRef
	keptSet := map[string]bool{}
	complete := true
	anyHeld := false
	for _, tr := range sel.From {
		held := store.PartIDs(tr.Name)
		if len(held) > 0 {
			anyHeld = true
		}
		// Keep only held partitions the query can actually use: a partition
		// whose defining predicate contradicts the query's restriction on
		// this relation contributes nothing (paper §3.4: restrict extents,
		// then simplify).
		bindingPred := bindingPredicate(sel, tr.Binding())
		var usable []string
		for _, pid := range held {
			p, ok := sch.Partition(tr.Name, pid)
			if !ok {
				continue
			}
			if p.Predicate != nil && bindingPred != nil {
				combined := expr.And([]expr.Expr{strip(bindingPred), strip(p.Predicate)})
				if expr.Unsatisfiable(expr.Simplify(combined)) {
					continue
				}
			}
			usable = append(usable, pid)
		}
		if len(usable) == 0 {
			rw.Dropped = append(rw.Dropped, tr.Binding())
			complete = false
			continue
		}
		kept = append(kept, tr)
		b := strings.ToLower(tr.Binding())
		keptSet[b] = true
		rw.Parts[b] = usable
		if len(usable) < len(RelevantPartitions(sch, tr.Name, bindingPred)) {
			complete = false
		}
	}
	if len(kept) == 0 {
		if anyHeld {
			return nil, ErrContradiction
		}
		return nil, ErrNothingLocal
	}
	rw.Complete = complete

	out := &sqlparse.Select{Limit: -1, From: kept}

	// WHERE: conjuncts referencing only kept relations, plus partition
	// restrictions for partially held relations.
	var conj []expr.Expr
	for _, c := range expr.Conjuncts(sel.Where) {
		if conjunctLocal(c, keptSet, sel.From, sch) {
			conj = append(conj, expr.Clone(c))
		}
	}
	queryPred := expr.And(cloneAll(conj))
	for _, tr := range kept {
		b := strings.ToLower(tr.Binding())
		if len(rw.Parts[b]) == len(sch.PartitionIDs(tr.Name)) {
			continue // full extent, no restriction needed
		}
		restriction := PartitionRestriction(sch, tr.Name, tr.Binding(), rw.Parts[b])
		if restriction == nil {
			continue
		}
		// Skip the restriction when the query predicate already implies it
		// (the paper's Myconos example adds office='Myconos' because the
		// query's IN list does not imply it).
		if expr.Implies(queryPred, restriction) {
			continue
		}
		conj = append(conj, restriction)
	}
	out.Where = expr.SimplifyPredicate(expr.And(conj))
	if out.Where != nil && expr.IsFalse(out.Where) {
		return nil, ErrContradiction
	}

	// SELECT list: local items from the original query plus the local join
	// columns appearing in dropped cross-relation conjuncts, plus every
	// column of the rewritten WHERE (so offers derived through different
	// rewrite paths expose the same columns and stay union-compatible at
	// the buyer). A node covering every relevant partition of every query
	// relation passes the query through verbatim instead — it can answer it
	// as-is, aggregation, ordering and all.
	hasAgg := sel.HasAggregates() || len(sel.GroupBy) > 0
	passThrough := rw.Complete && len(rw.Dropped) == 0
	items, _ := localItems(sel, out.Where, keptSet, kept, sch, passThrough)
	if len(items) == 0 {
		// Fall back to every local column referenced anywhere in the query.
		items = fallbackItems(sel, kept, sch)
	}
	out.Items = items
	rw.Stripped = hasAgg && !passThrough

	if passThrough {
		for _, g := range sel.GroupBy {
			out.GroupBy = append(out.GroupBy, expr.Clone(g))
		}
		if sel.Having != nil {
			out.Having = expr.Clone(sel.Having)
		}
		out.Distinct = sel.Distinct
		for _, ob := range sel.OrderBy {
			out.OrderBy = append(out.OrderBy, sqlparse.OrderItem{Expr: expr.Clone(ob.Expr), Desc: ob.Desc})
		}
		out.Limit = sel.Limit
	}

	rw.Sel = out
	return rw, nil
}

// PartitionRestriction builds the disjunction of the partition predicates of
// the given partition ids, with columns qualified by the binding. It returns
// nil when any covered partition has no predicate (whole-table fragment).
func PartitionRestriction(sch *catalog.Schema, table, binding string, partIDs []string) expr.Expr {
	var ors []expr.Expr
	for _, id := range partIDs {
		p, ok := sch.Partition(table, id)
		if !ok {
			continue
		}
		if p.Predicate == nil {
			return nil
		}
		ors = append(ors, qualify(p.Predicate, binding))
	}
	return expr.Or(ors)
}

// RelevantPartitions returns the partition ids of a table that do not
// contradict the given predicate (columns may be qualified by binding or
// bare). Used by the buyer to know which fragments a query actually needs.
func RelevantPartitions(sch *catalog.Schema, table string, pred expr.Expr) []string {
	var out []string
	for _, p := range sch.Partitions(table) {
		if p.Predicate == nil || pred == nil {
			out = append(out, p.ID)
			continue
		}
		combined := expr.And([]expr.Expr{strip(pred), strip(p.Predicate)})
		if !expr.Unsatisfiable(expr.Simplify(combined)) {
			out = append(out, p.ID)
		}
	}
	return out
}

// bindingPredicate extracts the conjunction of query conjuncts that
// reference only the given binding (qualified references only).
func bindingPredicate(sel *sqlparse.Select, binding string) expr.Expr {
	var conj []expr.Expr
	for _, c := range expr.Conjuncts(sel.Where) {
		only := true
		any := false
		for _, col := range expr.Columns(c) {
			if strings.EqualFold(col.Table, binding) {
				any = true
			} else {
				only = false
				break
			}
		}
		if only && any {
			conj = append(conj, expr.Clone(c))
		}
	}
	return expr.And(conj)
}

// qualify rewrites unqualified columns to carry the binding name.
func qualify(e expr.Expr, binding string) expr.Expr {
	return expr.Transform(expr.Clone(e), func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Column); ok && c.Table == "" {
			return &expr.Column{Table: binding, Name: c.Name, Index: -1}
		}
		return n
	})
}

// strip removes qualifiers so single-table predicates can be combined.
func strip(e expr.Expr) expr.Expr {
	return expr.Transform(expr.Clone(e), func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Column); ok && c.Table != "" {
			return &expr.Column{Name: c.Name, Index: -1}
		}
		return n
	})
}

func cloneAll(es []expr.Expr) []expr.Expr {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = expr.Clone(e)
	}
	return out
}

// conjunctLocal reports whether a conjunct references only kept relations.
// Unqualified columns must resolve to exactly one relation of the *whole*
// query (resolving against kept relations only would silently change the
// meaning of an ambiguous reference), and that relation must be kept.
func conjunctLocal(c expr.Expr, keptSet map[string]bool, all []sqlparse.TableRef, sch *catalog.Schema) bool {
	for _, col := range expr.Columns(c) {
		if col.Table != "" {
			if !keptSet[strings.ToLower(col.Table)] {
				return false
			}
			continue
		}
		owner, n := ownerOf(col.Name, all, sch)
		if n != 1 || !keptSet[owner] {
			return false
		}
	}
	return true
}

// ownerOf finds which binding of the relation list exposes an unqualified
// column name, and how many expose it (n != 1 means unresolvable).
func ownerOf(name string, rels []sqlparse.TableRef, sch *catalog.Schema) (string, int) {
	owner := ""
	n := 0
	for _, tr := range rels {
		def, ok := sch.Table(tr.Name)
		if !ok {
			continue
		}
		if def.ColumnIndex(name) >= 0 {
			owner = strings.ToLower(tr.Binding())
			n++
		}
	}
	return owner, n
}

// localItems computes the rewritten select list. keepAgg is true when the
// node may answer the aggregation itself (complete extents, no dropped
// relations); the bool result reports whether aggregation was kept.
func localItems(sel *sqlparse.Select, rewrittenWhere expr.Expr, keptSet map[string]bool, kept []sqlparse.TableRef, sch *catalog.Schema, passThrough bool) ([]sqlparse.SelectItem, bool) {
	if passThrough {
		// The node can answer the query verbatim; items pass through
		// unchanged so the answer's schema matches the query's exactly.
		var items []sqlparse.SelectItem
		for _, it := range sel.Items {
			ni := sqlparse.SelectItem{Alias: it.Alias, Star: it.Star}
			if it.Expr != nil {
				ni.Expr = expr.Clone(it.Expr)
			}
			items = append(items, ni)
		}
		return items, true
	}
	seen := map[string]bool{}
	var items []sqlparse.SelectItem
	addCol := func(c *expr.Column) {
		binding := strings.ToLower(c.Table)
		if binding == "" {
			owner, n := ownerOf(c.Name, sel.From, sch)
			if n != 1 {
				return
			}
			binding = owner
		}
		if !keptSet[binding] {
			return
		}
		key := binding + "." + strings.ToLower(c.Name)
		if seen[key] {
			return
		}
		seen[key] = true
		items = append(items, sqlparse.SelectItem{Expr: expr.NewColumn(c.Table, c.Name)})
	}
	local := func(e expr.Expr) bool { return conjunctLocal(e, keptSet, sel.From, sch) }
	for _, it := range sel.Items {
		if it.Star {
			for _, tr := range kept {
				def, ok := sch.Table(tr.Name)
				if !ok {
					continue
				}
				for _, cd := range def.Columns {
					addCol(&expr.Column{Table: tr.Binding(), Name: cd.Name})
				}
			}
			continue
		}
		// Aggregates are stripped to their argument columns; plain items
		// keep their local columns.
		for _, c := range expr.Columns(it.Expr) {
			if local(&expr.Binary{Op: "=", L: c, R: expr.Int(0)}) {
				addCol(c)
			}
		}
	}
	// Group-by and having columns the buyer needs to re-aggregate.
	for _, g := range sel.GroupBy {
		for _, c := range expr.Columns(g) {
			addCol(c)
		}
	}
	for _, c := range expr.Columns(sel.Having) {
		addCol(c)
	}
	// Join columns from conjuncts that span kept and dropped relations.
	for _, cj := range expr.Conjuncts(sel.Where) {
		if local(cj) {
			continue
		}
		for _, c := range expr.Columns(cj) {
			addCol(c)
		}
	}
	// Every column of the rewritten WHERE (local conjuncts and partition
	// restrictions), for cross-seller union compatibility.
	for _, c := range expr.Columns(rewrittenWhere) {
		addCol(c)
	}
	for _, ob := range sel.OrderBy {
		for _, c := range expr.Columns(ob.Expr) {
			addCol(c)
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].Expr.String() < items[j].Expr.String() })
	return items, false
}

// fallbackItems exposes every locally owned column referenced anywhere in
// the query; used when no regular item survived the rewrite.
func fallbackItems(sel *sqlparse.Select, kept []sqlparse.TableRef, sch *catalog.Schema) []sqlparse.SelectItem {
	seen := map[string]bool{}
	var items []sqlparse.SelectItem
	collect := func(e expr.Expr) {
		for _, c := range expr.Columns(e) {
			binding := strings.ToLower(c.Table)
			if binding == "" {
				owner, n := ownerOf(c.Name, sel.From, sch)
				if n != 1 {
					continue
				}
				binding = owner
			}
			found := false
			for _, tr := range kept {
				if strings.EqualFold(tr.Binding(), binding) {
					found = true
				}
			}
			if !found {
				continue
			}
			key := binding + "." + strings.ToLower(c.Name)
			if !seen[key] {
				seen[key] = true
				items = append(items, sqlparse.SelectItem{Expr: expr.NewColumn(c.Table, c.Name)})
			}
		}
	}
	for _, it := range sel.Items {
		if !it.Star {
			collect(it.Expr)
		}
	}
	collect(sel.Where)
	for _, g := range sel.GroupBy {
		collect(g)
	}
	if len(items) == 0 {
		// Last resort: the first column of the first kept relation.
		if def, ok := sch.Table(kept[0].Name); ok {
			items = append(items, sqlparse.SelectItem{Expr: expr.NewColumn(kept[0].Binding(), def.Columns[0].Name)})
		}
	}
	return items
}
