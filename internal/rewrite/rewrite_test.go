package rewrite

import (
	"errors"
	"strings"
	"testing"

	"qtrade/internal/catalog"
	"qtrade/internal/sqlparse"
	"qtrade/internal/storage"
	"qtrade/internal/value"
)

func telcoSchema() *catalog.Schema {
	sch := catalog.NewSchema()
	sch.MustAddTable(&catalog.TableDef{Name: "customer", Columns: []catalog.ColumnDef{
		{Name: "custid", Kind: value.Int},
		{Name: "custname", Kind: value.Str},
		{Name: "office", Kind: value.Str},
	}})
	sch.MustAddTable(&catalog.TableDef{Name: "invoiceline", Columns: []catalog.ColumnDef{
		{Name: "invid", Kind: value.Int},
		{Name: "linenum", Kind: value.Int},
		{Name: "custid", Kind: value.Int},
		{Name: "charge", Kind: value.Float},
	}})
	if err := sch.SetPartitions("customer", []*catalog.Partition{
		{Table: "customer", ID: "corfu", Predicate: sqlparse.MustParseExpr("office = 'Corfu'")},
		{Table: "customer", ID: "myconos", Predicate: sqlparse.MustParseExpr("office = 'Myconos'")},
		{Table: "customer", ID: "athens", Predicate: sqlparse.MustParseExpr("office = 'Athens'")},
	}); err != nil {
		panic(err)
	}
	return sch
}

// myconosStore mimics the paper's example: the Myconos node holds the whole
// invoiceline table but only its own customer partition.
func myconosStore(t *testing.T, sch *catalog.Schema) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	if _, err := st.CreateFragment(cust, "myconos"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	return st
}

// paperQuery is the motivating query: total issued bills in Corfu and
// Myconos.
const paperQuery = `SELECT c.office, SUM(i.charge) AS total
	FROM customer c, invoiceline i
	WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos')
	GROUP BY c.office`

func TestPaperExampleMyconosRewrite(t *testing.T) {
	sch := telcoSchema()
	st := myconosStore(t, sch)
	sel := sqlparse.MustParseSelect(paperQuery)
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	sql := rw.Sel.SQL()
	// The paper: the restriction office='Myconos' is added because the node
	// holds only that partition.
	if !strings.Contains(sql, "c.office = 'Myconos'") {
		t.Fatalf("missing partition restriction: %s", sql)
	}
	if !strings.Contains(sql, "c.custid = i.custid") {
		t.Fatalf("join predicate must survive: %s", sql)
	}
	if rw.Complete {
		t.Fatal("Myconos holds only part of customer: not complete")
	}
	// Aggregation must be stripped (buyer re-aggregates across nodes) since
	// the extent is partial.
	if !rw.Stripped {
		t.Fatal("aggregation must be stripped on partial extents")
	}
	if got := rw.Parts["c"]; len(got) != 1 || got[0] != "myconos" {
		t.Fatalf("parts metadata: %+v", rw.Parts)
	}
	if got := rw.Parts["i"]; len(got) != 1 || got[0] != "p0" {
		t.Fatalf("invoiceline parts: %+v", rw.Parts)
	}
	// The stripped query must expose office (group by), charge (agg arg) and
	// custid (join) columns.
	low := strings.ToLower(sql)
	for _, col := range []string{"office", "charge", "custid"} {
		if !strings.Contains(low, col) {
			t.Fatalf("stripped select must expose %s: %s", col, sql)
		}
	}
}

func TestRestrictionSkippedWhenImplied(t *testing.T) {
	sch := telcoSchema()
	st := myconosStore(t, sch)
	sel := sqlparse.MustParseSelect(
		"SELECT c.custname FROM customer c WHERE c.office = 'Myconos'")
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	// Query already implies the restriction; it must not be duplicated.
	if n := strings.Count(rw.Sel.SQL(), "Myconos"); n != 1 {
		t.Fatalf("restriction duplicated: %s", rw.Sel.SQL())
	}
}

func TestContradictionRejected(t *testing.T) {
	sch := telcoSchema()
	st := myconosStore(t, sch)
	sel := sqlparse.MustParseSelect(
		"SELECT c.custname FROM customer c WHERE c.office = 'Athens'")
	_, err := ForSeller(sel, sch, st)
	if !errors.Is(err, ErrContradiction) {
		t.Fatalf("want ErrContradiction, got %v", err)
	}
}

func TestNothingLocal(t *testing.T) {
	sch := telcoSchema()
	st := storage.NewStore()
	sel := sqlparse.MustParseSelect("SELECT c.custname FROM customer c")
	_, err := ForSeller(sel, sch, st)
	if !errors.Is(err, ErrNothingLocal) {
		t.Fatalf("want ErrNothingLocal, got %v", err)
	}
}

func TestDropForeignRelationKeepsJoinColumns(t *testing.T) {
	sch := telcoSchema()
	st := storage.NewStore()
	inv, _ := sch.Table("invoiceline")
	if _, err := st.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	sel := sqlparse.MustParseSelect(
		"SELECT c.custname FROM customer c, invoiceline i WHERE c.custid = i.custid AND i.charge > 5")
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	sql := rw.Sel.SQL()
	if strings.Contains(strings.ToLower(sql), "customer") {
		t.Fatalf("customer must be dropped: %s", sql)
	}
	if !strings.Contains(sql, "i.charge > 5") {
		t.Fatalf("local predicate must survive: %s", sql)
	}
	if !strings.Contains(strings.ToLower(sql), "i.custid") {
		t.Fatalf("join column must be exposed for the buyer: %s", sql)
	}
	if len(rw.Dropped) != 1 || rw.Dropped[0] != "c" {
		t.Fatalf("dropped: %v", rw.Dropped)
	}
	if rw.Complete {
		t.Fatal("dropping a relation cannot be complete")
	}
}

func TestCompleteNodeKeepsAggregation(t *testing.T) {
	sch := telcoSchema()
	st := storage.NewStore()
	cust, _ := sch.Table("customer")
	inv, _ := sch.Table("invoiceline")
	for _, p := range []string{"corfu", "myconos", "athens"} {
		if _, err := st.CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CreateFragment(inv, "p0"); err != nil {
		t.Fatal(err)
	}
	sel := sqlparse.MustParseSelect(paperQuery)
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Complete || rw.Stripped {
		t.Fatalf("full holder must keep aggregation: complete=%v stripped=%v", rw.Complete, rw.Stripped)
	}
	sql := rw.Sel.SQL()
	if !strings.Contains(sql, "SUM(i.charge)") || !strings.Contains(sql, "GROUP BY c.office") {
		t.Fatalf("aggregation must survive: %s", sql)
	}
	// No restriction needed: the node holds every partition.
	if strings.Contains(sql, "Myconos' OR") {
		t.Fatalf("no restriction expected: %s", sql)
	}
}

func TestOrderLimitSurviveOnlyWhenComplete(t *testing.T) {
	sch := telcoSchema()
	full := storage.NewStore()
	cust, _ := sch.Table("customer")
	for _, p := range []string{"corfu", "myconos", "athens"} {
		if _, err := full.CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
	}
	sel := sqlparse.MustParseSelect("SELECT c.custname FROM customer c ORDER BY c.custname LIMIT 5")
	rw, err := ForSeller(sel, sch, full)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Sel.Limit != 5 || len(rw.Sel.OrderBy) != 1 {
		t.Fatalf("complete holder keeps order/limit: %s", rw.Sel.SQL())
	}
	partial := storage.NewStore()
	if _, err := partial.CreateFragment(cust, "corfu"); err != nil {
		t.Fatal(err)
	}
	rw2, err := ForSeller(sel, sch, partial)
	if err != nil {
		t.Fatal(err)
	}
	if rw2.Sel.Limit >= 0 || len(rw2.Sel.OrderBy) != 0 {
		t.Fatalf("partial holder must drop order/limit: %s", rw2.Sel.SQL())
	}
}

func TestPartitionRestrictionHelpers(t *testing.T) {
	sch := telcoSchema()
	r := PartitionRestriction(sch, "customer", "c", []string{"corfu", "myconos"})
	if r == nil || !strings.Contains(r.String(), "OR") {
		t.Fatalf("restriction: %v", r)
	}
	// A whole-table partition yields no restriction.
	if PartitionRestriction(sch, "invoiceline", "i", []string{"p0"}) != nil {
		t.Fatal("whole-table fragment must not restrict")
	}
}

func TestRelevantPartitions(t *testing.T) {
	sch := telcoSchema()
	got := RelevantPartitions(sch, "customer", sqlparse.MustParseExpr("c.office IN ('Corfu', 'Myconos')"))
	if len(got) != 2 || got[0] != "corfu" || got[1] != "myconos" {
		t.Fatalf("relevant: %v", got)
	}
	all := RelevantPartitions(sch, "customer", nil)
	if len(all) != 3 {
		t.Fatalf("nil predicate keeps all: %v", all)
	}
	one := RelevantPartitions(sch, "customer", sqlparse.MustParseExpr("office = 'Athens'"))
	if len(one) != 1 || one[0] != "athens" {
		t.Fatalf("athens only: %v", one)
	}
}

func TestMultiplePartitionsRestrictionIsDisjunction(t *testing.T) {
	sch := telcoSchema()
	st := storage.NewStore()
	cust, _ := sch.Table("customer")
	for _, p := range []string{"corfu", "myconos"} {
		if _, err := st.CreateFragment(cust, p); err != nil {
			t.Fatal(err)
		}
	}
	sel := sqlparse.MustParseSelect("SELECT c.custname FROM customer c")
	rw, err := ForSeller(sel, sch, st)
	if err != nil {
		t.Fatal(err)
	}
	sql := rw.Sel.SQL()
	if !strings.Contains(sql, "Corfu") || !strings.Contains(sql, "Myconos") {
		t.Fatalf("disjunction of held partitions expected: %s", sql)
	}
}

func TestRewrittenQueryReParses(t *testing.T) {
	sch := telcoSchema()
	st := myconosStore(t, sch)
	for _, q := range []string{
		paperQuery,
		"SELECT c.custname FROM customer c WHERE c.office IN ('Corfu','Myconos')",
		"SELECT i.charge FROM invoiceline i WHERE i.charge BETWEEN 1 AND 9",
		"SELECT c.office, i.invid FROM customer c, invoiceline i WHERE c.custid = i.custid",
	} {
		rw, err := ForSeller(sqlparse.MustParseSelect(q), sch, st)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, err := sqlparse.Parse(rw.Sel.SQL()); err != nil {
			t.Fatalf("rewritten SQL unparseable: %q: %v", rw.Sel.SQL(), err)
		}
	}
}
