// Package baseline implements the traditional distributed optimizers the
// paper compares against (refs [2,4]): a centralized two-phase System-R
// style optimizer with site selection, its iterative-dynamic-programming
// variant IDP(2,k), and naive data shipping. All three are deliberately
// given what autonomy forbids — direct access to every node's fragments and
// statistics — so they form a *best-case* baseline: the plans they produce
// assume perfect global knowledge that a real federation of autonomous
// nodes cannot provide.
package baseline

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"qtrade/internal/catalog"
	"qtrade/internal/cost"
	"qtrade/internal/expr"
	"qtrade/internal/localopt"
	"qtrade/internal/node"
	"qtrade/internal/plan"
	"qtrade/internal/rewrite"
	"qtrade/internal/sqlparse"
	"qtrade/internal/stats"
)

// GlobalView is the omniscient catalog the centralized optimizer uses:
// placement and per-fragment statistics of every node.
type GlobalView struct {
	Schema *catalog.Schema
	Model  *cost.Model
	nodes  map[string]*node.Node
	place  *catalog.Placement
}

// NewGlobalView builds the view by inspecting every node's store directly
// (the autonomy violation is the point of the baseline).
func NewGlobalView(sch *catalog.Schema, model *cost.Model, nodes map[string]*node.Node) *GlobalView {
	if model == nil {
		model = cost.Default()
	}
	gv := &GlobalView{Schema: sch, Model: model, nodes: nodes, place: catalog.NewPlacement()}
	for id, n := range nodes {
		for _, table := range n.Store().Tables() {
			for _, pid := range n.Store().PartIDs(table) {
				gv.place.Assign(id, catalog.FragmentRef{Table: table, Part: pid})
			}
		}
	}
	return gv
}

// StatMessages reports the simulated cost of collecting fresh statistics
// from every node before optimizing (2 messages per node: request +
// response).
func (gv *GlobalView) StatMessages() int64 { return 2 * int64(len(gv.nodes)) }

// Holders returns the nodes holding a fragment replica, sorted.
func (gv *GlobalView) Holders(table, part string) []string {
	h := gv.place.Holders(catalog.FragmentRef{Table: table, Part: part})
	sort.Strings(h)
	return h
}

func (gv *GlobalView) fragStats(nodeID, table, part string) (*stats.TableStats, error) {
	n, ok := gv.nodes[nodeID]
	if !ok {
		return nil, fmt.Errorf("baseline: unknown node %q", nodeID)
	}
	return n.Store().FragmentStats(table, part)
}

// Plan is a baseline optimizer's output, executable through the same
// machinery as QT plans (Remote leaves fetched from their holders).
type Plan struct {
	Root         plan.Node
	ResponseTime float64
	TotalWork    float64
	Rows         int64
	OptTime      time.Duration
	StatMessages int64
	FetchCount   int
}

// rel captures one FROM relation resolved against the global view.
type rel struct {
	tr        sqlparse.TableRef
	def       *catalog.TableDef
	localPred expr.Expr
	relevant  []string
	// per partition: chosen holder, rows after localPred, bytes
	holder map[string]string
	rows   map[string]int64
	bytes  map[string]float64
	ndv    map[string]int64 // per column (lower) over the union
}

type siteEntry struct {
	execCost float64
	rows     int64
	bytes    float64
}

type buyerEntry struct {
	node      plan.Node
	remoteMax float64
	remoteSum float64
	localCost float64
	rows      int64
	bytes     float64
	fetches   int
}

func (e *buyerEntry) response() float64 { return e.remoteMax + e.localCost }

// optimizer is one centralized optimization run.
type optimizer struct {
	gv    *GlobalView
	buyer string
	sel   *sqlparse.Select
	rels  []*rel
	preds []sitePred
	keep  int // 0 = full DP; >0 = IDP(2, keep)
}

type sitePred struct {
	e    expr.Expr
	mask uint
}

// Centralized runs the full-knowledge System-R style optimizer. keep=0 gives
// exhaustive DP; keep>0 gives the IDP(2, keep) variant of ref [2].
func Centralized(gv *GlobalView, buyerID, sql string, keep int) (*Plan, error) {
	start := time.Now()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	plan.Qualify(sel, gv.Schema)
	o := &optimizer{gv: gv, buyer: buyerID, sel: sel, keep: keep}
	if err := o.resolve(); err != nil {
		return nil, err
	}
	best, err := o.run()
	if err != nil {
		return nil, err
	}
	root, err := o.finish(best)
	if err != nil {
		return nil, err
	}
	localTail, rows := o.tailCost(best)
	return &Plan{
		Root:         root,
		ResponseTime: best.remoteMax + best.localCost + localTail,
		TotalWork:    best.remoteSum + best.localCost + localTail,
		Rows:         rows,
		OptTime:      time.Since(start),
		StatMessages: gv.StatMessages(),
		FetchCount:   best.fetches,
	}, nil
}

// DataShipping fetches every relevant fragment to the buyer and joins
// locally in a greedy order — the naive baseline.
func DataShipping(gv *GlobalView, buyerID, sql string) (*Plan, error) {
	start := time.Now()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	plan.Qualify(sel, gv.Schema)
	o := &optimizer{gv: gv, buyer: buyerID, sel: sel}
	if err := o.resolve(); err != nil {
		return nil, err
	}
	// Greedy left-deep: start from the smallest relation, repeatedly join
	// the connected relation with the fewest rows.
	entries := make([]*buyerEntry, len(o.rels))
	for i := range o.rels {
		entries[i] = o.leafAtBuyer(uint(1) << i)
	}
	remaining := map[int]bool{}
	for i := range o.rels {
		remaining[i] = true
	}
	pick := 0
	for i := range entries {
		if entries[i].rows < entries[pick].rows {
			pick = i
		}
	}
	cur := entries[pick]
	curMask := uint(1) << pick
	delete(remaining, pick)
	for len(remaining) > 0 {
		bestIdx := -1
		connected := false
		for i := range remaining {
			conn := len(o.connecting(curMask, 1<<i)) > 0
			if bestIdx < 0 || (conn && !connected) ||
				(conn == connected && entries[i].rows < entries[bestIdx].rows) {
				bestIdx, connected = i, conn
			}
		}
		cur = o.joinEntries(cur, entries[bestIdx], o.connecting(curMask, 1<<bestIdx))
		curMask |= 1 << bestIdx
		delete(remaining, bestIdx)
	}
	root, err := o.finish(cur)
	if err != nil {
		return nil, err
	}
	localTail, rows := o.tailCost(cur)
	return &Plan{
		Root:         root,
		ResponseTime: cur.remoteMax + cur.localCost + localTail,
		TotalWork:    cur.remoteSum + cur.localCost + localTail,
		Rows:         rows,
		OptTime:      time.Since(start),
		FetchCount:   cur.fetches,
	}, nil
}

// resolve binds the query to the global view: relevant partitions, chosen
// replica holders, scaled statistics.
func (o *optimizer) resolve() error {
	if len(o.sel.From) == 0 {
		return fmt.Errorf("baseline: query has no FROM")
	}
	if len(o.sel.From) > 16 {
		return fmt.Errorf("baseline: too many relations")
	}
	bindIdx := map[string]int{}
	for i, tr := range o.sel.From {
		def, ok := o.gv.Schema.Table(tr.Name)
		if !ok {
			return fmt.Errorf("baseline: unknown table %q", tr.Name)
		}
		r := &rel{tr: tr, def: def,
			holder: map[string]string{}, rows: map[string]int64{},
			bytes: map[string]float64{}, ndv: map[string]int64{}}
		o.rels = append(o.rels, r)
		bindIdx[strings.ToLower(tr.Binding())] = i
	}
	// Predicates per binding and join predicates.
	for _, c := range expr.Conjuncts(o.sel.Where) {
		var mask uint
		for _, col := range expr.Columns(c) {
			if i, ok := bindIdx[strings.ToLower(col.Table)]; ok {
				mask |= 1 << i
			}
		}
		if bits.OnesCount(mask) == 1 {
			i := bits.TrailingZeros(mask)
			o.rels[i].localPred = expr.And([]expr.Expr{o.rels[i].localPred, expr.Clone(c)})
		} else if bits.OnesCount(mask) >= 2 {
			o.preds = append(o.preds, sitePred{e: c, mask: mask})
		}
	}
	for _, r := range o.rels {
		r.relevant = rewrite.RelevantPartitions(o.gv.Schema, r.tr.Name, r.localPred)
		if len(r.relevant) == 0 {
			r.relevant = nil
		}
		for _, pid := range r.relevant {
			holders := o.gv.Holders(r.tr.Name, pid)
			if len(holders) == 0 {
				return fmt.Errorf("baseline: no node holds %s/%s", r.tr.Name, pid)
			}
			// Pick the replica with the fewest rows to scan (they are
			// identical; first holder is fine, but prefer the buyer's own
			// copy to avoid a transfer).
			holder := holders[0]
			for _, h := range holders {
				if h == o.buyer {
					holder = h
					break
				}
			}
			r.holder[pid] = holder
			fs, err := o.gv.fragStats(holder, r.tr.Name, pid)
			if err != nil {
				return err
			}
			sel := 1.0
			if r.localPred != nil {
				sel = stats.Selectivity(fs, stripQuals(r.localPred))
			}
			r.rows[pid] = int64(math.Ceil(float64(fs.Rows) * sel))
			r.bytes[pid] = float64(r.rows[pid]) * math.Max(fs.RowBytes, 8)
			for cn, cs := range fs.Cols {
				if cs.NDV > r.ndv[cn] {
					r.ndv[cn] = cs.NDV
				}
			}
		}
	}
	return nil
}

func stripQuals(e expr.Expr) expr.Expr {
	return expr.Transform(expr.Clone(e), func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Column); ok && c.Table != "" {
			return &expr.Column{Name: c.Name, Index: -1}
		}
		return n
	})
}

func (o *optimizer) totalRows(r *rel) int64 {
	var t int64
	for _, pid := range r.relevant {
		t += r.rows[pid]
	}
	return t
}

func (o *optimizer) totalBytes(r *rel) float64 {
	var t float64
	for _, pid := range r.relevant {
		t += r.bytes[pid]
	}
	return t
}

func (o *optimizer) connecting(a, b uint) []expr.Expr {
	var out []expr.Expr
	for _, p := range o.preds {
		if p.mask&a != 0 && p.mask&b != 0 && p.mask&^(a|b) == 0 {
			out = append(out, expr.Clone(p.e))
		}
	}
	return out
}

// eligibleSites returns the non-buyer sites holding full relevant coverage
// of every relation in the subset (ship-nothing join sites).
func (o *optimizer) eligibleSites(mask uint) []string {
	var sites []string
	first := true
	for i, r := range o.rels {
		if mask&(1<<i) == 0 {
			continue
		}
		counts := map[string]int{}
		for _, pid := range r.relevant {
			for _, h := range o.gv.Holders(r.tr.Name, pid) {
				counts[h]++
			}
		}
		var full []string
		for h, c := range counts {
			if c == len(r.relevant) {
				full = append(full, h)
			}
		}
		sort.Strings(full)
		if first {
			sites = full
			first = false
			continue
		}
		sites = intersect(sites, full)
	}
	return sites
}

func intersect(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

// siteEval estimates evaluating the whole subset locally at a site holding
// all data: scans plus hash joins in a greedy order.
func (o *optimizer) siteEval(mask uint) siteEntry {
	var cost float64
	var relIdx []int
	for i := range o.rels {
		if mask&(1<<i) != 0 {
			relIdx = append(relIdx, i)
			cost += o.gv.Model.Scan(o.totalRows(o.rels[i]))
		}
	}
	// Per-output-row width: sum of the involved relations' average widths.
	var rowBytes float64
	for _, i := range relIdx {
		if rr := o.totalRows(o.rels[i]); rr > 0 {
			rowBytes += o.totalBytes(o.rels[i]) / float64(rr)
		} else {
			rowBytes += 8
		}
	}
	rows := o.totalRows(o.rels[relIdx[0]])
	cur := uint(1) << relIdx[0]
	for _, i := range relIdx[1:] {
		r := o.rels[i]
		preds := o.connecting(cur, 1<<i)
		rRows := o.totalRows(r)
		outRows := joinRows(rows, rRows, len(preds), o.joinNDV(cur, 1<<i, preds))
		build, probe := rows, rRows
		if build > probe {
			build, probe = probe, build
		}
		if len(preds) > 0 {
			cost += o.gv.Model.HashJoin(build, probe, outRows)
		} else {
			cost += o.gv.Model.NLJoin(rows, rRows, outRows)
		}
		rows = outRows
		cur |= 1 << i
	}
	return siteEntry{execCost: cost, rows: rows, bytes: float64(rows) * rowBytes}
}

func joinRows(l, r int64, npreds int, ndv int64) int64 {
	if npreds == 0 {
		return l * r
	}
	d := float64(ndv)
	if d < 1 {
		d = math.Max(float64(l), float64(r))
	}
	if d < 1 {
		d = 1
	}
	out := float64(l) * float64(r) / d * math.Pow(1.0/3.0, float64(npreds-1))
	if out < 1 {
		out = 1
	}
	return int64(math.Ceil(out))
}

// joinNDV finds the max NDV among join-key columns.
func (o *optimizer) joinNDV(a, b uint, preds []expr.Expr) int64 {
	var ndv int64
	for _, p := range preds {
		for _, col := range expr.Columns(p) {
			for i, r := range o.rels {
				if (a|b)&(1<<i) == 0 {
					continue
				}
				if col.Table != "" && !strings.EqualFold(col.Table, r.tr.Binding()) {
					continue
				}
				if n := r.ndv[strings.ToLower(col.Name)]; n > ndv {
					ndv = n
				}
			}
		}
	}
	return ndv
}

// leafAtBuyer assembles one relation at the buyer: per relevant partition, a
// local scan (buyer holds it) or a Remote fetch from the chosen holder.
func (o *optimizer) leafAtBuyer(mask uint) *buyerEntry {
	i := bits.TrailingZeros(mask)
	r := o.rels[i]
	sub := localopt.SubqueryFor(o.sel, []string{r.tr.Binding()})
	e := &buyerEntry{}
	var inputs []plan.Node
	for _, pid := range r.relevant {
		holder := r.holder[pid]
		part, _ := o.gv.Schema.Partition(r.tr.Name, pid)
		fetchSel := sub.Clone()
		if part != nil && part.Predicate != nil && len(r.relevant) > 1 {
			restriction := qualifyFor(part.Predicate, r.tr.Binding())
			fetchSel.Where = expr.SimplifyPredicate(expr.And([]expr.Expr{fetchSel.Where, restriction}))
		}
		if holder == o.buyer {
			scan := &plan.Scan{Def: r.def, Alias: r.tr.Binding(), PartID: pid}
			if r.localPred != nil {
				scan.Pred = expr.Clone(r.localPred)
			}
			// Project to the subquery's columns for union compatibility.
			inputs = append(inputs, projectTo(scan, fetchSel))
			e.localCost += o.gv.Model.Scan(r.rows[pid])
		} else {
			cols, err := node.OutputSpecs(fetchSel, o.gv.Schema, nil)
			if err != nil {
				continue
			}
			ids := make([]expr.ColumnID, len(cols))
			for k, c := range cols {
				ids[k] = expr.ColumnID{Table: c.Table, Name: c.Name}
			}
			fetchCost := o.gv.Model.Scan(r.rows[pid]) + o.gv.Model.Transfer(r.bytes[pid])
			inputs = append(inputs, &plan.Remote{
				NodeID: holder, SQL: fetchSel.SQL(), Cols: ids,
				EstRows: r.rows[pid], EstCost: fetchCost,
			})
			e.remoteMax = math.Max(e.remoteMax, fetchCost)
			e.remoteSum += fetchCost
			e.fetches++
		}
		e.rows += r.rows[pid]
		e.bytes += r.bytes[pid]
	}
	switch len(inputs) {
	case 0:
		// Empty relation (all partitions pruned): scan of nothing.
		e.node = &plan.Union{Inputs: nil}
	case 1:
		e.node = inputs[0]
	default:
		e.node = &plan.Union{Inputs: inputs}
	}
	return e
}

// projectTo narrows a scan to the subquery's select list.
func projectTo(input plan.Node, sub *sqlparse.Select) plan.Node {
	var exprs []expr.Expr
	var names []expr.ColumnID
	for _, it := range sub.Items {
		exprs = append(exprs, expr.Clone(it.Expr))
		if c, ok := it.Expr.(*expr.Column); ok {
			names = append(names, expr.ColumnID{Table: c.Table, Name: c.Name})
		} else {
			names = append(names, expr.ColumnID{Name: it.Alias})
		}
	}
	return &plan.Project{Input: input, Exprs: exprs, Names: names}
}

func qualifyFor(e expr.Expr, binding string) expr.Expr {
	return expr.Transform(expr.Clone(e), func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.Column); ok && c.Table == "" {
			return &expr.Column{Table: binding, Name: c.Name, Index: -1}
		}
		return n
	})
}

// remoteSubset turns a ship-nothing site evaluation into a Remote node.
func (o *optimizer) remoteSubset(mask uint, site string, se siteEntry) (*buyerEntry, error) {
	var bindings []string
	for i, r := range o.rels {
		if mask&(1<<i) != 0 {
			bindings = append(bindings, r.tr.Binding())
		}
	}
	sub := localopt.SubqueryFor(o.sel, bindings)
	cols, err := node.OutputSpecs(sub, o.gv.Schema, nil)
	if err != nil {
		return nil, err
	}
	ids := make([]expr.ColumnID, len(cols))
	for k, c := range cols {
		ids[k] = expr.ColumnID{Table: c.Table, Name: c.Name}
	}
	total := se.execCost + o.gv.Model.Transfer(se.bytes)
	return &buyerEntry{
		node:      &plan.Remote{NodeID: site, SQL: sub.SQL(), Cols: ids, EstRows: se.rows, EstCost: total},
		remoteMax: total,
		remoteSum: total,
		rows:      se.rows,
		bytes:     se.bytes,
		fetches:   1,
	}, nil
}

func (o *optimizer) joinEntries(l, r *buyerEntry, preds []expr.Expr) *buyerEntry {
	outRows := joinRows(l.rows, r.rows, len(preds), maxI64(l.rows, r.rows))
	build, probe := l.rows, r.rows
	if build > probe {
		build, probe = probe, build
	}
	var jc float64
	if len(preds) > 0 {
		jc = o.gv.Model.HashJoin(build, probe, outRows)
	} else {
		jc = o.gv.Model.NLJoin(l.rows, r.rows, outRows)
	}
	left, right := l.node, r.node
	if l.rows < r.rows {
		left, right = r.node, l.node
	}
	return &buyerEntry{
		node:      &plan.Join{L: left, R: right, On: expr.And(preds)},
		remoteMax: math.Max(l.remoteMax, r.remoteMax),
		remoteSum: l.remoteSum + r.remoteSum,
		localCost: l.localCost + r.localCost + jc,
		rows:      outRows,
		bytes:     l.bytes + r.bytes,
		fetches:   l.fetches + r.fetches,
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// run is the site-aware DP over relation subsets.
func (o *optimizer) run() (*buyerEntry, error) {
	n := len(o.rels)
	full := uint(1)<<n - 1
	dp := make(map[uint]*buyerEntry, 1<<n)

	masks := make([]uint, 0, 1<<n)
	for m := uint(1); m <= full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := bits.OnesCount(masks[i]), bits.OnesCount(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})

	consider := func(mask uint, e *buyerEntry) {
		if e == nil {
			return
		}
		if cur, ok := dp[mask]; !ok || e.response() < cur.response() {
			dp[mask] = e
		}
	}

	for _, mask := range masks {
		if bits.OnesCount(mask) == 1 {
			consider(mask, o.leafAtBuyer(mask))
		}
		// Ship-nothing sites for this subset. The buyer's own pure-local
		// evaluation composes naturally from local leaf scans and joins, so
		// only remote sites contribute Remote-subset entries.
		for _, site := range o.eligibleSites(mask) {
			if site == o.buyer {
				continue
			}
			se := o.siteEval(mask)
			re, err := o.remoteSubset(mask, site, se)
			if err == nil {
				consider(mask, re)
			}
		}
		if bits.OnesCount(mask) >= 2 {
			found := false
			try := func(requireConnected bool) {
				for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
					other := mask &^ sub
					if sub > other {
						continue
					}
					l, okl := dp[sub]
					r, okr := dp[other]
					if !okl || !okr {
						continue
					}
					preds := o.connecting(sub, other)
					if requireConnected && len(preds) == 0 {
						continue
					}
					consider(mask, o.joinEntries(l, r, preds))
					found = true
				}
			}
			try(true)
			if !found {
				try(false)
			}
		}
		if _, ok := dp[mask]; !ok {
			return nil, fmt.Errorf("baseline: no plan for subset %b", mask)
		}
	}
	if o.keep > 0 {
		o.idpCut(dp, masks)
	}
	best, ok := dp[full]
	if !ok {
		return nil, fmt.Errorf("baseline: no full plan")
	}
	return best, nil
}

// idpCut reruns the DP for subsets of size >= 3 using only the keep best
// 2-way entries, mimicking IDP(2, keep). It mutates dp in place.
func (o *optimizer) idpCut(dp map[uint]*buyerEntry, masks []uint) {
	type scored struct {
		mask uint
		cost float64
	}
	var two []scored
	for _, m := range masks {
		if bits.OnesCount(m) == 2 {
			if e, ok := dp[m]; ok {
				two = append(two, scored{mask: m, cost: e.response()})
			}
		}
	}
	if len(two) <= o.keep {
		return
	}
	sort.Slice(two, func(i, j int) bool { return two[i].cost < two[j].cost })
	for _, s := range two[o.keep:] {
		delete(dp, s.mask)
	}
	for _, mask := range masks {
		if bits.OnesCount(mask) < 3 {
			continue
		}
		delete(dp, mask)
		for _, site := range o.eligibleSites(mask) {
			if site == o.buyer {
				continue
			}
			se := o.siteEval(mask)
			if re, err := o.remoteSubset(mask, site, se); err == nil {
				if cur, ok := dp[mask]; !ok || re.response() < cur.response() {
					dp[mask] = re
				}
			}
		}
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask &^ sub
			l, okl := dp[sub]
			r, okr := dp[other]
			if !okl || !okr {
				continue
			}
			e := o.joinEntries(l, r, o.connecting(sub, other))
			if cur, ok := dp[mask]; !ok || e.response() < cur.response() {
				dp[mask] = e
			}
		}
	}
}

// finish applies the query's post-join phase over the assembled tree.
func (o *optimizer) finish(e *buyerEntry) (plan.Node, error) {
	node := e.node
	if node == nil {
		return nil, fmt.Errorf("baseline: empty plan")
	}
	var applicable []expr.Expr
	for _, c := range expr.Conjuncts(o.sel.Where) {
		applicable = append(applicable, expr.Clone(c))
	}
	if pred := expr.And(applicable); pred != nil {
		node = &plan.Filter{Input: node, Pred: pred}
	}
	return plan.FinalizeSelect(o.sel, node)
}

// tailCost prices the aggregation/sort tail and returns (cost, output rows).
func (o *optimizer) tailCost(e *buyerEntry) (float64, int64) {
	local := o.gv.Model.Filter(e.rows)
	rows := e.rows
	if o.sel.HasAggregates() || len(o.sel.GroupBy) > 0 {
		groups := rows/2 + 1
		local += o.gv.Model.Aggregate(rows, groups)
		rows = groups
	}
	if len(o.sel.OrderBy) > 0 {
		local += o.gv.Model.Sort(rows)
	}
	if o.sel.Limit >= 0 && rows > o.sel.Limit {
		rows = o.sel.Limit
	}
	return local, rows
}
