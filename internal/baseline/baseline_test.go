package baseline

import (
	"sort"
	"strings"
	"testing"

	"qtrade/internal/cost"
	"qtrade/internal/exec"
	"qtrade/internal/expr"
	"qtrade/internal/plan"
	"qtrade/internal/trading"
	"qtrade/internal/value"
	"qtrade/internal/workload"
)

func rowsKey(rows []value.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		idx := make([]int, len(r))
		for j := range idx {
			idx[j] = j
		}
		out[i] = value.Key(r, idx)
	}
	sort.Strings(out)
	return strings.Join(out, "|")
}

// runPlan executes a baseline plan over the federation.
func runPlan(t *testing.T, f *workload.Federation, p *Plan) []value.Row {
	t.Helper()
	comm := f.Comm()
	ex := &exec.Executor{
		Store: f.Nodes[f.Buyer].Store(),
		Fetch: func(nodeID, sql, offerID string) (*exec.Result, error) {
			resp, err := comm.Fetch(nodeID, trading.ExecReq{SQL: sql})
			if err != nil {
				return nil, err
			}
			cols := make([]expr.ColumnID, len(resp.Cols))
			for i, c := range resp.Cols {
				cols[i] = expr.ColumnID{Table: c.Table, Name: c.Name}
			}
			return &exec.Result{Cols: cols, Rows: resp.Rows}, nil
		},
	}
	res, err := ex.Run(p.Root)
	if err != nil {
		t.Fatalf("execute baseline plan: %v\n%s", err, plan.Explain(p.Root))
	}
	return res.Rows
}

func view(f *workload.Federation) *GlobalView {
	return NewGlobalView(f.Schema, nil, f.Nodes)
}

func TestCentralizedTelcoCorrect(t *testing.T) {
	f := workload.NewTelco(workload.TelcoOptions{Seed: 1, CustomersPerOffice: 8, LinesPerCustomer: 2})
	q := workload.TotalsQuery("Corfu", "Myconos")
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Centralized(view(f), f.Buyer, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, f, p)
	if rowsKey(got) != rowsKey(truth.Rows) {
		t.Fatalf("centralized != truth:\ngot  %v\nwant %v\n%s", got, truth.Rows, plan.Explain(p.Root))
	}
	if p.ResponseTime <= 0 || p.StatMessages != 2*int64(len(f.Nodes)) {
		t.Fatalf("plan stats: %+v", p)
	}
}

func TestCentralizedChainCorrect(t *testing.T) {
	opts := workload.ChainOptions{Relations: 3, RowsPerRel: 60, Parts: 2, Nodes: 4, Replicas: 1, Seed: 4}
	f := workload.NewChain(opts)
	q := workload.ChainQuery(opts, 0.5)
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Centralized(view(f), f.Buyer, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, f, p)
	if rowsKey(got) != rowsKey(truth.Rows) {
		t.Fatalf("centralized chain != truth: %d vs %d rows\n%s",
			len(got), len(truth.Rows), plan.Explain(p.Root))
	}
}

func TestIDPVariantCorrectAndCheaperToOptimize(t *testing.T) {
	opts := workload.ChainOptions{Relations: 5, RowsPerRel: 50, Parts: 2, Nodes: 5, Replicas: 1, Seed: 6}
	f := workload.NewChain(opts)
	q := workload.ChainQuery(opts, 1)
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Centralized(view(f), f.Buyer, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	idp, err := Centralized(view(f), f.Buyer, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(runPlan(t, f, idp)) != rowsKey(truth.Rows) {
		t.Fatalf("IDP answer wrong\n%s", plan.Explain(idp.Root))
	}
	// IDP may be worse but never better than exhaustive DP.
	if idp.ResponseTime < full.ResponseTime*0.999 {
		t.Fatalf("IDP beat DP: %.2f vs %.2f", idp.ResponseTime, full.ResponseTime)
	}
}

func TestDataShippingCorrectButCostlier(t *testing.T) {
	f := workload.NewTelco(workload.TelcoOptions{Seed: 2, CustomersPerOffice: 10, LinesPerCustomer: 2})
	q := workload.TotalsQuery("Corfu", "Myconos")
	truth, err := f.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	ship, err := DataShipping(view(f), f.Buyer, q)
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, f, ship)
	if rowsKey(got) != rowsKey(truth.Rows) {
		t.Fatalf("shipping != truth:\ngot  %v\nwant %v", got, truth.Rows)
	}
	central, err := Centralized(view(f), f.Buyer, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if central.ResponseTime > ship.ResponseTime*1.2 {
		t.Fatalf("centralized should beat naive shipping: %.2f vs %.2f",
			central.ResponseTime, ship.ResponseTime)
	}
}

func TestCentralizedPushesJoinToCoLocatedSite(t *testing.T) {
	// One office node holds its customer partition AND the invoiceline
	// replica. With a slow network and a very selective join, shipping the
	// two inputs loses to evaluating the join at the co-located site and
	// shipping the (tiny) result.
	slow := cost.Default()
	slow.BytesPerMS = 20 // ~20 KB/s: transfers dominate
	f := workload.NewTelco(workload.TelcoOptions{
		Seed: 3, Offices: []string{"Corfu"}, CustomersPerOffice: 50,
		LinesPerCustomer: 5, InvoiceReplicas: 1, Model: slow})
	q := `SELECT c.custname, i.charge FROM customer c, invoiceline i
	      WHERE c.custid = i.custid AND c.custid = 5`
	gv := NewGlobalView(f.Schema, slow, f.Nodes)
	p, err := Centralized(gv, f.Buyer, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	remotes := plan.Remotes(p.Root)
	if len(remotes) != 1 {
		t.Fatalf("expected a single ship-nothing fetch:\n%s", plan.Explain(p.Root))
	}
	if !strings.Contains(remotes[0].SQL, "customer") || !strings.Contains(remotes[0].SQL, "invoiceline") {
		t.Fatalf("join must be pushed to corfu: %s", remotes[0].SQL)
	}
	truth, _ := f.GroundTruth(q)
	if rowsKey(runPlan(t, f, p)) != rowsKey(truth.Rows) {
		t.Fatal("pushed join answer wrong")
	}
}

func TestBuyerLocalDataAvoidsTransfers(t *testing.T) {
	opts := workload.ChainOptions{Relations: 2, RowsPerRel: 40, Parts: 1, Nodes: 1, Replicas: 1, Seed: 8}
	f := workload.NewChain(opts) // single node n0 = buyer holds everything
	q := workload.ChainQuery(opts, 1)
	p, err := Centralized(view(f), f.Buyer, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remotes(p.Root)) != 0 {
		t.Fatalf("all-local query must not fetch:\n%s", plan.Explain(p.Root))
	}
	truth, _ := f.GroundTruth(q)
	if rowsKey(runPlan(t, f, p)) != rowsKey(truth.Rows) {
		t.Fatal("local plan wrong")
	}
}

func TestErrors(t *testing.T) {
	f := workload.NewTelco(workload.TelcoOptions{Seed: 1})
	gv := view(f)
	if _, err := Centralized(gv, f.Buyer, "not sql", 0); err == nil {
		t.Fatal("bad SQL must error")
	}
	if _, err := Centralized(gv, f.Buyer, "SELECT g.x FROM ghost g", 0); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := DataShipping(gv, f.Buyer, "not sql"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

func TestGlobalViewHolders(t *testing.T) {
	f := workload.NewTelco(workload.TelcoOptions{Seed: 1})
	gv := view(f)
	h := gv.Holders("customer", "corfu")
	if len(h) != 1 || h[0] != "corfu" {
		t.Fatalf("holders: %v", h)
	}
	if len(gv.Holders("customer", "nope")) != 0 {
		t.Fatal("unknown fragment must have no holders")
	}
}
