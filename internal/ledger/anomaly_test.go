package ledger

import (
	"strings"
	"testing"
)

// TestAnomalyStream pins the watchdog's ledger surface: typed anomaly
// events retained in a bounded stream, exported as a synthetic "anomalies"
// object in the JSONL feed.
func TestAnomalyStream(t *testing.T) {
	l := New(4)
	l.Anomaly("p95_regression", "buyer.hq.wall_ms", 12.5, 3.1, 7)
	l.Anomaly("recovery_spike", "buyer.hq.recoveries", 3, 0, 8)
	anoms := l.Anomalies()
	if len(anoms) != 2 {
		t.Fatalf("anomalies: %d", len(anoms))
	}
	a := anoms[0]
	if a.Kind != KindAnomaly || a.Reason != "p95_regression" || a.QID != "buyer.hq.wall_ms" ||
		a.WallMS != 12.5 || a.QuotedMS != 3.1 || a.Window != 7 {
		t.Fatalf("anomaly event: %+v", a)
	}
	if a.Seq == 0 || a.At.IsZero() {
		t.Fatalf("anomaly must be sequenced and timestamped: %+v", a)
	}

	// Bounded like the negotiation ring.
	for i := 0; i < 10; i++ {
		l.Anomaly("calibration_drift", "seller.n1", 2, 1, int64(i))
	}
	if got := len(l.Anomalies()); got != 4 {
		t.Fatalf("anomaly stream must stay bounded at capacity: %d", got)
	}

	var b strings.Builder
	if err := l.WriteJSONL(&b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"id":"anomalies"`) || !strings.Contains(b.String(), `"calibration_drift"`) {
		t.Fatalf("JSONL missing anomalies object:\n%s", b.String())
	}

	var nilL *Ledger
	if nilL.Anomalies() != nil {
		t.Fatal("nil ledger anomalies")
	}
}

// TestRecSnapshot checks the deep copy the flight recorder consumes: later
// events must not leak into an already-taken snapshot.
func TestRecSnapshot(t *testing.T) {
	l := New(4)
	r := l.Begin("hq", "SELECT 1")
	r.RFBIssued("rfb-1", 1, 2)
	r.Bid(1, "n1", "q0", "o1", 5, 6)
	snap := r.Snapshot()
	if snap.ID != "rfb-1" || snap.Buyer != "hq" || len(snap.Events) != 2 {
		t.Fatalf("snapshot: %+v", snap)
	}
	r.Award("n1", "q0", "o1", 5, 6)
	if len(snap.Events) != 2 {
		t.Fatal("snapshot must be isolated from later events")
	}
	if got := r.Snapshot(); len(got.Events) != 3 || !got.Awarded {
		t.Fatalf("fresh snapshot: %+v", got)
	}
	var nilRec *Rec
	if s := nilRec.Snapshot(); s.ID != "" || s.Events != nil {
		t.Fatal("nil rec snapshot must be empty")
	}
}
